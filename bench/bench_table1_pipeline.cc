// Reproduces paper Table 1: the analysis and modeling steps from raw
// data to human-activity signal, with live per-step coverage from a
// small end-to-end run.
#include <cstdio>
#include <unordered_set>

#include "common.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "recon/health.h"

using namespace diurnal;

int main() {
  bench::header("Table 1", "Analysis and modeling steps, with live coverage");
  const auto wc = bench::scaled_world(3000);
  const sim::World world(wc);

  // Observer health (section 2.7): sites c and g must be discarded in
  // 2020.
  recon::HealthCheckConfig hc;
  hc.window = probe::ProbeWindow{util::time_of(2020, 1, 1),
                                 util::time_of(2020, 1, 8)};
  const auto healthy = recon::healthy_observers(
      world, probe::trinocular_sites(), hc);
  std::string healthy_codes;
  for (const auto& o : healthy) healthy_codes += o.code;

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020q1-" + healthy_codes);
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);

  std::int64_t changes = 0, blocks_with_changes = 0;
  for (const auto& out : fleet.outcomes) {
    std::int64_t n = 0;
    for (const auto& c : out.changes) n += !c.filtered_as_outage;
    changes += n;
    blocks_with_changes += n > 0;
  }
  std::int64_t represented_cells = 0;
  for (const auto& [cell, series] : agg.by_cell()) {
    (void)cell;
    represented_cells += series.change_sensitive_blocks >= 5;
  }

  util::TextTable t({"step", "see", "measurement risk", "coverage"});
  t.add_row({"Data import (active probing)", "s2.2", "firewalls, NAT, loss",
             util::fmt_count(fleet.funnel.routed) + " blks"});
  t.add_row({"(Opt.) additional observation", "s2.8", "selecting right blocks",
             "see Figure 5 bench"});
  t.add_row({"Observation combination", "s2.7", "observer independence",
             "healthy sites: " + healthy_codes});
  t.add_row({"Address reconstruction", "s2.3", "slow probing/rapid change",
             util::fmt_count(fleet.funnel.responsive) + " responsive"});
  t.add_row({"Change-sensitive discovery", "s2.4", "NAT and servers",
             util::fmt_count(fleet.funnel.change_sensitive) + " blks"});
  t.add_row({"Trend extraction", "s2.5", "non-human changes", "STL per block"});
  t.add_row({"Change detection", "s2.6", "small or slow changes",
             util::fmt_count(changes) + " changes in " +
                 util::fmt_count(blocks_with_changes) + " blks"});
  t.add_row({"Change analysis", "s2.6", "multiple causes, geolocation",
             util::fmt_count(represented_cells) + " represented gridcells"});
  t.print();

  std::printf("\nobserver health (2020): ");
  for (const auto& h : recon::check_observers(world, probe::trinocular_sites(), hc)) {
    std::printf("%c:%s(dev %.3f) ", h.code, h.healthy ? "ok" : "FAULTY",
                h.deviation);
  }
  std::printf("\n(paper: sites c and g discarded in 2020 for hardware problems)\n");
  return 0;
}
