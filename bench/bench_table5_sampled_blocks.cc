// Reproduces paper Table 5: validation of randomly sampled
// change-sensitive blocks against documented work-from-home dates
// (detection within +-4 days counts).  The paper reports precision 93%
// (13 TP / 1 FP) and recall 72% (13 TP / 5 FN).
#include <cstdio>
#include <map>

#include "common.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "geo/countries.h"

using namespace diurnal;

int main() {
  bench::header("Table 5", "Validation of sampled blocks",
                "dataset: 2020q1-ejnw; match window +-4 days");
  const auto wc = bench::scaled_world(6000);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020q1-ejnw");
  const auto fleet = core::run_fleet(world, fc);

  core::ValidationConfig vc;
  vc.window = fc.dataset.window();
  vc.sample_size = bench::env_int("DIURNAL_BENCH_SAMPLE", 50);
  const auto v = core::validate_sample(world, fleet, vc);

  util::TextTable table({"row", "count"});
  table.add_row({"change-sensitive blocks",
                 util::fmt_count(fleet.funnel.change_sensitive)});
  table.add_row({"random selection", util::fmt_count(v.total)});
  table.add_row({"  no WFH in quarter", util::fmt_count(v.no_wfh_in_window)});
  table.add_row({"  WFH in quarter", util::fmt_count(v.wfh_in_window)});
  table.add_row({"    CUSUM near (+-4d) WFH date",
                 util::fmt_count(v.cusum_near_wfh)});
  table.add_row({"      confirmed change (TP)", util::fmt_count(v.true_positive)});
  table.add_row({"      apparent outage (FP)", util::fmt_count(v.false_positive)});
  table.add_row({"    no CUSUM near WFH date", util::fmt_count(v.no_cusum_near)});
  table.add_row({"      truth change missed (FN)",
                 util::fmt_count(v.false_negative)});
  table.add_row({"      CUSUM not related to WFH", util::fmt_count(v.cusum_far)});
  table.add_row({"      no CUSUM detections", util::fmt_count(v.no_cusum)});
  table.print();

  std::printf("\nprecision %s (paper: 93%%)   recall %s (paper: 72%%)\n",
              util::fmt_pct(v.precision()).c_str(),
              util::fmt_pct(v.recall()).c_str());

  // The sampled blocks' countries, mirroring the paper's distribution
  // note (22 CN, 5 RU, 4 MY, ... in their draw).
  std::map<std::string, int> by_country;
  for (const auto& b : v.blocks) ++by_country[b.country];
  std::printf("\nsample by country:");
  for (const auto& [code, n] : by_country) std::printf(" %s:%d", code.c_str(), n);
  std::printf("\n\nper-block verdicts:\n");
  for (const auto& b : v.blocks) {
    std::printf("  %-18s %s %-22s", b.id.to_string().c_str(), b.country.c_str(),
                std::string(core::to_string(b.verdict)).c_str());
    if (b.verdict == core::BlockVerdict::kTruePositive) {
      std::printf("  offset %+lld d", static_cast<long long>(b.detection_offset_days));
    }
    std::printf("\n");
  }
  return 0;
}
