// BENCH checkpoint: externalized pipeline state (util/state_io.h,
// core/checkpoint.h) — what a snapshot costs, what a resume saves, and
// proof the persistence layer never buys speed with correctness:
//
//  snapshot    mid-window StreamingFleet save/restore latency and image
//              size (bytes/block) in both packings (varint vs raw f64),
//              with the restored engine finalizing to the reference
//              fleet digest bit-for-bit;
//  resume      sharded kill-mid-run at 10k blocks: wall-clock of the
//              interrupted run + resumed completion vs one uninterrupted
//              run, digest-gated;
//  capacity    a DIURNAL_BENCH_CKPT_BLOCKS world (default 100k) driven
//              with per-shard checkpoints, then fully resumed from the
//              manifest: the resume must cost < 10% of the full run's
//              wall-clock and stay under a pinned peak-RSS budget;
//  rejection   a deliberately corrupted shard file must be refused by
//              the typed StateError path (recorded as a receipt key the
//              CI bench-smoke gate checks).
//
// Peak RSS is read from /proc/self/status (VmHWM) with the high-water
// mark reset between phases where the kernel allows; the JSON records
// "peak_reset_supported" so a process-lifetime peak is never mistaken
// for a per-phase one.  Earlier phases run in their own scopes and the
// allocator is trimmed before the resume measurement, so the capacity
// budget judges the resume itself, not pages the earlier phases left in
// the arenas.
//
// Scale knobs: DIURNAL_BENCH_BLOCKS (snapshot world),
// DIURNAL_BENCH_CKPT_BLOCKS, DIURNAL_BENCH_CKPT_SHARD_SIZE,
// DIURNAL_BENCH_CKPT_EVERY, DIURNAL_BENCH_RSS_BUDGET_KB,
// DIURNAL_BENCH_SEED, DIURNAL_BENCH_JSON; DIURNAL_BENCH_CKPT_DIR keeps
// the capacity run's checkpoint directory (manifest + shard files) on
// disk instead of a scratch path — the weekly large-world job uploads
// its manifest as an artifact.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#define DIURNAL_HAVE_MALLOC_TRIM 1
#endif

#include "common.h"
#include "core/checkpoint.h"
#include "core/datasets.h"
#include "core/pipeline.h"
#include "core/shard.h"
#include "core/streaming.h"
#include "fault/fault_plan.h"
#include "sim/world.h"
#include "util/mem.h"
#include "util/state_io.h"

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::filesystem::path fresh_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("diurnal_bench_ckpt_") + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Returns freed arena pages to the OS so a following peak-RSS reset
/// measures the next phase, not this one's leftovers.
void trim_heap() {
#ifdef DIURNAL_HAVE_MALLOC_TRIM
  malloc_trim(0);
#endif
}

}  // namespace

int main() {
  bench::header("BENCH checkpoint",
                "versioned state externalization: snapshot cost, resume "
                "speedup, corruption rejection",
                "see DESIGN.md section 11");

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  fc.threads = static_cast<int>(hw);
  const bool hwm_reset = util::peak_reset_supported();

  // ------------------------------------------------------------------
  // Phase 1: mid-window fleet snapshot — latency, size, digest gate.
  // ------------------------------------------------------------------
  const auto wc = bench::scaled_world(2000, 1);
  double save_secs[2] = {0, 0};
  std::size_t image_bytes[2] = {0, 0};
  double restore_secs = 0.0;
  double n_blocks = 0.0;
  std::uint64_t ref_digest = 0;
  bool digest_ok = false;
  {
    const sim::World world(wc);
    n_blocks = static_cast<double>(world.blocks().size());
    ref_digest = bench::fleet_digest(core::run_fleet(world, fc));
    std::printf("reference fleet digest %s\n",
                bench::digest_hex(ref_digest).c_str());

    core::StreamingFleet engine(world, fc);
    const auto span = engine.window_end() - engine.window_start();
    engine.advance_to(engine.window_start() + span / 2);

    // Save latency and image size, varint vs raw f64 packing.  The
    // state is identical either way; varint wins on the integral count
    // series, raw on fully fractional payloads.
    constexpr int kReps = 5;
    for (const bool varint : {true, false}) {
      for (int rep = 0; rep < kReps; ++rep) {
        util::StateWriter w(varint);
        const auto t0 = Clock::now();
        engine.save(w);
        save_secs[varint ? 0 : 1] += seconds_since(t0) / kReps;
        image_bytes[varint ? 0 : 1] = w.size();
      }
    }
    std::printf("\nsnapshot @ mid-window (%zu blocks):\n",
                world.blocks().size());
    std::printf("  varint  %8.2f ms  %9zu bytes  (%.1f bytes/block)\n",
                save_secs[0] * 1e3, image_bytes[0],
                image_bytes[0] / n_blocks);
    std::printf("  raw f64 %8.2f ms  %9zu bytes  (%.1f bytes/block)\n",
                save_secs[1] * 1e3, image_bytes[1],
                image_bytes[1] / n_blocks);

    // Restore latency, then the non-negotiable: the restored engine
    // must finish to the reference digest.
    util::StateWriter snap;
    engine.save(snap);
    const auto image = snap.take();
    core::StreamingFleet resumed(world, fc);
    const auto t_restore = Clock::now();
    {
      util::StateReader r(image);
      resumed.restore(r);
    }
    restore_secs = seconds_since(t_restore);
    resumed.advance_to(resumed.window_end());
    const std::uint64_t resumed_digest =
        bench::fleet_digest(resumed.finalize());
    digest_ok = resumed_digest == ref_digest;
    std::printf("  restore %8.2f ms  -> digest %s (%s)\n",
                restore_secs * 1e3,
                bench::digest_hex(resumed_digest).c_str(),
                digest_ok ? "match" : "MISMATCH");
  }

  // ------------------------------------------------------------------
  // Phase 2: kill-mid-run resume vs replay at 10k blocks.
  // ------------------------------------------------------------------
  double replay_secs = 0.0, first_secs = 0.0, resume_secs = 0.0;
  bool mid_ok = false;
  core::ShardStats mid_stats;
  std::size_t killed_after = 0;
  {
    sim::WorldConfig mid = wc;
    mid.num_blocks = 10000;
    core::ShardConfig sc;
    sc.shard_size = 1024;
    const auto dir = fresh_dir("resume10k");
    sc.checkpoint_dir = dir.string();

    const auto t_replay = Clock::now();
    const auto whole = core::run_sharded_fleet(mid, fc, sc);
    replay_secs = seconds_since(t_replay);
    const std::uint64_t mid_digest = bench::fleet_digest(whole.fleet);

    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    auto killed = sc;
    killed.max_shards = whole.stats.shards / 2;
    killed_after = killed.max_shards;
    const auto t_first = Clock::now();
    (void)core::run_sharded_fleet(mid, fc, killed);
    first_secs = seconds_since(t_first);
    auto cont = sc;
    cont.resume = true;
    const auto t_resume = Clock::now();
    const auto finished = core::run_sharded_fleet(mid, fc, cont);
    resume_secs = seconds_since(t_resume);
    mid_ok = bench::fleet_digest(finished.fleet) == mid_digest;
    mid_stats = finished.stats;
    std::printf(
        "\nkill-mid-run @ %zu blocks (%zu shards, killed after %zu):\n",
        mid_stats.blocks, mid_stats.shards, killed_after);
    std::printf(
        "  uninterrupted %6.2fs | interrupted %6.2fs + resumed %6.2fs "
        "(%zu shards loaded) -> digest %s\n",
        replay_secs, first_secs, resume_secs, mid_stats.resumed_shards,
        mid_ok ? "match" : "MISMATCH");
    std::filesystem::remove_all(dir);
  }

  // ------------------------------------------------------------------
  // Phase 3: capacity resume — load everything, compute nothing.
  // ------------------------------------------------------------------
  sim::WorldConfig big = wc;
  big.num_blocks = bench::env_int("DIURNAL_BENCH_CKPT_BLOCKS", 100000);
  core::ShardConfig cap;
  cap.shard_size = static_cast<std::size_t>(
      bench::env_int("DIURNAL_BENCH_CKPT_SHARD_SIZE", 4096));
  cap.checkpoint_every = static_cast<std::size_t>(
      bench::env_int("DIURNAL_BENCH_CKPT_EVERY", 4));
  const char* keep_env = std::getenv("DIURNAL_BENCH_CKPT_DIR");
  const bool keep_dir = keep_env != nullptr && *keep_env != '\0';
  std::filesystem::path dir3;
  if (keep_dir) {
    dir3 = keep_env;
    std::filesystem::remove_all(dir3);
    std::filesystem::create_directories(dir3);
  } else {
    dir3 = fresh_dir("capacity");
  }
  cap.checkpoint_dir = dir3.string();

  double full_secs = 0.0;
  std::uint64_t cap_digest = 0;
  core::ShardStats cap_stats;
  {
    const auto t_full = Clock::now();
    const auto full = core::run_sharded_fleet(big, fc, cap);
    full_secs = seconds_since(t_full);
    cap_digest = bench::fleet_digest(full.fleet);
    cap_stats = full.stats;
  }
  std::size_t ckpt_bytes = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir3)) {
    ckpt_bytes += std::filesystem::file_size(e.path());
  }

  trim_heap();
  if (hwm_reset) util::reset_peak_rss();
  auto capr = cap;
  capr.resume = true;
  const auto t_cap_resume = Clock::now();
  const auto restored = core::run_sharded_fleet(big, fc, capr);
  const double cap_resume_secs = seconds_since(t_cap_resume);
  const auto mem = util::read_memory_usage();
  const bool cap_ok = bench::fleet_digest(restored.fleet) == cap_digest &&
                      restored.stats.resumed_shards == restored.stats.shards;
  const double resume_ratio = cap_resume_secs / full_secs;

  std::printf("\ncapacity @ %zu blocks (%zu shards, manifest every %zu):\n",
              cap_stats.blocks, cap_stats.shards, cap.checkpoint_every);
  std::printf("  full run %6.2fs, checkpoint files %.1f MB "
              "(%.1f bytes/block)\n",
              full_secs, static_cast<double>(ckpt_bytes) / 1048576.0,
              static_cast<double>(ckpt_bytes) /
                  static_cast<double>(cap_stats.blocks));
  std::printf("  resume   %6.2fs (%.1f%% of full; %zu shards loaded, %zu "
              "computed) -> digest %s\n",
              cap_resume_secs, resume_ratio * 100.0,
              restored.stats.resumed_shards, restored.stats.completed_shards,
              cap_ok ? "match" : "MISMATCH");
  std::printf("  resume peak RSS %zu KB%s\n", mem.peak_rss_kb,
              hwm_reset ? "" : " (VmHWM reset unavailable; includes all "
                               "earlier phases)");

  const std::size_t budget_kb = static_cast<std::size_t>(
      bench::env_int("DIURNAL_BENCH_RSS_BUDGET_KB", 262144));
  const bool under_budget = !mem.valid || mem.peak_rss_kb <= budget_kb;
  const bool resume_fast = resume_ratio < 0.10;
  std::printf("  resume < 10%% of full -> %s; peak RSS vs %zu KB budget -> "
              "%s\n",
              resume_fast ? "holds" : "VIOLATED", budget_kb,
              under_budget ? "under" : "OVER");

  // ------------------------------------------------------------------
  // Phase 4: corruption must be refused, not read.
  // ------------------------------------------------------------------
  bool corrupt_rejected = false;
  std::string reject_kind = "none";
  {
    // Corrupt a copy in a scratch directory so a kept capacity
    // directory (DIURNAL_BENCH_CKPT_DIR) stays intact.
    const auto probe = fresh_dir("corrupt_probe");
    auto bytes = util::read_state_file((dir3 / "shard-0.ckpt").string());
    bytes[bytes.size() / 2] ^= 0xff;
    util::write_state_file((probe / "shard-0.ckpt").string(), bytes);
    core::CheckpointManager mgr(
        probe.string(), core::checkpoint_fingerprint(big, fc, cap.shard_size),
        cap_stats.blocks, cap_stats.shard_size);
    try {
      (void)mgr.load_shard(0);
    } catch (const util::StateError& e) {
      // Any typed kind counts as a rejection: which one fires depends on
      // where in the image the flipped byte lands (a range-checked value
      // -> bad-value before the section checksum is even reached, raw
      // payload -> bad-crc, a section header -> bad-section/truncated).
      corrupt_rejected = true;
      reject_kind = util::to_string(e.kind());
    }
    std::filesystem::remove_all(probe);
  }
  std::printf("\ncorrupt shard file -> %s (%s)\n",
              corrupt_rejected ? "rejected" : "NOT REJECTED",
              reject_kind.c_str());
  if (keep_dir) {
    std::printf("checkpoint directory kept at %s\n", dir3.string().c_str());
  } else {
    std::filesystem::remove_all(dir3);
  }

  bench::JsonObject snapshot;
  snapshot.add("blocks", static_cast<std::int64_t>(n_blocks))
      .add("save_ms_varint", save_secs[0] * 1e3)
      .add("save_ms_raw", save_secs[1] * 1e3)
      .add("restore_ms", restore_secs * 1e3)
      .add("image_bytes_varint", static_cast<std::int64_t>(image_bytes[0]))
      .add("image_bytes_raw", static_cast<std::int64_t>(image_bytes[1]))
      .add("bytes_per_block_varint", image_bytes[0] / n_blocks)
      .add("bytes_per_block_raw", image_bytes[1] / n_blocks)
      .add("fleet_digest", bench::digest_hex(ref_digest))
      .add("restore_digest_match", digest_ok);

  bench::JsonObject resume;
  resume.add("blocks", static_cast<std::int64_t>(mid_stats.blocks))
      .add("shards", static_cast<std::int64_t>(mid_stats.shards))
      .add("killed_after_shards", static_cast<std::int64_t>(killed_after))
      .add("uninterrupted_seconds", replay_secs)
      .add("interrupted_seconds", first_secs)
      .add("resumed_seconds", resume_secs)
      .add("digest_match", mid_ok);

  bench::JsonObject capacity;
  capacity.add("blocks", static_cast<std::int64_t>(cap_stats.blocks))
      .add("shard_size", static_cast<std::int64_t>(cap_stats.shard_size))
      .add("shards", static_cast<std::int64_t>(cap_stats.shards))
      .add("checkpoint_every", static_cast<std::int64_t>(cap.checkpoint_every))
      .add("full_seconds", full_secs)
      .add("resume_seconds", cap_resume_secs)
      .add("resume_ratio", resume_ratio)
      .add("checkpoint_bytes", static_cast<std::int64_t>(ckpt_bytes))
      .add("checkpoint_bytes_per_block",
           static_cast<double>(ckpt_bytes) /
               static_cast<double>(cap_stats.blocks))
      .add("resumed_shards",
           static_cast<std::int64_t>(restored.stats.resumed_shards))
      .add("computed_shards",
           static_cast<std::int64_t>(restored.stats.completed_shards))
      .add("digest_match", cap_ok)
      .add("resume_peak_rss_kb", static_cast<std::int64_t>(mem.peak_rss_kb))
      .add("rss_valid", mem.valid);

  bench::JsonObject j;
  j.add("bench", "checkpoint")
      .add("dataset", fc.dataset.abbr)
      .add("threads", static_cast<std::int64_t>(hw))
      .add("state_format_version",
           static_cast<std::int64_t>(util::kStateFormatVersion))
      .add_object("snapshot", snapshot)
      .add_object("resume_10k", resume)
      .add_object("capacity", capacity)
      .add("peak_rss_budget_kb", static_cast<std::int64_t>(budget_kb))
      .add("under_budget", under_budget)
      .add("resume_under_10pct", resume_fast)
      .add("corrupt_rejected", corrupt_rejected)
      .add("reject_kind", reject_kind)
      .add("peak_reset_supported", hwm_reset);
  bench::write_bench_json("BENCH_checkpoint.json", j);
  return digest_ok && mid_ok && cap_ok && resume_fast && under_budget &&
                 corrupt_rejected
             ? 0
             : 1;
}
