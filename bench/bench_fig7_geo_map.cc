// Reproduces paper Figure 7: the geographic distribution of
// change-sensitive blocks per 2x2-degree gridcell (dataset 2020m1).
// The paper's shape: best coverage in Asia, moderate in Europe and
// North America, sparse in South America and (outside Morocco) Africa.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common.h"
#include "core/pipeline.h"
#include "geo/countries.h"

using namespace diurnal;

int main() {
  bench::header("Figure 7",
                "Change-sensitive blocks per 2x2-degree gridcell (2020m1)");
  const auto wc = bench::scaled_world(12000);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.run_detection = false;
  const auto fleet = core::run_fleet(world, fc);

  struct CellAgg {
    int cs = 0;
    std::map<std::string, int> by_country;
  };
  std::map<geo::GridCell, CellAgg> cells;
  std::map<std::string, int> by_continent_cs;
  std::map<std::string, int> by_continent_resp;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    const auto& b = world.blocks()[i];
    const auto cont = std::string(
        geo::to_string(geo::countries()[b.country].continent));
    if (out.cls.responsive) ++by_continent_resp[cont];
    if (!out.cls.change_sensitive) continue;
    ++by_continent_cs[cont];
    auto& c = cells[b.cell()];
    ++c.cs;
    ++c.by_country[geo::countries()[b.country].code];
  }

  std::vector<std::pair<geo::GridCell, CellAgg>> sorted(cells.begin(), cells.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second.cs > b.second.cs; });

  std::printf("top gridcells by change-sensitive blocks (circle areas in the "
              "paper's map):\n");
  util::TextTable t({"gridcell", "c-s blocks", "dominant country", ""});
  for (std::size_t i = 0; i < std::min<std::size_t>(sorted.size(), 25); ++i) {
    const auto& [cell, agg] = sorted[i];
    std::string dom;
    int best = 0;
    for (const auto& [code, n] : agg.by_country) {
      if (n > best) {
        best = n;
        dom = code;
      }
    }
    t.add_row({cell.to_string(), util::fmt_count(agg.cs), dom,
               bench::bar(static_cast<double>(agg.cs) / sorted[0].second.cs, 30)});
  }
  t.print();

  std::printf("\nchange-sensitive blocks by continent (paper: Asia best, "
              "Europe/N.America moderate, S.America/Africa sparse):\n");
  util::TextTable ct({"continent", "c-s blocks", "responsive", "c-s share"});
  for (const auto& [cont, n] : by_continent_cs) {
    const int resp = by_continent_resp[cont];
    ct.add_row({cont, util::fmt_count(n), util::fmt_count(resp),
                resp ? util::fmt_pct(static_cast<double>(n) / resp) : "-"});
  }
  ct.print();

  const int asia = by_continent_cs["Asia"];
  int others_max = 0;
  for (const auto& [cont, n] : by_continent_cs) {
    if (cont != "Asia") others_max = std::max(others_max, n);
  }
  std::printf("\nShape check: Asia holds the most change-sensitive blocks: %s\n",
              asia > others_max ? "HOLDS" : "VIOLATED");
  return 0;
}
