#include "common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/digest.h"

namespace diurnal::bench {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

void header(const std::string& artifact, const std::string& title,
            const std::string& note) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", artifact.c_str(), title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

sim::WorldConfig scaled_world(int default_blocks, std::uint64_t seed,
                              bool announce) {
  sim::WorldConfig wc;
  wc.num_blocks = env_int("DIURNAL_BENCH_BLOCKS", default_blocks);
  wc.seed = static_cast<std::uint64_t>(
      env_int("DIURNAL_BENCH_SEED", static_cast<int>(seed)));
  if (announce) {
    std::printf(
        "world: %d routed /24 blocks (paper: 11.1M routed; scale ~1:%d), "
        "seed %llu\n\n",
        wc.num_blocks, wc.num_blocks > 0 ? 11'100'000 / wc.num_blocks : 0,
        static_cast<unsigned long long>(wc.seed));
  }
  return wc;
}

void print_funnel(const std::string& name, const core::FunnelCounts& f) {
  using util::fmt_count;
  std::printf("%-18s routed %s | responsive %s | diurnal %s | wide %s | "
              "change-sensitive %s\n",
              name.c_str(), fmt_count(f.routed).c_str(),
              fmt_count(f.responsive).c_str(), fmt_count(f.diurnal).c_str(),
              fmt_count(f.wide_swing).c_str(),
              fmt_count(f.change_sensitive).c_str());
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

JsonObject& JsonObject::add(const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  fields_.emplace_back(key, buf);
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const std::string& v) {
  fields_.emplace_back(key, "\"" + json_escape(v) + "\"");
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, bool v) {
  fields_.emplace_back(key, v ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::add_object(const std::string& key, const JsonObject& v) {
  fields_.emplace_back(key, v.str(1));
  return *this;
}

std::string JsonObject::str(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent + 1) * 2, ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += pad + "\"" + json_escape(fields_[i].first) + "\": " + fields_[i].second;
    if (i + 1 < fields_.size()) out += ",";
    out += "\n";
  }
  out += close_pad + "}";
  return out;
}

void write_bench_json(const std::string& default_path, const JsonObject& obj) {
  const char* override_path = std::getenv("DIURNAL_BENCH_JSON");
  const std::string path =
      (override_path != nullptr && *override_path != '\0') ? override_path
                                                           : default_path;
  std::ofstream out(path);
  out << obj.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

std::uint64_t fleet_digest(const core::FleetResult& r) {
  return core::fleet_digest(r);
}

std::string digest_hex(std::uint64_t d) { return core::digest_hex(d); }

std::string bar(double fraction, int width) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<std::size_t>(filled), '#');
  out.append(static_cast<std::size_t>(width - filled), '.');
  return out;
}

}  // namespace diurnal::bench
