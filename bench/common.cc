#include "common.h"

#include <cstdio>
#include <cstdlib>

namespace diurnal::bench {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

void header(const std::string& artifact, const std::string& title,
            const std::string& note) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", artifact.c_str(), title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("================================================================\n");
}

sim::WorldConfig scaled_world(int default_blocks, std::uint64_t seed,
                              bool announce) {
  sim::WorldConfig wc;
  wc.num_blocks = env_int("DIURNAL_BENCH_BLOCKS", default_blocks);
  wc.seed = static_cast<std::uint64_t>(
      env_int("DIURNAL_BENCH_SEED", static_cast<int>(seed)));
  if (announce) {
    std::printf(
        "world: %d routed /24 blocks (paper: 11.1M routed; scale ~1:%d), "
        "seed %llu\n\n",
        wc.num_blocks, wc.num_blocks > 0 ? 11'100'000 / wc.num_blocks : 0,
        static_cast<unsigned long long>(wc.seed));
  }
  return wc;
}

void print_funnel(const std::string& name, const core::FunnelCounts& f) {
  using util::fmt_count;
  std::printf("%-18s routed %s | responsive %s | diurnal %s | wide %s | "
              "change-sensitive %s\n",
              name.c_str(), fmt_count(f.routed).c_str(),
              fmt_count(f.responsive).c_str(), fmt_count(f.diurnal).c_str(),
              fmt_count(f.wide_swing).c_str(),
              fmt_count(f.change_sensitive).c_str());
}

std::string bar(double fraction, int width) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<std::size_t>(filled), '#');
  out.append(static_cast<std::size_t>(width - filled), '.');
  return out;
}

}  // namespace diurnal::bench
