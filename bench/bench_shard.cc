// BENCH shard: the paper-scale drive — sharded fleet execution with a
// bounded resident set, gated on two contracts:
//
//  equivalence  sharded runs over the 2000-block reference world must
//               reproduce the unsharded fleet digest bit-for-bit at
//               every shard size {1, 7, 64, whole-world}, thread count
//               {1, hardware}, and with a fault plan active;
//  capacity     a DIURNAL_BENCH_SHARD_BLOCKS world (default 100k; the
//               scheduled large-world job drives >= 1M and the paper's
//               5.2M) must finish under a pinned peak-RSS budget with
//               the resident-shard count never exceeding max_resident.
//
// Peak RSS is read from /proc/self/status (VmHWM), with the kernel
// high-water mark reset via /proc/self/clear_refs between phases so the
// capacity phase is measured on its own.  A global operator-new
// override counts heap allocations (the bench_analysis idiom) to keep
// the scheduler's steady-state allocation story honest.
//
// Scale knobs: DIURNAL_BENCH_BLOCKS (equivalence world),
// DIURNAL_BENCH_SHARD_BLOCKS, DIURNAL_BENCH_SHARD_SIZE,
// DIURNAL_BENCH_SHARD_RESIDENT, DIURNAL_BENCH_RSS_BUDGET_KB,
// DIURNAL_BENCH_SEED, DIURNAL_BENCH_JSON.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>

#include "common.h"
#include "core/datasets.h"
#include "core/pipeline.h"
#include "core/shard.h"
#include "fault/fault_plan.h"
#include "sim/world.h"
#include "util/mem.h"

using namespace diurnal;

namespace {

// ---------------------------------------------------------------------------
// Global allocation counter: every path into the heap bumps it.
// ---------------------------------------------------------------------------
std::atomic<std::size_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (n + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One equivalence case: sharded digest vs the reference.
bool check_case(const char* label, const sim::WorldConfig& wc,
                const core::FleetConfig& fc, const core::ShardConfig& sc,
                std::uint64_t want) {
  const auto r = core::run_sharded_fleet(wc, fc, sc);
  const std::uint64_t got = bench::fleet_digest(r.fleet);
  const bool ok = got == want;
  std::printf("  %-34s digest %s -> %s\n", label,
              bench::digest_hex(got).c_str(), ok ? "match" : "MISMATCH");
  return ok;
}

}  // namespace

int main() {
  bench::header("BENCH shard",
                "sharded fleet: digest equivalence + bounded-memory capacity",
                "paper-scale drive; see DESIGN.md section 10");

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  fc.threads = static_cast<int>(hw);

  // ------------------------------------------------------------------
  // Equivalence matrix over the reference world.
  // ------------------------------------------------------------------
  const auto wc = bench::scaled_world(2000, 1);
  const sim::World world(wc);
  const auto ref = core::run_fleet(world, fc);
  const std::uint64_t ref_digest = bench::fleet_digest(ref);
  std::printf("unsharded reference digest %s\n",
              bench::digest_hex(ref_digest).c_str());

  bool ok = true;
  int cases = 0;
  for (const std::size_t size : {std::size_t{1}, std::size_t{7},
                                 std::size_t{64}, std::size_t{0}}) {
    core::ShardConfig sc;
    sc.shard_size = size;
    char label[64];
    std::snprintf(label, sizeof label, "shard_size=%zu threads=%u", size, hw);
    ok &= check_case(label, wc, fc, sc, ref_digest);
    ++cases;
  }
  {
    auto fc1 = fc;
    fc1.threads = 1;
    core::ShardConfig sc;
    sc.shard_size = 7;
    ok &= check_case("shard_size=7 threads=1", wc, fc1, sc, ref_digest);
    ++cases;
  }
  {
    auto fcf = fc;
    fcf.faults = fault::scenario("dropout", fc.dataset.window());
    const std::uint64_t fault_ref =
        bench::fleet_digest(core::run_fleet(world, fcf));
    for (const std::size_t size : {std::size_t{7}, std::size_t{64}}) {
      core::ShardConfig sc;
      sc.shard_size = size;
      char label[64];
      std::snprintf(label, sizeof label, "dropout shard_size=%zu", size);
      ok &= check_case(label, wc, fcf, sc, fault_ref);
      ++cases;
    }
  }
  std::printf("equivalence: %d/%d cases %s\n", cases, cases,
              ok ? "hold" : "VIOLATED");

  // ------------------------------------------------------------------
  // Capacity run: a large lazily-materialized universe, bounded memory.
  // ------------------------------------------------------------------
  sim::WorldConfig big = wc;
  big.num_blocks = bench::env_int("DIURNAL_BENCH_SHARD_BLOCKS", 100000);
  const bool layered = bench::env_int("DIURNAL_BENCH_SHARD_LAYERED", 0) != 0;
  if (layered) {
    // Layered multi-country continent world (DESIGN §12): CGNAT drift
    // everywhere, northern DST clocks across Europe/US, and a
    // southern-season country with an annual holiday — so the weekly
    // capacity run drives every generator layer at scale, not just the
    // neutral registry.
    sim::CountryLayerOverride all;
    all.cgnat_trend_per_year = 0.2;
    big.country_layers.push_back(std::move(all));
    for (const char* code : {"US", "DE", "GB", "FR"}) {
      sim::CountryLayerOverride o;
      o.code = code;
      o.dst = geo::DstPolicy::kNorthern;
      big.country_layers.push_back(std::move(o));
    }
    sim::CountryLayerOverride au;
    au.code = "AU";
    au.dst = geo::DstPolicy::kSouthern;
    geo::AnnualHoliday summer;
    summer.name = "bench-summer-break";
    summer.month = 1;
    summer.day = 2;
    summer.duration_days = 10;
    summer.adoption = 0.5;
    au.holidays.push_back(std::move(summer));
    big.country_layers.push_back(std::move(au));
  }
  core::ShardConfig sc;
  sc.shard_size =
      static_cast<std::size_t>(bench::env_int("DIURNAL_BENCH_SHARD_SIZE", 4096));
  sc.max_resident = static_cast<std::size_t>(
      bench::env_int("DIURNAL_BENCH_SHARD_RESIDENT", 4));

  const bool hwm_reset = util::reset_peak_rss();
  const auto before = util::read_memory_usage();
  const std::size_t allocs_before = g_allocs.load();
  const auto t0 = Clock::now();
  const auto cap = core::run_sharded_fleet(big, fc, sc);
  const double secs = seconds_since(t0);
  const std::size_t allocs = g_allocs.load() - allocs_before;
  const auto after = util::read_memory_usage();

  const double n_blocks = static_cast<double>(cap.stats.blocks);
  std::printf("\ncapacity: %zu blocks, %zu shards of %zu, "
              "%zu workers x %zu intra-threads%s\n",
              cap.stats.blocks, cap.stats.shards, cap.stats.shard_size,
              cap.stats.workers, cap.stats.intra_threads,
              layered ? " (layered continent world)" : "");
  std::printf("  %.2fs  (%.1f blocks/sec)\n", secs, n_blocks / secs);
  std::printf("  peak resident shards %zu (cap %zu), accounted %.1f MB\n",
              cap.stats.peak_resident, sc.max_resident,
              static_cast<double>(cap.stats.peak_resident_bytes) / 1048576.0);
  std::printf("  RSS before %zu KB, after %zu KB, peak %zu KB%s\n",
              before.rss_kb, after.rss_kb, after.peak_rss_kb,
              hwm_reset ? "" : " (VmHWM reset unavailable; peak includes "
                               "the equivalence phase)");
  std::printf("  heap allocations %zu (%.1f per block)\n", allocs,
              static_cast<double>(allocs) / n_blocks);
  bench::print_funnel("capacity funnel", cap.fleet.funnel);

  // The pinned budget for the default 100k-block capacity run (measured
  // ~93 MB peak; 256 MB leaves headroom for allocator and page-table
  // variance across machines).  Override with the world size when
  // scaling up or down (the CI smoke and large-world jobs pass their
  // own).
  const std::size_t budget_kb = static_cast<std::size_t>(
      bench::env_int("DIURNAL_BENCH_RSS_BUDGET_KB", 262144));
  const bool under_budget = !after.valid || after.peak_rss_kb <= budget_kb;
  const bool resident_ok = cap.stats.peak_resident <= sc.max_resident;
  std::printf("peak RSS %zu KB vs budget %zu KB -> %s\n", after.peak_rss_kb,
              budget_kb, under_budget ? "under" : "OVER");

  bench::JsonObject equiv;
  equiv.add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("cases", cases)
      .add("digests_match", ok)
      .add("fleet_digest", bench::digest_hex(ref_digest));

  bench::JsonObject capacity;
  capacity.add("blocks", static_cast<std::int64_t>(cap.stats.blocks))
      .add("shard_size", static_cast<std::int64_t>(cap.stats.shard_size))
      .add("shards", static_cast<std::int64_t>(cap.stats.shards))
      .add("max_resident", static_cast<std::int64_t>(sc.max_resident))
      .add("workers", static_cast<std::int64_t>(cap.stats.workers))
      .add("intra_threads", static_cast<std::int64_t>(cap.stats.intra_threads))
      .add("seconds", secs)
      .add("blocks_per_sec", n_blocks / secs)
      .add("peak_resident", static_cast<std::int64_t>(cap.stats.peak_resident))
      .add("peak_resident_bytes",
           static_cast<std::int64_t>(cap.stats.peak_resident_bytes))
      .add("series_bytes_retained",
           static_cast<std::int64_t>(cap.stats.series_bytes_retained))
      .add("heap_allocations", static_cast<std::int64_t>(allocs))
      .add("allocs_per_block", static_cast<double>(allocs) / n_blocks)
      .add("rss_before_kb", static_cast<std::int64_t>(before.rss_kb))
      .add("rss_after_kb", static_cast<std::int64_t>(after.rss_kb))
      .add("peak_rss_kb", static_cast<std::int64_t>(after.peak_rss_kb))
      .add("hwm_reset_ok", hwm_reset)
      .add("rss_valid", after.valid);

  bench::JsonObject j;
  j.add("bench", "shard")
      .add("dataset", fc.dataset.abbr)
      .add("threads", static_cast<std::int64_t>(hw))
      .add_object("equivalence", equiv)
      .add_object("capacity", capacity)
      .add("peak_rss_budget_kb", static_cast<std::int64_t>(budget_kb))
      .add("under_budget", under_budget)
      .add("resident_within_cap", resident_ok);
  bench::write_bench_json("BENCH_shard.json", j);
  return ok && under_budget && resident_ok ? 0 : 1;
}
