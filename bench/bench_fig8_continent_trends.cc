// Reproduces paper Figure 8: the fraction of change-sensitive blocks
// with downward trend changes, per continent, over 2020h1.  The shapes:
// (i) an Asian peak around 2020-01-20..27 (Spring Festival / Wuhan
// lockdown), (ii)/(iii) world-wide peaks around 2020-03-20 (Covid
// control measures), a muted Oceania, and an Africa peak driven by
// Morocco's 2020-03-20 lockdown.
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

using namespace diurnal;

int main() {
  bench::header("Figure 8", "Human-activity changes for 2020h1 by continent",
                "classification: 2020m1-ejnw; detection: 2020h1-ejnw");
  const auto wc = bench::scaled_world(5000);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020h1-ejnw");
  fc.classify_dataset = core::dataset("2020m1-ejnw");
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);

  const geo::Continent order[] = {
      geo::Continent::kEurope,       geo::Continent::kAfrica,
      geo::Continent::kAsia,         geo::Continent::kOceania,
      geo::Continent::kNorthAmerica, geo::Continent::kSouthAmerica};

  std::printf("fraction of downward-trending blocks (5-day bins):\n\n");
  std::printf("%-12s", "date");
  for (const auto c : order) {
    std::printf("%10.9s", std::string(geo::to_string(c)).c_str());
  }
  std::printf("\n");
  for (std::size_t day = 0; day + 5 <= agg.days(); day += 5) {
    const auto date = util::date_of(
        agg.start() + static_cast<util::SimTime>(day) * util::kSecondsPerDay);
    std::printf("%-12s", util::to_string(date).c_str());
    for (const auto c : order) {
      const auto& s = agg.continent(c);
      double frac = 0.0;
      for (std::size_t d = day; d < day + 5; ++d) {
        frac = std::max(frac, s.down_fraction(d));
      }
      std::printf("%10s", util::fmt_pct(frac).c_str());
    }
    std::printf("\n");
  }

  std::printf("\npeak day per continent:\n");
  for (const auto c : order) {
    const auto& s = agg.continent(c);
    std::size_t best = 0;
    for (std::size_t d = 1; d < agg.days(); ++d) {
      if (s.down[d] > s.down[best]) best = d;
    }
    const auto date = util::date_of(
        agg.start() + static_cast<util::SimTime>(best) * util::kSecondsPerDay);
    std::printf("  %-14s %s  (%d of %d blocks, %s)\n",
                std::string(geo::to_string(c)).c_str(),
                util::to_string(date).c_str(), s.down[best],
                s.change_sensitive_blocks,
                util::fmt_pct(s.down_fraction(best)).c_str());
  }

  // Shape checks.
  const auto& asia = agg.continent(geo::Continent::kAsia);
  const std::size_t jan20 = agg.day_of(util::time_of(2020, 1, 20));
  const std::size_t jan31 = agg.day_of(util::time_of(2020, 1, 31));
  double asia_jan = 0.0;
  for (std::size_t d = jan20; d <= jan31; ++d) {
    asia_jan = std::max(asia_jan, asia.down_fraction(d));
  }
  const std::size_t mar14 = agg.day_of(util::time_of(2020, 3, 14));
  const std::size_t mar28 = agg.day_of(util::time_of(2020, 3, 28));
  auto march_peak = [&](geo::Continent c) {
    double peak = 0.0;
    for (std::size_t d = mar14; d <= mar28; ++d) {
      peak = std::max(peak, agg.continent(c).down_fraction(d));
    }
    return peak;
  };
  std::printf("\nShape checks vs the paper:\n");
  std::printf("  Asia spikes in late January (Spring Festival/Wuhan): %s (%s)\n",
              asia_jan > 0.02 ? "HOLDS" : "VIOLATED",
              util::fmt_pct(asia_jan).c_str());
  std::printf("  Europe peaks in mid/late March (Covid measures): %s (%s)\n",
              march_peak(geo::Continent::kEurope) > 0.02 ? "HOLDS" : "VIOLATED",
              util::fmt_pct(march_peak(geo::Continent::kEurope)).c_str());
  std::printf("  North America peaks in March: %s (%s)\n",
              march_peak(geo::Continent::kNorthAmerica) > 0.02 ? "HOLDS"
                                                               : "VIOLATED",
              util::fmt_pct(march_peak(geo::Continent::kNorthAmerica)).c_str());
  return 0;
}
