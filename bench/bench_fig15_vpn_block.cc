// Reproduces paper Figure 15 (Appendix B.2): the USC VPN block
// (128.125.52.0/24).  Ten weeks of steady heavy use, then usage drops
// off just as WFH begins — because the VPN migrated to a larger address
// block.  The change-point detector flags the drop around 2020-03-15.
#include <cstdio>

#include "common.h"
#include "core/classify.h"
#include "core/detect.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Figure 15", "A VPN block (128.125.52.0/24) and detection");
  sim::WorldConfig wc;
  wc.num_blocks = 0;
  const sim::World world(wc);
  const auto* vpn = world.find(world.usc_vpn_block());

  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = probe::ProbeWindow{util::time_of(2020, 1, 1),
                                 util::time_of(2020, 3, 25)};
  const auto recon = recon::observe_and_reconstruct(*vpn, oc);
  const auto cls = core::classify_block(recon);
  const auto det = core::detect_changes(recon.counts);

  std::printf("(a) active addresses over three months (|E(b)| = %d):\n",
              recon.eb_count);
  const auto days = recon.counts.daily_stats();
  for (std::size_t i = 0; i < days.size(); i += 4) {
    const auto date = util::civil_from_days(util::epoch_days() + days[i].day);
    std::printf("  %s  max %4.0f  %s\n", util::to_string(date).c_str(),
                days[i].max,
                bench::bar(days[i].max / std::max(1.0, recon.max_active), 35)
                    .c_str());
  }

  std::printf("\nchange-sensitive: %s\n", cls.change_sensitive ? "YES" : "no");
  std::printf("\n(b) detected changes (threshold 1, drift 0.001): N = %zu\n",
              det.changes.size());
  bool drop_near_wfh = false;
  for (const auto& c : det.changes) {
    std::printf("  %s  alarm %s  amplitude %+.2f%s\n",
                c.direction == analysis::ChangeDirection::kDown ? "DOWN" : "UP",
                util::to_string(util::date_of(c.alarm)).c_str(), c.amplitude,
                c.filtered_as_outage ? "  [outage pair]" : "");
    if (c.direction == analysis::ChangeDirection::kDown &&
        !c.filtered_as_outage &&
        std::llabs(c.alarm - util::time_of(2020, 3, 15)) <=
            4 * util::kSecondsPerDay) {
      drop_near_wfh = true;
    }
  }
  std::printf("\nShape check: a significant drop detected around 2020-03-15 "
              "(the VPN migration as WFH began): %s\n",
              drop_near_wfh ? "HOLDS" : "VIOLATED");
  std::printf("paper: the change point is detected around 2020-03-15; "
              "tracking the migration to the new block is out of scope.\n");
  return 0;
}
