// Reproduces paper Figure 14 (Appendix D): sensitivity of geographic
// coverage to the observed/represented gridcell thresholds.  The paper
// picks 5 for both and shows coverage is similar for most small values
// (>= 3), with block-weighted coverage nearly insensitive.
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"
#include "geo/coverage.h"

using namespace diurnal;

int main() {
  bench::header("Figure 14", "CDF of gridcell thresholds (Appendix D)");
  const auto wc = bench::scaled_world(10000);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.run_detection = false;
  const auto fleet = core::run_fleet(world, fc);

  geo::CellCountMap cells;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    if (!out.cls.responsive) continue;
    auto& c = cells[world.blocks()[i].cell()];
    ++c.responsive;
    c.change_sensitive += out.cls.change_sensitive;
  }

  const auto sweep = geo::sweep_thresholds(cells, 40);
  util::TextTable t({"threshold", "well-observed cells", "represented cells",
                     ""});
  for (const auto& p : sweep) {
    if (p.threshold > 12 && p.threshold % 4 != 0) continue;
    t.add_row({std::to_string(p.threshold),
               util::fmt_pct(p.observed_cell_fraction),
               util::fmt_pct(p.represented_cell_fraction),
               bench::bar(p.represented_cell_fraction, 30)});
  }
  t.print();

  // Block-weighted coverage across thresholds (the paper's insensitivity
  // claim).
  std::printf("\nblock-weighted coverage by representation threshold:\n");
  for (const int thr : {1, 3, 5, 10, 20}) {
    const auto s = geo::summarize_coverage(cells, 5, thr);
    std::printf("  t=%2d  represented cells %-7s  c-s blocks %-7s  "
                "resp blocks %s\n",
                thr, util::fmt_pct(s.represented_cell_fraction()).c_str(),
                util::fmt_pct(s.cs_block_fraction()).c_str(),
                util::fmt_pct(s.resp_block_fraction()).c_str());
  }

  // The substance of the paper's insensitivity claim: the majority of
  // blocks live in well-populated gridcells, so block-weighted coverage
  // sits far above cell-weighted coverage at every threshold.  (The
  // absolute insensitivity up to t~100 needs the paper's 5.2M-block
  // scale, where each populated cell holds thousands of blocks.)
  bool heavy_tailed = true;
  for (const int thr : {3, 5, 10}) {
    const auto s = geo::summarize_coverage(cells, 5, thr);
    heavy_tailed &= s.cs_block_fraction() >
                    s.represented_cell_fraction() + 0.10;
  }
  std::printf("\nShape check: block-weighted coverage far exceeds "
              "cell-weighted coverage at t = 3, 5, 10 (blocks concentrate "
              "in well-represented cells): %s\n",
              heavy_tailed ? "HOLDS" : "VIOLATED");
  return 0;
}
