// Ablation for section 2.4's design choices: the wide-swing threshold
// (the paper picks s = 5, the smallest value tolerating a few
// uncorrelated restarts) and the 4-of-7-day persistence rule (tolerating
// weekends and 3-day holiday weekends).  One probing pass; every block
// is re-classified under each parameter set.
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/classify.h"
#include "core/datasets.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Ablation: swing classification",
                "threshold s and the 4-of-7 persistence rule (section 2.4)");
  const auto wc = bench::scaled_world(4000);
  const sim::World world(wc);

  const auto ds = core::dataset("2020m1-ejnw");
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.window = ds.window();

  // One probing pass; keep the reconstructions of responsive blocks.
  std::vector<recon::ReconResult> recons;
  std::vector<int> truth_diurnal_cat;
  for (const auto& b : world.blocks()) {
    if (b.eb_count == 0) continue;
    recons.push_back(recon::observe_and_reconstruct(b, oc));
    truth_diurnal_cat.push_back(sim::is_diurnal_category(b.category) ? 1 : 0);
  }
  std::printf("responsive-capable blocks probed: %zu\n\n", recons.size());

  util::TextTable t({"min swing s", "rule", "wide blocks", "change-sensitive",
                     "c-s that are truly diurnal"});
  struct Rule {
    const char* name;
    int window;
    int min_days;
  };
  const Rule rules[] = {
      {"4 of 7 (paper)", 7, 4},
      {"6 of 7 (strict)", 7, 6},
      {"1 of 7 (loose)", 7, 1},
  };
  for (const double s : {1.0, 3.0, 5.0, 8.0, 12.0}) {
    for (const auto& rule : rules) {
      core::ClassifierOptions opt;
      opt.swing.min_swing = s;
      opt.swing.window_days = rule.window;
      opt.swing.min_wide_days = rule.min_days;
      std::int64_t wide = 0, cs = 0, cs_truth = 0;
      for (std::size_t i = 0; i < recons.size(); ++i) {
        const auto cls = core::classify_block(recons[i], opt);
        wide += cls.wide_swing;
        cs += cls.change_sensitive;
        cs_truth += cls.change_sensitive && truth_diurnal_cat[i];
      }
      t.add_row({util::fmt(s, 0), rule.name, util::fmt_count(wide),
                 util::fmt_count(cs),
                 cs ? util::fmt_pct(static_cast<double>(cs_truth) / cs) : "-"});
    }
  }
  t.print();

  std::printf("\nExpectations: lowering s admits noise blocks (the truly-\n"
              "diurnal share of change-sensitive drops); raising s above 5\n"
              "sheds small genuine offices.  The loose 1-of-7 rule admits\n"
              "one-off restarts; the strict 6-of-7 rule rejects work-week\n"
              "blocks that rest on weekends (the paper's reason for 4-of-7).\n");
  return 0;
}
