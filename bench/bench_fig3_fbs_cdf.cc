// Reproduces paper Figure 3: cumulative distribution of the time to
// complete a full scan of all known active addresses (FBS), for
// combined data from one to four observers.  The paper reports ~48% of
// change-sensitive blocks within 6 hours with one observer vs ~65% with
// four, and 61% vs 78% within 12 hours.
#include <cstdio>
#include <vector>

#include "analysis/stats.h"
#include "common.h"
#include "core/pipeline.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Figure 3", "CDF of full-block-scan time, 1-4 observers",
                "blocks: change-sensitive in 2020m1-ejnw; FBS measured over "
                "four weeks");
  const auto wc = bench::scaled_world(4000);
  const sim::World world(wc);

  // Find the change-sensitive blocks (cheap 4-week classification).
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.run_detection = false;
  const auto fleet = core::run_fleet(world, fc);
  std::vector<const sim::BlockProfile*> cs;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    if (fleet.outcomes[i].cls.change_sensitive) {
      cs.push_back(&world.blocks()[i]);
    }
  }
  const std::size_t limit = static_cast<std::size_t>(
      bench::env_int("DIURNAL_BENCH_FBS_BLOCKS", 250));
  if (cs.size() > limit) cs.resize(limit);
  std::printf("measuring %zu change-sensitive blocks\n\n", cs.size());

  const std::vector<std::string> configs{"e", "jw", "jnw", "ejnw"};
  util::TextTable t({"observers", "<2h", "<6h", "<12h", "<24h", "median (h)",
                     "p90 (h)"});
  std::vector<std::vector<double>> medians(configs.size());
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    recon::BlockObservationConfig oc;
    oc.observers = probe::sites_from_string(configs[ci]);
    oc.window = core::dataset("2020m1-" + configs[ci]).window();
    std::vector<double>& med = medians[ci];
    for (const auto* b : cs) {
      const auto r = recon::observe_and_reconstruct(*b, oc);
      if (!r.fbs_spans_seconds.empty()) med.push_back(r.fbs_median_seconds());
    }
    const std::vector<double> marks{2 * 3600.0, 6 * 3600.0, 12 * 3600.0,
                                    24 * 3600.0};
    const auto cdf = analysis::ecdf_at(med, marks);
    t.add_row({configs[ci], util::fmt_pct(cdf[0]), util::fmt_pct(cdf[1]),
               util::fmt_pct(cdf[2]), util::fmt_pct(cdf[3]),
               util::fmt(analysis::quantile(med, 0.5) / 3600.0, 2),
               util::fmt(analysis::quantile(med, 0.9) / 3600.0, 2)});
  }
  t.print();

  const auto frac6 = [&](std::size_t ci) {
    const std::vector<double> m{6 * 3600.0};
    return analysis::ecdf_at(medians[ci], m)[0];
  };
  std::printf("\nShape checks vs the paper:\n");
  std::printf("  four observers beat one at the 6-hour mark: %s "
              "(%s vs %s; paper ~65%% vs ~48%%)\n",
              frac6(3) > frac6(0) ? "HOLDS" : "VIOLATED",
              util::fmt_pct(frac6(3)).c_str(), util::fmt_pct(frac6(0)).c_str());
  std::printf("  monotone improvement with observer count: %s\n",
              (frac6(0) <= frac6(1) && frac6(1) <= frac6(2) &&
               frac6(2) <= frac6(3))
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
