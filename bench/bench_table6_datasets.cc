// Reproduces paper Table 6: the inventory of existing, publicly
// available datasets, expressed as analysis windows over the synthetic
// substrate (see DESIGN.md for the substitution).
#include <cstdio>

#include "common.h"
#include "core/datasets.h"

using namespace diurnal;

int main() {
  bench::header("Table 6", "Existing, publicly available datasets");
  util::TextTable t({"abbr", "dataset name", "start", "duration"});
  for (const auto& d : core::table6_datasets()) {
    t.add_row({d.abbr, d.full_name, util::to_string(d.start),
               std::to_string(d.duration_weeks) + " weeks"});
  }
  t.print();
  std::printf(
      "\nsites: c: Ft. Collins, Colorado; e: ISI East (Washington DC);\n"
      "g: Athens, Greece; j: Keio University (Tokyo); n: Utrecht,\n"
      "Netherlands; w: ISI West (Los Angeles); x: additional observer\n"
      "(section 2.8).\n");
  return 0;
}
