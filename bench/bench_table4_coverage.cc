// Reproduces paper Table 4: geographic coverage of human-activity
// change detection, by gridcells and block-weighted.  The paper finds
// 60% of observed gridcells represented, covering 99.7% of
// change-sensitive and 98.5% of ping-responsive blocks.
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"
#include "geo/coverage.h"

using namespace diurnal;

int main() {
  bench::header("Table 4",
                "Geographic coverage of human-activity change detection",
                "dataset: 2020m1-ejnw classification");
  const auto wc = bench::scaled_world(12000);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.run_detection = false;
  const auto fleet = core::run_fleet(world, fc);

  geo::CellCountMap cells;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    if (!out.cls.responsive) continue;
    auto& c = cells[world.blocks()[i].cell()];
    ++c.responsive;
    c.change_sensitive += out.cls.change_sensitive;
  }
  const auto s = geo::summarize_coverage(cells, 5, 5);

  util::TextTable table({"", "gridcells", "", "C-S blks", "", "resp. blks", ""});
  auto pct = [](std::int64_t num, std::int64_t den) {
    return den == 0 ? std::string("-")
                    : util::fmt_pct(static_cast<double>(num) / den);
  };
  table.add_row({"all", util::fmt_count(s.cells_total), "",
                 util::fmt_count(s.cs_blocks_total), "",
                 util::fmt_count(s.resp_blocks_total), "100%"});
  table.add_row({"under-observed", util::fmt_count(s.cells_under_observed), "",
                 util::fmt_count(s.cs_blocks_under_observed),
                 pct(s.cs_blocks_under_observed, s.cs_blocks_total), "", ""});
  table.add_row({"observed", util::fmt_count(s.cells_observed), "100%",
                 util::fmt_count(s.cs_blocks_observed), "100%",
                 util::fmt_count(s.resp_blocks_observed), "100%"});
  table.add_row({"under-represented",
                 util::fmt_count(s.cells_under_represented),
                 pct(s.cells_under_represented, s.cells_observed),
                 util::fmt_count(s.cs_blocks_observed - s.cs_blocks_represented),
                 pct(s.cs_blocks_observed - s.cs_blocks_represented,
                     s.cs_blocks_observed),
                 util::fmt_count(s.resp_blocks_observed - s.resp_blocks_represented),
                 pct(s.resp_blocks_observed - s.resp_blocks_represented,
                     s.resp_blocks_observed)});
  table.add_row({"represented", util::fmt_count(s.cells_represented),
                 pct(s.cells_represented, s.cells_observed),
                 util::fmt_count(s.cs_blocks_represented),
                 pct(s.cs_blocks_represented, s.cs_blocks_observed),
                 util::fmt_count(s.resp_blocks_represented),
                 pct(s.resp_blocks_represented, s.resp_blocks_observed)});
  table.print();

  // Scale-adjusted thresholds: the paper's t=5 assumes ~150
  // change-sensitive blocks per populated cell (330k over 2.2k cells);
  // a 1:1000-scale world has ~1/1000 of the per-cell density, so the
  // paper-comparable representation threshold at this scale is 1.
  const auto s_adj = geo::summarize_coverage(cells, 1, 1);
  std::printf("\nscale-adjusted (observe/represent thresholds = 1):\n");
  std::printf("  represented cells %s of observed; c-s block coverage %s; "
              "responsive block coverage %s\n",
              util::fmt_pct(s_adj.represented_cell_fraction()).c_str(),
              util::fmt_pct(s_adj.cs_block_fraction()).c_str(),
              util::fmt_pct(s_adj.resp_block_fraction()).c_str());

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  represented gridcell fraction: %s (paper: 60%%)\n",
              util::fmt_pct(s.represented_cell_fraction()).c_str());
  std::printf("  block-weighted c-s coverage:   %s (paper: 99.7%%)\n",
              util::fmt_pct(s.cs_block_fraction()).c_str());
  std::printf("  block-weighted resp coverage:  %s (paper: 98.5%%)\n",
              util::fmt_pct(s.resp_block_fraction()).c_str());
  std::printf("  block-weighted coverage exceeds cell coverage: %s\n",
              s.resp_block_fraction() > s.represented_cell_fraction()
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("  scale-adjusted coverage approaches the paper's regime "
              "(60%% cells / 98.5%% blocks): %s (%s cells, %s blocks)\n",
              (s_adj.represented_cell_fraction() > 0.5 &&
               s_adj.resp_block_fraction() > 0.8)
                  ? "HOLDS"
                  : "VIOLATED",
              util::fmt_pct(s_adj.represented_cell_fraction()).c_str(),
              util::fmt_pct(s_adj.resp_block_fraction()).c_str());
  return 0;
}
