// Reproduces paper Figures 12 and 13 (Appendices B.3 and B.4): the same
// analysis re-run on 2023q1.  Beijing shows a Spring-Festival peak
// around 2023-01-21; New Delhi shows no distinguishable peak, supporting
// the claim that the 2020 Indian changes were events, not recurring
// holidays.
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

using namespace diurnal;

namespace {

struct CityResult {
  double peak_fraction = 0.0;
  util::SimTime peak_day = 0;
  int blocks = 0;
};

CityResult run_country(const char* country, geo::GridCell cell) {
  sim::WorldConfig wc = bench::scaled_world(3000, 1, false);
  wc.only_country = country;
  wc.horizon_start = util::time_of(2023, 1, 1);
  wc.horizon_end = util::time_of(2023, 4, 1);
  wc.include_special_blocks = false;
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2023q1-cegnw");  // all five 2023 sites
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);

  CityResult res;
  const auto it = agg.by_cell().find(cell);
  if (it == agg.by_cell().end()) return res;
  const auto& s = it->second;
  res.blocks = s.change_sensitive_blocks;
  std::printf("%s %s: %d change-sensitive blocks; notable days:\n", country,
              cell.to_string().c_str(), res.blocks);
  for (std::size_t d = 0; d < agg.days(); ++d) {
    const double down = s.down_fraction(d);
    if (down > res.peak_fraction) {
      res.peak_fraction = down;
      res.peak_day = agg.start() +
                     static_cast<util::SimTime>(d) * util::kSecondsPerDay;
    }
    if (down >= 0.02) {
      std::printf("  %s  down %-7s %s\n",
                  util::to_string(util::date_of(
                                      agg.start() +
                                      static_cast<util::SimTime>(d) *
                                          util::kSecondsPerDay))
                      .c_str(),
                  util::fmt_pct(down).c_str(), bench::bar(down * 4, 25).c_str());
    }
  }
  std::printf("  peak %s on %s\n\n", util::fmt_pct(res.peak_fraction).c_str(),
              util::to_string(util::date_of(res.peak_day)).c_str());
  return res;
}

}  // namespace

int main() {
  bench::header("Figures 12/13", "Beijing and New Delhi in 2023q1",
                "dataset: 2023q1-cegnw (sites c and g healthy again)");
  const auto beijing = run_country("CN", geo::GridCell::of(39.9, 116.4));
  const auto delhi = run_country("IN", geo::GridCell::of(28.6, 77.2));

  const bool beijing_peak_at_festival =
      beijing.peak_fraction > 0.03 &&
      std::llabs(beijing.peak_day - util::time_of(2023, 1, 21)) <=
          5 * util::kSecondsPerDay;
  std::printf("Shape checks vs the paper:\n");
  std::printf("  Beijing peaks near Spring Festival 2023-01-21/22: %s "
              "(peak %s on %s)\n",
              beijing_peak_at_festival ? "HOLDS" : "VIOLATED",
              util::fmt_pct(beijing.peak_fraction).c_str(),
              util::to_string(util::date_of(beijing.peak_day)).c_str());
  std::printf("  New Delhi shows no comparable peak in 2023q1: %s (peak %s)\n",
              delhi.peak_fraction < beijing.peak_fraction / 2 ? "HOLDS"
                                                              : "VIOLATED",
              util::fmt_pct(delhi.peak_fraction).c_str());
  return 0;
}
