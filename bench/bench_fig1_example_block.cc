// Reproduces paper Figure 1: the running example block (128.9.144.0/24
// at USC) whose diurnal address usage disappears when Covid-19
// work-from-home begins on 2020-03-15.
//   (a) active addresses over three months, with holidays visible;
//   (b) STL decomposition into trend / seasonal / residual;
//   (c) CUSUM change detection on the z-scored trend (threshold 1,
//       drift 0.001).
#include <cstdio>

#include "common.h"
#include "core/classify.h"
#include "core/detect.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Figure 1", "A block illustrating address usage changes "
                            "due to confirmed WFH (128.9.144.0/24)");
  sim::WorldConfig wc;
  wc.num_blocks = 0;
  const sim::World world(wc);
  const auto* block = world.find(world.usc_office_block());

  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = probe::ProbeWindow{util::time_of(2020, 1, 1),
                                 util::time_of(2020, 3, 25)};
  const auto recon = recon::observe_and_reconstruct(*block, oc);

  std::printf("(a) active addresses (|E(b)| = %d, red line in the paper; "
              "daily min/max of the blue line):\n", recon.eb_count);
  const auto days = recon.counts.daily_stats();
  for (std::size_t i = 0; i < days.size(); i += 2) {
    const auto date = util::civil_from_days(util::epoch_days() + days[i].day);
    std::printf("  %s  min %4.0f  max %4.0f  %s\n",
                util::to_string(date).c_str(), days[i].min, days[i].max,
                bench::bar(days[i].max / 20.0, 30).c_str());
  }

  const auto cls = core::classify_block(recon);
  std::printf("\nclassification: diurnal=%s (power ratio %.2f), wide "
              "swing=%s (max %.0f) -> change-sensitive=%s\n",
              cls.diurnal ? "yes" : "no", cls.diurnal_detail.power_ratio,
              cls.wide_swing ? "yes" : "no", cls.swing_detail.max_daily_swing,
              cls.change_sensitive ? "YES" : "no");

  const auto det = core::detect_changes(recon.counts);
  std::printf("\n(b) STL decomposition (weekly period; every 4th day shown):\n");
  std::printf("  %-12s %8s %16s %9s\n", "date", "trend", "seasonal[min,max]",
              "residual");
  for (std::size_t i = 0; i + 96 <= det.trend.size(); i += 96) {
    double smin = 1e9, smax = -1e9, rabs = 0;
    for (std::size_t j = i; j < i + 96; ++j) {
      smin = std::min(smin, det.seasonal[j]);
      smax = std::max(smax, det.seasonal[j]);
      rabs += std::abs(det.residual[j]) / 96.0;
    }
    std::printf("  %-12s %8.2f  [%6.2f,%6.2f] %9.2f\n",
                util::to_string(util::date_of(det.trend.time_at(i))).c_str(),
                det.trend[i], smin, smax, rabs);
  }

  std::printf("\n(c) CUSUM detection (threshold 1, drift 0.001): N changes = %zu\n",
              det.changes.size());
  for (const auto& c : det.changes) {
    std::printf("  %s change: start %s  alarm %s  end %s  amplitude %+.2f%s\n",
                c.direction == analysis::ChangeDirection::kDown ? "DOWN" : "UP",
                util::to_string(util::date_of(c.start)).c_str(),
                util::to_string(util::date_of(c.alarm)).c_str(),
                util::to_string(util::date_of(c.end)).c_str(), c.amplitude,
                c.filtered_as_outage ? "  [outage pair]" : "");
  }
  std::printf("\nground truth: MLK holiday 2020-01-20, Presidents' Day "
              "2020-02-17, WFH begins 2020-03-15.\n");
  std::printf("paper: one change detected, start 2020-03-08, alarm "
              "2020-03-18, around the true 2020-03-15.\n");
  return 0;
}
