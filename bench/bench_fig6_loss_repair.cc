// Reproduces paper Figure 6 (section 3.3): congestive loss at one
// observer and its correction by 1-loss repair.  The paper's sample
// block (2023q2): healthy observers see mean reply rates ~0.62, the
// congested observer w sees 0.479; repair lifts w to 0.552 and the
// all-observer reconstruction from 0.581 to 0.622.
#include <cstdio>
#include <vector>

#include "common.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Figure 6", "Congestive loss and 1-loss repair",
                "dataset: 2023q2 window; all five 2023 sites (c e g n w)");
  sim::WorldConfig wc = bench::scaled_world(600, 1, false);
  wc.only_country = "CN";
  wc.horizon_start = util::time_of(2023, 4, 1);
  wc.horizon_end = util::time_of(2023, 7, 1);
  wc.include_special_blocks = false;
  const sim::World world(wc);

  // Pick a busy block reached by observer w over the congested link.
  probe::LossModel loss{};
  const sim::BlockProfile* target = nullptr;
  for (const auto& b : world.blocks()) {
    if (b.category == sim::BlockCategory::kServerFarm && b.eb_count >= 64 &&
        loss.path_congested(probe::site('w'), b)) {
      target = &b;
      break;
    }
  }
  if (target == nullptr) {
    std::printf("no congested block in sample; enlarge the world\n");
    return 1;
  }
  std::printf("sample block: %s (|E(b)| = %d, server farm, behind the "
              "congested w link)\n\n",
              target->id.to_string().c_str(), target->eb_count);

  recon::BlockObservationConfig base;
  base.observers = probe::sites_from_string("cegnw");
  base.window = probe::ProbeWindow{util::time_of(2023, 4, 1),
                                   util::time_of(2023, 6, 3)};
  recon::BlockObservationConfig no_repair = base;
  no_repair.one_loss_repair = false;

  const auto with = recon::observe_and_reconstruct_detailed(*target, base);
  const auto without = recon::observe_and_reconstruct_detailed(*target, no_repair);

  util::TextTable t({"reconstruction", "w/o 1-loss repair", "w/ 1-loss repair"});
  for (std::size_t i = 0; i < without.per_observer.size(); ++i) {
    t.add_row({std::string(1, without.per_observer[i].code) + " only",
               util::fmt(without.per_observer[i].result.mean_reply_rate, 3),
               util::fmt(with.per_observer[i].result.mean_reply_rate, 3)});
  }
  t.add_row({"all observers", util::fmt(without.combined.mean_reply_rate, 3),
             util::fmt(with.combined.mean_reply_rate, 3)});
  t.print();

  double healthy_mean = 0.0;
  double w_without = 0.0, w_with = 0.0;
  int healthy_n = 0;
  for (std::size_t i = 0; i < without.per_observer.size(); ++i) {
    if (without.per_observer[i].code == 'w') {
      w_without = without.per_observer[i].result.mean_reply_rate;
      w_with = with.per_observer[i].result.mean_reply_rate;
    } else {
      healthy_mean += without.per_observer[i].result.mean_reply_rate;
      ++healthy_n;
    }
  }
  healthy_mean /= std::max(1, healthy_n);

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  congested observer w below the healthy sites: %s "
              "(w %.3f vs healthy mean %.3f; paper 0.479 vs 0.620)\n",
              w_without < healthy_mean - 0.02 ? "HOLDS" : "VIOLATED",
              w_without, healthy_mean);
  std::printf("  repair lifts w: %s (%.3f -> %.3f; paper 0.479 -> 0.552)\n",
              w_with > w_without ? "HOLDS" : "VIOLATED", w_without, w_with);
  std::printf("  repair lifts the all-observer reconstruction toward the "
              "healthy rate: %s (%.3f -> %.3f; paper 0.581 -> 0.622)\n",
              with.combined.mean_reply_rate >
                      without.combined.mean_reply_rate
                  ? "HOLDS"
                  : "VIOLATED",
              without.combined.mean_reply_rate, with.combined.mean_reply_rate);
  // Repair also fixes genuine single-round blips (session churn), so
  // healthy observers move a little; the congested observer must move
  // much more.
  const double healthy_delta =
      std::abs(with.per_observer[0].result.mean_reply_rate -
               without.per_observer[0].result.mean_reply_rate);
  std::printf("  repair moves the congested observer more than a healthy "
              "one: %s (w %+0.3f vs %c %+0.3f)\n",
              (w_with - w_without) > healthy_delta ? "HOLDS" : "VIOLATED",
              w_with - w_without, with.per_observer[0].code, healthy_delta);
  return 0;
}
