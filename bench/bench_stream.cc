// BENCH stream: the incremental drive of the streaming fleet engine.
//
// Feeds the reference fleet world one epoch (default 1 day) at a time
// through StreamingFleet::advance_to and measures (a) ingest throughput
// (post-fault observations per second of advance time), (b) per-epoch
// latency — first epoch separately, since it pays the per-block setup,
// and the steady-state distribution over the remaining epochs — and
// (c) finalize cost.  The run ends with the equivalence gate: the
// incrementally-driven result must hash to the same fleet digest as the
// batch run_fleet pass, or the bench exits nonzero.
//
// Scale knobs: DIURNAL_BENCH_BLOCKS, DIURNAL_BENCH_SEED,
// DIURNAL_BENCH_EPOCH_SECONDS (default 86400), and DIURNAL_BENCH_JSON
// (output path, default BENCH_stream.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "core/datasets.h"
#include "core/digest.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "sim/world.h"
#include "util/date.h"

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double quantile_ms(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)] * 1e3;
}

}  // namespace

int main() {
  bench::header("BENCH stream",
                "incremental (round-by-round) fleet drive vs batch",
                "streaming engine; see EXPERIMENTS.md 'bench_stream'");
  const auto wc = bench::scaled_world(2000, 1);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));

  const std::int64_t epoch_seconds = std::max(
      1, bench::env_int("DIURNAL_BENCH_EPOCH_SECONDS",
                        static_cast<int>(util::kSecondsPerDay)));

  // Batch reference: one run_fleet pass, the digest the stream must hit.
  auto t0 = Clock::now();
  const auto batch = core::run_fleet(world, fc);
  const double batch_secs = seconds_since(t0);
  const std::uint64_t batch_digest = core::fleet_digest(batch);

  // Incremental drive: one advance per epoch, then finalize.
  core::StreamingFleet fleet(world, fc);
  std::vector<double> epoch_secs_each;
  std::size_t observations = 0;
  std::size_t provisional_alarms = 0;
  const auto stream_t0 = Clock::now();
  for (util::SimTime t = fleet.window_start() + epoch_seconds;;
       t += epoch_seconds) {
    const auto bounded = std::min(t, fleet.window_end());
    const auto et0 = Clock::now();
    const auto report = fleet.advance_to(bounded);
    epoch_secs_each.push_back(seconds_since(et0));
    observations += report.observations;
    provisional_alarms += report.provisional.size();
    if (bounded == fleet.window_end()) break;
  }
  const double ingest_secs = seconds_since(stream_t0);
  t0 = Clock::now();
  const auto streamed = fleet.finalize();
  const double finalize_secs = seconds_since(t0);
  const std::uint64_t stream_digest = core::fleet_digest(streamed);

  const std::size_t epochs = epoch_secs_each.size();
  const double first_epoch = epoch_secs_each.empty() ? 0.0 : epoch_secs_each[0];
  std::vector<double> steady(epoch_secs_each.begin() +
                                 (epoch_secs_each.size() > 1 ? 1 : 0),
                             epoch_secs_each.end());
  const double obs_per_sec =
      ingest_secs > 0 ? static_cast<double>(observations) / ingest_secs : 0.0;

  std::printf("batch:  %7.2fs  (digest %s)\n", batch_secs,
              core::digest_hex(batch_digest).c_str());
  std::printf(
      "stream: %7.2fs ingest + %.2fs finalize over %zu epochs of %llds\n",
      ingest_secs, finalize_secs, epochs,
      static_cast<long long>(epoch_seconds));
  std::printf("  ingest   %10.0f obs/sec  (%.2fM observations)\n", obs_per_sec,
              static_cast<double>(observations) * 1e-6);
  std::printf(
      "  epoch    first %.1fms | steady p50 %.1fms p90 %.1fms max %.1fms\n",
      first_epoch * 1e3, quantile_ms(steady, 0.5), quantile_ms(steady, 0.9),
      quantile_ms(steady, 1.0));
  std::printf("  alarms   %zu provisional\n", provisional_alarms);
  const bool equivalent = stream_digest == batch_digest;
  std::printf("digest batch %s | stream %s -> %s\n",
              core::digest_hex(batch_digest).c_str(),
              core::digest_hex(stream_digest).c_str(),
              equivalent ? "HOLDS (batch == streaming)" : "VIOLATED");
  bench::print_funnel("funnel", streamed.funnel);

  bench::JsonObject j;
  j.add("bench", "stream")
      .add("dataset", fc.dataset.abbr)
      .add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("threads", fc.threads)
      .add("epoch_seconds", epoch_seconds)
      .add("epochs", static_cast<std::int64_t>(epochs))
      .add("observations", static_cast<std::int64_t>(observations))
      .add("ingest_seconds", ingest_secs)
      .add("obs_per_sec", obs_per_sec)
      .add("epoch_first_ms", first_epoch * 1e3)
      .add("epoch_steady_p50_ms", quantile_ms(steady, 0.5))
      .add("epoch_steady_p90_ms", quantile_ms(steady, 0.9))
      .add("epoch_steady_max_ms", quantile_ms(steady, 1.0))
      .add("finalize_seconds", finalize_secs)
      .add("batch_seconds", batch_secs)
      .add("stream_total_seconds", ingest_secs + finalize_secs)
      .add("provisional_alarms", static_cast<std::int64_t>(provisional_alarms))
      .add("equivalent", equivalent)
      .add("fleet_digest", core::digest_hex(stream_digest));
  bench::write_bench_json("BENCH_stream.json", j);
  return equivalent ? 0 : 1;
}
