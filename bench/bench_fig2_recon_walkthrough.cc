// Reproduces paper Figure 2: address reconstruction for a simple
// 4-address block over ten rounds, showing the incremental estimate
// converging on the truth as addresses are rescanned.
#include <cstdio>

#include "common.h"
#include "recon/reconstruct.h"

using namespace diurnal;

int main() {
  bench::header("Figure 2", "Address reconstruction for a 4-address block");

  // The paper's scan schedule: per-round probes and results.
  struct Scan {
    int round;
    int addr;
    bool up;
  };
  const Scan scans[] = {
      {1, 0, false}, {2, 1, false}, {3, 2, true},  {4, 3, true},
      {5, 0, true},  {5, 2, false}, {6, 1, false}, {7, 1, true},
      {8, 2, true},  {9, 0, true},  {10, 3, true},
  };
  // Ground-truth per-round states (paper's bottom row): addresses
  // .1 .2 .3 .4 across rounds 1..10.
  const int truth[10][4] = {
      {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {0, 0, 1, 1}, {1, 0, 0, 1},
      {1, 0, 0, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1}, {1, 1, 1, 1},
  };

  probe::ObservationVec obs;
  int offset = 0;
  int prev_round = 0;
  for (const auto& s : scans) {
    offset = (s.round == prev_round) ? offset + 1 : 0;
    prev_round = s.round;
    obs.push_back(probe::Observation{
        static_cast<std::uint32_t>(s.round * 60 + offset),
        static_cast<std::uint8_t>(s.addr), s.up});
  }
  recon::ReconOptions opt;
  opt.sample_step = 60;
  const auto r = recon::reconstruct(obs, 4, probe::ProbeWindow{0, 11 * 60}, opt);

  std::printf("round:      ");
  for (int round = 1; round <= 10; ++round) std::printf("%3d", round);
  std::printf("\n");
  for (int a = 0; a < 4; ++a) {
    std::printf(".%d status:  ", a + 1);
    for (int round = 0; round < 10; ++round) std::printf("%3d", truth[round][a]);
    std::printf("\n");
  }
  std::printf("estimate:   ");
  for (int round = 1; round <= 10; ++round) {
    const double v = r.counts[static_cast<std::size_t>(round)];
    std::printf("%3.0f", v);
  }
  std::printf("\ntruth:      ");
  for (int round = 0; round < 10; ++round) {
    int sum = 0;
    for (int a = 0; a < 4; ++a) sum += truth[round][a];
    std::printf("%3d", sum);
  }
  std::printf("\n\nthe estimate lags the truth until each changed address is "
              "rescanned,\nthen converges (rounds 8-10; paper shows the same "
              "convergence).\n");
  std::printf("observed targets: %d of %d; reply rate %.2f\n",
              r.observed_targets, r.eb_count, r.mean_reply_rate);
  return 0;
}
