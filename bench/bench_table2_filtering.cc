// Reproduces paper Table 2: blocks before and after filtering, across
// the seven analysis windows (responsive -> diurnal -> swing ->
// change-sensitive).  The paper reports 5.17M responsive, ~400k diurnal,
// ~58% wide swing, and 168k-330k change-sensitive blocks; the shape to
// check here is the funnel ratios and the duration effect (longer
// windows find fewer change-sensitive blocks).
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/pipeline.h"

using namespace diurnal;

int main() {
  bench::header("Table 2", "Blocks before and after filtering (in /24s)");
  const auto wc = bench::scaled_world(4000);
  const sim::World world(wc);

  const std::vector<std::string> variants{
      "2019q4-w",    "2020q1-w",    "2020q2-w",   "2020h1-w",
      "2020m1-w",    "2020h1-ejnw", "2020m1-ejnw"};

  util::TextTable table({"dataset", "routed", "not-resp", "responsive",
                         "not-diurnal", "diurnal", "narrow", "wide",
                         "not-c-s", "change-sensitive", "c-s/resp"});
  std::vector<core::FunnelCounts> funnels;
  for (const auto& abbr : variants) {
    core::FleetConfig fc;
    fc.dataset = core::dataset(abbr);
    fc.run_detection = false;
    const auto res = core::run_fleet(world, fc);
    funnels.push_back(res.funnel);
    const auto& f = res.funnel;
    table.add_row({abbr, util::fmt_count(f.routed),
                   util::fmt_count(f.not_responsive),
                   util::fmt_count(f.responsive),
                   util::fmt_count(f.not_diurnal), util::fmt_count(f.diurnal),
                   util::fmt_count(f.narrow_swing),
                   util::fmt_count(f.wide_swing),
                   util::fmt_count(f.not_change_sensitive),
                   util::fmt_count(f.change_sensitive),
                   util::fmt_pct(f.responsive
                                     ? static_cast<double>(f.change_sensitive) /
                                           f.responsive
                                     : 0.0)});
  }
  table.print();

  std::printf("\nShape checks vs the paper:\n");
  const auto& q1 = funnels[1];
  std::printf("  responsive/routed        %s (paper 2020q1-w: 46.5%%)\n",
              util::fmt_pct(static_cast<double>(q1.responsive) / q1.routed).c_str());
  std::printf("  diurnal/responsive       %s (paper 2020q1-w: 7.7%%)\n",
              util::fmt_pct(static_cast<double>(q1.diurnal) / q1.responsive).c_str());
  std::printf("  wide/responsive          %s (paper 2020q1-w: 58.5%%)\n",
              util::fmt_pct(static_cast<double>(q1.wide_swing) / q1.responsive).c_str());
  std::printf("  c-s/responsive           %s (paper 2020q1-w: 6.1%%)\n",
              util::fmt_pct(static_cast<double>(q1.change_sensitive) / q1.responsive).c_str());
  const auto& h1 = funnels[3];
  const auto& m1 = funnels[4];
  std::printf("  duration effect (paper: 310k ~ 318k >> 169k, i.e. the\n"
              "  24-week window finds far fewer change-sensitive blocks than\n"
              "  either short window): m1=%s q1=%s h1=%s -> %s\n",
              util::fmt_count(m1.change_sensitive).c_str(),
              util::fmt_count(q1.change_sensitive).c_str(),
              util::fmt_count(h1.change_sensitive).c_str(),
              (m1.change_sensitive > h1.change_sensitive &&
               q1.change_sensitive > h1.change_sensitive)
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("  observer effect: c-s(2020m1-ejnw)=%s >= c-s(2020m1-w)=%s: %s\n",
              util::fmt_count(funnels[6].change_sensitive).c_str(),
              util::fmt_count(funnels[4].change_sensitive).c_str(),
              funnels[6].change_sensitive >= funnels[4].change_sensitive
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
