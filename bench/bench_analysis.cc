// BENCH analysis: per-stage throughput of the span-kernel analysis
// layer (FFT diurnality, STL decomposition, CUSUM) over real fleet
// series, plus the allocation story the refactor exists for: heap
// allocations per block for the legacy vector/TimeSeries chain vs the
// warm BlockAnalyzer chain.  The span chain must run with ZERO
// steady-state allocations per block (the bench exits nonzero
// otherwise), and the fleet digest is recorded so CI can cross-check
// that the measured build still produces the golden result.
//
// Scale knobs: DIURNAL_BENCH_BLOCKS, DIURNAL_BENCH_SEED,
// DIURNAL_BENCH_REPS, and DIURNAL_BENCH_JSON (default
// BENCH_analysis.json).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "analysis/block_analyzer.h"
#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/stl.h"
#include "analysis/swing.h"
#include "common.h"
#include "core/datasets.h"
#include "core/pipeline.h"
#include "sim/world.h"
#include "util/timeseries.h"

namespace {

// Global allocation counter: every path into the heap bumps it.  The
// counts are what the bench is about — the span chain's steady state
// must not touch any of these.
std::atomic<std::size_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Sink so the timed kernel calls cannot be dead-code-eliminated.
volatile double g_sink = 0.0;

}  // namespace

int main() {
  bench::header("BENCH analysis",
                "span-kernel stage throughput + allocations/block",
                "legacy vector chain vs warm BlockAnalyzer; see DESIGN.md §7");
  const auto wc = bench::scaled_world(2000, 1);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = 1;

  // One fleet pass supplies both the digest cross-check and the series
  // store the kernel stages below run over.
  auto t0 = Clock::now();
  const auto fleet = core::run_fleet(world, fc);
  const double fleet_seconds = seconds_since(t0);
  const std::uint64_t digest = bench::fleet_digest(fleet);
  std::printf("fleet pass: %.2fs, digest %s\n", fleet_seconds,
              bench::digest_hex(digest).c_str());

  const std::int64_t step = fleet.series.step();
  const double samples_per_day =
      static_cast<double>(util::kSecondsPerDay) / static_cast<double>(step);
  analysis::StlOptions stl_opt;
  stl_opt.period = static_cast<int>(
      core::DetectorOptions{}.period_seconds / step);

  // Sample rows long enough for the full chain (>= 2 STL periods).
  std::vector<std::size_t> rows;
  std::size_t total_samples = 0;
  for (std::size_t i = 0; i < fleet.series.rows() && rows.size() < 64; ++i) {
    const auto s = fleet.series.series(i);
    if (s.size() < 2 * static_cast<std::size_t>(stl_opt.period)) continue;
    rows.push_back(i);
    total_samples += s.size();
  }
  if (rows.empty()) {
    std::printf("FAIL: no series rows long enough to bench\n");
    return 1;
  }
  std::printf("sampled %zu blocks, %zu samples each pass\n", rows.size(),
              total_samples / rows.size());

  const int reps = std::max(1, bench::env_int("DIURNAL_BENCH_REPS", 3));
  analysis::BlockAnalyzer az;

  // Pre-z-scored trends for the CUSUM stage (setup, untimed).
  std::vector<std::vector<double>> zrows;
  zrows.reserve(rows.size());
  for (const std::size_t i : rows) {
    const auto dec = az.decompose_stl(fleet.series.series(i), stl_opt);
    const auto z = az.zscore(dec.trend);
    zrows.emplace_back(z.begin(), z.end());
  }

  // Min-of-reps per-stage throughput, every stage through the same warm
  // analyzer the fleet workers use.
  double fft_best = 0, stl_best = 0, cusum_best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto t = Clock::now();
    for (const std::size_t i : rows) {
      const auto d = az.diurnal(fleet.series.series(i), samples_per_day);
      g_sink = g_sink + d.power_ratio;
    }
    const double fft_s = seconds_since(t);

    t = Clock::now();
    for (const std::size_t i : rows) {
      const auto dec = az.decompose_stl(fleet.series.series(i), stl_opt);
      g_sink = g_sink + dec.trend[dec.trend.size() / 2];
    }
    const double stl_s = seconds_since(t);

    t = Clock::now();
    for (const auto& z : zrows) {
      const auto cus = az.cusum(z);
      g_sink = g_sink + static_cast<double>(cus.changes.size());
    }
    const double cusum_s = seconds_since(t);

    if (rep == 0 || fft_s < fft_best) fft_best = fft_s;
    if (rep == 0 || stl_s < stl_best) stl_best = stl_s;
    if (rep == 0 || cusum_s < cusum_best) cusum_best = cusum_s;
  }
  const double n = static_cast<double>(total_samples);
  std::printf("stage throughput (best of %d):\n", reps);
  std::printf("  fft/diurnal %8.3fms  (%.2f Msamples/sec)\n", fft_best * 1e3,
              n / fft_best * 1e-6);
  std::printf("  stl         %8.3fms  (%.2f Msamples/sec)\n", stl_best * 1e3,
              n / stl_best * 1e-6);
  std::printf("  cusum       %8.3fms  (%.2f Msamples/sec)\n", cusum_best * 1e3,
              n / cusum_best * 1e-6);

  // ------------------------------------------------------------------
  // Allocations per block: the legacy vector/TimeSeries chain vs one
  // warm-analyzer pass over the same blocks.
  // ------------------------------------------------------------------
  const auto legacy_pass = [&] {
    for (const std::size_t i : rows) {
      const auto s = fleet.series.series(i);
      // What the fleet did before the span layer: materialize a
      // TimeSeries, then run each kernel through its owning wrapper.
      util::TimeSeries ts(fleet.series.start(), step,
                          std::vector<double>(s.begin(), s.end()));
      const auto d = analysis::test_diurnal(ts);
      const auto sw = analysis::classify_swing(ts);
      auto dec = analysis::stl_decompose(s, stl_opt);
      const auto z =
          util::TimeSeries(ts.start(), step, std::move(dec.trend)).zscore();
      const auto cus = analysis::cusum_detect(z.span());
      g_sink = g_sink + d.power_ratio + sw.max_daily_swing +
               static_cast<double>(cus.changes.size());
    }
  };
  const auto span_pass = [&] {
    for (const std::size_t i : rows) {
      const auto s = fleet.series.series(i);
      const auto d = az.diurnal(s, samples_per_day);
      const auto sw = az.swing(s, fleet.series.start(), step);
      const auto dec = az.decompose_stl(s, stl_opt);
      const auto z = az.zscore(dec.trend);
      const auto cus = az.cusum(z);
      g_sink = g_sink + d.power_ratio + sw.max_daily_swing +
               static_cast<double>(cus.changes.size());
    }
  };

  legacy_pass();  // warm whatever the libc allocator caches
  span_pass();    // warm the analyzer's workspace and machine buffers
  const std::size_t misses_before = az.workspace().pool_misses();

  std::size_t c0 = g_allocs.load();
  legacy_pass();
  const std::size_t legacy_allocs = g_allocs.load() - c0;

  c0 = g_allocs.load();
  span_pass();
  const std::size_t span_allocs = g_allocs.load() - c0;
  const std::size_t pool_miss_delta =
      az.workspace().pool_misses() - misses_before;

  const double blocks = static_cast<double>(rows.size());
  std::printf("allocations/block: legacy %.1f, span %.1f (pool misses %zu)\n",
              static_cast<double>(legacy_allocs) / blocks,
              static_cast<double>(span_allocs) / blocks, pool_miss_delta);
  const bool steady_state_clean = span_allocs == 0 && pool_miss_delta == 0;
  if (!steady_state_clean) {
    std::printf("FAIL: warm span chain touched the heap (%zu allocs, "
                "%zu pool misses)\n",
                span_allocs, pool_miss_delta);
  }

  bench::JsonObject j;
  j.add("bench", "analysis")
      .add("dataset", fc.dataset.abbr)
      .add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("stage_reps", static_cast<std::int64_t>(reps))
      .add("fleet_seconds", fleet_seconds)
      .add("fleet_digest", bench::digest_hex(digest))
      .add("sampled_blocks", static_cast<std::int64_t>(rows.size()))
      .add("samples_per_block",
           static_cast<std::int64_t>(total_samples / rows.size()))
      .add("fft_msamples_per_sec", n / fft_best * 1e-6)
      .add("stl_msamples_per_sec", n / stl_best * 1e-6)
      .add("cusum_msamples_per_sec", n / cusum_best * 1e-6)
      .add("legacy_allocs_per_block",
           static_cast<double>(legacy_allocs) / blocks)
      .add("span_allocs_per_block", static_cast<double>(span_allocs) / blocks)
      .add("workspace_pool_miss_delta",
           static_cast<std::int64_t>(pool_miss_delta))
      .add("steady_state_alloc_free", steady_state_clean);
  bench::write_bench_json("BENCH_analysis.json", j);
  return steady_state_clean ? 0 : 1;
}
