// BENCH analysis: per-stage throughput of the span-kernel analysis
// layer (FFT diurnality, STL decomposition, CUSUM) over real fleet
// series — scalar AND batched (SoA) paths — plus the allocation story
// the refactor exists for: heap allocations per block for the legacy
// vector/TimeSeries chain vs the warm BlockAnalyzer chain.  The span
// and batched chains must run with ZERO steady-state allocations per
// block, and the batched results must be bit-identical to the scalar
// kernels (the bench exits nonzero otherwise); the fleet digest is
// recorded so CI can cross-check that the measured build still
// produces the golden result.
//
// The JSON records compiler/flags provenance, the detected and active
// SIMD ISA, and per-level dispatch counts from the timed batched
// stages, so a CI machine that silently fell back to the baseline
// clone is visible in the metrics (and fails the speedup gate loudly).
//
// Flags: --batch-width N (1..16, default 16) sets the SoA lane count;
// --scalar runs the scalar chain only (the frontier baseline).
// Scale knobs: DIURNAL_BENCH_BLOCKS, DIURNAL_BENCH_SEED,
// DIURNAL_BENCH_REPS, and DIURNAL_BENCH_JSON (default
// BENCH_analysis.json).
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "analysis/batch.h"
#include "analysis/block_analyzer.h"
#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/simd.h"
#include "analysis/stl.h"
#include "analysis/swing.h"
#include "common.h"
#include "core/datasets.h"
#include "core/pipeline.h"
#include "sim/world.h"
#include "util/timeseries.h"

namespace {

// Global allocation counter: every path into the heap bumps it.  The
// counts are what the bench is about — the span chain's steady state
// must not touch any of these.
std::atomic<std::size_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Sink so the timed kernel calls cannot be dead-code-eliminated.
volatile double g_sink = 0.0;

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool spans_bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t batch_width = analysis::kMaxBatchLanes;
  bool scalar_only = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--scalar") {
      scalar_only = true;
    } else if (arg == "--batch-width" && a + 1 < argc) {
      const long w = std::strtol(argv[++a], nullptr, 10);
      batch_width = static_cast<std::size_t>(std::clamp<long>(
          w, 1, static_cast<long>(analysis::kMaxBatchLanes)));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scalar] [--batch-width N]  (N in 1..%zu)\n",
                   argv[0], analysis::kMaxBatchLanes);
      return 2;
    }
  }

  bench::header("BENCH analysis",
                "span-kernel stage throughput + allocations/block",
                "scalar vs batched SoA chain; see DESIGN.md §7 and §9");
  const auto wc = bench::scaled_world(2000, 1);
  const sim::World world(wc);

  namespace simd = analysis::simd;
  std::printf("simd: detected %s, active %s, batch width %zu%s\n",
              simd::level_name(simd::detected_level()),
              simd::level_name(simd::active_level()), batch_width,
              scalar_only ? " (scalar mode)" : "");

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = 1;

  // One fleet pass supplies both the digest cross-check and the series
  // store the kernel stages below run over.
  auto t0 = Clock::now();
  const auto fleet = core::run_fleet(world, fc);
  const double fleet_seconds = seconds_since(t0);
  const std::uint64_t digest = bench::fleet_digest(fleet);
  std::printf("fleet pass: %.2fs, digest %s\n", fleet_seconds,
              bench::digest_hex(digest).c_str());

  const std::int64_t step = fleet.series.step();
  const double samples_per_day =
      static_cast<double>(util::kSecondsPerDay) / static_cast<double>(step);
  analysis::StlOptions stl_opt;
  stl_opt.period = static_cast<int>(
      core::DetectorOptions{}.period_seconds / step);

  // Sample rows long enough for the full chain (>= 2 STL periods).
  std::vector<std::size_t> rows;
  std::size_t total_samples = 0;
  for (std::size_t i = 0; i < fleet.series.rows() && rows.size() < 64; ++i) {
    const auto s = fleet.series.series(i);
    if (s.size() < 2 * static_cast<std::size_t>(stl_opt.period)) continue;
    rows.push_back(i);
    total_samples += s.size();
  }
  if (rows.empty()) {
    std::printf("FAIL: no series rows long enough to bench\n");
    return 1;
  }
  std::printf("sampled %zu blocks, %zu samples each pass\n", rows.size(),
              total_samples / rows.size());

  const int reps = std::max(1, bench::env_int("DIURNAL_BENCH_REPS", 3));
  analysis::BlockAnalyzer az;

  // Pre-z-scored trends for the CUSUM stage (setup, untimed).
  std::vector<std::vector<double>> zrows;
  zrows.reserve(rows.size());
  for (const std::size_t i : rows) {
    const auto dec = az.decompose_stl(fleet.series.series(i), stl_opt);
    const auto z = az.zscore(dec.trend);
    zrows.emplace_back(z.begin(), z.end());
  }

  // Min-of-reps per-stage scalar throughput, every stage through the
  // same warm analyzer the fleet workers use.
  double fft_best = 0, stl_best = 0, cusum_best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto t = Clock::now();
    for (const std::size_t i : rows) {
      const auto d = az.diurnal(fleet.series.series(i), samples_per_day);
      g_sink = g_sink + d.power_ratio;
    }
    const double fft_s = seconds_since(t);

    t = Clock::now();
    for (const std::size_t i : rows) {
      const auto dec = az.decompose_stl(fleet.series.series(i), stl_opt);
      g_sink = g_sink + dec.trend[dec.trend.size() / 2];
    }
    const double stl_s = seconds_since(t);

    t = Clock::now();
    for (const auto& z : zrows) {
      const auto cus = az.cusum(z);
      g_sink = g_sink + static_cast<double>(cus.changes.size());
    }
    const double cusum_s = seconds_since(t);

    if (rep == 0 || fft_s < fft_best) fft_best = fft_s;
    if (rep == 0 || stl_s < stl_best) stl_best = stl_s;
    if (rep == 0 || cusum_s < cusum_best) cusum_best = cusum_s;
  }
  const double n = static_cast<double>(total_samples);
  std::printf("scalar stage throughput (best of %d):\n", reps);
  std::printf("  fft/diurnal %8.3fms  (%.2f Msamples/sec)\n", fft_best * 1e3,
              n / fft_best * 1e-6);
  std::printf("  stl         %8.3fms  (%.2f Msamples/sec)\n", stl_best * 1e3,
              n / stl_best * 1e-6);
  std::printf("  cusum       %8.3fms  (%.2f Msamples/sec)\n", cusum_best * 1e3,
              n / cusum_best * 1e-6);

  // ------------------------------------------------------------------
  // Batched (SoA) stages: the same rows grouped into equal-length
  // batches of `batch_width` lanes, gathered and run through the
  // analysis/batch.h kernels.  Gather cost is timed — it is part of
  // what the batched path pays that the scalar path does not.
  // ------------------------------------------------------------------
  struct Group {
    std::array<std::size_t, analysis::kMaxBatchLanes> rows{};
    std::size_t width = 0;
    std::size_t n = 0;
  };
  std::vector<Group> groups;
  for (const std::size_t i : rows) {
    const std::size_t len = fleet.series.series(i).size();
    Group* g = nullptr;
    for (auto& cand : groups) {
      if (cand.n == len && cand.width < batch_width) {
        g = &cand;
        break;
      }
    }
    if (!g) {
      groups.emplace_back();
      g = &groups.back();
      g->n = len;
    }
    g->rows[g->width++] = i;
  }
  std::size_t max_soa = 0, max_n = 0;
  for (const auto& g : groups) {
    max_soa = std::max(max_soa, g.n * g.width);
    max_n = std::max(max_n, g.n);
  }

  analysis::Workspace bws;  // workspace backing the batched kernels
  std::vector<double> y_soa(max_soa), trend_soa(max_soa),
      seasonal_soa(max_soa), residual_soa(max_soa), z_soa(max_soa);
  std::vector<double> lane_buf(max_n);
  std::array<std::span<const double>, analysis::kMaxBatchLanes> lanes;
  std::array<analysis::DiurnalResult, analysis::kMaxBatchLanes> dres;
  const auto gather = [&](const Group& g) {
    for (std::size_t j = 0; j < g.width; ++j) {
      lanes[j] = fleet.series.series(g.rows[j]);
    }
    analysis::soa_gather(
        std::span<const std::span<const double>>(lanes.data(), g.width), g.n,
        y_soa.data());
  };

  double fft_batch_best = 0, stl_batch_best = 0;
  bool fft_bitwise = true, stl_bitwise = true;
  simd::DispatchCounts dc;
  std::size_t batch_allocs = 0, batch_pool_miss = 0;
  if (!scalar_only) {
    // Bitwise cross-check (untimed): every lane of every batched stage
    // must reproduce the scalar kernel's bytes.
    for (const auto& g : groups) {
      gather(g);
      analysis::test_diurnal_batch(y_soa.data(), g.width, g.n, samples_per_day,
                                   {}, bws, dres.data());
      analysis::stl_decompose_batch(y_soa.data(), g.width, g.n, stl_opt, bws,
                                    trend_soa.data(), seasonal_soa.data(),
                                    residual_soa.data());
      analysis::zscore_batch(trend_soa.data(), g.width, g.n, z_soa.data());
      for (std::size_t j = 0; j < g.width; ++j) {
        const auto s = fleet.series.series(g.rows[j]);
        const auto d = az.diurnal(s, samples_per_day);
        const auto& bd = dres[j];
        fft_bitwise = fft_bitwise && d.diurnal == bd.diurnal &&
                      bits_equal(d.power_ratio, bd.power_ratio) &&
                      bits_equal(d.total_power, bd.total_power) &&
                      bits_equal(d.diurnal_power, bd.diurnal_power) &&
                      d.segments == bd.segments &&
                      d.segments_diurnal == bd.segments_diurnal;
        const auto dec = az.decompose_stl(s, stl_opt);
        analysis::soa_scatter_lane(trend_soa.data(), g.width, g.n, j,
                                   lane_buf.data());
        stl_bitwise = stl_bitwise &&
                      spans_bits_equal(lane_buf.data(), dec.trend.data(), g.n);
        analysis::soa_scatter_lane(seasonal_soa.data(), g.width, g.n, j,
                                   lane_buf.data());
        stl_bitwise =
            stl_bitwise &&
            spans_bits_equal(lane_buf.data(), dec.seasonal.data(), g.n);
        analysis::soa_scatter_lane(residual_soa.data(), g.width, g.n, j,
                                   lane_buf.data());
        stl_bitwise =
            stl_bitwise &&
            spans_bits_equal(lane_buf.data(), dec.residual.data(), g.n);
        const auto z = az.zscore(dec.trend);
        analysis::soa_scatter_lane(z_soa.data(), g.width, g.n, j,
                                   lane_buf.data());
        stl_bitwise =
            stl_bitwise && spans_bits_equal(lane_buf.data(), z.data(), g.n);
      }
    }
    if (!fft_bitwise) std::printf("FAIL: batched fft != scalar fft\n");
    if (!stl_bitwise) std::printf("FAIL: batched stl != scalar stl\n");

    // Timed batched stages, dispatch-counted so the metrics show which
    // ISA clone actually ran.
    simd::reset_dispatch_counts();
    for (int rep = 0; rep < reps; ++rep) {
      auto t = Clock::now();
      for (const auto& g : groups) {
        gather(g);
        analysis::test_diurnal_batch(y_soa.data(), g.width, g.n,
                                     samples_per_day, {}, bws, dres.data());
        g_sink = g_sink + dres[0].power_ratio;
      }
      const double fft_s = seconds_since(t);

      t = Clock::now();
      for (const auto& g : groups) {
        gather(g);
        analysis::stl_decompose_batch(y_soa.data(), g.width, g.n, stl_opt, bws,
                                      trend_soa.data(), seasonal_soa.data(),
                                      residual_soa.data());
        g_sink = g_sink + trend_soa[(g.n / 2) * g.width];
      }
      const double stl_s = seconds_since(t);

      if (rep == 0 || fft_s < fft_batch_best) fft_batch_best = fft_s;
      if (rep == 0 || stl_s < stl_batch_best) stl_batch_best = stl_s;
    }
    dc = simd::dispatch_counts();
    std::printf("batched stage throughput (width %zu, best of %d):\n",
                batch_width, reps);
    std::printf("  fft/diurnal %8.3fms  (%.2f Msamples/sec, %.2fx scalar)\n",
                fft_batch_best * 1e3, n / fft_batch_best * 1e-6,
                fft_best / fft_batch_best);
    std::printf("  stl         %8.3fms  (%.2f Msamples/sec, %.2fx scalar)\n",
                stl_batch_best * 1e3, n / stl_batch_best * 1e-6,
                stl_best / stl_batch_best);
    std::printf("  dispatches: generic %llu, avx2 %llu\n",
                static_cast<unsigned long long>(dc.generic),
                static_cast<unsigned long long>(dc.avx2));
  }

  // ------------------------------------------------------------------
  // Allocations per block: the legacy vector/TimeSeries chain vs one
  // warm-analyzer pass over the same blocks, and (batched mode) one
  // warm batched pass.  Both warm chains must never touch the heap.
  // ------------------------------------------------------------------
  const auto legacy_pass = [&] {
    for (const std::size_t i : rows) {
      const auto s = fleet.series.series(i);
      // What the fleet did before the span layer: materialize a
      // TimeSeries, then run each kernel through its owning wrapper.
      util::TimeSeries ts(fleet.series.start(), step,
                          std::vector<double>(s.begin(), s.end()));
      const auto d = analysis::test_diurnal(ts);
      const auto sw = analysis::classify_swing(ts);
      auto dec = analysis::stl_decompose(s, stl_opt);
      const auto z =
          util::TimeSeries(ts.start(), step, std::move(dec.trend)).zscore();
      const auto cus = analysis::cusum_detect(z.span());
      g_sink = g_sink + d.power_ratio + sw.max_daily_swing +
               static_cast<double>(cus.changes.size());
    }
  };
  const auto span_pass = [&] {
    for (const std::size_t i : rows) {
      const auto s = fleet.series.series(i);
      const auto d = az.diurnal(s, samples_per_day);
      const auto sw = az.swing(s, fleet.series.start(), step);
      const auto dec = az.decompose_stl(s, stl_opt);
      const auto z = az.zscore(dec.trend);
      const auto cus = az.cusum(z);
      g_sink = g_sink + d.power_ratio + sw.max_daily_swing +
               static_cast<double>(cus.changes.size());
    }
  };
  const auto batch_pass = [&] {
    for (const auto& g : groups) {
      gather(g);
      analysis::test_diurnal_batch(y_soa.data(), g.width, g.n, samples_per_day,
                                   {}, bws, dres.data());
      analysis::stl_decompose_batch(y_soa.data(), g.width, g.n, stl_opt, bws,
                                    trend_soa.data(), seasonal_soa.data(),
                                    residual_soa.data());
      analysis::zscore_batch(trend_soa.data(), g.width, g.n, z_soa.data());
      g_sink = g_sink + trend_soa[0] + z_soa[0];
    }
  };

  legacy_pass();  // warm whatever the libc allocator caches
  span_pass();    // warm the analyzer's workspace and machine buffers
  const std::size_t misses_before = az.workspace().pool_misses();

  std::size_t c0 = g_allocs.load();
  legacy_pass();
  const std::size_t legacy_allocs = g_allocs.load() - c0;

  c0 = g_allocs.load();
  span_pass();
  const std::size_t span_allocs = g_allocs.load() - c0;
  const std::size_t pool_miss_delta =
      az.workspace().pool_misses() - misses_before;

  if (!scalar_only) {
    batch_pass();  // warm the batched workspace
    const std::size_t bmisses_before = bws.pool_misses();
    c0 = g_allocs.load();
    batch_pass();
    batch_allocs = g_allocs.load() - c0;
    batch_pool_miss = bws.pool_misses() - bmisses_before;
  }

  const double blocks = static_cast<double>(rows.size());
  std::printf(
      "allocations/block: legacy %.1f, span %.1f, batched %.1f "
      "(pool misses %zu + %zu)\n",
      static_cast<double>(legacy_allocs) / blocks,
      static_cast<double>(span_allocs) / blocks,
      static_cast<double>(batch_allocs) / blocks, pool_miss_delta,
      batch_pool_miss);
  const bool steady_state_clean = span_allocs == 0 && pool_miss_delta == 0 &&
                                  batch_allocs == 0 && batch_pool_miss == 0;
  if (!steady_state_clean) {
    std::printf("FAIL: warm chain touched the heap (span %zu + batched %zu "
                "allocs, %zu + %zu pool misses)\n",
                span_allocs, batch_allocs, pool_miss_delta, batch_pool_miss);
  }

  bench::JsonObject build;
  build.add("compiler", DIURNAL_BENCH_COMPILER)
      .add("build_type", DIURNAL_BENCH_BUILD_TYPE)
      .add("cxx_flags", DIURNAL_BENCH_CXX_FLAGS);

  bench::JsonObject j;
  j.add("bench", "analysis")
      .add("mode", scalar_only ? "scalar" : "batched")
      .add("batch_width", static_cast<std::int64_t>(batch_width))
      .add("dataset", fc.dataset.abbr)
      .add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("stage_reps", static_cast<std::int64_t>(reps))
      .add("fleet_seconds", fleet_seconds)
      .add("fleet_digest", bench::digest_hex(digest))
      .add("sampled_blocks", static_cast<std::int64_t>(rows.size()))
      .add("samples_per_block",
           static_cast<std::int64_t>(total_samples / rows.size()))
      .add("simd_isa_detected", simd::level_name(simd::detected_level()))
      .add("simd_isa_active", simd::level_name(simd::active_level()))
      .add("fft_scalar_msamples_per_sec", n / fft_best * 1e-6)
      .add("stl_scalar_msamples_per_sec", n / stl_best * 1e-6)
      .add("cusum_msamples_per_sec", n / cusum_best * 1e-6);
  if (!scalar_only) {
    // Headline fft/stl throughput is the batched path — the one the
    // fleet drives run.
    j.add("fft_msamples_per_sec", n / fft_batch_best * 1e-6)
        .add("stl_msamples_per_sec", n / stl_batch_best * 1e-6)
        .add("fft_batch_speedup", fft_best / fft_batch_best)
        .add("stl_batch_speedup", stl_best / stl_batch_best)
        .add("fft_batch_bitwise", fft_bitwise)
        .add("stl_batch_bitwise", stl_bitwise)
        .add("dispatch_generic", static_cast<std::int64_t>(dc.generic))
        .add("dispatch_avx2", static_cast<std::int64_t>(dc.avx2));
  } else {
    j.add("fft_msamples_per_sec", n / fft_best * 1e-6)
        .add("stl_msamples_per_sec", n / stl_best * 1e-6);
  }
  j.add("legacy_allocs_per_block", static_cast<double>(legacy_allocs) / blocks)
      .add("span_allocs_per_block", static_cast<double>(span_allocs) / blocks)
      .add("batch_allocs_per_block",
           static_cast<double>(batch_allocs) / blocks)
      .add("workspace_pool_miss_delta",
           static_cast<std::int64_t>(pool_miss_delta + batch_pool_miss))
      .add("steady_state_alloc_free", steady_state_clean)
      .add_object("build", build);
  bench::write_bench_json("BENCH_analysis.json", j);
  const bool ok = steady_state_clean && fft_bitwise && stl_bitwise;
  return ok ? 0 : 1;
}
