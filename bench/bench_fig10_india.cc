// Reproduces paper Figure 10 (section 4.3): India in February and March
// 2020.  Two separate events hit the New Delhi gridcell (28N,76E): the
// riots and stay-home of 2020-02-23..29 (a non-Covid change, ~2% of
// blocks on 02-28) and the much larger Janata-curfew/lockdown response
// around 2020-03-22 (~8%).
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

using namespace diurnal;

int main() {
  bench::header("Figure 10", "India in February and March 2020",
                "single-country world (IN); classification 2020m1, "
                "detection 2020h1");
  auto wc = bench::scaled_world(4000);
  wc.only_country = "IN";
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020h1-ejnw");
  fc.classify_dataset = core::dataset("2020m1-ejnw");
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);

  std::printf("(a) gridcell map snapshot, 2020-02-28:\n");
  util::TextTable t({"gridcell", "c-s blocks", "down on 02-28", "fraction"});
  for (const auto& snap : agg.map_snapshot(util::time_of(2020, 2, 28), 5)) {
    t.add_row({snap.cell.to_string(), util::fmt_count(snap.blocks),
               util::fmt_count(snap.down_on_day),
               util::fmt_pct(snap.down_fraction)});
  }
  t.print();

  const auto delhi = geo::GridCell::of(28.6, 77.2);
  const auto it = agg.by_cell().find(delhi);
  if (it == agg.by_cell().end()) {
    std::printf("no change-sensitive blocks in the Delhi cell; enlarge world\n");
    return 1;
  }
  const auto& s = it->second;
  std::printf("\n(b) New Delhi %s daily down/up fractions (days with any "
              "signal):\n", delhi.to_string().c_str());
  for (std::size_t d = 0; d < agg.days(); ++d) {
    if (s.down_fraction(d) < 0.01 && s.up_fraction(d) < 0.01) continue;
    const auto date = util::date_of(
        agg.start() + static_cast<util::SimTime>(d) * util::kSecondsPerDay);
    std::printf("  %s  down %-7s %-25s up %s\n", util::to_string(date).c_str(),
                util::fmt_pct(s.down_fraction(d)).c_str(),
                bench::bar(s.down_fraction(d) * 4, 25).c_str(),
                util::fmt_pct(s.up_fraction(d)).c_str());
  }

  auto window_peak = [&](util::SimTime a, util::SimTime b) {
    double peak = 0.0;
    for (std::size_t d = agg.day_of(a); d <= agg.day_of(b); ++d) {
      peak = std::max(peak, s.down_fraction(d));
    }
    return peak;
  };
  const double riots = window_peak(util::time_of(2020, 2, 23),
                                   util::time_of(2020, 3, 1));
  const double curfew = window_peak(util::time_of(2020, 3, 19),
                                    util::time_of(2020, 3, 28));
  std::printf("\nShape checks vs the paper:\n");
  std::printf("  riots window (02-23..29) shows a visible dip: %s (%s; paper ~2%%)\n",
              riots > 0.01 ? "HOLDS" : "VIOLATED", util::fmt_pct(riots).c_str());
  std::printf("  Janata curfew/lockdown (~03-22) is the larger event: %s "
              "(%s vs %s; paper 8%% vs 2%%)\n",
              curfew > riots ? "HOLDS" : "VIOLATED",
              util::fmt_pct(curfew).c_str(), util::fmt_pct(riots).c_str());
  return 0;
}
