// BENCH fault: the degraded-fleet scenario sweep.
//
// Runs the full pipeline over one world under every named fault
// scenario (fault::scenario_names(): healthy fleet, observer dropout,
// flapping, scheduled reboots, clock skew, correlated burst loss,
// truncated rounds, and the all-at-once meltdown) and reports how the
// Table 2 funnel and the degradation accounting respond.  Two gates run
// per scenario:
//
//   1. determinism: threads=1 and threads=N must produce bit-identical
//      fleet digests even with faults injected (every fault draw is a
//      stateless hash, never shared RNG state);
//   2. the healthy scenario ("none") must match the digest of a run
//      with a default-constructed FleetConfig -- the empty plan is
//      required to be indistinguishable from no fault layer at all.
//
// Scale knobs: DIURNAL_BENCH_BLOCKS, DIURNAL_BENCH_SEED, and
// DIURNAL_BENCH_JSON (output path, default BENCH_fault.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common.h"
#include "core/datasets.h"
#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "sim/world.h"

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::int64_t low_evidence_changes(const core::FleetResult& r) {
  std::int64_t n = 0;
  for (const auto& out : r.outcomes) {
    for (const auto& ch : out.changes) {
      if (ch.counted() && ch.low_evidence) ++n;
    }
  }
  return n;
}

}  // namespace

int main() {
  bench::header("BENCH fault",
                "fleet pipeline under observer fault scenarios",
                "degraded-mode sweep; see EXPERIMENTS.md 'bench_fault'");
  const auto wc = bench::scaled_world(1000, 1);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());

  // Gate 2 baseline: a config that never mentions faults.
  core::FleetConfig plain;
  plain.dataset = fc.dataset;
  plain.threads = 1;
  const std::uint64_t plain_digest =
      bench::fleet_digest(core::run_fleet(world, plain));

  std::printf("%-9s %7s %5s %6s %8s %6s %7s  %-16s %s\n", "scenario",
              "probed", "cs", "degr", "low-conf", "evid", "low-ev", "digest",
              "1t==Nt");

  bench::JsonObject scenarios;
  bool all_ok = true;
  for (const auto& name : fault::scenario_names()) {
    fc.faults = fault::scenario(name, fc.dataset.window());

    fc.threads = 1;
    const auto t0 = Clock::now();
    const auto fleet = core::run_fleet(world, fc);
    const double secs = seconds_since(t0);
    fc.threads = static_cast<int>(hw);
    const auto fleet_mt = core::run_fleet(world, fc);

    const std::uint64_t digest = bench::fleet_digest(fleet);
    const bool deterministic = digest == bench::fleet_digest(fleet_mt);
    all_ok = all_ok && deterministic;
    if (name == "none" && digest != plain_digest) {
      std::printf("VIOLATED: empty plan digest %s != no-fault-layer %s\n",
                  bench::digest_hex(digest).c_str(),
                  bench::digest_hex(plain_digest).c_str());
      all_ok = false;
    }

    const auto& f = fleet.funnel;
    const auto& d = fleet.degradation;
    const std::int64_t low_ev = low_evidence_changes(fleet);
    std::printf("%-9s %7lld %5lld %6lld %8lld %6.3f %7lld  %-16s %s\n",
                name.c_str(), static_cast<long long>(d.probed_blocks),
                static_cast<long long>(f.change_sensitive),
                static_cast<long long>(d.degraded_blocks),
                static_cast<long long>(d.low_confidence_blocks),
                d.mean_evidence_fraction, static_cast<long long>(low_ev),
                bench::digest_hex(digest).c_str(),
                deterministic ? "yes" : "NO");

    bench::JsonObject s;
    s.add("seconds_1t", secs)
        .add("probed_blocks", d.probed_blocks)
        .add("responsive", f.responsive)
        .add("diurnal", f.diurnal)
        .add("wide_swing", f.wide_swing)
        .add("change_sensitive", f.change_sensitive)
        .add("degraded_blocks", d.degraded_blocks)
        .add("low_confidence_blocks", d.low_confidence_blocks)
        .add("blocks_missing_observers", d.blocks_missing_observers)
        .add("mean_evidence_fraction", d.mean_evidence_fraction)
        .add("low_evidence_changes", low_ev)
        .add("fleet_digest", bench::digest_hex(digest))
        .add("deterministic", deterministic);
    scenarios.add_object(name, s);
  }

  std::printf("determinism + empty-plan identity: %s\n",
              all_ok ? "HOLD" : "VIOLATED");

  bench::JsonObject j;
  j.add("bench", "fault")
      .add("dataset", fc.dataset.abbr)
      .add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("fleet_threads_mt", static_cast<std::int64_t>(hw))
      .add("all_deterministic", all_ok)
      .add_object("scenarios", scenarios);
  bench::write_bench_json("BENCH_fault.json", j);
  return all_ok ? 0 : 1;
}
