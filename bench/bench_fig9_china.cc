// Reproduces paper Figure 9 (section 4.2): China in January 2020 — the
// gridcell map on 2020-01-27 and the daily up/down series for Wuhan
// (30N,114E) and Beijing (38N,116E).  The concurrent Wuhan lockdown
// (2020-01-23) and Spring Festival (2020-01-24) produce a late-January
// peak of downward changes in many Chinese cities.
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

using namespace diurnal;

namespace {

void print_cell_series(const core::ChangeAggregator& agg, geo::GridCell cell,
                       const char* label) {
  const auto it = agg.by_cell().find(cell);
  if (it == agg.by_cell().end()) {
    std::printf("%s %s: no change-sensitive blocks in this world\n", label,
                cell.to_string().c_str());
    return;
  }
  const auto& s = it->second;
  std::printf("\n%s %s: %d change-sensitive blocks; daily down/up fractions "
              "(3-day bins, down '#', up '+'):\n",
              label, cell.to_string().c_str(), s.change_sensitive_blocks);
  for (std::size_t d = 0; d + 3 <= agg.days(); d += 3) {
    double down = 0, up = 0;
    for (std::size_t k = d; k < d + 3; ++k) {
      down = std::max(down, s.down_fraction(k));
      up = std::max(up, s.up_fraction(k));
    }
    const auto date = util::date_of(
        agg.start() + static_cast<util::SimTime>(d) * util::kSecondsPerDay);
    if (down < 0.005 && up < 0.005) continue;
    std::printf("  %s  down %-7s %-20s up %-7s\n",
                util::to_string(date).c_str(), util::fmt_pct(down).c_str(),
                bench::bar(down * 5, 20).c_str(), util::fmt_pct(up).c_str());
  }
  std::size_t best = 0;
  for (std::size_t d = 1; d < agg.days(); ++d) {
    if (s.down[d] > s.down[best]) best = d;
  }
  std::printf("  peak: %s with %d of %d blocks down (%s)\n",
              util::to_string(util::date_of(agg.start() +
                                            static_cast<util::SimTime>(best) *
                                                util::kSecondsPerDay))
                  .c_str(),
              s.down[best], s.change_sensitive_blocks,
              util::fmt_pct(s.down_fraction(best)).c_str());
}

}  // namespace

int main() {
  bench::header("Figure 9", "China in January 2020",
                "single-country world (CN); classification 2020m1, "
                "detection 2020h1");
  auto wc = bench::scaled_world(4000);
  wc.only_country = "CN";
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020h1-ejnw");
  fc.classify_dataset = core::dataset("2020m1-ejnw");
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);

  std::printf("(a) gridcell map snapshot, 2020-01-27 (cells with >= 5 "
              "change-sensitive blocks):\n");
  util::TextTable t({"gridcell", "c-s blocks", "down on 01-27", "fraction"});
  for (const auto& snap : agg.map_snapshot(util::time_of(2020, 1, 27), 5)) {
    t.add_row({snap.cell.to_string(), util::fmt_count(snap.blocks),
               util::fmt_count(snap.down_on_day),
               util::fmt_pct(snap.down_fraction)});
  }
  t.print();

  const auto wuhan = geo::GridCell::of(30.6, 114.3);
  const auto beijing = geo::GridCell::of(39.9, 116.4);
  print_cell_series(agg, wuhan, "(b) Wuhan");
  print_cell_series(agg, beijing, "(b) Beijing");

  // Shape check: late-January peaks in both cities.
  auto late_jan_peak = [&](geo::GridCell cell) {
    const auto it = agg.by_cell().find(cell);
    if (it == agg.by_cell().end()) return 0.0;
    double peak = 0.0;
    for (std::size_t d = agg.day_of(util::time_of(2020, 1, 18));
         d <= agg.day_of(util::time_of(2020, 1, 31)); ++d) {
      peak = std::max(peak, it->second.down_fraction(d));
    }
    return peak;
  };
  std::printf("\nShape checks vs the paper:\n");
  std::printf("  Wuhan late-January down-peak: %s (%s; paper ~2.7%% on 01-27)\n",
              late_jan_peak(wuhan) > 0.01 ? "HOLDS" : "VIOLATED",
              util::fmt_pct(late_jan_peak(wuhan)).c_str());
  std::printf("  Beijing late-January down-peak: %s (%s; paper ~3.5%%)\n",
              late_jan_peak(beijing) > 0.01 ? "HOLDS" : "VIOLATED",
              util::fmt_pct(late_jan_peak(beijing)).c_str());
  return 0;
}
