// Shared scaffolding for the per-table/per-figure reproduction benches.
//
// Every bench prints (a) which paper artifact it regenerates, (b) the
// scale factor of its synthetic world relative to the paper's 11.1M
// routed /24s, and (c) the same rows/series the paper reports, so runs
// can be diffed against EXPERIMENTS.md.
//
// Scale knobs (environment):
//   DIURNAL_BENCH_BLOCKS  override the world size of fleet benches
//   DIURNAL_BENCH_SEED    override the world seed
#pragma once

#include <cstdint>
#include <string>

#include "core/classify.h"
#include "sim/world.h"
#include "util/table.h"

namespace diurnal::bench {

/// Reads an integer environment override.
int env_int(const char* name, int fallback);

/// Prints the bench banner: artifact id, title, and scale note.
void header(const std::string& artifact, const std::string& title,
            const std::string& note = {});

/// World config scaled by DIURNAL_BENCH_BLOCKS/DIURNAL_BENCH_SEED, with
/// a printed scale annotation.
sim::WorldConfig scaled_world(int default_blocks, std::uint64_t seed = 1,
                              bool announce = true);

/// Appends a Table 2-style funnel column description.
void print_funnel(const std::string& name, const core::FunnelCounts& f);

/// Renders a small inline bar for text "plots".
std::string bar(double fraction, int width = 40);

}  // namespace diurnal::bench
