// Shared scaffolding for the per-table/per-figure reproduction benches.
//
// Every bench prints (a) which paper artifact it regenerates, (b) the
// scale factor of its synthetic world relative to the paper's 11.1M
// routed /24s, and (c) the same rows/series the paper reports, so runs
// can be diffed against EXPERIMENTS.md.
//
// Scale knobs (environment):
//   DIURNAL_BENCH_BLOCKS  override the world size of fleet benches
//   DIURNAL_BENCH_SEED    override the world seed
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/classify.h"
#include "core/pipeline.h"
#include "sim/world.h"
#include "util/table.h"

namespace diurnal::bench {

/// Reads an integer environment override.
int env_int(const char* name, int fallback);

/// Prints the bench banner: artifact id, title, and scale note.
void header(const std::string& artifact, const std::string& title,
            const std::string& note = {});

/// World config scaled by DIURNAL_BENCH_BLOCKS/DIURNAL_BENCH_SEED, with
/// a printed scale annotation.
sim::WorldConfig scaled_world(int default_blocks, std::uint64_t seed = 1,
                              bool announce = true);

/// Appends a Table 2-style funnel column description.
void print_funnel(const std::string& name, const core::FunnelCounts& f);

/// Renders a small inline bar for text "plots".
std::string bar(double fraction, int width = 40);

/// FNV-1a digest over the parts of a FleetResult that downstream
/// consumers read (funnel counts, per-block funnel bits, detected-change
/// fields; doubles hashed by bit pattern so numeric drift shows up).
/// Shared by bench_fleet's determinism gate, bench_fault's empty-plan
/// identity check, and the CI bench-smoke job.  Degraded-mode
/// annotations (low_confidence, low_evidence, the DegradationReport) are
/// deliberately NOT hashed: they must never perturb a healthy run's
/// digest, and a faulty run's digest should change only through the
/// observations themselves.
std::uint64_t fleet_digest(const core::FleetResult& r);

/// Formats a digest as 16 lowercase hex digits (the BENCH_*.json form).
std::string digest_hex(std::uint64_t d);

// ---------------------------------------------------------------------------
// Machine-readable bench output (the BENCH_*.json perf trajectory).
// ---------------------------------------------------------------------------

/// Minimal insertion-ordered JSON object builder.  Values are emitted in
/// the order added; nested objects via add_object.  Just enough for the
/// flat metric dictionaries the perf-trajectory files hold.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double v);
  JsonObject& add(const std::string& key, std::int64_t v);
  JsonObject& add(const std::string& key, int v) {
    return add(key, static_cast<std::int64_t>(v));
  }
  JsonObject& add(const std::string& key, const std::string& v);
  JsonObject& add(const std::string& key, const char* v) {
    return add(key, std::string(v));
  }
  JsonObject& add(const std::string& key, bool v);
  JsonObject& add_object(const std::string& key, const JsonObject& v);

  /// Serializes as a pretty-printed JSON object.
  std::string str(int indent = 0) const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Writes a bench's JSON metrics file and announces the path on stdout.
/// The destination defaults to `default_path` (relative to the working
/// directory) and can be overridden with the DIURNAL_BENCH_JSON
/// environment variable.
void write_bench_json(const std::string& default_path, const JsonObject& obj);

}  // namespace diurnal::bench
