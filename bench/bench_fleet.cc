// BENCH fleet: end-to-end throughput of the probe -> repair -> merge ->
// reconstruct -> classify -> detect pipeline over a whole world.
//
// This is the perf-trajectory anchor: every PR that touches the hot
// path reruns it and appends/compares BENCH_fleet.json (blocks/sec,
// probes/sec, per-stage breakdown).  The per-stage pass runs single
// threaded so stage shares are comparable across machines; the fleet
// pass runs both threads=1 and threads=hardware and cross-checks that
// the two produce bit-identical results (the determinism gate).
//
// Scale knobs: DIURNAL_BENCH_BLOCKS, DIURNAL_BENCH_SEED, and
// DIURNAL_BENCH_JSON (output path, default BENCH_fleet.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "core/datasets.h"
#include "core/pipeline.h"
#include "probe/prober.h"
#include "recon/block_recon.h"
#include "recon/repair.h"
#include "sim/world.h"

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct StageSeconds {
  double probe = 0, repair = 0, merge = 0, reconstruct = 0, classify = 0,
         detect = 0;
  double total() const {
    return probe + repair + merge + reconstruct + classify + detect;
  }
};

}  // namespace

int main() {
  bench::header("BENCH fleet",
                "end-to-end fleet throughput (probe sim -> detect)",
                "perf trajectory anchor; see EXPERIMENTS.md 'bench_fleet'");
  const auto wc = bench::scaled_world(2000, 1);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");

  // ------------------------------------------------------------------
  // Single-thread per-stage pass (the probe-simulation throughput gate).
  // ------------------------------------------------------------------
  recon::BlockObservationConfig oc;
  oc.observers = fc.dataset.observers();
  oc.loss = probe::LossModel(fc.loss);
  oc.window = fc.dataset.window();
  oc.recon = fc.recon;

  // The stage pass repeats DIURNAL_BENCH_REPS times (default 3) and
  // keeps the fastest pass: the pipeline is deterministic, so the reps
  // differ only by machine noise (cold caches, frequency scaling,
  // neighbors), and min-of-N is the stable estimator for comparing runs
  // across PRs.
  const int reps = std::max(1, bench::env_int("DIURNAL_BENCH_REPS", 3));
  StageSeconds stage;
  std::int64_t probes = 0;
  std::int64_t responsive_blocks = 0;
  std::int64_t detected_blocks = 0;
  double stage_total = 0;
  probe::ProbeScratch scratch;
  std::vector<probe::ObservationVec> streams;

  for (int rep = 0; rep < reps; ++rep) {
    StageSeconds cur;
    probes = 0;
    responsive_blocks = 0;
    detected_blocks = 0;
    const auto stage_t0 = Clock::now();
    for (const auto& block : world.blocks()) {
      if (block.eb_count == 0) continue;
      ++responsive_blocks;

      auto t = Clock::now();
      streams.resize(oc.observers.size());
      for (std::size_t i = 0; i < oc.observers.size(); ++i) {
        probe::probe_block_into(block, oc.observers[i], oc.loss, oc.window,
                                oc.prober, scratch, streams[i]);
        probes += static_cast<std::int64_t>(streams[i].size());
      }
      cur.probe += seconds_since(t);

      t = Clock::now();
      for (auto& s : streams) recon::one_loss_repair(s);
      cur.repair += seconds_since(t);

      t = Clock::now();
      probe::merge_observations_into(streams, scratch.merged);
      cur.merge += seconds_since(t);

      t = Clock::now();
      const auto recon_res = recon::reconstruct(scratch.merged, block.eb_count,
                                                oc.window, oc.recon);
      cur.reconstruct += seconds_since(t);

      t = Clock::now();
      const auto cls = core::classify_block(recon_res, fc.classifier);
      cur.classify += seconds_since(t);

      if (cls.change_sensitive) {
        t = Clock::now();
        const auto det = core::detect_changes(recon_res.counts, fc.detector);
        cur.detect += seconds_since(t);
        detected_blocks += det.changes.empty() ? 0 : 1;
      }
    }
    const double cur_total = seconds_since(stage_t0);
    if (rep == 0 || cur.total() < stage.total()) {
      stage = cur;
      stage_total = cur_total;
    }
  }
  const double probes_per_sec = static_cast<double>(probes) / stage.probe;

  std::printf("stage pass (1 thread, best of %d): %.2fs over %lld probed blocks\n",
              reps, stage_total, static_cast<long long>(responsive_blocks));
  std::printf("  probe sim   %8.3fs  (%.3fM probes, %.2fM probes/sec)\n",
              stage.probe, static_cast<double>(probes) * 1e-6,
              probes_per_sec * 1e-6);
  std::printf("  repair      %8.3fs\n", stage.repair);
  std::printf("  merge       %8.3fs\n", stage.merge);
  std::printf("  reconstruct %8.3fs\n", stage.reconstruct);
  std::printf("  classify    %8.3fs\n", stage.classify);
  std::printf("  detect      %8.3fs  (%lld blocks with changes)\n",
              stage.detect, static_cast<long long>(detected_blocks));

  // ------------------------------------------------------------------
  // End-to-end fleet pass: threads=1 vs threads=hardware, digests must
  // agree (work-stealing must not change results).
  // ------------------------------------------------------------------
  fc.threads = 1;
  auto t0 = Clock::now();
  const auto fleet_1t = core::run_fleet(world, fc);
  const double secs_1t = seconds_since(t0);

  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  fc.threads = static_cast<int>(hw);
  t0 = Clock::now();
  const auto fleet_mt = core::run_fleet(world, fc);
  const double secs_mt = seconds_since(t0);

  const std::uint64_t digest_1t = bench::fleet_digest(fleet_1t);
  const std::uint64_t digest_mt = bench::fleet_digest(fleet_mt);
  const double n_blocks = static_cast<double>(world.blocks().size());

  std::printf("\nfleet threads=1:  %7.2fs  (%.1f blocks/sec)\n", secs_1t,
              n_blocks / secs_1t);
  std::printf("fleet threads=%-2u: %7.2fs  (%.1f blocks/sec)\n", hw, secs_mt,
              n_blocks / secs_mt);
  std::printf("digest 1t %016llx | %ut %016llx -> %s\n",
              static_cast<unsigned long long>(digest_1t), hw,
              static_cast<unsigned long long>(digest_mt),
              digest_1t == digest_mt ? "HOLDS (deterministic)" : "VIOLATED");
  // The MT pass should beat the ST pass on any real multi-core machine.
  // When it does not, say why instead of letting BENCH_fleet.json record
  // a silent anomaly: with one physical core the fleet still forces two
  // worker threads (the determinism gate needs an MT schedule), so the
  // "parallel" pass is pure oversubscription and is expected to lose.
  const unsigned physical = std::thread::hardware_concurrency();
  if (secs_mt > secs_1t) {
    if (physical < 2) {
      std::printf("note: threads=%u slower than threads=1 -- expected: "
                  "hardware_concurrency=%u, the MT pass oversubscribes a "
                  "single core and only gates determinism\n",
                  hw, physical);
    } else {
      std::printf("WARNING: threads=%u slower than threads=1 on a %u-way "
                  "machine -- parallel scaling regressed\n",
                  hw, physical);
    }
  }
  bench::print_funnel("funnel", fleet_1t.funnel);

  bench::JsonObject stages;
  stages.add("probe_sim", stage.probe)
      .add("repair", stage.repair)
      .add("merge", stage.merge)
      .add("reconstruct", stage.reconstruct)
      .add("classify", stage.classify)
      .add("detect", stage.detect);

  bench::JsonObject j;
  j.add("bench", "fleet")
      .add("dataset", fc.dataset.abbr)
      .add("stage_reps", static_cast<std::int64_t>(reps))
      .add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("probed_blocks", responsive_blocks)
      .add("probes", probes)
      .add("probes_per_sec", probes_per_sec)
      .add("stage_seconds", stage.total())
      .add_object("stages", stages)
      .add("fleet_seconds_1t", secs_1t)
      .add("blocks_per_sec_1t", n_blocks / secs_1t)
      .add("fleet_threads_mt", static_cast<std::int64_t>(hw))
      .add("hardware_concurrency", static_cast<std::int64_t>(physical))
      .add("fleet_seconds_mt", secs_mt)
      .add("blocks_per_sec_mt", n_blocks / secs_mt)
      .add("deterministic", digest_1t == digest_mt)
      .add("fleet_digest", bench::digest_hex(digest_1t));
  bench::write_bench_json("BENCH_fleet.json", j);
  return digest_1t == digest_mt ? 0 : 1;
}
