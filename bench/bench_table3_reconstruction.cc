// Reproduces paper Table 3: validation of reconstruction against survey
// ground truth (2020it89-w probes every address every 11 minutes for two
// weeks).  The shapes to reproduce: (1) more observers discover more
// change-sensitive blocks; (2) shorter windows discover more; (3) the
// best reconstruction (4 observers, matched 2-week window) recovers
// ~70% of the survey's change-sensitive blocks; (4) reconstruction
// overestimates wide swing relative to ground truth.
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/classify.h"
#include "core/datasets.h"
#include "recon/block_recon.h"

using namespace diurnal;

namespace {

struct OptionCounts {
  std::string name;
  std::int64_t responsive = 0;
  std::int64_t not_diurnal = 0;
  std::int64_t diurnal = 0;
  std::int64_t narrow = 0;
  std::int64_t wide = 0;
  std::int64_t not_cs = 0;
  std::int64_t cs = 0;
  std::int64_t cs_matching_truth = 0;
};

}  // namespace

int main() {
  bench::header("Table 3",
                "Counts of blocks overlapping reconstruction and surveys",
                "ground truth: 2020it89-w (full survey, 2 weeks)");
  auto wc = bench::scaled_world(2200);
  const sim::World world(wc);

  // The survey ground truth and the reconstruction options.
  struct Option {
    const char* abbr;
    bool survey;
  };
  const std::vector<Option> options{
      {"2020it89-w", true},        // ground truth
      {"2020q1-w", false},         // 1 observer, 12 weeks
      {"2020q1-ejnw", false},      // 4 observers, 12 weeks
      {"2020m1-ejnw", false},      // 4 observers, 4 weeks
      {"2020it89-ejnw", false},    // 4 observers, survey-matched 2 weeks
  };

  // Classify every responsive block under every option.
  std::vector<OptionCounts> counts(options.size());
  std::vector<std::vector<core::BlockClassification>> cls(options.size());
  for (std::size_t oi = 0; oi < options.size(); ++oi) {
    counts[oi].name = options[oi].abbr;
    const auto ds = core::dataset(options[oi].abbr);
    recon::BlockObservationConfig oc;
    oc.observers = ds.observers();
    oc.window = ds.window();
    oc.prober.kind = options[oi].survey ? probe::ProberKind::kSurvey
                                        : probe::ProberKind::kTrinocular;
    for (const auto& b : world.blocks()) {
      core::BlockClassification c;
      if (b.eb_count > 0) {
        c = core::classify_block(recon::observe_and_reconstruct(b, oc));
      }
      cls[oi].push_back(c);
    }
  }

  // Restrict to blocks responsive in the survey (the "overlap").
  const auto& truth = cls[0];
  for (std::size_t oi = 0; oi < options.size(); ++oi) {
    auto& k = counts[oi];
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (!truth[i].responsive) continue;
      const auto& c = cls[oi][i];
      ++k.responsive;
      (c.diurnal ? k.diurnal : k.not_diurnal) += 1;
      (c.wide_swing ? k.wide : k.narrow) += 1;
      (c.change_sensitive ? k.cs : k.not_cs) += 1;
      if (c.change_sensitive && truth[i].change_sensitive) {
        ++k.cs_matching_truth;
      }
    }
  }

  util::TextTable table({"dataset", "responsive", "not-diurnal", "diurnal",
                         "narrow", "wide", "not-c-s", "c-s",
                         "c-s recovered"});
  for (const auto& k : counts) {
    table.add_row({k.name, util::fmt_count(k.responsive),
                   util::fmt_count(k.not_diurnal), util::fmt_count(k.diurnal),
                   util::fmt_count(k.narrow), util::fmt_count(k.wide),
                   util::fmt_count(k.not_cs), util::fmt_count(k.cs),
                   counts[0].cs
                       ? util::fmt_pct(static_cast<double>(k.cs_matching_truth) /
                                       counts[0].cs)
                       : "-"});
  }
  table.print();

  std::printf("\nShape checks vs the paper:\n");
  std::printf("  4 observers recover at least as many diurnal blocks as 1 "
              "(s2.7): %s (%lld vs %lld; paper 2,944 vs 2,300)\n",
              counts[2].diurnal >= counts[1].diurnal ? "HOLDS" : "VIOLATED",
              static_cast<long long>(counts[2].diurnal),
              static_cast<long long>(counts[1].diurnal));
  std::printf("  reconstruction finds at most as many diurnal blocks as "
              "ground truth (the main miss cause, s3.2.1): %s "
              "(truth %lld vs %lld/%lld/%lld; at our ~1:5000 scale the "
              "paper's 38%% duration-effect magnitude is within counting "
              "noise)\n",
              (counts[0].diurnal >= counts[1].diurnal &&
               counts[0].diurnal >= counts[2].diurnal)
                  ? "HOLDS"
                  : "VIOLATED",
              static_cast<long long>(counts[0].diurnal),
              static_cast<long long>(counts[1].diurnal),
              static_cast<long long>(counts[2].diurnal),
              static_cast<long long>(counts[3].diurnal));
  std::printf("  best reconstruction recovers ~70%% of truth c-s: %s (paper 3,794/5,440 = 70%%)\n",
              counts[0].cs
                  ? util::fmt_pct(static_cast<double>(counts[4].cs_matching_truth) /
                                  counts[0].cs)
                      .c_str()
                  : "-");
  std::printf("  reconstruction overestimates wide swing vs truth: %s (%lld vs truth %lld; paper 19.8k-21.3k vs 17.3k)\n",
              counts[3].wide >= counts[0].wide ? "HOLDS" : "VIOLATED",
              static_cast<long long>(counts[3].wide),
              static_cast<long long>(counts[0].wide));
  return 0;
}
