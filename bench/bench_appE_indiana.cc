// Reproduces paper Appendix E: Indiana on 2020-03-15.  The paper found
// 36 Indiana University blocks (AS87/AS27198) detected as WFH on
// 2020-03-15, matching spring break (03-13) followed by remote learning
// (03-19) — an event the authors discovered through the tool.
// Universities matter because their large IPv4 allocations put end hosts
// on public addresses even in the always-on-NAT United States.
#include <cstdio>

#include "common.h"
#include "core/pipeline.h"

using namespace diurnal;

int main() {
  bench::header("Appendix E", "Indiana on 2020-03-15",
                "single-country world (US); detection over 2020q1");
  auto wc = bench::scaled_world(9000);
  wc.only_country = "US";
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020q1-ejnw");
  const auto fleet = core::run_fleet(world, fc);

  const auto bloomington = geo::GridCell::of(39.2, -86.5);
  int cs_blocks = 0, university_cs = 0, wfh_detected = 0, university_wfh = 0;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    const auto& b = world.blocks()[i];
    if (!out.cls.change_sensitive || b.cell() != bloomington) continue;
    ++cs_blocks;
    const bool university = b.category == sim::BlockCategory::kUniversity;
    university_cs += university;
    for (const auto& c : out.changes) {
      if (c.filtered_as_outage ||
          c.direction != analysis::ChangeDirection::kDown) {
        continue;
      }
      if (std::llabs(c.alarm - util::time_of(2020, 3, 15)) <=
          4 * util::kSecondsPerDay) {
        ++wfh_detected;
        university_wfh += university;
        break;
      }
    }
  }

  std::printf("Bloomington gridcell %s:\n", bloomington.to_string().c_str());
  std::printf("  change-sensitive blocks:            %d (of them university: %d)\n",
              cs_blocks, university_cs);
  std::printf("  WFH detections within 4d of 03-15:  %d (university: %d)\n",
              wfh_detected, university_wfh);

  // US-wide context: how rare change-sensitivity is in the US.
  const auto& f = fleet.funnel;
  std::printf("\nUS-wide: %s of %s responsive blocks are change-sensitive "
              "(%s; the paper's point that always-on NAT hides most US "
              "networks, leaving universities visible).\n",
              util::fmt_count(f.change_sensitive).c_str(),
              util::fmt_count(f.responsive).c_str(),
              util::fmt_pct(f.responsive
                                ? static_cast<double>(f.change_sensitive) /
                                      f.responsive
                                : 0)
                  .c_str());
  std::printf("\nShape check: WFH detected in the Bloomington cell near "
              "2020-03-15: %s\n", wfh_detected > 0 ? "HOLDS" : "VIOLATED");
  return 0;
}
