// Reproduces paper Figure 4 (and Appendix C): two reconstructed blocks
// compared with their survey ground truth.  The easy block (small,
// quickly scanned) correlates ~0.89 with truth; the hard block (large,
// heavily used, so Trinocular's stop-at-first-positive only advances one
// address per round) shows the low-pass effect and correlates ~0.40.
#include <cstdio>

#include "analysis/stats.h"
#include "common.h"
#include "recon/block_recon.h"

using namespace diurnal;

namespace {

void compare_block(const sim::World& world, const sim::BlockProfile& block,
                   const char* label) {
  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = probe::ProbeWindow{util::time_of(2020, 2, 19),
                                 util::time_of(2020, 3, 4)};
  const auto r = recon::observe_and_reconstruct(block, oc);
  const auto truth =
      world.truth_series(block, oc.window.start, oc.window.end, 3600);
  const double corr = analysis::pearson(r.counts.span(), truth.span());
  std::printf("%s: |E(b)| = %d, Pearson correlation = %.2f, median FBS = %.1f h\n",
              label, block.eb_count, corr,
              r.fbs_median_seconds() / 3600.0);
  std::printf("  %-12s %-12s %s\n", "time", "truth", "reconstruction");
  for (std::size_t i = 0; i < truth.size(); i += 12) {
    std::printf("  %-12s %6.0f %s| %6.0f %s\n",
                util::to_string_time(truth.time_at(i)).c_str(), truth[i],
                bench::bar(truth[i] / std::max(1.0, truth.max()), 20).c_str(),
                r.counts[i],
                bench::bar(r.counts[i] / std::max(1.0, truth.max()), 20).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Figure 4", "Two reconstructed /24 blocks vs ground truth",
                "window matches the 2020it89 survey (2020-02-19, two weeks)");
  sim::WorldConfig wc;
  wc.num_blocks = 0;
  const sim::World world(wc);

  // Easy: the USC office block (small active population, fast scans).
  compare_block(world, *world.find(world.usc_office_block()),
                "easy block (128.9.144.0/24)");
  // Hard: the heavily used VPN block (most of 250 addresses respond, so
  // reconstruction lags; the paper's lower panel).
  compare_block(world, *world.find(world.usc_vpn_block()),
                "hard block (128.125.52.0/24)");

  std::printf("paper: correlations 0.89 (easy) and 0.40 (hard); the hard\n"
              "block's reconstruction is visibly low-passed (flattened peaks,\n"
              "raised valleys) but remains change-sensitive.\n");
  return 0;
}
