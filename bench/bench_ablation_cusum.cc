// Ablation for section 2.6's CUSUM parameters (the paper uses threshold
// 1 and drift 0.001 on the z-scored trend): sweep both and report
// precision/recall of WFH detection on sampled change-sensitive blocks.
#include <cstdio>
#include <vector>

#include "common.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Ablation: CUSUM parameters",
                "threshold x drift sweep on the z-scored trend (section 2.6)");
  const auto wc = bench::scaled_world(4000);
  const sim::World world(wc);

  // One classification + probing pass; store the count series of
  // change-sensitive blocks so each parameter set re-runs detection only.
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020q1-ejnw");
  fc.run_detection = false;
  auto fleet = core::run_fleet(world, fc);

  const auto ds = fc.dataset;
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.window = ds.window();

  std::vector<std::size_t> cs_index;
  std::vector<util::TimeSeries> cs_counts;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    if (!fleet.outcomes[i].cls.change_sensitive) continue;
    cs_index.push_back(i);
    cs_counts.push_back(
        recon::observe_and_reconstruct(world.blocks()[i], oc).counts);
  }
  std::printf("change-sensitive blocks: %zu\n\n", cs_index.size());

  util::TextTable t({"threshold", "drift", "changes/block", "precision",
                     "recall"});
  for (const double threshold : {0.5, 1.0, 2.0, 4.0}) {
    for (const double drift : {0.0, 0.001, 0.01}) {
      core::DetectorOptions det;
      det.cusum = analysis::CusumOptions{threshold, drift};
      std::int64_t total_changes = 0;
      for (std::size_t k = 0; k < cs_index.size(); ++k) {
        fleet.outcomes[cs_index[k]].changes =
            core::detect_changes(cs_counts[k], det).changes;
        for (const auto& c : fleet.outcomes[cs_index[k]].changes) {
          total_changes += !c.filtered_as_outage;
        }
      }
      core::ValidationConfig vc;
      vc.window = ds.window();
      vc.sample_size = 120;
      const auto v = core::validate_sample(world, fleet, vc);
      t.add_row({util::fmt(threshold, 1), util::fmt(drift, 3),
                 util::fmt(cs_index.empty()
                               ? 0.0
                               : static_cast<double>(total_changes) /
                                     cs_index.size(),
                           2),
                 util::fmt_pct(v.precision()), util::fmt_pct(v.recall())});
    }
  }
  t.print();

  std::printf("\nExpectations: low thresholds flood the detector with\n"
              "changes (recall up, precision down); high thresholds miss\n"
              "moderate WFH drops.  The paper's threshold 1 / drift 0.001\n"
              "sits at the precision/recall knee.\n");
  return 0;
}
