// Reproduces paper section 3.7: validation by location.  Two randomly
// selected gridcells — (24N,54E) in the United Arab Emirates and
// (46N,14E) in Slovenia — are examined block by block: detections near
// the documented lockdown dates (UAE 2020-03-22..26, Slovenia
// 2020-03-16) give 100% precision at both locations, recall 73%/77%,
// and the per-day down-change count peaks on the lockdown date, an
// order of magnitude above any other day.
#include <cstdio>

#include "common.h"
#include "core/metrics.h"
#include "core/pipeline.h"

using namespace diurnal;

namespace {

void report(const core::LocationValidation& loc, const char* name,
            const char* paper_claims) {
  std::printf("%s %s:\n", name, loc.label.c_str());
  std::printf("  sampled change-sensitive blocks: %d\n", loc.sample.total);
  std::printf("  true positives %d, false positives %d, missed %d\n",
              loc.sample.true_positive, loc.sample.false_positive,
              loc.sample.false_negative);
  std::printf("  precision %s   recall %s\n",
              util::fmt_pct(loc.sample.precision()).c_str(),
              util::fmt_pct(loc.sample.recall()).c_str());
  std::printf("  peak down-day: %s (%d blocks, %s of the cell)\n",
              util::to_string(util::date_of(loc.peak_day)).c_str(),
              loc.peak_down_count,
              util::fmt_pct(loc.peak_down_fraction).c_str());
  std::printf("  paper: %s\n\n", paper_claims);
}

}  // namespace

int main() {
  bench::header("Section 3.7", "Validation by location (UAE and Slovenia)");

  // The paper examines these locations over 2020h1 (the UAE lockdown on
  // 2020-03-24 sits right at the end of q1); classify on the pre-Covid
  // January baseline as section 3.4 prescribes.
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020h1-ejnw");
  fc.classify_dataset = core::dataset("2020m1-ejnw");
  core::ValidationConfig vc;
  vc.window = fc.dataset.window();
  vc.sample_size = 25;

  // Dense single-country worlds give each cell a realistic block count.
  {
    auto wc = bench::scaled_world(2500, 1, false);
    wc.only_country = "AE";
    const sim::World world(wc);
    const auto fleet = core::run_fleet(world, fc);
    const auto loc = core::validate_location(
        world, fleet, geo::GridCell::of(24.5, 54.4), vc);
    report(loc, "United Arab Emirates",
           "precision 100%, recall 73%; peak 2020-03-24 with 21.3% of "
           "blocks, ten times any other day in 2020h1");
  }
  {
    auto wc = bench::scaled_world(2500, 2, false);
    wc.only_country = "SI";
    const sim::World world(wc);
    const auto fleet = core::run_fleet(world, fc);
    const auto loc = core::validate_location(
        world, fleet, geo::GridCell::of(46.1, 14.5), vc);
    report(loc, "Slovenia",
           "precision 100%, recall 77%; peak on 2020-03-16 (schools "
           "closed), larger than any other peak");
  }
  return 0;
}
