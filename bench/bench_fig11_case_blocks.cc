// Reproduces paper Figure 11 (Appendix B.1): two representative
// change-sensitive blocks — (a) a UAE block diurnal all week whose
// diurnal activity disappears with the 2020-03-24 lockdown, and (b) a
// block with a large non-Covid change (ISP renumbering in mid-February)
// whose down/up pair the detector must attribute to renumbering, not to
// human activity.
#include <cstdio>

#include "common.h"
#include "core/classify.h"
#include "core/detect.h"
#include "recon/block_recon.h"

using namespace diurnal;

namespace {

void analyze(const sim::World& world, const sim::BlockProfile& block,
             const char* label) {
  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = probe::ProbeWindow{util::time_of(2020, 1, 1),
                                 util::time_of(2020, 4, 15)};
  const auto recon = recon::observe_and_reconstruct(block, oc);
  const auto cls = core::classify_block(recon);
  const auto det = core::detect_changes(recon.counts);

  std::printf("%s: %s (|E(b)| = %d)\n", label, block.id.to_string().c_str(),
              recon.eb_count);
  std::printf("  change-sensitive: %s (diurnal ratio %.2f, max swing %.0f)\n",
              cls.change_sensitive ? "yes" : "no",
              cls.diurnal_detail.power_ratio, cls.swing_detail.max_daily_swing);
  const auto days = recon.counts.daily_stats();
  for (std::size_t i = 0; i < days.size(); i += 7) {
    const auto date = util::civil_from_days(util::epoch_days() + days[i].day);
    std::printf("  %s  min %4.0f max %4.0f  %s\n",
                util::to_string(date).c_str(), days[i].min, days[i].max,
                bench::bar(days[i].max / std::max(1.0, recon.max_active), 25)
                    .c_str());
  }
  for (const auto& c : det.changes) {
    std::printf("  %s change  alarm %s  amplitude %+.2f%s\n",
                c.direction == analysis::ChangeDirection::kDown ? "DOWN" : "UP",
                util::to_string(util::date_of(c.alarm)).c_str(), c.amplitude,
                c.filtered_as_outage ? "  [filtered: outage/renumbering pair]"
                                     : "");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::header("Figure 11", "Two representative change-sensitive blocks");
  sim::WorldConfig wc;
  wc.num_blocks = 0;
  const sim::World world(wc);

  analyze(world, *world.find(world.uae_case_block()),
          "(a) UAE block, diurnal activity disappears at lockdown");
  analyze(world, *world.find(world.renumber_case_block()),
          "(b) renumbered block, non-Covid down/up pair in mid-February");

  std::printf("paper: (a) detects the lockdown change around 2020-03-24;\n"
              "(b) shows a paired down+up (typical of outage or ISP\n"
              "renumbering) that must not be counted as human activity.\n");
  return 0;
}
