// Reproduces paper Figure 5 and section 3.2.3: where reconstruction
// fails to recognize truly change-sensitive blocks (heatmap over scan
// time x |E(b)|), and the logistic-regression model that selects
// under-probed blocks for additional probing (paper: 0.5% false-negative
// rate; 1.8M of 5.2M blocks selected).
#include <cstdio>
#include <vector>

#include "analysis/logistic.h"
#include "common.h"
#include "core/classify.h"
#include "core/datasets.h"
#include "recon/block_recon.h"

using namespace diurnal;

int main() {
  bench::header("Figure 5 / s3.2.3",
                "Change-sensitivity failures by scan time and |E(b)|, and "
                "the additional-probing selection model");
  const auto wc = bench::scaled_world(2500);
  const sim::World world(wc);

  const auto ds = core::dataset("2020m1-ejnw");
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.window = ds.window();

  // Per-block: ground-truth classification (from the truth series, as
  // the survey provides in the paper), reconstruction classification,
  // FBS time, and the logistic features |E(b)| and availability A.
  constexpr int kTimeBins = 7;   // <2h, <6h, <10h, <14h, <18h, <22h, >=22h
  constexpr int kSizeBins = 7;   // |E(b)| in 0..256 by 36
  int failures[kSizeBins][kTimeBins] = {};
  int population[kSizeBins][kTimeBins] = {};

  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  int truth_cs = 0, truth_cs_missed = 0;

  for (const auto& b : world.blocks()) {
    if (b.eb_count < 8) continue;
    const auto truth = world.truth_series(b, oc.window.start, oc.window.end, 3600);
    recon::ReconResult truth_recon;
    truth_recon.counts = truth;
    truth_recon.responsive = truth.max() > 0;
    const auto truth_cls = core::classify_block(truth_recon);

    const auto r = recon::observe_and_reconstruct(b, oc);
    const auto cls = core::classify_block(r);
    const double fbs_h = r.fbs_spans_seconds.empty()
                             ? 24.0
                             : r.fbs_median_seconds() / 3600.0;
    const double availability = truth.mean() / b.eb_count;

    features.push_back({static_cast<double>(b.eb_count), availability});
    labels.push_back(fbs_h > 6.0 ? 1 : 0);

    const int tb = std::min(kTimeBins - 1, static_cast<int>(fbs_h + 2) / 4);
    const int sb = std::min(kSizeBins - 1, b.eb_count / 37);
    ++population[sb][tb];
    if (truth_cls.change_sensitive) {
      ++truth_cs;
      if (!cls.change_sensitive) {
        ++truth_cs_missed;
        ++failures[sb][tb];
      }
    }
  }

  std::printf("failures (truth change-sensitive, reconstruction missed) by\n"
              "|E(b)| (rows, ascending) x observed scan time (columns):\n\n");
  std::printf("%10s", "|E(b)| \\ t");
  const char* cols[] = {"<2h", "<6h", "<10h", "<14h", "<18h", "<22h", ">=22h"};
  for (const auto* c : cols) std::printf("%7s", c);
  std::printf("\n");
  for (int sb = 0; sb < kSizeBins; ++sb) {
    std::printf("%7d-%-3d", sb * 37, std::min(255, sb * 37 + 36));
    for (int tb = 0; tb < kTimeBins; ++tb) std::printf("%7d", failures[sb][tb]);
    std::printf("\n");
  }
  std::printf("\ntruth change-sensitive: %d; missed by reconstruction: %d "
              "(%s)\n", truth_cs, truth_cs_missed,
              truth_cs ? util::fmt_pct(static_cast<double>(truth_cs_missed) /
                                       truth_cs)
                             .c_str()
                       : "-");

  // Logistic model: predict FBS > 6h from (|E(b)|, A); select those for
  // additional probing, discarding tiny/idle blocks as the paper does.
  analysis::LogisticModel model;
  model.fit(features, labels);
  const auto metrics = analysis::evaluate(model, features, labels);
  std::int64_t selected = 0, total = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    ++total;
    if (features[i][0] >= 32 && features[i][1] >= 0.05 &&
        model.predict(features[i])) {
      ++selected;
    }
  }
  std::printf("\nlogistic selection model (features |E(b)|, availability A):\n");
  std::printf("  accuracy %s  false-negative rate %s (paper: 0.5%%)\n",
              util::fmt_pct(metrics.accuracy()).c_str(),
              util::fmt_pct(metrics.false_negative_rate()).c_str());
  std::printf("  selected for additional probing: %lld of %lld responsive "
              "(%s; paper: 1.8M of 5.2M = 35%%)\n",
              static_cast<long long>(selected), static_cast<long long>(total),
              util::fmt_pct(total ? static_cast<double>(selected) / total : 0)
                  .c_str());
  std::printf("\nShape check: failures concentrate away from the origin "
              "(long scans of large blocks), as in the paper's heatmap.\n");
  return 0;
}
