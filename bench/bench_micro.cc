// Micro benchmarks (google-benchmark) for the analysis kernels and the
// probing/reconstruction hot paths.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numbers>

#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/fft.h"
#include "analysis/loess.h"
#include "analysis/stl.h"
#include "probe/prober.h"
#include "recon/reconstruct.h"
#include "sim/world.h"
#include "util/rng.h"

using namespace diurnal;

namespace {

std::vector<double> synthetic_series(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 10 + 5 * std::sin(2 * std::numbers::pi * static_cast<double>(i) / 24.0) +
           rng.normal(0, 0.5);
  }
  return x;
}

void BM_FftPow2(benchmark::State& state) {
  const auto x = synthetic_series(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::fft_real(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FftPow2)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_GoertzelDiurnalTest(benchmark::State& state) {
  const auto x = synthetic_series(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::test_diurnal(x, 24.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GoertzelDiurnalTest)->Arg(672)->Arg(2016)->Arg(4032);

void BM_Loess(benchmark::State& state) {
  const auto x = synthetic_series(2016, 3);
  analysis::LoessOptions opt;
  opt.span = static_cast<int>(state.range(0));
  opt.jump = std::max(1, opt.span / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::loess_smooth(x, opt));
  }
}
BENCHMARK(BM_Loess)->Arg(25)->Arg(169)->Arg(321);

void BM_StlDecompose(benchmark::State& state) {
  const auto x = synthetic_series(static_cast<std::size_t>(state.range(0)), 4);
  analysis::StlOptions opt;
  opt.period = 168;
  opt.trend_span = 169;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::stl_decompose(x, opt));
  }
}
BENCHMARK(BM_StlDecompose)->Arg(672)->Arg(2016)->Arg(4032);

void BM_Cusum(benchmark::State& state) {
  auto x = synthetic_series(static_cast<std::size_t>(state.range(0)), 5);
  for (std::size_t i = x.size() / 2; i < x.size(); ++i) x[i] -= 8.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::cusum_detect(x, {1.0, 0.001}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Cusum)->Arg(2016)->Arg(11000);

const sim::World& micro_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 200;
    c.seed = 9;
    return c;
  }());
  return world;
}

void BM_AddressOracle(benchmark::State& state) {
  const auto& world = micro_world();
  const auto* block = world.find(world.usc_office_block());
  util::SimTime t = 0;
  int addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::address_active(*block, addr, t));
    t += 660;
    addr = (addr + 1) % block->eb_count;
  }
}
BENCHMARK(BM_AddressOracle);

void BM_ProbeBlockWeek(benchmark::State& state) {
  const auto& world = micro_world();
  const auto* block = world.find(world.usc_office_block());
  probe::LossModel loss;
  const auto obs = probe::site('w');
  const probe::ProbeWindow window{0, 7 * util::kSecondsPerDay};
  for (auto _ : state) {
    benchmark::DoNotOptimize(probe::probe_block(*block, obs, loss, window));
  }
}
BENCHMARK(BM_ProbeBlockWeek);

void BM_ReconstructQuarter(benchmark::State& state) {
  const auto& world = micro_world();
  const auto* block = world.find(world.usc_office_block());
  probe::LossModel loss;
  const probe::ProbeWindow window{0, 84 * util::kSecondsPerDay};
  auto stream = probe::probe_block(*block, probe::site('w'), loss, window);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recon::reconstruct(stream, block->eb_count, window));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ReconstructQuarter);

}  // namespace

BENCHMARK_MAIN();
