// BENCH serve: the concurrent query plane over the streaming engine.
//
// Runs core::SnapshotServer on the reference fleet world: one writer
// thread advances epochs (publishing an immutable snapshot per epoch,
// engine image included) while N reader threads hammer the query API —
// per-block status, trend tails, alarms, gridcell rollups, scorecard —
// each query timed individually.  Reports query latency p50/p90/p99
// while the writer is advancing, ingest/backpressure counters, and ends
// with the equivalence gate: drain() must hash to the same fleet digest
// as the batch run_fleet pass, or the bench exits nonzero.
//
// Scale knobs: DIURNAL_BENCH_BLOCKS, DIURNAL_BENCH_SEED,
// DIURNAL_BENCH_EPOCH_SECONDS (default 86400), DIURNAL_BENCH_READERS
// (default 4), DIURNAL_BENCH_SERVE_P99_BUDGET_US (default 250000), and
// DIURNAL_BENCH_JSON (output path, default BENCH_serve.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "core/datasets.h"
#include "core/digest.h"
#include "core/pipeline.h"
#include "core/snapshot_server.h"
#include "sim/world.h"
#include "util/date.h"

using namespace diurnal;

namespace {

using Clock = std::chrono::steady_clock;

double quantile_us(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  const auto i = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

}  // namespace

int main() {
  bench::header("BENCH serve",
                "concurrent query plane: readers vs the epoch writer",
                "core::SnapshotServer; see EXPERIMENTS.md 'bench_serve'");
  const auto wc = bench::scaled_world(2000, 1);
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));

  const std::int64_t epoch_seconds = std::max(
      1, bench::env_int("DIURNAL_BENCH_EPOCH_SECONDS",
                        static_cast<int>(util::kSecondsPerDay)));
  const int n_readers = std::max(4, bench::env_int("DIURNAL_BENCH_READERS", 4));
  const double p99_budget_us = static_cast<double>(
      bench::env_int("DIURNAL_BENCH_SERVE_P99_BUDGET_US", 250000));

  // Batch reference: the digest the drained serve run must hit.
  const auto batch = core::run_fleet(world, fc);
  const std::uint64_t batch_digest = core::fleet_digest(batch);

  core::ServeConfig sc;
  sc.epoch_duration = epoch_seconds;
  core::SnapshotServer server(world, fc, sc);

  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(n_readers));
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(n_readers));
  const auto& blocks = world.blocks();
  for (int t = 0; t < n_readers; ++t) {
    readers.emplace_back([&, t] {
      auto& lat = latencies[static_cast<std::size_t>(t)];
      lat.reserve(1 << 16);
      // Per-reader xorshift so readers don't walk the same blocks.
      std::uint64_t rng = 0x9E3779B97F4A7C15ULL * (t + 1);
      std::uint64_t sink = 0;
      while (!done.load(std::memory_order_relaxed)) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const auto& b = blocks[rng % blocks.size()];
        const auto q0 = Clock::now();
        const auto snap = server.snapshot();
        if (snap == nullptr) {
          std::this_thread::yield();
          continue;
        }
        switch (rng % 5) {
          case 0: {
            const auto* row = snap->block(b.id);
            if (row != nullptr) sink += row->delivered;
            break;
          }
          case 1: {
            const auto tr = snap->trend(b.id);
            if (!tr.empty()) sink += static_cast<std::uint64_t>(tr.back());
            break;
          }
          case 2:
            sink += snap->alarms_for(b.id).size();
            break;
          case 3: {
            const auto* cs = snap->cell(b.cell());
            if (cs != nullptr) {
              sink += static_cast<std::uint64_t>(cs->alarms_down);
            }
            break;
          }
          default:
            sink += snap->scorecard().blocks_classified;
            break;
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(Clock::now() - q0)
                .count());
      }
      // Keep the side effects alive without printing per reader.
      if (sink == 0xFFFFFFFFFFFFFFFFULL) std::puts("");
    });
  }

  const auto t0 = Clock::now();
  server.start();
  server.feed_all();
  const auto streamed = server.drain();
  const double serve_secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  done.store(true);
  for (auto& r : readers) r.join();

  const std::uint64_t serve_digest = core::fleet_digest(streamed);
  const core::ServeStats stats = server.stats();
  const auto final_snap = server.snapshot();

  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  const double p50 = quantile_us(all, 0.5);
  const double p90 = quantile_us(all, 0.9);
  const double p99 = quantile_us(all, 0.99);
  const double pmax = all.empty() ? 0.0 : all.back();

  std::printf("serve:  %7.2fs | %llu epochs, %llu observations\n", serve_secs,
              static_cast<unsigned long long>(stats.epochs_published),
              static_cast<unsigned long long>(stats.observations));
  std::printf(
      "  feed     %llu accepted, %llu backpressure waits, peak depth %zu/%zu\n",
      static_cast<unsigned long long>(stats.feed_accepted),
      static_cast<unsigned long long>(stats.feed_waits), stats.feed_peak_depth,
      stats.feed_capacity);
  std::printf("  snapshot %.2f MB (rows + trends + alarms + image)\n",
              static_cast<double>(stats.snapshot_bytes) * 1e-6);
  std::printf(
      "  queries  %zu from %d readers | p50 %.1fus p90 %.1fus p99 %.1fus "
      "max %.1fus (budget %.0fus)\n",
      all.size(), n_readers, p50, p90, p99, pmax, p99_budget_us);
  const bool equivalent = serve_digest == batch_digest;
  std::printf("digest batch %s | serve %s -> %s\n",
              core::digest_hex(batch_digest).c_str(),
              core::digest_hex(serve_digest).c_str(),
              equivalent ? "HOLDS (batch == drained serve)" : "VIOLATED");
  bench::print_funnel("funnel", streamed.funnel);

  bench::JsonObject j;
  j.add("bench", "serve")
      .add("dataset", fc.dataset.abbr)
      .add("world_blocks", static_cast<std::int64_t>(world.blocks().size()))
      .add("world_seed", static_cast<std::int64_t>(wc.seed))
      .add("threads", fc.threads)
      .add("readers", n_readers)
      .add("epoch_seconds", epoch_seconds)
      .add("epochs", static_cast<std::int64_t>(stats.epochs_published))
      .add("observations", static_cast<std::int64_t>(stats.observations))
      .add("serve_seconds", serve_secs)
      .add("queries", static_cast<std::int64_t>(all.size()))
      .add("query_p50_us", p50)
      .add("query_p90_us", p90)
      .add("query_p99_us", p99)
      .add("query_max_us", pmax)
      .add("p99_budget_us", p99_budget_us)
      .add("within_budget", p99 <= p99_budget_us)
      .add("feed_waits", static_cast<std::int64_t>(stats.feed_waits))
      .add("feed_peak_depth", static_cast<std::int64_t>(stats.feed_peak_depth))
      .add("snapshot_bytes", static_cast<std::int64_t>(stats.snapshot_bytes))
      .add("final_snapshot",
           final_snap != nullptr && final_snap->final_epoch())
      .add("equivalent", equivalent)
      .add("fleet_digest", core::digest_hex(serve_digest));
  bench::write_bench_json("BENCH_serve.json", j);
  return equivalent ? 0 : 1;
}
