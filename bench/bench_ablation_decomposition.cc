// Ablation for section 2.5's design choice: STL vs the naive seasonal
// model.  The paper adopted STL after finding it more robust to
// outliers; this bench quantifies that on synthetic WFH-style series
// with and without outlier bursts, and compares detection timing.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "analysis/cusum.h"
#include "analysis/naive_seasonal.h"
#include "analysis/stats.h"
#include "analysis/stl.h"
#include "common.h"
#include "util/rng.h"

using namespace diurnal;

namespace {

struct Series {
  std::vector<double> y;
  std::vector<double> trend;
};

// Office-style series: diurnal + weekly pattern over a slowly varying
// baseline, with a WFH-style permanent drop at `drop_day`.
Series make_series(int days, int drop_day, double outlier_burst,
                   std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Series s;
  for (int d = 0; d < days; ++d) {
    const bool work = (d + 2) % 7 >= 1 && (d + 2) % 7 <= 5;
    const double base = d >= drop_day ? 2.0 : 12.0;
    for (int h = 0; h < 24; ++h) {
      const double diurnal = (work && h >= 9 && h < 17) ? base : 1.0;
      s.trend.push_back(d >= drop_day ? 1.4 : 5.0);  // rough expected level
      s.y.push_back(std::max(0.0, diurnal + rng.normal(0, 0.4)));
    }
  }
  if (outlier_burst > 0) {
    for (int i = 20 * 24; i < 20 * 24 + 10; ++i) {
      s.y[static_cast<std::size_t>(i)] += outlier_burst;
    }
    for (int i = 33 * 24; i < 33 * 24 + 8; ++i) {
      s.y[static_cast<std::size_t>(i)] += outlier_burst;
    }
  }
  return s;
}

double detect_offset_days(const std::vector<double>& trend, int drop_day) {
  util::TimeSeries t(0, util::kSecondsPerHour, trend);
  const auto z = t.zscore();
  const auto res = analysis::cusum_detect(z.span(), {1.0, 0.001});
  for (const auto& c : res.changes) {
    if (c.direction == analysis::ChangeDirection::kDown) {
      return static_cast<double>(c.alarm) / 24.0 - drop_day;
    }
  }
  return 1e9;  // not detected
}

}  // namespace

int main() {
  bench::header("Ablation: trend extraction",
                "STL vs the naive seasonal model (section 2.5)");
  const int days = 70, drop_day = 42;

  util::TextTable t({"outlier burst", "model", "trend roughness",
                     "residual |mean|", "detection offset (days)"});
  for (const double burst : {0.0, 30.0, 80.0}) {
    const auto s = make_series(days, drop_day, burst, 11);

    analysis::StlOptions opt;
    opt.period = 168;
    opt.trend_span = 169;
    opt.outer_iterations = 2;
    const auto stl = analysis::stl_decompose(s.y, opt);
    const auto naive = analysis::naive_decompose(s.y, 168);

    auto roughness = [](const std::vector<double>& trend) {
      // Mean absolute second difference: spikes make it explode.
      double sum = 0.0;
      for (std::size_t i = 2; i < trend.size(); ++i) {
        sum += std::abs(trend[i] - 2 * trend[i - 1] + trend[i - 2]);
      }
      return sum / static_cast<double>(trend.size());
    };
    for (const auto* model : {"STL", "naive"}) {
      const auto& dec_trend = model[0] == 'S' ? stl.trend : naive.trend;
      const auto& dec_resid = model[0] == 'S' ? stl.residual : naive.residual;
      const double off = detect_offset_days(dec_trend, drop_day);
      t.add_row({util::fmt(burst, 0), model,
                 util::fmt(roughness(dec_trend) * 1000, 2) + "e-3",
                 util::fmt(std::abs(analysis::mean(dec_resid)), 4),
                 off > 1e8 ? "missed" : util::fmt(off, 1)});
    }
  }
  t.print();

  std::printf("\nExpectation (the paper's rationale): with outlier bursts the\n"
              "robust STL trend stays smooth and detection stays on time,\n"
              "while the naive moving-average trend absorbs the bursts.\n");
  return 0;
}
