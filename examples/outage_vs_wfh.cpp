// outage_vs_wfh: distinguishing human-activity changes from outages.
//
// Builds two otherwise identical office blocks: one begins work-from-
// home on 2020-03-15, the other suffers a 36-hour outage the same week.
// Both produce downward CUSUM changes; the outage also produces a
// closely paired upward change, which the section-2.6 filter uses to
// discard it.
#include <cstdio>

#include "core/detect.h"
#include "recon/block_recon.h"
#include "sim/world.h"

using namespace diurnal;

namespace {

sim::BlockProfile office(std::uint64_t seed) {
  sim::BlockProfile b;
  b.id = net::BlockId::parse("10.1.0.0/24");
  b.category = sim::BlockCategory::kOffice;
  b.tz_offset_hours = -8;
  b.eb_count = 96;
  b.always_on = 2;
  b.seed = seed;
  b.base_attendance = 0.93f;
  b.current_fraction = 0.4f;
  return b;
}

void analyze(const sim::BlockProfile& block, const char* label) {
  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = probe::ProbeWindow{util::time_of(2020, 1, 1),
                                 util::time_of(2020, 3, 25)};
  const auto recon = recon::observe_and_reconstruct(block, oc);
  const auto det = core::detect_changes(recon.counts);

  std::printf("%s:\n", label);
  for (const auto& c : det.changes) {
    std::printf("  %s  alarm %s  amplitude %+5.1f addr  %s\n",
                c.direction == analysis::ChangeDirection::kDown ? "DOWN" : "UP ",
                util::to_string(util::date_of(c.alarm)).c_str(),
                c.amplitude_addresses,
                c.filtered_as_outage ? "[discarded: outage/renumbering pair]"
                : c.filtered_small   ? "[discarded: below amplitude floor]"
                                     : "<- human-activity change");
  }
  const auto activity = det.activity_changes();
  std::printf("  => %zu human-activity change(s)\n\n", activity.size());
}

}  // namespace

int main() {
  std::printf("Two office blocks, one signal each -- who is really WFH?\n\n");

  // Block A: work-from-home from 2020-03-15 (a persistent change).
  auto wfh_block = office(111);
  wfh_block.suppressions.push_back(sim::Suppression{
      util::time_of(2020, 3, 15), util::time_of(2020, 7, 1), 0.08,
      sim::EventKind::kWorkFromHome});
  analyze(wfh_block, "block A: WFH begins 2020-03-15");

  // Block B: a day-and-a-half outage starting 2020-03-16 (down, then
  // right back up).
  auto outage_block = office(222);
  outage_block.id = net::BlockId::parse("10.2.0.0/24");
  outage_block.outages.push_back(sim::OutageInterval{
      util::time_of(2020, 3, 16) + 6 * 3600,
      util::time_of(2020, 3, 17) + 18 * 3600});
  analyze(outage_block, "block B: 36-hour outage starting 2020-03-16");

  std::printf("block A keeps its downward change; block B's down/up pair is\n"
              "attributed to an outage and discarded (paper section 2.6).\n");
  return 0;
}
