// Quickstart: observe one /24 block, classify it, and detect the change
// in daily human activity caused by Covid-19 work-from-home.
//
// This reproduces the paper's running example (Figure 1): a USC office
// block whose diurnal address usage disappears when WFH begins on
// 2020-03-15.
#include <cstdio>

#include "core/classify.h"
#include "core/detect.h"
#include "recon/block_recon.h"
#include "sim/world.h"

using namespace diurnal;

int main() {
  // 1. A world to observe.  In the real system this is the IPv4
  //    Internet; here it is the synthetic substrate (DESIGN.md).
  sim::WorldConfig wc;
  wc.num_blocks = 0;  // only the named case-study blocks
  sim::World world(wc);
  const sim::BlockProfile* block = world.find(world.usc_office_block());

  // 2. Probe it like Trinocular does from four healthy sites over
  //    2020q1, repair single losses, merge, and reconstruct.
  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = probe::ProbeWindow{util::time_of(2020, 1, 1),
                                 util::time_of(2020, 3, 25)};
  const recon::ReconResult recon = recon::observe_and_reconstruct(*block, oc);

  std::printf("block %s: |E(b)| = %d, max active = %.0f, reply rate = %.3f\n",
              block->id.to_string().c_str(), recon.eb_count, recon.max_active,
              recon.mean_reply_rate);

  // 3. Is the block change-sensitive (diurnal + persistent wide swing)?
  const core::BlockClassification cls = core::classify_block(recon);
  std::printf("diurnal = %s (power ratio %.2f), wide swing = %s (max %.0f)\n",
              cls.diurnal ? "yes" : "no", cls.diurnal_detail.power_ratio,
              cls.wide_swing ? "yes" : "no", cls.swing_detail.max_daily_swing);
  std::printf("change-sensitive: %s\n", cls.change_sensitive ? "YES" : "no");

  // 4. Extract the STL trend and run CUSUM change detection on it.
  const core::DetectionResult det = core::detect_changes(recon.counts);
  for (const auto& ch : det.changes) {
    std::printf("  change: %s  start %s  alarm %s  amplitude %+.2f%s\n",
                ch.direction == analysis::ChangeDirection::kDown ? "DOWN" : "UP ",
                util::to_string(util::date_of(ch.start)).c_str(),
                util::to_string(util::date_of(ch.alarm)).c_str(), ch.amplitude,
                ch.filtered_as_outage ? "  [filtered: outage pair]" : "");
  }
  std::printf("ground truth: WFH began 2020-03-15\n");
  return 0;
}
