// coverage_survey: where can this technique see human activity?
//
// Classifies a world, then reports geographic coverage the way the
// paper's Table 4 does: which 2x2-degree gridcells hold enough
// change-sensitive blocks to represent human-activity changes, and what
// fraction of the ping-responsive Internet those cells hold.  Also
// demonstrates geolocation-noise tolerance: the same aggregation run on
// a Maxmind-style perturbed geolocation database barely moves.
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "geo/coverage.h"

using namespace diurnal;

int main(int argc, char** argv) {
  const int num_blocks = argc > 1 ? std::atoi(argv[1]) : 4000;
  std::printf("coverage_survey: %d blocks, dataset 2020m1-ejnw\n\n", num_blocks);

  sim::WorldConfig wc;
  wc.num_blocks = num_blocks;
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.run_detection = false;
  const auto fleet = core::run_fleet(world, fc);

  // True locations vs a perturbed (city-level error) geolocation DB.
  const auto noisy_geo = world.geodb().perturbed(0.3, 99);
  geo::CellCountMap cells_true, cells_noisy;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    if (!out.cls.responsive) continue;
    const auto& b = world.blocks()[i];
    auto& t = cells_true[b.cell()];
    ++t.responsive;
    t.change_sensitive += out.cls.change_sensitive;
    if (const auto rec = noisy_geo.lookup(b.id)) {
      auto& n = cells_noisy[rec->cell()];
      ++n.responsive;
      n.change_sensitive += out.cls.change_sensitive;
    }
  }

  for (const auto* label : {"true geolocation", "perturbed geolocation"}) {
    const auto& cells = label[0] == 't' ? cells_true : cells_noisy;
    // Scale-adjusted thresholds: the paper's t=5 assumes full-scale cell
    // populations (~150 change-sensitive blocks per populated cell).
    const auto s = geo::summarize_coverage(cells, 1, 1);
    std::printf("%s:\n", label);
    std::printf("  gridcells: %lld total, %lld observed, %lld represented "
                "(%.0f%% of observed)\n",
                static_cast<long long>(s.cells_total),
                static_cast<long long>(s.cells_observed),
                static_cast<long long>(s.cells_represented),
                s.represented_cell_fraction() * 100);
    std::printf("  block-weighted: %.1f%% of change-sensitive and %.1f%% of "
                "responsive blocks are in represented cells\n\n",
                s.cs_block_fraction() * 100, s.resp_block_fraction() * 100);
  }
  std::printf("2x2-degree cells absorb city-level geolocation error: the two\n"
              "summaries should be nearly identical (paper section 2.6).\n");
  return 0;
}
