// wfh_monitor: end-to-end regional activity monitoring.
//
// Runs the full pipeline (probe -> repair -> merge -> reconstruct ->
// classify -> STL -> CUSUM -> geographic aggregation) over a world and
// prints, per gridcell, the days on which an unusual share of
// change-sensitive blocks turned down — the paper's section 4 workflow
// for discovering events like lockdowns and curfews.
//
// Usage: wfh_monitor [num_blocks] [dataset]
//   e.g. wfh_monitor 3000 2020q1-ejnw
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/discovery.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "geo/countries.h"
#include "util/table.h"

using namespace diurnal;

int main(int argc, char** argv) {
  const int num_blocks = argc > 1 ? std::atoi(argv[1]) : 3000;
  const std::string ds = argc > 2 ? argv[2] : "2020q1-ejnw";

  std::printf("wfh_monitor: %d blocks, dataset %s\n", num_blocks, ds.c_str());
  sim::WorldConfig wc;
  wc.num_blocks = num_blocks;
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset(ds);
  const auto fleet = core::run_fleet(world, fc);
  std::printf("responsive %lld, change-sensitive %lld\n",
              static_cast<long long>(fleet.funnel.responsive),
              static_cast<long long>(fleet.funnel.change_sensitive));

  const auto agg = core::aggregate_changes(world, fleet, fc);

  // Regional event discovery (the section-4 workflow, automated).
  std::printf("\ndiscovered regional events (>= 5 change-sensitive blocks "
              "per cell):\n");
  const auto events = core::discover_events(agg);
  if (events.empty()) {
    std::printf("  none -- enlarge the world or pick a window with events\n");
  }
  for (const auto& ev : events) {
    std::printf("  %s\n", ev.to_string().c_str());
  }

  // Score a random sample against ground truth, like section 3.6.
  core::ValidationConfig vc;
  vc.window = fc.dataset.window();
  const auto v = core::validate_sample(world, fleet, vc);
  std::printf("\nsampled-block validation: precision %s, recall %s\n",
              util::fmt_pct(v.precision(), 0).c_str(),
              util::fmt_pct(v.recall(), 0).c_str());
  return 0;
}
