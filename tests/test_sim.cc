// Tests for the synthetic-world substrate: activity oracle, events,
// and the generator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "geo/countries.h"
#include "sim/activity_cursor.h"
#include "sim/block_profile.h"
#include "sim/country_layers.h"
#include "sim/events.h"
#include "sim/schedule.h"
#include "sim/world.h"

namespace diurnal::sim {
namespace {

using util::SimTime;
using util::time_of;

WorldConfig small_config(int blocks = 500) {
  WorldConfig c;
  c.num_blocks = blocks;
  c.seed = 99;
  return c;
}

TEST(World, GenerationIsDeterministic) {
  World a(small_config()), b(small_config());
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].id, b.blocks()[i].id);
    EXPECT_EQ(a.blocks()[i].category, b.blocks()[i].category);
    EXPECT_EQ(a.blocks()[i].eb_count, b.blocks()[i].eb_count);
    EXPECT_EQ(a.blocks()[i].seed, b.blocks()[i].seed);
  }
  // And the activity oracle agrees point-for-point.
  const auto& blk = a.blocks()[42];
  for (SimTime t = 0; t < util::kSecondsPerDay; t += 3600) {
    EXPECT_EQ(active_count(blk, t), active_count(b.blocks()[42], t));
  }
}

TEST(World, DifferentSeedsDiffer) {
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed = 100;
  World a(c1), b(c2);
  int differing = 0;
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    differing += a.blocks()[i].category != b.blocks()[i].category;
  }
  EXPECT_GT(differing, 10);
}

TEST(World, FindAndGeoDb) {
  World w(small_config());
  const auto& blk = w.blocks()[7];
  ASSERT_NE(w.find(blk.id), nullptr);
  EXPECT_EQ(w.find(blk.id)->id, blk.id);
  EXPECT_EQ(w.find(net::BlockId(1)), nullptr);
  const auto rec = w.geodb().lookup(blk.id);
  ASSERT_TRUE(rec.has_value());
  EXPECT_NEAR(rec->lat, blk.lat, 1e-6);
  EXPECT_EQ(rec->country, blk.country);
}

TEST(World, CategoryMixPlausible) {
  World w(small_config(8000));
  const auto counts = w.category_counts();
  int responsive = 0, diurnal_cat = 0, total = 0;
  for (const auto& [cat, n] : counts) {
    total += n;
    if (cat != BlockCategory::kUnused && cat != BlockCategory::kFirewalled) {
      responsive += n;
    }
    if (is_diurnal_category(cat)) diurnal_cat += n;
  }
  // Paper scale: ~46.5% responsive; diurnal categories a few percent.
  EXPECT_NEAR(static_cast<double>(responsive) / total, 0.465, 0.05);
  const double diurnal_frac = static_cast<double>(diurnal_cat) / responsive;
  EXPECT_GT(diurnal_frac, 0.02);
  EXPECT_LT(diurnal_frac, 0.15);
}

TEST(Activity, OfficeBlockIsDiurnalAndWorkWeek) {
  World w(small_config(0));
  const BlockProfile* office = w.find(w.usc_office_block());
  ASSERT_NE(office, nullptr);
  // Wednesday 2020-01-08 local noon (UTC-8 -> 20:00 UTC) vs local 3am.
  const SimTime noon = time_of(2020, 1, 8) + 20 * 3600;
  const SimTime night = time_of(2020, 1, 8) + 11 * 3600;
  EXPECT_GT(active_count(*office, noon), 8);
  EXPECT_LE(active_count(*office, night), 4);
  // Sunday local noon is nearly empty.
  const SimTime sunday_noon = time_of(2020, 1, 12) + 20 * 3600;
  EXPECT_LT(active_count(*office, sunday_noon), 6);
}

TEST(Activity, WfhSuppresssesOfficeActivity) {
  World w(small_config(0));
  const BlockProfile* office = w.find(w.usc_office_block());
  // Wednesday before WFH vs Wednesday after (local noon).
  const SimTime before = time_of(2020, 3, 4) + 20 * 3600;
  const SimTime after = time_of(2020, 3, 25) + 20 * 3600;
  EXPECT_GT(active_count(*office, before), 8);
  EXPECT_LT(active_count(*office, after), 5);
  EXPECT_TRUE(wfh_start(*office).has_value());
  EXPECT_EQ(util::to_string(util::date_of(*wfh_start(*office))), "2020-03-15");
}

TEST(Activity, HolidayDipsAttendance) {
  World w(small_config(0));
  const BlockProfile* office = w.find(w.usc_office_block());
  // MLK day (Monday 2020-01-20) vs the following Monday, local noon.
  const SimTime mlk = time_of(2020, 1, 20) + 20 * 3600;
  const SimTime normal = time_of(2020, 1, 27) + 20 * 3600;
  EXPECT_LT(active_count(*office, mlk), active_count(*office, normal) / 2 + 2);
}

TEST(Activity, OutageSilencesBlock) {
  World w(small_config(0));
  BlockProfile blk = *w.find(w.usc_office_block());
  const SimTime noon = time_of(2020, 1, 8) + 20 * 3600;
  ASSERT_GT(active_count(blk, noon), 0);
  blk.outages.push_back(OutageInterval{noon - 3600, noon + 3600});
  EXPECT_EQ(active_count(blk, noon), 0);
  EXPECT_GT(active_count(blk, noon + 7200), 0);
}

TEST(Activity, RenumberingGapThenNewPopulation) {
  World w(small_config(0));
  const BlockProfile* blk = w.find(w.renumber_case_block());
  ASSERT_NE(blk, nullptr);
  const SimTime before = blk->renumber_at - util::kSecondsPerDay;
  const SimTime gap = blk->renumber_at + 3600;
  const SimTime after = blk->renumber_at + 2 * util::kSecondsPerDay;
  EXPECT_GT(active_count(*blk, before), 0);
  EXPECT_EQ(active_count(*blk, gap), 0);
  EXPECT_GT(active_count(*blk, after), 0);
}

TEST(Activity, VacatedBlockDropsToInfrastructure) {
  World w(small_config(0));
  const BlockProfile* vpn = w.find(w.usc_vpn_block());
  ASSERT_NE(vpn, nullptr);
  const SimTime before = time_of(2020, 2, 5) + 20 * 3600;
  const SimTime after = time_of(2020, 4, 1) + 20 * 3600;
  EXPECT_GT(active_count(*vpn, before), 50);
  EXPECT_LE(active_count(*vpn, after), 2);
}

TEST(Activity, OutOfRangeAddressesNeverRespond) {
  World w(small_config(0));
  const BlockProfile* office = w.find(w.usc_office_block());
  const SimTime noon = time_of(2020, 1, 8) + 20 * 3600;
  EXPECT_FALSE(address_active(*office, office->eb_count, noon));
  EXPECT_FALSE(address_active(*office, -1, noon));
  EXPECT_FALSE(address_active(*office, 255, noon));
}

TEST(Activity, AlwaysOnAddressesStayUp) {
  World w(small_config(0));
  const BlockProfile* office = w.find(w.usc_office_block());
  int up = 0, total = 0;
  for (SimTime t = 0; t < 14 * util::kSecondsPerDay; t += 7200) {
    for (int a = 0; a < office->always_on; ++a) {
      up += address_active(*office, a, t);
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(up) / total, 0.97);
}

TEST(Activity, TruthSeriesMatchesOracle) {
  World w(small_config(0));
  const BlockProfile* office = w.find(w.usc_office_block());
  const SimTime t0 = time_of(2020, 1, 6);
  const auto series = w.truth_series(*office, t0, t0 + util::kSecondsPerDay, 3600);
  ASSERT_EQ(series.size(), 24u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series[i], active_count(*office, series.time_at(i)));
  }
}

TEST(Events, DefaultCalendarContents) {
  const auto cal = default_calendar();
  int wfh = 0, holidays = 0, unrest = 0;
  for (const auto& e : cal) {
    switch (e.kind) {
      case EventKind::kWorkFromHome: ++wfh; break;
      case EventKind::kHoliday: ++holidays; break;
      case EventKind::kCurfewUnrest: ++unrest; break;
    }
  }
  EXPECT_GE(wfh, 20);       // most registry countries have a WFH date
  EXPECT_GE(holidays, 8);
  EXPECT_GE(unrest, 2);     // Delhi and the UAE curfew
}

TEST(Events, ScopeMatching) {
  EventScope country_only;
  country_only.country_code = "IN";
  EXPECT_TRUE(country_only.matches("IN", geo::GridCell{0, 0}));
  EXPECT_FALSE(country_only.matches("CN", geo::GridCell{0, 0}));

  EventScope cell_scoped;
  cell_scoped.country_code = "IN";
  cell_scoped.cell = geo::GridCell::of(28.6, 77.2);
  EXPECT_TRUE(cell_scoped.matches("IN", geo::GridCell::of(28.0, 76.5)));
  EXPECT_FALSE(cell_scoped.matches("IN", geo::GridCell::of(19.1, 72.9)));
}

TEST(Events, EventsForFiltersByWindow) {
  const auto cal = default_calendar();
  const auto in_jan = events_for(cal, "CN", geo::GridCell::of(30.6, 114.3),
                                 time_of(2020, 1, 1), time_of(2020, 2, 1));
  bool has_spring_festival = false;
  for (const auto* e : in_jan) {
    if (e->name == "spring-festival-2020") has_spring_festival = true;
  }
  EXPECT_TRUE(has_spring_festival);
  const auto in_2019 = events_for(cal, "CN", geo::GridCell::of(30.6, 114.3),
                                  time_of(2019, 10, 1), time_of(2019, 11, 1));
  for (const auto* e : in_2019) {
    EXPECT_NE(e->name, "spring-festival-2020");
  }
}

TEST(Events, DelhiUnrestOnlyAffectsDelhiCell) {
  World w(small_config(6000));
  int delhi_unrest = 0, elsewhere_unrest = 0;
  const auto delhi = geo::GridCell::of(28.6, 77.2);
  for (const auto& b : w.blocks()) {
    for (const auto& s : b.suppressions) {
      if (s.kind != EventKind::kCurfewUnrest) continue;
      if (geo::countries()[b.country].code == "AE") continue;  // UAE curfew
      if (b.cell() == delhi) ++delhi_unrest;
      else ++elsewhere_unrest;
    }
  }
  EXPECT_GT(delhi_unrest, 0);
  EXPECT_EQ(elsewhere_unrest, 0);
}

TEST(Events, WfhAdoptionJitterWithinBounds) {
  World w(small_config(8000));
  const SimTime horizon = time_of(2020, 7, 1);
  int adopted = 0;
  for (const auto& b : w.blocks()) {
    const auto start = wfh_start(b);
    if (!start) continue;
    ++adopted;
    const auto& country = geo::countries()[b.country];
    ASSERT_TRUE(country.wfh_2020.has_value());
    const SimTime official = time_of(*country.wfh_2020);
    EXPECT_GE(*start, official - 2 * util::kSecondsPerDay);
    EXPECT_LE(*start, official + 3 * util::kSecondsPerDay);
    EXPECT_LT(*start, horizon);
  }
  EXPECT_GT(adopted, 50);
}

TEST(World, SpecialBlocksPresentOnlyWhenRequested) {
  auto cfg = small_config(10);
  cfg.include_special_blocks = false;
  World w(cfg);
  EXPECT_EQ(w.find(net::BlockId::parse("128.9.144.0/24")), nullptr);
  EXPECT_EQ(w.blocks().size(), 10u);
}

TEST(BlockCategoryNames, AllDistinct) {
  EXPECT_EQ(to_string(BlockCategory::kOffice), "office");
  EXPECT_EQ(to_string(BlockCategory::kNatGateway), "nat-gateway");
  EXPECT_NE(to_string(BlockCategory::kServerFarm),
            to_string(BlockCategory::kHomeDynamic));
}

// ---------------------------------------------------------------------------
// ActivityCursor must be an exact drop-in for address_active under its
// monotone-time contract.  These property tests throw randomized block
// profiles (every category; renumber/vacate/outage edges; overlapping
// suppressions) and randomized non-decreasing probe times at both and
// demand bit-identical answers.
// ---------------------------------------------------------------------------

constexpr SimTime kCursorHorizon = 200 * util::kSecondsPerDay;

BlockProfile random_profile(util::Xoshiro256& rng) {
  static constexpr BlockCategory kCats[] = {
      BlockCategory::kUnused,       BlockCategory::kFirewalled,
      BlockCategory::kServerFarm,   BlockCategory::kNatGateway,
      BlockCategory::kIntermittent, BlockCategory::kMixed,
      BlockCategory::kOffice,       BlockCategory::kUniversity,
      BlockCategory::kHomeDynamic,
  };
  BlockProfile b;
  b.id = net::BlockId(static_cast<std::uint32_t>(rng()));
  b.category = kCats[rng.below(std::size(kCats))];
  b.tz_offset_hours = static_cast<std::int16_t>(rng.range(-11, 12));
  b.eb_count = static_cast<std::uint16_t>(rng.range(1, 96));
  b.always_on = static_cast<std::uint16_t>(rng.range(0, 4));
  b.seed = rng();
  b.base_attendance = static_cast<float>(rng.uniform(0.5, 1.0));
  b.current_fraction =
      rng.chance(0.5) ? 1.0f : static_cast<float>(rng.uniform(0.1, 1.0));

  // Overlapping, unsorted suppressions (holiday + WFH mixtures).
  const int n_sup = static_cast<int>(rng.below(4));
  for (int i = 0; i < n_sup; ++i) {
    Suppression s;
    s.start = rng.range(0, kCursorHorizon);
    s.end = s.start + rng.range(3600, 40 * util::kSecondsPerDay);
    s.residual_attendance = rng.uniform(0.05, 0.9);
    s.kind = rng.chance(0.4) ? EventKind::kWorkFromHome : EventKind::kHoliday;
    b.suppressions.push_back(s);
  }
  // Outages, including zero-length edge and back-to-back intervals.
  const int n_out = static_cast<int>(rng.below(3));
  for (int i = 0; i < n_out; ++i) {
    OutageInterval o;
    o.start = rng.range(0, kCursorHorizon);
    o.end = o.start + rng.range(0, 3 * util::kSecondsPerDay);
    b.outages.push_back(o);
  }
  if (rng.chance(0.25)) b.renumber_at = rng.range(0, kCursorHorizon);
  if (rng.chance(0.2)) b.vacate_at = rng.range(0, kCursorHorizon);
  // DST-style offset shifts (sorted, absolute offsets) and CGNAT
  // absorption, so the cursor-oracle equivalence covers the
  // country-layer structure too.
  if (rng.chance(0.3)) {
    const int n_shift = static_cast<int>(rng.range(1, 3));
    SimTime at = rng.range(0, kCursorHorizon / 2);
    for (int i = 0; i < n_shift; ++i) {
      TzShift s;
      s.at = at;
      s.offset_hours =
          static_cast<std::int16_t>(b.tz_offset_hours + (i % 2 == 0 ? 1 : 0));
      b.tz_shifts.push_back(s);
      at += rng.range(3600, kCursorHorizon / 2);
    }
  }
  if (rng.chance(0.2)) b.cgnat_at = rng.range(0, kCursorHorizon);
  if (rng.chance(0.3)) {
    b.occupied_from = rng.range(0, kCursorHorizon / 2);
    if (rng.chance(0.7)) {
      b.occupied_until = b.occupied_from + rng.range(0, kCursorHorizon);
    }
  }
  return b;
}

TEST(ActivityCursor, MatchesOracleOnRandomProfiles) {
  util::Xoshiro256 rng(2023);
  ActivityCursor cursor;
  for (int trial = 0; trial < 200; ++trial) {
    const BlockProfile b = random_profile(rng);
    cursor.bind(b);
    SimTime t = rng.range(-2 * util::kSecondsPerDay, util::kSecondsPerDay);
    for (int step = 0; step < 2000; ++step) {
      // Mostly small steps (within-round cadence), occasionally large
      // jumps so epochs, outages, and renumbering edges all get crossed.
      t += rng.chance(0.9) ? rng.range(0, 660) : rng.range(0, 5 * 86400);
      const int addr = static_cast<int>(
          rng.range(-1, static_cast<std::int64_t>(b.eb_count)));
      ASSERT_EQ(cursor.active(addr, t), address_active(b, addr, t))
          << "trial " << trial << " category " << to_string(b.category)
          << " addr " << addr << " t " << t;
    }
  }
}

TEST(ActivityCursor, MatchesOracleAroundStructuralEdges) {
  util::Xoshiro256 rng(77);
  ActivityCursor cursor;
  for (int trial = 0; trial < 100; ++trial) {
    BlockProfile b = random_profile(rng);
    // Force the interesting structure on.
    b.renumber_at = rng.range(10 * 86400, 60 * 86400);
    b.vacate_at = rng.chance(0.5) ? rng.range(80 * 86400, 120 * 86400) : -1;
    b.outages.push_back(
        {b.renumber_at - 3600, b.renumber_at + rng.range(0, 7200)});

    // Probe a dense monotone grid straddling every edge.
    std::vector<SimTime> edges = {b.renumber_at,
                                  b.renumber_at + 4 * 3600,
                                  b.vacate_at,
                                  b.occupied_from,
                                  b.occupied_until,
                                  b.cgnat_at};
    for (const auto& s : b.tz_shifts) edges.push_back(s.at);
    for (const auto& o : b.outages) {
      edges.push_back(o.start);
      edges.push_back(o.end);
    }
    for (const auto& s : b.suppressions) {
      edges.push_back(s.start);
      edges.push_back(s.end);
    }
    std::sort(edges.begin(), edges.end());
    cursor.bind(b);
    for (const SimTime e : edges) {
      if (e < 0) continue;
      for (SimTime t = e - 2; t <= e + 2; ++t) {
        for (int addr = 0; addr < static_cast<int>(b.eb_count);
             addr += 1 + static_cast<int>(b.eb_count) / 7) {
          ASSERT_EQ(cursor.active(addr, t), address_active(b, addr, t))
              << "edge " << e << " t " << t << " addr " << addr;
        }
      }
    }
  }
}

TEST(Schedule, DstTransitionsShiftLocalClockByExactlyOneHour) {
  // US Pacific block over the default horizon: DST is already in force
  // on 2019-10-01, falls back 2019-11-03 02:00 PDT (09:00 UTC), and
  // springs forward 2020-03-08 02:00 PST (10:00 UTC).
  BlockProfile b;
  b.tz_offset_hours = -8;
  b.tz_shifts = materialize_dst(geo::DstPolicy::kNorthern, -8,
                                time_of(2019, 10, 1), time_of(2020, 7, 1));
  ASSERT_EQ(b.tz_shifts.size(), 3u);
  EXPECT_EQ(b.tz_shifts[0].at, time_of(2019, 10, 1));
  EXPECT_EQ(b.tz_shifts[0].offset_hours, -7);
  EXPECT_EQ(b.tz_shifts[1].at, time_of(2019, 11, 3) + 9 * 3600);
  EXPECT_EQ(b.tz_shifts[1].offset_hours, -8);
  EXPECT_EQ(b.tz_shifts[2].at, time_of(2020, 3, 8) + 10 * 3600);
  EXPECT_EQ(b.tz_shifts[2].offset_hours, -7);

  // Every transition moves the local clock by exactly one hour, and the
  // LocalClock view shows the classic skip/repeat.
  for (std::size_t i = 1; i < b.tz_shifts.size(); ++i) {
    const SimTime at = b.tz_shifts[i].at;
    const auto off_before = schedule::tz_offset_seconds(b, at - 1);
    const auto off_after = schedule::tz_offset_seconds(b, at);
    EXPECT_EQ(std::abs(off_after - off_before), 3600) << "shift " << i;
  }
  // Fall back: 01:xx PDT is followed by 01:xx PST — the hour repeats.
  EXPECT_EQ(schedule::local_clock(b, b.tz_shifts[1].at - 3600).hour, 1);
  EXPECT_EQ(schedule::local_clock(b, b.tz_shifts[1].at).hour, 1);
  // Spring forward: 01:xx PST is followed by 03:xx PDT — 02:xx is skipped.
  EXPECT_EQ(schedule::local_clock(b, b.tz_shifts[2].at - 3600).hour, 1);
  EXPECT_EQ(schedule::local_clock(b, b.tz_shifts[2].at).hour, 3);
}

TEST(Schedule, SouthernDstMirrorsTheNorthernSeason) {
  // Southern-hemisphere DST spans the new year: in force from the first
  // Sunday of October through the first Sunday of April.
  const auto shifts =
      materialize_dst(geo::DstPolicy::kSouthern, 10, time_of(2019, 10, 1),
                      time_of(2020, 7, 1));
  ASSERT_EQ(shifts.size(), 2u);
  EXPECT_EQ(shifts[0].offset_hours, 11);  // spring forward, Oct 6
  EXPECT_EQ(shifts[1].offset_hours, 10);  // fall back, Apr 5
  // Transition instants are UTC: 02:00 local standard on the first
  // Sunday of October (UTC+10), 02:00 local daylight on the first
  // Sunday of April (UTC+11).
  EXPECT_EQ(shifts[0].at, time_of(2019, 10, 6) + 2 * 3600 - 10 * 3600);
  EXPECT_EQ(shifts[1].at, time_of(2020, 4, 5) + 2 * 3600 - 11 * 3600);
}

TEST(ActivityCursor, RebindResetsMonotonicityContract) {
  World w(small_config(50));
  ActivityCursor cursor;
  const SimTime late = 150 * util::kSecondsPerDay;
  const SimTime early = 3 * util::kSecondsPerDay;
  for (const auto& b : w.blocks()) {
    cursor.bind(b);
    for (int addr = 0; addr < b.eb_count; ++addr) {
      ASSERT_EQ(cursor.active(addr, late), address_active(b, addr, late));
    }
    // Re-binding the same block restarts time.
    cursor.bind(b);
    for (int addr = 0; addr < b.eb_count; ++addr) {
      ASSERT_EQ(cursor.active(addr, early), address_active(b, addr, early));
    }
  }
}

}  // namespace
}  // namespace diurnal::sim
