// Property tests for the span-based analysis kernel layer: every span
// kernel must be BIT-identical to its legacy vector/TimeSeries wrapper
// on random series (including NaN-gap and short-series edges), a
// Workspace must never leak lease state between kernels, and a warm
// BlockAnalyzer must reproduce a cold run exactly.  The fleet digest
// gate (test_fleet_digest) depends on these identities holding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "analysis/block_analyzer.h"
#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/logistic.h"
#include "analysis/naive_seasonal.h"
#include "analysis/stats.h"
#include "analysis/stl.h"
#include "analysis/swing.h"
#include "analysis/workspace.h"
#include "core/classify.h"
#include "core/detect.h"
#include "core/series_store.h"
#include "util/timeseries.h"

namespace diurnal {
namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Bitwise equality: NaN == NaN (same payload), +0 != -0.  The span
// kernels promise bit identity, not approximate agreement.
void expect_same_bits(std::span<const double> a, std::span<const double> b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits_of(a[i]), bits_of(b[i])) << what << " diverges at " << i;
  }
}

// A plausible active-count series: diurnal sine + weekly modulation +
// integer-ish noise, hourly samples.
std::vector<double> make_series(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(-1.5, 1.5);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double day = 10.0 + 8.0 * std::sin(2.0 * M_PI *
                                             static_cast<double>(i) / 24.0);
    const double week = 3.0 * std::sin(2.0 * M_PI *
                                       static_cast<double>(i) / 168.0);
    v[i] = std::max(0.0, std::floor(day + week + noise(rng)));
  }
  return v;
}

std::vector<double> with_nan_gap(std::vector<double> v, std::size_t from,
                                 std::size_t len) {
  for (std::size_t i = from; i < std::min(v.size(), from + len); ++i) {
    v[i] = std::numeric_limits<double>::quiet_NaN();
  }
  return v;
}

constexpr std::int64_t kHour = util::kSecondsPerHour;

// ---------------------------------------------------------------------------
// Span kernel vs legacy wrapper bit-identity
// ---------------------------------------------------------------------------

TEST(AnalysisKernels, DiurnalSpanMatchesWrapper) {
  analysis::Workspace ws;
  for (const std::size_t n : {std::size_t{5}, std::size_t{24},
                              std::size_t{49}, std::size_t{24 * 28 + 7}}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto v = make_series(n, seed);
      const auto legacy = analysis::test_diurnal(v, 24.0);
      const auto span = analysis::test_diurnal(v, 24.0, {}, ws);
      EXPECT_EQ(legacy.diurnal, span.diurnal) << n << "/" << seed;
      EXPECT_EQ(bits_of(legacy.power_ratio), bits_of(span.power_ratio));
      EXPECT_EQ(bits_of(legacy.total_power), bits_of(span.total_power));
      EXPECT_EQ(bits_of(legacy.diurnal_power), bits_of(span.diurnal_power));
      EXPECT_EQ(legacy.segments, span.segments);
      EXPECT_EQ(legacy.segments_diurnal, span.segments_diurnal);
    }
  }
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(AnalysisKernels, DiurnalSpanMatchesWrapperOnNanGap) {
  analysis::Workspace ws;
  const auto v = with_nan_gap(make_series(24 * 14, 9), 100, 30);
  const auto legacy = analysis::test_diurnal(v, 24.0);
  const auto span = analysis::test_diurnal(v, 24.0, {}, ws);
  EXPECT_EQ(legacy.diurnal, span.diurnal);
  EXPECT_EQ(bits_of(legacy.power_ratio), bits_of(span.power_ratio));
  EXPECT_EQ(bits_of(legacy.total_power), bits_of(span.total_power));
}

TEST(AnalysisKernels, SwingSpanMatchesTimeSeries) {
  analysis::Workspace ws;
  // Starts offset into a day and short series exercise the partial
  // first/last day paths of the dense day axis.
  for (const std::int64_t start : {std::int64_t{0}, 5 * kHour + 1800,
                                   23 * kHour}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{20},
                                std::size_t{24 * 10 + 3}}) {
      const auto v = make_series(n, 7 + static_cast<std::uint64_t>(n));
      const util::TimeSeries ts(start, kHour, std::vector<double>(v));
      const auto legacy = analysis::classify_swing(ts);
      const auto span = analysis::classify_swing(v, start, kHour, {}, ws);
      EXPECT_EQ(legacy.wide, span.wide) << start << "/" << n;
      EXPECT_EQ(legacy.wide_days, span.wide_days);
      EXPECT_EQ(legacy.total_days, span.total_days);
      EXPECT_EQ(bits_of(legacy.max_daily_swing), bits_of(span.max_daily_swing));
      EXPECT_EQ(legacy.best_window_wide, span.best_window_wide);
    }
  }
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(AnalysisKernels, StlSpanMatchesWrapper) {
  analysis::Workspace ws;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto y = make_series(24 * 21, seed);
    analysis::StlOptions opt;
    opt.period = 24;
    opt.outer_iterations = static_cast<int>(seed % 3);  // 0 hits non-robust
    const auto legacy = analysis::stl_decompose(y, opt);
    std::vector<double> trend(y.size()), seasonal(y.size()),
        residual(y.size()), rho(y.size());
    analysis::stl_decompose(y, opt, ws, trend, seasonal, residual, rho);
    expect_same_bits(legacy.trend, trend, "trend");
    expect_same_bits(legacy.seasonal, seasonal, "seasonal");
    expect_same_bits(legacy.residual, residual, "residual");
    if (!legacy.robustness.empty()) {
      expect_same_bits(legacy.robustness, rho, "robustness");
    }
  }
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(AnalysisKernels, StlSpanMatchesWrapperOnNanGap) {
  analysis::Workspace ws;
  const auto y = with_nan_gap(make_series(24 * 21, 4), 200, 24);
  analysis::StlOptions opt;
  opt.period = 24;
  const auto legacy = analysis::stl_decompose(y, opt);
  std::vector<double> trend(y.size()), seasonal(y.size()), residual(y.size());
  analysis::stl_decompose(y, opt, ws, trend, seasonal, residual);
  expect_same_bits(legacy.trend, trend, "trend(nan)");
  expect_same_bits(legacy.seasonal, seasonal, "seasonal(nan)");
  expect_same_bits(legacy.residual, residual, "residual(nan)");
}

TEST(AnalysisKernels, StlShortSeriesThrowsInBothPaths) {
  analysis::Workspace ws;
  const auto y = make_series(30, 1);  // < 2 * period
  analysis::StlOptions opt;
  opt.period = 24;
  EXPECT_THROW(analysis::stl_decompose(y, opt), std::invalid_argument);
  std::vector<double> t(y.size()), s(y.size()), r(y.size());
  EXPECT_THROW(analysis::stl_decompose(y, opt, ws, t, s, r),
               std::invalid_argument);
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(AnalysisKernels, NaiveSpanMatchesWrapper) {
  analysis::Workspace ws;
  const auto y = make_series(24 * 9 + 5, 11);
  const auto legacy = analysis::naive_decompose(y, 24);
  std::vector<double> trend(y.size()), seasonal(y.size()), residual(y.size());
  analysis::naive_decompose(y, 24, ws, trend, seasonal, residual);
  expect_same_bits(legacy.trend, trend, "naive trend");
  expect_same_bits(legacy.seasonal, seasonal, "naive seasonal");
  expect_same_bits(legacy.residual, residual, "naive residual");
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(AnalysisKernels, CusumScanMatchesDetect) {
  analysis::OnlineCusum machine;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto z = make_series(300, seed);
    for (auto& v : z) v = (v - 10.0) / 8.0;
    if (seed == 2) z.insert(z.begin() + 150, 40, -3.0);  // force changes
    const auto batch = analysis::cusum_detect(z);
    machine.scan(z);  // reused machine, warm after the first seed
    ASSERT_EQ(batch.changes.size(), machine.confirmed().size());
    for (std::size_t i = 0; i < batch.changes.size(); ++i) {
      EXPECT_EQ(batch.changes[i].start, machine.confirmed()[i].start);
      EXPECT_EQ(batch.changes[i].alarm, machine.confirmed()[i].alarm);
      EXPECT_EQ(batch.changes[i].end, machine.confirmed()[i].end);
      EXPECT_EQ(batch.changes[i].direction, machine.confirmed()[i].direction);
      EXPECT_EQ(bits_of(batch.changes[i].amplitude),
                bits_of(machine.confirmed()[i].amplitude));
    }
    expect_same_bits(batch.g_pos, machine.g_pos(), "g_pos");
    expect_same_bits(batch.g_neg, machine.g_neg(), "g_neg");
  }
}

TEST(AnalysisKernels, AnalyzerZscoreMatchesTimeSeries) {
  analysis::BlockAnalyzer az;
  const auto v = make_series(500, 3);
  const util::TimeSeries ts(0, kHour, std::vector<double>(v));
  expect_same_bits(ts.zscore().span(), az.zscore(v), "zscore");
  // Constant series must hit the guard in both paths.
  const std::vector<double> flat(100, 42.0);
  const util::TimeSeries fts(0, kHour, std::vector<double>(flat));
  expect_same_bits(fts.zscore().span(), az.zscore(flat), "zscore(flat)");
}

TEST(AnalysisKernels, DetectChangesSpanMatchesLegacy) {
  analysis::BlockAnalyzer az;
  std::vector<core::DetectedChange> span_changes;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto v = make_series(24 * 35, seed);
    // A mid-window step change so the CUSUM has something to confirm.
    for (std::size_t i = v.size() / 2; i < v.size(); ++i) v[i] += 6.0;
    const util::TimeSeries ts(17 * kHour, kHour, std::vector<double>(v));
    const auto legacy = core::detect_changes(ts);
    core::detect_changes(v, ts.start(), ts.step(), {}, az, span_changes);
    ASSERT_EQ(legacy.changes.size(), span_changes.size()) << seed;
    for (std::size_t i = 0; i < span_changes.size(); ++i) {
      const auto& a = legacy.changes[i];
      const auto& b = span_changes[i];
      EXPECT_EQ(a.start, b.start);
      EXPECT_EQ(a.alarm, b.alarm);
      EXPECT_EQ(a.end, b.end);
      EXPECT_EQ(a.direction, b.direction);
      EXPECT_EQ(bits_of(a.amplitude), bits_of(b.amplitude));
      EXPECT_EQ(bits_of(a.amplitude_addresses), bits_of(b.amplitude_addresses));
      EXPECT_EQ(a.filtered_as_outage, b.filtered_as_outage);
      EXPECT_EQ(a.filtered_small, b.filtered_small);
    }
  }
}

TEST(AnalysisKernels, ClassifyBlockSpanMatchesLegacy) {
  analysis::BlockAnalyzer az;
  recon::ReconResult rr;
  rr.responsive = true;
  rr.evidence_fraction = 0.9;
  rr.counts = util::TimeSeries(3 * kHour, kHour,
                               make_series(24 * 14, 21));
  const auto legacy = core::classify_block(rr);
  const auto span = core::classify_block(
      rr.counts.span(), rr.counts.start(), rr.counts.step(), rr.responsive,
      rr.evidence_fraction, {}, az);
  EXPECT_EQ(legacy.responsive, span.responsive);
  EXPECT_EQ(legacy.diurnal, span.diurnal);
  EXPECT_EQ(legacy.wide_swing, span.wide_swing);
  EXPECT_EQ(legacy.change_sensitive, span.change_sensitive);
  EXPECT_EQ(legacy.low_confidence, span.low_confidence);
  EXPECT_EQ(bits_of(legacy.diurnal_detail.power_ratio),
            bits_of(span.diurnal_detail.power_ratio));
  EXPECT_EQ(legacy.swing_detail.wide_days, span.swing_detail.wide_days);
}

TEST(AnalysisKernels, LogisticFlatMatchesNested) {
  std::vector<std::vector<double>> nested;
  std::vector<double> flat;
  std::vector<int> labels;
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  for (int i = 0; i < 80; ++i) {
    const double a = d(rng), b = d(rng);
    nested.push_back({a, b});
    flat.push_back(a);
    flat.push_back(b);
    labels.push_back(a + 2.0 * b > 0.3 ? 1 : 0);
  }
  analysis::LogisticModel m1, m2;
  m1.fit(nested, labels);
  m2.fit(analysis::FeatureMatrix(flat, 2), labels);
  ASSERT_EQ(m1.weights().size(), m2.weights().size());
  expect_same_bits(m1.weights(), m2.weights(), "weights");
  EXPECT_EQ(bits_of(m1.bias()), bits_of(m2.bias()));
  const auto e1 = analysis::evaluate(m1, nested, labels);
  const auto e2 = analysis::evaluate(m2, analysis::FeatureMatrix(flat, 2),
                                     labels);
  EXPECT_EQ(e1.tp, e2.tp);
  EXPECT_EQ(e1.fp, e2.fp);
  EXPECT_EQ(e1.tn, e2.tn);
  EXPECT_EQ(e1.fn, e2.fn);
}

// ---------------------------------------------------------------------------
// Workspace behavior
// ---------------------------------------------------------------------------

TEST(Workspace, LeaseLifecycle) {
  analysis::Workspace ws;
  {
    auto a = ws.acquire(100);
    auto b = ws.acquire(50);
    EXPECT_EQ(ws.outstanding(), 2u);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(b.size(), 50u);
    EXPECT_NE(a.data(), b.data());
    a.release();  // out-of-order release is allowed
    EXPECT_EQ(ws.outstanding(), 1u);
  }
  EXPECT_EQ(ws.outstanding(), 0u);
  auto z = ws.acquire_zero(64);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_EQ(z[i], 0.0);
}

TEST(Workspace, WarmPoolStopsMissing) {
  analysis::Workspace ws;
  const auto y = make_series(24 * 21, 2);
  std::vector<double> t(y.size()), s(y.size()), r(y.size());
  analysis::StlOptions opt;
  opt.period = 24;
  analysis::stl_decompose(y, opt, ws, t, s, r);  // cold: pool grows
  const std::size_t warm = ws.pool_misses();
  for (int i = 0; i < 3; ++i) analysis::stl_decompose(y, opt, ws, t, s, r);
  EXPECT_EQ(ws.pool_misses(), warm) << "warm workspace allocated";
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(Workspace, ReuseNeverLeaksStateAcrossKernels) {
  // Interleave every kernel on one workspace, then verify each result
  // still matches a fresh-workspace run: leases must hand back fully
  // overwritten buffers, never stale contents.
  analysis::Workspace shared;
  const auto y1 = make_series(24 * 14, 31);
  const auto y2 = make_series(24 * 21, 32);

  const auto d_cold = [&] {
    analysis::Workspace fresh;
    return analysis::test_diurnal(y1, 24.0, {}, fresh);
  }();
  analysis::StlOptions opt;
  opt.period = 24;
  std::vector<double> t(y2.size()), s(y2.size()), r(y2.size());
  std::vector<double> t2(y2.size()), s2(y2.size()), r2(y2.size());
  {
    analysis::Workspace fresh;
    analysis::stl_decompose(y2, opt, fresh, t, s, r);
  }

  for (int round = 0; round < 3; ++round) {
    const auto d = analysis::test_diurnal(y1, 24.0, {}, shared);
    EXPECT_EQ(bits_of(d.power_ratio), bits_of(d_cold.power_ratio)) << round;
    analysis::stl_decompose(y2, opt, shared, t2, s2, r2);
    expect_same_bits(t, t2, "trend across reuse");
    expect_same_bits(r, r2, "residual across reuse");
    const auto sw = analysis::classify_swing(y1, 0, kHour, {}, shared);
    const auto sw_cold = [&] {
      analysis::Workspace fresh;
      return analysis::classify_swing(y1, 0, kHour, {}, fresh);
    }();
    EXPECT_EQ(sw.wide_days, sw_cold.wide_days) << round;
    EXPECT_EQ(shared.outstanding(), 0u) << round;
  }
}

TEST(BlockAnalyzer, WarmAnalyzerMatchesCold) {
  analysis::BlockAnalyzer warm;
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    const auto y = make_series(24 * 28, seed);
    analysis::StlOptions opt;
    opt.period = 24;
    const auto dec = warm.decompose_stl(y, opt);
    const auto z = warm.zscore(dec.trend);
    const auto cus = warm.cusum(z);

    analysis::BlockAnalyzer cold;
    const auto cdec = cold.decompose_stl(y, opt);
    const auto cz = cold.zscore(cdec.trend);
    const auto ccus = cold.cusum(cz);
    expect_same_bits(dec.trend, cdec.trend, "warm trend");
    expect_same_bits(z, cz, "warm z");
    ASSERT_EQ(cus.changes.size(), ccus.changes.size());
    expect_same_bits(cus.g_pos, ccus.g_pos, "warm g_pos");
  }
}

// ---------------------------------------------------------------------------
// SeriesStore
// ---------------------------------------------------------------------------

TEST(SeriesStore, RowsAreDisjointAndPrefixed) {
  core::SeriesStore store;
  store.reset(4, 10, 1000, kHour);
  EXPECT_EQ(store.rows(), 4u);
  EXPECT_EQ(store.stride(), 10u);
  EXPECT_EQ(store.start(), 1000);
  EXPECT_EQ(store.step(), kHour);
  for (std::size_t i = 0; i < store.rows(); ++i) {
    auto row = store.row(i);
    ASSERT_EQ(row.size(), 10u);
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] = static_cast<double>(i * 100 + j);
    }
    store.set_len(i, i + 1);
  }
  for (std::size_t i = 0; i < store.rows(); ++i) {
    const auto s = store.series(i);
    ASSERT_EQ(s.size(), i + 1);  // written prefix only
    for (std::size_t j = 0; j < s.size(); ++j) {
      EXPECT_EQ(s[j], static_cast<double>(i * 100 + j));
    }
  }
  // Rows are contiguous slices of one buffer, stride apart.
  EXPECT_EQ(store.row(1).data(), store.row(0).data() + store.stride());
}

TEST(SeriesStore, ResetRecyclesAndZeroesLengths) {
  core::SeriesStore store;
  store.reset(2, 8, 0, kHour);
  store.set_len(0, 8);
  store.set_len(1, 3);
  store.reset(3, 4, 500, 2 * kHour);
  EXPECT_EQ(store.rows(), 3u);
  EXPECT_EQ(store.stride(), 4u);
  EXPECT_EQ(store.step(), 2 * kHour);
  for (std::size_t i = 0; i < store.rows(); ++i) {
    EXPECT_EQ(store.len(i), 0u) << "reset must clear lengths";
  }
  store.reset(1, 6, 0, 0);  // step <= 0 clamps to 1
  EXPECT_EQ(store.step(), 1);
}

TEST(SeriesStore, BoundReconWritesRowIdenticalToOwnedBuffer) {
  // The recon state writes the same bytes whether it owns the buffer or
  // is bound to a store row, and finalize_stats mirrors finalize.
  core::SeriesStore store;
  store.reset(1, 48, 0, kHour);
  probe::ProbeWindow w{0, 48 * kHour};
  probe::Observation obs{};

  recon::BlockReconState owned, bound;
  owned.begin(4, w);
  bound.begin(4, w);
  bound.bind_output(store.row(0));
  for (int k = 0; k < 40; ++k) {
    obs.rel_time = static_cast<std::uint32_t>(k * kHour + 300);
    obs.addr = static_cast<std::uint8_t>(k % 4);
    obs.up = (k % 3) != 0;
    owned.push(obs);
    bound.push(obs);
  }
  recon::ReconResult full;
  owned.finalize(full);
  recon::ReconStats stats;
  bound.finalize_stats(stats);
  store.set_len(0, stats.len);

  expect_same_bits(full.counts.span(), store.series(0), "bound series");
  EXPECT_EQ(full.responsive, stats.responsive);
  EXPECT_EQ(bits_of(full.mean_reply_rate), bits_of(stats.mean_reply_rate));
  EXPECT_EQ(full.observations, stats.observations);
  EXPECT_EQ(full.observed_targets, stats.observed_targets);
  EXPECT_EQ(bits_of(full.max_active), bits_of(stats.max_active));
  EXPECT_EQ(bits_of(full.evidence_fraction), bits_of(stats.evidence_fraction));
  EXPECT_EQ(bits_of(full.max_gap_seconds), bits_of(stats.max_gap_seconds));
  ASSERT_EQ(full.gaps.size(), stats.gaps.size());
  ASSERT_EQ(full.fbs_spans_seconds.size(), stats.fbs_spans_seconds.size());
  EXPECT_EQ(full.counts.start(), stats.start);
  EXPECT_EQ(full.counts.step(), stats.step);
  EXPECT_EQ(full.counts.size(), stats.len);
}

}  // namespace
}  // namespace diurnal
