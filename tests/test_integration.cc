// End-to-end integration tests: the full Table-1 pipeline over a small
// world, scored against ground truth.
#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.h"
#include "core/pipeline.h"
#include "geo/coverage.h"
#include "recon/block_recon.h"

namespace diurnal::core {
namespace {

using util::time_of;

const sim::World& shared_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 2500;
    c.seed = 2020;
    return c;
  }());
  return world;
}

const FleetResult& shared_fleet() {
  static const FleetResult result = [] {
    FleetConfig fc;
    fc.dataset = dataset("2020q1-ejnw");
    return run_fleet(shared_world(), fc);
  }();
  return result;
}

TEST(Integration, FunnelShapeMatchesPaper) {
  const auto& f = shared_fleet().funnel;
  EXPECT_EQ(f.routed, static_cast<std::int64_t>(shared_world().blocks().size()));
  EXPECT_EQ(f.responsive + f.not_responsive, f.routed);
  EXPECT_EQ(f.diurnal + f.not_diurnal, f.responsive);
  EXPECT_EQ(f.narrow_swing + f.wide_swing, f.responsive);
  EXPECT_EQ(f.change_sensitive + f.not_change_sensitive, f.responsive);

  const double resp_frac = static_cast<double>(f.responsive) / f.routed;
  const double diurnal_frac = static_cast<double>(f.diurnal) / f.responsive;
  const double wide_frac = static_cast<double>(f.wide_swing) / f.responsive;
  const double cs_frac = static_cast<double>(f.change_sensitive) / f.responsive;
  // Paper (Table 2, 2020q1): responsive 46.5% of routed, diurnal 7.7%,
  // wide 58.5%, change-sensitive 6.1% of responsive.  Allow generous
  // bands; the *shape* must hold.
  EXPECT_NEAR(resp_frac, 0.465, 0.06);
  EXPECT_GT(diurnal_frac, 0.03);
  EXPECT_LT(diurnal_frac, 0.16);
  EXPECT_GT(wide_frac, 0.35);
  EXPECT_LT(wide_frac, 0.75);
  EXPECT_GT(cs_frac, 0.03);
  EXPECT_LT(cs_frac, 0.12);
  EXPECT_LE(f.change_sensitive, f.diurnal);
}

TEST(Integration, UscExampleBlockDetectedOnTime) {
  const auto& world = shared_world();
  const auto& fleet = shared_fleet();
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].id != world.usc_office_block()) continue;
    const auto& out = fleet.outcomes[i];
    ASSERT_TRUE(out.cls.change_sensitive);
    bool near_wfh = false;
    for (const auto& c : out.changes) {
      if (c.direction == analysis::ChangeDirection::kDown &&
          !c.filtered_as_outage &&
          std::llabs(c.alarm - time_of(2020, 3, 15)) <=
              4 * util::kSecondsPerDay) {
        near_wfh = true;
      }
    }
    EXPECT_TRUE(near_wfh);
    return;
  }
  FAIL() << "USC block missing from world";
}

TEST(Integration, SampleValidationShape) {
  ValidationConfig vc;
  vc.window = dataset("2020q1-ejnw").window();
  vc.sample_size = 60;
  const auto v = validate_sample(shared_world(), shared_fleet(), vc);
  EXPECT_EQ(v.total, 60);
  EXPECT_EQ(v.total, v.no_wfh_in_window + v.wfh_in_window);
  EXPECT_EQ(v.wfh_in_window, v.cusum_near_wfh + v.no_cusum_near);
  EXPECT_EQ(v.cusum_near_wfh, v.true_positive + v.false_positive);
  EXPECT_EQ(v.no_cusum_near, v.false_negative + v.cusum_far + v.no_cusum);
  // The paper reports precision 93% and recall 72%; our synthetic world
  // must land in the same regime.  Both rates must be defined: the
  // sample has ground-truth WFH changes and detections near them.
  ASSERT_TRUE(v.precision().has_value());
  ASSERT_TRUE(v.recall().has_value());
  EXPECT_GE(*v.precision(), 0.8);
  EXPECT_GE(*v.recall(), 0.5);
  EXPECT_GT(v.true_positive, 0);
}

TEST(Integration, ValidationIsDeterministic) {
  ValidationConfig vc;
  vc.window = dataset("2020q1-ejnw").window();
  const auto a = validate_sample(shared_world(), shared_fleet(), vc);
  const auto b = validate_sample(shared_world(), shared_fleet(), vc);
  EXPECT_EQ(a.true_positive, b.true_positive);
  EXPECT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].id, b.blocks[i].id);
    EXPECT_EQ(a.blocks[i].verdict, b.blocks[i].verdict);
  }
}

TEST(Integration, AggregationCoversChangeSensitiveBlocks) {
  const auto& fleet = shared_fleet();
  FleetConfig fc;
  fc.dataset = dataset("2020q1-ejnw");
  const auto agg = aggregate_changes(shared_world(), fleet, fc);
  std::int64_t agg_blocks = 0;
  for (const auto& [cell, series] : agg.by_cell()) {
    (void)cell;
    agg_blocks += series.change_sensitive_blocks;
  }
  EXPECT_EQ(agg_blocks, fleet.funnel.change_sensitive);
  // Continent totals match too.
  std::int64_t cont_blocks = 0;
  for (const auto& c : agg.by_continent()) {
    cont_blocks += c.change_sensitive_blocks;
  }
  EXPECT_EQ(cont_blocks, fleet.funnel.change_sensitive);
}

TEST(Integration, CoverageSummaryFromFleet) {
  const auto& world = shared_world();
  const auto& fleet = shared_fleet();
  geo::CellCountMap cells;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    if (!out.cls.responsive) continue;
    auto& c = cells[world.blocks()[i].cell()];
    ++c.responsive;
    c.change_sensitive += out.cls.change_sensitive;
  }
  const auto s = geo::summarize_coverage(cells);
  EXPECT_GT(s.cells_observed, 0);
  EXPECT_GT(s.cells_represented, 0);
  // Block-weighted coverage exceeds cell coverage (the paper's point:
  // the cells we represent hold nearly all the blocks).
  EXPECT_GT(s.resp_block_fraction(), s.represented_cell_fraction());
}

TEST(Integration, FleetIsDeterministic) {
  sim::WorldConfig wc;
  wc.num_blocks = 300;
  wc.seed = 77;
  const sim::World world(wc);
  FleetConfig fc;
  fc.dataset = dataset("2020m1-ejnw");
  const auto a = run_fleet(world, fc);
  const auto b = run_fleet(world, fc);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.funnel.change_sensitive, b.funnel.change_sensitive);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].cls.change_sensitive,
              b.outcomes[i].cls.change_sensitive);
    EXPECT_EQ(a.outcomes[i].changes.size(), b.outcomes[i].changes.size());
  }
}

TEST(Integration, ClassifyWindowSeparateFromDetection) {
  // Classify on 2020m1 (pre-Covid baseline), detect over a longer
  // window, as section 3.4 prescribes.
  sim::WorldConfig wc;
  wc.num_blocks = 400;
  wc.seed = 88;
  const sim::World world(wc);
  FleetConfig fc;
  fc.dataset = dataset("2020q1-ejnw");
  fc.classify_dataset = dataset("2020m1-ejnw");
  const auto res = run_fleet(world, fc);
  // Detection windows longer than classification: any change-sensitive
  // block's changes may land after January.
  bool change_after_january = false;
  for (const auto& out : res.outcomes) {
    for (const auto& c : out.changes) {
      if (c.alarm > time_of(2020, 2, 1)) change_after_january = true;
    }
  }
  EXPECT_TRUE(change_after_january);
}

TEST(Integration, RenumberCaseFilteredAsOutagePair) {
  const auto& world = shared_world();
  const auto& fleet = shared_fleet();
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i].id != world.renumber_case_block()) continue;
    const auto& out = fleet.outcomes[i];
    if (!out.cls.change_sensitive) return;  // mixed block may be narrow
    // If detected, the mid-February pair must include both directions.
    bool down = false, up = false;
    for (const auto& c : out.changes) {
      if (std::llabs(c.alarm - time_of(2020, 2, 15)) <=
          6 * util::kSecondsPerDay) {
        down |= c.direction == analysis::ChangeDirection::kDown;
        up |= c.direction == analysis::ChangeDirection::kUp;
      }
    }
    EXPECT_EQ(down, up);
    return;
  }
}

}  // namespace
}  // namespace diurnal::core
