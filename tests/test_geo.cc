// Tests for gridcells, the country registry, geolocation, and coverage.
#include <gtest/gtest.h>

#include "geo/countries.h"
#include "geo/coverage.h"
#include "geo/geodb.h"
#include "geo/gridcell.h"

namespace diurnal::geo {
namespace {

TEST(GridCell, PaperLandmarks) {
  // The paper's case-study cells: Wuhan (30N,114E), Beijing (38N,116E),
  // New Delhi (28N,76E), UAE (24N,54E), Slovenia (46N,14E).
  EXPECT_EQ(GridCell::of(30.6, 114.3).to_string(), "(30N,114E)");
  EXPECT_EQ(GridCell::of(39.9, 116.4).to_string(), "(38N,116E)");
  EXPECT_EQ(GridCell::of(28.6, 77.2).to_string(), "(28N,76E)");
  EXPECT_EQ(GridCell::of(24.5, 54.4).to_string(), "(24N,54E)");
  EXPECT_EQ(GridCell::of(46.1, 14.5).to_string(), "(46N,14E)");
}

TEST(GridCell, NegativeCoordinatesFloor) {
  EXPECT_EQ(GridCell::of(-23.6, -46.6).to_string(), "(24S,48W)");
  EXPECT_EQ(GridCell::of(-0.1, -0.1).to_string(), "(2S,2W)");
  EXPECT_EQ(GridCell::of(0.1, 0.1).to_string(), "(0N,0E)");
}

TEST(GridCell, LongitudeNormalization) {
  EXPECT_EQ(GridCell::of(10.0, 190.0), GridCell::of(10.0, -170.0));
  EXPECT_EQ(GridCell::of(10.0, -181.0), GridCell::of(10.0, 179.0));
}

TEST(GridCell, CellGeometry) {
  const GridCell c = GridCell::of(31.9, 115.9);
  EXPECT_DOUBLE_EQ(c.lat(), 30.0);
  EXPECT_DOUBLE_EQ(c.lon(), 114.0);
  EXPECT_DOUBLE_EQ(c.center_lat(), 31.0);
  // Same cell for all points within [30,32) x [114,116).
  EXPECT_EQ(GridCell::of(30.0, 114.0), c);
  EXPECT_NE(GridCell::of(32.0, 114.0), c);
}

TEST(Countries, RegistryInvariants) {
  const auto& all = countries();
  EXPECT_GE(all.size(), 25u);
  for (const auto& c : all) {
    EXPECT_EQ(c.code.size(), 2u) << c.name;
    EXPECT_FALSE(c.demographics.cities.empty()) << c.name;
    EXPECT_GT(c.demographics.block_weight, 0.0) << c.name;
    EXPECT_GT(c.adoption.diurnal_visible_fraction, 0.0) << c.name;
    EXPECT_LE(c.adoption.diurnal_visible_fraction, 1.0) << c.name;
    // Default registry layers are neutral: that is the bitwise
    // equivalence contract (DESIGN §12) the golden digest rests on.
    EXPECT_EQ(c.adoption.cgnat_fraction, 0.0) << c.name;
    EXPECT_EQ(c.network_ops.renumber_multiplier, 1.0) << c.name;
    EXPECT_EQ(c.network_ops.outage_multiplier, 1.0) << c.name;
    EXPECT_EQ(c.time_rules.dst, DstPolicy::kNone) << c.name;
    EXPECT_TRUE(c.time_rules.holidays.empty()) << c.name;
    EXPECT_EQ(c.drift.adoption_trend_per_year, 0.0) << c.name;
    EXPECT_EQ(c.drift.cgnat_trend_per_year, 0.0) << c.name;
    for (const auto& city : c.demographics.cities) {
      EXPECT_GE(city.lat, -90.0);
      EXPECT_LE(city.lat, 90.0);
      EXPECT_GE(city.lon, -180.0);
      EXPECT_LE(city.lon, 180.0);
    }
  }
}

TEST(Countries, PaperCountriesPresent) {
  EXPECT_EQ(country("CN").continent, Continent::kAsia);
  EXPECT_EQ(country("SI").name, "Slovenia");
  EXPECT_EQ(country("MA").continent, Continent::kAfrica);
  EXPECT_EQ(country("AU").continent, Continent::kOceania);
  EXPECT_EQ(country("BR").continent, Continent::kSouthAmerica);
  EXPECT_THROW(country("ZZ"), std::out_of_range);
}

TEST(Countries, WfhDatesMatchNewsReports) {
  // Spot-check the dates cited in sections 3.6/3.7 and 4.
  EXPECT_EQ(util::to_string(*country("CN").wfh_2020), "2020-01-23");
  EXPECT_EQ(util::to_string(*country("IN").wfh_2020), "2020-03-22");
  EXPECT_EQ(util::to_string(*country("SI").wfh_2020), "2020-03-16");
  EXPECT_EQ(util::to_string(*country("AE").wfh_2020), "2020-03-24");
  EXPECT_EQ(util::to_string(*country("MA").wfh_2020), "2020-03-20");
}

TEST(Countries, ContinentNames) {
  EXPECT_EQ(to_string(Continent::kAsia), "Asia");
  EXPECT_EQ(to_string(Continent::kNorthAmerica), "North America");
}

TEST(GeoDb, AddLookup) {
  GeoDatabase db;
  const net::BlockId b = net::BlockId::parse("1.2.3.0/24");
  db.add(b, GeoRecord{30.6, 114.3, static_cast<std::uint16_t>(country_index("CN"))});
  const auto rec = db.lookup(b);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->cell().to_string(), "(30N,114E)");
  EXPECT_EQ(rec->continent(), Continent::kAsia);
  EXPECT_FALSE(db.lookup(net::BlockId::parse("9.9.9.0/24")).has_value());
  EXPECT_EQ(db.size(), 1u);
}

TEST(GeoDb, PerturbationIsBoundedAndDeterministic) {
  GeoDatabase db;
  for (std::uint32_t i = 0; i < 200; ++i) {
    db.add(net::BlockId(1000 + i), GeoRecord{40.0, -100.0, 0});
  }
  const auto p1 = db.perturbed(0.3, 7);
  const auto p2 = db.perturbed(0.3, 7);
  double max_shift = 0.0;
  for (const auto& [block, rec] : p1.records()) {
    const auto other = p2.lookup(block);
    ASSERT_TRUE(other.has_value());
    EXPECT_DOUBLE_EQ(rec.lat, other->lat);  // deterministic
    max_shift = std::max(max_shift, std::abs(rec.lat - 40.0));
  }
  EXPECT_GT(max_shift, 0.0);   // it did move points
  EXPECT_LT(max_shift, 2.0);   // ... by city-scale amounts
}

TEST(Coverage, SummaryMatchesHandCount) {
  CellCountMap cells;
  cells[GridCell{0, 0}] = CellCounts{100, 20};  // observed + represented
  cells[GridCell{0, 1}] = CellCounts{50, 2};    // observed, under-represented
  cells[GridCell{0, 2}] = CellCounts{3, 1};     // under-observed
  const auto s = summarize_coverage(cells, 5, 5);
  EXPECT_EQ(s.cells_total, 3);
  EXPECT_EQ(s.cells_under_observed, 1);
  EXPECT_EQ(s.cells_observed, 2);
  EXPECT_EQ(s.cells_represented, 1);
  EXPECT_EQ(s.cells_under_represented, 1);
  EXPECT_EQ(s.cs_blocks_observed, 22);
  EXPECT_EQ(s.cs_blocks_represented, 20);
  EXPECT_EQ(s.resp_blocks_observed, 150);
  EXPECT_EQ(s.resp_blocks_represented, 100);
  EXPECT_NEAR(s.represented_cell_fraction(), 0.5, 1e-12);
  EXPECT_NEAR(s.cs_block_fraction(), 20.0 / 22.0, 1e-12);
  EXPECT_NEAR(s.resp_block_fraction(), 100.0 / 150.0, 1e-12);
}

TEST(Coverage, ThresholdSweepMonotone) {
  CellCountMap cells;
  for (int i = 0; i < 50; ++i) {
    cells[GridCell{static_cast<std::int16_t>(i), 0}] =
        CellCounts{i * 2, i};
  }
  const auto sweep = sweep_thresholds(cells, 40);
  ASSERT_EQ(sweep.size(), 41u);
  EXPECT_DOUBLE_EQ(sweep[0].observed_cell_fraction, 1.0);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].observed_cell_fraction,
              sweep[i - 1].observed_cell_fraction);
    EXPECT_LE(sweep[i].represented_cell_fraction,
              sweep[i - 1].represented_cell_fraction);
    EXPECT_LE(sweep[i].represented_cell_fraction,
              sweep[i].observed_cell_fraction);
  }
}

TEST(Coverage, EmptyMap) {
  const auto s = summarize_coverage({}, 5, 5);
  EXPECT_EQ(s.cells_total, 0);
  EXPECT_EQ(s.represented_cell_fraction(), 0.0);
}

}  // namespace
}  // namespace diurnal::geo
