// Property tests for the batched (SoA) analysis kernels: every batch
// kernel must be BIT-identical to its scalar counterpart on every lane,
// at every width 1..kMaxBatchLanes (ragged tails), on NaN-gap lanes, on
// both ISA clones, and through both the BatchAnalyzer chain and the
// core batch entry points (BatchDetector, classify_blocks_batch).  The
// golden fleet digest (test_fleet_digest) holds only because these
// identities hold.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "analysis/batch.h"
#include "analysis/batch_analyzer.h"
#include "analysis/block_analyzer.h"
#include "analysis/cusum.h"
#include "analysis/diurnal_test.h"
#include "analysis/fft.h"
#include "analysis/loess.h"
#include "analysis/simd.h"
#include "analysis/stl.h"
#include "analysis/workspace.h"
#include "core/classify.h"
#include "core/detect.h"
#include "util/timeseries.h"

namespace diurnal {
namespace {

using analysis::kMaxBatchLanes;

std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Bitwise equality: NaN == NaN (same payload), +0 != -0.  The batched
// kernels promise bit identity, not approximate agreement.
void expect_same_bits(std::span<const double> a, std::span<const double> b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits_of(a[i]), bits_of(b[i])) << what << " diverges at " << i;
  }
}

// A plausible active-count series: diurnal sine + weekly modulation +
// integer-ish noise, hourly samples.
std::vector<double> make_series(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> noise(-1.5, 1.5);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double day =
        10.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 24.0);
    const double week =
        3.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 168.0);
    v[i] = std::max(0.0, std::floor(day + week + noise(rng)));
  }
  return v;
}

std::vector<double> with_nan_gap(std::vector<double> v, std::size_t from,
                                 std::size_t len) {
  for (std::size_t i = from; i < std::min(v.size(), from + len); ++i) {
    v[i] = std::numeric_limits<double>::quiet_NaN();
  }
  return v;
}

// Per-lane robustness weights in [0, 1] with a sprinkle of exact zeros
// to exercise the `w <= 0` skip blend.
std::vector<double> make_rho(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<double> rho(n);
  for (auto& r : rho) {
    const double x = u(rng);
    r = x < 0.1 ? 0.0 : x;
  }
  return rho;
}

std::vector<std::vector<double>> make_lanes(std::size_t w, std::size_t n,
                                            std::uint64_t seed) {
  std::vector<std::vector<double>> lanes;
  for (std::size_t j = 0; j < w; ++j) lanes.push_back(make_series(n, seed + j));
  return lanes;
}

std::vector<double> gather(const std::vector<std::vector<double>>& lanes,
                           std::size_t n) {
  std::vector<std::span<const double>> views(lanes.begin(), lanes.end());
  std::vector<double> soa(n * lanes.size());
  analysis::soa_gather(views, n, soa.data());
  return soa;
}

std::vector<double> lane_of(const std::vector<double>& soa, std::size_t w,
                            std::size_t n, std::size_t j) {
  std::vector<double> out(n);
  analysis::soa_scatter_lane(soa.data(), w, n, j, out.data());
  return out;
}

// The ragged-tail frontier: scalar, a few odd widths, a power of two,
// and the full SIMD width.
constexpr std::size_t kWidths[] = {1, 2, 3, 4, 7, 8, kMaxBatchLanes};

constexpr std::int64_t kHour = util::kSecondsPerHour;

// ---------------------------------------------------------------------------
// Kernel-level bit identity across widths
// ---------------------------------------------------------------------------

TEST(BatchKernels, LoessSmoothBitwiseAcrossWidths) {
  const std::size_t n = 120;
  analysis::LoessOptions opt;
  opt.span = 25;
  for (const std::size_t w : kWidths) {
    const auto lanes = make_lanes(w, n, 10 + w);
    const auto y_soa = gather(lanes, n);
    std::vector<double> out_soa(n * w);
    analysis::loess_smooth_batch(y_soa.data(), w, n, opt, nullptr,
                                 out_soa.data());
    for (std::size_t j = 0; j < w; ++j) {
      const auto want = analysis::loess_smooth(lanes[j], opt);
      expect_same_bits(lane_of(out_soa, w, n, j), want, "loess_smooth");
    }
  }
}

TEST(BatchKernels, RobustLoessSmoothBitwiseAcrossWidths) {
  const std::size_t n = 96;
  analysis::LoessOptions opt;
  opt.span = 21;
  for (const std::size_t w : kWidths) {
    const auto lanes = make_lanes(w, n, 40 + w);
    std::vector<std::vector<double>> rhos;
    for (std::size_t j = 0; j < w; ++j) rhos.push_back(make_rho(n, 70 + j));
    const auto y_soa = gather(lanes, n);
    const auto rho_soa = gather(rhos, n);
    std::vector<double> out_soa(n * w);
    analysis::loess_smooth_batch(y_soa.data(), w, n, opt, rho_soa.data(),
                                 out_soa.data());
    for (std::size_t j = 0; j < w; ++j) {
      const auto want = analysis::loess_smooth(lanes[j], opt, rhos[j]);
      expect_same_bits(lane_of(out_soa, w, n, j), want, "robust loess");
    }
  }
}

TEST(BatchKernels, LoessSmoothExtendedBitwise) {
  const std::size_t n = 60;
  analysis::LoessOptions opt;
  opt.span = 11;
  for (const std::size_t w : {std::size_t{1}, std::size_t{3}, kMaxBatchLanes}) {
    const auto lanes = make_lanes(w, n, 100 + w);
    std::vector<std::vector<double>> rhos;
    for (std::size_t j = 0; j < w; ++j) rhos.push_back(make_rho(n, 130 + j));
    const auto y_soa = gather(lanes, n);
    const auto rho_soa = gather(rhos, n);
    std::vector<double> plain((n + 2) * w);
    std::vector<double> robust((n + 2) * w);
    analysis::loess_smooth_extended_batch(y_soa.data(), w, n, opt, nullptr,
                                          plain.data());
    analysis::loess_smooth_extended_batch(y_soa.data(), w, n, opt,
                                          rho_soa.data(), robust.data());
    for (std::size_t j = 0; j < w; ++j) {
      expect_same_bits(lane_of(plain, w, n + 2, j),
                       analysis::loess_smooth_extended(lanes[j], opt),
                       "extended loess");
      expect_same_bits(lane_of(robust, w, n + 2, j),
                       analysis::loess_smooth_extended(lanes[j], opt, rhos[j]),
                       "robust extended loess");
    }
  }
}

TEST(BatchKernels, ZscoreBitwiseWithConstantAndNanLanes) {
  const std::size_t n = 200;
  for (const std::size_t w : kWidths) {
    auto lanes = make_lanes(w, n, 200 + w);
    // Lane 0 constant (the sd guard must map it to exact zeros); the
    // last lane gets a NaN gap.
    for (auto& v : lanes[0]) v = 42.0;
    lanes[w - 1] = with_nan_gap(lanes[w - 1], 50, 12);
    const auto x_soa = gather(lanes, n);
    std::vector<double> z_soa(n * w);
    analysis::zscore_batch(x_soa.data(), w, n, z_soa.data());
    analysis::BlockAnalyzer az;
    for (std::size_t j = 0; j < w; ++j) {
      expect_same_bits(lane_of(z_soa, w, n, j), az.zscore(lanes[j]), "zscore");
    }
  }
}

TEST(BatchKernels, GoertzelBitwiseAcrossWidths) {
  const std::size_t n = 168;
  const double cycles = 7.0;  // the 24h bin of a week of hourly samples
  for (const std::size_t w : kWidths) {
    const auto lanes = make_lanes(w, n, 300 + w);
    const auto x_soa = gather(lanes, n);
    std::vector<double> power(w);
    analysis::goertzel_power_batch(x_soa.data(), w, n, cycles, power.data());
    for (std::size_t j = 0; j < w; ++j) {
      ASSERT_EQ(bits_of(power[j]),
                bits_of(analysis::goertzel_power(lanes[j], cycles)))
          << "goertzel lane " << j;
    }
  }
}

TEST(BatchKernels, MovingAverageBatchIsWidthInvariant) {
  // The scalar moving average lives inside stl.cc, so pin the batch
  // kernel against itself: lane j of a wide batch must equal a
  // one-lane batch of the same series, for every width.
  const std::size_t n = 90;
  const int m = 24;
  for (const std::size_t w : kWidths) {
    const auto lanes = make_lanes(w, n, 400 + w);
    const auto in_soa = gather(lanes, n);
    const std::size_t out_len = n - static_cast<std::size_t>(m) + 1;
    std::vector<double> out_soa(out_len * w);
    analysis::moving_average_batch(in_soa.data(), w, n, m, out_soa.data());
    for (std::size_t j = 0; j < w; ++j) {
      std::vector<double> solo(out_len);
      analysis::moving_average_batch(lanes[j].data(), 1, n, m, solo.data());
      expect_same_bits(lane_of(out_soa, w, out_len, j), solo, "moving avg");
    }
  }
}

TEST(BatchKernels, StlBitwiseAcrossWidthsRobustAndNot) {
  const std::size_t n = 240;
  for (const int outer : {0, 1}) {
    analysis::StlOptions opt;
    opt.period = 24;
    opt.outer_iterations = outer;
    for (const std::size_t w : kWidths) {
      const auto lanes = make_lanes(w, n, 500 + w);
      const auto y_soa = gather(lanes, n);
      std::vector<double> t_soa(n * w), s_soa(n * w), r_soa(n * w);
      analysis::Workspace bws;
      analysis::stl_decompose_batch(y_soa.data(), w, n, opt, bws, t_soa.data(),
                                    s_soa.data(), r_soa.data());
      analysis::Workspace sws;
      std::vector<double> t(n), s(n), r(n);
      for (std::size_t j = 0; j < w; ++j) {
        analysis::stl_decompose(lanes[j], opt, sws, t, s, r);
        expect_same_bits(lane_of(t_soa, w, n, j), t, "stl trend");
        expect_same_bits(lane_of(s_soa, w, n, j), s, "stl seasonal");
        expect_same_bits(lane_of(r_soa, w, n, j), r, "stl residual");
      }
    }
  }
}

TEST(BatchKernels, StlBitwiseWithNanLanes) {
  // A NaN-gap lane poisons its own medians (the robustness step must
  // fall back to the scalar path's exact sort) but must not perturb
  // any clean lane sharing the batch.
  const std::size_t n = 240;
  analysis::StlOptions opt;
  opt.period = 24;
  opt.outer_iterations = 1;
  const std::size_t w = 5;
  auto lanes = make_lanes(w, n, 600);
  lanes[1] = with_nan_gap(lanes[1], 30, 20);
  lanes[3] = with_nan_gap(lanes[3], 200, 40);
  const auto y_soa = gather(lanes, n);
  std::vector<double> t_soa(n * w), s_soa(n * w), r_soa(n * w);
  analysis::Workspace bws;
  analysis::stl_decompose_batch(y_soa.data(), w, n, opt, bws, t_soa.data(),
                                s_soa.data(), r_soa.data());
  analysis::Workspace sws;
  std::vector<double> t(n), s(n), r(n);
  for (std::size_t j = 0; j < w; ++j) {
    analysis::stl_decompose(lanes[j], opt, sws, t, s, r);
    expect_same_bits(lane_of(t_soa, w, n, j), t, "nan stl trend");
    expect_same_bits(lane_of(s_soa, w, n, j), s, "nan stl seasonal");
    expect_same_bits(lane_of(r_soa, w, n, j), r, "nan stl residual");
  }
}

void expect_same_diurnal(const analysis::DiurnalResult& got,
                         const analysis::DiurnalResult& want, std::size_t j) {
  EXPECT_EQ(got.diurnal, want.diurnal) << "lane " << j;
  EXPECT_EQ(bits_of(got.power_ratio), bits_of(want.power_ratio)) << "lane " << j;
  EXPECT_EQ(bits_of(got.total_power), bits_of(want.total_power)) << "lane " << j;
  EXPECT_EQ(bits_of(got.diurnal_power), bits_of(want.diurnal_power))
      << "lane " << j;
  EXPECT_EQ(got.segments, want.segments) << "lane " << j;
  EXPECT_EQ(got.segments_diurnal, want.segments_diurnal) << "lane " << j;
}

TEST(BatchKernels, DiurnalBitwiseAcrossWidthsWithNanLane) {
  const std::size_t n = 336;
  const double spd = 24.0;
  const analysis::DiurnalOptions opt;
  for (const std::size_t w : kWidths) {
    auto lanes = make_lanes(w, n, 700 + w);
    lanes[w - 1] = with_nan_gap(lanes[w - 1], 100, 30);
    const auto x_soa = gather(lanes, n);
    std::vector<analysis::DiurnalResult> got(w);
    analysis::Workspace bws;
    analysis::test_diurnal_batch(x_soa.data(), w, n, spd, opt, bws, got.data());
    analysis::Workspace sws;
    for (std::size_t j = 0; j < w; ++j) {
      expect_same_diurnal(got[j], analysis::test_diurnal(lanes[j], spd, opt, sws),
                          j);
    }
  }
}

// ---------------------------------------------------------------------------
// ISA clones: forced-generic must be bitwise-equal to the active level,
// and the dispatch counters must prove which clone ran.
// ---------------------------------------------------------------------------

struct ForcedLevelGuard {
  ~ForcedLevelGuard() { analysis::simd::clear_forced_level(); }
};

TEST(BatchKernels, GenericCloneBitwiseEqualAndDispatchCounted) {
  namespace simd = analysis::simd;
  const std::size_t n = 240, w = kMaxBatchLanes;
  analysis::StlOptions opt;
  opt.period = 24;
  opt.outer_iterations = 1;
  const auto lanes = make_lanes(w, n, 800);
  const auto y_soa = gather(lanes, n);

  ForcedLevelGuard guard;
  std::vector<double> t1(n * w), s1(n * w), r1(n * w);
  {
    simd::reset_dispatch_counts();
    analysis::Workspace ws;
    analysis::stl_decompose_batch(y_soa.data(), w, n, opt, ws, t1.data(),
                                  s1.data(), r1.data());
    const auto c = simd::dispatch_counts();
    ASSERT_GT(c.total(), 0u);
    if (simd::active_level() == simd::IsaLevel::kAvx2) {
      EXPECT_GT(c.avx2, 0u);
      EXPECT_EQ(c.generic, 0u);
    } else {
      EXPECT_GT(c.generic, 0u);
      EXPECT_EQ(c.avx2, 0u);
    }
  }

  simd::force_level(simd::IsaLevel::kGeneric);
  ASSERT_EQ(simd::active_level(), simd::IsaLevel::kGeneric);
  std::vector<double> t2(n * w), s2(n * w), r2(n * w);
  {
    simd::reset_dispatch_counts();
    analysis::Workspace ws;
    analysis::stl_decompose_batch(y_soa.data(), w, n, opt, ws, t2.data(),
                                  s2.data(), r2.data());
    const auto c = simd::dispatch_counts();
    EXPECT_GT(c.generic, 0u);
    EXPECT_EQ(c.avx2, 0u);
  }

  expect_same_bits(t1, t2, "isa trend");
  expect_same_bits(s1, s2, "isa seasonal");
  expect_same_bits(r1, r2, "isa residual");
}

// ---------------------------------------------------------------------------
// BatchAnalyzer chain vs the scalar BlockAnalyzer chain
// ---------------------------------------------------------------------------

TEST(BatchAnalyzerChain, DetectionChainBitwiseMatchesBlockAnalyzer) {
  const std::size_t n = 240;
  analysis::StlOptions stl;
  stl.period = 24;
  stl.outer_iterations = 1;
  const analysis::CusumOptions cusum{1.0, 0.001};
  for (const std::size_t w : {std::size_t{1}, std::size_t{5}, kMaxBatchLanes}) {
    const auto lanes = make_lanes(w, n, 900 + w);
    std::vector<std::span<const double>> views(lanes.begin(), lanes.end());
    analysis::BatchAnalyzer baz;
    baz.run_detection_chain(views, stl, cusum);
    ASSERT_EQ(baz.lanes(), w);
    ASSERT_EQ(baz.samples(), n);

    analysis::BlockAnalyzer az;
    for (std::size_t j = 0; j < w; ++j) {
      const auto dec = az.decompose_stl(lanes[j], stl);
      expect_same_bits(baz.trend(j), dec.trend, "chain trend");
      const auto z = az.zscore(dec.trend);
      expect_same_bits(baz.z(j), z, "chain z");
      const auto cv = az.cusum(z, cusum);
      const auto got = baz.changes(j);
      ASSERT_EQ(got.size(), cv.changes.size()) << "lane " << j;
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].start, cv.changes[k].start);
        EXPECT_EQ(got[k].alarm, cv.changes[k].alarm);
        EXPECT_EQ(got[k].end, cv.changes[k].end);
        EXPECT_EQ(got[k].direction, cv.changes[k].direction);
        EXPECT_EQ(bits_of(got[k].amplitude), bits_of(cv.changes[k].amplitude));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// core::BatchDetector and core::classify_blocks_batch vs scalar paths
// ---------------------------------------------------------------------------

void expect_same_changes(const std::vector<core::DetectedChange>& got,
                         const std::vector<core::DetectedChange>& want,
                         std::size_t job) {
  ASSERT_EQ(got.size(), want.size()) << "job " << job;
  for (std::size_t k = 0; k < got.size(); ++k) {
    EXPECT_EQ(got[k].start, want[k].start) << "job " << job;
    EXPECT_EQ(got[k].alarm, want[k].alarm) << "job " << job;
    EXPECT_EQ(got[k].end, want[k].end) << "job " << job;
    EXPECT_EQ(got[k].direction, want[k].direction) << "job " << job;
    EXPECT_EQ(bits_of(got[k].amplitude), bits_of(want[k].amplitude))
        << "job " << job;
    EXPECT_EQ(bits_of(got[k].amplitude_addresses),
              bits_of(want[k].amplitude_addresses))
        << "job " << job;
    EXPECT_EQ(got[k].filtered_as_outage, want[k].filtered_as_outage)
        << "job " << job;
    EXPECT_EQ(got[k].filtered_small, want[k].filtered_small) << "job " << job;
  }
}

TEST(BatchDetectorTest, BitwiseMatchesScalarDetectOnRaggedJobs) {
  // Mixed shapes force ragged batching inside flush(): three length
  // groups, a too-short job (scalar early-out: no changes), and a
  // NaN-gap job.  max_lanes 4 forces several auto-flushes too.
  const core::DetectorOptions opt;
  struct Case {
    std::vector<double> counts;
    util::SimTime start;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 5; ++i) cases.push_back({make_series(336, 20 + i), 0});
  for (int i = 0; i < 3; ++i)
    cases.push_back({make_series(504, 40 + i), 7 * kHour});
  cases.push_back({make_series(400, 60), 0});
  cases.push_back({with_nan_gap(make_series(336, 61), 80, 24), 0});
  cases.push_back({make_series(100, 62), 0});  // < 2 periods: early-out

  // Inject a step change into a few jobs so the comparison is not
  // vacuously empty-vs-empty.
  for (std::size_t c : {std::size_t{0}, std::size_t{5}, std::size_t{8}}) {
    for (std::size_t i = cases[c].counts.size() / 2;
         i < cases[c].counts.size(); ++i) {
      cases[c].counts[i] += 6.0;
    }
  }

  core::BatchDetector det(opt, 4);
  std::vector<std::vector<core::DetectedChange>> got(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    det.enqueue(cases[c].counts, cases[c].start, kHour, &got[c]);
  }
  det.flush();
  EXPECT_EQ(det.pending(), 0u);

  analysis::BlockAnalyzer az;
  std::vector<core::DetectedChange> want;
  bool any_changes = false;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    core::detect_changes(cases[c].counts, cases[c].start, kHour, opt, az, want);
    expect_same_changes(got[c], want, c);
    any_changes = any_changes || !want.empty();
  }
  EXPECT_TRUE(any_changes) << "no job produced changes; test is vacuous";
  EXPECT_TRUE(got[cases.size() - 1].empty());  // the short job
}

TEST(BatchClassifyTest, BitwiseMatchesClassifyBlock) {
  const core::ClassifierOptions opt;
  struct Case {
    std::vector<double> counts;
    bool responsive;
    double evidence;
  };
  std::vector<Case> cases;
  for (int i = 0; i < 6; ++i) cases.push_back({make_series(336, 80 + i), true, 1.0});
  cases.push_back({make_series(336, 90), false, 1.0});  // skips the chain
  cases.push_back({make_series(336, 91), true, 0.3});   // low confidence
  cases.push_back({with_nan_gap(make_series(336, 92), 60, 30), true, 1.0});
  // A flat series: responsive but not diurnal.
  cases.push_back({std::vector<double>(336, 9.0), true, 1.0});

  std::vector<core::BlockClassification> got(cases.size());
  std::vector<core::BatchClassifyJob> jobs;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    jobs.push_back({cases[c].counts, 0, kHour, cases[c].responsive,
                    cases[c].evidence, &got[c]});
  }
  analysis::BatchAnalyzer baz;
  analysis::BlockAnalyzer az;
  core::classify_blocks_batch(jobs, opt, baz, az);

  analysis::BlockAnalyzer saz;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const auto want =
        core::classify_block(cases[c].counts, 0, kHour, cases[c].responsive,
                             cases[c].evidence, opt, saz);
    EXPECT_EQ(got[c].responsive, want.responsive) << "job " << c;
    EXPECT_EQ(got[c].diurnal, want.diurnal) << "job " << c;
    EXPECT_EQ(got[c].wide_swing, want.wide_swing) << "job " << c;
    EXPECT_EQ(got[c].change_sensitive, want.change_sensitive) << "job " << c;
    EXPECT_EQ(got[c].low_confidence, want.low_confidence) << "job " << c;
    EXPECT_EQ(bits_of(got[c].evidence_fraction),
              bits_of(want.evidence_fraction))
        << "job " << c;
    expect_same_diurnal(got[c].diurnal_detail, want.diurnal_detail, c);
  }
}

}  // namespace
}  // namespace diurnal
