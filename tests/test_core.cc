// Tests for the core pipeline pieces: classifier, detector, datasets,
// aggregation, and validation metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate.h"
#include "core/classify.h"
#include "core/datasets.h"
#include "core/detect.h"
#include "core/metrics.h"
#include "core/pipeline.h"
#include "sim/world.h"
#include "util/rng.h"

namespace diurnal::core {
namespace {

using util::SimTime;
using util::time_of;

// Builds a ReconResult around a synthetic hourly count series.
recon::ReconResult recon_of(std::vector<double> counts, SimTime start = 0) {
  recon::ReconResult r;
  r.counts = util::TimeSeries(start, util::kSecondsPerHour, std::move(counts));
  r.responsive = r.counts.max() > 0;
  r.eb_count = 64;
  r.max_active = r.counts.max();
  return r;
}

// Hourly office-like series: `level` actives 9-17h on workdays.
std::vector<double> office_series(int days, double level,
                                  double after_level = -1.0,
                                  int change_day = -1) {
  std::vector<double> v;
  for (int d = 0; d < days; ++d) {
    const int wd = (d + 2) % 7;  // epoch is a Tuesday
    const bool work = wd >= 1 && wd <= 5;
    const double lvl = (change_day >= 0 && d >= change_day)
                           ? after_level
                           : level;
    for (int h = 0; h < 24; ++h) {
      v.push_back(work && h >= 9 && h < 17 ? lvl : 1.0);
    }
  }
  return v;
}

TEST(Classify, OfficeBlockIsChangeSensitive) {
  const auto cls = classify_block(recon_of(office_series(28, 15.0)));
  EXPECT_TRUE(cls.responsive);
  EXPECT_TRUE(cls.diurnal);
  EXPECT_TRUE(cls.wide_swing);
  EXPECT_TRUE(cls.change_sensitive);
}

TEST(Classify, FlatServerIsNotChangeSensitive) {
  const auto cls = classify_block(recon_of(std::vector<double>(28 * 24, 40.0)));
  EXPECT_TRUE(cls.responsive);
  EXPECT_FALSE(cls.diurnal);
  EXPECT_FALSE(cls.wide_swing);
  EXPECT_FALSE(cls.change_sensitive);
}

TEST(Classify, DiurnalButNarrowIsNotChangeSensitive) {
  const auto cls = classify_block(recon_of(office_series(28, 3.0)));
  EXPECT_TRUE(cls.diurnal);
  EXPECT_FALSE(cls.wide_swing);
  EXPECT_FALSE(cls.change_sensitive);
}

TEST(Classify, NoisyWideButNotDiurnal) {
  util::Xoshiro256 rng(3);
  std::vector<double> v(28 * 24);
  for (auto& x : v) x = std::max(0.0, rng.normal(20, 6));
  const auto cls = classify_block(recon_of(std::move(v)));
  EXPECT_FALSE(cls.diurnal);
  EXPECT_TRUE(cls.wide_swing);
  EXPECT_FALSE(cls.change_sensitive);
}

TEST(Classify, UnresponsiveShortCircuits) {
  recon::ReconResult r;
  r.counts = util::TimeSeries(0, 3600, std::vector<double>(28 * 24, 0.0));
  r.responsive = false;
  const auto cls = classify_block(r);
  EXPECT_FALSE(cls.responsive);
  EXPECT_FALSE(cls.change_sensitive);
}

TEST(Funnel, CountsAreConsistent) {
  FunnelCounts f;
  BlockClassification unresponsive;
  BlockClassification flat;
  flat.responsive = true;
  BlockClassification cs;
  cs.responsive = cs.diurnal = cs.wide_swing = cs.change_sensitive = true;
  f.add(unresponsive);
  f.add(flat);
  f.add(cs);
  f.add(cs);
  EXPECT_EQ(f.routed, 4);
  EXPECT_EQ(f.not_responsive, 1);
  EXPECT_EQ(f.responsive, 3);
  EXPECT_EQ(f.diurnal + f.not_diurnal, f.responsive);
  EXPECT_EQ(f.narrow_swing + f.wide_swing, f.responsive);
  EXPECT_EQ(f.change_sensitive + f.not_change_sensitive, f.responsive);
  EXPECT_EQ(f.change_sensitive, 2);
}

TEST(Detect, FindsWfhStyleDrop) {
  // Six weeks of strong office diurnality, then the swing disappears.
  const auto counts = office_series(70, 15.0, 2.0, 42);
  const auto det =
      detect_changes(util::TimeSeries(0, util::kSecondsPerHour, counts));
  ASSERT_FALSE(det.changes.empty());
  bool found = false;
  for (const auto& c : det.changes) {
    if (c.direction == analysis::ChangeDirection::kDown &&
        std::llabs(util::day_index(c.alarm) - 42) <= 4 &&
        !c.filtered_as_outage) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Detect, SilentOnStablePattern) {
  const auto counts = office_series(70, 15.0);
  const auto det =
      detect_changes(util::TimeSeries(0, util::kSecondsPerHour, counts));
  int unfiltered_down = 0;
  for (const auto& c : det.changes) {
    if (!c.filtered_as_outage &&
        c.direction == analysis::ChangeDirection::kDown) {
      ++unfiltered_down;
    }
  }
  EXPECT_EQ(unfiltered_down, 0);
}

TEST(Detect, OutagePairIsFiltered) {
  // Stable office pattern with a 2-day total outage: the down+up pair
  // must be filtered, leaving no activity changes.
  auto counts = office_series(70, 15.0);
  for (int h = 35 * 24; h < 37 * 24; ++h) counts[static_cast<std::size_t>(h)] = 0.0;
  const auto det =
      detect_changes(util::TimeSeries(0, util::kSecondsPerHour, counts));
  // The outage is seen...
  EXPECT_GE(det.changes.size(), 2u);
  // ...but attributed to an outage, not to human activity.
  for (const auto& c : det.activity_changes()) {
    EXPECT_GT(std::llabs(util::day_index(c.alarm) - 36), 2)
        << "outage-day change survived filtering";
  }
}

TEST(Detect, PermanentDropIsNotFiltered) {
  const auto counts = office_series(70, 15.0, 2.0, 42);
  const auto det =
      detect_changes(util::TimeSeries(0, util::kSecondsPerHour, counts));
  EXPECT_FALSE(det.activity_changes().empty());
}

TEST(Detect, ShortSeriesYieldsEmptyResult) {
  const auto det = detect_changes(
      util::TimeSeries(0, util::kSecondsPerHour, std::vector<double>(100, 1.0)));
  EXPECT_TRUE(det.changes.empty());
  EXPECT_TRUE(det.trend.empty());
}

// Hourly office-like series whose workday start shifts by one hour at
// `shift_day` — a pure clock change (DST): same volume, moved phase.
std::vector<double> phase_shift_series(int days, double level,
                                       int shift_day) {
  std::vector<double> v;
  for (int d = 0; d < days; ++d) {
    const int wd = (d + 2) % 7;  // epoch is a Tuesday
    const bool work = wd >= 1 && wd <= 5;
    const int h0 = d >= shift_day ? 10 : 9;
    for (int h = 0; h < 24; ++h) {
      v.push_back(work && h >= h0 && h < h0 + 8 ? level : 1.0);
    }
  }
  return v;
}

TEST(Detect, PhaseShiftFilterAnnotatesUncorroboratedChanges) {
  // A mid-series one-hour phase shift perturbs the globally fitted STL
  // trend without moving any volume.  The corroboration filter must
  // annotate every change it produces as phase-only, and it must only
  // annotate: the change list itself is identical to the unfiltered
  // detector's.
  const auto counts = phase_shift_series(70, 15.0, 42);
  const util::TimeSeries series(0, util::kSecondsPerHour, counts);
  DetectorOptions on;
  on.phase_shift_filter = true;
  const auto base = detect_changes(series);
  const auto filtered = detect_changes(series, on);
  ASSERT_EQ(base.changes.size(), filtered.changes.size());
  for (std::size_t i = 0; i < base.changes.size(); ++i) {
    EXPECT_EQ(base.changes[i].start, filtered.changes[i].start);
    EXPECT_EQ(base.changes[i].direction, filtered.changes[i].direction);
  }
  EXPECT_TRUE(filtered.activity_changes().empty());
}

TEST(Detect, PhaseShiftFilterKeepsCorroboratedDrop) {
  // A genuine WFH-style drop moves raw volume along with the trend, so
  // the corroboration filter must leave it counted.
  const auto counts = office_series(70, 15.0, 2.0, 42);
  DetectorOptions on;
  on.phase_shift_filter = true;
  const auto det =
      detect_changes(util::TimeSeries(0, util::kSecondsPerHour, counts), on);
  EXPECT_FALSE(det.activity_changes().empty());
  for (const auto& c : det.activity_changes()) {
    EXPECT_FALSE(c.filtered_phase_only);
  }
}

TEST(Detect, ComponentsExposedForPlotting) {
  const auto counts = office_series(28, 12.0);
  const auto det =
      detect_changes(util::TimeSeries(0, util::kSecondsPerHour, counts));
  EXPECT_EQ(det.trend.size(), counts.size());
  EXPECT_EQ(det.seasonal.size(), counts.size());
  EXPECT_EQ(det.normalized_trend.size(), counts.size());
  EXPECT_EQ(det.cusum_pos.size(), counts.size());
  EXPECT_NEAR(det.normalized_trend.mean(), 0.0, 1e-9);
}

TEST(Datasets, Table6Registry) {
  const auto& all = table6_datasets();
  EXPECT_GE(all.size(), 15u);
  bool found_it89 = false;
  for (const auto& d : all) {
    if (d.abbr == "2020it89-w") {
      found_it89 = true;
      EXPECT_TRUE(d.survey);
      EXPECT_EQ(d.duration_weeks, 2);
    }
  }
  EXPECT_TRUE(found_it89);
}

TEST(Datasets, ParseAbbreviations) {
  const auto q1 = dataset("2020q1-w");
  EXPECT_EQ(util::to_string(q1.start), "2020-01-01");
  EXPECT_EQ(q1.duration_weeks, 12);
  EXPECT_EQ(q1.sites, "w");
  EXPECT_EQ(q1.full_name, "internet_outage_adaptive_a39w-20200101");

  const auto q4 = dataset("2019q4-w");
  EXPECT_EQ(util::to_string(q4.start), "2019-10-01");
  EXPECT_EQ(q4.full_name, "internet_outage_adaptive_a38w-20191001");

  const auto h1 = dataset("2020h1-ejnw");
  EXPECT_EQ(h1.duration_weeks, 24);
  EXPECT_EQ(h1.observers().size(), 4u);

  const auto m1 = dataset("2020m1-ejnw");
  EXPECT_EQ(m1.duration_weeks, 4);

  const auto survey = dataset("2020it89-w");
  EXPECT_TRUE(survey.survey);
  EXPECT_EQ(util::to_string(survey.start), "2020-02-19");

  // Weekly smoke-test periods: week n starts January 1 + 7(n-1) days.
  const auto w1 = dataset("2020w1-ejnw");
  EXPECT_EQ(util::to_string(w1.start), "2020-01-01");
  EXPECT_EQ(w1.duration_weeks, 1);
  const auto w3 = dataset("2020w3-w");
  EXPECT_EQ(util::to_string(w3.start), "2020-01-15");
  EXPECT_EQ(w3.window().end - w3.window().start,
            7 * util::kSecondsPerDay);

  EXPECT_THROW(dataset("nonsense"), std::invalid_argument);
  EXPECT_THROW(dataset("2020x7-w"), std::invalid_argument);
  EXPECT_THROW(dataset("2020w0-w"), std::invalid_argument);
  EXPECT_THROW(dataset("2020w53-w"), std::invalid_argument);
}

TEST(Datasets, WindowArithmetic) {
  const auto m1 = dataset("2020m1-w");
  const auto w = m1.window();
  EXPECT_EQ(w.start, time_of(2020, 1, 1));
  EXPECT_EQ(w.end, time_of(2020, 1, 29));
}

TEST(Aggregate, DayCountingAndSnapshots) {
  const SimTime start = time_of(2020, 1, 1);
  ChangeAggregator agg(start, time_of(2020, 3, 1));
  const geo::GridCell wuhan = geo::GridCell::of(30.6, 114.3);

  DetectedChange down;
  down.alarm = time_of(2020, 1, 27);
  down.direction = analysis::ChangeDirection::kDown;
  DetectedChange up = down;
  up.direction = analysis::ChangeDirection::kUp;
  DetectedChange outage = down;
  outage.filtered_as_outage = true;

  for (int i = 0; i < 10; ++i) {
    agg.add_block(wuhan, geo::Continent::kAsia,
                  i < 3 ? std::vector<DetectedChange>{down}
                        : std::vector<DetectedChange>{});
  }
  agg.add_block(wuhan, geo::Continent::kAsia, {up});
  agg.add_block(wuhan, geo::Continent::kAsia, {outage});  // must not count

  const auto& cell = agg.by_cell().at(wuhan);
  EXPECT_EQ(cell.change_sensitive_blocks, 12);
  const std::size_t day = agg.day_of(time_of(2020, 1, 27));
  EXPECT_EQ(cell.down[day], 3);
  EXPECT_EQ(cell.up[day], 1);
  EXPECT_NEAR(cell.down_fraction(day), 3.0 / 12.0, 1e-12);
  EXPECT_EQ(agg.continent(geo::Continent::kAsia).down[day], 3);
  EXPECT_EQ(agg.continent(geo::Continent::kEurope).down[day], 0);

  const auto snap = agg.map_snapshot(time_of(2020, 1, 27), 5);
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].down_on_day, 3);
  EXPECT_EQ(snap[0].blocks, 12);
  // min_blocks filters small cells.
  EXPECT_TRUE(agg.map_snapshot(time_of(2020, 1, 27), 13).empty());
}

TEST(Aggregate, ClampsOutOfWindowTimes) {
  ChangeAggregator agg(0, 10 * util::kSecondsPerDay);
  EXPECT_EQ(agg.day_of(-500), 0u);
  EXPECT_EQ(agg.day_of(100 * util::kSecondsPerDay), 9u);
  EXPECT_EQ(agg.days(), 10u);
}

TEST(Metrics, VerdictNames) {
  EXPECT_EQ(to_string(BlockVerdict::kTruePositive), "true-positive");
  EXPECT_EQ(to_string(BlockVerdict::kNoCusum), "no-CUSUM");
}

TEST(Fleet, ThreadCountDoesNotChangeResults) {
  // The chunked work-stealing scheduler must be invisible in the output:
  // a fixed-seed world run single-threaded and with 8 workers has to
  // produce bit-identical FleetResults (block order, classifications,
  // and every detected-change field).
  sim::WorldConfig wc;
  wc.num_blocks = 120;
  wc.seed = 21;
  const sim::World world(wc);

  FleetConfig fc;
  fc.dataset = dataset("2020m1-ejnw");

  fc.threads = 1;
  const FleetResult one = run_fleet(world, fc);
  fc.threads = 8;
  const FleetResult eight = run_fleet(world, fc);

  EXPECT_EQ(one.funnel.routed, eight.funnel.routed);
  EXPECT_EQ(one.funnel.not_responsive, eight.funnel.not_responsive);
  EXPECT_EQ(one.funnel.responsive, eight.funnel.responsive);
  EXPECT_EQ(one.funnel.not_diurnal, eight.funnel.not_diurnal);
  EXPECT_EQ(one.funnel.diurnal, eight.funnel.diurnal);
  EXPECT_EQ(one.funnel.narrow_swing, eight.funnel.narrow_swing);
  EXPECT_EQ(one.funnel.wide_swing, eight.funnel.wide_swing);
  EXPECT_EQ(one.funnel.not_change_sensitive,
            eight.funnel.not_change_sensitive);
  EXPECT_EQ(one.funnel.change_sensitive, eight.funnel.change_sensitive);

  ASSERT_EQ(one.outcomes.size(), eight.outcomes.size());
  // At least some blocks must carry detections, or the comparison below
  // would be vacuous for the interesting fields.
  std::size_t total_changes = 0;
  for (std::size_t i = 0; i < one.outcomes.size(); ++i) {
    const BlockOutcome& a = one.outcomes[i];
    const BlockOutcome& b = eight.outcomes[i];
    ASSERT_EQ(a.id.id(), b.id.id()) << "block " << i;
    EXPECT_EQ(a.cls.responsive, b.cls.responsive) << "block " << i;
    EXPECT_EQ(a.cls.diurnal, b.cls.diurnal) << "block " << i;
    EXPECT_EQ(a.cls.wide_swing, b.cls.wide_swing) << "block " << i;
    EXPECT_EQ(a.cls.change_sensitive, b.cls.change_sensitive)
        << "block " << i;
    ASSERT_EQ(a.changes.size(), b.changes.size()) << "block " << i;
    total_changes += a.changes.size();
    for (std::size_t c = 0; c < a.changes.size(); ++c) {
      const DetectedChange& x = a.changes[c];
      const DetectedChange& y = b.changes[c];
      EXPECT_EQ(x.start, y.start) << "block " << i << " change " << c;
      EXPECT_EQ(x.alarm, y.alarm) << "block " << i << " change " << c;
      EXPECT_EQ(x.end, y.end) << "block " << i << " change " << c;
      EXPECT_EQ(x.direction, y.direction) << "block " << i << " change " << c;
      // Bit-identical, not approximately equal: the per-block pipeline
      // must not depend on which worker ran it.
      EXPECT_EQ(x.amplitude, y.amplitude) << "block " << i << " change " << c;
      EXPECT_EQ(x.amplitude_addresses, y.amplitude_addresses)
          << "block " << i << " change " << c;
      EXPECT_EQ(x.filtered_as_outage, y.filtered_as_outage)
          << "block " << i << " change " << c;
      EXPECT_EQ(x.filtered_small, y.filtered_small)
          << "block " << i << " change " << c;
    }
  }
  EXPECT_GT(total_changes, 0u);
}

}  // namespace
}  // namespace diurnal::core
