// Unit and metamorphic tests for the accuracy-validation harness
// (src/validate/): the ±4-day matcher's edge behavior, scorecard
// arithmetic on empty denominators, catalog determinism, the
// negative-control scenarios end-to-end, and the batch≡streaming and
// thread-count metamorphic gates the paper-facing numbers rest on.
#include <gtest/gtest.h>

#include <vector>

#include "core/detect.h"
#include "util/date.h"
#include "validate/baseline.h"
#include "validate/harness.h"
#include "validate/matcher.h"
#include "validate/scenario.h"
#include "validate/scorecard.h"

namespace diurnal {
namespace {

using analysis::ChangeDirection;
using validate::MatchOptions;
using validate::TruthClass;
using validate::TruthInstance;

constexpr std::int64_t kDay = util::kSecondsPerDay;

core::DetectedChange change(util::SimTime alarm, ChangeDirection dir,
                            double addresses = 10.0) {
  core::DetectedChange c;
  c.start = alarm - 6 * 3600;
  c.alarm = alarm;
  c.direction = dir;
  c.amplitude = 1.0;
  c.amplitude_addresses = addresses;
  return c;
}

// ---------------------------------------------------------------------------
// match_block: the paper's ±4-day rule, inclusive, one-to-one.
// ---------------------------------------------------------------------------

TEST(Matcher, WindowEdgeIsInclusive) {
  const std::vector<TruthInstance> truth = {
      {100 * kDay, ChangeDirection::kDown, TruthClass::kWfhOnset}};
  const MatchOptions opt;

  // Exactly +4 days matches...
  std::vector<core::DetectedChange> at_edge = {
      change(100 * kDay + opt.match_window, ChangeDirection::kDown)};
  auto r = validate::match_block(truth, at_edge, opt);
  ASSERT_EQ(r.matched.size(), 1u);
  EXPECT_EQ(r.matched[0].offset, opt.match_window);

  // ...one second past does not.
  std::vector<core::DetectedChange> past_edge = {
      change(100 * kDay + opt.match_window + 1, ChangeDirection::kDown)};
  r = validate::match_block(truth, past_edge, opt);
  EXPECT_TRUE(r.matched.empty());
  EXPECT_EQ(r.unmatched_truth.size(), 1u);
  EXPECT_EQ(r.unmatched_changes.size(), 1u);

  // And exactly -4 days matches too.
  std::vector<core::DetectedChange> early = {
      change(100 * kDay - opt.match_window, ChangeDirection::kDown)};
  r = validate::match_block(truth, early, opt);
  ASSERT_EQ(r.matched.size(), 1u);
  EXPECT_EQ(r.matched[0].offset, -opt.match_window);
}

TEST(Matcher, OneDetectionCannotSatisfyTwoTruths) {
  // Two planted instants two days apart, one alarm between them: the
  // alarm is within ±4d of both but must match only the nearer one.
  const std::vector<TruthInstance> truth = {
      {100 * kDay, ChangeDirection::kDown, TruthClass::kWfhOnset},
      {102 * kDay, ChangeDirection::kDown, TruthClass::kWfhOnset}};
  const std::vector<core::DetectedChange> one = {
      change(100 * kDay + 12 * 3600, ChangeDirection::kDown)};
  const auto r = validate::match_block(truth, one, {});
  ASSERT_EQ(r.matched.size(), 1u);
  EXPECT_EQ(r.matched[0].truth, 0u);  // the nearer instant
  EXPECT_EQ(r.unmatched_truth.size(), 1u);
  EXPECT_EQ(r.unmatched_truth[0], 1u);
}

TEST(Matcher, NearestWinsOverFirst) {
  // Two candidates inside the window: the nearer one is chosen even
  // though the farther one was detected first.
  const std::vector<TruthInstance> truth = {
      {100 * kDay, ChangeDirection::kDown, TruthClass::kWfhOnset}};
  const std::vector<core::DetectedChange> two = {
      change(97 * kDay, ChangeDirection::kDown),
      change(101 * kDay, ChangeDirection::kDown)};
  const auto r = validate::match_block(truth, two, {});
  ASSERT_EQ(r.matched.size(), 1u);
  EXPECT_EQ(r.matched[0].change, 1u);
  EXPECT_EQ(r.unmatched_changes.size(), 1u);
}

TEST(Matcher, DirectionMustAgree) {
  const std::vector<TruthInstance> truth = {
      {100 * kDay, ChangeDirection::kDown, TruthClass::kWfhOnset}};
  const std::vector<core::DetectedChange> up = {
      change(100 * kDay, ChangeDirection::kUp)};
  const auto r = validate::match_block(truth, up, {});
  EXPECT_TRUE(r.matched.empty());
  EXPECT_EQ(r.unmatched_truth.size(), 1u);
  EXPECT_EQ(r.unmatched_changes.size(), 1u);
}

TEST(Matcher, FilteredAndLowEvidenceChangesAreTalliedNotMatched) {
  const std::vector<TruthInstance> truth = {
      {100 * kDay, ChangeDirection::kDown, TruthClass::kWfhOnset}};
  auto discarded = change(100 * kDay, ChangeDirection::kDown);
  discarded.filtered_as_outage = true;
  auto weak = change(100 * kDay, ChangeDirection::kDown);
  weak.low_evidence = true;
  const std::vector<core::DetectedChange> changes = {discarded, weak};
  const auto r = validate::match_block(truth, changes, {});
  EXPECT_TRUE(r.matched.empty());
  EXPECT_EQ(r.outage_discards, 1);
  EXPECT_EQ(r.low_evidence_excluded, 1);
  EXPECT_EQ(r.unmatched_truth.size(), 1u);
  EXPECT_TRUE(r.unmatched_changes.empty());
}

TEST(Matcher, WarmupCutoffExcludesEarlyAlarms) {
  // An alarm before the cold-start cutoff is set aside, not a false
  // positive; at the cutoff it is a normal candidate again.
  const std::vector<TruthInstance> truth;
  const util::SimTime cutoff = 10 * kDay;
  const std::vector<core::DetectedChange> changes = {
      change(cutoff - 1, ChangeDirection::kDown),
      change(cutoff, ChangeDirection::kDown)};
  const auto r = validate::match_block(truth, changes, {}, cutoff);
  EXPECT_EQ(r.warmup_excluded, 1);
  EXPECT_EQ(r.unmatched_changes.size(), 1u);
  EXPECT_EQ(r.unmatched_changes[0], 1u);
}

// ---------------------------------------------------------------------------
// Scorecard arithmetic: zero denominators are nullopt, never NaN.
// ---------------------------------------------------------------------------

TEST(Scorecard, EmptyCardHasUndefinedRates) {
  const validate::Scorecard card;
  EXPECT_FALSE(card.precision().has_value());
  EXPECT_FALSE(card.recall().has_value());
  EXPECT_FALSE(card.f1().has_value());
  EXPECT_FALSE(card.mean_abs_latency_days().has_value());
  EXPECT_FALSE(card.of(TruthClass::kWfhOnset).recall().has_value());
}

TEST(Scorecard, PerfectCardScoresOne) {
  validate::Scorecard card;
  auto& tally = card.of(TruthClass::kWfhOnset);
  tally.truth = 4;
  tally.matched = 4;
  tally.abs_latency_sum = 4 * kDay;
  ASSERT_TRUE(card.precision().has_value());
  EXPECT_DOUBLE_EQ(*card.precision(), 1.0);
  EXPECT_DOUBLE_EQ(*card.recall(), 1.0);
  EXPECT_DOUBLE_EQ(*card.f1(), 1.0);
  EXPECT_DOUBLE_EQ(*card.mean_abs_latency_days(), 1.0);
}

TEST(Scorecard, FalsePositivesOnlyGivesZeroPrecisionUndefinedRecall) {
  validate::Scorecard card;
  card.false_positive = 3;
  ASSERT_TRUE(card.precision().has_value());
  EXPECT_DOUBLE_EQ(*card.precision(), 0.0);
  EXPECT_FALSE(card.recall().has_value());
  EXPECT_FALSE(card.f1().has_value());
}

// ---------------------------------------------------------------------------
// Baseline serialization round-trips the whole card.
// ---------------------------------------------------------------------------

TEST(Baseline, JsonRoundTripIsExact) {
  validate::Baseline b;
  validate::Scorecard card;
  auto& tally = card.of(TruthClass::kHolidayDip);
  tally.truth = 7;
  tally.matched = 5;
  tally.missed = 2;
  tally.abs_latency_sum = 3 * kDay / 2;
  card.blocks_scored = 12;
  card.false_positive = 2;
  card.fp_outage_artifact = 1;
  card.outage_pairs_planted = 9;
  card.outage_discards = 4;
  card.low_evidence_excluded = 1;
  card.truth_outside_detection = 3;
  card.warmup_excluded = 2;
  b.scenarios.emplace_back("round_trip",
                           validate::make_record(card, 0xdeadbeefcafef00dULL));

  const auto parsed = validate::parse_baseline(validate::to_json(b));
  ASSERT_EQ(parsed.scenarios.size(), 1u);
  const auto* rec = parsed.find("round_trip");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->digest, "deadbeefcafef00d");
  EXPECT_EQ(rec->score, card);
  EXPECT_TRUE(validate::compare_to_baseline(b, parsed, 1e-9).empty());
}

TEST(Baseline, ComparatorFlagsEveryCounterDrift) {
  validate::Baseline want;
  validate::Scorecard card;
  card.blocks_scored = 5;
  want.scenarios.emplace_back("s", validate::make_record(card, 1));

  validate::Baseline got = want;
  got.scenarios[0].second.score.warmup_excluded = 1;
  const auto mismatches = validate::compare_to_baseline(want, got, 1e-9);
  ASSERT_EQ(mismatches.size(), 1u);
  EXPECT_EQ(mismatches[0].field, "warmup_excluded");
}

// ---------------------------------------------------------------------------
// Catalog invariants.
// ---------------------------------------------------------------------------

TEST(Catalog, HasTheContractedScenarios) {
  const auto& cat = validate::catalog();
  EXPECT_GE(cat.size(), 15u);
  for (const char* name :
       {"clean_diurnal", "wfh_step", "holiday_dip", "curfew_geo",
        "paired_outage", "wfh_dropout", "wfh_bursts", "wfh_meltdown",
        "quiet_calendar", "dst_transition", "wfh_ramp", "overlap_geo",
        "cgnat_fade", "multiyear_seasonal", "golden_mix"}) {
    EXPECT_NE(validate::find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(validate::find_scenario("no_such_scenario"), nullptr);
}

TEST(Catalog, FaultedVariantsRunAfterTheirCleanCounterparts) {
  const auto& cat = validate::catalog();
  for (std::size_t i = 0; i < cat.size(); ++i) {
    if (cat[i].clean_counterpart.empty()) continue;
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (cat[j].name == cat[i].clean_counterpart) seen = true;
    }
    EXPECT_TRUE(seen) << cat[i].name << " references "
                      << cat[i].clean_counterpart;
  }
}

TEST(Catalog, PlantedTruthIsDeterministic) {
  // Same scenario, two independently built worlds: identical truth on
  // every block (the golden baseline depends on this).
  const auto* s = validate::find_scenario("wfh_step");
  ASSERT_NE(s, nullptr);
  const sim::World a(s->world);
  const sim::World b(s->world);
  ASSERT_EQ(a.blocks().size(), b.blocks().size());
  const auto window = core::dataset(s->dataset).window();
  std::size_t planted = 0;
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    const auto ta = validate::planted_truth(a.blocks()[i], window, s->match);
    const auto tb = validate::planted_truth(b.blocks()[i], window, s->match);
    ASSERT_EQ(ta.size(), tb.size()) << "block " << i;
    for (std::size_t k = 0; k < ta.size(); ++k) {
      EXPECT_EQ(ta[k].at, tb[k].at);
      EXPECT_EQ(ta[k].direction, tb[k].direction);
      EXPECT_EQ(ta[k].cls, tb[k].cls);
    }
    planted += ta.size();
  }
  EXPECT_GT(planted, 0u);  // the WFH step actually plants truth
}

// ---------------------------------------------------------------------------
// End-to-end: negative controls and the metamorphic gates.  These run
// the full pipeline on small scenario worlds (a few seconds total).
// ---------------------------------------------------------------------------

TEST(ValidateEndToEnd, QuietCalendarStaysSilentOnBothDrives) {
  const auto* s = validate::find_scenario("quiet_calendar");
  ASSERT_NE(s, nullptr);
  const sim::World world(s->world);
  for (const auto drive :
       {validate::Drive::kBatch, validate::Drive::kStreaming}) {
    const auto run = validate::run_scenario(*s, world, drive, 2);
    EXPECT_EQ(run.score.truth_total(), 0) << validate::to_string(drive);
    EXPECT_EQ(run.score.true_positive(), 0) << validate::to_string(drive);
    EXPECT_EQ(run.score.false_positive, 0) << validate::to_string(drive);
    EXPECT_EQ(run.score.low_evidence_excluded, 0)
        << validate::to_string(drive);
    EXPECT_TRUE(validate::check_expectations(*s, run).empty())
        << validate::to_string(drive);
  }
}

TEST(ValidateEndToEnd, DstTransitionStaysSilentOnBothDrives) {
  // The 2020-03-08 US spring-forward sits inside the probed quarter;
  // nothing is planted, so the negative control must stay silent on
  // both the batch and the streaming drive.
  const auto* s = validate::find_scenario("dst_transition");
  ASSERT_NE(s, nullptr);
  ASSERT_TRUE(s->expect_zero_confirmed);
  const sim::World world(s->world);
  for (const auto drive :
       {validate::Drive::kBatch, validate::Drive::kStreaming}) {
    const auto run = validate::run_scenario(*s, world, drive, 2);
    EXPECT_EQ(run.score.truth_total(), 0) << validate::to_string(drive);
    EXPECT_EQ(run.score.true_positive(), 0) << validate::to_string(drive);
    EXPECT_EQ(run.score.false_positive, 0) << validate::to_string(drive);
    EXPECT_TRUE(validate::check_expectations(*s, run).empty())
        << validate::to_string(drive);
  }
}

TEST(ValidateEndToEnd, CgnatFadeMasksConversionsWithoutFalseAlarms) {
  // CGNAT absorption strips diurnality mid-window, so the per-segment
  // strictness gate sheds the converting blocks before detection: the
  // planted conversions must all land outside detection, and no block
  // that survives classification may raise a confirmed change.
  const auto* s = validate::find_scenario("cgnat_fade");
  ASSERT_NE(s, nullptr);
  const auto run = validate::run_scenario(*s, validate::Drive::kBatch, 2);
  EXPECT_GE(run.score.truth_outside_detection, s->truth_outside_floor);
  EXPECT_EQ(run.score.truth_total(), 0);
  EXPECT_EQ(run.score.true_positive(), 0);
  EXPECT_EQ(run.score.false_positive, 0);
  EXPECT_TRUE(validate::check_expectations(*s, run).empty());
}

TEST(ValidateEndToEnd, CleanDiurnalNegativeControlPasses) {
  const auto* s = validate::find_scenario("clean_diurnal");
  ASSERT_NE(s, nullptr);
  const auto run = validate::run_scenario(*s, validate::Drive::kBatch, 2);
  EXPECT_TRUE(validate::check_expectations(*s, run).empty());
  EXPECT_EQ(run.score.false_positive, 0);
}

TEST(ValidateEndToEnd, BatchAndStreamingScorecardsAgree) {
  const auto* s = validate::find_scenario("wfh_step");
  ASSERT_NE(s, nullptr);
  const sim::World world(s->world);
  const auto batch =
      validate::run_scenario(*s, world, validate::Drive::kBatch, 2);
  const auto streamed =
      validate::run_scenario(*s, world, validate::Drive::kStreaming, 2);
  EXPECT_EQ(batch.digest, streamed.digest);
  EXPECT_TRUE(batch.score == streamed.score);
}

TEST(ValidateEndToEnd, ScorecardIsThreadCountInvariant) {
  const auto* s = validate::find_scenario("wfh_step");
  ASSERT_NE(s, nullptr);
  const sim::World world(s->world);
  const auto one = validate::run_scenario(*s, world, validate::Drive::kBatch, 1);
  const auto many =
      validate::run_scenario(*s, world, validate::Drive::kBatch, 8);
  EXPECT_EQ(one.digest, many.digest);
  EXPECT_TRUE(one.score == many.score);
}

TEST(ValidateEndToEnd, FaultInvariantsHoldForDropout) {
  const auto* clean = validate::find_scenario("wfh_step");
  const auto* faulted = validate::find_scenario("wfh_dropout");
  ASSERT_NE(clean, nullptr);
  ASSERT_NE(faulted, nullptr);
  const auto clean_run =
      validate::run_scenario(*clean, validate::Drive::kBatch, 2);
  const auto faulted_run =
      validate::run_scenario(*faulted, validate::Drive::kBatch, 2);
  EXPECT_TRUE(
      validate::check_fault_invariants(*faulted, faulted_run, clean_run)
          .empty());
  // The faulted run is a genuinely different pipeline execution.
  EXPECT_NE(faulted_run.digest, clean_run.digest);
}

}  // namespace
}  // namespace diurnal
