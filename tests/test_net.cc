// Tests for IPv4 address and /24 block types.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/ipv4.h"

namespace diurnal::net {
namespace {

TEST(IPv4Addr, FormatParseRoundTrip) {
  const IPv4Addr a(0x80099000u);  // 128.9.144.0
  EXPECT_EQ(a.to_string(), "128.9.144.0");
  EXPECT_EQ(IPv4Addr::parse("128.9.144.0"), a);
  EXPECT_EQ(IPv4Addr::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(IPv4Addr::parse("255.255.255.255").value(), 0xFFFFFFFFu);
}

TEST(IPv4Addr, ParseRejectsMalformed) {
  EXPECT_THROW(IPv4Addr::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(IPv4Addr::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(IPv4Addr::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(IPv4Addr::parse("hello"), std::invalid_argument);
}

TEST(IPv4Addr, LastOctet) {
  EXPECT_EQ(IPv4Addr::parse("10.0.0.37").last_octet(), 37);
  EXPECT_EQ(IPv4Addr::parse("10.0.0.255").last_octet(), 255);
}

TEST(BlockId, ContainingAndAddresses) {
  const BlockId b = BlockId::containing(IPv4Addr::parse("128.9.144.77"));
  EXPECT_EQ(b.to_string(), "128.9.144.0/24");
  EXPECT_EQ(b.base(), IPv4Addr::parse("128.9.144.0"));
  EXPECT_EQ(b.address(77), IPv4Addr::parse("128.9.144.77"));
  EXPECT_EQ(b.address(255), IPv4Addr::parse("128.9.144.255"));
}

TEST(BlockId, Parse) {
  EXPECT_EQ(BlockId::parse("128.125.52.0/24").to_string(), "128.125.52.0/24");
  EXPECT_EQ(BlockId::parse("128.125.52.99"), BlockId::parse("128.125.52.0/24"));
  EXPECT_THROW(BlockId::parse("1.2.3.0/16"), std::invalid_argument);
}

TEST(BlockId, OrderingAndHash) {
  const BlockId a = BlockId::parse("1.0.0.0/24");
  const BlockId b = BlockId::parse("1.0.1.0/24");
  EXPECT_LT(a, b);
  EXPECT_EQ(BlockId(a.id() + 1), b);
  std::unordered_set<BlockId> set{a, b, a};
  EXPECT_EQ(set.size(), 2u);
}

TEST(BlockId, BlockSizeConstant) {
  EXPECT_EQ(kBlockSize, 256);
}

}  // namespace
}  // namespace diurnal::net
