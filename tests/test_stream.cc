// Streaming-engine equivalence and edge cases: every resumable stage
// (prober, fault injection, repair, CUSUM), the per-block BlockStream,
// and the fleet-level epoch drive must finalize byte-identical to the
// per-stage batch pipeline, which is kept alive here as the oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "analysis/cusum.h"
#include "core/datasets.h"
#include "core/digest.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "fault/fault_plan.h"
#include "fault/inject.h"
#include "probe/prober.h"
#include "recon/block_recon.h"
#include "recon/repair.h"
#include "recon/stream.h"
#include "sim/world.h"
#include "util/date.h"

namespace diurnal {
namespace {

using probe::ObservationVec;
using probe::ProbeWindow;

const sim::World& small_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 60;
    c.seed = 7;
    return c;
  }());
  return world;
}

// The pre-refactor per-stage pipeline (probe -> faults -> repair ->
// merge -> reconstruct), whole-window per stage: the ground truth the
// streaming pipeline must reproduce bit-for-bit.
recon::DegradedReconResult batch_oracle(
    const sim::BlockProfile& block, const recon::BlockObservationConfig& oc) {
  const std::size_t n =
      oc.observers.size() + (oc.additional_observations ? 1 : 0);
  std::vector<ObservationVec> streams(n);
  recon::DegradedReconResult out;
  out.observers.assign(n, {});
  probe::ProbeScratch scratch;
  const bool inject = oc.faults != nullptr && !oc.faults->empty();
  for (std::size_t i = 0; i < n; ++i) {
    const bool extra = i >= oc.observers.size();
    probe::ProberConfig pc = oc.prober;
    if (extra) pc.kind = probe::ProberKind::kAdditional;
    const probe::ObserverSpec spec =
        extra ? probe::additional_observer() : oc.observers[i];
    probe::probe_block_into(block, spec, oc.loss, oc.window, pc, scratch,
                            streams[i]);
    fault::StreamFaultStats stats;
    if (inject) {
      stats = fault::apply_faults(*oc.faults, spec.code, oc.window, streams[i]);
    }
    auto& si = out.observers[i];
    si.code = spec.code;
    si.observations = streams[i].size();
    si.faults = stats;
    if (!streams[i].empty()) {
      si.first_rel = streams[i].front().rel_time;
      si.last_rel = streams[i].back().rel_time;
    }
    if (oc.one_loss_repair) recon::one_loss_repair(streams[i]);
  }
  const auto merged = probe::merge_observations(std::move(streams));
  out.recon =
      recon::reconstruct(merged, block.eb_count, oc.window, oc.recon);
  return out;
}

void expect_recon_equal(const recon::ReconResult& got,
                        const recon::ReconResult& want) {
  ASSERT_EQ(got.counts.size(), want.counts.size());
  EXPECT_EQ(got.counts.start(), want.counts.start());
  EXPECT_EQ(got.counts.step(), want.counts.step());
  for (std::size_t i = 0; i < want.counts.size(); ++i) {
    ASSERT_EQ(got.counts[i], want.counts[i]) << "sample " << i;
  }
  EXPECT_EQ(got.responsive, want.responsive);
  EXPECT_EQ(got.mean_reply_rate, want.mean_reply_rate);
  EXPECT_EQ(got.observations, want.observations);
  EXPECT_EQ(got.eb_count, want.eb_count);
  EXPECT_EQ(got.observed_targets, want.observed_targets);
  EXPECT_EQ(got.max_active, want.max_active);
  EXPECT_EQ(got.evidence_fraction, want.evidence_fraction);
  EXPECT_EQ(got.max_gap_seconds, want.max_gap_seconds);
  ASSERT_EQ(got.gaps.size(), want.gaps.size());
  for (std::size_t i = 0; i < want.gaps.size(); ++i) {
    EXPECT_EQ(got.gaps[i].start, want.gaps[i].start);
    EXPECT_EQ(got.gaps[i].end, want.gaps[i].end);
  }
  ASSERT_EQ(got.fbs_spans_seconds.size(), want.fbs_spans_seconds.size());
  for (std::size_t i = 0; i < want.fbs_spans_seconds.size(); ++i) {
    EXPECT_EQ(got.fbs_spans_seconds[i], want.fbs_spans_seconds[i]);
  }
}

void expect_observers_equal(
    const std::vector<fault::ObserverStreamInfo>& got,
    const std::vector<fault::ObserverStreamInfo>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].code, want[i].code);
    EXPECT_EQ(got[i].observations, want[i].observations);
    EXPECT_EQ(got[i].first_rel, want[i].first_rel);
    EXPECT_EQ(got[i].last_rel, want[i].last_rel);
    EXPECT_EQ(got[i].faults.input, want[i].faults.input);
    EXPECT_EQ(got[i].faults.dropped, want[i].faults.dropped);
    EXPECT_EQ(got[i].faults.corrupted, want[i].faults.corrupted);
    EXPECT_EQ(got[i].faults.retimed, want[i].faults.retimed);
  }
}

recon::BlockObservationConfig week_config(const fault::FaultPlan* plan) {
  recon::BlockObservationConfig oc;
  const auto ds = core::dataset("2020w2-ejnw");
  oc.observers = ds.observers();
  oc.window = ds.window();
  oc.faults = plan;
  return oc;
}

const sim::BlockProfile& responsive_block(std::size_t skip = 0) {
  for (const auto& b : small_world().blocks()) {
    if (b.eb_count > 0 && skip-- == 0) return b;
  }
  throw std::runtime_error("no responsive block");
}

// ---------------------------------------------------------------------------
// Stage equivalences
// ---------------------------------------------------------------------------

TEST(StreamProber, ChunkedResumeMatchesBatch) {
  const auto oc = week_config(nullptr);
  const auto& block = responsive_block();
  // Chunk schedules: round-aligned, prime-offset, one giant chunk, and
  // a zero-width epoch in the middle.
  const std::vector<std::int64_t> steps{util::kRoundSeconds, 3601,
                                        86400 + 17, 1 << 30};
  for (const auto& spec : oc.observers) {
    probe::ProbeScratch scratch;
    ObservationVec batch;
    probe::probe_block_into(block, spec, oc.loss, oc.window, oc.prober,
                            scratch, batch);
    for (const std::int64_t step : steps) {
      ObservationVec streamed;
      probe::RoundProberState st;
      probe::round_prober_begin(block, spec, oc.window, oc.prober, st);
      for (util::SimTime t = oc.window.start; !st.done; t += step) {
        probe::round_prober_resume(block, spec, oc.loss, oc.window, oc.prober,
                                   scratch, st, t, streamed);
        // Zero-width epoch: resuming to the same bound adds nothing.
        const std::size_t before = streamed.size();
        probe::round_prober_resume(block, spec, oc.loss, oc.window, oc.prober,
                                   scratch, st, t, streamed);
        ASSERT_EQ(streamed.size(), before);
      }
      ASSERT_EQ(streamed.size(), batch.size()) << "step " << step;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(streamed[i].rel_time, batch[i].rel_time);
        ASSERT_EQ(streamed[i].addr, batch[i].addr);
        ASSERT_EQ(streamed[i].up, batch[i].up);
      }
    }
  }
}

TEST(StreamFaults, ChunkedApplyMatchesBatch) {
  const auto ds = core::dataset("2020w2-ejnw");
  const ProbeWindow w = ds.window();
  for (const char* name : {"dropout", "bursts", "truncate", "meltdown"}) {
    const auto plan = fault::scenario(name, w);
    const auto oc = week_config(&plan);
    const auto& block = responsive_block();
    for (const auto& spec : oc.observers) {
      probe::ProbeScratch scratch;
      ObservationVec batch;
      probe::probe_block_into(block, spec, oc.loss, w, oc.prober, scratch,
                              batch);
      const auto batch_stats = fault::apply_faults(plan, spec.code, w, batch);

      // Re-probe in chunks, injecting after each append: the streaming
      // composition.  Truncation state crosses chunks via the carry.
      ObservationVec chunked;
      probe::RoundProberState st;
      fault::FaultCarry carry;
      fault::StreamFaultStats stats;
      probe::round_prober_begin(block, spec, w, oc.prober, st);
      for (util::SimTime t = w.start; !st.done; t += 6 * 3600 + 13) {
        const std::size_t from = chunked.size();
        probe::round_prober_resume(block, spec, oc.loss, w, oc.prober, scratch,
                                   st, t, chunked);
        const auto s =
            fault::apply_faults_chunk(plan, spec.code, w, chunked, from, carry);
        stats.input += s.input;
        stats.dropped += s.dropped;
        stats.corrupted += s.corrupted;
        stats.retimed += s.retimed;
      }
      ASSERT_EQ(chunked.size(), batch.size()) << name << " " << spec.code;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(chunked[i].rel_time, batch[i].rel_time);
        ASSERT_EQ(chunked[i].addr, batch[i].addr);
        ASSERT_EQ(chunked[i].up, batch[i].up);
      }
      EXPECT_EQ(stats.input, batch_stats.input);
      EXPECT_EQ(stats.dropped, batch_stats.dropped);
      EXPECT_EQ(stats.corrupted, batch_stats.corrupted);
      EXPECT_EQ(stats.retimed, batch_stats.retimed);
    }
  }
}

TEST(StreamRepairTest, IncrementalMatchesBatch) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    ObservationVec stream;
    const int n = 40 + static_cast<int>(rng() % 200);
    std::uint32_t t = 0;
    for (int i = 0; i < n; ++i) {
      t += static_cast<std::uint32_t>(rng() % 900);
      stream.push_back({t, static_cast<std::uint8_t>(rng() % 6),
                        (rng() % 3) != 0});
    }
    ObservationVec batch = stream;
    recon::one_loss_repair(batch);

    ObservationVec inc = stream;
    recon::StreamRepair repair;
    repair.reset();
    std::size_t frontier = 0;
    // Ingest the same buffer repeatedly as it "grows" (simulated by
    // trimming): feed prefixes of increasing length.
    for (std::size_t upto = 0; upto <= inc.size();
         upto += 1 + rng() % 7) {
      ObservationVec window(inc.begin(),
                            inc.begin() + static_cast<std::ptrdiff_t>(
                                              std::min(upto, inc.size())));
      recon::StreamRepair r2;  // fresh machine over the prefix
      r2.reset();
      const std::size_t f = r2.ingest(window, 0);
      ASSERT_LE(f, window.size());
      // Released prefix of the incremental pass must already match the
      // batch result (released observations are final).
      for (std::size_t i = 0; i < f; ++i) {
        ASSERT_EQ(window[i].up, batch[i].up) << "trial " << trial;
      }
    }
    // Full ingest equals batch everywhere after finish.
    frontier = repair.ingest(inc, 0);
    ASSERT_LE(frontier, inc.size());
    frontier = repair.finish();
    EXPECT_EQ(frontier, inc.size());
    for (std::size_t i = 0; i < inc.size(); ++i) {
      ASSERT_EQ(inc[i].up, batch[i].up) << "trial " << trial;
    }
  }
}

TEST(StreamRepairTest, FinalSampleHeldAtEndOfStream) {
  // Last observation of the address is a loss candidate (prev up, now
  // down) still waiting for its rescan when the stream ends: the repair
  // window closes and the observation keeps its probed value, exactly
  // as the batch pass leaves it.
  ObservationVec stream{{0, 0, true}, {600, 0, false}};
  ObservationVec batch = stream;
  recon::one_loss_repair(batch);

  recon::StreamRepair repair;
  repair.reset();
  const std::size_t frontier = repair.ingest(stream, 0);
  EXPECT_EQ(frontier, 1u);  // the candidate at index 1 is held
  EXPECT_EQ(repair.finish(), 2u);
  EXPECT_FALSE(stream[1].up);
  EXPECT_EQ(stream[1].up, batch[1].up);
}

TEST(OnlineCusumTest, MatchesBatchOnRandomWalks) {
  std::mt19937_64 rng(2023);
  std::normal_distribution<double> noise(0.0, 0.3);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 16 + rng() % 400;
    std::vector<double> x(n);
    double level = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng() % 97 == 0) level += (rng() % 2 ? 2.0 : -2.0);
      x[i] = level + noise(rng);
    }
    const auto batch = analysis::cusum_detect(x);

    analysis::OnlineCusum online;
    online.begin();
    std::size_t confirmed_so_far = 0;
    for (const double v : x) {
      online.push(v);
      // The confirmed list is a stable prefix of the batch result.
      ASSERT_GE(online.confirmed().size(), confirmed_so_far);
      confirmed_so_far = online.confirmed().size();
      ASSERT_LE(confirmed_so_far, batch.changes.size());
    }
    const auto res = online.finish();
    ASSERT_EQ(res.changes.size(), batch.changes.size()) << "trial " << trial;
    for (std::size_t i = 0; i < batch.changes.size(); ++i) {
      EXPECT_EQ(res.changes[i].start, batch.changes[i].start);
      EXPECT_EQ(res.changes[i].alarm, batch.changes[i].alarm);
      EXPECT_EQ(res.changes[i].end, batch.changes[i].end);
      EXPECT_EQ(res.changes[i].direction, batch.changes[i].direction);
      EXPECT_EQ(res.changes[i].amplitude, batch.changes[i].amplitude);
    }
    ASSERT_EQ(res.g_pos.size(), batch.g_pos.size());
    for (std::size_t i = 0; i < batch.g_pos.size(); ++i) {
      ASSERT_EQ(res.g_pos[i], batch.g_pos[i]);
      ASSERT_EQ(res.g_neg[i], batch.g_neg[i]);
    }
  }
}

TEST(OnlineCusumTest, OpenExcursionResolvesAtFinish) {
  // A ramp that alarms but never decays: the batch scan dates the end
  // at the series' argmax; the online machine must hold the excursion
  // open across pushes and resolve it identically at finish().
  std::vector<double> x;
  for (int i = 0; i < 40; ++i) x.push_back(0.1 * i);
  const auto batch = analysis::cusum_detect(x);
  ASSERT_FALSE(batch.changes.empty());

  analysis::OnlineCusum online;
  online.begin();
  for (const double v : x) online.push(v);
  // Still growing: nothing confirmable before end-of-stream.
  EXPECT_TRUE(online.confirmed().empty());
  const auto res = online.finish();
  ASSERT_EQ(res.changes.size(), batch.changes.size());
  EXPECT_EQ(res.changes[0].end, batch.changes[0].end);
  EXPECT_EQ(res.changes[0].amplitude, batch.changes[0].amplitude);
}

// ---------------------------------------------------------------------------
// BlockStream
// ---------------------------------------------------------------------------

TEST(BlockStreamTest, EpochAdvanceMatchesBatchOracle) {
  const auto ds = core::dataset("2020w2-ejnw");
  const ProbeWindow w = ds.window();
  const std::vector<std::int64_t> epochs{
      util::kRoundSeconds,          // every round: boundary-aligned
      6 * util::kRoundSeconds - 1,  // off-round
      util::kSecondsPerDay,         // daily
  };
  for (const char* name : {"none", "dropout", "skew", "meltdown"}) {
    const auto plan = fault::scenario(name, w);
    const auto oc = week_config(&plan);
    for (std::size_t b = 0; b < 4; ++b) {
      const auto& block = responsive_block(b);
      const auto want = batch_oracle(block, oc);
      for (const std::int64_t step : epochs) {
        probe::ProbeScratch scratch;
        recon::BlockStream stream;
        stream.begin(block, oc, scratch);
        for (util::SimTime t = w.start; t < w.end; t += step) {
          stream.advance_to(t);
          stream.advance_to(t);  // zero-round epoch: must be a no-op
        }
        recon::DegradedReconResult got;
        stream.finalize(got);
        expect_recon_equal(got.recon, want.recon);
        expect_observers_equal(got.observers, want.observers);
      }
    }
  }
}

TEST(BlockStreamTest, UnionForkMatchesDedicatedClassifyPass) {
  const auto detect_ds = core::dataset("2020m1-ejnw");
  const ProbeWindow dw = detect_ds.window();
  const util::SimTime classify_end = dw.start + 7 * util::kSecondsPerDay;

  recon::BlockObservationConfig detect_oc;
  detect_oc.observers = detect_ds.observers();
  detect_oc.window = dw;
  recon::BlockObservationConfig classify_oc = detect_oc;
  classify_oc.window = ProbeWindow{dw.start, classify_end};

  for (std::size_t b = 0; b < 4; ++b) {
    const auto& block = responsive_block(b);
    const auto want_classify = batch_oracle(block, classify_oc);
    const auto want_detect = batch_oracle(block, detect_oc);

    probe::ProbeScratch scratch;
    recon::BlockStream stream;
    stream.begin(block, detect_oc, scratch, classify_end);
    // Epoch boundary landing exactly on the classification boundary.
    for (util::SimTime t = dw.start; t < classify_end;
         t += util::kSecondsPerDay) {
      stream.advance_to(t);
    }
    stream.advance_to(classify_end);
    recon::DegradedReconResult got_classify;
    stream.finalize_classify(got_classify);
    expect_recon_equal(got_classify.recon, want_classify.recon);
    expect_observers_equal(got_classify.observers, want_classify.observers);

    // The detection stream continues from the fork untouched.
    recon::DegradedReconResult got_detect;
    stream.finalize(got_detect);
    expect_recon_equal(got_detect.recon, want_detect.recon);
    expect_observers_equal(got_detect.observers, want_detect.observers);
  }
}

// ---------------------------------------------------------------------------
// StreamingFleet
// ---------------------------------------------------------------------------

const sim::World& fleet_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 250;
    c.seed = 3;
    return c;
  }());
  return world;
}

TEST(StreamingFleetTest, EpochDriveMatchesBatch) {
  for (const char* name : {"none", "dropout"}) {
    core::FleetConfig fc;
    fc.dataset = core::dataset("2020m1-ejnw");
    fc.faults = fault::scenario(name, fc.dataset.window());
    fc.threads = 2;
    const auto batch = core::run_fleet(fleet_world(), fc);
    const auto want = core::fleet_digest(batch);

    core::StreamingFleet fleet(fleet_world(), fc);
    std::size_t delivered = 0;
    for (util::SimTime t = fleet.window_start(); t < fleet.window_end();
         t += util::kSecondsPerDay) {
      delivered += fleet.advance_to(t).observations;
    }
    const auto rest = fleet.advance_to(fleet.window_end());
    delivered += rest.observations;
    const auto streamed = fleet.finalize();
    EXPECT_EQ(core::fleet_digest(streamed), want) << name;
    EXPECT_GT(delivered, 0u);
    EXPECT_EQ(streamed.funnel.routed, batch.funnel.routed);
  }
}

TEST(StreamingFleetTest, FusedUnionWindowMatchesTwoPass) {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020q1-ejnw");
  fc.classify_dataset = core::dataset("2020m1-ejnw");
  fc.threads = 2;

  fc.fuse_observation_windows = false;
  const auto two_pass = core::run_fleet(fleet_world(), fc);
  fc.fuse_observation_windows = true;
  const auto fused = core::run_fleet(fleet_world(), fc);
  EXPECT_EQ(core::fleet_digest(fused), core::fleet_digest(two_pass));

  // The incremental drive crosses the classification boundary mid-run
  // and must land on the same digest again.
  core::StreamingFleet fleet(fleet_world(), fc);
  bool complete_seen = false;
  for (util::SimTime t = fleet.window_start(); t <= fleet.window_end();
       t += 3 * util::kSecondsPerDay) {
    const auto rep = fleet.advance_to(t);
    if (rep.classification_complete && !complete_seen) {
      complete_seen = true;
      EXPECT_EQ(rep.funnel.routed,
                static_cast<std::int64_t>(fleet_world().blocks().size()));
    }
  }
  EXPECT_TRUE(complete_seen);
  const auto streamed = fleet.finalize();
  EXPECT_EQ(core::fleet_digest(streamed), core::fleet_digest(two_pass));
}

}  // namespace
}  // namespace diurnal
