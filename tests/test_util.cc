// Unit and property tests for util: civil dates, the simulation
// timeline, deterministic RNG, time series, and formatting.
#include <gtest/gtest.h>

#include <cmath>

#include "util/csv.h"
#include "util/date.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timeseries.h"

namespace diurnal::util {
namespace {

TEST(Date, KnownDays) {
  EXPECT_EQ(days_from_civil(Date{1970, 1, 1}), 0);
  EXPECT_EQ(days_from_civil(Date{1970, 1, 2}), 1);
  EXPECT_EQ(days_from_civil(Date{1969, 12, 31}), -1);
  EXPECT_EQ(days_from_civil(Date{2000, 3, 1}), 11017);
}

TEST(Date, RoundTripAcrossYears) {
  for (std::int64_t z = days_from_civil(Date{2019, 1, 1});
       z <= days_from_civil(Date{2024, 12, 31}); ++z) {
    const Date d = civil_from_days(z);
    EXPECT_EQ(days_from_civil(d), z) << to_string(d);
  }
}

TEST(Date, LeapYears) {
  EXPECT_EQ(civil_from_days(days_from_civil(Date{2020, 2, 29})),
            (Date{2020, 2, 29}));
  // 2020-02-28 + 1 day = 02-29; 2019-02-28 + 1 = 03-01.
  EXPECT_EQ(civil_from_days(days_from_civil(Date{2020, 2, 28}) + 1),
            (Date{2020, 2, 29}));
  EXPECT_EQ(civil_from_days(days_from_civil(Date{2019, 2, 28}) + 1),
            (Date{2019, 3, 1}));
}

TEST(Date, Weekday) {
  EXPECT_EQ(weekday(Date{2019, 10, 1}), 2);   // Tuesday
  EXPECT_EQ(weekday(Date{2020, 3, 15}), 0);   // Sunday (USC WFH began)
  EXPECT_EQ(weekday(Date{2020, 1, 20}), 1);   // Monday (MLK day)
  EXPECT_TRUE(is_weekend(Date{2020, 3, 14}));  // Saturday
  EXPECT_FALSE(is_weekend(Date{2020, 3, 16}));
}

TEST(Date, FormatParse) {
  EXPECT_EQ(to_string(Date{2020, 3, 5}), "2020-03-05");
  EXPECT_EQ(parse_date("2020-03-05"), (Date{2020, 3, 5}));
  EXPECT_THROW(parse_date("not-a-date"), std::invalid_argument);
  EXPECT_THROW(parse_date("2020-13-05"), std::invalid_argument);
}

TEST(SimTimeline, EpochAnchors) {
  EXPECT_EQ(time_of(2019, 10, 1), 0);
  EXPECT_EQ(time_of(2019, 10, 2), kSecondsPerDay);
  EXPECT_EQ(date_of(0), kEpochDate);
  EXPECT_EQ(date_of(kSecondsPerDay - 1), kEpochDate);
  EXPECT_EQ(to_string(date_of(time_of(2020, 3, 15))), "2020-03-15");
}

TEST(SimTimeline, HourAndDayIndex) {
  const SimTime t = time_of(2020, 1, 10) + 13 * kSecondsPerHour + 120;
  EXPECT_EQ(hour_of_day(t), 13);
  EXPECT_EQ(day_index(t), days_from_civil(Date{2020, 1, 10}) - epoch_days());
  EXPECT_EQ(weekday_of(time_of(2020, 3, 15)), 0);
  EXPECT_EQ(to_string_time(t), "2020-01-10 13:02");
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowAndRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    const auto v = rng.range(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(11);
  double sum = 0.0, ss = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    ss += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(ss / n, 1.0, 0.03);
}

TEST(Rng, PoissonMean) {
  Xoshiro256 rng(13);
  for (const double mean : {0.5, 3.0, 20.0, 50.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.poisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.1 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, ChanceEdges) {
  Xoshiro256 rng(15);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, DerivedSeedsIndependent) {
  const auto a = derive_seed(1, "alpha");
  const auto b = derive_seed(1, "beta");
  const auto c = derive_seed(2, "alpha");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(1, "alpha"));
  EXPECT_NE(derive_seed(1, 5, 6, 7), derive_seed(1, 5, 7, 6));
}

TEST(TimeSeries, BasicAccessors) {
  TimeSeries s(100, 60, {1, 2, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.time_at(2), 220);
  EXPECT_EQ(s.end_time(), 280);
  EXPECT_EQ(s.index_at(100), 0u);
  EXPECT_EQ(s.index_at(161), 1u);
  EXPECT_EQ(s.index_at(10'000), 2u);  // clamped
  EXPECT_THROW(TimeSeries(0, 0, {}), std::invalid_argument);
}

TEST(TimeSeries, Slice) {
  TimeSeries s(0, 10, {0, 1, 2, 3, 4, 5});
  const auto mid = s.slice(15, 45);
  ASSERT_EQ(mid.size(), 4u);  // samples covering [10,50)
  EXPECT_EQ(mid[0], 1);
  EXPECT_EQ(mid[3], 4);
  EXPECT_EQ(s.slice(100, 200).size(), 0u);
  EXPECT_EQ(s.slice(-50, 1000).size(), 6u);
}

TEST(TimeSeries, DownsampleMean) {
  TimeSeries s(0, 1, {1, 3, 5, 7, 9});
  const auto d = s.downsample_mean(2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 6.0);
  EXPECT_DOUBLE_EQ(d[2], 9.0);  // trailing partial group
  EXPECT_EQ(d.step(), 2);
}

TEST(TimeSeries, DailyStats) {
  // Two days of hourly data: day 0 constant 5, day 1 ramping 0..23.
  std::vector<double> v(48);
  for (int i = 0; i < 24; ++i) v[static_cast<std::size_t>(i)] = 5;
  for (int i = 0; i < 24; ++i) v[static_cast<std::size_t>(24 + i)] = i;
  TimeSeries s(0, kSecondsPerHour, v);
  const auto days = s.daily_stats();
  ASSERT_EQ(days.size(), 2u);
  EXPECT_DOUBLE_EQ(days[0].swing(), 0.0);
  EXPECT_DOUBLE_EQ(days[1].swing(), 23.0);
  EXPECT_DOUBLE_EQ(days[1].mean, 11.5);
  EXPECT_EQ(days[0].samples, 24);
}

TEST(TimeSeries, ZScore) {
  TimeSeries s(0, 1, {2, 4, 6, 8});
  const auto z = s.zscore();
  EXPECT_NEAR(z.mean(), 0.0, 1e-12);
  EXPECT_NEAR(z.stddev(), 1.0, 1e-12);
  const auto flat = TimeSeries(0, 1, {3, 3, 3}).zscore();
  for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_EQ(flat[i], 0.0);
}

TEST(Table, AlignmentAndFormat) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "12"});
  t.add_row({"b", "3456"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(fmt_count(5173026), "5,173,026");
  EXPECT_EQ(fmt_count(-42), "-42");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_pct(0.931, 1), "93.1%");
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
}

TEST(Csv, Escaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// Property: date arithmetic is consistent with SimTime arithmetic.
class DateTimeProperty : public ::testing::TestWithParam<int> {};

TEST_P(DateTimeProperty, TimeOfMatchesDayIndex) {
  const int offset = GetParam();
  const SimTime t = static_cast<SimTime>(offset) * kSecondsPerDay;
  const Date d = date_of(t);
  EXPECT_EQ(time_of(d), t);
  EXPECT_EQ(day_index(t), offset);
  EXPECT_EQ(day_index(t + kSecondsPerDay - 1), offset);
}

INSTANTIATE_TEST_SUITE_P(DayOffsets, DateTimeProperty,
                         ::testing::Values(0, 1, 91, 92, 100, 182, 365, 366,
                                           457, 500, 730, 1000, 1278, 1365));

}  // namespace
}  // namespace diurnal::util
