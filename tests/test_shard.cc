// Shard-scheduler property tests: the partition must be invisible.
//
// The contract under test (core/shard.h, DESIGN.md section 10): a
// sharded drive over the same world config and fleet config produces a
// bitwise-identical fleet digest — same funnel, same per-block
// verdicts, same detected changes — at every shard size and thread
// count, with and without fault plans; gridcell/continent aggregation
// merged across shards equals unsharded aggregation; and with series
// retention off, no series bytes survive shard retirement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/digest.h"
#include "core/pipeline.h"
#include "core/shard.h"
#include "fault/fault_plan.h"
#include "sim/world.h"
#include "sim/world_slice.h"

namespace diurnal {
namespace {

sim::WorldConfig small_world_config() {
  sim::WorldConfig wc;
  wc.num_blocks = 500;
  wc.seed = 97;
  return wc;
}

core::FleetConfig fleet_config(int threads) {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = threads;
  return fc;
}

/// Unsharded reference: run_fleet over the materialized world.
struct Reference {
  core::FleetResult fleet;
  std::uint64_t digest;
  core::ChangeAggregator aggregate;
};

Reference reference_run(const sim::WorldConfig& wc,
                        const core::FleetConfig& fc) {
  const sim::World world(wc);
  Reference ref;
  ref.fleet = core::run_fleet(world, fc);
  ref.digest = core::fleet_digest(ref.fleet);
  ref.aggregate = core::aggregate_changes(world, ref.fleet, fc);
  return ref;
}

void expect_same_region(const core::RegionDaySeries& a,
                        const core::RegionDaySeries& b) {
  EXPECT_EQ(a.change_sensitive_blocks, b.change_sensitive_blocks);
  EXPECT_EQ(a.down, b.down);
  EXPECT_EQ(a.up, b.up);
}

void expect_same_aggregate(const core::ChangeAggregator& a,
                           const core::ChangeAggregator& b) {
  ASSERT_EQ(a.days(), b.days());
  ASSERT_EQ(a.by_cell().size(), b.by_cell().size());
  for (const auto& [cell, series] : a.by_cell()) {
    const auto it = b.by_cell().find(cell);
    ASSERT_NE(it, b.by_cell().end());
    expect_same_region(series, it->second);
  }
  for (std::size_t c = 0; c < a.by_continent().size(); ++c) {
    expect_same_region(a.by_continent()[c], b.by_continent()[c]);
  }
}

TEST(BlockGenerator, MatchesMaterializedWorldBitwise) {
  // Every lazily generated block must equal its row in a full World —
  // the identity the whole sharding contract rests on.
  const auto wc = small_world_config();
  const sim::World world(wc);
  const sim::BlockGenerator gen(wc);
  ASSERT_EQ(gen.total_blocks(), world.blocks().size());
  for (std::size_t i = 0; i < gen.total_blocks(); ++i) {
    const auto b = gen.make(i);
    const auto& w = world.blocks()[i];
    ASSERT_EQ(b.id, w.id) << "index " << i;
    EXPECT_EQ(b.category, w.category);
    EXPECT_EQ(b.country, w.country);
    EXPECT_EQ(b.tz_offset_hours, w.tz_offset_hours);
    EXPECT_EQ(b.lat, w.lat);
    EXPECT_EQ(b.lon, w.lon);
    EXPECT_EQ(b.eb_count, w.eb_count);
    EXPECT_EQ(b.always_on, w.always_on);
    EXPECT_EQ(b.seed, w.seed);
    EXPECT_EQ(b.base_attendance, w.base_attendance);
    EXPECT_EQ(b.current_fraction, w.current_fraction);
    EXPECT_EQ(b.renumber_at, w.renumber_at);
    EXPECT_EQ(b.vacate_at, w.vacate_at);
    EXPECT_EQ(b.occupied_from, w.occupied_from);
    EXPECT_EQ(b.occupied_until, w.occupied_until);
    ASSERT_EQ(b.suppressions.size(), w.suppressions.size());
    for (std::size_t s = 0; s < b.suppressions.size(); ++s) {
      EXPECT_EQ(b.suppressions[s].start, w.suppressions[s].start);
      EXPECT_EQ(b.suppressions[s].end, w.suppressions[s].end);
      EXPECT_EQ(b.suppressions[s].residual_attendance,
                w.suppressions[s].residual_attendance);
      EXPECT_EQ(b.suppressions[s].kind, w.suppressions[s].kind);
    }
    ASSERT_EQ(b.outages.size(), w.outages.size());
    for (std::size_t o = 0; o < b.outages.size(); ++o) {
      EXPECT_EQ(b.outages[o].start, w.outages[o].start);
      EXPECT_EQ(b.outages[o].end, w.outages[o].end);
    }
  }
}

TEST(WorldSlice, MaterializesAnyRangeAndReusesStorage) {
  const auto wc = small_world_config();
  const sim::BlockGenerator gen(wc);
  sim::WorldSlice slice;
  slice.materialize(gen, 10, 30);
  ASSERT_EQ(slice.blocks().size(), 20u);
  EXPECT_EQ(slice.begin_index(), 10u);
  EXPECT_EQ(slice.blocks()[0].id, gen.make(10).id);
  EXPECT_GT(slice.memory_bytes(), 0u);
  // Reuse across a second (overlapping, differently sized) range.
  slice.materialize(gen, 0, 7);
  ASSERT_EQ(slice.blocks().size(), 7u);
  EXPECT_EQ(slice.blocks()[3].id, gen.make(3).id);
  slice.release();
  EXPECT_TRUE(slice.empty());
  EXPECT_EQ(slice.memory_bytes(), 0u);
}

TEST(ShardScheduler, DigestInvariantAcrossShardSizes) {
  const auto wc = small_world_config();
  const auto fc = fleet_config(1);
  const auto ref = reference_run(wc, fc);
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{7},
                                       std::size_t{64}, std::size_t{0}}) {
    core::ShardConfig sc;
    sc.shard_size = shard_size;
    const auto sharded = core::run_sharded_fleet(wc, fc, sc);
    EXPECT_EQ(core::digest_hex(core::fleet_digest(sharded.fleet)),
              core::digest_hex(ref.digest))
        << "shard_size " << shard_size;
    EXPECT_EQ(sharded.fleet.funnel.change_sensitive,
              ref.fleet.funnel.change_sensitive);
    expect_same_aggregate(ref.aggregate, sharded.aggregate);
  }
}

TEST(ShardScheduler, DigestInvariantAcrossThreadCounts) {
  const auto wc = small_world_config();
  const auto ref = reference_run(wc, fleet_config(1));
  for (const int threads : {1, 8}) {
    core::ShardConfig sc;
    sc.shard_size = 7;
    sc.max_resident = 4;
    const auto sharded = core::run_sharded_fleet(wc, fleet_config(threads), sc);
    EXPECT_EQ(core::digest_hex(core::fleet_digest(sharded.fleet)),
              core::digest_hex(ref.digest))
        << "threads " << threads;
    expect_same_aggregate(ref.aggregate, sharded.aggregate);
  }
}

TEST(ShardScheduler, DigestInvariantUnderFaultPlan) {
  const auto wc = small_world_config();
  auto fc = fleet_config(2);
  fc.faults = fault::scenario("dropout", fc.dataset.window());
  const auto ref = reference_run(wc, fc);
  for (const std::size_t shard_size : {std::size_t{7}, std::size_t{64}}) {
    core::ShardConfig sc;
    sc.shard_size = shard_size;
    const auto sharded = core::run_sharded_fleet(wc, fc, sc);
    EXPECT_EQ(core::digest_hex(core::fleet_digest(sharded.fleet)),
              core::digest_hex(ref.digest))
        << "shard_size " << shard_size;
  }
  // The degraded rollup must survive the shard merge too.
  core::ShardConfig sc;
  sc.shard_size = 16;
  const auto sharded = core::run_sharded_fleet(wc, fc, sc);
  EXPECT_EQ(sharded.fleet.degradation.degraded_blocks,
            ref.fleet.degradation.degraded_blocks);
  EXPECT_EQ(sharded.fleet.degradation.low_confidence_blocks,
            ref.fleet.degradation.low_confidence_blocks);
}

TEST(ShardScheduler, GridcellBoundaryBlocksAggregateIdentically) {
  // Blocks are jittered around city centers, so plenty land within one
  // jitter sigma of a 2x2-degree gridcell edge; a shard boundary that
  // split a cell's blocks across shards must still total the same
  // per-cell daily counts.  Guard that the property is non-vacuous:
  // this world must actually have multi-cell aggregation.
  const auto wc = small_world_config();
  const auto fc = fleet_config(2);
  const auto ref = reference_run(wc, fc);
  ASSERT_GT(ref.aggregate.by_cell().size(), 1u)
      << "world too small to exercise gridcell boundaries";
  for (const std::size_t shard_size : {std::size_t{1}, std::size_t{13}}) {
    core::ShardConfig sc;
    sc.shard_size = shard_size;
    sc.max_resident = 3;
    const auto sharded = core::run_sharded_fleet(wc, fc, sc);
    expect_same_aggregate(ref.aggregate, sharded.aggregate);
  }
}

TEST(ShardScheduler, RetentionOffLeavesNoSeriesBytes) {
  const auto wc = small_world_config();
  const auto fc = fleet_config(2);
  core::ShardConfig sc;
  sc.shard_size = 50;
  const auto sharded = core::run_sharded_fleet(wc, fc, sc);
  EXPECT_TRUE(sharded.fleet.series.empty());
  EXPECT_EQ(sharded.fleet.series.memory_bytes(), 0u);
  EXPECT_EQ(sharded.stats.series_bytes_retained, 0u);
  // The per-shard stores existed while resident, then were reclaimed.
  EXPECT_GT(sharded.stats.peak_resident_bytes, 0u);
}

TEST(ShardScheduler, RetainedSeriesMatchUnshardedBitwise) {
  const auto wc = small_world_config();
  const auto fc = fleet_config(2);
  const auto ref = reference_run(wc, fc);
  core::ShardConfig sc;
  sc.shard_size = 64;
  sc.retain_series = true;
  const auto sharded = core::run_sharded_fleet(wc, fc, sc);
  ASSERT_EQ(sharded.fleet.series.rows(), ref.fleet.series.rows());
  ASSERT_EQ(sharded.fleet.series.stride(), ref.fleet.series.stride());
  EXPECT_GT(sharded.stats.series_bytes_retained, 0u);
  for (std::size_t i = 0; i < ref.fleet.series.rows(); ++i) {
    const auto a = ref.fleet.series.series(i);
    const auto b = sharded.fleet.series.series(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    if (!a.empty()) {
      EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
          << "row " << i;
    }
  }
}

TEST(ShardScheduler, ResidencyStaysWithinMaxResident) {
  const auto wc = small_world_config();
  core::ShardConfig sc;
  sc.shard_size = 10;  // 50+ shards
  sc.max_resident = 2;
  const auto sharded = core::run_sharded_fleet(wc, fleet_config(8), sc);
  EXPECT_GE(sharded.stats.shards, 50u);
  EXPECT_LE(sharded.stats.peak_resident, sc.max_resident);
  EXPECT_LE(sharded.stats.workers, sc.max_resident);
}

}  // namespace
}  // namespace diurnal
