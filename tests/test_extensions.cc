// Tests for the extension modules: the Trinocular-style outage
// detector, additional-probing selection, event discovery, CSV report
// export, and the naive-trend detector option.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/detect.h"
#include "core/discovery.h"
#include "core/report.h"
#include "probe/additional_selection.h"
#include "recon/block_recon.h"
#include "recon/outage.h"
#include "sim/world.h"

namespace diurnal {
namespace {

using probe::Observation;
using probe::ObservationVec;
using probe::ProbeWindow;
using util::time_of;

// --- recon::detect_outages ---

// Always-up stream: one positive probe per round.
ObservationVec steady_stream(int rounds, bool up = true) {
  ObservationVec v;
  for (int r = 0; r < rounds; ++r) {
    v.push_back(Observation{static_cast<std::uint32_t>(r) * 660,
                            static_cast<std::uint8_t>(r % 16), up});
  }
  return v;
}

TEST(OutageDetector, SilentOnSteadyBlock) {
  const auto stream = steady_stream(2000);
  const auto r = recon::detect_outages(stream, ProbeWindow{0, 2000 * 660});
  EXPECT_TRUE(r.outages.empty());
  EXPECT_TRUE(r.ever_up);
  EXPECT_GT(r.final_availability, 0.5);
}

TEST(OutageDetector, FindsMidStreamBlackout) {
  // Up for 500 rounds, dark for 300 (16 probes/round, all negative),
  // then up again.
  ObservationVec v = steady_stream(500);
  for (int r = 500; r < 800; ++r) {
    for (int j = 0; j < 16; ++j) {
      v.push_back(Observation{static_cast<std::uint32_t>(r) * 660 + static_cast<std::uint32_t>(j),
                              static_cast<std::uint8_t>(j), false});
    }
  }
  for (int r = 800; r < 1300; ++r) {
    v.push_back(Observation{static_cast<std::uint32_t>(r) * 660,
                            static_cast<std::uint8_t>(r % 16), true});
  }
  const auto res = recon::detect_outages(v, ProbeWindow{0, 1300 * 660});
  ASSERT_EQ(res.outages.size(), 1u);
  // Start within the dark period (a few rounds of evidence needed).
  EXPECT_GE(res.outages[0].start, 500 * 660);
  EXPECT_LE(res.outages[0].start, 560 * 660);
  EXPECT_GE(res.outages[0].end, 800 * 660);
  EXPECT_LE(res.outages[0].end, 810 * 660);
}

TEST(OutageDetector, OpenEndedOutageRunsToWindowEnd) {
  ObservationVec v = steady_stream(500);
  for (int r = 500; r < 900; ++r) {
    for (int j = 0; j < 8; ++j) {
      v.push_back(Observation{static_cast<std::uint32_t>(r) * 660 + static_cast<std::uint32_t>(j),
                              static_cast<std::uint8_t>(j), false});
    }
  }
  const auto res = recon::detect_outages(v, ProbeWindow{0, 900 * 660});
  ASSERT_EQ(res.outages.size(), 1u);
  EXPECT_EQ(res.outages[0].end, 900 * 660);
}

TEST(OutageDetector, SparseBlockNotFlaggedWhileUp) {
  // A block answering only 10% of probes is sparse, not down; the
  // adaptive availability must keep the belief up.
  ObservationVec v;
  for (int r = 0; r < 4000; ++r) {
    v.push_back(Observation{static_cast<std::uint32_t>(r) * 660,
                            static_cast<std::uint8_t>(r % 16), r % 10 == 0});
  }
  const auto res = recon::detect_outages(v, ProbeWindow{0, 4000 * 660});
  EXPECT_TRUE(res.outages.empty()) << res.outages.size();
  EXPECT_LT(res.final_availability, 0.3);
}

TEST(OutageDetector, DiurnalOfficeBlockHasNoNightlyOutages) {
  sim::WorldConfig wc;
  wc.num_blocks = 0;
  const sim::World world(wc);
  const auto* office = world.find(world.usc_office_block());
  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("ejnw");
  oc.window = ProbeWindow{time_of(2020, 1, 6), time_of(2020, 2, 3)};
  probe::LossModel no_loss(probe::LossModelConfig{0, 0, 0, 'w', 1, false});
  oc.loss = no_loss;
  std::vector<probe::ObservationVec> streams;
  for (const auto& obs : oc.observers) {
    streams.push_back(probe::probe_block(*office, obs, no_loss, oc.window));
  }
  const auto merged = probe::merge_observations(std::move(streams));
  const auto res = recon::detect_outages(merged, oc.window);
  // Nights bring long negative runs, but positives from the always-on
  // hosts keep arriving; at most a stray short detection is tolerable.
  EXPECT_LE(res.outages.size(), 1u);
}

TEST(OutageDetector, RealOutageInSimulatedBlockIsFound) {
  sim::WorldConfig wc;
  wc.num_blocks = 0;
  const sim::World world(wc);
  sim::BlockProfile block = *world.find(world.usc_vpn_block());
  block.vacate_at = -1;
  const util::SimTime o_start = time_of(2020, 1, 15) + 6 * 3600;
  const util::SimTime o_end = o_start + 8 * 3600;
  block.outages.push_back(sim::OutageInterval{o_start, o_end});

  probe::LossModel no_loss(probe::LossModelConfig{0, 0, 0, 'w', 1, false});
  const ProbeWindow window{time_of(2020, 1, 6), time_of(2020, 1, 27)};
  std::vector<probe::ObservationVec> streams;
  for (const auto& obs : probe::sites_from_string("ejnw")) {
    streams.push_back(probe::probe_block(block, obs, no_loss, window));
  }
  const auto merged = probe::merge_observations(std::move(streams));
  const auto res = recon::detect_outages(merged, window);
  bool found = false;
  for (const auto& o : res.outages) {
    if (o.start < o_end && o.end > o_start) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(OutageDetector, EmptyStream) {
  const auto res = recon::detect_outages({}, ProbeWindow{0, 1000});
  EXPECT_TRUE(res.outages.empty());
  EXPECT_FALSE(res.ever_up);
}

// --- probe::AdditionalProbingSelector ---

std::vector<probe::BlockScanSample> synthetic_scan_samples() {
  // FBS grows with |E(b)| * availability (one probe per round on
  // always-answering targets).
  std::vector<probe::BlockScanSample> samples;
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 600; ++i) {
    probe::BlockScanSample s;
    s.id = net::BlockId(static_cast<std::uint32_t>(1000 + i));
    s.eb_count = 8 + static_cast<int>(rng.below(249));
    s.availability = rng.uniform(0.01, 1.0);
    const double rounds = s.eb_count * (0.3 + 0.7 * s.availability);
    s.observed_fbs_hours = rounds * 660.0 / 3600.0 + rng.normal(0, 0.3);
    samples.push_back(s);
  }
  return samples;
}

TEST(AdditionalSelection, LearnsTheFbsBoundary) {
  const auto samples = synthetic_scan_samples();
  probe::AdditionalProbingSelector sel;
  sel.fit(samples);
  const auto m = sel.evaluate(samples);
  EXPECT_GT(m.accuracy(), 0.85);
  // The paper reports a very low false-negative rate (0.5%): missing an
  // under-probed block is the costly error.
  EXPECT_LT(m.false_negative_rate(), 0.15);
}

TEST(AdditionalSelection, ExcludesTinyAndIdleBlocks) {
  const auto samples = synthetic_scan_samples();
  probe::AdditionalProbingSelector sel;
  sel.fit(samples);
  EXPECT_FALSE(sel.should_probe(16, 0.9));   // |E(b)| < 32
  EXPECT_FALSE(sel.should_probe(200, 0.01)); // A < 0.05
  EXPECT_TRUE(sel.should_probe(256, 0.95));  // the worst case
}

TEST(AdditionalSelection, RejectsEmptyFit) {
  probe::AdditionalProbingSelector sel;
  EXPECT_THROW(sel.fit({}), std::invalid_argument);
  EXPECT_THROW(sel.should_probe(100, 0.5), std::logic_error);
}

// --- core::discover_events ---

TEST(Discovery, FindsSpikeAndMergesDays) {
  core::ChangeAggregator agg(0, 60 * util::kSecondsPerDay);
  const geo::GridCell cell = geo::GridCell::of(30.0, 114.0);
  // 40 blocks; background: 1 block down on day 5; spike: 8 and 6 blocks
  // on days 20-21.
  auto add = [&](util::SimTime alarm_day, int n) {
    for (int i = 0; i < n; ++i) {
      core::DetectedChange c;
      c.alarm = alarm_day * util::kSecondsPerDay;
      c.direction = analysis::ChangeDirection::kDown;
      c.amplitude_addresses = -5;
      agg.add_block(cell, geo::Continent::kAsia, {c});
    }
  };
  add(5, 1);
  add(20, 8);
  add(21, 6);
  for (int i = 0; i < 25; ++i) {
    agg.add_block(cell, geo::Continent::kAsia, {});
  }
  const auto events = core::discover_events(agg);
  ASSERT_EQ(events.size(), 1u);
  // Windowed semantics: the event spans every 5-day window containing
  // the spike days 20-21, and the peak window holds both (8 + 6).
  EXPECT_LE(util::day_index(events[0].start), 20);
  EXPECT_GE(util::day_index(events[0].end - 1), 21);
  EXPECT_EQ(events[0].peak_blocks, 14);
  EXPECT_EQ(events[0].cell_blocks, 40);
  EXPECT_FALSE(events[0].to_string().empty());
}

TEST(Discovery, IgnoresSmallCellsAndQuietSeries) {
  core::ChangeAggregator agg(0, 30 * util::kSecondsPerDay);
  const geo::GridCell small = geo::GridCell::of(0.0, 0.0);
  core::DetectedChange c;
  c.alarm = 10 * util::kSecondsPerDay;
  c.direction = analysis::ChangeDirection::kDown;
  agg.add_block(small, geo::Continent::kAfrica, {c});  // 1 block only
  EXPECT_TRUE(core::discover_events(agg).empty());
}

TEST(Discovery, EndToEndFindsWfhRegion) {
  sim::WorldConfig wc;
  wc.num_blocks = 1200;
  wc.seed = 4;
  wc.only_country = "SI";  // Slovenia: one gridcell, WFH 2020-03-16
  const sim::World world(wc);
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020q1-ejnw");
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);
  const auto events = core::discover_events(agg);
  ASSERT_FALSE(events.empty());
  // The top event must bracket the national WFH period (detections run
  // a few days early: blocks adopt orders up to 2 days before the
  // official date and the smoothed trend anticipates by ~4 more).
  const auto top = events.front();
  EXPECT_LE(top.start, time_of(2020, 3, 18)) << top.to_string();
  EXPECT_GE(top.end, time_of(2020, 3, 8)) << top.to_string();
}

// --- core report export ---

TEST(Report, WritesAllCsvFiles) {
  sim::WorldConfig wc;
  wc.num_blocks = 300;
  wc.seed = 6;
  const sim::World world(wc);
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  const auto fleet = core::run_fleet(world, fc);
  const auto agg = core::aggregate_changes(world, fleet, fc);

  const auto dir = std::filesystem::temp_directory_path() / "diurnal_report";
  std::filesystem::create_directories(dir);
  const auto prefix = (dir / "t-").string();
  const auto paths = core::write_report(prefix, world, fleet, agg);

  for (const auto& p : {paths.funnel, paths.blocks, paths.changes, paths.cells}) {
    std::ifstream in(p);
    ASSERT_TRUE(in.good()) << p;
    std::string header;
    std::getline(in, header);
    EXPECT_FALSE(header.empty()) << p;
  }
  // The funnel file must carry the routed total.
  std::ifstream in(paths.funnel);
  std::string line;
  bool found_routed = false;
  while (std::getline(in, line)) {
    if (line.rfind("routed,", 0) == 0) {
      EXPECT_EQ(line, "routed," + std::to_string(fleet.funnel.routed));
      found_routed = true;
    }
  }
  EXPECT_TRUE(found_routed);
  std::filesystem::remove_all(dir);
}

// --- naive trend-model option ---

TEST(TrendModel, NaiveOptionDetectsTheSameBigDrop) {
  std::vector<double> v;
  for (int d = 0; d < 70; ++d) {
    const int wd = (d + 2) % 7;
    const bool work = wd >= 1 && wd <= 5;
    const double level = d >= 42 ? 2.0 : 15.0;
    for (int h = 0; h < 24; ++h) {
      v.push_back(work && h >= 9 && h < 17 ? level : 1.0);
    }
  }
  util::TimeSeries series(0, util::kSecondsPerHour, v);
  core::DetectorOptions naive;
  naive.trend_model = core::TrendModel::kNaive;
  const auto det = core::detect_changes(series, naive);
  bool found = false;
  for (const auto& c : det.activity_changes()) {
    if (c.direction == analysis::ChangeDirection::kDown &&
        std::llabs(util::day_index(c.alarm) - 42) <= 5) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace diurnal
