// Tests for the daily-swing classifier and the logistic FBS-time model.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/logistic.h"
#include "analysis/swing.h"
#include "util/rng.h"

namespace diurnal::analysis {
namespace {

using util::DayStats;

std::vector<DayStats> days_with_swings(const std::vector<double>& swings) {
  std::vector<DayStats> out;
  for (std::size_t i = 0; i < swings.size(); ++i) {
    DayStats d;
    d.day = static_cast<std::int64_t>(i);
    d.min = 0.0;
    d.max = swings[i];
    d.samples = 24;
    out.push_back(d);
  }
  return out;
}

TEST(Swing, WideWeekQualifies) {
  // Five workdays of swing 10, a weekend of 0: 5 wide days in 7.
  const auto days =
      days_with_swings({10, 10, 10, 10, 10, 0, 0, 10, 10, 10, 10, 10, 0, 0});
  const auto r = classify_swing(days, SwingOptions{});
  EXPECT_TRUE(r.wide);
  EXPECT_EQ(r.best_window_wide, 5);
  EXPECT_DOUBLE_EQ(r.max_daily_swing, 10.0);
}

TEST(Swing, ThreeDayWeekendStillQualifies) {
  // The 4-of-7 rule tolerates 3-day holiday weekends (section 2.4).
  const auto days = days_with_swings({0, 10, 10, 10, 10, 0, 0});
  EXPECT_TRUE(classify_swing(days, SwingOptions{}).wide);
}

TEST(Swing, ThreeWideDaysDoNotQualify) {
  const auto days = days_with_swings({10, 10, 10, 0, 0, 0, 0, 10, 10, 10, 0, 0, 0, 0});
  EXPECT_FALSE(classify_swing(days, SwingOptions{}).wide);
}

TEST(Swing, BelowThresholdIsNarrow) {
  const auto days = days_with_swings(std::vector<double>(14, 4.0));
  const auto r = classify_swing(days, SwingOptions{});
  EXPECT_FALSE(r.wide);
  EXPECT_EQ(r.wide_days, 0);
}

TEST(Swing, ThresholdIsInclusive) {
  const auto days = days_with_swings(std::vector<double>(7, 5.0));
  EXPECT_TRUE(classify_swing(days, SwingOptions{}).wide);
}

TEST(Swing, GapDaysBreakWindows) {
  // 4 wide days, then a 10-day gap with no data, then 3 more: no single
  // calendar week holds 4.
  std::vector<DayStats> days;
  for (const int d : {0, 1, 2, 3}) {
    DayStats s;
    s.day = d;
    s.max = 10;
    days.push_back(s);
  }
  for (const int d : {14, 15, 16}) {
    DayStats s;
    s.day = d;
    s.max = 10;
    days.push_back(s);
  }
  const auto r = classify_swing(days, SwingOptions{});
  EXPECT_TRUE(r.wide);  // the first 4 are within one 7-day window
  SwingOptions strict;
  strict.min_wide_days = 5;
  EXPECT_FALSE(classify_swing(days, strict).wide);
}

TEST(Swing, EmptyInput) {
  EXPECT_FALSE(classify_swing(std::vector<DayStats>{}, SwingOptions{}).wide);
}

TEST(Swing, FromTimeSeries) {
  // Hourly series: 9-17h at 12 actives on the first five days of each
  // week, ~0 otherwise.
  std::vector<double> v;
  for (int day = 0; day < 14; ++day) {
    const bool work = day % 7 < 5;
    for (int h = 0; h < 24; ++h) {
      v.push_back(work && h >= 9 && h < 17 ? 12.0 : 0.0);
    }
  }
  util::TimeSeries s(0, util::kSecondsPerHour, v);
  const auto r = classify_swing(s, SwingOptions{});
  EXPECT_TRUE(r.wide);
  EXPECT_EQ(r.total_days, 14);
}

// Property sweep of the swing threshold (the paper picked s = 5 as the
// smallest value tolerating a few uncorrelated restarts).
class SwingThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(SwingThresholdSweep, MonotoneInThreshold) {
  const double threshold = GetParam();
  const auto days = days_with_swings({7, 7, 7, 7, 7, 0, 0});
  SwingOptions opt;
  opt.min_swing = threshold;
  const auto r = classify_swing(days, opt);
  EXPECT_EQ(r.wide, threshold <= 7.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SwingThresholdSweep,
                         ::testing::Values(1.0, 3.0, 5.0, 7.0, 8.0, 20.0));

// --- logistic regression ---

TEST(Logistic, SeparableData) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(0, 1);
    const double b = rng.uniform(0, 1);
    x.push_back({a, b});
    y.push_back(a + b > 1.0 ? 1 : 0);
  }
  LogisticModel m;
  m.fit(x, y);
  const auto metrics = evaluate(m, x, y);
  EXPECT_GT(metrics.accuracy(), 0.95);
  EXPECT_GT(metrics.precision(), 0.9);
  EXPECT_GT(metrics.recall(), 0.9);
}

TEST(Logistic, ProbabilitiesOrdered) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(i >= 50 ? 1 : 0);
  }
  LogisticModel m;
  m.fit(x, y);
  EXPECT_LT(m.predict_proba(std::vector<double>{10.0}),
            m.predict_proba(std::vector<double>{90.0}));
  EXPECT_LT(m.predict_proba(std::vector<double>{0.0}), 0.2);
  EXPECT_GT(m.predict_proba(std::vector<double>{99.0}), 0.8);
}

TEST(Logistic, RejectsBadInput) {
  LogisticModel m;
  EXPECT_THROW(m.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(m.fit({{1.0}}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(m.fit({{1.0}, {1.0, 2.0}}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(m.predict_proba(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Logistic, MetricsArithmetic) {
  BinaryMetrics m;
  m.tp = 13;
  m.fp = 1;
  m.fn = 5;
  m.tn = 30;
  EXPECT_NEAR(m.precision(), 13.0 / 14.0, 1e-12);
  EXPECT_NEAR(m.recall(), 13.0 / 18.0, 1e-12);
  EXPECT_NEAR(m.false_negative_rate(), 5.0 / 18.0, 1e-12);
  EXPECT_NEAR(m.accuracy(), 43.0 / 49.0, 1e-12);
}

}  // namespace
}  // namespace diurnal::analysis
