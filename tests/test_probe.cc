// Tests for observers, the loss model, and the probing engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geo/countries.h"
#include "probe/loss_model.h"
#include "probe/observer.h"
#include "probe/prober.h"
#include "sim/world.h"

namespace diurnal::probe {
namespace {

using util::SimTime;
using util::time_of;

sim::World& test_world() {
  static sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 300;
    c.seed = 7;
    return c;
  }());
  return world;
}

// A fully always-on block for probing-discipline tests.
sim::BlockProfile always_on_block(int eb) {
  sim::BlockProfile b;
  b.id = net::BlockId::parse("10.0.0.0/24");
  b.category = sim::BlockCategory::kNatGateway;
  b.eb_count = static_cast<std::uint16_t>(eb);
  b.always_on = static_cast<std::uint16_t>(eb);
  b.seed = 1234;
  return b;
}

// A block that never answers.
sim::BlockProfile dead_block(int eb) {
  auto b = always_on_block(eb);
  b.category = sim::BlockCategory::kFirewalled;
  return b;
}

TEST(Observer, SiteRegistry) {
  EXPECT_EQ(trinocular_sites().size(), 6u);
  EXPECT_EQ(site('w').location, "ISI West, Los Angeles");
  EXPECT_THROW(site('z'), std::out_of_range);
  const auto ejnw = sites_from_string("ejnw");
  ASSERT_EQ(ejnw.size(), 4u);
  EXPECT_EQ(ejnw[0].code, 'e');
  EXPECT_EQ(ejnw[3].code, 'w');
  // Distinct phases so observers interleave.
  std::set<SimTime> phases;
  for (const auto& s : trinocular_sites()) phases.insert(s.phase);
  EXPECT_EQ(phases.size(), 6u);
}

TEST(Observer, FaultWindows) {
  EXPECT_TRUE(site('c').faulty_at(time_of(2020, 2, 1)));
  EXPECT_TRUE(site('g').faulty_at(time_of(2020, 6, 30)));
  EXPECT_FALSE(site('c').faulty_at(time_of(2019, 12, 1)));
  EXPECT_FALSE(site('e').faulty_at(time_of(2020, 2, 1)));
  EXPECT_FALSE(site('w').faulty_at(time_of(2020, 2, 1)));
}

TEST(Quarter, IndexAndBoundaries) {
  EXPECT_EQ(quarter_index(time_of(2019, 10, 1)), 3);
  EXPECT_EQ(quarter_index(time_of(2020, 1, 1)), 4);
  EXPECT_EQ(quarter_index(time_of(2020, 3, 31)), 4);
  EXPECT_EQ(quarter_index(time_of(2020, 4, 1)), 5);
  EXPECT_EQ(next_quarter_start(time_of(2019, 11, 15)), time_of(2020, 1, 1));
  EXPECT_EQ(next_quarter_start(time_of(2020, 1, 1)), time_of(2020, 4, 1));
  EXPECT_EQ(next_quarter_start(time_of(2020, 12, 31)), time_of(2021, 1, 1));
}

TEST(AdditionalProbes, QuotaFormula) {
  // |E(b)| / (6*60/11) probes per round, capped at 8 (section 3.2.3).
  EXPECT_EQ(additional_probes_per_round(1), 1);
  EXPECT_EQ(additional_probes_per_round(32), 1);
  EXPECT_EQ(additional_probes_per_round(33), 2);
  EXPECT_EQ(additional_probes_per_round(160), 5);
  EXPECT_EQ(additional_probes_per_round(256), 8);
}

TEST(Prober, TrinocularStopsAtFirstPositive) {
  const auto block = always_on_block(200);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec obs{'e', "test", 0, 0, 0};
  const ProbeWindow w{0, 10 * util::kRoundSeconds};
  const auto stream = probe_block(block, obs, no_loss, w);
  // Every probe hits an always-on address: exactly one probe per round.
  EXPECT_EQ(stream.size(), 10u);
  for (const auto& o : stream) EXPECT_TRUE(o.up);
}

TEST(Prober, TrinocularEscalatesWhenDown) {
  // Adaptive rate: 2 probes while believed up, 4 while suspicious
  // (rounds 2-4), then the full 16 to confirm the outage.
  const auto block = dead_block(200);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec obs{'e', "test", 0, 0, 0};
  const ProbeWindow w{0, 10 * util::kRoundSeconds};
  const auto stream = probe_block(block, obs, no_loss, w);
  EXPECT_EQ(stream.size(), 2u + 4 + 4 + 4 + 6 * 16);
  for (const auto& o : stream) EXPECT_FALSE(o.up);
}

TEST(Prober, BudgetCappedByBlockSize) {
  const auto block = dead_block(5);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec obs{'e', "test", 0, 0, 0};
  const auto stream =
      probe_block(block, obs, no_loss, ProbeWindow{0, 6 * util::kRoundSeconds});
  // Rounds send 2, 4, 4, 4, then escalate, but never beyond |E(b)| = 5.
  EXPECT_EQ(stream.size(), 2u + 4 + 4 + 4 + 5 + 5);
}

TEST(Prober, SurveyProbesAllTargetsEveryRound) {
  const auto block = always_on_block(40);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec obs{'w', "test", 0, 0, 0};
  ProberConfig cfg;
  cfg.kind = ProberKind::kSurvey;
  const auto stream = probe_block(block, obs, no_loss,
                                  ProbeWindow{0, 3 * util::kRoundSeconds}, cfg);
  EXPECT_EQ(stream.size(), 120u);
  // Each round covers each address exactly once.
  std::set<std::uint8_t> first_round;
  for (std::size_t i = 0; i < 40; ++i) first_round.insert(stream[i].addr);
  EXPECT_EQ(first_round.size(), 40u);
}

TEST(Prober, AdditionalObserverKeepsProbingPastPositives) {
  const auto block = always_on_block(256);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ProberConfig cfg;
  cfg.kind = ProberKind::kAdditional;
  const auto stream =
      probe_block(block, additional_observer(), no_loss,
                  ProbeWindow{0, 10 * util::kRoundSeconds}, cfg);
  EXPECT_EQ(stream.size(), 80u);  // 8 per round despite positives
}

TEST(Prober, FullCoverTimes) {
  // One observer on an always-up 256 block needs 256 rounds (1.96 days)
  // to see every address -- the paper's section 3.1 worst case.
  const auto block = always_on_block(256);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec obs{'e', "test", 0, 0, 0};
  const auto stream = probe_block(
      block, obs, no_loss, ProbeWindow{0, 300 * util::kRoundSeconds});
  std::set<std::uint8_t> seen;
  std::size_t rounds_to_cover = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    seen.insert(stream[i].addr);
    if (seen.size() == 256) {
      rounds_to_cover = i + 1;
      break;
    }
  }
  EXPECT_EQ(rounds_to_cover, 256u);
}

TEST(Prober, SameOrderAcrossObserversWithinQuarter) {
  // All observers probe the same pseudorandom order (different start
  // offsets).  With an always-down block the probe sequence is the raw
  // order; the sequences must be rotations of each other.
  const auto block = dead_block(32);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec a{'e', "a", 0, 0, 0};
  ObserverSpec b{'j', "b", 0, 0, 0};
  // Budgets escalate 2,4,4,4,16,16,...; eight rounds yield > 32 probes.
  const ProbeWindow w{0, 8 * util::kRoundSeconds};
  const auto sa = probe_block(block, a, no_loss, w);
  const auto sb = probe_block(block, b, no_loss, w);
  ASSERT_GE(sa.size(), 32u);
  ASSERT_GE(sb.size(), 32u);
  // Find b's first address within a's first round and check rotation.
  std::vector<std::uint8_t> ra, rb;
  for (int i = 0; i < 32; ++i) {
    ra.push_back(sa[static_cast<std::size_t>(i)].addr);
    rb.push_back(sb[static_cast<std::size_t>(i)].addr);
  }
  auto it = std::find(ra.begin(), ra.end(), rb[0]);
  ASSERT_NE(it, ra.end());
  const std::size_t offset = static_cast<std::size_t>(it - ra.begin());
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(rb[i], ra[(offset + i) % 32]) << i;
  }
}

TEST(Prober, OrderReshufflesAtQuarterBoundary) {
  const auto block = dead_block(32);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  ObserverSpec obs{'e', "test", 0, 0, 0};
  // Window straddling 2020-01-01 (quarter boundary); enough rounds for
  // the escalating budget to emit 32+ probes on each side.
  const SimTime boundary = time_of(2020, 1, 1);
  const auto before = probe_block(
      block, obs, no_loss, ProbeWindow{boundary - 6 * util::kRoundSeconds, boundary});
  const auto after = probe_block(
      block, obs, no_loss, ProbeWindow{boundary, boundary + 6 * util::kRoundSeconds});
  std::vector<std::uint8_t> oa, ob;
  for (std::size_t i = 0; i < 32; ++i) {
    oa.push_back(before[i].addr);
    ob.push_back(after[i].addr);
  }
  EXPECT_NE(oa, ob);  // different permutation after the boundary
}

TEST(Prober, DeterministicStreams) {
  auto& world = test_world();
  const auto& block = *std::find_if(
      world.blocks().begin(), world.blocks().end(),
      [](const sim::BlockProfile& b) { return b.eb_count > 16; });
  LossModel loss;
  ObserverSpec obs = site('w');
  const ProbeWindow w{0, 100 * util::kRoundSeconds};
  const auto s1 = probe_block(block, obs, loss, w);
  const auto s2 = probe_block(block, obs, loss, w);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].rel_time, s2[i].rel_time);
    EXPECT_EQ(s1[i].addr, s2[i].addr);
    EXPECT_EQ(s1[i].up, s2[i].up);
  }
}

TEST(Prober, EmptyCases) {
  LossModel loss;
  ObserverSpec obs = site('w');
  EXPECT_TRUE(probe_block(dead_block(0), obs, loss, ProbeWindow{0, 6600}).empty());
  const auto block = always_on_block(8);
  EXPECT_TRUE(probe_block(block, obs, loss, ProbeWindow{100, 100}).empty());
}

TEST(LossModel, CongestedPathSelection) {
  LossModelConfig cfg;
  LossModel model(cfg);
  auto& world = test_world();
  int congested_cn = 0, total_cn = 0, congested_other = 0;
  for (const auto& b : world.blocks()) {
    const auto& code = geo::countries()[b.country].code;
    const bool c = model.path_congested(site('w'), b);
    if (code == "CN") {
      ++total_cn;
      congested_cn += c;
    } else if (code != "MA") {
      congested_other += c;
    }
    // Healthy observers never see the congested link.
    EXPECT_FALSE(model.path_congested(site('e'), b));
  }
  EXPECT_GT(total_cn, 10);
  EXPECT_NEAR(static_cast<double>(congested_cn) / total_cn, 0.25, 0.15);
  EXPECT_EQ(congested_other, 0);
}

TEST(LossModel, DiurnalLossShape) {
  LossModel model;
  auto& world = test_world();
  const sim::BlockProfile* cn_block = nullptr;
  for (const auto& b : world.blocks()) {
    if (geo::countries()[b.country].code == "CN" &&
        model.path_congested(site('w'), b)) {
      cn_block = &b;
      break;
    }
  }
  ASSERT_NE(cn_block, nullptr);
  // Evening local busy-hour loss far exceeds the overnight rate.
  const SimTime evening_local_21 =
      time_of(2020, 1, 10) + (21 - cn_block->tz_offset_hours) * 3600;
  const SimTime night_local_4 =
      time_of(2020, 1, 10) + (28 - cn_block->tz_offset_hours) * 3600;
  const double busy = model.loss_rate(site('w'), *cn_block, evening_local_21);
  const double quiet = model.loss_rate(site('w'), *cn_block, night_local_4);
  EXPECT_GT(busy, 0.10);
  EXPECT_LT(quiet, 0.05);
  EXPECT_NEAR(model.loss_rate(site('e'), *cn_block, evening_local_21),
              model.config().base_loss, 1e-9);
}

TEST(Merge, OrdersByTime) {
  ObservationVec a{{10, 1, true}, {30, 2, false}};
  ObservationVec b{{5, 3, true}, {20, 4, true}, {40, 5, false}};
  ObservationVec c{{25, 6, true}};
  const auto merged = merge_observations({a, b, c});
  ASSERT_EQ(merged.size(), 6u);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].rel_time, merged[i].rel_time);
  }
  EXPECT_TRUE(merge_observations({}).empty());
  EXPECT_TRUE(merge_observations({ObservationVec{}, ObservationVec{}}).empty());
}

TEST(Merge, CollidingTimestampsKeepStreamOrder) {
  // Observers with coinciding phases produce equal rel_times; the merge
  // contract is a total order on (rel_time, source-stream index), so
  // collisions must come out grouped by stream index, not in an
  // implementation-defined order.
  ObservationVec a{{10, 1, true}, {20, 1, false}, {20, 2, true}};
  ObservationVec b{{10, 7, false}, {20, 7, true}};
  ObservationVec c{{10, 9, true}, {20, 9, false}, {30, 9, true}};
  const auto merged = merge_observations({a, b, c});
  ASSERT_EQ(merged.size(), 8u);
  // rel_time 10: streams 0, 1, 2; rel_time 20: stream 0 twice (its own
  // internal order preserved), then 1, then 2; rel_time 30: stream 2.
  const std::uint8_t expect_addr[] = {1, 7, 9, 1, 2, 7, 9, 9};
  const std::uint32_t expect_time[] = {10, 10, 10, 20, 20, 20, 20, 30};
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].rel_time, expect_time[i]) << "index " << i;
    EXPECT_EQ(merged[i].addr, expect_addr[i]) << "index " << i;
  }
}

TEST(Merge, ZeroAndSingleStreamEdges) {
  // No streams and no observations: both legal, both empty.
  EXPECT_TRUE(merge_observations({}).empty());
  EXPECT_TRUE(merge_observations({ObservationVec{}}).empty());
  // A single stream merges to itself verbatim (the k-way merge's k=1
  // fast path must not reorder or drop).
  ObservationVec only{{5, 1, true}, {5, 2, false}, {17, 3, true}};
  const auto merged = merge_observations({only});
  ASSERT_EQ(merged.size(), only.size());
  for (std::size_t i = 0; i < only.size(); ++i) {
    EXPECT_EQ(merged[i].rel_time, only[i].rel_time);
    EXPECT_EQ(merged[i].addr, only[i].addr);
    EXPECT_EQ(merged[i].up, only[i].up);
  }
}

TEST(Merge, SameObserverListedTwiceKeepsStreamOrder) {
  // Degraded fleets can hand the merge two streams from the same
  // observer (e.g. a restarted prober re-delivering a window).  Equal
  // rel_times across the two copies must come out grouped by stream
  // index — the (rel_time, stream) total order, never interleaved
  // arbitrarily — so reconstruction sees a deterministic sequence.
  ObservationVec first{{100, 1, true}, {200, 1, false}};
  ObservationVec second{{100, 1, false}, {200, 1, true}};
  const auto merged = merge_observations({first, second});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].rel_time, 100u);
  EXPECT_TRUE(merged[0].up);    // stream 0 first
  EXPECT_FALSE(merged[1].up);   // then stream 1
  EXPECT_EQ(merged[2].rel_time, 200u);
  EXPECT_FALSE(merged[2].up);
  EXPECT_TRUE(merged[3].up);
}

TEST(Merge, ManyStreamsAgainstReferenceStableSort) {
  // K-way merge vs a reference stable sort keyed the same way, over
  // enough streams to exercise the heap-heads fallback (> 16 streams)
  // and dense timestamp collisions.
  std::vector<ObservationVec> streams(20);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (std::uint32_t t = 0; t < 50; ++t) {
      // Every stream emits every 3rd tick, so most ticks collide across
      // several streams.
      if ((t + s) % 3 == 0) {
        streams[s].push_back(
            {t, static_cast<std::uint8_t>(s), (t + s) % 2 == 0});
      }
    }
  }
  struct Keyed {
    Observation o;
    std::size_t stream;
  };
  std::vector<Keyed> reference;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (const auto& o : streams[s]) reference.push_back({o, s});
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Keyed& x, const Keyed& y) {
                     if (x.o.rel_time != y.o.rel_time) {
                       return x.o.rel_time < y.o.rel_time;
                     }
                     return x.stream < y.stream;
                   });
  const auto merged = merge_observations(streams);
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].rel_time, reference[i].o.rel_time) << "index " << i;
    EXPECT_EQ(merged[i].addr, reference[i].o.addr) << "index " << i;
    EXPECT_EQ(merged[i].up, reference[i].o.up) << "index " << i;
  }
}

TEST(Prober, FaultyObserverCorruptsResults) {
  const auto block = always_on_block(64);
  LossModel no_loss(LossModelConfig{0.0, 0.0, 0.0, 'w', 1, false});
  // Observer faulty over the whole window.
  ObserverSpec faulty{'c', "faulty", 0, 0, 1'000'000'000};
  const auto stream = probe_block(block, faulty, no_loss,
                                  ProbeWindow{time_of(2020, 2, 1),
                                              time_of(2020, 2, 1) + 200 * 660});
  std::size_t wrong = 0;
  for (const auto& o : stream) wrong += !o.up;  // truth is always-up
  EXPECT_GT(static_cast<double>(wrong) / stream.size(), 0.2);
  EXPECT_LT(static_cast<double>(wrong) / stream.size(), 0.5);
}

}  // namespace
}  // namespace diurnal::probe
