// Tests for the spectral tools and the diurnality test.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/diurnal_test.h"
#include "analysis/fft.h"
#include "analysis/stats.h"
#include "util/rng.h"

namespace diurnal::analysis {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> v(3);
  EXPECT_THROW(fft_inplace(v), std::invalid_argument);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, InverseRoundTrip) {
  util::Xoshiro256 rng(3);
  std::vector<std::complex<double>> v(256);
  for (auto& c : v) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto w = v;
  fft_inplace(w, false);
  fft_inplace(w, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), w[i].real(), 1e-9);
    EXPECT_NEAR(v[i].imag(), w[i].imag(), 1e-9);
  }
}

TEST(Fft, PureToneConcentratesAtBin) {
  const std::size_t n = 512;
  std::vector<double> x(n);
  const double k = 19;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(2 * kPi * k * static_cast<double>(i) / static_cast<double>(n));
  }
  const auto ps = power_spectrum(x);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < ps.size(); ++i) {
    if (ps[i] > ps[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 19u);
}

TEST(Fft, ParsevalHolds) {
  util::Xoshiro256 rng(5);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.normal();
  double time_energy = 0.0;
  for (const double v : x) time_energy += v * v;
  const auto spec = fft_real(x);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(spec.size()),
              1e-6 * freq_energy);
}

TEST(Goertzel, MatchesFftBin) {
  util::Xoshiro256 rng(7);
  std::vector<double> x(256);
  for (auto& v : x) v = rng.normal();
  const auto spec = fft_real(x);
  for (const double k : {1.0, 5.0, 31.0, 100.0}) {
    EXPECT_NEAR(goertzel_power(x, k), std::norm(spec[static_cast<std::size_t>(k)]),
                1e-6 * (1.0 + std::norm(spec[static_cast<std::size_t>(k)])))
        << "bin " << k;
  }
}

// --- the diurnality test ---

std::vector<double> sinusoid_days(int days, double samples_per_day,
                                  double period_hours, double amp,
                                  double noise, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const int n = static_cast<int>(days * samples_per_day);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double hours = 24.0 * static_cast<double>(i) / samples_per_day;
    x[static_cast<std::size_t>(i)] =
        10 + amp * std::sin(2 * kPi * hours / period_hours) + rng.normal(0, noise);
  }
  return x;
}

TEST(DiurnalTest, DetectsDailySinusoid) {
  const auto x = sinusoid_days(28, 24, 24.0, 5.0, 0.5, 1);
  const auto r = test_diurnal(x, 24);
  EXPECT_TRUE(r.diurnal);
  EXPECT_GT(r.power_ratio, 0.8);
}

TEST(DiurnalTest, RejectsWhiteNoise) {
  util::Xoshiro256 rng(2);
  std::vector<double> x(28 * 24);
  for (auto& v : x) v = rng.normal(10, 3);
  const auto r = test_diurnal(x, 24);
  EXPECT_FALSE(r.diurnal);
  EXPECT_LT(r.power_ratio, 0.15);
}

TEST(DiurnalTest, RejectsConstant) {
  std::vector<double> x(28 * 24, 7.0);
  EXPECT_FALSE(test_diurnal(x, 24).diurnal);
}

TEST(DiurnalTest, RejectsTooShort) {
  std::vector<double> x(30, 1.0);
  EXPECT_FALSE(test_diurnal(x, 24).diurnal);
}

TEST(DiurnalTest, DetectsHarmonicOnlySignal) {
  // A 12-hour period signal is a harmonic of the daily frequency.
  const auto x = sinusoid_days(28, 24, 12.0, 5.0, 0.5, 3);
  EXPECT_TRUE(test_diurnal(x, 24).diurnal);
}

TEST(DiurnalTest, DetectsWorkWeekSquareWave) {
  // 9-17h on weekdays only: strong daily energy with weekly sidebands.
  std::vector<double> x;
  for (int day = 0; day < 28; ++day) {
    const int wd = (day + 2) % 7;  // epoch is a Tuesday
    const bool workday = wd >= 1 && wd <= 5;
    for (int h = 0; h < 24; ++h) {
      x.push_back(workday && h >= 9 && h < 17 ? 15.0 : 2.0);
    }
  }
  const auto r = test_diurnal(x, 24);
  EXPECT_TRUE(r.diurnal) << "ratio " << r.power_ratio;
}

TEST(DiurnalTest, RejectsWeeklyOnlySignal) {
  // Flat within each day, varying only by day of week: no 24h energy.
  std::vector<double> x;
  for (int day = 0; day < 56; ++day) {
    const double level = ((day + 2) % 7 < 5) ? 10.0 : 2.0;
    for (int h = 0; h < 24; ++h) x.push_back(level);
  }
  const auto r = test_diurnal(x, 24);
  EXPECT_FALSE(r.diurnal) << "ratio " << r.power_ratio;
}

// Property sweep: detection holds across amplitudes and noise levels
// when the signal-to-noise ratio is reasonable.
class DiurnalSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DiurnalSweep, SinusoidPlusNoise) {
  const auto [amp, noise] = GetParam();
  const auto x = sinusoid_days(28, 24, 24.0, amp, noise, 11);
  const auto r = test_diurnal(x, 24);
  const double snr = amp * amp / (2.0 * noise * noise);
  if (snr > 1.0) {
    EXPECT_TRUE(r.diurnal) << "amp " << amp << " noise " << noise;
  } else if (snr < 0.2) {
    EXPECT_FALSE(r.diurnal) << "amp " << amp << " noise " << noise;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AmpNoise, DiurnalSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0, 5.0, 10.0),
                       ::testing::Values(0.3, 1.0, 3.0, 8.0)));

TEST(Stats, MeanVarianceMedian) {
  const std::vector<double> x{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(x), 2.5);
  EXPECT_DOUBLE_EQ(variance(x), 1.25);
  EXPECT_DOUBLE_EQ(median(x), 2.5);
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 4.0);
}

TEST(Stats, Pearson) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
  const std::vector<double> c{3, 3, 3, 3, 3};
  EXPECT_EQ(pearson(x, c), 0.0);
}

TEST(Stats, Ecdf) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> t{0.5, 2.5, 5.0};
  const auto f = ecdf_at(x, t);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 0.4);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
  const auto pts = ecdf(x, 3);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.back().fraction, 1.0);
}

}  // namespace
}  // namespace diurnal::analysis
