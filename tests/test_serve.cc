// Query-plane tests (DESIGN.md section 13): the concurrency primitives,
// the pinned-reader property — a snapshot's answers are bitwise frozen
// no matter how far the writer advances — the snapshot-image-is-a-
// checkpoint property, N-readers/1-writer stress across engine thread
// counts, backpressure accounting, and the golden drain digest shared
// with tests/test_checkpoint.cc and the bench-smoke CI gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/datasets.h"
#include "core/digest.h"
#include "core/pipeline.h"
#include "core/snapshot_server.h"
#include "sim/world.h"
#include "util/bounded_queue.h"
#include "util/date.h"
#include "util/epoch_registry.h"
#include "util/state_io.h"

namespace diurnal {
namespace {

// Shared with tests/test_checkpoint.cc and the bench-smoke CI gate.
constexpr char kGoldenDigest[] = "f94c66488def6938";

const sim::World& small_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 120;
    c.seed = 7;
    return c;
  }());
  return world;
}

core::FleetConfig small_config(int threads) {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = threads;
  return fc;
}

std::string batch_digest(const sim::World& world,
                         const core::FleetConfig& fc) {
  return core::digest_hex(core::fleet_digest(core::run_fleet(world, fc)));
}

// ---------------------------------------------------------------------------
// util: the concurrency primitives under the server
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoWithinCapacityAndCountersTrack) {
  util::BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full: try_push never blocks
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.peak_size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pushed(), 3u);
  EXPECT_EQ(q.push_waits(), 0u);  // never blocked
  EXPECT_EQ(util::BoundedQueue<int>(0).capacity(), 1u);  // clamped
}

TEST(BoundedQueueTest, FullQueueBlocksProducerAndCountsTheWait) {
  util::BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });  // blocks: full
  // The queue stays full until we pop, so the producer must eventually
  // record its wait; push_waits_ is bumped before the condvar wait, so
  // observing it means the producer is parked.  Only then free the slot
  // — popping earlier would let the push slip through without blocking.
  while (q.push_waits() == 0) std::this_thread::yield();
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.push_waits(), 1u);
}

TEST(BoundedQueueTest, CloseWakesEveryoneAndDrainsRemainingItems) {
  util::BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(7));
  ASSERT_TRUE(q.push(8));
  std::thread blocked_producer([&] { EXPECT_FALSE(q.push(9)); });
  std::thread closer([&] { q.close(); });
  closer.join();
  blocked_producer.join();
  EXPECT_FALSE(q.push(10));      // closed: rejected immediately
  EXPECT_EQ(q.pop(), 7);         // items queued before close still drain
  EXPECT_EQ(q.pop(), 8);
  EXPECT_EQ(q.pop(), std::nullopt);  // drained + closed
}

TEST(EpochRegistryTest, PublishSwapsVersionsAndWaitersUnblock) {
  util::EpochRegistry<int> reg;
  EXPECT_EQ(reg.current(), nullptr);
  EXPECT_EQ(reg.version(), 0u);

  reg.publish(std::make_shared<const int>(10));
  const auto pinned = reg.current();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(*pinned, 10);
  EXPECT_EQ(reg.version(), 1u);

  std::thread waiter([&] {
    const auto got = reg.wait_for_version(2);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, 20);
  });
  reg.publish(std::make_shared<const int>(20));
  waiter.join();

  // The pin taken at version 1 survives the swap untouched.
  EXPECT_EQ(*pinned, 10);

  std::thread blocked([&] { EXPECT_EQ(reg.wait_for_version(99), reg.current()); });
  reg.close();  // close releases waiters with whatever is current
  blocked.join();
}

// ---------------------------------------------------------------------------
// SnapshotServer: equivalence, pinning, restore
// ---------------------------------------------------------------------------

TEST(SnapshotServerTest, DrainedServeMatchesBatchDigest) {
  const auto fc = small_config(2);
  const auto want = batch_digest(small_world(), fc);

  core::SnapshotServer server(small_world(), fc);
  server.start();
  EXPECT_GT(server.feed_all(), 0u);
  const auto res = server.drain();
  EXPECT_EQ(core::digest_hex(core::fleet_digest(res)), want);

  const auto snap = server.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->final_epoch());
  EXPECT_TRUE(snap->scorecard().classification_complete);
  EXPECT_EQ(snap->scorecard().funnel.routed, res.funnel.routed);
  EXPECT_EQ(snap->scorecard().funnel.change_sensitive,
            res.funnel.change_sensitive);
  EXPECT_EQ(snap->rows(), small_world().blocks().size());
}

TEST(SnapshotServerTest, PinnedEpochAnswersAreBitwiseFrozen) {
  // The tentpole property: pin epoch k, hash every query answer, let
  // the writer run the window out, hash again — identical.  Repeated at
  // an early, a mid and the final epoch.
  const auto fc = small_config(2);
  core::SnapshotServer server(small_world(), fc);
  server.start();

  const auto span = server.window_end() - server.window_start();
  ASSERT_TRUE(server.feed(server.window_start() + span / 5));
  const auto early = server.wait_for_epoch(1);
  ASSERT_NE(early, nullptr);
  const std::uint64_t early_digest = early->answers_digest();

  ASSERT_TRUE(server.feed(server.window_start() + (2 * span) / 3));
  const auto mid = server.wait_for_epoch(2);
  ASSERT_NE(mid, nullptr);
  const std::uint64_t mid_digest = mid->answers_digest();
  EXPECT_EQ(early->answers_digest(), early_digest);  // unchanged by epoch 2

  server.feed_all();
  (void)server.drain();

  // However far the writer got, the pinned epochs answer bit-for-bit
  // what they answered at publish time.
  EXPECT_EQ(early->answers_digest(), early_digest);
  EXPECT_EQ(mid->answers_digest(), mid_digest);
  EXPECT_NE(early_digest, mid_digest);  // and epochs genuinely differ
  EXPECT_EQ(early->epoch_index() + 1, mid->epoch_index());
}

TEST(SnapshotServerTest, SnapshotImageIsARestorableCheckpoint) {
  // A pinned snapshot's image() fed into a fresh server must finish the
  // run to the exact batch digest — the snapshot currency contract.
  const auto fc = small_config(2);
  const auto want = batch_digest(small_world(), fc);

  core::SnapshotServer first(small_world(), fc);
  first.start();
  const auto span = first.window_end() - first.window_start();
  ASSERT_TRUE(first.feed(first.window_start() + span / 3));
  const auto snap = first.wait_for_epoch(1);
  ASSERT_NE(snap, nullptr);
  ASSERT_FALSE(snap->image().empty());
  first.stop();  // abandon mid-window; the image is the checkpoint

  core::SnapshotServer second(small_world(), fc);
  {
    util::StateReader r(snap->image());
    second.restore(r);
  }
  second.start();
  second.feed_all();
  EXPECT_EQ(core::digest_hex(core::fleet_digest(second.drain())), want);
}

TEST(SnapshotServerTest, QuerySurfaceIsInternallyConsistent) {
  const auto fc = small_config(2);
  core::SnapshotServer server(small_world(), fc);
  server.start();
  server.feed_all();
  (void)server.drain();
  const auto snap = server.snapshot();
  ASSERT_NE(snap, nullptr);

  // Every world block resolves; an id outside the span does not.
  std::size_t with_trend = 0;
  std::size_t alarms_via_blocks = 0;
  for (const auto& b : small_world().blocks()) {
    const auto* row = snap->block(b.id);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->id.id(), b.id.id());
    EXPECT_TRUE(row->classified);
    const auto tr = snap->trend(b.id);
    if (!tr.empty()) ++with_trend;
    alarms_via_blocks += snap->alarms_for(b.id).size();
  }
  EXPECT_GT(with_trend, 0u);
  EXPECT_EQ(snap->block(net::BlockId(0xfffffff0u)), nullptr);
  EXPECT_TRUE(snap->trend(net::BlockId(0xfffffff0u)).empty());

  // The by-block alarm ranges partition the global alarm log, which is
  // (alarm, id)-ordered.
  EXPECT_EQ(alarms_via_blocks, snap->alarms().size());
  EXPECT_TRUE(std::is_sorted(
      snap->alarms().begin(), snap->alarms().end(),
      [](const core::ProvisionalChange& a, const core::ProvisionalChange& b) {
        return a.alarm != b.alarm ? a.alarm < b.alarm : a.id.id() < b.id.id();
      }));

  // Cell rollups cover exactly the fleet.
  std::size_t cell_blocks = 0;
  std::size_t cell_alarms = 0;
  for (const auto& cs : snap->cells()) {
    EXPECT_EQ(snap->cell(cs.cell)->blocks, cs.blocks);
    cell_blocks += static_cast<std::size_t>(cs.blocks);
    cell_alarms += static_cast<std::size_t>(cs.alarms_down + cs.alarms_up);
  }
  EXPECT_EQ(cell_blocks, snap->rows());
  EXPECT_EQ(cell_alarms, snap->alarms().size());
  EXPECT_EQ(snap->scorecard().alarms_down + snap->scorecard().alarms_up,
            snap->alarms().size());
}

TEST(SnapshotServerTest, BackpressureBoundsTheFeedAndIsAccounted) {
  // A deliberately tiny feed queue against 6-hour ticks: the ticker
  // outruns snapshot building, so pushes must block (never grow memory)
  // and every accepted tick must still be consumed.
  auto fc = small_config(2);
  core::ServeConfig sc;
  sc.epoch_duration = 6 * 3600;
  sc.feed_capacity = 1;
  sc.keep_image = false;
  core::SnapshotServer server(small_world(), fc, sc);
  server.start();
  const std::size_t accepted = server.feed_all();
  (void)server.drain();

  const auto stats = server.stats();
  EXPECT_EQ(stats.feed_accepted, accepted);
  // Every accepted tick became an ingest epoch (the drain-time final
  // snapshot is a registry publish but not an ingest epoch).
  EXPECT_EQ(stats.epochs_published, accepted);
  EXPECT_LE(stats.feed_peak_depth, sc.feed_capacity);
  EXPECT_GT(stats.feed_waits, 0u);
  const auto snap = server.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->image().empty());  // keep_image off
}

// ---------------------------------------------------------------------------
// Stress: N readers vs 1 writer, across engine thread counts
// ---------------------------------------------------------------------------

void reader_stress(int engine_threads, int n_readers) {
  const auto fc = small_config(engine_threads);
  const auto want = batch_digest(small_world(), fc);

  core::ServeConfig sc;
  sc.epoch_duration = util::kSecondsPerDay;
  core::SnapshotServer server(small_world(), fc, sc);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  const auto& blocks = small_world().blocks();
  for (int t = 0; t < n_readers; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t rng = 0x9E3779B97F4A7C15ULL * (t + 1);
      std::size_t last_epoch = 0;
      bool first = true;
      while (!done.load(std::memory_order_relaxed)) {
        const auto snap = server.snapshot();
        if (snap == nullptr) {
          std::this_thread::yield();
          continue;
        }
        // Publication order is monotone from any reader's viewpoint.
        if (!first) EXPECT_GE(snap->epoch_index(), last_epoch);
        first = false;
        last_epoch = snap->epoch_index();
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const auto& b = blocks[rng % blocks.size()];
        switch (rng % 4) {
          case 0: {
            // The pinned-reader property under true concurrency: two
            // hashes of one pinned snapshot while the writer runs.
            const auto d = snap->answers_digest();
            EXPECT_EQ(snap->answers_digest(), d);
            break;
          }
          case 1: {
            const auto* row = snap->block(b.id);
            ASSERT_NE(row, nullptr);
            EXPECT_EQ(row->id.id(), b.id.id());
            break;
          }
          case 2: {
            const auto tr = snap->trend(b.id);
            if (!tr.empty()) (void)tr.back();
            break;
          }
          default: {
            const auto& score = snap->scorecard();
            EXPECT_LE(score.blocks_watched, score.blocks);
            break;
          }
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  server.start();
  server.feed_all();
  const auto res = server.drain();
  done.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(core::digest_hex(core::fleet_digest(res)), want)
      << "engine threads " << engine_threads << ", readers " << n_readers;
}

TEST(SnapshotServerStress, ReadersNeverTearAtTwoEngineThreads) {
  reader_stress(/*engine_threads=*/2, /*n_readers=*/4);
}

TEST(SnapshotServerStress, ReadersNeverTearAtEightEngineThreads) {
  reader_stress(/*engine_threads=*/8, /*n_readers=*/4);
}

// ---------------------------------------------------------------------------
// The golden drain digest (the cross-suite contract)
// ---------------------------------------------------------------------------

TEST(SnapshotServerGolden, ServeDrainGoldenDigest) {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 2000;
    c.seed = 1;
    return c;
  }());
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = 4;
  core::ServeConfig sc;
  sc.keep_image = false;  // golden gate needs no checkpoint currency
  core::SnapshotServer server(world, fc, sc);
  server.start();
  server.feed_all();
  EXPECT_EQ(core::digest_hex(core::fleet_digest(server.drain())),
            kGoldenDigest);
}

}  // namespace
}  // namespace diurnal
