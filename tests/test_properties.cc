// Cross-module property tests: invariants that must hold for arbitrary
// inputs, checked over parameterized sweeps of seeds and configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/diurnal_test.h"
#include "analysis/loess.h"
#include "analysis/stats.h"
#include "probe/prober.h"
#include "recon/block_recon.h"
#include "recon/repair.h"
#include "sim/world.h"
#include "util/rng.h"

namespace diurnal {
namespace {

using probe::ObservationVec;
using probe::ProbeWindow;

// One shared world of assorted blocks for the sweeps.
const sim::World& prop_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 120;
    c.seed = 314;
    return c;
  }());
  return world;
}

// Pick the i-th block with targets.
const sim::BlockProfile& nth_responsive_block(std::size_t i) {
  std::size_t seen = 0;
  for (const auto& b : prop_world().blocks()) {
    if (b.eb_count < 4) continue;
    if (seen++ == i) return b;
  }
  return prop_world().blocks().front();
}

class BlockSweep : public ::testing::TestWithParam<int> {};

// Adding an observer can only add observations: the merged stream grows
// and the set of observed targets never shrinks.
TEST_P(BlockSweep, MoreObserversNeverObserveLess) {
  const auto& block = nth_responsive_block(static_cast<std::size_t>(GetParam()));
  recon::BlockObservationConfig one;
  one.observers = probe::sites_from_string("e");
  one.window = ProbeWindow{0, 14 * util::kSecondsPerDay};
  recon::BlockObservationConfig four = one;
  four.observers = probe::sites_from_string("ejnw");
  const auto r1 = recon::observe_and_reconstruct(block, one);
  const auto r4 = recon::observe_and_reconstruct(block, four);
  EXPECT_GE(r4.observations, r1.observations);
  EXPECT_GE(r4.observed_targets, r1.observed_targets);
}

// 1-loss repair is idempotent and can only add positive observations.
TEST_P(BlockSweep, RepairIdempotentAndMonotone) {
  const auto& block = nth_responsive_block(static_cast<std::size_t>(GetParam()));
  probe::LossModel loss;  // default congestion may apply: good
  auto stream = probe::probe_block(block, probe::site('w'), loss,
                                   ProbeWindow{0, 7 * util::kSecondsPerDay});
  auto count_up = [](const ObservationVec& v) {
    std::size_t n = 0;
    for (const auto& o : v) n += o.up;
    return n;
  };
  const std::size_t before = count_up(stream);
  recon::one_loss_repair(stream);
  const std::size_t after_once = count_up(stream);
  EXPECT_GE(after_once, before);
  auto again = stream;
  const auto stats = recon::one_loss_repair(again);
  EXPECT_EQ(stats.repaired, 0u);  // idempotent
  EXPECT_EQ(count_up(again), after_once);
}

// Reconstruction counts are bounded by the target-list size, and the
// reply rate is a valid probability.
TEST_P(BlockSweep, ReconBounds) {
  const auto& block = nth_responsive_block(static_cast<std::size_t>(GetParam()));
  recon::BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("jn");
  oc.window = ProbeWindow{0, 10 * util::kSecondsPerDay};
  const auto r = recon::observe_and_reconstruct(block, oc);
  EXPECT_GE(r.mean_reply_rate, 0.0);
  EXPECT_LE(r.mean_reply_rate, 1.0);
  EXPECT_LE(r.observed_targets, r.eb_count);
  for (std::size_t i = 0; i < r.counts.size(); ++i) {
    EXPECT_GE(r.counts[i], 0.0);
    EXPECT_LE(r.counts[i], static_cast<double>(r.eb_count));
  }
  for (const double s : r.fbs_spans_seconds) EXPECT_GT(s, 0.0);
}

// Merging preserves every observation and yields a time-ordered stream.
TEST_P(BlockSweep, MergePreservesAndOrders) {
  const auto& block = nth_responsive_block(static_cast<std::size_t>(GetParam()));
  probe::LossModel loss;
  std::vector<ObservationVec> streams;
  std::size_t total = 0;
  for (const char c : {'e', 'j', 'w'}) {
    streams.push_back(probe::probe_block(block, probe::site(c), loss,
                                         ProbeWindow{0, 3 * util::kSecondsPerDay}));
    total += streams.back().size();
  }
  const auto merged = probe::merge_observations(std::move(streams));
  EXPECT_EQ(merged.size(), total);
  for (std::size_t i = 1; i < merged.size(); ++i) {
    EXPECT_LE(merged[i - 1].rel_time, merged[i].rel_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSweep, ::testing::Range(0, 12));

// --- analysis properties over random series ---

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, ZScoreIsNormalized) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 1);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.normal(rng.uniform(-50, 50), rng.uniform(0.5, 20));
  const auto z = util::TimeSeries(0, 60, v).zscore();
  EXPECT_NEAR(z.mean(), 0.0, 1e-9);
  EXPECT_NEAR(z.stddev(), 1.0, 1e-9);
}

TEST_P(SeedSweep, DiurnalRatioIsAProbability) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::vector<double> v(24 * 28);
  for (auto& x : v) x = std::max(0.0, rng.normal(5, 4));
  const auto r = analysis::test_diurnal(v, 24);
  EXPECT_GE(r.power_ratio, 0.0);
  EXPECT_LE(r.power_ratio, 1.0);
  EXPECT_GE(r.total_power, 0.0);
  EXPECT_GE(r.diurnal_power, 0.0);
}

TEST_P(SeedSweep, Degree0LoessStaysWithinDataRange) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 200);
  std::vector<double> v(120);
  for (auto& x : v) x = rng.uniform(-10, 10);
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());
  // A local weighted *mean* is a convex combination of the data.
  const auto s = analysis::loess_smooth(v, analysis::LoessOptions{15, 0, 1});
  for (const double x : s) {
    EXPECT_GE(x, lo - 1e-9);
    EXPECT_LE(x, hi + 1e-9);
  }
}

TEST_P(SeedSweep, QuantilesMonotone) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) + 300);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.normal(0, 5);
  double prev = analysis::quantile(v, 0.0);
  for (double q = 0.1; q <= 1.001; q += 0.1) {
    const double cur = analysis::quantile(v, std::min(q, 1.0));
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 8));

// --- world-level invariants ---

TEST(WorldProperties, ActivityOracleRespectsTargetList) {
  for (const auto& b : prop_world().blocks()) {
    // Sampling a handful of times per block keeps this sweep fast.
    for (util::SimTime t = 0; t < 2 * util::kSecondsPerDay;
         t += 7 * util::kSecondsPerHour) {
      const int n = sim::active_count(b, t);
      EXPECT_GE(n, 0);
      EXPECT_LE(n, b.eb_count);
      EXPECT_FALSE(sim::address_active(b, b.eb_count, t));
    }
  }
}

TEST(WorldProperties, SuppressionsAndOutagesWellFormed) {
  for (const auto& b : prop_world().blocks()) {
    for (const auto& s : b.suppressions) {
      EXPECT_LT(s.start, s.end);
      EXPECT_GE(s.residual_attendance, 0.0);
      EXPECT_LE(s.residual_attendance, 1.0);
    }
    for (const auto& o : b.outages) EXPECT_LT(o.start, o.end);
    if (b.occupied_from >= 0 && b.occupied_until >= 0) {
      EXPECT_GE(b.occupied_until - b.occupied_from,
                30 * util::kSecondsPerDay);
    }
  }
}

}  // namespace
}  // namespace diurnal
