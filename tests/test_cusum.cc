// Tests for the two-sided CUSUM change-point detector.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/cusum.h"
#include "util/rng.h"

namespace diurnal::analysis {
namespace {

std::vector<double> step_series(int n, int change_at, double before,
                                double after, double noise,
                                std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] =
        (i < change_at ? before : after) + rng.normal(0, noise);
  }
  return x;
}

TEST(Cusum, DetectsDownStep) {
  const auto x = step_series(400, 200, 1.0, -1.0, 0.02, 1);
  const auto r = cusum_detect(x, CusumOptions{1.0, 0.001});
  ASSERT_FALSE(r.changes.empty());
  const auto& c = r.changes.front();
  EXPECT_EQ(c.direction, ChangeDirection::kDown);
  EXPECT_NEAR(static_cast<double>(c.alarm), 200.0, 20.0);
  EXPECT_LE(c.start, c.alarm);
  EXPECT_LE(c.alarm, c.end);
  EXPECT_LT(c.amplitude, -1.0);
}

TEST(Cusum, DetectsUpStep) {
  const auto x = step_series(400, 150, 0.0, 2.0, 0.02, 2);
  const auto r = cusum_detect(x, CusumOptions{1.0, 0.001});
  ASSERT_FALSE(r.changes.empty());
  EXPECT_EQ(r.changes.front().direction, ChangeDirection::kUp);
  EXPECT_NEAR(static_cast<double>(r.changes.front().alarm), 150.0, 20.0);
}

TEST(Cusum, SilentOnFlatSeries) {
  std::vector<double> x(500, 3.0);
  const auto r = cusum_detect(x, CusumOptions{1.0, 0.001});
  EXPECT_TRUE(r.changes.empty());
}

TEST(Cusum, SilentOnSmallNoise) {
  util::Xoshiro256 rng(3);
  std::vector<double> x(500);
  for (auto& v : x) v = rng.normal(0.0, 0.05);
  const auto r = cusum_detect(x, CusumOptions{1.0, 0.01});
  EXPECT_TRUE(r.changes.empty());
}

TEST(Cusum, DriftSuppressesSlowRamp) {
  // A ramp slower than the drift accumulates nothing.
  std::vector<double> x(1000);
  for (int i = 0; i < 1000; ++i) x[static_cast<std::size_t>(i)] = i * 0.0005;
  const auto slow = cusum_detect(x, CusumOptions{1.0, 0.001});
  EXPECT_TRUE(slow.changes.empty());
  // The same ramp with no drift eventually alarms.
  const auto nodrift = cusum_detect(x, CusumOptions{0.2, 0.0});
  EXPECT_FALSE(nodrift.changes.empty());
}

TEST(Cusum, DetectsBothChangesOfAPair) {
  // Down then up (an outage signature).
  std::vector<double> x;
  for (int i = 0; i < 200; ++i) x.push_back(1.0);
  for (int i = 0; i < 60; ++i) x.push_back(-1.5);
  for (int i = 0; i < 200; ++i) x.push_back(1.0);
  const auto r = cusum_detect(x, CusumOptions{1.0, 0.001});
  ASSERT_GE(r.changes.size(), 2u);
  EXPECT_EQ(r.changes[0].direction, ChangeDirection::kDown);
  EXPECT_EQ(r.changes[1].direction, ChangeDirection::kUp);
  EXPECT_GT(r.changes[1].start, r.changes[0].alarm);
}

TEST(Cusum, CumulativeSumsExported) {
  const auto x = step_series(100, 50, 0.0, -2.0, 0.0, 4);
  const auto r = cusum_detect(x, CusumOptions{5.0, 0.001});
  ASSERT_EQ(r.g_pos.size(), x.size());
  ASSERT_EQ(r.g_neg.size(), x.size());
  EXPECT_DOUBLE_EQ(r.g_pos[0], 0.0);
  // The negative accumulator rises right after the drop.
  EXPECT_GT(r.g_neg[55], r.g_neg[40]);
}

TEST(Cusum, EmptyAndTinyInputs) {
  EXPECT_TRUE(cusum_detect({}).changes.empty());
  const std::vector<double> one{1.0};
  EXPECT_TRUE(cusum_detect(one).changes.empty());
}

TEST(Cusum, DatedChangesCarryTimes) {
  auto x = step_series(300, 100, 1.0, -1.0, 0.0, 5);
  util::TimeSeries series(util::time_of(2020, 1, 1), util::kSecondsPerHour, x);
  const auto dated = cusum_detect_dated(series, CusumOptions{1.0, 0.001});
  ASSERT_FALSE(dated.empty());
  EXPECT_EQ(dated[0].alarm_time,
            series.time_at(dated[0].point.alarm));
  EXPECT_GE(dated[0].alarm_time, util::time_of(2020, 1, 5));
  EXPECT_LE(dated[0].start_time, dated[0].alarm_time);
}

// Property sweep: the detector finds a unit step across thresholds and
// noise levels, with alarm delay growing with threshold.
class CusumSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(CusumSweep, FindsUnitStep) {
  const auto [threshold, noise] = GetParam();
  const auto x = step_series(600, 300, 0.5, -1.5, noise, 17);
  const auto r = cusum_detect(x, CusumOptions{threshold, 0.001});
  bool found = false;
  for (const auto& c : r.changes) {
    if (c.direction == ChangeDirection::kDown &&
        std::llabs(static_cast<long long>(c.alarm) - 300) < 60) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "threshold " << threshold << " noise " << noise;
}

// Thresholds stay below the 2.0 step size: CUSUM accumulates successive
// differences, so a noiseless step contributes exactly its height and a
// threshold above it can never fire.
INSTANTIATE_TEST_SUITE_P(
    ThresholdNoise, CusumSweep,
    ::testing::Combine(::testing::Values(0.5, 1.0, 1.8),
                       ::testing::Values(0.0, 0.05, 0.2)));

}  // namespace
}  // namespace diurnal::analysis
