// Tests for the observer fault-injection layer and the degraded-mode
// pipeline: plan construction, stream injection, coverage accounting,
// low-confidence annotation, and the fleet-level guarantees (empty plan
// is a no-op; seeded plans are deterministic across thread counts; a
// single-observer dropout is never misread as a WFH onset).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/datasets.h"
#include "core/pipeline.h"
#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "fault/inject.h"
#include "recon/block_recon.h"
#include "recon/reconstruct.h"
#include "sim/world.h"

namespace diurnal::fault {
namespace {

using probe::Observation;
using probe::ObservationVec;
using probe::ProbeWindow;
using util::kRoundSeconds;
using util::kSecondsPerDay;
using util::kSecondsPerHour;
using util::SimTime;
using util::time_of;

// One observation per round over the window, alternating addresses,
// all positive.
ObservationVec dense_stream(ProbeWindow w) {
  ObservationVec v;
  const auto span = static_cast<std::uint32_t>(w.end - w.start);
  for (std::uint32_t rel = 0; rel < span;
       rel += static_cast<std::uint32_t>(kRoundSeconds)) {
    v.push_back(Observation{rel, static_cast<std::uint8_t>(rel / 660 % 4),
                            true});
  }
  return v;
}

TEST(FaultPlan, ScenarioRegistry) {
  const auto& names = scenario_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "none");
  const ProbeWindow w{0, 28 * kSecondsPerDay};
  for (const auto& n : names) {
    const auto plan = scenario(n, w);
    EXPECT_EQ(plan.empty(), n == "none") << n;
  }
  EXPECT_THROW(scenario("nope", w), std::invalid_argument);
}

TEST(FaultPlan, SingleObserverDropout) {
  const auto plan = FaultPlan::single_observer_dropout('e', 100, 200);
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].observer, 'e');
  EXPECT_EQ(plan.outages[0].kind, OutageKind::kHardDown);
  EXPECT_TRUE(observer_dark_at(plan, 'e', 150));
  EXPECT_FALSE(observer_dark_at(plan, 'e', 99));
  EXPECT_FALSE(observer_dark_at(plan, 'e', 200));
  EXPECT_FALSE(observer_dark_at(plan, 'w', 150));
}

TEST(Inject, EmptyPlanIsNoOp) {
  const ProbeWindow w{0, kSecondsPerDay};
  auto stream = dense_stream(w);
  const auto reference = stream;
  const auto st = apply_faults(FaultPlan{}, 'e', w, stream);
  EXPECT_EQ(st.input, reference.size());
  EXPECT_FALSE(st.touched());
  ASSERT_EQ(stream.size(), reference.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].rel_time, reference[i].rel_time);
    EXPECT_EQ(stream[i].addr, reference[i].addr);
    EXPECT_EQ(stream[i].up, reference[i].up);
  }
}

TEST(Inject, HardDownDropsOnlyDarkWindow) {
  const ProbeWindow w{1000, 1000 + kSecondsPerDay};
  const SimTime dark_start = w.start + 6 * kSecondsPerHour;
  const SimTime dark_end = w.start + 10 * kSecondsPerHour;
  auto plan = FaultPlan::single_observer_dropout('e', dark_start, dark_end);

  auto stream = dense_stream(w);
  const std::size_t before = stream.size();
  const auto st = apply_faults(plan, 'e', w, stream);
  EXPECT_GT(st.dropped, 0u);
  EXPECT_EQ(stream.size() + st.dropped, before);
  for (const auto& o : stream) {
    const SimTime t = w.start + o.rel_time;
    EXPECT_TRUE(t < dark_start || t >= dark_end);
  }

  // A different observer is untouched.
  auto other = dense_stream(w);
  EXPECT_FALSE(apply_faults(plan, 'w', w, other).touched());
  EXPECT_EQ(other.size(), before);

  // The wildcard matches every observer.
  plan.outages[0].observer = kAllObservers;
  auto any = dense_stream(w);
  EXPECT_GT(apply_faults(plan, 'w', w, any).dropped, 0u);
}

TEST(Inject, FlappingIsIrregularAndDeterministic) {
  const ProbeWindow w{0, 7 * kSecondsPerDay};
  FaultPlan plan;
  OutageSpec o;
  o.observer = 'j';
  o.kind = OutageKind::kFlapping;
  o.start = w.start;
  o.end = w.end;
  o.flap_down_fraction = 0.5;
  plan.outages.push_back(o);

  auto a = dense_stream(w);
  auto b = dense_stream(w);
  const auto st_a = apply_faults(plan, 'j', w, a);
  const auto st_b = apply_faults(plan, 'j', w, b);
  // Roughly half the slots are dark (binomial over ~84 slots).
  EXPECT_GT(st_a.dropped, st_a.input / 5);
  EXPECT_LT(st_a.dropped, st_a.input * 4 / 5);
  // Same plan, same stream -> bit-identical outcome.
  EXPECT_EQ(st_a.dropped, st_b.dropped);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rel_time, b[i].rel_time);
  }
  // A different plan seed flaps a different pattern.
  FaultPlan reseeded = plan;
  reseeded.seed ^= 0x5EEDULL;
  auto c = dense_stream(w);
  apply_faults(reseeded, 'j', w, c);
  EXPECT_NE(a.size(), c.size());
}

TEST(Inject, ScheduledRebootIsPeriodic) {
  const ProbeWindow w{0, 3 * kSecondsPerDay};
  FaultPlan plan;
  OutageSpec o;
  o.observer = kAllObservers;
  o.kind = OutageKind::kScheduledReboot;
  o.start = 0;
  o.end = w.end;
  o.reboot_interval = kSecondsPerDay;
  o.reboot_duration = 30 * 60;
  plan.outages.push_back(o);

  auto stream = dense_stream(w);
  apply_faults(plan, 'n', w, stream);
  for (const auto& obs : stream) {
    EXPECT_GE(static_cast<SimTime>(obs.rel_time) % kSecondsPerDay, 30 * 60);
  }
  // Exactly the first ~30 minutes of each day vanish: 3 days x 3 rounds
  // per 30-minute reboot (rounds at 0, 660, 1320 fall inside).
  EXPECT_TRUE(observer_dark_at(plan, 'n', kSecondsPerDay));
  EXPECT_FALSE(observer_dark_at(plan, 'n', kSecondsPerDay + 31 * 60));
}

TEST(Inject, SkewShiftsAndDriftStaysMonotone) {
  const ProbeWindow w{0, kSecondsPerDay};
  FaultPlan plan;
  plan.skews.push_back(ClockSkewSpec{'n', 90, 0.0});

  auto stream = dense_stream(w);
  const auto original = stream;
  const auto st = apply_faults(plan, 'n', w, stream);
  EXPECT_EQ(st.retimed, stream.size());
  // +90s shift; the last round (rel 86400-660+90 < 86400) survives, so
  // nothing is dropped and every timestamp moves by exactly the skew.
  ASSERT_EQ(stream.size(), original.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].rel_time, original[i].rel_time + 90);
  }

  // Drift: large positive drift pushes the tail out of the window but
  // keeps the survivors ordered.
  FaultPlan drift;
  drift.skews.push_back(ClockSkewSpec{'n', 0, 50'000.0});  // +5%
  auto drifted = dense_stream(w);
  const auto st2 = apply_faults(drift, 'n', w, drifted);
  EXPECT_GT(st2.dropped, 0u);
  EXPECT_TRUE(std::is_sorted(
      drifted.begin(), drifted.end(),
      [](const Observation& a, const Observation& b) {
        return a.rel_time < b.rel_time;
      }));
}

TEST(Inject, BurstLossFlipsOnlyPositives) {
  const ProbeWindow w{0, kSecondsPerDay};
  FaultPlan plan;
  BurstLossSpec b;
  b.rate = 1.0;
  b.mean_interval = 2 * kSecondsPerHour;
  b.mean_duration = 30 * 60;
  plan.bursts.push_back(b);

  auto stream = dense_stream(w);
  const std::size_t before = stream.size();
  const auto st = apply_faults(plan, 'w', w, stream);
  EXPECT_GT(st.corrupted, 0u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(stream.size(), before);  // corruption never deletes
  std::size_t down = 0;
  for (const auto& o : stream) down += o.up ? 0 : 1;
  EXPECT_EQ(down, st.corrupted);
  // Every corrupted observation sits inside an active burst.
  for (const auto& o : stream) {
    if (!o.up) {
      EXPECT_TRUE(burst_active(plan.seed, 0, b,
                               w.start + static_cast<SimTime>(o.rel_time)));
    }
  }
}

TEST(Inject, TruncationKeepsFirstProbeOfRound) {
  const ProbeWindow w{0, kSecondsPerDay};
  // Three observations per round.
  ObservationVec stream;
  for (std::uint32_t rel = 0; rel < kSecondsPerDay;
       rel += static_cast<std::uint32_t>(kRoundSeconds)) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      stream.push_back(
          Observation{rel + j * 10, static_cast<std::uint8_t>(j), true});
    }
  }
  FaultPlan plan;
  plan.truncations.push_back(TruncationSpec{kAllObservers, 1.0, 0, 0});
  const std::size_t rounds = stream.size() / 3;
  apply_faults(plan, 'g', w, stream);
  // prob=1: every round is cut to its first probe.
  ASSERT_EQ(stream.size(), rounds);
  for (const auto& o : stream) {
    EXPECT_EQ(o.addr, 0);
    EXPECT_EQ(static_cast<SimTime>(o.rel_time) % kRoundSeconds, 0);
  }
}

// --------------------------------------------------------------------
// Reconstruction coverage tracking.
// --------------------------------------------------------------------

TEST(Coverage, GapsAndEvidenceFraction) {
  // Observations every hour for day 1, silence for day 2, back on day 3.
  ObservationVec obs;
  auto add_day = [&](SimTime day) {
    for (SimTime h = 0; h < 24; ++h) {
      obs.push_back(Observation{
          static_cast<std::uint32_t>(day * kSecondsPerDay + h * kSecondsPerHour),
          0, true});
    }
  };
  add_day(0);
  add_day(2);
  const ProbeWindow w{0, 3 * kSecondsPerDay};
  const auto r = recon::reconstruct(obs, 4, w, {});
  // The silent day exceeds the 6h staleness horizon.
  EXPECT_LE(r.evidence_fraction, 0.75);
  EXPECT_GT(r.evidence_fraction, 0.5);
  EXPECT_GE(r.max_gap_seconds, static_cast<double>(kSecondsPerDay));
  ASSERT_FALSE(r.gaps.empty());
  EXPECT_LE(r.gaps[0].start, kSecondsPerDay);
  EXPECT_GE(r.gaps[0].end, 2 * kSecondsPerDay);
}

TEST(Coverage, HealthyStreamHasFullEvidence) {
  const ProbeWindow w{0, 2 * kSecondsPerDay};
  const auto r = recon::reconstruct(dense_stream(w), 4, w, {});
  EXPECT_GT(r.evidence_fraction, 0.95);
  EXPECT_TRUE(r.gaps.empty());
  EXPECT_LT(r.max_gap_seconds, 2.0 * kSecondsPerHour);
}

TEST(Degradation, SummarizeBlockCountsLiveAndPartial) {
  const ProbeWindow w{0, 28 * kSecondsPerDay};
  std::vector<ObserverStreamInfo> streams(3);
  streams[0] = {'e', 1000, 0,
                static_cast<std::uint32_t>(28 * kSecondsPerDay - 700),
                StreamFaultStats{}};
  // Started 5 days late -> partial.
  streams[1] = {'j', 800, static_cast<std::uint32_t>(5 * kSecondsPerDay),
                static_cast<std::uint32_t>(28 * kSecondsPerDay - 700),
                StreamFaultStats{}};
  // Vanished: delivered nothing.
  streams[2] = {'n', 0, 0, 0, StreamFaultStats{}};
  streams[2].faults.dropped = 1000;

  const auto d = summarize_block(streams, 3, w, 0.8, 3600.0, 0.5);
  EXPECT_EQ(d.configured_observers, 3);
  EXPECT_EQ(d.live_observers, 2);
  EXPECT_EQ(d.partial_observers, 1);
  EXPECT_EQ(d.dropped_observations, 1000u);
  EXPECT_FALSE(d.low_confidence);
  EXPECT_TRUE(d.degraded());

  const auto low = summarize_block(streams, 3, w, 0.3, 3600.0, 0.5);
  EXPECT_TRUE(low.low_confidence);
}

// --------------------------------------------------------------------
// Degraded pipeline: merge tolerance and annotation.
// --------------------------------------------------------------------

sim::World& fault_world() {
  static sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 250;
    c.seed = 11;
    return c;
  }());
  return world;
}

core::FleetConfig month_config() {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = 1;
  return fc;
}

bool same_outcomes(const core::FleetResult& a, const core::FleetResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto& x = a.outcomes[i];
    const auto& y = b.outcomes[i];
    if (x.cls.responsive != y.cls.responsive ||
        x.cls.change_sensitive != y.cls.change_sensitive ||
        x.cls.low_confidence != y.cls.low_confidence ||
        x.changes.size() != y.changes.size()) {
      return false;
    }
    for (std::size_t k = 0; k < x.changes.size(); ++k) {
      if (x.changes[k].start != y.changes[k].start ||
          x.changes[k].alarm != y.changes[k].alarm ||
          x.changes[k].amplitude != y.changes[k].amplitude ||
          x.changes[k].low_evidence != y.changes[k].low_evidence) {
        return false;
      }
    }
  }
  return true;
}

TEST(DegradedFleet, EmptyPlanReportsHealthy) {
  const auto fleet = core::run_fleet(fault_world(), month_config());
  const auto& d = fleet.degradation;
  EXPECT_GT(d.probed_blocks, 0);
  EXPECT_EQ(d.degraded_blocks, 0);
  EXPECT_EQ(d.low_confidence_blocks, 0);
  EXPECT_EQ(d.blocks_missing_observers, 0);
  EXPECT_GT(d.mean_evidence_fraction, 0.95);
  EXPECT_EQ(fleet.funnel.low_confidence, 0);
  for (const auto& out : fleet.outcomes) {
    for (const auto& ch : out.changes) EXPECT_FALSE(ch.low_evidence);
  }
}

TEST(DegradedFleet, SeededPlanDeterministicAcrossThreads) {
  auto fc = month_config();
  fc.faults = fault::scenario("meltdown", fc.dataset.window());
  fc.threads = 1;
  const auto one = core::run_fleet(fault_world(), fc);
  fc.threads = 4;
  const auto four = core::run_fleet(fault_world(), fc);
  EXPECT_TRUE(same_outcomes(one, four));
  EXPECT_EQ(one.degradation.degraded_blocks, four.degradation.degraded_blocks);
  EXPECT_EQ(one.degradation.low_confidence_blocks,
            four.degradation.low_confidence_blocks);
}

TEST(DegradedFleet, MergeToleratesDroppedObserver) {
  // Observer e dark for the middle of the month: with three healthy
  // observers still probing every round, coverage barely moves (the
  // section 2.7 merge is the redundancy) and no verdict loses confidence.
  auto fc = month_config();
  const auto w = fc.dataset.window();
  fc.faults = FaultPlan::single_observer_dropout(
      'e', w.start + 7 * kSecondsPerDay, w.start + 21 * kSecondsPerDay);
  const auto fleet = core::run_fleet(fault_world(), fc);
  EXPECT_GT(fleet.degradation.degraded_blocks, 0);
  EXPECT_EQ(fleet.degradation.low_confidence_blocks, 0);
  EXPECT_GT(fleet.degradation.mean_evidence_fraction, 0.95);
  EXPECT_GT(fleet.funnel.responsive, 0);
}

TEST(DegradedFleet, WholeFleetOutageLosesConfidenceNotCorrectness) {
  // Every observer dark for 18 of 28 days: evidence collapses and the
  // pipeline must say so on every responsive block.
  auto fc = month_config();
  const auto w = fc.dataset.window();
  fc.faults = FaultPlan::single_observer_dropout(
      kAllObservers, w.start + 7 * kSecondsPerDay,
      w.start + 25 * kSecondsPerDay);
  const auto fleet = core::run_fleet(fault_world(), fc);
  EXPECT_GT(fleet.degradation.low_confidence_blocks, 0);
  EXPECT_LT(fleet.degradation.mean_evidence_fraction, 0.5);
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    if (!out.cls.responsive) continue;
    EXPECT_TRUE(out.cls.low_confidence);
    EXPECT_TRUE(fleet.degradation.blocks[i].low_confidence);
  }
  EXPECT_EQ(fleet.funnel.low_confidence,
            fleet.degradation.low_confidence_blocks);
}

// The acceptance property: a single-observer fleet losing its only
// observer mid-window must never report the outage as a trustworthy
// activity change.  The down/up pair a dropout paints into the
// reconstruction either gets filtered as an outage pair, or — when it
// survives the filters — carries the low_evidence annotation, so WFH
// validation (which skips low-evidence changes) cannot mistake it for
// an onset.
TEST(DegradedFleet, DropoutNeverMisreadAsWfhOnset) {
  sim::WorldConfig wc;
  wc.num_blocks = 150;
  wc.seed = 23;
  wc.quiet_calendar = true;  // no real events: any change is an artifact
  wc.include_special_blocks = false;
  const sim::World world(wc);

  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-w");  // one observer only
  fc.threads = 2;
  const auto w = fc.dataset.window();
  const SimTime dark_start = w.start + 10 * kSecondsPerDay;
  const SimTime dark_end = w.start + 17 * kSecondsPerDay;
  fc.faults = FaultPlan::single_observer_dropout('w', dark_start, dark_end);

  const auto fleet = core::run_fleet(world, fc);
  // The fault must actually bite: the only observer went dark for a
  // quarter of the window, so gaps exist fleet-wide.
  EXPECT_GT(fleet.degradation.degraded_blocks, 0);
  EXPECT_LT(fleet.degradation.mean_evidence_fraction, 0.85);

  int counted_near_dropout = 0;
  for (const auto& out : fleet.outcomes) {
    for (const auto& ch : out.changes) {
      const bool overlaps_dark =
          ch.start - kSecondsPerDay < dark_end &&
          ch.end + kSecondsPerDay > dark_start;
      if (!overlaps_dark) continue;
      ++counted_near_dropout;
      if (ch.counted()) {
        EXPECT_TRUE(ch.low_evidence)
            << "dropout artifact reported as trustworthy change at "
            << util::to_string_time(ch.start);
      }
    }
  }
  // Not vacuous: the dropout does paint excursions into some blocks.
  EXPECT_GT(counted_near_dropout, 0);
}

}  // namespace
}  // namespace diurnal::fault
