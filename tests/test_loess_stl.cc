// Tests for LOESS, STL, and the naive seasonal baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/loess.h"
#include "analysis/naive_seasonal.h"
#include "analysis/stats.h"
#include "analysis/stl.h"
#include "util/rng.h"

namespace diurnal::analysis {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Loess, ReproducesConstant) {
  std::vector<double> y(50, 4.0);
  for (const int degree : {0, 1}) {
    const auto s = loess_smooth(y, LoessOptions{9, degree, 1});
    for (const double v : s) EXPECT_NEAR(v, 4.0, 1e-9);
  }
}

TEST(Loess, Degree1ReproducesLine) {
  std::vector<double> y(60);
  for (int i = 0; i < 60; ++i) y[static_cast<std::size_t>(i)] = 3.0 + 0.5 * i;
  const auto s = loess_smooth(y, LoessOptions{11, 1, 1});
  for (int i = 0; i < 60; ++i) {
    EXPECT_NEAR(s[static_cast<std::size_t>(i)], 3.0 + 0.5 * i, 1e-9) << i;
  }
}

TEST(Loess, SmoothsNoise) {
  util::Xoshiro256 rng(1);
  std::vector<double> y(200);
  for (int i = 0; i < 200; ++i) {
    y[static_cast<std::size_t>(i)] = 10.0 + rng.normal(0, 2.0);
  }
  const auto s = loess_smooth(y, LoessOptions{41, 1, 1});
  EXPECT_LT(stddev(s), stddev(y) * 0.6);
  EXPECT_NEAR(mean(s), 10.0, 0.5);
}

TEST(Loess, RobustnessWeightsDampOutlier) {
  std::vector<double> y(30, 5.0);
  y[15] = 100.0;
  std::vector<double> rho(30, 1.0);
  rho[15] = 0.0;  // fully distrust the outlier
  const auto plain = loess_smooth(y, LoessOptions{9, 1, 1});
  const auto robust = loess_smooth(y, LoessOptions{9, 1, 1}, rho);
  EXPECT_GT(std::abs(plain[14] - 5.0), 1.0);
  EXPECT_NEAR(robust[14], 5.0, 1e-6);
}

TEST(Loess, ExtendedEndpointsExtrapolate) {
  std::vector<double> y(20);
  for (int i = 0; i < 20; ++i) y[static_cast<std::size_t>(i)] = 2.0 * i;
  const auto ext = loess_smooth_extended(y, LoessOptions{7, 1, 1});
  ASSERT_EQ(ext.size(), 22u);
  EXPECT_NEAR(ext[0], -2.0, 1e-9);    // position -1
  EXPECT_NEAR(ext[21], 40.0, 1e-9);   // position 20
  EXPECT_NEAR(ext[1], 0.0, 1e-9);     // position 0
}

TEST(Loess, JumpInterpolationCloseToExact) {
  util::Xoshiro256 rng(2);
  std::vector<double> y(300);
  for (int i = 0; i < 300; ++i) {
    y[static_cast<std::size_t>(i)] =
        std::sin(i * 0.05) * 10 + rng.normal(0, 0.2);
  }
  const auto exact = loess_smooth(y, LoessOptions{31, 1, 1});
  const auto jumped = loess_smooth(y, LoessOptions{31, 1, 5});
  double max_diff = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(exact[i] - jumped[i]));
  }
  EXPECT_LT(max_diff, 0.25);
}

// --- STL ---

struct Synthetic {
  std::vector<double> y, trend, seasonal;
};

Synthetic make_synthetic(int periods, int period, double noise,
                         std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Synthetic s;
  const int n = periods * period;
  for (int i = 0; i < n; ++i) {
    const double tr = 20.0 + 5.0 * std::sin(2 * kPi * i / (n * 2.0));
    const double se = 6.0 * std::sin(2 * kPi * (i % period) / period);
    s.trend.push_back(tr);
    s.seasonal.push_back(se);
    s.y.push_back(tr + se + rng.normal(0, noise));
  }
  return s;
}

TEST(Stl, RecoversComponents) {
  const auto syn = make_synthetic(12, 24, 0.5, 3);
  StlOptions opt;
  opt.period = 24;
  const auto d = stl_decompose(syn.y, opt);
  ASSERT_EQ(d.trend.size(), syn.y.size());
  // Compare away from the edges where LOESS has less support.
  double trend_err = 0.0, seasonal_err = 0.0;
  int counted = 0;
  for (std::size_t i = 48; i + 48 < syn.y.size(); ++i) {
    trend_err += std::abs(d.trend[i] - syn.trend[i]);
    seasonal_err += std::abs(d.seasonal[i] - syn.seasonal[i]);
    ++counted;
  }
  EXPECT_LT(trend_err / counted, 0.8);
  EXPECT_LT(seasonal_err / counted, 0.8);
}

TEST(Stl, ComponentsSumToSeries) {
  const auto syn = make_synthetic(8, 24, 1.0, 4);
  StlOptions opt;
  opt.period = 24;
  const auto d = stl_decompose(syn.y, opt);
  for (std::size_t i = 0; i < syn.y.size(); ++i) {
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.residual[i], syn.y[i], 1e-9);
  }
}

TEST(Stl, RejectsShortSeries) {
  std::vector<double> y(30, 1.0);
  StlOptions opt;
  opt.period = 24;
  EXPECT_THROW(stl_decompose(y, opt), std::invalid_argument);
  opt.period = 1;
  EXPECT_THROW(stl_decompose(y, opt), std::invalid_argument);
}

TEST(Stl, RobustToOutliers) {
  auto syn = make_synthetic(12, 24, 0.3, 5);
  // Inject a burst of large outliers.
  for (int i = 100; i < 106; ++i) syn.y[static_cast<std::size_t>(i)] += 60.0;
  StlOptions robust;
  robust.period = 24;
  robust.outer_iterations = 2;
  StlOptions plain = robust;
  plain.outer_iterations = 0;
  const auto dr = stl_decompose(syn.y, robust);
  const auto dp = stl_decompose(syn.y, plain);
  // The robust trend should stay closer to truth near the outliers.
  double err_r = 0.0, err_p = 0.0;
  for (int i = 90; i < 120; ++i) {
    err_r += std::abs(dr.trend[static_cast<std::size_t>(i)] -
                      syn.trend[static_cast<std::size_t>(i)]);
    err_p += std::abs(dp.trend[static_cast<std::size_t>(i)] -
                      syn.trend[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(err_r, err_p);
  // Robustness weights must flag the outliers.
  ASSERT_EQ(dr.robustness.size(), syn.y.size());
  for (int i = 101; i < 105; ++i) {
    EXPECT_LT(dr.robustness[static_cast<std::size_t>(i)], 0.2) << i;
  }
}

TEST(Stl, DefaultTrendSpanFormula) {
  // Smallest odd >= 1.5 p / (1 - 1.5/n_s).
  EXPECT_EQ(default_trend_span(24, 7), 47);
  EXPECT_EQ(default_trend_span(168, 7), 321);
  EXPECT_GE(default_trend_span(2, 7) % 2, 1);
}

TEST(Stl, TimeSeriesOverloadAlignsComponents) {
  const auto syn = make_synthetic(6, 24, 0.2, 6);
  util::TimeSeries series(1000, 3600, syn.y);
  StlOptions opt;
  opt.period = 24;
  const auto d = stl_decompose(series, opt);
  EXPECT_EQ(d.trend.start(), 1000);
  EXPECT_EQ(d.trend.step(), 3600);
  EXPECT_EQ(d.trend.size(), series.size());
}

// Property: STL seasonal component is (approximately) zero-mean over
// each full cycle for a variety of periods.
class StlPeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(StlPeriodSweep, SeasonalRoughlyZeroMean) {
  const int period = GetParam();
  const auto syn = make_synthetic(8, period, 0.5, 7);
  StlOptions opt;
  opt.period = period;
  const auto d = stl_decompose(syn.y, opt);
  const double m = mean(d.seasonal);
  EXPECT_LT(std::abs(m), 0.5) << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(Periods, StlPeriodSweep,
                         ::testing::Values(4, 7, 12, 24, 48, 168));

// --- naive decomposition ---

TEST(Naive, RecoversSeasonalOnCleanSignal) {
  const auto syn = make_synthetic(10, 12, 0.0, 8);
  const auto d = naive_decompose(syn.y, 12);
  for (std::size_t i = 24; i + 24 < syn.y.size(); ++i) {
    EXPECT_NEAR(d.seasonal[i], syn.seasonal[i], 0.6) << i;
  }
}

TEST(Naive, ComponentsSumToSeries) {
  const auto syn = make_synthetic(6, 24, 1.0, 9);
  const auto d = naive_decompose(syn.y, 24);
  for (std::size_t i = 0; i < syn.y.size(); ++i) {
    EXPECT_NEAR(d.trend[i] + d.seasonal[i] + d.residual[i], syn.y[i], 1e-9);
  }
}

TEST(Naive, LessRobustThanStlToOutliers) {
  // The design rationale of section 2.5: STL (robust) beats the naive
  // model when bursts of outliers are present.
  auto syn = make_synthetic(12, 24, 0.3, 10);
  for (int i = 140; i < 145; ++i) syn.y[static_cast<std::size_t>(i)] += 50.0;
  StlOptions opt;
  opt.period = 24;
  opt.outer_iterations = 2;
  const auto stl = stl_decompose(syn.y, opt);
  const auto naive = naive_decompose(syn.y, 24);
  double err_stl = 0.0, err_naive = 0.0;
  for (int i = 130; i < 155; ++i) {
    err_stl += std::abs(stl.trend[static_cast<std::size_t>(i)] -
                        syn.trend[static_cast<std::size_t>(i)]);
    err_naive += std::abs(naive.trend[static_cast<std::size_t>(i)] -
                          syn.trend[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(err_stl, err_naive);
}

TEST(Naive, RejectsShortSeries) {
  std::vector<double> y(10, 1.0);
  EXPECT_THROW(naive_decompose(y, 24), std::invalid_argument);
  EXPECT_THROW(naive_decompose(y, 1), std::invalid_argument);
}

}  // namespace
}  // namespace diurnal::analysis
