// Tests for reconstruction: incremental state, 1-loss repair, FBS
// spans, and the observer-health check.
#include <gtest/gtest.h>

#include <cmath>

#include "probe/prober.h"
#include "recon/block_recon.h"
#include "recon/health.h"
#include "recon/reconstruct.h"
#include "recon/repair.h"
#include "sim/world.h"

namespace diurnal::recon {
namespace {

using probe::Observation;
using probe::ObservationVec;
using probe::ProbeWindow;
using util::time_of;

TEST(Reconstruct, Figure2Example) {
  // The paper's Figure 2: a 4-address block over 10 rounds.  Rows are
  // address states; gray cells mark when each address is scanned.
  //   .1: 0 0 0 0 1 1 1 1 1 1   scanned at rounds 1, 5, 9
  //   .2: 0 0 0 0 0 0 1 1 1 1   scanned at rounds 2, 6(->0), 7(->1)
  //   .3: 1 1 1 1 0 0 1 1 1 1   scanned at rounds 3(->1), 5(->0), 8(->1)
  //   .4: 1 1 1 1 1 1 1 1 1 1   scanned at rounds 4, 10
  // Estimates after each round: -, 2, 2, 2, 3, 2, 2, 3, 4, 4.
  ObservationVec obs{
      {1 * 60, 0, false}, {2 * 60, 1, false}, {3 * 60, 2, true},
      {4 * 60, 3, true},  {5 * 60, 0, true},  {5 * 60 + 1, 2, false},
      {6 * 60, 1, false}, {7 * 60, 1, true},  {8 * 60, 2, true},
      {9 * 60, 0, true},  {10 * 60, 3, true},
  };
  ReconOptions opt;
  opt.sample_step = 60;
  const auto r = reconstruct(obs, 4, ProbeWindow{0, 11 * 60}, opt);
  ASSERT_EQ(r.counts.size(), 11u);
  // Sample i covers [i*60,(i+1)*60) and holds the estimate at the start
  // of its interval: nothing up through round 2, .3 up (round 3), .4 up
  // (round 4), .1 up at the round-5 boundary (3) before .3 drops (2),
  // .2 up (round 7), .3 restored (round 8), then saturated at 4.
  const std::vector<double> expected{0, 0, 0, 1, 2, 3, 2, 3, 4, 4, 4};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(r.counts[i], expected[i]) << "sample " << i;
  }
  EXPECT_TRUE(r.responsive);
  EXPECT_EQ(r.observed_targets, 4);
  EXPECT_EQ(r.eb_count, 4);
}

TEST(Reconstruct, HoldsStateUntilRescanned) {
  // One address goes up at t=0 and is never rescanned: the estimate
  // stays 1 for the whole window.
  ObservationVec obs{{0, 0, true}};
  ReconOptions opt;
  opt.sample_step = 100;
  const auto r = reconstruct(obs, 8, ProbeWindow{0, 1000}, opt);
  for (std::size_t i = 0; i < r.counts.size(); ++i) {
    EXPECT_EQ(r.counts[i], 1.0);
  }
}

TEST(Reconstruct, EmptyAndUnresponsive) {
  const auto r = reconstruct({}, 16, ProbeWindow{0, 6600});
  EXPECT_FALSE(r.responsive);
  EXPECT_EQ(r.mean_reply_rate, 0.0);
  EXPECT_EQ(r.observed_targets, 0);
  const auto r0 = reconstruct({}, 0, ProbeWindow{0, 6600});
  EXPECT_EQ(r0.counts.size(), 0u);
}

TEST(Reconstruct, ReplyRate) {
  ObservationVec obs{{0, 0, true}, {1, 1, false}, {2, 2, true}, {3, 3, false}};
  const auto r = reconstruct(obs, 4, ProbeWindow{0, 100});
  EXPECT_DOUBLE_EQ(r.mean_reply_rate, 0.5);
  EXPECT_EQ(r.observations, 4u);
}

TEST(Reconstruct, FbsSpansShrinkWithFasterScanning) {
  // Address i scanned every 4 hours vs every 16 hours.
  auto make_obs = [](int eb, int interval_s, int duration_s) {
    ObservationVec v;
    for (int t = 0; t * interval_s < duration_s; ++t) {
      v.push_back(Observation{static_cast<std::uint32_t>(t * interval_s),
                              static_cast<std::uint8_t>(t % eb), true});
    }
    return v;
  };
  const int day = 86400;
  ReconOptions opt;
  const auto fast =
      reconstruct(make_obs(16, 900, 4 * day), 16, ProbeWindow{0, 4 * day}, opt);
  const auto slow =
      reconstruct(make_obs(16, 3600, 4 * day), 16, ProbeWindow{0, 4 * day}, opt);
  ASSERT_FALSE(fast.fbs_spans_seconds.empty());
  ASSERT_FALSE(slow.fbs_spans_seconds.empty());
  EXPECT_LT(fast.fbs_median_seconds(), slow.fbs_median_seconds());
  // Full cover of 16 addresses at one probe per 900 s ~ 14400 s.
  EXPECT_NEAR(fast.fbs_median_seconds(), 16 * 900, 900 * 2);
}

TEST(Repair, FixesLoneLoss) {
  // 1 0 1 per address becomes 1 1 1.
  ObservationVec s{{0, 5, true}, {10, 5, false}, {20, 5, true}};
  const auto stats = one_loss_repair(s);
  EXPECT_EQ(stats.repaired, 1u);
  EXPECT_TRUE(s[1].up);
}

TEST(Repair, LeavesRealTransitionsAlone) {
  // 0 0 1 (001), 1 1 0 (110), and 1 0 0 stay untouched.
  ObservationVec s{
      {0, 1, false}, {1, 1, false}, {2, 1, true},   // 001
      {0, 2, true},  {1, 2, true},  {2, 2, false},  // 110
      {0, 3, true},  {1, 3, false}, {2, 3, false},  // 100
  };
  const auto before = s;
  const auto stats = one_loss_repair(s);
  EXPECT_EQ(stats.repaired, 0u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i].up, before[i].up);
}

TEST(Repair, PerAddressIndependence) {
  // Interleaved addresses: the 101 pattern must be tracked per address,
  // not across the merged order.
  ObservationVec s{
      {0, 1, true},  {1, 2, false}, {2, 1, false},
      {3, 2, true},  {4, 1, true},  {5, 2, false},
  };
  const auto stats = one_loss_repair(s);
  // Address 1: 1 0 1 -> repaired. Address 2: 0 1 0 -> not repaired.
  EXPECT_EQ(stats.repaired, 1u);
  EXPECT_TRUE(s[2].up);
  EXPECT_FALSE(s[1].up);
  EXPECT_FALSE(s[5].up);
}

TEST(Repair, DoubleLossNotRepaired) {
  // 1 0 0 1: back-to-back losses are rare (p^2) and not repaired.
  ObservationVec s{{0, 9, true}, {1, 9, false}, {2, 9, false}, {3, 9, true}};
  const auto stats = one_loss_repair(s);
  EXPECT_EQ(stats.repaired, 0u);
}

TEST(Repair, ChainOfRepairs) {
  // 1 0 1 0 1: both lone zeros repaired.
  ObservationVec s{
      {0, 4, true}, {1, 4, false}, {2, 4, true}, {3, 4, false}, {4, 4, true}};
  const auto stats = one_loss_repair(s);
  EXPECT_EQ(stats.repaired, 2u);
  for (const auto& o : s) EXPECT_TRUE(o.up);
}

// --- end-to-end reconstruction against ground truth ---

sim::World& recon_world() {
  static sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 0;  // specials only
    c.seed = 5;
    return c;
  }());
  return world;
}

TEST(BlockRecon, TracksGroundTruthOnSurveyData) {
  auto& world = recon_world();
  const auto* block = world.find(world.usc_office_block());
  BlockObservationConfig oc;
  oc.observers = {probe::site('w')};
  oc.window = ProbeWindow{time_of(2020, 1, 6), time_of(2020, 1, 20)};
  oc.prober.kind = probe::ProberKind::kSurvey;
  oc.loss = probe::LossModel(probe::LossModelConfig{0, 0, 0, 'w', 1, false});
  const auto r = observe_and_reconstruct(*block, oc);
  const auto truth =
      world.truth_series(*block, oc.window.start, oc.window.end, 3600);
  ASSERT_EQ(r.counts.size(), truth.size());
  // Survey probing with no loss tracks truth within one 11-minute round
  // of staleness: the hourly sample reflects either the state at the
  // hour mark or the state one round earlier (device schedules switch
  // exactly on hour marks).
  for (std::size_t i = 2; i < truth.size(); ++i) {
    const double diff_now = std::abs(r.counts[i] - truth[i]);
    const double diff_prev = std::abs(r.counts[i] - truth[i - 1]);
    EXPECT_LE(std::min(diff_now, diff_prev), 3.0) << i;
  }
}

TEST(BlockRecon, MoreObserversShortenFbs) {
  // Four observers cover faster than one, but far from 4x: the cursors
  // share the same probe order and advance in lockstep through the busy
  // hours, so the gain comes mostly from closing the largest gap between
  // observer offsets (section 3.1 reports 65% vs 48% of blocks within
  // 6 hours, not a proportional speedup).  Aggregate over several blocks
  // to avoid single-block offset luck.
  sim::WorldConfig wc;
  wc.num_blocks = 300;
  wc.seed = 41;
  const sim::World world(wc);
  BlockObservationConfig one;
  one.observers = probe::sites_from_string("e");
  one.window = ProbeWindow{time_of(2020, 1, 1), time_of(2020, 1, 29)};
  BlockObservationConfig four = one;
  four.observers = probe::sites_from_string("ejnw");

  double sum1 = 0.0, sum4 = 0.0;
  int measured = 0;
  for (const auto& b : world.blocks()) {
    if (!sim::is_diurnal_category(b.category) || b.eb_count < 48) continue;
    const auto r1 = observe_and_reconstruct(b, one);
    const auto r4 = observe_and_reconstruct(b, four);
    if (r1.fbs_spans_seconds.empty() || r4.fbs_spans_seconds.empty()) continue;
    sum1 += r1.fbs_median_seconds();
    sum4 += r4.fbs_median_seconds();
    if (++measured >= 12) break;
  }
  ASSERT_GE(measured, 6);
  EXPECT_LT(sum4, sum1 * 0.85) << "mean FBS " << sum4 / measured << " vs "
                               << sum1 / measured;
}

TEST(BlockRecon, AdditionalObservationsShortenFbs) {
  auto& world = recon_world();
  const auto* vpn = world.find(world.usc_vpn_block());
  BlockObservationConfig base;
  base.observers = probe::sites_from_string("ejnw");
  base.window = ProbeWindow{time_of(2020, 1, 1), time_of(2020, 1, 15)};
  BlockObservationConfig extra = base;
  extra.additional_observations = true;
  const auto r0 = observe_and_reconstruct(*vpn, base);
  const auto r1 = observe_and_reconstruct(*vpn, extra);
  EXPECT_LT(r1.fbs_median_seconds(), r0.fbs_median_seconds());
  // Section 2.8's goal: all blocks scanned within ~6 hours.
  EXPECT_LE(r1.fbs_median_seconds(), 6.5 * 3600);
}

TEST(BlockRecon, OneLossRepairRestoresCongestedObserver) {
  // A Chinese block behind the congested w link: repair should raise
  // w's reply rate toward the healthy observers'.
  sim::WorldConfig wc;
  wc.num_blocks = 400;
  wc.seed = 21;
  sim::World world(wc);
  const sim::BlockProfile* target = nullptr;
  probe::LossModel loss{};
  for (const auto& b : world.blocks()) {
    if (b.category == sim::BlockCategory::kServerFarm &&
        loss.path_congested(probe::site('w'), b) && b.eb_count >= 32) {
      target = &b;
      break;
    }
  }
  ASSERT_NE(target, nullptr) << "no congested server block in sample";

  BlockObservationConfig with;
  with.observers = probe::sites_from_string("ejnw");
  with.window = ProbeWindow{time_of(2020, 1, 1), time_of(2020, 1, 22)};
  BlockObservationConfig without = with;
  without.one_loss_repair = false;

  const auto detailed_with = observe_and_reconstruct_detailed(*target, with);
  const auto detailed_without =
      observe_and_reconstruct_detailed(*target, without);

  double w_with = 0, w_without = 0, e_without = 0;
  for (const auto& p : detailed_with.per_observer) {
    if (p.code == 'w') w_with = p.result.mean_reply_rate;
  }
  for (const auto& p : detailed_without.per_observer) {
    if (p.code == 'w') w_without = p.result.mean_reply_rate;
    if (p.code == 'e') e_without = p.result.mean_reply_rate;
  }
  EXPECT_LT(w_without, e_without - 0.02);  // congestion visible
  EXPECT_GT(w_with, w_without + 0.01);     // repair helps
  // Combined reconstruction with repair beats without.
  EXPECT_GE(detailed_with.combined.mean_reply_rate,
            detailed_without.combined.mean_reply_rate);
}

TEST(Health, FlagsFaultyObservers) {
  sim::WorldConfig wc;
  wc.num_blocks = 500;
  wc.seed = 31;
  sim::World world(wc);
  HealthCheckConfig cfg;
  cfg.window = ProbeWindow{time_of(2020, 1, 1), time_of(2020, 1, 8)};
  cfg.sample_blocks = 40;
  const auto health =
      check_observers(world, probe::trinocular_sites(), cfg);
  ASSERT_EQ(health.size(), 6u);
  for (const auto& h : health) {
    const bool should_be_faulty = h.code == 'c' || h.code == 'g';
    EXPECT_EQ(!h.healthy, should_be_faulty) << h.code << " dev " << h.deviation;
  }
  const auto healthy =
      healthy_observers(world, probe::trinocular_sites(), cfg);
  ASSERT_EQ(healthy.size(), 4u);
  std::string codes;
  for (const auto& o : healthy) codes += o.code;
  EXPECT_EQ(codes, "ejnw");
}

TEST(BlockRecon, ZeroObserversYieldsUnresponsiveNotCrash) {
  // A block that no observer covers (degraded fleets can lose a whole
  // site set): the merge sees zero streams, reconstruction sees zero
  // observations, and the block must come out unresponsive with zero
  // evidence rather than crashing or inventing state.
  sim::WorldConfig wc;
  wc.num_blocks = 1;
  wc.seed = 3;
  wc.include_special_blocks = false;
  const sim::World world(wc);
  BlockObservationConfig oc;
  oc.observers = {};  // nobody probes
  oc.window = ProbeWindow{time_of(2020, 1, 1), time_of(2020, 1, 8)};
  const auto r = observe_and_reconstruct(world.blocks()[0], oc);
  EXPECT_FALSE(r.responsive);
  EXPECT_EQ(r.evidence_fraction, 0.0);
}

TEST(BlockRecon, StreamEndingBeforeWindowOpens) {
  // An observer that dies before the classify window opens delivers
  // nothing inside it.  With faults taking the only observer down for
  // the entire window, reconstruction must degrade to an empty,
  // zero-evidence result instead of carrying pre-window state in.
  sim::WorldConfig wc;
  wc.num_blocks = 40;
  wc.seed = 29;
  const sim::World world(wc);
  BlockObservationConfig oc;
  oc.observers = probe::sites_from_string("w");
  oc.window = ProbeWindow{time_of(2020, 1, 1), time_of(2020, 1, 15)};
  const auto plan = fault::FaultPlan::single_observer_dropout(
      'w', oc.window.start, oc.window.end);
  oc.faults = &plan;
  for (const auto& block : world.blocks()) {
    if (block.eb_count == 0) continue;
    const auto r = observe_and_reconstruct(block, oc);
    EXPECT_FALSE(r.responsive);
    EXPECT_EQ(r.evidence_fraction, 0.0);
  }
}

TEST(Health, AllHealthyIn2019) {
  sim::WorldConfig wc;
  wc.num_blocks = 400;
  wc.seed = 33;
  sim::World world(wc);
  HealthCheckConfig cfg;
  cfg.window = ProbeWindow{time_of(2019, 11, 1), time_of(2019, 11, 8)};
  cfg.sample_blocks = 40;
  const auto healthy =
      healthy_observers(world, probe::trinocular_sites(), cfg);
  EXPECT_EQ(healthy.size(), 6u);
}

}  // namespace
}  // namespace diurnal::recon
