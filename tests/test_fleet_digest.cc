// Fleet-digest determinism gate (tier-1): the full pipeline over the
// reference world must land on one golden digest regardless of thread
// count.  The digest hashes the funnel, every per-block verdict, and
// every detected change, so any nondeterminism — racy accumulation,
// thread-dependent draw, iteration-order dependence — or an unintended
// behavior change in probe/repair/merge/reconstruct/classify/detect
// shows up as a different hex string.  The golden value is shared with
// the bench-smoke CI gate (bench/common.cc).
//
// Suite size note: the full ctest suite is 403 tests as of the
// validation harness (tests/test_validate.cc adds 19, plus the
// golden_mix cross-pin below); if a refactor drops registered tests,
// this gate may still pass while coverage silently shrank -- check
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include "core/digest.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "fault/fault_plan.h"
#include "sim/world.h"
#include "validate/harness.h"
#include "validate/scenario.h"

namespace diurnal {
namespace {

// The bench_fleet reference configuration (BENCH_fleet.json provenance).
constexpr char kGoldenDigest[] = "f94c66488def6938";

const sim::World& golden_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 2000;
    c.seed = 1;
    return c;
  }());
  return world;
}

core::FleetConfig golden_config(int threads) {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = threads;
  return fc;
}

TEST(FleetDigest, GoldenDigestSingleThread) {
  const auto result = core::run_fleet(golden_world(), golden_config(1));
  EXPECT_EQ(core::digest_hex(core::fleet_digest(result)), kGoldenDigest);
}

TEST(FleetDigest, GoldenDigestEightThreads) {
  const auto result = core::run_fleet(golden_world(), golden_config(8));
  EXPECT_EQ(core::digest_hex(core::fleet_digest(result)), kGoldenDigest);
}

TEST(FleetDigest, FaultPlanRunIsThreadCountInvariant) {
  // A seeded fault plan must not reintroduce thread-count dependence:
  // injection is a pure function of (plan seed, observer, time), so the
  // degraded fleet hashes identically at 1 and 8 workers.
  auto fc1 = golden_config(1);
  fc1.faults = fault::scenario("dropout", fc1.dataset.window());
  const auto d1 = core::fleet_digest(core::run_fleet(golden_world(), fc1));

  auto fc8 = golden_config(8);
  fc8.faults = fault::scenario("dropout", fc8.dataset.window());
  const auto d8 = core::fleet_digest(core::run_fleet(golden_world(), fc8));

  EXPECT_EQ(core::digest_hex(d1), core::digest_hex(d8));
  // And the degraded run must differ from the healthy golden run — the
  // digest actually sees the fault layer's effects.
  EXPECT_NE(core::digest_hex(d1), kGoldenDigest);
}

TEST(FleetDigest, BatchWidthInvariantOnBatchDrive) {
  // The batched SoA kernels promise bit identity at every width: the
  // scalar path (width 1), a ragged odd width, a narrow batch, and the
  // default full width must all land on the golden digest.
  for (const int width : {1, 2, 5}) {
    auto fc = golden_config(2);
    fc.analysis_batch_width = width;
    const auto result = core::run_fleet(golden_world(), fc);
    EXPECT_EQ(core::digest_hex(core::fleet_digest(result)), kGoldenDigest)
        << "width " << width;
  }
}

TEST(FleetDigest, BatchWidthInvariantOnStreamingDrive) {
  // The incremental drive batches flushes at worker boundaries, a
  // different grouping than the batch drive — the digest must not see
  // the difference at any width.
  for (const int width : {1, 5, 0}) {
    auto fc = golden_config(2);
    fc.analysis_batch_width = width;
    core::StreamingFleet fleet(golden_world(), fc);
    const util::SimTime mid =
        fleet.window_start() +
        (fleet.window_end() - fleet.window_start()) / 2;
    fleet.advance_to(mid);
    fleet.advance_to(fleet.window_end());
    const auto result = fleet.finalize();
    EXPECT_EQ(core::digest_hex(core::fleet_digest(result)), kGoldenDigest)
        << "width " << width;
  }
}

TEST(FleetDigest, BatchWidthInvariantUnderFaults) {
  // Degraded runs route blocks through the low-evidence annotations and
  // NaN-gap kernels; the scalar and batched paths must still agree.
  auto scalar_fc = golden_config(1);
  scalar_fc.faults = fault::scenario("dropout", scalar_fc.dataset.window());
  scalar_fc.analysis_batch_width = 1;
  const auto scalar_digest =
      core::fleet_digest(core::run_fleet(golden_world(), scalar_fc));

  auto batched_fc = golden_config(2);
  batched_fc.faults = fault::scenario("dropout", batched_fc.dataset.window());
  batched_fc.analysis_batch_width = 0;
  const auto batched_digest =
      core::fleet_digest(core::run_fleet(golden_world(), batched_fc));

  EXPECT_EQ(core::digest_hex(scalar_digest), core::digest_hex(batched_digest));
}

TEST(FleetDigest, ValidationGoldenMixScenarioReproducesGoldenDigest) {
  // The validation catalog's golden_mix scenario is the same world and
  // pipeline configuration as this file's reference run: the accuracy
  // harness and the perf gate must stay anchored to one digest, so an
  // accuracy "improvement" that silently changes default pipeline
  // behavior fails here.
  const auto* s = validate::find_scenario("golden_mix");
  ASSERT_NE(s, nullptr);
  const auto run = validate::run_scenario(*s, validate::Drive::kBatch, 4);
  EXPECT_EQ(core::digest_hex(run.digest), kGoldenDigest);
  EXPECT_TRUE(validate::check_expectations(*s, run).empty());
}

}  // namespace
}  // namespace diurnal
