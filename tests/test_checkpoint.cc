// Checkpoint/restore property tests: externalized state must be
// invisible in the output.
//
// The contract under test (util/state_io.h, core/checkpoint.h,
// DESIGN.md section 11): a run that snapshots its state and a fresh
// process that restores it finalize bitwise-identical to an
// uninterrupted run — same golden fleet digest — at every tested epoch
// boundary and shard boundary, across thread counts, with and without
// fault plans; and every corrupt, truncated, or foreign state image is
// rejected with a typed StateError (then recomputed), never silently
// misread.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <functional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cusum.h"
#include "core/aggregate.h"
#include "core/checkpoint.h"
#include "core/digest.h"
#include "core/pipeline.h"
#include "core/series_store.h"
#include "core/shard.h"
#include "core/streaming.h"
#include "fault/fault_plan.h"
#include "recon/stream.h"
#include "sim/world.h"
#include "util/date.h"
#include "util/mem.h"
#include "util/state_io.h"

namespace diurnal {
namespace {

using util::StateError;
using util::StateErrorKind;
using util::StateReader;
using util::StateWriter;

// Shared with tests/test_fleet_digest.cc and the bench-smoke CI gate.
constexpr char kGoldenDigest[] = "f94c66488def6938";

StateErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StateError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a StateError";
  return StateErrorKind::kIo;
}

std::filesystem::path temp_dir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() /
      ("diurnal_ckpt_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// state_io: framing, packing, corruption
// ---------------------------------------------------------------------------

TEST(StateIo, PrimitivesRoundTripInBothPackings) {
  for (const bool varint : {true, false}) {
    StateWriter w(varint);
    w.begin_section(util::state_tag("TST1"));
    w.u8(0x7f);
    w.u32(0);
    w.u32(0xdeadbeefu);
    w.u64(0xffffffffffffffffULL);
    w.i64(-1);
    w.i64(1234567890123LL);
    w.f64(-0.1);
    w.boolean(true);
    w.boolean(false);
    w.str("checkpoint");
    w.str("");
    w.end_section();
    w.begin_section(util::state_tag("TST2"));
    w.u64(42);
    w.end_section();

    StateReader r(w.bytes());
    EXPECT_EQ(r.version(), util::kStateFormatVersion);
    r.begin_section(util::state_tag("TST1"));
    EXPECT_EQ(r.u8(), 0x7f);
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0xffffffffffffffffULL);
    EXPECT_EQ(r.i64(), -1);
    EXPECT_EQ(r.i64(), 1234567890123LL);
    EXPECT_EQ(r.f64(), -0.1);
    EXPECT_TRUE(r.boolean());
    EXPECT_FALSE(r.boolean());
    EXPECT_EQ(r.str(), "checkpoint");
    EXPECT_EQ(r.str(), "");
    r.end_section();
    EXPECT_TRUE(r.has_section());
    r.begin_section(util::state_tag("TST2"));
    EXPECT_EQ(r.u64(), 42u);
    r.end_section();
    EXPECT_FALSE(r.has_section());
  }
}

TEST(StateIo, F64SpanRoundTripsBitwiseOnBothPaths) {
  // Integral counts take the varint path, anything else the raw path;
  // both must round-trip the exact bit patterns.
  const std::vector<double> integral{0, 1, 254, 1e12, 4503599627370495.0};
  const std::vector<double> awkward{0.5, -0.0, -3.25, 1e300,
                                    std::nan("1"), 2.0};
  for (const auto& values : {integral, awkward}) {
    StateWriter w;
    w.begin_section(util::state_tag("SPAN"));
    w.f64_span(values);
    w.end_section();
    StateReader r(w.bytes());
    r.begin_section(util::state_tag("SPAN"));
    std::vector<double> got;
    r.f64_span(got);
    r.end_section();
    ASSERT_EQ(got.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      std::memcpy(&a, &values[i], 8);
      std::memcpy(&b, &got[i], 8);
      EXPECT_EQ(a, b) << "sample " << i;
    }
  }
}

TEST(StateIo, EveryCorruptionIsATypedError) {
  StateWriter w;
  w.begin_section(util::state_tag("BODY"));
  for (int i = 0; i < 64; ++i) w.u64(static_cast<std::uint64_t>(i) * 977);
  w.end_section();
  const std::vector<std::uint8_t> clean = w.bytes();
  const auto read_all = [](const std::vector<std::uint8_t>& image) {
    StateReader r(image);
    r.begin_section(util::state_tag("BODY"));
    for (int i = 0; i < 64; ++i) (void)r.u64();
    r.end_section();
  };
  read_all(clean);  // sanity: the clean image parses

  auto flipped = clean;
  flipped[flipped.size() - 3] ^= 0x40;  // payload byte
  EXPECT_EQ(kind_of([&] { read_all(flipped); }), StateErrorKind::kBadCrc);

  auto truncated = clean;
  truncated.resize(truncated.size() - 5);
  EXPECT_EQ(kind_of([&] { read_all(truncated); }),
            StateErrorKind::kTruncated);

  auto bad_magic = clean;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(kind_of([&] { read_all(bad_magic); }), StateErrorKind::kBadMagic);

  auto bad_endian = clean;  // sentinel bytes live right after the magic
  std::swap(bad_endian[8], bad_endian[11]);
  std::swap(bad_endian[9], bad_endian[10]);
  EXPECT_EQ(kind_of([&] { read_all(bad_endian); }),
            StateErrorKind::kBadEndian);

  auto bad_version = clean;  // version field follows the sentinel
  bad_version[12] ^= 0x08;
  EXPECT_EQ(kind_of([&] { read_all(bad_version); }),
            StateErrorKind::kBadVersion);

  EXPECT_EQ(kind_of([&] {
              StateReader r(clean);
              r.begin_section(util::state_tag("ELSE"));
            }),
            StateErrorKind::kBadSection);

  EXPECT_EQ(kind_of([&] {
              StateReader r(clean);
              r.begin_section(util::state_tag("BODY"));
              (void)r.u64();
              r.end_section();  // payload not fully consumed
            }),
            StateErrorKind::kBadSection);

  EXPECT_EQ(kind_of([&] { StateReader r(std::vector<std::uint8_t>{}); }),
            StateErrorKind::kTruncated);
}

TEST(StateIo, UnknownHeaderFlagBitsAreRejected) {
  // A future writer setting flag bits this reader does not understand
  // must be refused up front, not half-parsed.  Bit 0 is the varint
  // packing flag; the header flags field starts at offset 16.
  StateWriter w;
  w.begin_section(util::state_tag("FLAG"));
  w.u64(1);
  w.end_section();
  auto image = w.bytes();
  image[16] |= 0x02;
  EXPECT_EQ(kind_of([&] { StateReader r(image); }),
            StateErrorKind::kBadValue);
}

TEST(StateIo, SkipSectionValidatesFramingWithoutDecoding) {
  StateWriter w;
  w.begin_section(util::state_tag("SKP1"));
  w.str("a section this consumer does not understand");
  w.end_section();
  w.begin_section(util::state_tag("SKP2"));
  w.u64(99);
  w.end_section();
  StateReader r(w.bytes());
  EXPECT_EQ(r.next_tag(), util::state_tag("SKP1"));
  r.skip_section();  // unknown content skipped, CRC still enforced
  EXPECT_EQ(r.next_tag(), util::state_tag("SKP2"));
  r.begin_section(util::state_tag("SKP2"));
  EXPECT_EQ(r.u64(), 99u);
  r.end_section();
  EXPECT_FALSE(r.has_section());
}

TEST(StateIo, BitFlipFuzzEveryMutationIsATypedError) {
  // Randomized single-bit-flip fuzz over a real engine image: every
  // byte of a state image is covered by either header validation or a
  // section CRC, so whatever bit flips, walking the image must throw a
  // typed StateError — never crash, hang, or accept silently.
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 40;
    c.seed = 11;
    return c;
  }());
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020w1-ejnw");
  fc.threads = 1;
  core::StreamingFleet engine(world, fc);
  engine.advance_to(engine.window_start() + 4 * util::kSecondsPerDay);
  StateWriter w;
  engine.save(w);
  const std::vector<std::uint8_t> clean = w.bytes();
  ASSERT_GT(clean.size(), 64u);

  const auto parse = [](const std::vector<std::uint8_t>& image) {
    StateReader r(image);
    while (r.has_section()) r.skip_section();
  };
  parse(clean);  // sanity: the clean image walks

  std::mt19937_64 rng(0xD1U);
  std::uniform_int_distribution<std::size_t> pos(0, clean.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  std::size_t rejected = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    auto mutated = clean;
    mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    try {
      parse(mutated);
    } catch (const StateError&) {
      ++rejected;
      continue;
    }
    // Any other exception type aborts the test run by itself.
    ADD_FAILURE() << "bit flip at trial " << trial
                  << " was silently accepted";
  }
  EXPECT_EQ(rejected, 1000u);

  // And the real consumer agrees: a mutated image never restores.
  std::size_t restore_rejected = 0;
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = clean;
    mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    core::StreamingFleet fresh(world, fc);
    try {
      StateReader r(mutated);
      fresh.restore(r);
    } catch (const StateError&) {
      ++restore_rejected;
    }
  }
  EXPECT_EQ(restore_rejected, 100u);
}

TEST(StateIo, TruncationFuzzEveryPrefixIsATypedError) {
  // Every strict prefix of a valid image must surface as kTruncated,
  // kBadCrc or kBadSection — never a crash and never a clean walk.
  StateWriter w;
  w.begin_section(util::state_tag("TRNC"));
  for (int i = 0; i < 256; ++i) w.u64(static_cast<std::uint64_t>(i) * 31);
  w.end_section();
  w.begin_section(util::state_tag("TAIL"));
  w.str("tail section");
  w.end_section();
  const std::vector<std::uint8_t> clean = w.bytes();

  std::mt19937_64 rng(0x7CU);
  std::uniform_int_distribution<std::size_t> cut(0, clean.size() - 1);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = clean;
    mutated.resize(cut(rng));
    // The one structurally valid prefix is the bare 20-byte header — an
    // empty image.  The reader cannot know sections were lost, but any
    // consumer asking for its expected section still gets kTruncated.
    bool walked_empty = false;
    try {
      StateReader r(mutated);
      while (r.has_section()) r.skip_section();
      walked_empty = true;
    } catch (const StateError& e) {
      EXPECT_TRUE(e.kind() == StateErrorKind::kTruncated ||
                  e.kind() == StateErrorKind::kBadCrc ||
                  e.kind() == StateErrorKind::kBadSection)
          << "cut " << mutated.size() << " gave kind "
          << static_cast<int>(e.kind());
    }
    if (walked_empty) {
      EXPECT_FALSE(StateReader(mutated).has_section())
          << "a section-bearing prefix walked cleanly at cut "
          << mutated.size();
      EXPECT_EQ(kind_of([&] {
                  StateReader r(mutated);
                  r.begin_section(util::state_tag("TRNC"));
                }),
                StateErrorKind::kTruncated);
    }
  }
}

TEST(StateIo, ConcurrentWritersToOneDirectoryNeverTearAFile) {
  // Regression for the fixed staging-name collision: concurrent
  // write_state_file calls into one directory (distinct paths, shared
  // prefix) must each land a complete, parseable image.
  const auto dir = temp_dir("concurrent_write");
  constexpr int kWriters = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        StateWriter w;
        w.begin_section(util::state_tag("CONC"));
        w.u64(static_cast<std::uint64_t>(t));
        w.u64(static_cast<std::uint64_t>(round));
        w.end_section();
        util::write_state_file(
            (dir / ("writer-" + std::to_string(t) + ".ckpt")).string(),
            w.bytes());
      }
    });
  }
  for (auto& t : writers) t.join();
  for (int t = 0; t < kWriters; ++t) {
    const auto image = util::read_state_file(
        (dir / ("writer-" + std::to_string(t) + ".ckpt")).string());
    StateReader r(image);
    r.begin_section(util::state_tag("CONC"));
    EXPECT_EQ(r.u64(), static_cast<std::uint64_t>(t));
    EXPECT_EQ(r.u64(), static_cast<std::uint64_t>(kRounds - 1));
    r.end_section();
  }
  // No staging leftovers either.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".ckpt")
        << "staging file leaked: " << entry.path();
  }
  std::filesystem::remove_all(dir);
}

TEST(StateIo, AtomicFileWriteRoundTripsAndMissingFileIsIo) {
  const auto dir = temp_dir("stateio");
  const std::string path = (dir / "image.ckpt").string();
  StateWriter w;
  w.begin_section(util::state_tag("FILE"));
  w.str("payload");
  w.end_section();
  util::write_state_file(path, w.bytes());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // renamed away
  const auto image = util::read_state_file(path);
  StateReader r(image);
  r.begin_section(util::state_tag("FILE"));
  EXPECT_EQ(r.str(), "payload");
  r.end_section();
  EXPECT_EQ(kind_of([&] {
              (void)util::read_state_file((dir / "absent.ckpt").string());
            }),
            StateErrorKind::kIo);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Layer round-trips: CUSUM, series store, aggregator
// ---------------------------------------------------------------------------

TEST(CusumCheckpoint, MidStreamRestoreMatchesUninterrupted) {
  // A drifting series with one planted level shift; cut the stream at
  // several points, including inside the post-alarm excursion scan.
  std::vector<double> x;
  for (int i = 0; i < 400; ++i) {
    const double base = i < 200 ? 0.0 : -6.0;
    x.push_back(base + 0.8 * std::sin(i * 0.7) + 0.3 * std::cos(i * 1.3));
  }
  analysis::OnlineCusum whole;
  whole.begin({1.0, 0.001});
  for (const double v : x) whole.push(v);
  const auto want = whole.finish();

  for (const std::size_t cut : {std::size_t{1}, std::size_t{150},
                                std::size_t{201}, std::size_t{399}}) {
    analysis::OnlineCusum first;
    first.begin({1.0, 0.001});
    for (std::size_t i = 0; i < cut; ++i) first.push(x[i]);
    StateWriter w;
    w.begin_section(util::state_tag("CSUM"));
    first.save(w);
    w.end_section();

    analysis::OnlineCusum second;  // restore needs no begin()
    StateReader r(w.bytes());
    r.begin_section(util::state_tag("CSUM"));
    second.restore(r);
    r.end_section();
    for (std::size_t i = cut; i < x.size(); ++i) second.push(x[i]);
    const auto got = second.finish();

    ASSERT_EQ(got.changes.size(), want.changes.size()) << "cut " << cut;
    for (std::size_t i = 0; i < want.changes.size(); ++i) {
      EXPECT_EQ(got.changes[i].start, want.changes[i].start);
      EXPECT_EQ(got.changes[i].alarm, want.changes[i].alarm);
      EXPECT_EQ(got.changes[i].end, want.changes[i].end);
      EXPECT_EQ(got.changes[i].direction, want.changes[i].direction);
      EXPECT_EQ(got.changes[i].amplitude, want.changes[i].amplitude);
    }
    EXPECT_EQ(got.g_pos, want.g_pos) << "cut " << cut;
    EXPECT_EQ(got.g_neg, want.g_neg) << "cut " << cut;
  }
}

TEST(SeriesStoreCheckpoint, RoundTripsGeometryLengthsAndSamples) {
  core::SeriesStore store;
  store.reset(3, 8, 1234567, 3600);
  for (std::size_t i = 0; i < 3; ++i) {
    auto row = store.row(i);
    for (std::size_t j = 0; j < 2 * i + 1; ++j) {
      row[j] = static_cast<double>(i * 100 + j) + 0.25;
    }
    store.set_len(i, 2 * i + 1);
  }
  StateWriter w;
  w.begin_section(util::state_tag("STOR"));
  store.save(w);
  w.end_section();

  core::SeriesStore got;
  StateReader r(w.bytes());
  r.begin_section(util::state_tag("STOR"));
  got.restore(r);
  r.end_section();
  ASSERT_EQ(got.rows(), store.rows());
  EXPECT_EQ(got.stride(), store.stride());
  EXPECT_EQ(got.start(), store.start());
  EXPECT_EQ(got.step(), store.step());
  for (std::size_t i = 0; i < store.rows(); ++i) {
    ASSERT_EQ(got.len(i), store.len(i)) << "row " << i;
    const auto a = store.series(i);
    const auto b = got.series(i);
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j], b[j]) << "row " << i << " sample " << j;
    }
  }
}

TEST(AggregatorCheckpoint, RestoredAggregatorMergesLikeTheOriginal) {
  const util::SimTime day = util::kSecondsPerDay;
  core::ChangeAggregator agg(0, 10 * day);
  std::vector<core::DetectedChange> changes(2);
  changes[0].alarm = 3 * day + 100;
  changes[0].direction = analysis::ChangeDirection::kDown;
  changes[1].alarm = 7 * day;
  changes[1].direction = analysis::ChangeDirection::kUp;
  agg.add_block(geo::GridCell{10, -20}, geo::Continent::kEurope, changes);
  agg.add_block(geo::GridCell{10, -20}, geo::Continent::kEurope, {});
  agg.add_block(geo::GridCell{-3, 44}, geo::Continent::kAsia,
                {changes.begin(), changes.begin() + 1});

  StateWriter w;
  w.begin_section(util::state_tag("AGGR"));
  agg.save(w);
  w.end_section();
  core::ChangeAggregator got;  // default-constructed target
  StateReader r(w.bytes());
  r.begin_section(util::state_tag("AGGR"));
  got.restore(r);
  r.end_section();

  ASSERT_EQ(got.days(), agg.days());
  EXPECT_EQ(got.start(), agg.start());
  ASSERT_EQ(got.by_cell().size(), agg.by_cell().size());
  for (const auto& [cell, series] : agg.by_cell()) {
    const auto it = got.by_cell().find(cell);
    ASSERT_NE(it, got.by_cell().end());
    EXPECT_EQ(it->second.change_sensitive_blocks,
              series.change_sensitive_blocks);
    EXPECT_EQ(it->second.down, series.down);
    EXPECT_EQ(it->second.up, series.up);
  }
  // A restored aggregator must behave as a merge source exactly like
  // the original (the resume path folds restored shard aggregators).
  core::ChangeAggregator into_a(0, 10 * day);
  core::ChangeAggregator into_b(0, 10 * day);
  into_a.merge_from(agg);
  into_b.merge_from(got);
  EXPECT_EQ(into_a.continent(geo::Continent::kEurope).down,
            into_b.continent(geo::Continent::kEurope).down);
  EXPECT_EQ(into_a.by_cell().size(), into_b.by_cell().size());
}

// ---------------------------------------------------------------------------
// recon: BlockStream mid-window snapshot
// ---------------------------------------------------------------------------

const sim::World& recon_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 60;
    c.seed = 7;
    return c;
  }());
  return world;
}

const sim::BlockProfile& responsive_block(std::size_t skip) {
  for (const auto& b : recon_world().blocks()) {
    if (b.eb_count > 0 && skip-- == 0) return b;
  }
  throw std::runtime_error("no responsive block");
}

TEST(BlockStreamCheckpoint, MidWindowRestoreFinalizesIdentically) {
  const auto ds = core::dataset("2020w2-ejnw");
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.window = ds.window();
  const auto span = oc.window.end - oc.window.start;
  for (const char* scenario : {"none", "dropout", "meltdown"}) {
    const auto plan = fault::scenario(scenario, oc.window);
    oc.faults = &plan;
    for (std::size_t b = 0; b < 3; ++b) {
      const auto& block = responsive_block(b);
      probe::ProbeScratch scratch;

      recon::BlockStream whole;
      whole.begin(block, oc, scratch);
      whole.advance_to(oc.window.end);
      recon::DegradedReconResult want;
      whole.finalize(want);

      for (const int eighth : {1, 4, 7}) {
        const util::SimTime cut = oc.window.start + span * eighth / 8;
        recon::BlockStream first;
        first.begin(block, oc, scratch);
        first.advance_to(cut);
        StateWriter w;
        w.begin_section(util::state_tag("STRM"));
        first.save(w);
        w.end_section();

        recon::BlockStream second;
        second.begin(block, oc, scratch);  // identical args, then restore
        StateReader r(w.bytes());
        r.begin_section(util::state_tag("STRM"));
        second.restore(r);
        r.end_section();
        second.advance_to(oc.window.end);
        recon::DegradedReconResult got;
        second.finalize(got);

        ASSERT_EQ(got.recon.counts.size(), want.recon.counts.size());
        for (std::size_t i = 0; i < want.recon.counts.size(); ++i) {
          ASSERT_EQ(got.recon.counts[i], want.recon.counts[i])
              << scenario << " block " << b << " cut " << eighth
              << "/8 sample " << i;
        }
        EXPECT_EQ(got.recon.evidence_fraction, want.recon.evidence_fraction);
        EXPECT_EQ(got.recon.max_gap_seconds, want.recon.max_gap_seconds);
        EXPECT_EQ(got.recon.observations, want.recon.observations);
        EXPECT_EQ(got.recon.max_active, want.recon.max_active);
        ASSERT_EQ(got.observers.size(), want.observers.size());
        for (std::size_t i = 0; i < want.observers.size(); ++i) {
          EXPECT_EQ(got.observers[i].observations,
                    want.observers[i].observations);
          EXPECT_EQ(got.observers[i].faults.dropped,
                    want.observers[i].faults.dropped);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// core: StreamingFleet epoch-boundary snapshots (the golden digest gate)
// ---------------------------------------------------------------------------

const sim::World& golden_world() {
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 2000;
    c.seed = 1;
    return c;
  }());
  return world;
}

core::FleetConfig golden_config(int threads) {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = threads;
  return fc;
}

/// Advances to `cut`, snapshots, restores into a fresh engine (possibly
/// with a different thread count), finishes the window in daily epochs,
/// and returns the finalized digest.
std::string cut_and_resume_digest(const sim::World& world,
                                  const core::FleetConfig& save_cfg,
                                  const core::FleetConfig& resume_cfg,
                                  double cut_fraction) {
  core::StreamingFleet first(world, save_cfg);
  const auto span = first.window_end() - first.window_start();
  const util::SimTime cut =
      first.window_start() +
      static_cast<util::SimTime>(span * cut_fraction);
  // Reach the cut in a couple of epochs so the snapshot carries real
  // provisional-detector state, not just a first-epoch skeleton.
  first.advance_to(first.window_start() + span / 10);
  first.advance_to(cut);
  StateWriter w;
  first.save(w);

  core::StreamingFleet second(world, resume_cfg);
  StateReader r(w.bytes());
  second.restore(r);
  EXPECT_EQ(second.clock(), cut);
  for (util::SimTime t = second.clock() + util::kSecondsPerDay;;
       t += util::kSecondsPerDay) {
    const auto bounded = std::min(t, second.window_end());
    second.advance_to(bounded);
    if (bounded == second.window_end()) break;
  }
  return core::digest_hex(core::fleet_digest(second.finalize()));
}

TEST(FleetCheckpoint, GoldenDigestSurvivesEveryCutAndThreadHop) {
  // Cut points early (nothing screened), mid-window (watch + provisional
  // CUSUM state live), and late (trailing STL windows stretched), saved
  // and restored across thread counts both ways.
  for (const double cut : {0.25, 0.55, 0.9}) {
    EXPECT_EQ(cut_and_resume_digest(golden_world(), golden_config(1),
                                    golden_config(8), cut),
              kGoldenDigest)
        << "cut " << cut << " save@1 resume@8";
    EXPECT_EQ(cut_and_resume_digest(golden_world(), golden_config(8),
                                    golden_config(1), cut),
              kGoldenDigest)
        << "cut " << cut << " save@8 resume@1";
  }
}

TEST(FleetCheckpoint, SnapshotBeforeFirstAdvanceIsAValidCheckpoint) {
  core::StreamingFleet first(golden_world(), golden_config(4));
  StateWriter w;
  first.save(w);  // no cells yet
  core::StreamingFleet second(golden_world(), golden_config(4));
  StateReader r(w.bytes());
  second.restore(r);
  EXPECT_EQ(second.clock(), second.window_start());
  EXPECT_EQ(core::digest_hex(core::fleet_digest(second.run_to_completion())),
            kGoldenDigest);
}

TEST(FleetCheckpoint, FaultPlanRunRestoresBitIdentically) {
  auto fc = golden_config(2);
  fc.faults = fault::scenario("dropout", fc.dataset.window());
  const auto want = core::digest_hex(
      core::fleet_digest(core::run_fleet(golden_world(), fc)));
  auto resume_fc = fc;
  resume_fc.threads = 8;
  EXPECT_EQ(cut_and_resume_digest(golden_world(), fc, resume_fc, 0.5), want);
}

TEST(FleetCheckpoint, SplitWindowModesRestoreAroundTheClassifyBoundary) {
  // kUnion (classification forked from the detection pass) and
  // kSeparate (dedicated classification pass): cut once before the
  // classification boundary (forked recon / verdict pending in the
  // snapshot) and once after (mid-run verdicts in the snapshot).
  static const sim::World world([] {
    sim::WorldConfig c;
    c.num_blocks = 250;
    c.seed = 3;
    return c;
  }());
  for (const bool fuse : {true, false}) {
    core::FleetConfig fc;
    fc.dataset = core::dataset("2020m1-ejnw");
    fc.classify_dataset = core::dataset("2020w1-ejnw");  // 1-week prefix
    fc.fuse_observation_windows = fuse;
    fc.threads = 2;
    const auto want =
        core::digest_hex(core::fleet_digest(core::run_fleet(world, fc)));
    for (const double cut : {0.15, 0.6}) {  // boundary sits at 0.25
      EXPECT_EQ(cut_and_resume_digest(world, fc, fc, cut), want)
          << (fuse ? "kUnion" : "kSeparate") << " cut " << cut;
    }
  }
}

TEST(FleetCheckpoint, ForeignSnapshotIsRejected) {
  core::StreamingFleet engine(golden_world(), golden_config(2));
  engine.advance_to(engine.window_start() + 3 * util::kSecondsPerDay);
  StateWriter w;
  engine.save(w);

  // Different dataset: window mismatch.
  auto other = golden_config(2);
  other.dataset = core::dataset("2020w2-ejnw");
  core::StreamingFleet wrong_window(golden_world(), other);
  EXPECT_EQ(kind_of([&] {
              StateReader r(w.bytes());
              wrong_window.restore(r);
            }),
            StateErrorKind::kBadValue);

  // Same config, different world size: cell-count mismatch.
  static const sim::World small([] {
    sim::WorldConfig c;
    c.num_blocks = 100;
    c.seed = 1;
    return c;
  }());
  core::StreamingFleet wrong_world(small, golden_config(2));
  EXPECT_EQ(kind_of([&] {
              StateReader r(w.bytes());
              wrong_world.restore(r);
            }),
            StateErrorKind::kBadValue);
}

// ---------------------------------------------------------------------------
// shard: kill-mid-run resume from the manifest
// ---------------------------------------------------------------------------

sim::WorldConfig shard_world_config() {
  sim::WorldConfig wc;
  wc.num_blocks = 500;
  wc.seed = 97;
  return wc;
}

core::FleetConfig shard_fleet_config(int threads) {
  core::FleetConfig fc;
  fc.dataset = core::dataset("2020m1-ejnw");
  fc.threads = threads;
  return fc;
}

void expect_same_aggregate(const core::ChangeAggregator& a,
                           const core::ChangeAggregator& b) {
  ASSERT_EQ(a.days(), b.days());
  ASSERT_EQ(a.by_cell().size(), b.by_cell().size());
  for (const auto& [cell, series] : a.by_cell()) {
    const auto it = b.by_cell().find(cell);
    ASSERT_NE(it, b.by_cell().end());
    EXPECT_EQ(series.change_sensitive_blocks,
              it->second.change_sensitive_blocks);
    EXPECT_EQ(series.down, it->second.down);
    EXPECT_EQ(series.up, it->second.up);
  }
  for (std::size_t c = 0; c < a.by_continent().size(); ++c) {
    EXPECT_EQ(a.by_continent()[c].down, b.by_continent()[c].down);
    EXPECT_EQ(a.by_continent()[c].up, b.by_continent()[c].up);
    EXPECT_EQ(a.by_continent()[c].change_sensitive_blocks,
              b.by_continent()[c].change_sensitive_blocks);
  }
}

TEST(ShardCheckpoint, KillMidRunThenResumeMatchesUninterrupted) {
  const auto wc = shard_world_config();
  const auto fc = shard_fleet_config(2);
  const sim::World world(wc);
  const auto ref = core::run_fleet(world, fc);
  const auto ref_digest = core::digest_hex(core::fleet_digest(ref));
  const auto ref_agg = core::aggregate_changes(world, ref, fc);

  const auto dir = temp_dir("kill_resume");
  core::ShardConfig sc;
  sc.shard_size = 64;  // 8 shards over ~504 blocks
  sc.checkpoint_dir = dir.string();

  // "Kill" after 3 shards: the capped run records exactly 3 checkpoint
  // files and a manifest, then stops.
  auto capped = sc;
  capped.max_shards = 3;
  const auto partial = core::run_sharded_fleet(wc, fc, capped);
  EXPECT_EQ(partial.stats.completed_shards, 3u);
  EXPECT_EQ(partial.stats.resumed_shards, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir / "manifest.ckpt"));

  // Resume in a "fresh process" (new manager, new scheduler): the three
  // recorded shards load, the rest compute, and the merged result is
  // bitwise what an uninterrupted run produces.
  auto resumed = sc;
  resumed.resume = true;
  const auto full = core::run_sharded_fleet(wc, fc, resumed);
  EXPECT_EQ(full.stats.resumed_shards, 3u);
  EXPECT_EQ(full.stats.completed_shards, full.stats.shards - 3u);
  EXPECT_EQ(core::digest_hex(core::fleet_digest(full.fleet)), ref_digest);
  expect_same_aggregate(ref_agg, full.aggregate);

  // Resuming a finished run computes nothing and still matches.
  const auto again = core::run_sharded_fleet(wc, fc, resumed);
  EXPECT_EQ(again.stats.resumed_shards, again.stats.shards);
  EXPECT_EQ(again.stats.completed_shards, 0u);
  EXPECT_EQ(core::digest_hex(core::fleet_digest(again.fleet)), ref_digest);
  std::filesystem::remove_all(dir);
}

TEST(ShardCheckpoint, CorruptShardFileIsRecomputedNotTrusted) {
  const auto wc = shard_world_config();
  const auto fc = shard_fleet_config(2);
  const auto ref_digest = core::digest_hex(
      core::fleet_digest(core::run_fleet(sim::World(wc), fc)));

  const auto dir = temp_dir("corrupt_shard");
  core::ShardConfig sc;
  sc.shard_size = 64;
  sc.checkpoint_dir = dir.string();
  const auto first = core::run_sharded_fleet(wc, fc, sc);
  const std::size_t n_shards = first.stats.shards;

  // Flip one payload byte in one shard file and truncate another: both
  // must be rejected (kBadCrc / kTruncated under the hood) and simply
  // recomputed.
  {
    auto image = util::read_state_file((dir / "shard-1.ckpt").string());
    image[image.size() / 2] ^= 0xff;
    util::write_state_file((dir / "shard-1.ckpt").string(), image);
    auto short_image =
        util::read_state_file((dir / "shard-2.ckpt").string());
    short_image.resize(short_image.size() / 2);
    util::write_state_file((dir / "shard-2.ckpt").string(), short_image);
  }
  auto resumed = sc;
  resumed.resume = true;
  const auto full = core::run_sharded_fleet(wc, fc, resumed);
  EXPECT_EQ(full.stats.resumed_shards, n_shards - 2);
  EXPECT_EQ(full.stats.completed_shards, 2u);
  EXPECT_EQ(core::digest_hex(core::fleet_digest(full.fleet)), ref_digest);

  // A mangled manifest degrades to a fresh (but still correct) run.
  {
    auto image = util::read_state_file((dir / "manifest.ckpt").string());
    image.resize(10);
    util::write_state_file((dir / "manifest.ckpt").string(), image);
  }
  const auto fresh = core::run_sharded_fleet(wc, fc, resumed);
  EXPECT_EQ(fresh.stats.resumed_shards, 0u);
  EXPECT_EQ(core::digest_hex(core::fleet_digest(fresh.fleet)), ref_digest);
  std::filesystem::remove_all(dir);
}

TEST(ShardCheckpoint, FinalizeManifestWriteIsIdempotent) {
  // Regression: when manifest_every fires on the FINAL shard, the
  // run-end flush used to rewrite the manifest a second time — a window
  // where a concurrently starting --resume could read a mid-rename
  // manifest.  flush_manifest() with nothing new must now be a no-op.
  const auto dir = temp_dir("finalize_idempotent");
  core::FleetResult fleet;
  fleet.outcomes.resize(8);
  fleet.degradation.blocks.resize(8);
  const core::ChangeAggregator agg;

  {
    // manifest_every=1: the 4th record_shard already persisted shard 3;
    // the finalize flush has nothing to add.
    core::CheckpointManager mgr(dir.string(), 0x5eedULL, 8, 2, 1);
    for (std::size_t k = 0; k < 4; ++k) {
      mgr.record_shard(k, 2 * k, 2 * k + 2, fleet, agg, false);
    }
    EXPECT_EQ(mgr.manifest_writes(), 4u);
    mgr.flush_manifest();
    mgr.flush_manifest();  // and the no-op itself is repeatable
    EXPECT_EQ(mgr.manifest_writes(), 4u);
  }
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    // manifest_every=3 over 4 shards: one batched write mid-run, one
    // real flush for the unpersisted tail, then nothing.
    core::CheckpointManager mgr(dir.string(), 0x5eedULL, 8, 2, 3);
    for (std::size_t k = 0; k < 4; ++k) {
      mgr.record_shard(k, 2 * k, 2 * k + 2, fleet, agg, false);
    }
    EXPECT_EQ(mgr.manifest_writes(), 1u);
    mgr.flush_manifest();
    EXPECT_EQ(mgr.manifest_writes(), 2u);
    mgr.flush_manifest();
    EXPECT_EQ(mgr.manifest_writes(), 2u);
    EXPECT_EQ(mgr.load_manifest(), (std::vector<std::size_t>{0, 1, 2, 3}));
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardCheckpoint, ForeignFingerprintCheckpointsAreIgnored) {
  const auto dir = temp_dir("foreign");
  core::ShardConfig sc;
  sc.shard_size = 64;
  sc.checkpoint_dir = dir.string();
  sc.resume = true;

  const auto wc_a = shard_world_config();
  const auto fc = shard_fleet_config(2);
  (void)core::run_sharded_fleet(wc_a, fc, sc);

  auto wc_b = wc_a;
  wc_b.seed = 98;  // different world: nothing may be resumed
  const auto ref_digest = core::digest_hex(
      core::fleet_digest(core::run_fleet(sim::World(wc_b), fc)));
  const auto got = core::run_sharded_fleet(wc_b, fc, sc);
  EXPECT_EQ(got.stats.resumed_shards, 0u);
  EXPECT_EQ(core::digest_hex(core::fleet_digest(got.fleet)), ref_digest);
  std::filesystem::remove_all(dir);
}

TEST(ShardCheckpoint, RetainedSeriesSurviveTheResumeBitwise) {
  const auto wc = shard_world_config();
  const auto fc = shard_fleet_config(2);
  const sim::World world(wc);
  const auto ref = core::run_fleet(world, fc);

  const auto dir = temp_dir("series");
  core::ShardConfig sc;
  sc.shard_size = 64;
  sc.retain_series = true;
  sc.checkpoint_dir = dir.string();
  auto capped = sc;
  capped.max_shards = 4;
  (void)core::run_sharded_fleet(wc, fc, capped);
  auto resumed = sc;
  resumed.resume = true;
  const auto full = core::run_sharded_fleet(wc, fc, resumed);
  EXPECT_EQ(full.stats.resumed_shards, 4u);
  ASSERT_EQ(full.fleet.series.rows(), ref.series.rows());
  for (std::size_t i = 0; i < ref.series.rows(); ++i) {
    const auto a = ref.series.series(i);
    const auto b = full.fleet.series.series(i);
    ASSERT_EQ(a.size(), b.size()) << "row " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j], b[j]) << "row " << i << " sample " << j;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardCheckpoint, FingerprintSeparatesConfigsButNotExecutionShape) {
  const auto wc = shard_world_config();
  const auto fc = shard_fleet_config(2);
  const auto base = core::checkpoint_fingerprint(wc, fc, 64);

  auto threads = fc;
  threads.threads = 8;  // execution shape: digest-invariant, same print
  EXPECT_EQ(core::checkpoint_fingerprint(wc, threads, 64), base);
  auto width = fc;
  width.analysis_batch_width = 1;
  EXPECT_EQ(core::checkpoint_fingerprint(wc, width, 64), base);

  auto other_world = wc;
  other_world.seed = 98;
  EXPECT_NE(core::checkpoint_fingerprint(other_world, fc, 64), base);
  auto other_ds = fc;
  other_ds.dataset = core::dataset("2020w2-ejnw");
  EXPECT_NE(core::checkpoint_fingerprint(wc, other_ds, 64), base);
  auto faulted = fc;
  faulted.faults = fault::scenario("dropout", fc.dataset.window());
  EXPECT_NE(core::checkpoint_fingerprint(wc, faulted, 64), base);
  EXPECT_NE(core::checkpoint_fingerprint(wc, fc, 32), base);
}

TEST(ShardCheckpoint, FingerprintCoversCalendarAndLayerContent) {
  // A foreign checkpoint whose world has the same number of planted
  // events — but a different date, adoption rate, or ramp width — is a
  // different experiment and must not be resumable.  Same for the
  // country-layer stack and the new detector toggles.
  auto wc = shard_world_config();
  const auto fc = shard_fleet_config(2);
  // The shard config's calendar is empty; plant one event so content
  // mutations have something to vary.
  sim::Event planted;
  planted.kind = sim::EventKind::kWorkFromHome;
  planted.name = "fingerprint-probe";
  planted.scope.country_code = "US";
  planted.start = util::time_of(2020, 2, 1);
  planted.end = util::time_of(2020, 7, 1);
  wc.calendar.push_back(std::move(planted));
  const auto base = core::checkpoint_fingerprint(wc, fc, 64);

  auto shifted = wc;
  shifted.calendar[0].start += util::kSecondsPerDay;
  EXPECT_NE(core::checkpoint_fingerprint(shifted, fc, 64), base);

  auto ramped = wc;
  ramped.calendar[0].ramp_days = 10;
  EXPECT_NE(core::checkpoint_fingerprint(ramped, fc, 64), base);

  auto adopted = wc;
  adopted.calendar[0].adoption += 0.05;
  EXPECT_NE(core::checkpoint_fingerprint(adopted, fc, 64), base);

  auto layered = wc;
  sim::CountryLayerOverride o;
  o.code = "US";
  o.cgnat_trend_per_year = 1.0;
  layered.country_layers.push_back(std::move(o));
  EXPECT_NE(core::checkpoint_fingerprint(layered, fc, 64), base);

  auto dst = wc;
  sim::CountryLayerOverride d;
  d.code = "US";
  d.dst = geo::DstPolicy::kNorthern;
  dst.country_layers.push_back(std::move(d));
  EXPECT_NE(core::checkpoint_fingerprint(dst, fc, 64), base);
  EXPECT_NE(core::checkpoint_fingerprint(dst, fc, 64),
            core::checkpoint_fingerprint(layered, fc, 64));

  auto phase = fc;
  phase.detector.phase_shift_filter = true;
  EXPECT_NE(core::checkpoint_fingerprint(wc, phase, 64), base);
}

// ---------------------------------------------------------------------------
// util: peak-RSS reset probe (containers without writable clear_refs)
// ---------------------------------------------------------------------------

TEST(MemCheckpoint, PeakResetProbeIsStableAndHonest) {
  // The probe must be deterministic within a process, and when it
  // reports support, an immediate reset must actually pull VmHWM down
  // to (near) current RSS rather than silently no-oping.
  const bool supported = util::peak_reset_supported();
  EXPECT_EQ(util::peak_reset_supported(), supported);
  if (supported) {
    ASSERT_TRUE(util::reset_peak_rss());
    const auto m = util::read_memory_usage();
    ASSERT_TRUE(m.valid);
    EXPECT_LE(m.peak_rss_kb, m.rss_kb + 4096u);
  } else {
    EXPECT_FALSE(util::reset_peak_rss());
  }
}

}  // namespace
}  // namespace diurnal
