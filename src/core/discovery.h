// Event discovery from aggregated change detections (the paper's
// section-4 workflow, automated): scan every gridcell's daily series of
// downward changes for days whose count spikes far above that cell's
// own baseline, and merge consecutive spike days into one event.  This
// is how the paper surfaced the Delhi riots, the Indiana WFH onset, and
// the 2023 Spring Festival without prior knowledge.
#pragma once

#include <string>
#include <vector>

#include "analysis/workspace.h"
#include "core/aggregate.h"

namespace diurnal::core {

struct DiscoveryOptions {
  /// Minimum change-sensitive blocks for a cell to be considered
  /// (the paper's representation threshold).
  int min_blocks = 5;
  /// Detections of one regional event spread over several days (blocks
  /// adopt orders at different dates, and trend smoothing jitters the
  /// alarm), so spikes are evaluated on a sliding window of this many
  /// days.
  int window_days = 5;
  /// A spike window must involve at least this fraction of the cell's
  /// change-sensitive blocks...
  double min_fraction = 0.05;
  /// ...and at least this many blocks.
  int min_count = 2;
  /// ...and exceed `spike_factor` times the cell's 75th-percentile
  /// windowed down-count.
  double spike_factor = 3.0;
};

/// One discovered regional event.
struct DiscoveredEvent {
  geo::GridCell cell{};
  util::SimTime start = 0;  ///< first day of the first spiking window
  util::SimTime end = 0;    ///< one past the last day of the last window
  int peak_blocks = 0;      ///< most blocks down within one window
  double peak_fraction = 0.0;
  int cell_blocks = 0;      ///< change-sensitive blocks in the cell

  std::string to_string() const;
};

/// Scans the aggregation for regional events, ordered by descending
/// peak fraction.
std::vector<DiscoveredEvent> discover_events(const ChangeAggregator& agg,
                                             const DiscoveryOptions& opt = {});

/// Same scan with the per-cell sliding-window scratch leased from `ws`
/// (bit-identical results; repeated scans allocate only for the events
/// themselves).
std::vector<DiscoveredEvent> discover_events(const ChangeAggregator& agg,
                                             const DiscoveryOptions& opt,
                                             analysis::Workspace& ws);

}  // namespace diurnal::core
