// Concurrent query plane over the streaming engine (DESIGN.md
// section 13): one writer thread drives StreamingFleet::advance_to
// epoch by epoch and publishes an immutable EpochSnapshot after each
// advance; any number of reader threads answer per-block, per-gridcell,
// alarm, coverage and scorecard queries against a pinned snapshot.
//
// Concurrency model:
//   * The engine is touched by exactly one thread — the ingest loop.
//     Readers never see it; they see snapshots, which are deep copies
//     of the query-relevant state plus the engine's util/state_io image
//     (the same bytes the CLI's streaming checkpoints persist, so a
//     pinned snapshot IS a restorable checkpoint).
//   * Publication is an RCU-style shared_ptr swap (util::EpochRegistry).
//     A reader pinning epoch k holds the refcount; its answers are
//     bitwise-frozen no matter how far the writer advances.
//   * The observation feed is a bounded queue (util::BoundedQueue):
//     when snapshot building falls behind, feeders block instead of
//     growing memory — backpressure is surfaced in ServeStats.
//
// Shutdown: drain() closes the feed, lets the writer consume every
// queued epoch, finalizes the engine (bit-identical to the batch drive
// — the golden-digest contract), and publishes a final snapshot carrying
// the authoritative verdicts.  stop() instead leaves the run mid-window;
// the latest snapshot's image() is the checkpoint to resume from.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.h"
#include "core/streaming.h"
#include "geo/gridcell.h"
#include "util/bounded_queue.h"
#include "util/date.h"
#include "util/epoch_registry.h"

namespace diurnal::core {

struct ServeConfig {
  /// Feed granularity used by feed_all() (and the serve tool's ticker).
  std::int64_t epoch_duration = util::kSecondsPerDay;
  /// Feed queue depth; feeders block when the writer falls this far
  /// behind.
  std::size_t feed_capacity = 4;
  /// Trailing samples of each block's reconstructed series copied into
  /// a snapshot (the trend query).  0 copies the whole emitted prefix.
  std::size_t trend_tail = 7 * 24;
  /// Carry the engine's state_io image in every snapshot.  The image is
  /// what makes a snapshot a restorable checkpoint; disable only for
  /// stress tests that never restore.
  bool keep_image = true;
};

/// Per-gridcell rollup inside one snapshot.
struct CellQueryStats {
  geo::GridCell cell{};
  std::int32_t blocks = 0;
  std::int32_t watched = 0;
  std::int32_t classified = 0;
  std::int32_t change_sensitive = 0;
  std::int32_t alarms_down = 0;
  std::int32_t alarms_up = 0;
};

/// Fleet-wide rollup inside one snapshot.
struct ServeScorecard {
  std::size_t epoch_index = 0;
  util::SimTime clock = 0;
  std::size_t observations_total = 0;  ///< since the serve loop started
  /// True once every classification verdict is authoritative (split
  /// windows: when the classification window is fully ingested; single
  /// window: at drain).
  bool classification_complete = false;
  FunnelCounts funnel{};  ///< populated when classification_complete
  std::size_t blocks = 0;
  std::size_t blocks_active = 0;
  std::size_t blocks_watched = 0;
  std::size_t blocks_classified = 0;
  std::size_t alarms_down = 0;  ///< cumulative provisional alarms
  std::size_t alarms_up = 0;
  double mean_evidence_fraction = 0.0;  ///< over blocks with samples
  std::size_t low_evidence_blocks = 0;  ///< below the classifier floor
};

/// One immutable epoch of the query plane.  Everything reachable from a
/// pinned snapshot is deep-copied at publish time; no member mutates
/// after construction, so concurrent readers need no synchronization.
class EpochSnapshot {
 public:
  using Row = StreamingFleet::BlockSnapshotRow;

  std::size_t epoch_index() const noexcept { return scorecard_.epoch_index; }
  util::SimTime clock() const noexcept { return scorecard_.clock; }
  /// True for the snapshot published by drain(): verdicts are the
  /// authoritative finalize results, not mid-run provisionals.
  bool final_epoch() const noexcept { return final_; }

  const ServeScorecard& scorecard() const noexcept { return scorecard_; }

  std::size_t rows() const noexcept { return rows_.size(); }
  const Row& row(std::size_t i) const noexcept { return rows_[i]; }
  /// Per-block lookup; null for a block outside the served span.
  const Row* block(net::BlockId id) const;

  /// The trailing reconstructed active-address series of one block (the
  /// trend query; ServeConfig::trend_tail bounds its length), and the
  /// absolute time of its first sample.
  std::span<const double> trend(net::BlockId id) const;
  util::SimTime trend_start(net::BlockId id) const;

  /// Cumulative provisional alarms, ordered by (alarm time, block id).
  std::span<const ProvisionalChange> alarms() const noexcept {
    return alarms_;
  }
  /// The alarms of one block (contiguous range of the by-block order).
  std::span<const ProvisionalChange> alarms_for(net::BlockId id) const;

  /// Per-gridcell rollups, ordered by (lat_idx, lon_idx).
  std::span<const CellQueryStats> cells() const noexcept { return cells_; }
  const CellQueryStats* cell(geo::GridCell c) const;

  /// The engine's util/state_io image at this epoch — the snapshot
  /// currency: feed it to SnapshotServer::restore() (or the CLI resume
  /// path) to continue the run from exactly this point.  Empty when
  /// ServeConfig::keep_image is off and on the final snapshot (a
  /// completed run has nothing to resume).
  std::span<const std::uint8_t> image() const noexcept { return image_; }

  /// FNV-1a over the whole query surface (rows, trends, alarms, cells,
  /// scorecard).  Two calls on the same snapshot — however far the
  /// writer has advanced in between — must return the same value; the
  /// pinned-reader property tests gate exactly that.
  std::uint64_t answers_digest() const;

  /// Heap footprint (ServeStats::snapshot_bytes).
  std::size_t bytes() const noexcept;

 private:
  friend class SnapshotServer;

  struct TrendRef {
    std::size_t offset = 0;
    std::size_t len = 0;
    util::SimTime start = 0;
  };

  bool final_ = false;
  ServeScorecard scorecard_{};
  std::vector<Row> rows_;
  std::vector<TrendRef> trend_refs_;  ///< aligned with rows_
  std::vector<double> trend_data_;
  std::vector<ProvisionalChange> alarms_;           ///< (alarm, id) order
  std::vector<ProvisionalChange> alarms_by_block_;  ///< (id, alarm) order
  std::vector<CellQueryStats> cells_;
  std::vector<std::uint8_t> image_;
  /// Block-id -> row index; shared across snapshots (the span is fixed).
  std::shared_ptr<const std::unordered_map<std::uint32_t, std::size_t>> index_;
};

/// Backpressure and progress counters (all monotone; safe to read from
/// any thread).
struct ServeStats {
  std::uint64_t epochs_published = 0;
  std::uint64_t observations = 0;
  std::uint64_t feed_accepted = 0;
  std::uint64_t feed_waits = 0;  ///< feeder blocked on a full queue
  std::size_t feed_peak_depth = 0;
  std::size_t feed_capacity = 0;
  std::size_t snapshot_bytes = 0;  ///< latest snapshot's footprint
};

class SnapshotServer {
 public:
  /// Borrows `blocks` and `config` for the server's lifetime (the same
  /// contract as StreamingFleet).
  SnapshotServer(std::span<const sim::BlockProfile> blocks,
                 const FleetConfig& config, const ServeConfig& serve = {});
  SnapshotServer(const sim::World& world, const FleetConfig& config,
                 const ServeConfig& serve = {})
      : SnapshotServer(std::span<const sim::BlockProfile>(world.blocks()),
                       config, serve) {}
  ~SnapshotServer();

  util::SimTime window_start() const noexcept {
    return engine_.window_start();
  }
  util::SimTime window_end() const noexcept { return engine_.window_end(); }

  /// The engine's ingest clock.  Only valid while no writer owns the
  /// engine: before start(), or after drain()/stop() returned.
  util::SimTime clock() const noexcept { return engine_.clock(); }

  /// Restores a mid-window engine image (an EpochSnapshot::image() or a
  /// CLI streaming checkpoint's engine section).  Must precede start().
  void restore(util::StateReader& r);

  /// Spawns the ingest loop.  Call once.
  void start();

  /// Enqueues one epoch tick (advance the engine to `until`), blocking
  /// while the feed is full.  Returns false once the server is
  /// stopping.  Any thread.
  bool feed(util::SimTime until);

  /// Enqueues ticks of epoch_duration covering the remaining window;
  /// returns how many were accepted.
  std::size_t feed_all();

  /// The latest published snapshot (pin by holding the pointer); null
  /// before the first epoch.  Any thread.
  std::shared_ptr<const EpochSnapshot> snapshot() const {
    return registry_.current();
  }

  /// Blocks until at least `publishes` snapshots have been published
  /// (or the server stopped); returns the latest.  Any thread.
  std::shared_ptr<const EpochSnapshot> wait_for_epoch(
      std::uint64_t publishes) const {
    return registry_.wait_for_version(publishes);
  }

  /// Graceful shutdown: stops accepting feeds, lets the writer consume
  /// every queued epoch, finalizes (bit-identical to the batch drive)
  /// and publishes the final snapshot.  Call once, not concurrently
  /// with stop().
  FleetResult drain();

  /// Abandon-in-place shutdown: stops the writer after the epoch it is
  /// processing; the engine stays mid-window and the latest snapshot's
  /// image() is the checkpoint to resume from.
  void stop();

  ServeStats stats() const;

 private:
  void writer_loop();
  std::shared_ptr<EpochSnapshot> build_snapshot(const EpochReport& rep);
  void fill_trends(EpochSnapshot& snap);
  void fill_rollups(EpochSnapshot& snap);

  std::span<const sim::BlockProfile> blocks_;
  const FleetConfig& config_;
  ServeConfig serve_;
  StreamingFleet engine_;
  std::shared_ptr<const std::unordered_map<std::uint32_t, std::size_t>>
      index_;
  std::vector<geo::GridCell> cell_of_;  ///< aligned with blocks_

  util::BoundedQueue<util::SimTime> feed_;
  util::EpochRegistry<EpochSnapshot> registry_;
  std::thread writer_;
  bool started_ = false;
  bool finished_ = false;
  /// Engine clock captured at start(); feed_all() ticks from here so it
  /// never reads the writer-owned engine.
  util::SimTime feed_from_ = 0;

  // Writer-thread state.
  std::vector<ProvisionalChange> alarm_log_;  ///< cumulative, sorted

  // Cross-thread counters.
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<std::uint64_t> observations_{0};
  std::atomic<std::size_t> snapshot_bytes_{0};
};

}  // namespace diurnal::core
