// Columnar (structure-of-arrays) store for per-block reconstructed
// active-count series.
//
// The fleet previously kept each block's series in its own
// heap-allocated vector inside a ReconResult; the store instead packs
// every block's samples into one contiguous buffer with uniform-stride
// rows, so the analysis chain walks cache-friendly spans and the fleet
// drive performs one allocation for the whole world instead of one per
// block.  Rows are indexed by block position (aligned with
// world.blocks() / FleetResult::outcomes).
//
// Threading: reset() sizes the buffer once up front; afterwards,
// distinct rows may be written concurrently by distinct workers without
// synchronization (disjoint memory).  set_len()/len() follow the same
// rule — one writer per row.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/date.h"
#include "util/default_init_allocator.h"
#include "util/state_io.h"

namespace diurnal::core {

class SeriesStore {
 public:
  SeriesStore() = default;

  /// Sizes the store for `rows` series of up to `stride` samples each,
  /// all sharing the same start time and sampling step.  Row contents
  /// are indeterminate; each row's length starts at zero until its
  /// writer calls set_len().
  void reset(std::size_t rows, std::size_t stride, util::SimTime start,
             std::int64_t step);

  std::size_t rows() const noexcept { return len_.size(); }
  std::size_t stride() const noexcept { return stride_; }
  util::SimTime start() const noexcept { return start_; }
  std::int64_t step() const noexcept { return step_; }
  bool empty() const noexcept { return len_.empty(); }

  /// Full-stride mutable row (the reconstruction's output binding).
  std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * stride_, stride_};
  }

  /// The written prefix of row i (length set_len(i, n) declared).
  std::span<const double> series(std::size_t i) const noexcept {
    return {data_.data() + i * stride_, len_[i]};
  }

  void set_len(std::size_t i, std::size_t n) noexcept {
    len_[i] = static_cast<std::uint32_t>(n);
  }
  std::size_t len(std::size_t i) const noexcept { return len_[i]; }

  /// Serializes geometry, per-row lengths and each row's written
  /// prefix (the tail past len(i) is indeterminate by contract and is
  /// not stored).  restore() re-reset()s to the stored geometry, so a
  /// default-constructed store is a valid target; unwritten tails come
  /// back zero-filled.
  void save(util::StateWriter& w) const;
  void restore(util::StateReader& r);

  /// Heap bytes held (sample buffer + length column) — the dominant
  /// per-shard residency cost the shard scheduler accounts for.
  std::size_t memory_bytes() const noexcept {
    return data_.capacity() * sizeof(double) +
           len_.capacity() * sizeof(std::uint32_t);
  }

 private:
  std::vector<double, util::DefaultInitAllocator<double>> data_;
  std::vector<std::uint32_t> len_;
  std::size_t stride_ = 0;
  util::SimTime start_ = 0;
  std::int64_t step_ = 1;
};

}  // namespace diurnal::core
