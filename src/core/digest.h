// Canonical fleet-result digest: an order-sensitive FNV-1a hash over
// the funnel, every per-block outcome, and every detected change.  Two
// runs produce the same digest iff they made identical decisions for
// identical blocks in identical order, so the digest is the
// determinism and batch/streaming-equivalence oracle (degradation
// accounting is intentionally excluded — it annotates, never decides).
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.h"

namespace diurnal::core {

std::uint64_t fleet_digest(const FleetResult& r);

/// 16-digit lowercase hex, the form used in golden values and logs.
std::string digest_hex(std::uint64_t d);

}  // namespace diurnal::core
