#include "core/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace diurnal::core {

namespace {

constexpr std::uint32_t kManifestMetaTag = util::state_tag("CMET");
constexpr std::uint32_t kManifestDoneTag = util::state_tag("CDON");
constexpr std::uint32_t kShardMetaTag = util::state_tag("SMET");
constexpr std::uint32_t kShardOutcomesTag = util::state_tag("OUTC");
constexpr std::uint32_t kShardDegradationTag = util::state_tag("DEGR");
constexpr std::uint32_t kShardAggregateTag = util::state_tag("AGGR");
constexpr std::uint32_t kShardSeriesTag = util::state_tag("SERI");

[[noreturn]] void mismatch(const char* what) {
  throw util::StateError(util::StateErrorKind::kBadValue, what);
}

void fingerprint_opt(util::StateWriter& w, const std::optional<double>& v) {
  w.boolean(v.has_value());
  if (v) w.f64(*v);
}

void fingerprint_event(util::StateWriter& w, const sim::Event& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.str(e.name);
  w.boolean(e.scope.country_code.has_value());
  if (e.scope.country_code) w.str(*e.scope.country_code);
  w.boolean(e.scope.cell.has_value());
  if (e.scope.cell) {
    w.i64(e.scope.cell->lat_idx);
    w.i64(e.scope.cell->lon_idx);
  }
  w.i64(e.start);
  w.i64(e.end);
  w.f64(e.adoption);
  w.f64(e.residual_attendance);
  w.i64(e.ramp_days);
}

void fingerprint_layer(util::StateWriter& w,
                       const sim::CountryLayerOverride& o) {
  w.str(o.code);
  fingerprint_opt(w, o.diurnal_visible_fraction);
  fingerprint_opt(w, o.cgnat_fraction);
  fingerprint_opt(w, o.renumber_multiplier);
  fingerprint_opt(w, o.outage_multiplier);
  w.boolean(o.dst.has_value());
  if (o.dst) w.u8(static_cast<std::uint8_t>(*o.dst));
  w.u64(o.holidays.size());
  for (const auto& h : o.holidays) {
    w.str(h.name);
    w.i64(h.month);
    w.i64(h.day);
    w.i64(h.duration_days);
    w.f64(h.adoption);
    w.f64(h.residual_attendance);
  }
  fingerprint_opt(w, o.adoption_trend_per_year);
  fingerprint_opt(w, o.cgnat_trend_per_year);
}

void fingerprint_dataset(util::StateWriter& w, const DatasetSpec& ds) {
  w.str(ds.abbr);
  w.str(ds.sites);
  w.boolean(ds.survey);
  w.i64(ds.duration_weeks);
  const auto window = ds.window();
  w.i64(window.start);
  w.i64(window.end);
}

}  // namespace

void save_state(util::StateWriter& w, const BlockClassification& c) {
  w.boolean(c.responsive);
  w.boolean(c.diurnal);
  w.boolean(c.wide_swing);
  w.boolean(c.change_sensitive);
  w.boolean(c.low_confidence);
  w.f64(c.evidence_fraction);
  w.boolean(c.diurnal_detail.diurnal);
  w.f64(c.diurnal_detail.power_ratio);
  w.f64(c.diurnal_detail.total_power);
  w.f64(c.diurnal_detail.diurnal_power);
  w.i64(c.diurnal_detail.segments);
  w.i64(c.diurnal_detail.segments_diurnal);
  w.boolean(c.swing_detail.wide);
  w.i64(c.swing_detail.wide_days);
  w.i64(c.swing_detail.total_days);
  w.f64(c.swing_detail.max_daily_swing);
  w.i64(c.swing_detail.best_window_wide);
}

void restore_state(util::StateReader& r, BlockClassification& c) {
  c.responsive = r.boolean();
  c.diurnal = r.boolean();
  c.wide_swing = r.boolean();
  c.change_sensitive = r.boolean();
  c.low_confidence = r.boolean();
  c.evidence_fraction = r.f64();
  c.diurnal_detail.diurnal = r.boolean();
  c.diurnal_detail.power_ratio = r.f64();
  c.diurnal_detail.total_power = r.f64();
  c.diurnal_detail.diurnal_power = r.f64();
  c.diurnal_detail.segments = static_cast<int>(r.i64());
  c.diurnal_detail.segments_diurnal = static_cast<int>(r.i64());
  c.swing_detail.wide = r.boolean();
  c.swing_detail.wide_days = static_cast<int>(r.i64());
  c.swing_detail.total_days = static_cast<int>(r.i64());
  c.swing_detail.max_daily_swing = r.f64();
  c.swing_detail.best_window_wide = static_cast<int>(r.i64());
}

void save_state(util::StateWriter& w, const fault::BlockDegradation& d) {
  w.i64(d.configured_observers);
  w.i64(d.live_observers);
  w.i64(d.partial_observers);
  w.u64(d.dropped_observations);
  w.u64(d.corrupted_observations);
  w.f64(d.evidence_fraction);
  w.f64(d.max_gap_hours);
  w.boolean(d.low_confidence);
}

void restore_state(util::StateReader& r, fault::BlockDegradation& d) {
  d.configured_observers = static_cast<int>(r.i64());
  d.live_observers = static_cast<int>(r.i64());
  d.partial_observers = static_cast<int>(r.i64());
  d.dropped_observations = static_cast<std::size_t>(r.u64());
  d.corrupted_observations = static_cast<std::size_t>(r.u64());
  d.evidence_fraction = r.f64();
  d.max_gap_hours = r.f64();
  d.low_confidence = r.boolean();
}

void save_state(util::StateWriter& w, const DetectedChange& c) {
  w.i64(c.start);
  w.i64(c.alarm);
  w.i64(c.end);
  w.u8(c.direction == analysis::ChangeDirection::kUp ? 1 : 0);
  w.f64(c.amplitude);
  w.f64(c.amplitude_addresses);
  w.boolean(c.filtered_as_outage);
  w.boolean(c.filtered_small);
  w.boolean(c.filtered_phase_only);
  w.boolean(c.low_evidence);
}

void restore_state(util::StateReader& r, DetectedChange& c) {
  c.start = r.i64();
  c.alarm = r.i64();
  c.end = r.i64();
  c.direction = r.u8() != 0 ? analysis::ChangeDirection::kUp
                            : analysis::ChangeDirection::kDown;
  c.amplitude = r.f64();
  c.amplitude_addresses = r.f64();
  c.filtered_as_outage = r.boolean();
  c.filtered_small = r.boolean();
  c.filtered_phase_only = r.boolean();
  c.low_evidence = r.boolean();
}

void save_state(util::StateWriter& w, const BlockOutcome& o) {
  w.u32(o.id.id());
  save_state(w, o.cls);
  w.u64(o.changes.size());
  for (const DetectedChange& c : o.changes) save_state(w, c);
}

void restore_state(util::StateReader& r, BlockOutcome& o) {
  o.id = net::BlockId(r.u32());
  restore_state(r, o.cls);
  const std::uint64_t n = r.u64();
  o.changes.clear();
  o.changes.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    DetectedChange c;
    restore_state(r, c);
    o.changes.push_back(c);
  }
}

std::uint64_t checkpoint_fingerprint(const sim::WorldConfig& world,
                                     const FleetConfig& config,
                                     std::uint64_t shard_size) {
  util::StateWriter w;
  w.begin_section(util::state_tag("FPRT"));
  // World universe.
  w.u64(world.seed);
  w.i64(world.num_blocks);
  w.f64(world.responsive_fraction);
  w.f64(world.diurnal_scale);
  w.f64(world.outage_rate_per_90d);
  w.f64(world.renumber_probability);
  w.f64(world.occupancy_churn);
  w.boolean(world.stable_population);
  w.i64(world.horizon_start);
  w.i64(world.horizon_end);
  w.boolean(world.include_special_blocks);
  w.boolean(world.only_country.has_value());
  if (world.only_country) w.str(*world.only_country);
  w.boolean(world.quiet_calendar);
  // Full calendar and country-layer content, not just counts: two
  // worlds whose planted events differ only in a date, an adoption
  // rate, or a ramp width are different experiments and must not share
  // resumable state.
  w.u64(world.calendar.size());
  for (const auto& e : world.calendar) fingerprint_event(w, e);
  w.u64(world.country_layers.size());
  for (const auto& o : world.country_layers) fingerprint_layer(w, o);
  // Windows and observers.
  fingerprint_dataset(w, config.dataset);
  w.boolean(config.classify_dataset.has_value());
  if (config.classify_dataset) fingerprint_dataset(w, *config.classify_dataset);
  // Loss model and fault plan (spec fields, not just counts: two plans
  // with the same shape but different windows must not collide).
  w.f64(config.loss.base_loss);
  w.f64(config.loss.congested_destination_fraction);
  w.f64(config.loss.congested_peak_loss);
  w.u8(static_cast<std::uint8_t>(config.loss.congested_observer));
  w.u64(config.loss.seed);
  w.boolean(config.loss.enable_congestion);
  w.u64(config.faults.seed);
  w.u64(config.faults.outages.size());
  for (const auto& o : config.faults.outages) {
    w.u8(static_cast<std::uint8_t>(o.observer));
    w.u8(static_cast<std::uint8_t>(o.kind));
    w.i64(o.start);
    w.i64(o.end);
    w.i64(o.flap_period);
    w.f64(o.flap_down_fraction);
  }
  w.u64(config.faults.skews.size());
  for (const auto& s : config.faults.skews) {
    w.u8(static_cast<std::uint8_t>(s.observer));
    w.i64(s.skew_seconds);
    w.f64(s.drift_ppm);
  }
  w.u64(config.faults.bursts.size());
  for (const auto& b : config.faults.bursts) {
    w.u8(static_cast<std::uint8_t>(b.observer));
    w.f64(b.rate);
    w.i64(b.mean_interval);
    w.i64(b.mean_duration);
    w.i64(b.start);
    w.i64(b.end);
  }
  w.u64(config.faults.truncations.size());
  for (const auto& t : config.faults.truncations) {
    w.u8(static_cast<std::uint8_t>(t.observer));
    w.f64(t.prob);
    w.i64(t.start);
    w.i64(t.end);
  }
  // Pipeline toggles and key analysis knobs.  Thread count, batch width
  // and residency caps are deliberately absent: the determinism contract
  // makes them invisible in the output.
  w.boolean(config.one_loss_repair);
  w.boolean(config.additional_observations);
  w.boolean(config.run_detection);
  w.boolean(config.fuse_observation_windows);
  w.f64(config.classifier.min_evidence_fraction);
  w.i64(config.detector.period_seconds);
  w.u8(config.detector.trend_model == TrendModel::kStl ? 0 : 1);
  w.f64(config.detector.cusum.threshold);
  w.f64(config.detector.cusum.drift);
  w.i64(config.detector.outage_pair_window);
  w.f64(config.detector.outage_amplitude_ratio);
  w.i64(config.detector.max_outage_duration);
  w.f64(config.detector.outage_level_fraction);
  w.f64(config.detector.min_change_addresses);
  w.boolean(config.detector.phase_shift_filter);
  w.f64(config.detector.phase_corroboration_ratio);
  w.i64(config.recon.sample_step);
  w.i64(config.recon.stale_horizon);
  w.u64(shard_size);
  w.end_section();

  // FNV-1a over the serialized image.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : w.bytes()) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

CheckpointManager::CheckpointManager(std::string dir,
                                     std::uint64_t fingerprint,
                                     std::size_t total_blocks,
                                     std::size_t shard_size,
                                     std::size_t manifest_every)
    : dir_(std::move(dir)),
      fingerprint_(fingerprint),
      total_blocks_(total_blocks),
      shard_size_(shard_size),
      manifest_every_(manifest_every == 0 ? 1 : manifest_every) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw util::StateError(util::StateErrorKind::kIo,
                           "cannot create checkpoint directory " + dir_);
  }
}

std::string CheckpointManager::shard_path(std::size_t k) const {
  return dir_ + "/shard-" + std::to_string(k) + ".ckpt";
}

std::string CheckpointManager::manifest_path() const {
  return dir_ + "/manifest.ckpt";
}

std::vector<std::size_t> CheckpointManager::load_manifest() {
  std::vector<std::uint8_t> image;
  try {
    image = util::read_state_file(manifest_path());
  } catch (const util::StateError&) {
    return {};  // no manifest yet: a fresh run
  }
  util::StateReader r(image);
  r.begin_section(kManifestMetaTag);
  const std::uint64_t fp = r.u64();
  const std::uint64_t total = r.u64();
  const std::uint64_t ssize = r.u64();
  r.end_section();
  if (fp != fingerprint_) {
    mismatch("manifest was written under a different configuration");
  }
  if (total != total_blocks_ || ssize != shard_size_) {
    mismatch("manifest covers a different block universe");
  }
  r.begin_section(kManifestDoneTag);
  const std::uint64_t n = r.u64();
  std::vector<std::size_t> done;
  done.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    done.push_back(static_cast<std::size_t>(r.u64()));
  }
  r.end_section();
  return done;
}

ShardCheckpoint CheckpointManager::load_shard(std::size_t k) {
  const std::vector<std::uint8_t> image =
      util::read_state_file(shard_path(k));
  util::StateReader r(image);
  ShardCheckpoint out;

  r.begin_section(kShardMetaTag);
  const std::uint64_t fp = r.u64();
  const std::uint64_t shard = r.u64();
  out.begin = static_cast<std::size_t>(r.u64());
  out.end = static_cast<std::size_t>(r.u64());
  r.end_section();
  if (fp != fingerprint_) {
    mismatch("shard checkpoint was written under a different configuration");
  }
  if (shard != k || out.end < out.begin || out.end > total_blocks_ ||
      out.begin != k * shard_size_) {
    mismatch("shard checkpoint does not match its slot");
  }
  const std::size_t rows = out.end - out.begin;

  r.begin_section(kShardOutcomesTag);
  const std::uint64_t n_out = r.u64();
  if (n_out != rows) mismatch("shard outcome count does not match its span");
  out.outcomes.resize(rows);
  for (auto& o : out.outcomes) restore_state(r, o);
  r.end_section();

  r.begin_section(kShardDegradationTag);
  const std::uint64_t n_deg = r.u64();
  if (n_deg != rows) {
    mismatch("shard degradation count does not match its span");
  }
  out.degradation.resize(rows);
  for (auto& d : out.degradation) restore_state(r, d);
  r.end_section();

  r.begin_section(kShardAggregateTag);
  out.aggregate.restore(r);
  r.end_section();

  if (r.has_section()) {
    r.begin_section(kShardSeriesTag);
    out.series.restore(r);
    r.end_section();
    if (out.series.rows() != rows) {
      mismatch("shard series row count does not match its span");
    }
    out.has_series = true;
  }

  const std::lock_guard<std::mutex> lock(mu_);
  completed_.insert(k);
  return out;
}

void CheckpointManager::record_shard(std::size_t k, std::size_t begin,
                                     std::size_t end,
                                     const FleetResult& fleet,
                                     const ChangeAggregator& agg,
                                     bool with_series) {
  util::StateWriter w;
  w.begin_section(kShardMetaTag);
  w.u64(fingerprint_);
  w.u64(k);
  w.u64(begin);
  w.u64(end);
  w.end_section();

  w.begin_section(kShardOutcomesTag);
  w.u64(end - begin);
  for (std::size_t i = begin; i < end; ++i) save_state(w, fleet.outcomes[i]);
  w.end_section();

  w.begin_section(kShardDegradationTag);
  w.u64(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    save_state(w, fleet.degradation.blocks[i]);
  }
  w.end_section();

  w.begin_section(kShardAggregateTag);
  agg.save(w);
  w.end_section();

  if (with_series) {
    // Re-frame the shard's rows from the global store (the shard-local
    // store is already retired by the time the fold completes).
    SeriesStore slice;
    slice.reset(end - begin, fleet.series.stride(), fleet.series.start(),
                fleet.series.step());
    for (std::size_t i = begin; i < end; ++i) {
      const auto src = fleet.series.series(i);
      const auto dst = slice.row(i - begin);
      std::copy(src.begin(), src.end(), dst.begin());
      slice.set_len(i - begin, src.size());
    }
    w.begin_section(kShardSeriesTag);
    slice.save(w);
    w.end_section();
  }

  util::write_state_file(shard_path(k), w.bytes());

  const std::lock_guard<std::mutex> lock(mu_);
  completed_.insert(k);
  dirty_ = true;
  if (++unflushed_ >= manifest_every_) {
    write_manifest_locked();
  }
}

void CheckpointManager::flush_manifest() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return;
  write_manifest_locked();
}

std::size_t CheckpointManager::manifest_writes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return manifest_writes_;
}

void CheckpointManager::write_manifest_locked() {
  util::StateWriter w;
  w.begin_section(kManifestMetaTag);
  w.u64(fingerprint_);
  w.u64(total_blocks_);
  w.u64(shard_size_);
  w.end_section();
  w.begin_section(kManifestDoneTag);
  w.u64(completed_.size());
  for (const std::size_t k : completed_) w.u64(k);
  w.end_section();
  util::write_state_file(manifest_path(), w.bytes());
  unflushed_ = 0;
  dirty_ = false;
  ++manifest_writes_;
}

}  // namespace diurnal::core
