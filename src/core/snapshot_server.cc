#include "core/snapshot_server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace diurnal::core {

namespace {

bool alarm_before(const ProvisionalChange& a, const ProvisionalChange& b) {
  if (a.alarm != b.alarm) return a.alarm < b.alarm;
  return a.id.id() < b.id.id();
}

bool alarm_by_block(const ProvisionalChange& a, const ProvisionalChange& b) {
  if (a.id.id() != b.id.id()) return a.id.id() < b.id.id();
  if (a.alarm != b.alarm) return a.alarm < b.alarm;
  return a.start < b.start;
}

/// FNV-1a accumulator over the query surface.  Field-by-field (never
/// raw struct bytes — padding would make the digest nondeterministic).
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void byte(std::uint8_t b) noexcept {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (i * 8)));
  }
  void i64(std::int64_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void b(bool v) noexcept { byte(v ? 1 : 0); }
};

void hash_classification(Fnv& f, const BlockClassification& c) {
  f.b(c.responsive);
  f.b(c.diurnal);
  f.b(c.wide_swing);
  f.b(c.change_sensitive);
  f.b(c.low_confidence);
  f.f64(c.evidence_fraction);
}

void hash_degradation(Fnv& f, const fault::BlockDegradation& d) {
  f.i64(d.configured_observers);
  f.i64(d.live_observers);
  f.i64(d.partial_observers);
  f.u64(d.dropped_observations);
  f.u64(d.corrupted_observations);
  f.f64(d.evidence_fraction);
  f.f64(d.max_gap_hours);
  f.b(d.low_confidence);
}

}  // namespace

const EpochSnapshot::Row* EpochSnapshot::block(net::BlockId id) const {
  const auto it = index_->find(id.id());
  if (it == index_->end()) return nullptr;
  return &rows_[it->second];
}

std::span<const double> EpochSnapshot::trend(net::BlockId id) const {
  const auto it = index_->find(id.id());
  if (it == index_->end()) return {};
  const TrendRef& t = trend_refs_[it->second];
  return {trend_data_.data() + t.offset, t.len};
}

util::SimTime EpochSnapshot::trend_start(net::BlockId id) const {
  const auto it = index_->find(id.id());
  if (it == index_->end()) return 0;
  return trend_refs_[it->second].start;
}

std::span<const ProvisionalChange> EpochSnapshot::alarms_for(
    net::BlockId id) const {
  const auto lo = std::lower_bound(
      alarms_by_block_.begin(), alarms_by_block_.end(), id.id(),
      [](const ProvisionalChange& a, std::uint32_t v) { return a.id.id() < v; });
  auto hi = lo;
  while (hi != alarms_by_block_.end() && hi->id.id() == id.id()) ++hi;
  return {alarms_by_block_.data() +
              static_cast<std::size_t>(lo - alarms_by_block_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

const CellQueryStats* EpochSnapshot::cell(geo::GridCell c) const {
  const auto it = std::lower_bound(
      cells_.begin(), cells_.end(), c,
      [](const CellQueryStats& s, geo::GridCell v) {
        if (s.cell.lat_idx != v.lat_idx) return s.cell.lat_idx < v.lat_idx;
        return s.cell.lon_idx < v.lon_idx;
      });
  if (it == cells_.end() || !(it->cell == c)) return nullptr;
  return &*it;
}

std::uint64_t EpochSnapshot::answers_digest() const {
  Fnv f;
  f.u64(scorecard_.epoch_index);
  f.i64(scorecard_.clock);
  f.u64(scorecard_.observations_total);
  f.b(scorecard_.classification_complete);
  f.i64(scorecard_.funnel.routed);
  f.i64(scorecard_.funnel.responsive);
  f.i64(scorecard_.funnel.diurnal);
  f.i64(scorecard_.funnel.wide_swing);
  f.i64(scorecard_.funnel.change_sensitive);
  f.i64(scorecard_.funnel.low_confidence);
  f.u64(scorecard_.blocks);
  f.u64(scorecard_.blocks_active);
  f.u64(scorecard_.blocks_watched);
  f.u64(scorecard_.blocks_classified);
  f.u64(scorecard_.alarms_down);
  f.u64(scorecard_.alarms_up);
  f.f64(scorecard_.mean_evidence_fraction);
  f.u64(scorecard_.low_evidence_blocks);
  for (const Row& r : rows_) {
    f.u64(r.id.id());
    f.b(r.begun);
    f.b(r.active);
    f.b(r.classified);
    f.b(r.watched);
    f.u64(r.delivered);
    f.u64(r.emitted);
    f.f64(r.evidence_fraction);
    f.f64(r.max_gap_hours);
    hash_classification(f, r.cls);
    hash_degradation(f, r.degradation);
  }
  for (const TrendRef& t : trend_refs_) {
    f.u64(t.len);
    f.i64(t.start);
  }
  for (const double v : trend_data_) f.f64(v);
  for (const ProvisionalChange& a : alarms_) {
    f.u64(a.id.id());
    f.i64(a.start);
    f.i64(a.alarm);
    f.i64(a.end);
    f.b(a.direction == analysis::ChangeDirection::kUp);
    f.f64(a.amplitude);
  }
  for (const CellQueryStats& c : cells_) {
    f.i64(c.cell.lat_idx);
    f.i64(c.cell.lon_idx);
    f.i64(c.blocks);
    f.i64(c.watched);
    f.i64(c.classified);
    f.i64(c.change_sensitive);
    f.i64(c.alarms_down);
    f.i64(c.alarms_up);
  }
  return f.h;
}

std::size_t EpochSnapshot::bytes() const noexcept {
  return rows_.capacity() * sizeof(Row) +
         trend_refs_.capacity() * sizeof(TrendRef) +
         trend_data_.capacity() * sizeof(double) +
         (alarms_.capacity() + alarms_by_block_.capacity()) *
             sizeof(ProvisionalChange) +
         cells_.capacity() * sizeof(CellQueryStats) + image_.capacity();
}

SnapshotServer::SnapshotServer(std::span<const sim::BlockProfile> blocks,
                               const FleetConfig& config,
                               const ServeConfig& serve)
    : blocks_(blocks),
      config_(config),
      serve_(serve),
      engine_(blocks, config),
      feed_(serve.feed_capacity) {
  auto index = std::make_shared<std::unordered_map<std::uint32_t, std::size_t>>();
  index->reserve(blocks_.size());
  cell_of_.reserve(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    index->emplace(blocks_[i].id.id(), i);
    cell_of_.push_back(blocks_[i].cell());
  }
  index_ = std::move(index);
}

SnapshotServer::~SnapshotServer() {
  feed_.close();
  if (writer_.joinable()) writer_.join();
  registry_.close();
}

void SnapshotServer::restore(util::StateReader& r) {
  assert(!started_);
  engine_.restore(r);
}

void SnapshotServer::start() {
  assert(!started_ && !finished_);
  started_ = true;
  feed_from_ = engine_.clock();
  writer_ = std::thread([this] { writer_loop(); });
}

bool SnapshotServer::feed(util::SimTime until) { return feed_.push(until); }

std::size_t SnapshotServer::feed_all() {
  const std::int64_t ep =
      serve_.epoch_duration > 0 ? serve_.epoch_duration : util::kSecondsPerDay;
  std::size_t n = 0;
  for (util::SimTime t = feed_from_ + ep;; t += ep) {
    const util::SimTime tick = std::min<util::SimTime>(t, window_end());
    if (!feed_.push(tick)) break;
    ++n;
    if (tick >= window_end()) break;
  }
  return n;
}

void SnapshotServer::writer_loop() {
  while (auto until = feed_.pop()) {
    EpochReport rep = engine_.advance_to(*until);
    observations_.fetch_add(rep.observations, std::memory_order_relaxed);
    auto snap = build_snapshot(rep);
    snapshot_bytes_.store(snap->bytes(), std::memory_order_relaxed);
    epochs_.fetch_add(1, std::memory_order_relaxed);
    registry_.publish(std::move(snap));
  }
}

std::shared_ptr<EpochSnapshot> SnapshotServer::build_snapshot(
    const EpochReport& rep) {
  auto snap = std::make_shared<EpochSnapshot>();
  snap->index_ = index_;
  engine_.extract_rows(snap->rows_);

  // Trend tails from the stable emitted prefixes.
  const std::int64_t step = config_.recon.sample_step;
  snap->trend_refs_.resize(snap->rows_.size());
  for (std::size_t i = 0; i < snap->rows_.size(); ++i) {
    const auto s = engine_.emitted_series(i);
    const std::size_t len =
        serve_.trend_tail == 0 ? s.size() : std::min(serve_.trend_tail,
                                                     s.size());
    EpochSnapshot::TrendRef& t = snap->trend_refs_[i];
    t.offset = snap->trend_data_.size();
    t.len = len;
    const std::size_t first = s.size() - len;
    t.start = engine_.window_start() +
              static_cast<std::int64_t>(first) * (step > 0 ? step : 1);
    snap->trend_data_.insert(snap->trend_data_.end(), s.end() - len, s.end());
  }

  // Cumulative alarm log: merge this epoch's (already sorted) batch.
  const auto mid = static_cast<std::ptrdiff_t>(alarm_log_.size());
  alarm_log_.insert(alarm_log_.end(), rep.provisional.begin(),
                    rep.provisional.end());
  std::inplace_merge(alarm_log_.begin(), alarm_log_.begin() + mid,
                     alarm_log_.end(), alarm_before);
  snap->alarms_ = alarm_log_;

  fill_rollups(*snap);
  snap->scorecard_.epoch_index = rep.epoch_index;
  snap->scorecard_.clock = rep.epoch_end;
  snap->scorecard_.observations_total =
      observations_.load(std::memory_order_relaxed);
  snap->scorecard_.classification_complete = rep.classification_complete;
  snap->scorecard_.funnel = rep.funnel;

  if (serve_.keep_image) {
    util::StateWriter w;
    engine_.save(w);
    snap->image_ = w.take();
  }
  return snap;
}

void SnapshotServer::fill_rollups(EpochSnapshot& snap) {
  snap.alarms_by_block_ = snap.alarms_;
  std::sort(snap.alarms_by_block_.begin(), snap.alarms_by_block_.end(),
            alarm_by_block);

  ServeScorecard& sc = snap.scorecard_;
  std::unordered_map<geo::GridCell, CellQueryStats> cells;
  cells.reserve(64);
  const double floor = config_.classifier.min_evidence_fraction;
  double evidence_sum = 0.0;
  std::size_t evidence_n = 0;
  for (std::size_t i = 0; i < snap.rows_.size(); ++i) {
    const EpochSnapshot::Row& row = snap.rows_[i];
    CellQueryStats& cs = cells[cell_of_[i]];
    cs.cell = cell_of_[i];
    ++cs.blocks;
    ++sc.blocks;
    if (row.active) ++sc.blocks_active;
    if (row.watched) {
      ++cs.watched;
      ++sc.blocks_watched;
    }
    if (row.classified) {
      ++cs.classified;
      ++sc.blocks_classified;
      if (row.cls.change_sensitive) ++cs.change_sensitive;
    }
    if (row.emitted > 0) {
      evidence_sum += row.evidence_fraction;
      ++evidence_n;
      if (row.evidence_fraction < floor) ++sc.low_evidence_blocks;
    }
  }
  sc.mean_evidence_fraction =
      evidence_n > 0 ? evidence_sum / static_cast<double>(evidence_n) : 0.0;
  for (const ProvisionalChange& a : snap.alarms_) {
    const bool up = a.direction == analysis::ChangeDirection::kUp;
    if (up) {
      ++sc.alarms_up;
    } else {
      ++sc.alarms_down;
    }
    const auto it = index_->find(a.id.id());
    if (it == index_->end()) continue;
    CellQueryStats& cs = cells[cell_of_[it->second]];
    if (up) {
      ++cs.alarms_up;
    } else {
      ++cs.alarms_down;
    }
  }
  snap.cells_.reserve(cells.size());
  for (auto& [cell, stats] : cells) snap.cells_.push_back(stats);
  std::sort(snap.cells_.begin(), snap.cells_.end(),
            [](const CellQueryStats& a, const CellQueryStats& b) {
              if (a.cell.lat_idx != b.cell.lat_idx) {
                return a.cell.lat_idx < b.cell.lat_idx;
              }
              return a.cell.lon_idx < b.cell.lon_idx;
            });
}

FleetResult SnapshotServer::drain() {
  assert(!finished_);
  feed_.close();
  if (writer_.joinable()) writer_.join();

  // Final snapshot: live ingest counters come from the engine before
  // finalize spends it; verdicts, series and funnel from the
  // authoritative result after.
  auto snap = std::make_shared<EpochSnapshot>();
  snap->final_ = true;
  snap->index_ = index_;
  engine_.extract_rows(snap->rows_);

  FleetResult res = engine_.finalize();
  finished_ = true;

  const std::int64_t step = config_.recon.sample_step;
  snap->trend_refs_.resize(snap->rows_.size());
  for (std::size_t i = 0; i < snap->rows_.size(); ++i) {
    EpochSnapshot::Row& row = snap->rows_[i];
    row.active = false;
    row.classified = true;
    row.cls = res.outcomes[i].cls;
    row.degradation = res.degradation.blocks[i];
    const auto s = res.series.series(i);
    row.emitted = s.size();
    if (blocks_[i].eb_count > 0) {
      row.evidence_fraction = res.degradation.blocks[i].evidence_fraction;
      row.max_gap_hours = res.degradation.blocks[i].max_gap_hours;
    }
    const std::size_t len =
        serve_.trend_tail == 0 ? s.size() : std::min(serve_.trend_tail,
                                                     s.size());
    EpochSnapshot::TrendRef& t = snap->trend_refs_[i];
    t.offset = snap->trend_data_.size();
    t.len = len;
    const std::size_t first = s.size() - len;
    t.start = engine_.window_start() +
              static_cast<std::int64_t>(first) * (step > 0 ? step : 1);
    snap->trend_data_.insert(snap->trend_data_.end(), s.end() - len, s.end());
  }

  snap->alarms_ = alarm_log_;
  fill_rollups(*snap);
  snap->scorecard_.epoch_index = epochs_.load(std::memory_order_relaxed);
  snap->scorecard_.clock = window_end();
  snap->scorecard_.observations_total =
      observations_.load(std::memory_order_relaxed);
  snap->scorecard_.classification_complete = true;
  snap->scorecard_.funnel = res.funnel;

  snapshot_bytes_.store(snap->bytes(), std::memory_order_relaxed);
  registry_.publish(std::move(snap));
  registry_.close();
  return res;
}

void SnapshotServer::stop() {
  feed_.close();
  if (writer_.joinable()) writer_.join();
  registry_.close();
}

ServeStats SnapshotServer::stats() const {
  ServeStats s;
  s.epochs_published = epochs_.load(std::memory_order_relaxed);
  s.observations = observations_.load(std::memory_order_relaxed);
  s.feed_accepted = feed_.pushed();
  s.feed_waits = feed_.push_waits();
  s.feed_peak_depth = feed_.peak_size();
  s.feed_capacity = feed_.capacity();
  s.snapshot_bytes = snapshot_bytes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace diurnal::core
