#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace diurnal::core {

namespace {

recon::BlockObservationConfig observation_config(const FleetConfig& cfg,
                                                 const DatasetSpec& ds) {
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.loss = probe::LossModel(cfg.loss);
  oc.window = ds.window();
  oc.prober.kind =
      ds.survey ? probe::ProberKind::kSurvey : probe::ProberKind::kTrinocular;
  oc.one_loss_repair = cfg.one_loss_repair;
  oc.additional_observations = cfg.additional_observations;
  oc.faults = &cfg.faults;
  oc.recon = cfg.recon;
  return oc;
}

// Degraded-mode annotation: a change whose evidence window overlaps a
// coverage gap (or whose whole reconstruction fell below the confidence
// floor) may be observers failing rather than humans moving.  One day of
// slack on each side, because STL smoothing and CUSUM change-dating can
// land the excursion boundary a few samples off the gap edge.
void annotate_low_evidence(std::vector<DetectedChange>& changes,
                           const recon::ReconResult& recon,
                           double evidence_floor) {
  if (changes.empty()) return;
  const bool all_low = recon.evidence_fraction < evidence_floor;
  constexpr util::SimTime kSlack = util::kSecondsPerDay;
  for (auto& c : changes) {
    if (all_low) {
      c.low_evidence = true;
      continue;
    }
    for (const auto& g : recon.gaps) {
      if (c.start - kSlack < g.end && c.end + kSlack > g.start) {
        c.low_evidence = true;
        break;
      }
    }
  }
}

}  // namespace

FleetResult run_fleet(const sim::World& world, const FleetConfig& config) {
  const auto& blocks = world.blocks();
  FleetResult result;
  result.outcomes.resize(blocks.size());
  result.degradation.blocks.resize(blocks.size());

  const DatasetSpec& classify_ds =
      config.classify_dataset ? *config.classify_dataset : config.dataset;
  const bool same_window =
      !config.classify_dataset ||
      (classify_ds.window().start == config.dataset.window().start &&
       classify_ds.window().end == config.dataset.window().end &&
       classify_ds.sites == config.dataset.sites &&
       classify_ds.survey == config.dataset.survey);

  const auto classify_oc = observation_config(config, classify_ds);
  const auto detect_oc = observation_config(config, config.dataset);
  const double evidence_floor = config.classifier.min_evidence_fraction;

  unsigned n_threads = config.threads > 0
                           ? static_cast<unsigned>(config.threads)
                           : std::max(1u, std::thread::hardware_concurrency());
  n_threads = std::min<unsigned>(n_threads, 64);

  // Chunked self-scheduling: workers steal fixed runs of consecutive
  // blocks from a shared counter.  Chunks amortize the atomic to one
  // fetch_add per kChunk blocks while still load-balancing (block costs
  // vary by orders of magnitude between categories); consecutive blocks
  // also keep each worker's scratch buffers at a stable working size.
  // Each block's outcome and degradation row land in their own result
  // slots, so the schedule cannot affect the output (see bench_fleet's
  // determinism gate) — fault injection included, because every fault
  // draw is a stateless hash, never shared RNG state.
  constexpr std::size_t kChunk = 16;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    probe::ProbeScratch scratch;
    recon::DegradedReconResult classify_dr;
    recon::DegradedReconResult detect_dr;
    for (;;) {
      const std::size_t begin =
          next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= blocks.size()) return;
      const std::size_t end = std::min(begin + kChunk, blocks.size());
      for (std::size_t i = begin; i < end; ++i) {
        const auto& block = blocks[i];
        BlockOutcome& out = result.outcomes[i];
        out.id = block.id;
        if (block.eb_count == 0) continue;  // never responds

        recon::observe_and_reconstruct_degraded(block, classify_oc, scratch,
                                                classify_dr);
        const recon::ReconResult& classify_recon = classify_dr.recon;
        out.cls = classify_block(classify_recon, config.classifier);
        result.degradation.blocks[i] = fault::summarize_block(
            classify_dr.observers,
            static_cast<int>(classify_dr.observers.size()), classify_oc.window,
            classify_recon.evidence_fraction, classify_recon.max_gap_seconds,
            evidence_floor);
        if (!out.cls.change_sensitive || !config.run_detection) continue;

        if (same_window) {
          out.changes =
              detect_changes(classify_recon.counts, config.detector).changes;
          annotate_low_evidence(out.changes, classify_recon, evidence_floor);
        } else {
          recon::observe_and_reconstruct_degraded(block, detect_oc, scratch,
                                                  detect_dr);
          out.changes =
              detect_changes(detect_dr.recon.counts, config.detector).changes;
          annotate_low_evidence(out.changes, detect_dr.recon, evidence_floor);
        }
      }
    }
  };

  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  for (const auto& out : result.outcomes) result.funnel.add(out.cls);
  result.degradation.finalize();
  return result;
}

ChangeAggregator aggregate_changes(const sim::World& world,
                                   const FleetResult& result,
                                   const FleetConfig& config) {
  const auto window = config.dataset.window();
  ChangeAggregator agg(window.start, window.end);
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& out = result.outcomes[i];
    if (!out.cls.change_sensitive) continue;
    const auto& b = blocks[i];
    agg.add_block(b.cell(), geo::countries()[b.country].continent, out.changes);
  }
  return agg;
}

}  // namespace diurnal::core
