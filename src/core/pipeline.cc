#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace diurnal::core {

namespace {

recon::BlockObservationConfig observation_config(const FleetConfig& cfg,
                                                 const DatasetSpec& ds) {
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.loss = probe::LossModel(cfg.loss);
  oc.window = ds.window();
  oc.prober.kind =
      ds.survey ? probe::ProberKind::kSurvey : probe::ProberKind::kTrinocular;
  oc.one_loss_repair = cfg.one_loss_repair;
  oc.additional_observations = cfg.additional_observations;
  oc.recon = cfg.recon;
  return oc;
}

}  // namespace

FleetResult run_fleet(const sim::World& world, const FleetConfig& config) {
  const auto& blocks = world.blocks();
  FleetResult result;
  result.outcomes.resize(blocks.size());

  const DatasetSpec& classify_ds =
      config.classify_dataset ? *config.classify_dataset : config.dataset;
  const bool same_window =
      !config.classify_dataset ||
      (classify_ds.window().start == config.dataset.window().start &&
       classify_ds.window().end == config.dataset.window().end &&
       classify_ds.sites == config.dataset.sites &&
       classify_ds.survey == config.dataset.survey);

  const auto classify_oc = observation_config(config, classify_ds);
  const auto detect_oc = observation_config(config, config.dataset);

  unsigned n_threads = config.threads > 0
                           ? static_cast<unsigned>(config.threads)
                           : std::max(1u, std::thread::hardware_concurrency());
  n_threads = std::min<unsigned>(n_threads, 64);

  // Chunked self-scheduling: workers steal fixed runs of consecutive
  // blocks from a shared counter.  Chunks amortize the atomic to one
  // fetch_add per kChunk blocks while still load-balancing (block costs
  // vary by orders of magnitude between categories); consecutive blocks
  // also keep each worker's scratch buffers at a stable working size.
  // Each block's outcome lands in its own result slot, so the schedule
  // cannot affect the output (see bench_fleet's determinism gate).
  constexpr std::size_t kChunk = 16;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    probe::ProbeScratch scratch;
    for (;;) {
      const std::size_t begin =
          next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= blocks.size()) return;
      const std::size_t end = std::min(begin + kChunk, blocks.size());
      for (std::size_t i = begin; i < end; ++i) {
        const auto& block = blocks[i];
        BlockOutcome& out = result.outcomes[i];
        out.id = block.id;
        if (block.eb_count == 0) continue;  // never responds

        const auto classify_recon =
            recon::observe_and_reconstruct(block, classify_oc, scratch);
        out.cls = classify_block(classify_recon, config.classifier);
        if (!out.cls.change_sensitive || !config.run_detection) continue;

        if (same_window) {
          out.changes =
              detect_changes(classify_recon.counts, config.detector).changes;
        } else {
          const auto detect_recon =
              recon::observe_and_reconstruct(block, detect_oc, scratch);
          out.changes =
              detect_changes(detect_recon.counts, config.detector).changes;
        }
      }
    }
  };

  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  for (const auto& out : result.outcomes) result.funnel.add(out.cls);
  return result;
}

ChangeAggregator aggregate_changes(const sim::World& world,
                                   const FleetResult& result,
                                   const FleetConfig& config) {
  const auto window = config.dataset.window();
  ChangeAggregator agg(window.start, window.end);
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& out = result.outcomes[i];
    if (!out.cls.change_sensitive) continue;
    const auto& b = blocks[i];
    agg.add_block(b.cell(), geo::countries()[b.country].continent, out.changes);
  }
  return agg;
}

}  // namespace diurnal::core
