#include "core/pipeline.h"

#include "core/streaming.h"

namespace diurnal::core {

// One pipeline implementation: the batch entry point is the streaming
// engine driven start-to-finish (see core/streaming.h for the staging
// and the equivalence contract).
FleetResult run_fleet(const sim::World& world, const FleetConfig& config) {
  StreamingFleet fleet(world, config);
  return fleet.run_to_completion();
}

ChangeAggregator aggregate_changes(const sim::World& world,
                                   const FleetResult& result,
                                   const FleetConfig& config) {
  const auto window = config.dataset.window();
  ChangeAggregator agg(window.start, window.end);
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const auto& out = result.outcomes[i];
    if (!out.cls.change_sensitive) continue;
    const auto& b = blocks[i];
    agg.add_block(b.cell(), geo::countries()[b.country].continent, out.changes);
  }
  return agg;
}

}  // namespace diurnal::core
