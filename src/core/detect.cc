#include "core/detect.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "analysis/naive_seasonal.h"
#include "analysis/stats.h"

namespace diurnal::core {

std::vector<DetectedChange> DetectionResult::activity_changes() const {
  std::vector<DetectedChange> out;
  for (const auto& c : changes) {
    if (c.counted()) out.push_back(c);
  }
  return out;
}

namespace {

// Marks closely paired opposite-direction changes as outage/renumbering
// artifacts (section 2.6): an outage is a down change followed shortly
// by a comparable up change; renumbering produces the same signature.
void filter_outage_pairs(std::vector<DetectedChange>& changes,
                         const DetectorOptions& opt) {
  for (std::size_t i = 0; i + 1 < changes.size(); ++i) {
    auto& a = changes[i];
    auto& b = changes[i + 1];
    if (a.direction == b.direction) continue;
    if (b.alarm - a.alarm > opt.outage_pair_window) continue;
    const double amp_a = std::abs(a.amplitude);
    const double amp_b = std::abs(b.amplitude);
    if (std::min(amp_a, amp_b) >=
        opt.outage_amplitude_ratio * std::max(amp_a, amp_b)) {
      a.filtered_as_outage = true;
      b.filtered_as_outage = true;
    }
  }
}

// Crude raw-counts outage detector: maximal runs where the count falls
// below a fraction of the block's typical level, bounded on both sides
// and short enough to be an outage rather than a behaviour change.
struct RawInterval {
  util::SimTime start;
  util::SimTime end;
};

std::vector<RawInterval> detect_raw_outages(const util::TimeSeries& counts,
                                            const DetectorOptions& opt) {
  std::vector<RawInterval> out;
  if (counts.size() < 8 || counts.step() <= 0 ||
      counts.step() > util::kSecondsPerHour * 6) {
    return out;
  }

  // Per-hour-of-week median profile: a work-week block is *normally*
  // quiet at night and on weekends, so only hours that are typically
  // active can evidence an outage.  (Real outage detectors have the
  // same blind spot.)  Needs a few weeks of data to be meaningful.
  auto hour_of_week = [&](std::size_t i) {
    const util::SimTime t = counts.time_at(i);
    return static_cast<std::size_t>(util::weekday_of(t)) * 24 +
           static_cast<std::size_t>(util::hour_of_day(t));
  };
  if (counts.size() < 4 * 168 * static_cast<std::size_t>(
                          util::kSecondsPerHour / counts.step() + 1) &&
      counts.end_time() - counts.start() < 28 * util::kSecondsPerDay) {
    return out;
  }
  std::array<std::vector<double>, 168> by_hour;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    by_hour[hour_of_week(i)].push_back(counts[i]);
  }
  std::array<double, 168> profile{};
  bool any_active_hour = false;
  for (std::size_t h = 0; h < 168; ++h) {
    profile[h] = analysis::median(by_hour[h]);
    any_active_hour |= profile[h] >= 2.0;
  }
  if (!any_active_hour) return out;

  // A run of "anomalously low at a normally-active hour" samples, with
  // non-informative (normally quiet) hours bridged, bounded on both
  // sides, and short enough to be an outage rather than a behaviour
  // change.
  enum class Sample { kLow, kNormal, kUninformative };
  // A blackout means *nobody* answers — not even the always-on
  // infrastructure that keeps replying through holidays and WFH.  This
  // is what distinguishes an outage dip from a human-activity dip.
  auto classify = [&](std::size_t i) {
    const double med = profile[hour_of_week(i)];
    if (med < 2.0) return Sample::kUninformative;
    return counts[i] < std::max(1.0, opt.outage_level_fraction * med * 0.5)
               ? Sample::kLow
               : Sample::kNormal;
  };

  bool in_run = false;
  bool bounded_left = false;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    switch (classify(i)) {
      case Sample::kUninformative:
        break;  // bridges a run, neither starts nor ends one
      case Sample::kLow:
        if (!in_run) {
          in_run = true;
          run_start = i;
        }
        break;
      case Sample::kNormal:
        if (in_run) {
          in_run = false;
          const util::SimTime t0 = counts.time_at(run_start);
          const util::SimTime t1 = counts.time_at(i);
          if (bounded_left && t1 - t0 <= opt.max_outage_duration) {
            out.push_back(RawInterval{t0, t1});
          }
        }
        bounded_left = true;
        break;
    }
  }
  // A run still open at the series end is unbounded: not a confirmed
  // outage (it could be WFH in progress).
  return out;
}

}  // namespace

DetectionResult detect_changes(const util::TimeSeries& counts,
                               const DetectorOptions& opt) {
  DetectionResult res;
  if (counts.empty() || counts.step() <= 0) return res;

  const int period = static_cast<int>(opt.period_seconds / counts.step());
  if (period < 2 ||
      counts.size() < static_cast<std::size_t>(2 * period)) {
    return res;
  }

  analysis::StlDecomposition dec;
  if (opt.trend_model == TrendModel::kNaive) {
    const auto naive = analysis::naive_decompose(counts.span(), period);
    dec.trend = naive.trend;
    dec.seasonal = naive.seasonal;
    dec.residual = naive.residual;
  } else {
    analysis::StlOptions stl = opt.stl;
    stl.period = period;
    if (stl.trend_span == 0) {
      // The Cleveland default (~2 periods) over-smooths step changes,
      // diluting their measured amplitude and delaying the alarm; a
      // span of ~1.25 periods keeps the trend responsive while still
      // suppressing population-churn wiggles.
      stl.trend_span = period + period / 4 + 1;
    }
    dec = analysis::stl_decompose(counts.span(), stl);
  }

  res.trend = util::TimeSeries(counts.start(), counts.step(), dec.trend);
  res.seasonal = util::TimeSeries(counts.start(), counts.step(), dec.seasonal);
  res.residual = util::TimeSeries(counts.start(), counts.step(), dec.residual);
  res.normalized_trend = res.trend.zscore();

  auto cus = analysis::cusum_detect(res.normalized_trend.span(), opt.cusum);
  res.cusum_pos = std::move(cus.g_pos);
  res.cusum_neg = std::move(cus.g_neg);

  res.changes.reserve(cus.changes.size());
  for (const auto& cp : cus.changes) {
    DetectedChange c;
    c.start = res.normalized_trend.time_at(cp.start);
    c.alarm = res.normalized_trend.time_at(cp.alarm);
    c.end = res.normalized_trend.time_at(cp.end);
    c.direction = cp.direction;
    c.amplitude = cp.amplitude;
    c.amplitude_addresses = dec.trend[cp.end] - dec.trend[cp.start];
    c.filtered_small =
        std::abs(c.amplitude_addresses) < opt.min_change_addresses;
    res.changes.push_back(c);
  }
  filter_outage_pairs(res.changes, opt);

  // Cross-check against raw-counts outages (section 2.6): an adjacent
  // down/up pair is an outage artifact when a short, bounded blackout of
  // the raw counts *begins during the down excursion and ends during the
  // up excursion* — i.e. the blackout explains the pair.  Anchoring both
  // ends keeps week-long holidays (low runs > max_outage_duration) and
  // changes that merely sit near an unrelated one-hour outage alive.
  const auto outages = detect_raw_outages(counts, opt);
  if (!outages.empty()) {
    const std::int64_t margin = util::kSecondsPerDay;
    for (std::size_t i = 0; i + 1 < res.changes.size(); ++i) {
      auto& a = res.changes[i];
      auto& b = res.changes[i + 1];
      if (a.direction != analysis::ChangeDirection::kDown ||
          b.direction != analysis::ChangeDirection::kUp) {
        continue;
      }
      for (const auto& o : outages) {
        if (o.start >= a.start - margin && o.start <= a.end + margin &&
            o.end >= b.start - margin && o.end <= b.end + margin) {
          a.filtered_as_outage = true;
          b.filtered_as_outage = true;
          break;
        }
      }
    }
  }
  return res;
}

}  // namespace diurnal::core
