#include "core/detect.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "analysis/naive_seasonal.h"
#include "analysis/stats.h"

namespace diurnal::core {

std::vector<DetectedChange> DetectionResult::activity_changes() const {
  std::vector<DetectedChange> out;
  for (const auto& c : changes) {
    if (c.counted()) out.push_back(c);
  }
  return out;
}

namespace {

// Marks closely paired opposite-direction changes as outage/renumbering
// artifacts (section 2.6): an outage is a down change followed shortly
// by a comparable up change; renumbering produces the same signature.
void filter_outage_pairs(std::vector<DetectedChange>& changes,
                         const DetectorOptions& opt) {
  for (std::size_t i = 0; i + 1 < changes.size(); ++i) {
    auto& a = changes[i];
    auto& b = changes[i + 1];
    if (a.direction == b.direction) continue;
    if (b.alarm - a.alarm > opt.outage_pair_window) continue;
    const double amp_a = std::abs(a.amplitude);
    const double amp_b = std::abs(b.amplitude);
    if (std::min(amp_a, amp_b) >=
        opt.outage_amplitude_ratio * std::max(amp_a, amp_b)) {
      a.filtered_as_outage = true;
      b.filtered_as_outage = true;
    }
  }
}

// Crude raw-counts outage detector: maximal runs where the count falls
// below a fraction of the block's typical level, bounded on both sides
// and short enough to be an outage rather than a behaviour change.
struct RawInterval {
  util::SimTime start;
  util::SimTime end;
};

void detect_raw_outages(std::span<const double> counts, util::SimTime start,
                        std::int64_t step, const DetectorOptions& opt,
                        analysis::Workspace& ws,
                        std::vector<RawInterval>& out) {
  out.clear();
  if (counts.size() < 8 || step <= 0 || step > util::kSecondsPerHour * 6) {
    return;
  }

  // Per-hour-of-week median profile: a work-week block is *normally*
  // quiet at night and on weekends, so only hours that are typically
  // active can evidence an outage.  (Real outage detectors have the
  // same blind spot.)  Needs a few weeks of data to be meaningful.
  auto time_at = [&](std::size_t i) {
    return start + static_cast<std::int64_t>(i) * step;
  };
  auto hour_of_week = [&](std::size_t i) {
    const util::SimTime t = time_at(i);
    return static_cast<std::size_t>(util::weekday_of(t)) * 24 +
           static_cast<std::size_t>(util::hour_of_day(t));
  };
  if (counts.size() < 4 * 168 * static_cast<std::size_t>(
                          util::kSecondsPerHour / step + 1) &&
      time_at(counts.size()) - start < 28 * util::kSecondsPerDay) {
    return;
  }
  // Counting sort by hour-of-week into one leased buffer, then sort
  // each hour's segment in place: same multiset per hour as the legacy
  // 168-vector bucketing, so quantile_sorted() reproduces
  // analysis::median() bit for bit with no per-call allocation.
  std::array<std::size_t, 168> cnt{};
  for (std::size_t i = 0; i < counts.size(); ++i) ++cnt[hour_of_week(i)];
  auto lease = ws.acquire(counts.size());
  const std::span<double> buckets = lease.span();
  std::array<std::size_t, 168> off{};
  std::size_t acc = 0;
  for (std::size_t h = 0; h < 168; ++h) {
    off[h] = acc;
    acc += cnt[h];
  }
  std::array<std::size_t, 168> cur = off;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    buckets[cur[hour_of_week(i)]++] = counts[i];
  }
  std::array<double, 168> profile{};
  bool any_active_hour = false;
  for (std::size_t h = 0; h < 168; ++h) {
    const std::span<double> seg = buckets.subspan(off[h], cnt[h]);
    std::sort(seg.begin(), seg.end());
    profile[h] = analysis::quantile_sorted(seg, 0.5);
    any_active_hour |= profile[h] >= 2.0;
  }
  if (!any_active_hour) return;

  // A run of "anomalously low at a normally-active hour" samples, with
  // non-informative (normally quiet) hours bridged, bounded on both
  // sides, and short enough to be an outage rather than a behaviour
  // change.
  enum class Sample { kLow, kNormal, kUninformative };
  // A blackout means *nobody* answers — not even the always-on
  // infrastructure that keeps replying through holidays and WFH.  This
  // is what distinguishes an outage dip from a human-activity dip.
  auto classify = [&](std::size_t i) {
    const double med = profile[hour_of_week(i)];
    if (med < 2.0) return Sample::kUninformative;
    return counts[i] < std::max(1.0, opt.outage_level_fraction * med * 0.5)
               ? Sample::kLow
               : Sample::kNormal;
  };

  bool in_run = false;
  bool bounded_left = false;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    switch (classify(i)) {
      case Sample::kUninformative:
        break;  // bridges a run, neither starts nor ends one
      case Sample::kLow:
        if (!in_run) {
          in_run = true;
          run_start = i;
        }
        break;
      case Sample::kNormal:
        if (in_run) {
          in_run = false;
          const util::SimTime t0 = time_at(run_start);
          const util::SimTime t1 = time_at(i);
          if (bounded_left && t1 - t0 <= opt.max_outage_duration) {
            out.push_back(RawInterval{t0, t1});
          }
        }
        bounded_left = true;
        break;
    }
  }
  // A run still open at the series end is unbounded: not a confirmed
  // outage (it could be WFH in progress).
}

// Raw-volume corroboration (DetectorOptions::phase_shift_filter): the
// mean of the raw counts over one seasonal period on each side of the
// change must move by a fraction of the claimed trend step.  A window
// of one full period averages out the daily and weekly structure, so
// the comparison sees volume, not phase.  Changes too close to a
// series edge for a half-period window on both sides are left alone
// (conservative: never discard for lack of evidence).
void filter_uncorroborated_changes(std::span<const double> counts,
                                   util::SimTime start, std::int64_t step,
                                   const DetectorOptions& opt,
                                   std::vector<DetectedChange>& changes) {
  const auto n = static_cast<std::int64_t>(counts.size());
  const std::int64_t window = opt.period_seconds / step;
  for (auto& c : changes) {
    if (c.filtered_as_outage || c.filtered_small) continue;
    const std::int64_t lo = (c.start - start) / step;
    const std::int64_t hi = (c.end - start) / step;
    // Pre-change window outside the excursion; an excursion starting at
    // the series edge substitutes its own head (the drift accumulates
    // through the excursion, so the head still sits near the old level).
    std::int64_t b_lo = std::max<std::int64_t>(0, lo - window);
    std::int64_t b_hi = lo;
    if (b_hi - b_lo < window / 2) {
      b_lo = lo;
      b_hi = std::min(hi, lo + window);
    }
    // Post-change window, mirrored for excursions open at the series end.
    std::int64_t a_lo = hi;
    std::int64_t a_hi = std::min(n, hi + window);
    if (a_hi - a_lo < window / 2) {
      a_hi = hi;
      a_lo = std::max(lo, hi - window);
    }
    if (b_hi - b_lo < window / 2 || a_hi - a_lo < window / 2) {
      continue;
    }
    double before = 0.0;
    for (std::int64_t i = b_lo; i < b_hi; ++i) before += counts[i];
    before /= static_cast<double>(b_hi - b_lo);
    double after = 0.0;
    for (std::int64_t i = a_lo; i < a_hi; ++i) after += counts[i];
    after /= static_cast<double>(a_hi - a_lo);
    if (std::abs(after - before) < opt.phase_corroboration_ratio *
                                       std::abs(c.amplitude_addresses)) {
      c.filtered_phase_only = true;
    }
  }
}

// Everything after the trend -> z-score -> CUSUM chain: turning change
// points into annotated DetectedChanges and running the outage
// filters.  Shared verbatim by the scalar path (run_detection) and the
// batched per-lane path (BatchDetector::flush), so the two stay
// bit-identical by construction.
void extract_changes(std::span<const double> counts, util::SimTime start,
                     std::int64_t step, const DetectorOptions& opt,
                     std::span<const analysis::ChangePoint> cps,
                     std::span<const double> trend, analysis::Workspace& ws,
                     std::vector<DetectedChange>& changes) {
  auto time_at = [&](std::size_t i) {
    return start + static_cast<std::int64_t>(i) * step;
  };
  changes.reserve(cps.size());
  for (const auto& cp : cps) {
    DetectedChange c;
    c.start = time_at(cp.start);
    c.alarm = time_at(cp.alarm);
    c.end = time_at(cp.end);
    c.direction = cp.direction;
    c.amplitude = cp.amplitude;
    c.amplitude_addresses = trend[cp.end] - trend[cp.start];
    c.filtered_small =
        std::abs(c.amplitude_addresses) < opt.min_change_addresses;
    changes.push_back(c);
  }
  filter_outage_pairs(changes, opt);

  // Cross-check against raw-counts outages (section 2.6): an adjacent
  // down/up pair is an outage artifact when a short, bounded blackout of
  // the raw counts *begins during the down excursion and ends during the
  // up excursion* — i.e. the blackout explains the pair.  Anchoring both
  // ends keeps week-long holidays (low runs > max_outage_duration) and
  // changes that merely sit near an unrelated one-hour outage alive.
  std::vector<RawInterval> outages;
  detect_raw_outages(counts, start, step, opt, ws, outages);
  if (!outages.empty()) {
    const std::int64_t margin = util::kSecondsPerDay;
    for (std::size_t i = 0; i + 1 < changes.size(); ++i) {
      auto& a = changes[i];
      auto& b = changes[i + 1];
      if (a.direction != analysis::ChangeDirection::kDown ||
          b.direction != analysis::ChangeDirection::kUp) {
        continue;
      }
      for (const auto& o : outages) {
        if (o.start >= a.start - margin && o.start <= a.end + margin &&
            o.end >= b.start - margin && o.end <= b.end + margin) {
          a.filtered_as_outage = true;
          b.filtered_as_outage = true;
          break;
        }
      }
    }
  }

  if (opt.phase_shift_filter) {
    filter_uncorroborated_changes(counts, start, step, opt, changes);
  }
}

// The detector's per-series STL configuration (trend span responsive
// to ~1.25 periods; see the comment in run_detection's scalar twin).
analysis::StlOptions detector_stl_options(const DetectorOptions& opt,
                                          int period) {
  analysis::StlOptions stl = opt.stl;
  stl.period = period;
  if (stl.trend_span == 0) {
    // The Cleveland default (~2 periods) over-smooths step changes,
    // diluting their measured amplitude and delaying the alarm; a
    // span of ~1.25 periods keeps the trend responsive while still
    // suppressing population-churn wiggles.
    stl.trend_span = period + period / 4 + 1;
  }
  return stl;
}

// The whole detection stage over span kernels.  `rich` non-null also
// materializes the component series of the legacy DetectionResult.
void run_detection(std::span<const double> counts, util::SimTime start,
                   std::int64_t step, const DetectorOptions& opt,
                   analysis::BlockAnalyzer& az,
                   std::vector<DetectedChange>& changes,
                   DetectionResult* rich) {
  changes.clear();
  if (counts.empty() || step <= 0) return;

  const int period = static_cast<int>(opt.period_seconds / step);
  if (period < 2 || counts.size() < static_cast<std::size_t>(2 * period)) {
    return;
  }

  analysis::BlockAnalyzer::Decomposition dec;
  if (opt.trend_model == TrendModel::kNaive) {
    dec = az.decompose_naive(counts, period);
  } else {
    dec = az.decompose_stl(counts, detector_stl_options(opt, period));
  }

  const auto z = az.zscore(dec.trend);
  const auto cus = az.cusum(z, opt.cusum);
  extract_changes(counts, start, step, opt, cus.changes, dec.trend,
                  az.workspace(), changes);

  if (rich != nullptr) {
    rich->trend = util::TimeSeries(start, step,
                                   std::vector<double>(dec.trend.begin(),
                                                       dec.trend.end()));
    rich->seasonal = util::TimeSeries(
        start, step,
        std::vector<double>(dec.seasonal.begin(), dec.seasonal.end()));
    rich->residual = util::TimeSeries(
        start, step,
        std::vector<double>(dec.residual.begin(), dec.residual.end()));
    rich->normalized_trend =
        util::TimeSeries(start, step, std::vector<double>(z.begin(), z.end()));
    rich->cusum_pos.assign(cus.g_pos.begin(), cus.g_pos.end());
    rich->cusum_neg.assign(cus.g_neg.begin(), cus.g_neg.end());
  }
}

}  // namespace

void detect_changes(std::span<const double> counts, util::SimTime start,
                    std::int64_t step, const DetectorOptions& opt,
                    analysis::BlockAnalyzer& az,
                    std::vector<DetectedChange>& changes) {
  run_detection(counts, start, step, opt, az, changes, nullptr);
}

DetectionResult detect_changes(const util::TimeSeries& counts,
                               const DetectorOptions& opt) {
  thread_local analysis::BlockAnalyzer az;
  DetectionResult res;
  run_detection(counts.span(), counts.start(), counts.step(), opt, az,
                res.changes, &res);
  return res;
}

BatchDetector::BatchDetector(const DetectorOptions& opt,
                             std::size_t max_lanes)
    : opt_(opt),
      max_lanes_(std::clamp<std::size_t>(max_lanes, 1,
                                         analysis::BatchAnalyzer::kMaxLanes)) {
}

void BatchDetector::enqueue(std::span<const double> counts,
                            util::SimTime start, std::int64_t step,
                            std::vector<DetectedChange>* out) {
  out->clear();
  // The scalar path's early outs: such blocks produce no changes and
  // never reach the analysis chain, so they are not queued.
  if (counts.empty() || step <= 0) return;
  const int period = static_cast<int>(opt_.period_seconds / step);
  if (period < 2 || counts.size() < static_cast<std::size_t>(2 * period)) {
    return;
  }
  jobs_[pending_++] = Job{counts, start, step, out};
  if (pending_ == max_lanes_) flush();
}

void BatchDetector::flush() {
  std::array<bool, analysis::BatchAnalyzer::kMaxLanes> done{};
  std::array<std::span<const double>, analysis::BatchAnalyzer::kMaxLanes>
      lanes;
  std::array<std::size_t, analysis::BatchAnalyzer::kMaxLanes> job_of_lane;
  for (std::size_t i = 0; i < pending_; ++i) {
    if (done[i]) continue;
    // One SoA batch per (length, step) shape; ragged tails simply run
    // as narrower batches.
    std::size_t width = 0;
    for (std::size_t k = i; k < pending_; ++k) {
      if (done[k]) continue;
      if (jobs_[k].counts.size() == jobs_[i].counts.size() &&
          jobs_[k].step == jobs_[i].step) {
        lanes[width] = jobs_[k].counts;
        job_of_lane[width] = k;
        done[k] = true;
        ++width;
      }
    }
    const int period =
        static_cast<int>(opt_.period_seconds / jobs_[i].step);
    az_.run_detection_chain(
        std::span<const std::span<const double>>(lanes.data(), width),
        detector_stl_options(opt_, period), opt_.cusum);
    for (std::size_t j = 0; j < width; ++j) {
      Job& job = jobs_[job_of_lane[j]];
      extract_changes(job.counts, job.start, job.step, opt_, az_.changes(j),
                      az_.trend(j), az_.workspace(), *job.out);
    }
  }
  pending_ = 0;
}

}  // namespace diurnal::core
