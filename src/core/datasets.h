// Dataset registry (paper Table 6 and the derived analysis windows of
// Table 2): every experiment names its input as `<period>-<sites>`,
// e.g. "2020q1-w", "2020m1-ejnw", "2020it89-w" (the survey ground
// truth).  In the real system these map to Trinocular/survey archives;
// here they define the probing window and observer set over the
// synthetic world.
#pragma once

#include <string>
#include <vector>

#include "probe/observer.h"
#include "probe/prober.h"
#include "util/date.h"

namespace diurnal::core {

struct DatasetSpec {
  std::string abbr;       ///< e.g. "2020q1-w"
  std::string full_name;  ///< archive name, e.g. internet_outage_adaptive_a39w-20200101
  util::Date start{};
  int duration_weeks = 12;
  std::string sites;   ///< observer codes, e.g. "ejnw"
  bool survey = false; ///< survey-style probing (all addresses, all rounds)

  probe::ProbeWindow window() const;
  std::vector<probe::ObserverSpec> observers() const;
};

/// The paper's Table 6: the existing, publicly available archives.
const std::vector<DatasetSpec>& table6_datasets();

/// Resolves an analysis-window abbreviation like "2020h1-ejnw",
/// "2020m1-w", "2019q4-w", or "2020it89-w".  Periods: YYYYq1..q4
/// (12 weeks), YYYYh1 (24 weeks), YYYYm1 (first 4 weeks of the year),
/// YYYYw1..w52 (1 week, week n starting January 1 + 7(n-1) days — for
/// smoke tests and fault sweeps), and 2020it89 (the 2-week survey
/// starting 2020-02-19).  Throws std::invalid_argument for unknown
/// forms.
DatasetSpec dataset(const std::string& abbr);

}  // namespace diurnal::core
