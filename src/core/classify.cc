#include "core/classify.h"

#include <array>
#include <cstddef>
#include <stdexcept>

namespace diurnal::core {

BlockClassification classify_block(std::span<const double> counts,
                                   util::SimTime start, std::int64_t step,
                                   bool responsive, double evidence_fraction,
                                   const ClassifierOptions& opt,
                                   analysis::BlockAnalyzer& az) {
  BlockClassification c;
  c.responsive = responsive;
  c.evidence_fraction = evidence_fraction;
  c.low_confidence = evidence_fraction < opt.min_evidence_fraction;
  if (!c.responsive) return c;
  const double samples_per_day = static_cast<double>(util::kSecondsPerDay) /
                                 static_cast<double>(step);
  c.diurnal_detail = az.diurnal(counts, samples_per_day, opt.diurnal);
  c.diurnal = c.diurnal_detail.diurnal;
  c.swing_detail = az.swing(counts, start, step, opt.swing);
  c.wide_swing = c.swing_detail.wide;
  c.change_sensitive = c.diurnal && c.wide_swing;
  return c;
}

void classify_blocks_batch(std::span<BatchClassifyJob> jobs,
                           const ClassifierOptions& opt,
                           analysis::BatchAnalyzer& baz,
                           analysis::BlockAnalyzer& az) {
  // The funnel's cheap fields and the non-responsive early out are
  // per-job; only responsive jobs reach the analysis chain.
  for (auto& job : jobs) {
    BlockClassification& c = *job.out;
    c = BlockClassification{};
    c.responsive = job.responsive;
    c.evidence_fraction = job.evidence_fraction;
    c.low_confidence = job.evidence_fraction < opt.min_evidence_fraction;
  }

  // Batched diurnality for equal-shape responsive jobs.
  constexpr std::size_t kMax = analysis::BatchAnalyzer::kMaxLanes;
  if (jobs.size() > kMax) {
    throw std::invalid_argument("classify_blocks_batch: too many jobs");
  }
  std::array<bool, kMax> done{};
  std::array<std::span<const double>, kMax> lanes;
  std::array<std::size_t, kMax> job_of_lane;
  std::array<analysis::DiurnalResult, kMax> results;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (done[i] || !jobs[i].responsive) continue;
    std::size_t width = 0;
    for (std::size_t k = i; k < jobs.size(); ++k) {
      if (done[k] || !jobs[k].responsive) continue;
      if (jobs[k].counts.size() == jobs[i].counts.size() &&
          jobs[k].step == jobs[i].step) {
        lanes[width] = jobs[k].counts;
        job_of_lane[width] = k;
        done[k] = true;
        ++width;
      }
    }
    const double samples_per_day = static_cast<double>(util::kSecondsPerDay) /
                                   static_cast<double>(jobs[i].step);
    baz.diurnal(std::span<const std::span<const double>>(lanes.data(), width),
                samples_per_day, opt.diurnal,
                std::span<analysis::DiurnalResult>(results.data(), width));
    for (std::size_t j = 0; j < width; ++j) {
      BlockClassification& c = *jobs[job_of_lane[j]].out;
      c.diurnal_detail = results[j];
      c.diurnal = c.diurnal_detail.diurnal;
    }
  }

  // Swing gate: scalar per job (its day-bucketed quantile scan is
  // already cheap and heavily branch-dependent).
  for (auto& job : jobs) {
    if (!job.responsive) continue;
    BlockClassification& c = *job.out;
    c.swing_detail = az.swing(job.counts, job.start, job.step, opt.swing);
    c.wide_swing = c.swing_detail.wide;
    c.change_sensitive = c.diurnal && c.wide_swing;
  }
}

BlockClassification classify_block(const recon::ReconResult& recon,
                                   const ClassifierOptions& opt) {
  thread_local analysis::BlockAnalyzer az;
  return classify_block(recon.counts.span(), recon.counts.start(),
                        recon.counts.step(), recon.responsive,
                        recon.evidence_fraction, opt, az);
}

void FunnelCounts::add(const BlockClassification& c) noexcept {
  ++routed;
  if (c.low_confidence) ++low_confidence;
  if (!c.responsive) {
    ++not_responsive;
    return;
  }
  ++responsive;
  if (c.diurnal) ++diurnal; else ++not_diurnal;
  if (c.wide_swing) ++wide_swing; else ++narrow_swing;
  if (c.change_sensitive) ++change_sensitive; else ++not_change_sensitive;
}

}  // namespace diurnal::core
