#include "core/classify.h"

namespace diurnal::core {

BlockClassification classify_block(std::span<const double> counts,
                                   util::SimTime start, std::int64_t step,
                                   bool responsive, double evidence_fraction,
                                   const ClassifierOptions& opt,
                                   analysis::BlockAnalyzer& az) {
  BlockClassification c;
  c.responsive = responsive;
  c.evidence_fraction = evidence_fraction;
  c.low_confidence = evidence_fraction < opt.min_evidence_fraction;
  if (!c.responsive) return c;
  const double samples_per_day = static_cast<double>(util::kSecondsPerDay) /
                                 static_cast<double>(step);
  c.diurnal_detail = az.diurnal(counts, samples_per_day, opt.diurnal);
  c.diurnal = c.diurnal_detail.diurnal;
  c.swing_detail = az.swing(counts, start, step, opt.swing);
  c.wide_swing = c.swing_detail.wide;
  c.change_sensitive = c.diurnal && c.wide_swing;
  return c;
}

BlockClassification classify_block(const recon::ReconResult& recon,
                                   const ClassifierOptions& opt) {
  thread_local analysis::BlockAnalyzer az;
  return classify_block(recon.counts.span(), recon.counts.start(),
                        recon.counts.step(), recon.responsive,
                        recon.evidence_fraction, opt, az);
}

void FunnelCounts::add(const BlockClassification& c) noexcept {
  ++routed;
  if (c.low_confidence) ++low_confidence;
  if (!c.responsive) {
    ++not_responsive;
    return;
  }
  ++responsive;
  if (c.diurnal) ++diurnal; else ++not_diurnal;
  if (c.wide_swing) ++wide_swing; else ++narrow_swing;
  if (c.change_sensitive) ++change_sensitive; else ++not_change_sensitive;
}

}  // namespace diurnal::core
