#include "core/classify.h"

namespace diurnal::core {

BlockClassification classify_block(const recon::ReconResult& recon,
                                   const ClassifierOptions& opt) {
  BlockClassification c;
  c.responsive = recon.responsive;
  c.evidence_fraction = recon.evidence_fraction;
  c.low_confidence = recon.evidence_fraction < opt.min_evidence_fraction;
  if (!c.responsive) return c;
  c.diurnal_detail = analysis::test_diurnal(recon.counts, opt.diurnal);
  c.diurnal = c.diurnal_detail.diurnal;
  c.swing_detail = analysis::classify_swing(recon.counts, opt.swing);
  c.wide_swing = c.swing_detail.wide;
  c.change_sensitive = c.diurnal && c.wide_swing;
  return c;
}

void FunnelCounts::add(const BlockClassification& c) noexcept {
  ++routed;
  if (c.low_confidence) ++low_confidence;
  if (!c.responsive) {
    ++not_responsive;
    return;
  }
  ++responsive;
  if (c.diurnal) ++diurnal; else ++not_diurnal;
  if (c.wide_swing) ++wide_swing; else ++narrow_swing;
  if (c.change_sensitive) ++change_sensitive; else ++not_change_sensitive;
}

}  // namespace diurnal::core
