// Change-sensitive block discovery (paper section 2.4, the Table 2
// funnel): a block is change-sensitive when it is responsive, shows a
// diurnal pattern (FFT energy at 24h and harmonics), and sustains a
// persistent wide daily swing (>= 5 addresses, >= 4 of 7 consecutive
// days for at least one week).
#pragma once

#include <cstdint>
#include <span>

#include "analysis/batch_analyzer.h"
#include "analysis/block_analyzer.h"
#include "analysis/diurnal_test.h"
#include "analysis/swing.h"
#include "recon/reconstruct.h"

namespace diurnal::core {

struct ClassifierOptions {
  analysis::DiurnalOptions diurnal{};
  analysis::SwingOptions swing{};
  /// Confidence floor (degraded mode): a block whose reconstruction has
  /// fewer fresh samples than this fraction is annotated low-confidence
  /// instead of being silently misclassified.  A healthy merged fleet
  /// probes every round, so the floor only bites when observers fail.
  double min_evidence_fraction = 0.5;
};

/// One block's position in the Table 2 funnel.
struct BlockClassification {
  bool responsive = false;
  bool diurnal = false;
  bool wide_swing = false;
  bool change_sensitive = false;  ///< diurnal && wide_swing

  /// Degraded-mode annotation: the verdicts above rest on a
  /// reconstruction whose evidence fell below the confidence floor
  /// (observers dark or partial) — trust them accordingly.  Never set
  /// for a healthy fleet; does not alter the funnel verdicts themselves.
  bool low_confidence = false;
  double evidence_fraction = 1.0;

  analysis::DiurnalResult diurnal_detail{};
  analysis::SwingResult swing_detail{};
};

/// Classifies a reconstructed block.
BlockClassification classify_block(const recon::ReconResult& recon,
                                   const ClassifierOptions& opt = {});

/// Span-kernel path: classifies from the raw series plus the only two
/// reconstruction statistics the funnel consults, running the analysis
/// chain through the caller's per-thread analyzer.  Bit-identical to
/// the ReconResult overload.
BlockClassification classify_block(std::span<const double> counts,
                                   util::SimTime start, std::int64_t step,
                                   bool responsive, double evidence_fraction,
                                   const ClassifierOptions& opt,
                                   analysis::BlockAnalyzer& az);

/// One block's inputs to the batched classifier.
struct BatchClassifyJob {
  std::span<const double> counts;
  util::SimTime start = 0;
  std::int64_t step = 0;
  bool responsive = false;
  double evidence_fraction = 1.0;
  BlockClassification* out = nullptr;
};

/// Batched classification: runs the diurnality tests for equal-shape
/// responsive jobs through the SoA kernels, the swing gate scalar per
/// job.  jobs.size() must be at most
/// analysis::BatchAnalyzer::kMaxLanes (callers feed worker-local
/// batches; ragged tails are smaller job sets).  Each job's result is
/// bit-identical to classify_block() on that job.  `baz` and `az` are
/// the caller's per-thread analyzers.
void classify_blocks_batch(std::span<BatchClassifyJob> jobs,
                           const ClassifierOptions& opt,
                           analysis::BatchAnalyzer& baz,
                           analysis::BlockAnalyzer& az);

/// Table 2 row: counts of blocks at each funnel stage.
struct FunnelCounts {
  std::int64_t routed = 0;
  std::int64_t not_responsive = 0;
  std::int64_t responsive = 0;
  std::int64_t not_diurnal = 0;
  std::int64_t diurnal = 0;
  std::int64_t narrow_swing = 0;
  std::int64_t wide_swing = 0;
  std::int64_t not_change_sensitive = 0;
  std::int64_t change_sensitive = 0;
  /// Blocks whose verdicts are annotated low-confidence (degraded mode).
  std::int64_t low_confidence = 0;

  void add(const BlockClassification& c) noexcept;
};

}  // namespace diurnal::core
