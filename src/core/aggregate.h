// Geographic aggregation of detected changes (paper section 2.6 and the
// maps/series of Figures 7-10): per 2x2-degree gridcell and per
// continent, count blocks whose trend turns down (or up) each day.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/detect.h"
#include "geo/countries.h"
#include "geo/gridcell.h"
#include "util/state_io.h"

namespace diurnal::core {

/// Daily up/down change counts for one region.
struct RegionDaySeries {
  std::vector<std::int32_t> down;  ///< per day since the aggregation start
  std::vector<std::int32_t> up;
  std::int32_t change_sensitive_blocks = 0;

  double down_fraction(std::size_t day) const noexcept {
    return change_sensitive_blocks == 0
               ? 0.0
               : static_cast<double>(down[day]) / change_sensitive_blocks;
  }
  double up_fraction(std::size_t day) const noexcept {
    return change_sensitive_blocks == 0
               ? 0.0
               : static_cast<double>(up[day]) / change_sensitive_blocks;
  }
};

/// Accumulates per-block detections into per-gridcell and per-continent
/// daily series.
class ChangeAggregator {
 public:
  /// Empty zero-day aggregator (a merge/assignment target).
  ChangeAggregator() : ChangeAggregator(0, 0) {}
  ChangeAggregator(util::SimTime start, util::SimTime end);

  /// Registers a change-sensitive block and its (outage-filtered)
  /// activity changes.  The day of a change is the day of its alarm.
  void add_block(geo::GridCell cell, geo::Continent continent,
                 const std::vector<DetectedChange>& changes);

  /// Folds another aggregator over the same window into this one (the
  /// shard-merge path).  Daily counts are integer sums, so any merge
  /// order produces identical series; `other` must share this window.
  void merge_from(const ChangeAggregator& other);

  util::SimTime start() const noexcept { return start_; }
  std::size_t days() const noexcept { return days_; }

  /// Day index for a time (clamped to the window).
  std::size_t day_of(util::SimTime t) const noexcept;

  const std::unordered_map<geo::GridCell, RegionDaySeries>& by_cell() const noexcept {
    return by_cell_;
  }
  const std::array<RegionDaySeries, 6>& by_continent() const noexcept {
    return by_continent_;
  }
  const RegionDaySeries& continent(geo::Continent c) const noexcept {
    return by_continent_[static_cast<std::size_t>(c)];
  }

  /// Serializes the window plus every gridcell/continent day series.
  /// restore() overwrites this aggregator completely (any window), so a
  /// default-constructed instance is a valid target.  A restored
  /// aggregator merge_from()s and is merged exactly like the original —
  /// the shard checkpoint files rely on this.
  void save(util::StateWriter& w) const;
  void restore(util::StateReader& r);

  /// Gridcells with at least `min_blocks` change-sensitive blocks,
  /// ordered by descending block count (for the Figure 7/9/10 maps).
  struct CellSnapshot {
    geo::GridCell cell;
    std::int32_t blocks = 0;
    std::int32_t down_on_day = 0;
    double down_fraction = 0.0;
  };
  std::vector<CellSnapshot> map_snapshot(util::SimTime day,
                                         std::int32_t min_blocks = 5) const;

 private:
  util::SimTime start_;
  std::size_t days_;
  std::unordered_map<geo::GridCell, RegionDaySeries> by_cell_;
  std::array<RegionDaySeries, 6> by_continent_{};
};

}  // namespace diurnal::core
