// End-to-end validation metrics (paper sections 3.6 and 3.7):
// sampled change-sensitive blocks are scored against ground-truth
// work-from-home dates; a detection counts when a downward CUSUM change
// lands within +-4 days of the documented date.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "sim/world.h"

namespace diurnal::core {

/// num/denom as a double, or nullopt when the denominator is zero.  The
/// shared guard for precision/recall-style rates: an empty sample must
/// surface as "undefined", never as 0/0 quietly becoming NaN (or a
/// misleading 0.0) and propagating through aggregate arithmetic.
inline std::optional<double> safe_ratio(std::int64_t num,
                                        std::int64_t denom) noexcept {
  if (denom == 0) return std::nullopt;
  return static_cast<double>(num) / static_cast<double>(denom);
}

/// Verdict for one sampled block (mirrors the rows of Table 5).
enum class BlockVerdict {
  kNoWfhInWindow,        ///< no documented WFH date in the quarter
  kTruePositive,         ///< CUSUM down-change within the match window
  kFalsePositiveOutage,  ///< detection near the date, but truth is an outage
  kFalseNegative,        ///< truth changed, CUSUM missed it
  kCusumFarFromWfh,      ///< detections exist, none near the WFH date
  kNoCusum,              ///< no detections at all (and no truth change)
};

std::string_view to_string(BlockVerdict v) noexcept;

struct ValidationConfig {
  std::int64_t match_window = 4 * util::kSecondsPerDay;  ///< +-4 days
  int sample_size = 50;
  std::uint64_t seed = 17;
  /// Analysis window used to decide whether a country's WFH date falls
  /// inside the studied quarter; both 0 disables the check.
  probe::ProbeWindow window{};
  /// Score detections annotated low_evidence (degraded mode).  Off by
  /// default: a down/up excursion overlapping an observer coverage gap
  /// is more likely the fleet failing than people moving, so counting
  /// it as a WFH match would inflate precision under faults.
  bool trust_low_evidence = false;
};

struct SampledBlock {
  net::BlockId id{};
  std::string country;
  BlockVerdict verdict = BlockVerdict::kNoCusum;
  std::int64_t detection_offset_days = 0;  ///< alarm - truth, when matched
  int low_evidence_changes = 0;  ///< detections excluded as low-evidence
  bool low_confidence = false;   ///< block classification was annotated
};

/// Table 5-style tally over a random sample of change-sensitive blocks.
struct SampleValidation {
  std::vector<SampledBlock> blocks;
  int total = 0;
  int no_wfh_in_window = 0;
  int wfh_in_window = 0;
  int cusum_near_wfh = 0;   ///< detections within the window (TP + FP)
  int true_positive = 0;
  int false_positive = 0;   ///< apparent outages near the date
  int no_cusum_near = 0;
  int false_negative = 0;   ///< visually detectable but missed
  int cusum_far = 0;
  int no_cusum = 0;
  /// Degraded-mode accounting: detections excluded because their
  /// evidence window overlapped a coverage gap, and sampled blocks whose
  /// classification carried the low-confidence annotation.
  int low_evidence_changes = 0;
  int low_confidence_blocks = 0;

  /// nullopt when no detection landed near a WFH date (nothing to be
  /// precise about) — callers must not fold that into a 0% rate.
  std::optional<double> precision() const noexcept {
    return safe_ratio(true_positive, true_positive + false_positive);
  }
  /// nullopt when the sample holds no ground-truth change.
  std::optional<double> recall() const noexcept {
    return safe_ratio(true_positive, true_positive + false_negative);
  }
};

/// Randomly samples change-sensitive blocks from a fleet result and
/// scores their detections against the world's ground truth.
SampleValidation validate_sample(const sim::World& world,
                                 const FleetResult& fleet,
                                 const ValidationConfig& config = {});

/// Location-level validation (section 3.7): all sampled blocks of one
/// gridcell, plus the day with the most simultaneous down-changes.
struct LocationValidation {
  geo::GridCell cell{};
  std::string label;
  SampleValidation sample;
  util::SimTime peak_day = 0;       ///< day with most down-changes
  int peak_down_count = 0;
  double peak_down_fraction = 0.0;  ///< of sampled blocks
};

LocationValidation validate_location(const sim::World& world,
                                     const FleetResult& fleet,
                                     geo::GridCell cell,
                                     const ValidationConfig& config = {});

}  // namespace diurnal::core
