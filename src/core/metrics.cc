#include "core/metrics.h"

#include <algorithm>
#include <cmath>

#include "geo/countries.h"
#include "util/rng.h"

namespace diurnal::core {

std::string_view to_string(BlockVerdict v) noexcept {
  switch (v) {
    case BlockVerdict::kNoWfhInWindow: return "no-WFH-in-window";
    case BlockVerdict::kTruePositive: return "true-positive";
    case BlockVerdict::kFalsePositiveOutage: return "false-positive(outage)";
    case BlockVerdict::kFalseNegative: return "false-negative";
    case BlockVerdict::kCusumFarFromWfh: return "CUSUM-far-from-WFH";
    case BlockVerdict::kNoCusum: return "no-CUSUM";
  }
  return "?";
}

namespace {

// Scores one change-sensitive block against its ground truth.
SampledBlock score_block(const sim::BlockProfile& block,
                         const BlockOutcome& outcome,
                         const ValidationConfig& cfg) {
  SampledBlock s;
  s.id = block.id;
  s.low_confidence = outcome.cls.low_confidence;
  const auto& country = geo::countries()[block.country];
  s.country = country.code;

  // Is there a documented WFH date for this block's country inside the
  // analysis window?
  std::optional<util::SimTime> news_date;
  if (country.wfh_2020) {
    const util::SimTime t = util::time_of(*country.wfh_2020);
    const bool windowed = cfg.window.end > cfg.window.start;
    if (!windowed || (t >= cfg.window.start &&
                      t + cfg.match_window < cfg.window.end)) {
      news_date = t;
    }
  }
  if (!news_date) {
    s.verdict = BlockVerdict::kNoWfhInWindow;
    return s;
  }

  // Ground truth: did this block's population actually shift near the
  // documented date?  Besides WFH adoption, concurrent events count as
  // real human-activity changes (the paper cannot separate the Wuhan
  // lockdown from Spring Festival either, section 4.2) — except home
  // blocks under WFH, whose signal is an *increase*, and vacated blocks
  // like the USC VPN, which are genuine downward changes.
  std::vector<util::SimTime> truth_times;
  auto occupied_at = [&](util::SimTime t) {
    if (block.occupied_from >= 0 && t < block.occupied_from) return false;
    if (block.occupied_until >= 0 && t >= block.occupied_until) return false;
    if (block.vacate_at >= 0 && t >= block.vacate_at) return false;
    return true;
  };
  for (const auto& sup : block.suppressions) {
    if (sup.kind == sim::EventKind::kWorkFromHome &&
        block.category == sim::BlockCategory::kHomeDynamic) {
      continue;
    }
    // A suppression is only observable truth if people were still using
    // the block when it started.
    if (!occupied_at(sup.start)) continue;
    if (std::abs(sup.start - *news_date) <= cfg.match_window) {
      truth_times.push_back(sup.start);
    }
  }
  if (block.vacate_at >= 0 &&
      std::abs(block.vacate_at - *news_date) <= cfg.match_window) {
    truth_times.push_back(block.vacate_at);
  }

  // Detections: unfiltered downward alarms.  A true positive is any
  // detection within the match window of a truth change (or, when the
  // block has a truth change, of the news date itself — the paper's
  // manual raw-data confirmation).
  bool matched = false;
  bool near_news = false;
  bool any_change = false;
  std::int64_t best_offset = cfg.match_window + 1;
  for (const auto& ch : outcome.changes) {
    if (!ch.counted()) continue;
    if (ch.low_evidence && !cfg.trust_low_evidence) {
      ++s.low_evidence_changes;
      continue;
    }
    any_change = true;
    if (ch.direction != analysis::ChangeDirection::kDown) continue;
    if (std::abs(ch.alarm - *news_date) <= cfg.match_window) near_news = true;
    for (const util::SimTime t : truth_times) {
      const std::int64_t offset = ch.alarm - t;
      if (std::abs(offset) <= cfg.match_window) {
        matched = true;
        if (std::abs(offset) < std::abs(best_offset)) best_offset = offset;
      }
    }
  }

  if (matched || (near_news && !truth_times.empty())) {
    s.detection_offset_days =
        matched ? best_offset / util::kSecondsPerDay : 0;
    s.verdict = BlockVerdict::kTruePositive;
  } else if (near_news) {
    s.verdict = BlockVerdict::kFalsePositiveOutage;
  } else if (!truth_times.empty()) {
    s.verdict = BlockVerdict::kFalseNegative;
  } else {
    s.verdict = any_change ? BlockVerdict::kCusumFarFromWfh
                           : BlockVerdict::kNoCusum;
  }
  return s;
}

void tally(SampleValidation& v, const SampledBlock& s) {
  ++v.total;
  v.low_evidence_changes += s.low_evidence_changes;
  if (s.low_confidence) ++v.low_confidence_blocks;
  switch (s.verdict) {
    case BlockVerdict::kNoWfhInWindow:
      ++v.no_wfh_in_window;
      return;
    case BlockVerdict::kTruePositive:
      ++v.true_positive;
      ++v.cusum_near_wfh;
      break;
    case BlockVerdict::kFalsePositiveOutage:
      ++v.false_positive;
      ++v.cusum_near_wfh;
      break;
    case BlockVerdict::kFalseNegative:
      ++v.false_negative;
      ++v.no_cusum_near;
      break;
    case BlockVerdict::kCusumFarFromWfh:
      ++v.cusum_far;
      ++v.no_cusum_near;
      break;
    case BlockVerdict::kNoCusum:
      ++v.no_cusum;
      ++v.no_cusum_near;
      break;
  }
  ++v.wfh_in_window;
}

}  // namespace

SampleValidation validate_sample(const sim::World& world,
                                 const FleetResult& fleet,
                                 const ValidationConfig& config) {
  std::vector<std::size_t> cs_indices;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    if (fleet.outcomes[i].cls.change_sensitive) cs_indices.push_back(i);
  }
  util::Xoshiro256 rng(config.seed);
  // Fisher-Yates prefix shuffle for the sample.
  const std::size_t n =
      std::min<std::size_t>(cs_indices.size(),
                            static_cast<std::size_t>(config.sample_size));
  for (std::size_t i = 0; i < n && cs_indices.size() > 1; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(cs_indices.size() - i));
    std::swap(cs_indices[i], cs_indices[j]);
  }
  cs_indices.resize(n);

  SampleValidation v;
  for (const std::size_t i : cs_indices) {
    const auto s = score_block(world.blocks()[i], fleet.outcomes[i], config);
    v.blocks.push_back(s);
    tally(v, s);
  }
  return v;
}

LocationValidation validate_location(const sim::World& world,
                                     const FleetResult& fleet,
                                     geo::GridCell cell,
                                     const ValidationConfig& config) {
  LocationValidation loc;
  loc.cell = cell;
  loc.label = cell.to_string();

  std::vector<std::size_t> in_cell;
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    if (!fleet.outcomes[i].cls.change_sensitive) continue;
    if (world.blocks()[i].cell() == cell) in_cell.push_back(i);
  }

  // Peak day across all change-sensitive blocks of the cell.
  std::unordered_map<std::int64_t, int> down_per_day;
  for (const std::size_t i : in_cell) {
    for (const auto& ch : fleet.outcomes[i].changes) {
      if (!ch.counted() ||
          ch.direction != analysis::ChangeDirection::kDown) {
        continue;
      }
      ++down_per_day[util::day_index(ch.alarm)];
    }
  }
  for (const auto& [day, count] : down_per_day) {
    if (count > loc.peak_down_count) {
      loc.peak_down_count = count;
      loc.peak_day = day * util::kSecondsPerDay;
    }
  }
  if (!in_cell.empty()) {
    loc.peak_down_fraction =
        static_cast<double>(loc.peak_down_count) /
        static_cast<double>(in_cell.size());
  }

  // Score a random sample of the cell's blocks.
  util::Xoshiro256 rng(config.seed ^ 0xCE11ULL);
  const std::size_t n =
      std::min<std::size_t>(in_cell.size(),
                            static_cast<std::size_t>(config.sample_size));
  for (std::size_t i = 0; i < n && in_cell.size() > 1; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.below(in_cell.size() - i));
    std::swap(in_cell[i], in_cell[j]);
  }
  in_cell.resize(n);
  for (const std::size_t i : in_cell) {
    const auto s =
        score_block(world.blocks()[i], fleet.outcomes[i], config);
    loc.sample.blocks.push_back(s);
    tally(loc.sample, s);
  }
  return loc;
}

}  // namespace diurnal::core
