#include "core/report.h"

#include "util/csv.h"
#include "util/table.h"

namespace diurnal::core {

using util::CsvWriter;

void write_funnel_csv(const std::string& path, const FunnelCounts& f) {
  CsvWriter csv(path);
  csv.write_row({"stage", "blocks"});
  csv.write_row({"routed", std::to_string(f.routed)});
  csv.write_row({"not_responsive", std::to_string(f.not_responsive)});
  csv.write_row({"responsive", std::to_string(f.responsive)});
  csv.write_row({"not_diurnal", std::to_string(f.not_diurnal)});
  csv.write_row({"diurnal", std::to_string(f.diurnal)});
  csv.write_row({"narrow_swing", std::to_string(f.narrow_swing)});
  csv.write_row({"wide_swing", std::to_string(f.wide_swing)});
  csv.write_row({"not_change_sensitive", std::to_string(f.not_change_sensitive)});
  csv.write_row({"change_sensitive", std::to_string(f.change_sensitive)});
}

void write_blocks_csv(const std::string& path, const sim::World& world,
                      const FleetResult& fleet) {
  CsvWriter csv(path);
  csv.write_row({"block", "gridcell", "responsive", "diurnal", "wide_swing",
                 "change_sensitive", "down_changes", "up_changes"});
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < fleet.outcomes.size(); ++i) {
    const auto& out = fleet.outcomes[i];
    int down = 0, up = 0;
    for (const auto& c : out.changes) {
      if (!c.counted()) continue;
      (c.direction == analysis::ChangeDirection::kDown ? down : up) += 1;
    }
    csv.write_row({out.id.to_string(), blocks[i].cell().to_string(),
                   std::to_string(out.cls.responsive),
                   std::to_string(out.cls.diurnal),
                   std::to_string(out.cls.wide_swing),
                   std::to_string(out.cls.change_sensitive),
                   std::to_string(down), std::to_string(up)});
  }
}

void write_changes_csv(const std::string& path, const FleetResult& fleet) {
  CsvWriter csv(path);
  csv.write_row({"block", "direction", "start", "alarm", "end", "amplitude_z",
                 "amplitude_addresses", "filtered_outage", "filtered_small"});
  for (const auto& out : fleet.outcomes) {
    for (const auto& c : out.changes) {
      csv.write_row({
          out.id.to_string(),
          c.direction == analysis::ChangeDirection::kDown ? "down" : "up",
          util::to_string(util::date_of(c.start)),
          util::to_string(util::date_of(c.alarm)),
          util::to_string(util::date_of(c.end)),
          util::fmt(c.amplitude, 4),
          util::fmt(c.amplitude_addresses, 2),
          std::to_string(c.filtered_as_outage),
          std::to_string(c.filtered_small),
      });
    }
  }
}

void write_cells_csv(const std::string& path, const ChangeAggregator& agg) {
  CsvWriter csv(path);
  csv.write_row({"gridcell", "date", "down", "up", "blocks"});
  for (const auto& [cell, series] : agg.by_cell()) {
    for (std::size_t d = 0; d < agg.days(); ++d) {
      if (series.down[d] == 0 && series.up[d] == 0) continue;
      const auto date = util::date_of(
          agg.start() + static_cast<util::SimTime>(d) * util::kSecondsPerDay);
      csv.write_row({cell.to_string(), util::to_string(date),
                     std::to_string(series.down[d]),
                     std::to_string(series.up[d]),
                     std::to_string(series.change_sensitive_blocks)});
    }
  }
}

ReportPaths write_report(const std::string& prefix, const sim::World& world,
                         const FleetResult& fleet,
                         const ChangeAggregator& agg) {
  ReportPaths paths{prefix + "funnel.csv", prefix + "blocks.csv",
                    prefix + "changes.csv", prefix + "cells.csv"};
  write_funnel_csv(paths.funnel, fleet.funnel);
  write_blocks_csv(paths.blocks, world, fleet);
  write_changes_csv(paths.changes, fleet);
  write_cells_csv(paths.cells, agg);
  return paths;
}

}  // namespace diurnal::core
