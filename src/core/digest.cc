#include "core/digest.h"

#include <cstdio>
#include <cstring>

namespace diurnal::core {

namespace {

// FNV-1a, one byte at a time so the digest is endianness-independent.
struct Digest {
  std::uint64_t h = 0xCBF29CE484222325ULL;

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  void mix(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
};

}  // namespace

std::uint64_t fleet_digest(const FleetResult& r) {
  Digest d;
  d.mix(static_cast<std::uint64_t>(r.funnel.routed));
  d.mix(static_cast<std::uint64_t>(r.funnel.responsive));
  d.mix(static_cast<std::uint64_t>(r.funnel.diurnal));
  d.mix(static_cast<std::uint64_t>(r.funnel.wide_swing));
  d.mix(static_cast<std::uint64_t>(r.funnel.change_sensitive));
  for (const auto& out : r.outcomes) {
    d.mix(static_cast<std::uint64_t>(out.id.id()));
    d.mix(static_cast<std::uint64_t>((out.cls.responsive ? 1 : 0) |
                                     (out.cls.diurnal ? 2 : 0) |
                                     (out.cls.wide_swing ? 4 : 0) |
                                     (out.cls.change_sensitive ? 8 : 0)));
    for (const auto& ch : out.changes) {
      d.mix(static_cast<std::uint64_t>(ch.start));
      d.mix(static_cast<std::uint64_t>(ch.alarm));
      d.mix(static_cast<std::uint64_t>(ch.end));
      d.mix(static_cast<std::uint64_t>(ch.direction));
      d.mix(ch.amplitude);
      d.mix(ch.amplitude_addresses);
      d.mix(static_cast<std::uint64_t>((ch.filtered_as_outage ? 1 : 0) |
                                       (ch.filtered_small ? 2 : 0) |
                                       (ch.filtered_phase_only ? 4 : 0)));
    }
  }
  return d.h;
}

std::string digest_hex(std::uint64_t d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(d));
  return buf;
}

}  // namespace diurnal::core
