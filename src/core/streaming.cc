#include "core/streaming.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>
#include <thread>

#include "analysis/stl.h"
#include "core/checkpoint.h"

namespace diurnal::core {

namespace {

recon::BlockObservationConfig observation_config(const FleetConfig& cfg,
                                                 const DatasetSpec& ds) {
  recon::BlockObservationConfig oc;
  oc.observers = ds.observers();
  oc.loss = probe::LossModel(cfg.loss);
  oc.window = ds.window();
  oc.prober.kind =
      ds.survey ? probe::ProberKind::kSurvey : probe::ProberKind::kTrinocular;
  oc.one_loss_repair = cfg.one_loss_repair;
  oc.additional_observations = cfg.additional_observations;
  oc.faults = &cfg.faults;
  oc.recon = cfg.recon;
  return oc;
}

// Degraded-mode annotation: a change whose evidence window overlaps a
// coverage gap (or whose whole reconstruction fell below the confidence
// floor) may be observers failing rather than humans moving.  One day of
// slack on each side, because STL smoothing and CUSUM change-dating can
// land the excursion boundary a few samples off the gap edge.
void annotate_low_evidence(std::vector<DetectedChange>& changes,
                           double evidence_fraction,
                           std::span<const recon::CoverageGap> gaps,
                           double evidence_floor) {
  if (changes.empty()) return;
  const bool all_low = evidence_fraction < evidence_floor;
  constexpr util::SimTime kSlack = util::kSecondsPerDay;
  for (auto& c : changes) {
    if (all_low) {
      c.low_evidence = true;
      continue;
    }
    for (const auto& g : gaps) {
      if (c.start - kSlack < g.end && c.end + kSlack > g.start) {
        c.low_evidence = true;
        break;
      }
    }
  }
}

unsigned resolve_threads(int requested) {
  const unsigned n = requested > 0
                         ? static_cast<unsigned>(requested)
                         : std::max(1u, std::thread::hardware_concurrency());
  return std::min<unsigned>(n, 64);
}

// Chunked self-scheduling: workers steal fixed runs of consecutive
// blocks from a shared counter.  Chunks amortize the atomic to one
// fetch_add per kChunk blocks while still load-balancing (block costs
// vary by orders of magnitude between categories); consecutive blocks
// also keep each worker's scratch buffers at a stable working size.
// Each block's state and result slots are its own, so the schedule
// cannot affect the output (see bench_fleet's determinism gate) —
// fault injection included, because every fault draw is a stateless
// hash, never shared RNG state.
constexpr std::size_t kChunk = 16;

/// `make_worker()` builds one worker closure (owning its scratch); each
/// runs until the shared counter is exhausted.
template <typename MakeWorker>
void run_pool(unsigned n_threads, MakeWorker&& make_worker) {
  if (n_threads <= 1) {
    make_worker()();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (unsigned t = 0; t < n_threads; ++t) pool.emplace_back(make_worker());
  for (auto& t : pool) t.join();
}

/// Trailing-window span for the provisional detector's STL re-fits, in
/// seasonal periods: long enough that the right edge of the trend is
/// anchored by a few full cycles, short enough that the per-epoch cost
/// stays flat as the stream grows.
constexpr std::size_t kTrailPeriods = 5;

}  // namespace

// One worker's batched-analysis state.  Slots queue finalized blocks
// until a full-width SoA batch is ready (or the worker runs out of
// blocks — the ragged tail flushes narrower).  finalize_stats() writes
// into the slot in place, and slot vectors reuse their high-water
// capacity, so the batched path keeps the drives' zero-allocs-per-block
// steady state.
struct StreamingFleet::BatchCtx {
  struct Slot {
    std::size_t index = 0;
    recon::DegradedReconStats sr;
  };

  BatchCtx(const FleetConfig& cfg, std::size_t width)
      : width(width), det(cfg.detector, width) {}

  std::size_t width;
  std::array<Slot, analysis::BatchAnalyzer::kMaxLanes> slots;
  std::size_t n_slots = 0;
  analysis::BatchAnalyzer az;
  BatchDetector det;
};

std::size_t StreamingFleet::batch_width() const noexcept {
  const int w = config_.analysis_batch_width;
  if (w <= 0) return analysis::BatchAnalyzer::kMaxLanes;
  return std::min<std::size_t>(static_cast<std::size_t>(w),
                               analysis::BatchAnalyzer::kMaxLanes);
}

void StreamingFleet::classify_flush(BatchCtx& b,
                                    analysis::BlockAnalyzer& az) {
  if (b.n_slots == 0) return;
  std::array<BatchClassifyJob, analysis::BatchAnalyzer::kMaxLanes> jobs;
  for (std::size_t k = 0; k < b.n_slots; ++k) {
    const BatchCtx::Slot& s = b.slots[k];
    const recon::ReconStats& rs = s.sr.recon;
    jobs[k] = BatchClassifyJob{store_.series(s.index), rs.start,
                               rs.step,           rs.responsive,
                               rs.evidence_fraction,
                               &result_.outcomes[s.index].cls};
  }
  classify_blocks_batch(std::span<BatchClassifyJob>(jobs.data(), b.n_slots),
                        config_.classifier, b.az, az);
  for (std::size_t k = 0; k < b.n_slots; ++k) {
    const BatchCtx::Slot& s = b.slots[k];
    result_.degradation.blocks[s.index] = fault::summarize_block(
        s.sr.observers, static_cast<int>(s.sr.observers.size()),
        classify_oc_.window, s.sr.recon.evidence_fraction,
        s.sr.recon.max_gap_seconds, evidence_floor_);
  }
  if (config_.run_detection) {
    // The batched detector requires the STL trend model; the naive
    // ablation keeps the scalar path.
    const bool batched =
        config_.detector.trend_model == TrendModel::kStl && b.width > 1;
    for (std::size_t k = 0; k < b.n_slots; ++k) {
      const BatchCtx::Slot& s = b.slots[k];
      BlockOutcome& out = result_.outcomes[s.index];
      if (!out.cls.change_sensitive) continue;
      if (batched) {
        b.det.enqueue(store_.series(s.index), s.sr.recon.start,
                      s.sr.recon.step, &out.changes);
      } else {
        detect_outcome(s.index, store_.series(s.index), s.sr.recon, az);
      }
    }
    if (batched) {
      b.det.flush();
      for (std::size_t k = 0; k < b.n_slots; ++k) {
        const BatchCtx::Slot& s = b.slots[k];
        BlockOutcome& out = result_.outcomes[s.index];
        if (!out.cls.change_sensitive) continue;
        annotate_low_evidence(out.changes, s.sr.recon.evidence_fraction,
                              s.sr.recon.gaps, evidence_floor_);
      }
    }
  }
  b.n_slots = 0;
}

void StreamingFleet::detect_flush(BatchCtx& b) {
  if (b.n_slots == 0) return;
  for (std::size_t k = 0; k < b.n_slots; ++k) {
    const BatchCtx::Slot& s = b.slots[k];
    b.det.enqueue(store_.series(s.index), s.sr.recon.start, s.sr.recon.step,
                  &result_.outcomes[s.index].changes);
  }
  b.det.flush();
  for (std::size_t k = 0; k < b.n_slots; ++k) {
    const BatchCtx::Slot& s = b.slots[k];
    annotate_low_evidence(result_.outcomes[s.index].changes,
                          s.sr.recon.evidence_fraction, s.sr.recon.gaps,
                          evidence_floor_);
  }
  b.n_slots = 0;
}

StreamingFleet::StreamingFleet(std::span<const sim::BlockProfile> blocks,
                               const FleetConfig& config)
    : blocks_(blocks), config_(config) {
  const DatasetSpec& classify_ds =
      config.classify_dataset ? *config.classify_dataset : config.dataset;
  window_ = config.dataset.window();
  classify_window_ = classify_ds.window();
  const bool same_window =
      !config.classify_dataset ||
      (classify_window_.start == window_.start &&
       classify_window_.end == window_.end &&
       classify_ds.sites == config.dataset.sites &&
       classify_ds.survey == config.dataset.survey);
  // The fused single pass requires the classification stream to be a
  // prefix slice of the detection stream: same start and observers so
  // the rounds coincide, and no skew faults because retiming drops
  // depend on the window span.
  const bool nested = classify_window_.start == window_.start &&
                      classify_window_.end <= window_.end &&
                      classify_ds.sites == config.dataset.sites &&
                      classify_ds.survey == config.dataset.survey &&
                      config.faults.skews.empty();
  mode_ = same_window ? Mode::kSame
                      : (config.fuse_observation_windows && nested
                             ? Mode::kUnion
                             : Mode::kSeparate);
  classify_oc_ = observation_config(config, classify_ds);
  detect_oc_ = observation_config(config, config.dataset);
  evidence_floor_ = config.classifier.min_evidence_fraction;
  threads_ = resolve_threads(config.threads);

  result_.outcomes.resize(blocks_.size());
  result_.degradation.blocks.resize(blocks_.size());
  // One allocation for every block's detection-window series; rows are
  // bound to each reconstruction as it begins (stride mirrors
  // BlockReconState::begin()'s sample count).
  const std::int64_t sstep = detect_oc_.recon.sample_step;
  const std::int64_t dur = window_.end - window_.start;
  const std::size_t stride =
      (sstep <= 0 || dur <= 0)
          ? 0
          : static_cast<std::size_t>((dur + sstep - 1) / sstep);
  store_.reset(blocks_.size(), stride, window_.start, sstep);
  clock_ = window_.start;
}

void StreamingFleet::classify_outcome(std::size_t i,
                                      std::span<const double> counts,
                                      const recon::DegradedReconStats& ds,
                                      analysis::BlockAnalyzer& az) {
  BlockOutcome& out = result_.outcomes[i];
  out.cls = classify_block(counts, ds.recon.start, ds.recon.step,
                           ds.recon.responsive, ds.recon.evidence_fraction,
                           config_.classifier, az);
  result_.degradation.blocks[i] = fault::summarize_block(
      ds.observers, static_cast<int>(ds.observers.size()), classify_oc_.window,
      ds.recon.evidence_fraction, ds.recon.max_gap_seconds, evidence_floor_);
}

void StreamingFleet::detect_outcome(std::size_t i,
                                    std::span<const double> counts,
                                    const recon::ReconStats& stats,
                                    analysis::BlockAnalyzer& az) {
  BlockOutcome& out = result_.outcomes[i];
  detect_changes(counts, stats.start, stats.step, config_.detector, az,
                 out.changes);
  annotate_low_evidence(out.changes, stats.evidence_fraction, stats.gaps,
                        evidence_floor_);
}

void StreamingFleet::finish_result() {
  result_.funnel = FunnelCounts{};
  for (const auto& out : result_.outcomes) result_.funnel.add(out.cls);
  result_.degradation.finalize();
  result_.series = std::move(store_);
  finished_ = true;
}

FleetResult StreamingFleet::run_to_completion() {
  assert(!finished_ && cells_.empty());
  const auto& blocks = blocks_;
  const std::size_t width = batch_width();
  // Batched classification needs store-backed series that outlive the
  // per-block stream: only kSame binds every classification series to
  // a SeriesStore row (kUnion/kSeparate classify from stream-internal
  // views that the next block invalidates).  Batched detection reads
  // store rows in every mode.
  const bool batch_classify = width > 1 && mode_ == Mode::kSame;
  const bool batch_detect =
      width > 1 && config_.run_detection &&
      config_.detector.trend_model == TrendModel::kStl;
  std::atomic<std::size_t> next{0};
  auto make_worker = [&] {
    return [&] {
      probe::ProbeScratch scratch;
      recon::BlockStream stream;
      recon::DegradedReconStats classify_sr;
      recon::DegradedReconStats detect_sr;
      analysis::BlockAnalyzer analyzer;
      BatchCtx batch(config_, width);
      for (;;) {
        const std::size_t begin =
            next.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= blocks.size()) break;
        const std::size_t end = std::min(begin + kChunk, blocks.size());
        for (std::size_t i = begin; i < end; ++i) {
          const auto& block = blocks[i];
          BlockOutcome& out = result_.outcomes[i];
          out.id = block.id;
          if (block.eb_count == 0) continue;  // never responds
          switch (mode_) {
            case Mode::kSame:
              stream.begin(block, detect_oc_, scratch);
              stream.bind_series(store_.row(i));
              if (batch_classify) {
                // Queue the finalized block; classification, detection
                // and annotation all happen at flush, reading the
                // stable store row.
                BatchCtx::Slot& s = batch.slots[batch.n_slots];
                s.index = i;
                stream.finalize_stats(s.sr);
                store_.set_len(i, s.sr.recon.len);
                if (++batch.n_slots == width) {
                  classify_flush(batch, analyzer);
                }
              } else {
                stream.finalize_stats(classify_sr);
                store_.set_len(i, classify_sr.recon.len);
                classify_outcome(i, store_.series(i), classify_sr, analyzer);
                if (out.cls.change_sensitive && config_.run_detection) {
                  detect_outcome(i, store_.series(i), classify_sr.recon,
                                 analyzer);
                }
              }
              break;
            case Mode::kUnion:
              stream.begin(block, detect_oc_, scratch, classify_window_.end);
              stream.bind_series(store_.row(i));
              stream.advance_to(classify_window_.end);
              stream.finalize_classify_stats(classify_sr);
              classify_outcome(i, stream.classify_series(), classify_sr,
                               analyzer);
              if (out.cls.change_sensitive && config_.run_detection) {
                if (batch_detect) {
                  BatchCtx::Slot& s = batch.slots[batch.n_slots];
                  s.index = i;
                  stream.finalize_stats(s.sr);
                  store_.set_len(i, s.sr.recon.len);
                  if (++batch.n_slots == width) detect_flush(batch);
                } else {
                  stream.finalize_stats(detect_sr);
                  store_.set_len(i, detect_sr.recon.len);
                  detect_outcome(i, store_.series(i), detect_sr.recon,
                                 analyzer);
                }
              }
              break;
            case Mode::kSeparate:
              stream.begin(block, classify_oc_, scratch);
              stream.finalize_stats(classify_sr);
              classify_outcome(i, stream.series(), classify_sr, analyzer);
              if (out.cls.change_sensitive && config_.run_detection) {
                stream.begin(block, detect_oc_, scratch);
                stream.bind_series(store_.row(i));
                if (batch_detect) {
                  BatchCtx::Slot& s = batch.slots[batch.n_slots];
                  s.index = i;
                  stream.finalize_stats(s.sr);
                  store_.set_len(i, s.sr.recon.len);
                  if (++batch.n_slots == width) detect_flush(batch);
                } else {
                  stream.finalize_stats(detect_sr);
                  store_.set_len(i, detect_sr.recon.len);
                  detect_outcome(i, store_.series(i), detect_sr.recon,
                                 analyzer);
                }
              }
              break;
          }
        }
      }
      // Ragged tail: whatever is still queued runs as a narrower batch.
      if (batch_classify) {
        classify_flush(batch, analyzer);
      } else if (batch_detect) {
        detect_flush(batch);
      }
    };
  };
  run_pool(threads_, make_worker);
  finish_result();
  return std::move(result_);
}

void StreamingFleet::begin_cell(std::size_t i, probe::ProbeScratch& scratch) {
  const auto& block = blocks_[i];
  Cell& c = cells_[i];
  result_.outcomes[i].id = block.id;
  c.begun = true;
  if (block.eb_count == 0) {
    c.classified = true;  // trivially: never responds
    c.screened = true;
    return;
  }
  if (mode_ == Mode::kUnion) {
    c.stream.begin(block, detect_oc_, scratch, classify_window_.end);
  } else {
    c.stream.begin(block, detect_oc_, scratch);
  }
  c.stream.bind_series(store_.row(i));
  c.active = true;
}

void StreamingFleet::screen_cell(std::size_t i, analysis::BlockAnalyzer& az,
                                 recon::ReconStats& stats) {
  Cell& c = cells_[i];
  const std::int64_t step = detect_oc_.recon.sample_step;
  if (step <= 0) {
    c.screened = true;
    return;
  }
  const std::size_t period =
      static_cast<std::size_t>(config_.detector.period_seconds / step);
  if (period < 2 || !config_.run_detection) {
    c.screened = true;  // nothing the watch could feed
    return;
  }
  const auto& rs = c.stream.recon_state();
  if (rs.emitted() < 2 * period) return;  // not yet decidable
  // Provisional screen: classify a truncated snapshot of the stream so
  // far.  The verdict is only a watch decision — the authoritative
  // classification happens at finalize over the full window.
  rs.snapshot_stats(stats);
  const auto counts = c.stream.series().first(stats.len);
  const auto cls =
      classify_block(counts, stats.start, stats.step, stats.responsive,
                     stats.evidence_fraction, config_.classifier, az);
  c.screened = true;
  c.watched = cls.change_sensitive;
}

void StreamingFleet::update_provisional(std::size_t i,
                                        analysis::BlockAnalyzer& az,
                                        std::vector<ProvisionalChange>& out) {
  Cell& c = cells_[i];
  const std::int64_t step = detect_oc_.recon.sample_step;
  const std::size_t period =
      static_cast<std::size_t>(config_.detector.period_seconds / step);
  const auto& rs = c.stream.recon_state();
  const std::size_t emitted = rs.emitted();
  if (period < 2 || emitted < 2 * period || emitted <= c.trend_fed) return;
  if (c.tn == 0) c.cusum.begin(config_.detector.cusum);

  // Trailing-window STL re-fit: bounded per-epoch cost.  If the last fit
  // is older than the trailing span (an epoch longer than the span),
  // stretch the window back to it so the z sequence stays contiguous —
  // the CUSUM's indices map 1:1 onto samples trend_base + k.
  std::size_t first = emitted - std::min(emitted, kTrailPeriods * period);
  if (c.tn > 0 && c.trend_fed < first) first = c.trend_fed;
  analysis::StlOptions stl = config_.detector.stl;
  stl.period = static_cast<int>(period);
  if (stl.trend_span == 0) {
    stl.trend_span = static_cast<int>(period + period / 4 + 1);
  }
  const auto samples = c.stream.series();
  const auto dec = az.decompose_stl(samples.subspan(first, emitted - first),
                                    stl);

  if (c.tn == 0) c.trend_base = first;
  for (std::size_t idx = std::max(c.trend_fed, first); idx < emitted; ++idx) {
    // Freeze the trend as first estimated and z-normalize with running
    // moments: the stream sees each value once, so this is what an
    // online detector can actually know at that point in time.
    const double v = dec.trend[idx - first];
    ++c.tn;
    c.tsum += v;
    c.tsum2 += v * v;
    const double mean = c.tsum / static_cast<double>(c.tn);
    const double var =
        std::max(0.0, c.tsum2 / static_cast<double>(c.tn) - mean * mean);
    const double sd = std::sqrt(var);
    c.cusum.push(sd > 1e-9 ? (v - mean) / sd : 0.0);
  }
  c.trend_fed = emitted;

  const auto& confirmed = c.cusum.confirmed();
  for (; c.reported < confirmed.size(); ++c.reported) {
    const auto& cp = confirmed[c.reported];
    ProvisionalChange pc;
    pc.id = result_.outcomes[i].id;
    pc.start = window_.start +
               static_cast<std::int64_t>(c.trend_base + cp.start) * step;
    pc.alarm = window_.start +
               static_cast<std::int64_t>(c.trend_base + cp.alarm) * step;
    pc.end =
        window_.start + static_cast<std::int64_t>(c.trend_base + cp.end) * step;
    pc.direction = cp.direction;
    pc.amplitude = cp.amplitude;
    out.push_back(pc);
  }
}

EpochReport StreamingFleet::advance_to(util::SimTime until) {
  assert(!finished_);
  const auto& blocks = blocks_;
  cells_.resize(blocks.size());
  until = std::clamp(until, window_.start, window_.end);
  until = std::max(until, clock_);

  EpochReport rep;
  rep.epoch_index = epoch_index_++;
  rep.epoch_start = clock_;
  rep.epoch_end = until;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> delivered{0};
  std::atomic<unsigned> worker_ids{0};
  std::vector<std::vector<ProvisionalChange>> found(threads_);
  auto make_worker = [&] {
    return [&] {
      const unsigned wid = worker_ids.fetch_add(1);
      probe::ProbeScratch scratch;
      recon::BlockStream cpass;
      recon::DegradedReconStats dr;
      recon::ReconStats screen_stats;
      analysis::BlockAnalyzer analyzer;
      std::size_t local_delivered = 0;
      for (;;) {
        const std::size_t begin =
            next.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= blocks.size()) break;
        const std::size_t end = std::min(begin + kChunk, blocks.size());
        for (std::size_t i = begin; i < end; ++i) {
          Cell& c = cells_[i];
          if (!c.begun) begin_cell(i, scratch);
          if (!c.active) continue;
          c.stream.set_scratch(scratch);
          if (mode_ == Mode::kUnion && !c.classified) {
            c.stream.advance_to(std::min(until, classify_window_.end));
            if (until >= classify_window_.end) {
              c.stream.finalize_classify_stats(dr);
              classify_outcome(i, c.stream.classify_series(), dr, analyzer);
              c.classified = true;
              c.screened = true;
              c.watched = result_.outcomes[i].cls.change_sensitive &&
                          config_.run_detection;
              if (c.watched) {
                c.stream.advance_to(until);
              } else {
                c.active = false;  // verdict final, no detection to feed
              }
            }
          } else {
            c.stream.advance_to(until);
          }
          if (mode_ == Mode::kSeparate && !c.classified &&
              until >= classify_window_.end) {
            // The classification window is fully in the past: run its
            // dedicated pass now so the verdict lands on the epoch when
            // the data became available.
            cpass.begin(blocks[i], classify_oc_, scratch);
            cpass.finalize_stats(dr);
            classify_outcome(i, cpass.series(), dr, analyzer);
            c.classified = true;
            c.screened = true;
            c.watched = result_.outcomes[i].cls.change_sensitive &&
                        config_.run_detection;
            if (!c.watched) c.active = false;
          }
          const std::size_t d = c.stream.delivered_observations();
          local_delivered += d - c.delivered;
          c.delivered = d;
          if (mode_ == Mode::kSame && !c.screened) {
            screen_cell(i, analyzer, screen_stats);
          }
          if (c.watched) update_provisional(i, analyzer, found[wid]);
        }
      }
      delivered.fetch_add(local_delivered, std::memory_order_relaxed);
    };
  };
  run_pool(threads_, make_worker);

  clock_ = until;
  rep.observations = delivered.load();
  for (auto& f : found) {
    rep.provisional.insert(rep.provisional.end(), f.begin(), f.end());
  }
  std::sort(rep.provisional.begin(), rep.provisional.end(),
            [](const ProvisionalChange& a, const ProvisionalChange& b) {
              if (a.alarm != b.alarm) return a.alarm < b.alarm;
              return a.id.id() < b.id.id();
            });
  if (mode_ != Mode::kSame && clock_ >= classify_window_.end) {
    rep.classification_complete = true;
    for (const auto& out : result_.outcomes) rep.funnel.add(out.cls);
  }
  return rep;
}

FleetResult StreamingFleet::finalize() {
  assert(!finished_);
  const auto& blocks = blocks_;
  cells_.resize(blocks.size());
  const std::size_t width = batch_width();
  // Same batching contract as run_to_completion(): kSame batches the
  // whole classify+detect chain, the split-window modes batch detection
  // only (their classification reads stream-internal views).
  const bool batch_classify = width > 1 && mode_ == Mode::kSame;
  const bool batch_detect =
      width > 1 && config_.run_detection &&
      config_.detector.trend_model == TrendModel::kStl;
  std::atomic<std::size_t> next{0};
  auto make_worker = [&] {
    return [&] {
      probe::ProbeScratch scratch;
      recon::BlockStream cpass;
      recon::DegradedReconStats classify_sr;
      recon::DegradedReconStats detect_sr;
      analysis::BlockAnalyzer analyzer;
      BatchCtx batch(config_, width);
      for (;;) {
        const std::size_t begin =
            next.fetch_add(kChunk, std::memory_order_relaxed);
        if (begin >= blocks.size()) break;
        const std::size_t end = std::min(begin + kChunk, blocks.size());
        for (std::size_t i = begin; i < end; ++i) {
          const auto& block = blocks[i];
          Cell& c = cells_[i];
          if (!c.begun) begin_cell(i, scratch);
          if (block.eb_count == 0) continue;
          c.stream.set_scratch(scratch);
          BlockOutcome& out = result_.outcomes[i];
          switch (mode_) {
            case Mode::kSame:
              if (batch_classify) {
                BatchCtx::Slot& s = batch.slots[batch.n_slots];
                s.index = i;
                c.stream.finalize_stats(s.sr);
                store_.set_len(i, s.sr.recon.len);
                c.classified = true;
                if (++batch.n_slots == width) {
                  classify_flush(batch, analyzer);
                }
              } else {
                c.stream.finalize_stats(classify_sr);
                store_.set_len(i, classify_sr.recon.len);
                classify_outcome(i, store_.series(i), classify_sr, analyzer);
                c.classified = true;
                if (out.cls.change_sensitive && config_.run_detection) {
                  detect_outcome(i, store_.series(i), classify_sr.recon,
                                 analyzer);
                }
              }
              break;
            case Mode::kUnion:
              if (!c.classified) {
                c.stream.advance_to(classify_window_.end);
                c.stream.finalize_classify_stats(classify_sr);
                classify_outcome(i, c.stream.classify_series(), classify_sr,
                                 analyzer);
                c.classified = true;
                c.active =
                    out.cls.change_sensitive && config_.run_detection;
              }
              if (c.active) {
                if (batch_detect) {
                  BatchCtx::Slot& s = batch.slots[batch.n_slots];
                  s.index = i;
                  c.stream.finalize_stats(s.sr);
                  store_.set_len(i, s.sr.recon.len);
                  if (++batch.n_slots == width) detect_flush(batch);
                } else {
                  c.stream.finalize_stats(detect_sr);
                  store_.set_len(i, detect_sr.recon.len);
                  detect_outcome(i, store_.series(i), detect_sr.recon,
                                 analyzer);
                }
              }
              break;
            case Mode::kSeparate:
              if (!c.classified) {
                cpass.begin(block, classify_oc_, scratch);
                cpass.finalize_stats(classify_sr);
                classify_outcome(i, cpass.series(), classify_sr, analyzer);
                c.classified = true;
              }
              if (out.cls.change_sensitive && config_.run_detection) {
                if (batch_detect) {
                  BatchCtx::Slot& s = batch.slots[batch.n_slots];
                  s.index = i;
                  c.stream.finalize_stats(s.sr);
                  store_.set_len(i, s.sr.recon.len);
                  if (++batch.n_slots == width) detect_flush(batch);
                } else {
                  c.stream.finalize_stats(detect_sr);
                  store_.set_len(i, detect_sr.recon.len);
                  detect_outcome(i, store_.series(i), detect_sr.recon,
                                 analyzer);
                }
              }
              break;
          }
          c.active = false;
        }
      }
      // Ragged tail: drain what the last chunk left queued.
      if (batch_classify) {
        classify_flush(batch, analyzer);
      } else if (batch_detect) {
        detect_flush(batch);
      }
    };
  };
  run_pool(threads_, make_worker);
  finish_result();
  cells_.clear();
  return std::move(result_);
}

void StreamingFleet::extract_rows(std::vector<BlockSnapshotRow>& rows) const {
  assert(!finished_);
  rows.resize(blocks_.size());
  recon::ReconStats stats;  // recycled across rows
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    BlockSnapshotRow& row = rows[i];
    row = BlockSnapshotRow{};
    row.id = blocks_[i].id;
    if (cells_.empty()) continue;  // before the first advance
    const Cell& c = cells_[i];
    row.begun = c.begun;
    row.active = c.active;
    row.classified = c.classified;
    row.watched = c.watched;
    row.delivered = c.delivered;
    if (c.begun && blocks_[i].eb_count > 0) {
      const recon::StreamHealth h = c.stream.health();
      row.emitted = h.emitted;
      if (row.emitted > 0) {
        c.stream.recon_state().snapshot_stats(stats);
        row.evidence_fraction = stats.evidence_fraction;
        row.max_gap_hours = stats.max_gap_seconds / 3600.0;
      }
      if (c.classified) {
        row.cls = result_.outcomes[i].cls;
        row.degradation = result_.degradation.blocks[i];
      }
    }
  }
}

std::span<const double> StreamingFleet::emitted_series(std::size_t i) const {
  if (cells_.empty()) return {};
  const Cell& c = cells_[i];
  if (!c.begun || blocks_[i].eb_count == 0) return {};
  return c.stream.series().first(c.stream.recon_state().emitted());
}

namespace {

// Cell flag bits in the engine snapshot.
constexpr std::uint8_t kCellBegun = 1u << 0;
constexpr std::uint8_t kCellActive = 1u << 1;
constexpr std::uint8_t kCellClassified = 1u << 2;
constexpr std::uint8_t kCellScreened = 1u << 3;
constexpr std::uint8_t kCellWatched = 1u << 4;

}  // namespace

void StreamingFleet::save(util::StateWriter& w) const {
  assert(!finished_);
  w.begin_section(util::state_tag("FLTM"));
  w.u64(blocks_.size());
  w.i64(window_.start);
  w.i64(window_.end);
  w.i64(classify_window_.start);
  w.i64(classify_window_.end);
  w.u8(static_cast<std::uint8_t>(mode_));
  w.i64(clock_);
  w.u64(epoch_index_);
  w.u64(cells_.size());
  w.end_section();
  if (cells_.empty()) return;  // saved before the first advance

  w.begin_section(util::state_tag("CELL"));
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    std::uint8_t flags = 0;
    if (c.begun) flags |= kCellBegun;
    if (c.active) flags |= kCellActive;
    if (c.classified) flags |= kCellClassified;
    if (c.screened) flags |= kCellScreened;
    if (c.watched) flags |= kCellWatched;
    w.u8(flags);
    if (!c.begun) continue;
    w.u64(c.delivered);
    w.u64(c.trend_fed);
    w.u64(c.trend_base);
    w.f64(c.tsum);
    w.f64(c.tsum2);
    w.u64(c.tn);
    w.u64(c.reported);
    // The provisional CUSUM exists once the watch fed it (tn > 0); the
    // stream only while the cell still ingests rounds; a mid-run
    // verdict (kUnion/kSeparate) only for probed blocks — eb_count == 0
    // cells classify trivially and carry the default verdict.
    if (c.tn > 0) c.cusum.save(w);
    if (c.active) c.stream.save(w);
    if (c.classified && blocks_[i].eb_count > 0) {
      save_state(w, result_.outcomes[i].cls);
      save_state(w, result_.degradation.blocks[i]);
    }
  }
  w.end_section();
}

void StreamingFleet::restore(util::StateReader& r) {
  assert(!finished_ && cells_.empty());
  r.begin_section(util::state_tag("FLTM"));
  const std::uint64_t n_blocks = r.u64();
  const util::SimTime ws = r.i64();
  const util::SimTime we = r.i64();
  const util::SimTime cs = r.i64();
  const util::SimTime ce = r.i64();
  const std::uint8_t mode = r.u8();
  const util::SimTime clock = r.i64();
  const std::uint64_t epochs = r.u64();
  const std::uint64_t n_cells = r.u64();
  r.end_section();
  if (n_blocks != blocks_.size() || ws != window_.start ||
      we != window_.end || cs != classify_window_.start ||
      ce != classify_window_.end ||
      mode != static_cast<std::uint8_t>(mode_)) {
    throw util::StateError(
        util::StateErrorKind::kBadValue,
        "fleet snapshot was written under a different configuration");
  }
  if (n_cells != 0 && n_cells != blocks_.size()) {
    throw util::StateError(util::StateErrorKind::kBadValue,
                           "fleet snapshot cell count does not match");
  }
  clock_ = clock;
  epoch_index_ = static_cast<std::size_t>(epochs);
  if (n_cells == 0) return;

  cells_.resize(blocks_.size());
  probe::ProbeScratch scratch;
  r.begin_section(util::state_tag("CELL"));
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::uint8_t flags = r.u8();
    if (flags >= (kCellWatched << 1)) {
      throw util::StateError(util::StateErrorKind::kBadValue,
                             "unknown cell flags in fleet snapshot");
    }
    if ((flags & kCellBegun) == 0) continue;
    // Rebuild the config-derived skeleton exactly as the first advance
    // did (stream begin + row binding + outcome id), then overwrite the
    // mutable state from the snapshot.
    begin_cell(i, scratch);
    Cell& c = cells_[i];
    c.active = (flags & kCellActive) != 0;
    c.classified = (flags & kCellClassified) != 0;
    c.screened = (flags & kCellScreened) != 0;
    c.watched = (flags & kCellWatched) != 0;
    c.delivered = static_cast<std::size_t>(r.u64());
    c.trend_fed = static_cast<std::size_t>(r.u64());
    c.trend_base = static_cast<std::size_t>(r.u64());
    c.tsum = r.f64();
    c.tsum2 = r.f64();
    c.tn = static_cast<std::size_t>(r.u64());
    c.reported = static_cast<std::size_t>(r.u64());
    if (c.tn > 0) c.cusum.restore(r);
    if (c.active) c.stream.restore(r);
    if (c.classified && blocks_[i].eb_count > 0) {
      restore_state(r, result_.outcomes[i].cls);
      restore_state(r, result_.degradation.blocks[i]);
    }
  }
  r.end_section();
}

}  // namespace diurnal::core
