// Change detection in block usage (paper sections 2.5, 2.6):
// STL trend extraction, z-score normalization, two-sided CUSUM
// (threshold 1, drift 0.001), and filtering of closely paired down/up
// changes (outages and ISP renumbering).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "analysis/batch_analyzer.h"
#include "analysis/block_analyzer.h"
#include "analysis/cusum.h"
#include "analysis/stl.h"
#include "util/timeseries.h"

namespace diurnal::core {

/// Which seasonality model extracts the trend (section 2.5 compared
/// both and adopted STL for robustness; the naive model remains as the
/// ablation baseline).
enum class TrendModel { kStl, kNaive };

struct DetectorOptions {
  /// Seasonal period in seconds (default one week: the STL seasonal
  /// component then models daily and weekly structure, as in Figure 1b).
  std::int64_t period_seconds = 7 * util::kSecondsPerDay;
  TrendModel trend_model = TrendModel::kStl;
  analysis::StlOptions stl{};              ///< period is derived per series
  analysis::CusumOptions cusum{1.0, 0.001};
  /// A down change whose alarm is followed by an opposite-direction
  /// alarm within this window (with comparable amplitude) is an
  /// outage/renumbering pair (section 2.6: outages are minutes to a few
  /// hours, so their recovery alarms land within days, while week-long
  /// holidays recover much later and survive the filter).
  std::int64_t outage_pair_window = 3 * util::kSecondsPerDay;
  double outage_amplitude_ratio = 0.5;
  /// Raw-counts outage cross-check (section 2.6: "we can filter out
  /// such events by comparing them with outage detections"): a bounded
  /// dip of the raw counts below `outage_level_fraction` of the block's
  /// typical level, lasting at most `max_outage_duration`, is an outage;
  /// changes overlapping it are discarded.  Longer low periods (week-
  /// long holidays, WFH) are not outages.
  std::int64_t max_outage_duration = 48 * util::kSecondsPerHour;
  double outage_level_fraction = 0.25;
  /// Minimum |trend change| in addresses for a counted change: the
  /// z-score normalization gives every block unit variance, so without a
  /// physical floor the CUSUM chatters on blocks whose trend wiggles by
  /// a device or two.
  double min_change_addresses = 1.5;
  /// Raw-volume corroboration (the timezone/DST cross-check): a genuine
  /// activity change moves the block's mean activity volume by an
  /// amount comparable to its trend step, while a clock shift (a DST
  /// transition moving the whole schedule by an hour) changes phase but
  /// not volume — yet still perturbs the globally fitted STL trend
  /// enough for the CUSUM to alarm.  When enabled, a change whose
  /// one-period-windowed raw means before and after differ by less than
  /// `phase_corroboration_ratio` of the claimed trend amplitude is
  /// marked as a phase artifact.  Off by default: the golden-digest
  /// contract freezes the default pipeline's decisions.
  bool phase_shift_filter = false;
  double phase_corroboration_ratio = 0.5;
};

/// One detected change, annotated with times and the outage filter.
struct DetectedChange {
  util::SimTime start = 0;
  util::SimTime alarm = 0;
  util::SimTime end = 0;
  analysis::ChangeDirection direction = analysis::ChangeDirection::kDown;
  double amplitude = 0.0;            ///< in z-score units
  double amplitude_addresses = 0.0;  ///< raw trend change in addresses
  bool filtered_as_outage = false;   ///< part of a paired down/up excursion
  bool filtered_small = false;       ///< below the address-count floor
  /// Phase artifact: the raw volume around the change does not
  /// corroborate the trend step (see DetectorOptions::phase_shift_filter;
  /// never set when that filter is off).
  bool filtered_phase_only = false;
  /// Degraded-mode annotation (set by the fleet pipeline, never by a
  /// healthy run): the change's evidence window overlaps a coverage gap
  /// or the whole reconstruction fell below the confidence floor, so the
  /// "change" may be observers failing rather than humans moving.  Not
  /// part of counted(): consumers that need trustworthy onsets (e.g.
  /// WFH validation) must check it explicitly.
  bool low_evidence = false;

  /// True when the change counts as a human-activity change.
  bool counted() const noexcept {
    return !filtered_as_outage && !filtered_small && !filtered_phase_only;
  }
};

struct DetectionResult {
  util::TimeSeries trend;             ///< STL trend
  util::TimeSeries seasonal;          ///< STL seasonal component
  util::TimeSeries residual;          ///< STL residual
  util::TimeSeries normalized_trend;  ///< z-scored trend fed to CUSUM
  std::vector<double> cusum_pos;      ///< cumulative positive sums
  std::vector<double> cusum_neg;      ///< cumulative negative sums
  std::vector<DetectedChange> changes;

  /// Changes attributed to human activity (outage pairs removed).
  std::vector<DetectedChange> activity_changes() const;
};

/// Runs the full trend-extraction + change-detection stage on an
/// active-address count series.  Series shorter than two periods yield
/// an empty result.
DetectionResult detect_changes(const util::TimeSeries& counts,
                               const DetectorOptions& opt = {});

/// Span-kernel path: the same stage run through the caller's per-thread
/// analyzer, emitting only the change list (no component series are
/// materialized — the fleet drive never reads them).  `changes` is
/// cleared and refilled; bit-identical to the overload above.
void detect_changes(std::span<const double> counts, util::SimTime start,
                    std::int64_t step, const DetectorOptions& opt,
                    analysis::BlockAnalyzer& az,
                    std::vector<DetectedChange>& changes);

/// Batched detection: queues block jobs and runs the STL -> z-score ->
/// CUSUM chain for up to kMaxBatchLanes of them at once through the
/// SoA kernels (analysis/batch.h), then the same per-lane change
/// extraction and outage filters as detect_changes().  Each block's
/// change list is bit-identical to the scalar path's.
///
/// Contracts: one detector per thread; opt.trend_model must be kStl
/// (the naive ablation path stays scalar); queued spans must stay
/// valid until the enqueue that fills the batch or an explicit
/// flush() — the fleet drives satisfy this by queueing SeriesStore
/// rows, which are stable for the whole run.
class BatchDetector {
 public:
  explicit BatchDetector(
      const DetectorOptions& opt,
      std::size_t max_lanes = analysis::BatchAnalyzer::kMaxLanes);
  BatchDetector(const BatchDetector&) = delete;
  BatchDetector& operator=(const BatchDetector&) = delete;

  /// Queues one block; `out` is cleared now and filled at flush time.
  /// Blocks the scalar path's early outs reject (empty, bad step,
  /// shorter than two periods) are finished immediately and never
  /// queued.  Reaching max_lanes queued jobs flushes automatically.
  void enqueue(std::span<const double> counts, util::SimTime start,
               std::int64_t step, std::vector<DetectedChange>* out);

  /// Runs every queued job, grouping equal-shape (length, step) jobs
  /// into SoA batches; ragged tails run as narrower batches.
  void flush();

  /// Jobs queued and not yet flushed.
  std::size_t pending() const noexcept { return pending_; }

 private:
  struct Job {
    std::span<const double> counts;
    util::SimTime start = 0;
    std::int64_t step = 0;
    std::vector<DetectedChange>* out = nullptr;
  };

  const DetectorOptions opt_;
  std::size_t max_lanes_;
  std::array<Job, analysis::BatchAnalyzer::kMaxLanes> jobs_;
  std::size_t pending_ = 0;
  analysis::BatchAnalyzer az_;
};

}  // namespace diurnal::core
