#include "core/series_store.h"

namespace diurnal::core {

void SeriesStore::reset(std::size_t rows, std::size_t stride,
                        util::SimTime start, std::int64_t step) {
  stride_ = stride;
  start_ = start;
  step_ = step <= 0 ? 1 : step;
  data_.resize(rows * stride);  // default-init: rows are written by owners
  len_.assign(rows, 0);
}

}  // namespace diurnal::core
