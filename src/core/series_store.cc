#include "core/series_store.h"

#include <algorithm>
#include <vector>

namespace diurnal::core {

void SeriesStore::reset(std::size_t rows, std::size_t stride,
                        util::SimTime start, std::int64_t step) {
  stride_ = stride;
  start_ = start;
  step_ = step <= 0 ? 1 : step;
  data_.resize(rows * stride);  // default-init: rows are written by owners
  len_.assign(rows, 0);
}

void SeriesStore::save(util::StateWriter& w) const {
  w.u64(rows());
  w.u64(stride_);
  w.i64(start_);
  w.i64(step_);
  for (std::size_t i = 0; i < rows(); ++i) {
    w.f64_span(series(i));
  }
}

void SeriesStore::restore(util::StateReader& r) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t stride = r.u64();
  const util::SimTime start = r.i64();
  const std::int64_t step = r.i64();
  reset(static_cast<std::size_t>(rows), static_cast<std::size_t>(stride),
        start, step);
  std::vector<double> row_buf;
  for (std::uint64_t i = 0; i < rows; ++i) {
    r.f64_span(row_buf);
    if (row_buf.size() > stride) {
      throw util::StateError(util::StateErrorKind::kBadValue,
                             "series row longer than the stride");
    }
    auto dst = row(static_cast<std::size_t>(i));
    std::copy(row_buf.begin(), row_buf.end(), dst.begin());
    std::fill(dst.begin() + static_cast<std::ptrdiff_t>(row_buf.size()),
              dst.end(), 0.0);
    set_len(static_cast<std::size_t>(i), row_buf.size());
  }
}

}  // namespace diurnal::core
