// Streaming fleet engine: the staged, round-by-round pipeline over a
// whole world.  One implementation serves both drives:
//
//   * run_to_completion() — the batch drive.  Each worker runs one
//     block's BlockStream start-to-finish; run_fleet() is a thin
//     wrapper over this.  When the classification window is a prefix of
//     the detection window (same start, same observers), both results
//     come from ONE observation pass: the stream forks a second
//     reconstruction at the classification boundary instead of
//     re-observing the overlap.
//
//   * advance_to()/finalize() — the incremental drive.  Rounds are
//     ingested epoch by epoch across every block; each advance returns
//     an EpochReport with delivery counts, classification progress, and
//     *provisional* change alarms (trailing-window STL + online CUSUM
//     over the stable emitted-sample prefix).  finalize() then produces
//     the authoritative FleetResult, bit-identical to the batch drive —
//     the per-block state machines guarantee that any advance schedule
//     finalizes to the same bytes.
//
// Provisional vs authoritative: epoch alarms are early warnings, not
// detections.  They z-normalize with running statistics and freeze the
// trend as first estimated (the trailing STL's rightmost values, where
// the fit is least stable), so they can lead, lag, or miss the final
// verdict; only finalize()'s full-window detection is comparable across
// runs and hashed by the fleet digest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/block_analyzer.h"
#include "analysis/cusum.h"
#include "core/pipeline.h"
#include "core/series_store.h"
#include "recon/stream.h"

namespace diurnal::core {

/// An early-warning change alarm surfaced by the incremental drive.
struct ProvisionalChange {
  net::BlockId id{};
  util::SimTime start = 0;  ///< where the accumulator left zero
  util::SimTime alarm = 0;  ///< threshold crossing
  util::SimTime end = 0;    ///< excursion peak
  analysis::ChangeDirection direction = analysis::ChangeDirection::kDown;
  /// Excursion amplitude under the running normalization (z-units);
  /// not comparable to DetectedChange::amplitude.
  double amplitude = 0.0;
};

/// What one advance_to() call produced.
struct EpochReport {
  std::size_t epoch_index = 0;
  util::SimTime epoch_start = 0;  ///< previous high-water mark
  util::SimTime epoch_end = 0;    ///< new high-water mark (clamped)
  /// Post-fault observations delivered across the fleet this epoch.
  std::size_t observations = 0;
  /// True once every block's classification verdict is final (the
  /// classification window has been fully ingested).  The funnel below
  /// is populated from that point on.
  bool classification_complete = false;
  FunnelCounts funnel{};
  /// Alarms confirmed this epoch, ordered by (alarm time, block id).
  std::vector<ProvisionalChange> provisional;
};

class StreamingFleet {
 public:
  /// Read-only per-block row extracted from the incremental drive for
  /// the query plane's epoch snapshots (core/snapshot_server.h).  Rows
  /// align with the engine's block span.
  struct BlockSnapshotRow {
    net::BlockId id{};
    bool begun = false;
    bool active = false;      ///< still ingesting rounds
    bool classified = false;  ///< cls/degradation below are authoritative
    bool watched = false;     ///< provisional detector runs on this block
    std::size_t delivered = 0;  ///< post-fault observations so far
    std::size_t emitted = 0;    ///< stable reconstructed samples so far
    /// Live coverage over the emitted prefix (mid-stream
    /// snapshot_stats); meaningful when emitted > 0.
    double evidence_fraction = 0.0;
    double max_gap_hours = 0.0;
    /// Mid-run verdicts: the split-window modes publish them as soon as
    /// the classification window is ingested; kSame classifies at
    /// finalize, so these stay default until drain.
    BlockClassification cls{};
    fault::BlockDegradation degradation{};
  };
  /// Borrows `world` and `config` for the engine's lifetime.
  StreamingFleet(const sim::World& world, const FleetConfig& config)
      : StreamingFleet(std::span<const sim::BlockProfile>(world.blocks()),
                       config) {}

  /// Span form: drives any contiguous block population (a full world or
  /// one shard's WorldSlice).  Outcomes/degradation/series rows align
  /// with `blocks`; the storage must outlive the engine.
  StreamingFleet(std::span<const sim::BlockProfile> blocks,
                 const FleetConfig& config);

  util::SimTime window_start() const noexcept { return window_.start; }
  util::SimTime window_end() const noexcept { return window_.end; }

  /// Batch drive: processes every block start-to-finish in parallel and
  /// returns the result.  Use either this or the incremental drive on
  /// one engine instance, not both.
  FleetResult run_to_completion();

  /// Incremental drive: ingests every round starting before `until`
  /// (clamped to the detection window) across all blocks.  Monotone in
  /// `until`; a no-op advance returns an empty report.
  EpochReport advance_to(util::SimTime until);

  /// Drains all remaining state and returns the authoritative result,
  /// bit-identical to run_to_completion() regardless of how the window
  /// was chopped into epochs.
  FleetResult finalize();

  /// High-water mark of the incremental drive (the next advance/resume
  /// point).  window_start() until the first advance.
  util::SimTime clock() const noexcept { return clock_; }

  /// Serializes the incremental drive's complete mid-window state:
  /// every cell's reconstruction stream, provisional-detector moments
  /// and CUSUM, plus any mid-run classification verdicts.  Valid only
  /// between advances (never after finalize()).  restore() targets a
  /// freshly constructed engine over the same blocks and FleetConfig —
  /// it re-begins each cell's stream internally, then overwrites the
  /// mutable state, so advance/finalize after restore are bit-identical
  /// to an uninterrupted run (tests/test_checkpoint.cc gates this at
  /// every epoch boundary).  A mismatched window, mode, or block count
  /// throws StateError(kBadValue).
  void save(util::StateWriter& w) const;
  void restore(util::StateReader& r);

  /// Fills `rows` (resized to the block span) with the incremental
  /// drive's current per-block state.  Like save(), valid only between
  /// advances and only from the thread driving the engine — the rows
  /// are a copy, so the caller may publish them to other threads.
  void extract_rows(std::vector<BlockSnapshotRow>& rows) const;

  /// The stable emitted-sample prefix of block i's detection-window
  /// reconstruction.  Same validity rules as extract_rows(); the view
  /// is invalidated by the next advance, so concurrent consumers must
  /// copy.  Empty before the block's stream begins.
  std::span<const double> emitted_series(std::size_t i) const;

 private:
  /// How the classification pass relates to the detection pass.
  enum class Mode {
    kSame,      ///< one window serves both (one pass, one recon)
    kUnion,     ///< classification is a prefix: one pass, forked recon
    kSeparate,  ///< unrelated windows: dedicated classification pass
  };

  /// Per-block incremental state (lazily built by the first advance).
  struct Cell {
    recon::BlockStream stream;
    bool begun = false;
    bool active = false;      ///< still ingesting rounds
    bool classified = false;  ///< authoritative verdict recorded
    bool screened = false;    ///< provisional watch decision made
    bool watched = false;     ///< provisional detector runs on this block
    std::size_t delivered = 0;  ///< high-water mark for epoch deltas
    // Provisional detector state: trend values frozen as first
    // estimated, z-normalized by running moments, scanned by an online
    // CUSUM over the concatenated z sequence.
    std::size_t trend_fed = 0;   ///< recon samples already folded in
    std::size_t trend_base = 0;  ///< recon index of the first z pushed
    double tsum = 0.0, tsum2 = 0.0;
    std::size_t tn = 0;
    analysis::OnlineCusum cusum;
    std::size_t reported = 0;  ///< confirmed changes already surfaced
  };

  /// Per-worker state of the batched analysis path: classification and
  /// detection slots plus the SoA analyzers (defined in streaming.cc).
  struct BatchCtx;

  void classify_outcome(std::size_t i, std::span<const double> counts,
                        const recon::DegradedReconStats& ds,
                        analysis::BlockAnalyzer& az);
  void detect_outcome(std::size_t i, std::span<const double> counts,
                      const recon::ReconStats& stats,
                      analysis::BlockAnalyzer& az);
  /// Resolved analysis_batch_width (see FleetConfig); 1 = scalar path.
  std::size_t batch_width() const noexcept;
  /// Classifies the queued kSame slots in one SoA batch, then feeds
  /// change-sensitive blocks to the batched detector and annotates.
  void classify_flush(BatchCtx& b, analysis::BlockAnalyzer& az);
  /// Runs the queued detection-only slots (kUnion/kSeparate) through
  /// the batched detector and annotates.
  void detect_flush(BatchCtx& b);
  void begin_cell(std::size_t i, probe::ProbeScratch& scratch);
  void screen_cell(std::size_t i, analysis::BlockAnalyzer& az,
                   recon::ReconStats& stats);
  void update_provisional(std::size_t i, analysis::BlockAnalyzer& az,
                          std::vector<ProvisionalChange>& out);
  void finish_result();

  std::span<const sim::BlockProfile> blocks_;
  const FleetConfig& config_;
  Mode mode_ = Mode::kSame;
  probe::ProbeWindow window_{};           ///< detection window
  probe::ProbeWindow classify_window_{};  ///< classification window
  recon::BlockObservationConfig classify_oc_{};
  recon::BlockObservationConfig detect_oc_{};
  double evidence_floor_ = 0.0;
  unsigned threads_ = 1;

  FleetResult result_;
  /// Columnar destination for detection-window series: rows are bound
  /// to each block's reconstruction before it runs, then moved into
  /// result_.series by finish_result().
  SeriesStore store_;
  bool finished_ = false;

  // Incremental drive state.
  std::vector<Cell> cells_;
  util::SimTime clock_ = 0;
  std::size_t epoch_index_ = 0;
};

}  // namespace diurnal::core
