// End-to-end fleet pipeline: probe -> repair -> merge -> reconstruct ->
// classify -> extract trend -> detect changes, over every block of a
// world (paper Table 1), parallelized across blocks.
//
// Following section 3.4, classification can run on a short window (the
// paper uses 2020m1, before Covid skews the baseline) while detection
// runs over a longer one (2020h1).
#pragma once

#include <optional>
#include <vector>

#include "core/aggregate.h"
#include "core/classify.h"
#include "core/datasets.h"
#include "core/detect.h"
#include "core/series_store.h"
#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "probe/loss_model.h"
#include "recon/block_recon.h"
#include "sim/world.h"

namespace diurnal::core {

struct FleetConfig {
  /// Detection dataset: probing window and observer set.
  DatasetSpec dataset;
  /// Classification dataset; defaults to `dataset` when unset.
  std::optional<DatasetSpec> classify_dataset;

  probe::LossModelConfig loss{};
  bool one_loss_repair = true;
  bool additional_observations = false;

  /// Observer fault plan (degraded mode).  The default empty plan is the
  /// healthy fleet: output is bit-identical to a run without the fault
  /// layer.  With a seeded plan the run stays deterministic across
  /// thread counts; classifications and detections whose evidence
  /// degrades are annotated rather than silently misreported.
  fault::FaultPlan faults{};

  ClassifierOptions classifier{};
  DetectorOptions detector{};
  recon::ReconOptions recon{};  ///< hourly sampling by default

  /// Run change detection on change-sensitive blocks.
  bool run_detection = true;

  /// When the classification window is a prefix of the detection window
  /// (same start, same observers, no skew faults), observe once over
  /// the detection window and fork the classification reconstruction at
  /// the boundary instead of re-observing the overlap.  Results are
  /// bit-identical either way; disable only to cross-check that
  /// equivalence or to time the two-pass path.
  bool fuse_observation_windows = true;

  int threads = 0;  ///< 0 = hardware concurrency

  /// Lanes of the batched SoA analysis path (analysis/batch.h) feeding
  /// classification and detection: 0 = full width
  /// (analysis::BatchAnalyzer::kMaxLanes), 1 = the legacy scalar
  /// per-block path, otherwise clamped to [1, kMaxLanes].  Results are
  /// bit-identical at every width (the batched kernels replicate the
  /// scalar arithmetic per lane); the knob exists for the
  /// scalar-vs-batched frontier benchmarks and equivalence tests.
  int analysis_batch_width = 0;
};

struct BlockOutcome {
  net::BlockId id{};
  BlockClassification cls{};
  /// Detected changes (only populated for change-sensitive blocks when
  /// run_detection is set).
  std::vector<DetectedChange> changes;
};

struct FleetResult {
  FunnelCounts funnel{};                 ///< the Table 2 row
  std::vector<BlockOutcome> outcomes;    ///< aligned with world.blocks()
  /// Per-block coverage/trust accounting (blocks aligned with outcomes).
  fault::DegradationReport degradation{};
  /// Columnar per-block reconstructed series (rows aligned with
  /// outcomes).  Which rows are populated depends on the window mode:
  /// with a single fused window every nonzero block's detection-window
  /// series is present; with separate classification/detection windows
  /// only change-sensitive blocks reach the detection pass, so other
  /// rows have length 0.  Not hashed by the fleet digest.
  SeriesStore series;
};

/// Runs the pipeline over every block of the world.
FleetResult run_fleet(const sim::World& world, const FleetConfig& config);

/// Aggregates a fleet result's activity changes by gridcell/continent
/// over the detection window.
ChangeAggregator aggregate_changes(const sim::World& world,
                                   const FleetResult& result,
                                   const FleetConfig& config);

}  // namespace diurnal::core
