#include "core/shard.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/streaming.h"
#include "geo/countries.h"

namespace diurnal::core {

namespace {

unsigned resolve_threads(int requested) {
  const unsigned n = requested > 0
                         ? static_cast<unsigned>(requested)
                         : std::max(1u, std::thread::hardware_concurrency());
  return std::min<unsigned>(n, 64);
}

/// Atomic running maximum.
void track_peak(std::atomic<std::size_t>& peak, std::size_t value) {
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (seen < value &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

ShardedFleetResult run_sharded_fleet(const sim::WorldConfig& world_config,
                                     const FleetConfig& config,
                                     const ShardConfig& shards) {
  return run_sharded_fleet(sim::BlockGenerator(world_config), config, shards);
}

ShardedFleetResult run_sharded_fleet(const sim::BlockGenerator& generator,
                                     const FleetConfig& config,
                                     const ShardConfig& shards) {
  const std::size_t total = generator.total_blocks();
  const std::size_t shard_size =
      shards.shard_size == 0 ? std::max<std::size_t>(total, 1)
                             : shards.shard_size;
  const std::size_t n_shards =
      total == 0 ? 0 : (total + shard_size - 1) / shard_size;

  const auto window = config.dataset.window();
  const std::int64_t sstep = config.recon.sample_step;
  const std::int64_t dur = window.end - window.start;
  const std::size_t stride =
      (sstep <= 0 || dur <= 0)
          ? 0
          : static_cast<std::size_t>((dur + sstep - 1) / sstep);

  ShardedFleetResult out{{}, ChangeAggregator(window.start, window.end), {}};
  out.fleet.outcomes.resize(total);
  out.fleet.degradation.blocks.resize(total);
  if (shards.retain_series) {
    out.fleet.series.reset(total, stride, window.start, sstep);
  }

  // Worker topology: each shard worker owns at most one resident shard,
  // so min(threads, max_resident) workers enforce the residency cap by
  // construction; leftover parallelism goes inside the shard runs (the
  // single-shard / whole-world case degrades to one worker driving a
  // fully parallel StreamingFleet).
  const unsigned threads = resolve_threads(config.threads);
  const std::size_t max_resident = std::max<std::size_t>(1, shards.max_resident);
  const std::size_t n_workers = std::max<std::size_t>(
      1, std::min({static_cast<std::size_t>(threads), max_resident,
                   std::max<std::size_t>(n_shards, 1)}));
  const int intra_threads =
      static_cast<int>(std::max<std::size_t>(1, threads / n_workers));

  std::atomic<std::size_t> next_shard{0};
  std::atomic<std::size_t> resident{0};
  std::atomic<std::size_t> peak_resident{0};
  std::atomic<std::size_t> resident_bytes{0};
  std::atomic<std::size_t> peak_resident_bytes{0};
  std::mutex agg_mu;

  // Checkpoint/resume prologue: fold every loadable completed shard
  // into the global result before any worker starts; `done` shards are
  // skipped by the claim loop.  Any StateError (missing file, flipped
  // byte, truncation, foreign fingerprint) just leaves the shard to be
  // recomputed — a bad checkpoint can cost time, never correctness.
  std::optional<CheckpointManager> ckpt;
  std::vector<char> done(n_shards, 0);
  std::size_t resumed = 0;
  if (!shards.checkpoint_dir.empty()) {
    ckpt.emplace(shards.checkpoint_dir,
                 checkpoint_fingerprint(generator.config(), config, shard_size),
                 total, shard_size, shards.checkpoint_every);
    if (shards.resume) {
      std::vector<std::size_t> listed;
      try {
        listed = ckpt->load_manifest();
      } catch (const util::StateError&) {
        listed.clear();  // corrupt or foreign manifest: fresh run
      }
      for (const std::size_t k : listed) {
        if (k >= n_shards) continue;
        try {
          ShardCheckpoint sc = ckpt->load_shard(k);
          if (shards.retain_series && !sc.has_series) {
            continue;  // recorded without series: recompute for this run
          }
          for (std::size_t i = 0; i < sc.outcomes.size(); ++i) {
            out.fleet.outcomes[sc.begin + i] = std::move(sc.outcomes[i]);
            out.fleet.degradation.blocks[sc.begin + i] = sc.degradation[i];
          }
          out.aggregate.merge_from(sc.aggregate);
          if (shards.retain_series) {
            for (std::size_t i = 0; i < sc.series.rows(); ++i) {
              const auto src = sc.series.series(i);
              const auto dst = out.fleet.series.row(sc.begin + i);
              std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
              out.fleet.series.set_len(sc.begin + i, src.size());
            }
          }
          done[k] = 1;
          ++resumed;
        } catch (const util::StateError&) {
          // unreadable shard file: recompute it below
        }
      }
    }
  }

  std::atomic<std::size_t> claimed{0};
  std::atomic<std::size_t> computed{0};

  auto worker = [&] {
    sim::WorldSlice slice;
    ChangeAggregator local_agg(window.start, window.end);
    for (;;) {
      const std::size_t k = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (k >= n_shards) break;
      if (done[k]) continue;
      // The kill-mid-run cap counts claims, not completions, so a capped
      // run processes exactly min(cap, remaining) shards at any worker
      // count (the checkpoint tests rely on the exact count).
      if (shards.max_shards != 0 &&
          claimed.fetch_add(1, std::memory_order_relaxed) >=
              shards.max_shards) {
        break;
      }
      const std::size_t begin = k * shard_size;
      const std::size_t end = std::min(begin + shard_size, total);

      track_peak(peak_resident, resident.fetch_add(1) + 1);
      slice.materialize(generator, begin, end);
      // Account the slice plus the shard-local series store the engine
      // is about to allocate ((end-begin) rows of `stride` samples plus
      // the length column) for the whole time both are resident.
      const std::size_t bytes = slice.memory_bytes() +
                                (end - begin) * stride * sizeof(double) +
                                (end - begin) * sizeof(std::uint32_t);
      track_peak(peak_resident_bytes, resident_bytes.fetch_add(bytes) + bytes);

      FleetConfig shard_config = config;
      shard_config.threads = intra_threads;
      StreamingFleet engine(slice.blocks(), shard_config);
      FleetResult r = engine.run_to_completion();

      // Fold: disjoint global rows, so no synchronization needed.
      for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
        out.fleet.outcomes[begin + i] = std::move(r.outcomes[i]);
      }
      out.fleet.degradation.absorb_rows(r.degradation, begin);
      if (shards.retain_series) {
        for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
          const auto src = r.series.series(i);
          const auto dst = out.fleet.series.row(begin + i);
          std::memcpy(dst.data(), src.data(), src.size() * sizeof(double));
          out.fleet.series.set_len(begin + i, src.size());
        }
      }
      // Aggregate while the slice (block locations) is still resident.
      // With checkpointing the shard gets its own aggregator — its
      // series is what the checkpoint file stores (merge_from is
      // commutative, so folding it into local_agg afterwards reproduces
      // the uncheckpointed accumulation exactly).
      ChangeAggregator shard_agg(window.start, window.end);
      ChangeAggregator& agg = ckpt ? shard_agg : local_agg;
      const auto blocks = slice.blocks();
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        const auto& o = out.fleet.outcomes[begin + i];
        if (!o.cls.change_sensitive) continue;
        agg.add_block(blocks[i].cell(),
                      geo::countries()[blocks[i].country].continent,
                      o.changes);
      }
      if (ckpt) {
        ckpt->record_shard(k, begin, end, out.fleet, shard_agg,
                           shards.retain_series);
        local_agg.merge_from(shard_agg);
      }
      computed.fetch_add(1, std::memory_order_relaxed);

      // Retire: drop the shard's series store and block population.
      r = FleetResult{};
      resident_bytes.fetch_sub(bytes);
      slice.release();
      resident.fetch_sub(1);
    }
    const std::lock_guard<std::mutex> lock(agg_mu);
    out.aggregate.merge_from(local_agg);
  };

  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (std::size_t t = 0; t < n_workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  if (ckpt) ckpt->flush_manifest();

  out.fleet.funnel = FunnelCounts{};
  for (const auto& o : out.fleet.outcomes) out.fleet.funnel.add(o.cls);
  out.fleet.degradation.finalize();

  out.stats.shards = n_shards;
  out.stats.shard_size = shard_size;
  out.stats.blocks = total;
  out.stats.workers = n_workers;
  out.stats.intra_threads = static_cast<std::size_t>(intra_threads);
  out.stats.peak_resident = peak_resident.load();
  out.stats.peak_resident_bytes = peak_resident_bytes.load();
  out.stats.series_bytes_retained =
      shards.retain_series ? out.fleet.series.memory_bytes() : 0;
  out.stats.resumed_shards = resumed;
  out.stats.completed_shards = computed.load();
  return out;
}

}  // namespace diurnal::core
