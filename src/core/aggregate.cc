#include "core/aggregate.h"

#include <algorithm>

namespace diurnal::core {

ChangeAggregator::ChangeAggregator(util::SimTime start, util::SimTime end)
    : start_(start),
      days_(static_cast<std::size_t>(
          std::max<std::int64_t>(0, (end - start + util::kSecondsPerDay - 1) /
                                        util::kSecondsPerDay))) {
  for (auto& c : by_continent_) {
    c.down.assign(days_, 0);
    c.up.assign(days_, 0);
  }
}

std::size_t ChangeAggregator::day_of(util::SimTime t) const noexcept {
  if (days_ == 0) return 0;
  const std::int64_t d = (t - start_) / util::kSecondsPerDay;
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(d, 0, static_cast<std::int64_t>(days_) - 1));
}

void ChangeAggregator::add_block(geo::GridCell cell, geo::Continent continent,
                                 const std::vector<DetectedChange>& changes) {
  auto& cs = by_cell_[cell];
  if (cs.down.empty()) {
    cs.down.assign(days_, 0);
    cs.up.assign(days_, 0);
  }
  auto& cont = by_continent_[static_cast<std::size_t>(continent)];
  ++cs.change_sensitive_blocks;
  ++cont.change_sensitive_blocks;
  for (const auto& ch : changes) {
    if (!ch.counted()) continue;
    const std::size_t d = day_of(ch.alarm);
    if (d >= days_) continue;
    if (ch.direction == analysis::ChangeDirection::kDown) {
      ++cs.down[d];
      ++cont.down[d];
    } else {
      ++cs.up[d];
      ++cont.up[d];
    }
  }
}

void ChangeAggregator::merge_from(const ChangeAggregator& other) {
  const auto fold = [this](RegionDaySeries& into, const RegionDaySeries& from) {
    into.change_sensitive_blocks += from.change_sensitive_blocks;
    for (std::size_t d = 0; d < days_; ++d) {
      into.down[d] += from.down[d];
      into.up[d] += from.up[d];
    }
  };
  for (const auto& [cell, series] : other.by_cell_) {
    auto& cs = by_cell_[cell];
    if (cs.down.empty()) {
      cs.down.assign(days_, 0);
      cs.up.assign(days_, 0);
    }
    fold(cs, series);
  }
  for (std::size_t c = 0; c < by_continent_.size(); ++c) {
    fold(by_continent_[c], other.by_continent_[c]);
  }
}

namespace {

void save_series(util::StateWriter& w, const RegionDaySeries& s) {
  w.i64(s.change_sensitive_blocks);
  w.u64(s.down.size());
  for (const std::int32_t v : s.down) w.i64(v);
  for (const std::int32_t v : s.up) w.i64(v);
}

void restore_series(util::StateReader& r, RegionDaySeries& s,
                    std::size_t days) {
  s.change_sensitive_blocks = static_cast<std::int32_t>(r.i64());
  const std::uint64_t n = r.u64();
  if (n != days) {
    throw util::StateError(util::StateErrorKind::kBadValue,
                           "day series length does not match the window");
  }
  s.down.assign(days, 0);
  s.up.assign(days, 0);
  for (auto& v : s.down) v = static_cast<std::int32_t>(r.i64());
  for (auto& v : s.up) v = static_cast<std::int32_t>(r.i64());
}

}  // namespace

void ChangeAggregator::save(util::StateWriter& w) const {
  w.i64(start_);
  w.u64(days_);
  for (const auto& c : by_continent_) save_series(w, c);
  w.u64(by_cell_.size());
  for (const auto& [cell, series] : by_cell_) {
    w.i64(cell.lat_idx);
    w.i64(cell.lon_idx);
    save_series(w, series);
  }
}

void ChangeAggregator::restore(util::StateReader& r) {
  start_ = r.i64();
  days_ = static_cast<std::size_t>(r.u64());
  for (auto& c : by_continent_) restore_series(r, c, days_);
  const std::uint64_t n_cells = r.u64();
  by_cell_.clear();
  for (std::uint64_t i = 0; i < n_cells; ++i) {
    geo::GridCell cell;
    cell.lat_idx = static_cast<std::int16_t>(r.i64());
    cell.lon_idx = static_cast<std::int16_t>(r.i64());
    restore_series(r, by_cell_[cell], days_);
  }
}

std::vector<ChangeAggregator::CellSnapshot> ChangeAggregator::map_snapshot(
    util::SimTime day, std::int32_t min_blocks) const {
  const std::size_t d = day_of(day);
  std::vector<CellSnapshot> out;
  for (const auto& [cell, series] : by_cell_) {
    if (series.change_sensitive_blocks < min_blocks) continue;
    CellSnapshot s;
    s.cell = cell;
    s.blocks = series.change_sensitive_blocks;
    s.down_on_day = series.down[d];
    s.down_fraction = series.down_fraction(d);
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const CellSnapshot& a, const CellSnapshot& b) {
    return a.blocks > b.blocks;
  });
  return out;
}

}  // namespace diurnal::core
