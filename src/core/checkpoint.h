// Externalized pipeline results: per-shard checkpoint files plus the
// manifest that lets run_sharded_fleet() resume a killed run without
// recomputing completed shards (DESIGN.md section 11).
//
// A shard checkpoint stores the shard's *outputs* — outcomes,
// degradation rows, gridcell aggregation, optionally series rows — not
// its in-flight reconstruction state: shards are the unit of recompute,
// so a shard is either done (its file is complete and CRC-clean) or it
// runs again from the world seed.  Mid-window state travels through the
// StreamingFleet::save()/restore() path instead (the CLI's streaming
// checkpoints), built on the same serializers below.
//
// Every file carries the run's config fingerprint; a checkpoint written
// under a different world/fleet configuration is rejected with
// StateError(kBadValue) instead of silently merging foreign results.
#pragma once

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/pipeline.h"
#include "util/state_io.h"

namespace diurnal::core {

// Per-structure serializers shared by the shard checkpoint files and
// the streaming-engine snapshot.  Each restore_state overwrites its
// target completely.
void save_state(util::StateWriter& w, const BlockClassification& c);
void restore_state(util::StateReader& r, BlockClassification& c);
void save_state(util::StateWriter& w, const fault::BlockDegradation& d);
void restore_state(util::StateReader& r, fault::BlockDegradation& d);
void save_state(util::StateWriter& w, const DetectedChange& c);
void restore_state(util::StateReader& r, DetectedChange& c);
void save_state(util::StateWriter& w, const BlockOutcome& o);
void restore_state(util::StateReader& r, BlockOutcome& o);

/// Fingerprint of everything a checkpoint's results depend on: the
/// world configuration, the datasets/windows, the fault plan, and the
/// key analysis knobs.  Deliberately excludes the execution shape —
/// thread count, batch width, max_resident — which the determinism
/// contract guarantees cannot change the output; a run may resume
/// another's checkpoints across those.  `shard_size` is folded in for
/// sharded runs (shard files only splice at matching boundaries); pass
/// 0 for streaming checkpoints.
std::uint64_t checkpoint_fingerprint(const sim::WorldConfig& world,
                                     const FleetConfig& config,
                                     std::uint64_t shard_size = 0);

/// One restored shard's contribution to the merged result.
struct ShardCheckpoint {
  std::size_t begin = 0;  ///< first global block index
  std::size_t end = 0;    ///< one past the last
  std::vector<BlockOutcome> outcomes;                ///< end - begin rows
  std::vector<fault::BlockDegradation> degradation;  ///< end - begin rows
  ChangeAggregator aggregate;  ///< this shard's gridcell/continent series
  bool has_series = false;     ///< recorded with retain_series
  SeriesStore series;          ///< end - begin rows when has_series
};

/// Owns a checkpoint directory: one `shard-<k>.ckpt` per completed
/// shard plus a `manifest.ckpt` listing which are complete.  Shard
/// files are written atomically (tmp + rename) and the manifest is
/// rewritten after the fact, so a crash at any instant leaves only
/// complete, loadable files — at worst the manifest under-reports and a
/// finished shard is recomputed.
///
/// record_shard() is safe to call from concurrent shard workers; loads
/// are single-threaded (the resume prologue).
class CheckpointManager {
 public:
  /// Creates `dir` if needed.  `manifest_every` batches manifest
  /// rewrites: 1 persists progress after every shard, N trades
  /// durability granularity for fewer writes (flush_manifest() always
  /// runs at the end of the run).
  CheckpointManager(std::string dir, std::uint64_t fingerprint,
                    std::size_t total_blocks, std::size_t shard_size,
                    std::size_t manifest_every = 1);

  /// Shard ids a previous run recorded complete.  An absent manifest is
  /// an empty list (first run); a corrupt manifest or one written under
  /// a different fingerprint/universe throws StateError.
  std::vector<std::size_t> load_manifest();

  /// Loads shard k's checkpoint file and marks it complete in this
  /// manager.  Throws StateError when the file is missing, corrupt,
  /// truncated, or fingerprint-mismatched — callers recompute the shard.
  ShardCheckpoint load_shard(std::size_t k);

  /// Serializes shard k's slice [begin, end) of the already-folded
  /// global result plus its own aggregator, writes the shard file
  /// atomically, and rewrites the manifest every `manifest_every`
  /// completions.
  void record_shard(std::size_t k, std::size_t begin, std::size_t end,
                    const FleetResult& fleet, const ChangeAggregator& agg,
                    bool with_series);

  /// Rewrites the manifest with every shard recorded so far.
  /// Idempotent: a flush with nothing new since the last write is a
  /// no-op, so the run-end finalize cannot race (or redundantly repeat)
  /// a manifest write that `manifest_every` already triggered on the
  /// final shard.
  void flush_manifest();

  /// Manifest rewrites performed by this manager (regression hook for
  /// the finalize-idempotence tests).
  std::size_t manifest_writes() const;

  std::string shard_path(std::size_t k) const;
  std::string manifest_path() const;
  const std::string& dir() const noexcept { return dir_; }
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

 private:
  void write_manifest_locked();

  std::string dir_;
  std::uint64_t fingerprint_;
  std::uint64_t total_blocks_;
  std::uint64_t shard_size_;
  std::size_t manifest_every_;
  mutable std::mutex mu_;
  std::set<std::size_t> completed_;
  std::size_t unflushed_ = 0;
  bool dirty_ = false;  ///< completions not yet persisted in the manifest
  std::size_t manifest_writes_ = 0;
};

}  // namespace diurnal::core
