#include "core/discovery.h"

#include <algorithm>

#include "analysis/stats.h"
#include "util/table.h"

namespace diurnal::core {

std::string DiscoveredEvent::to_string() const {
  std::string out = cell.to_string();
  out += " ";
  out += util::to_string(util::date_of(start));
  if (end - start > util::kSecondsPerDay) {
    out += "..";
    out += util::to_string(util::date_of(end - 1));
  }
  out += " peak ";
  out += std::to_string(peak_blocks);
  out += "/";
  out += std::to_string(cell_blocks);
  out += " blocks (";
  out += util::fmt_pct(peak_fraction);
  out += ")";
  return out;
}

std::vector<DiscoveredEvent> discover_events(const ChangeAggregator& agg,
                                             const DiscoveryOptions& opt) {
  analysis::Workspace ws;
  return discover_events(agg, opt, ws);
}

std::vector<DiscoveredEvent> discover_events(const ChangeAggregator& agg,
                                             const DiscoveryOptions& opt,
                                             analysis::Workspace& ws) {
  std::vector<DiscoveredEvent> out;
  for (const auto& [cell, series] : agg.by_cell()) {
    if (series.change_sensitive_blocks < opt.min_blocks) continue;

    // Sliding-window sums: one regional event's detections spread over
    // several days.
    const std::size_t days = series.down.size();
    const std::size_t w = static_cast<std::size_t>(std::max(opt.window_days, 1));
    if (days < w) continue;
    auto lease = ws.acquire_zero(days - w + 1);
    const std::span<double> windowed = lease.span();
    double running = 0.0;
    for (std::size_t i = 0; i < days; ++i) {
      running += series.down[i];
      if (i >= w) running -= series.down[i - w];
      if (i + 1 >= w) windowed[i + 1 - w] = running;
    }

    // Baseline: the 75th percentile of the windowed counts.  A low-order
    // statistic over *all* windows keeps the spikes themselves from
    // inflating the baseline (most windows in most cells are quiet).
    const double baseline =
        std::max(1.0, analysis::quantile(windowed, 0.75, ws));
    const double blocks = static_cast<double>(series.change_sensitive_blocks);

    std::size_t d = 0;
    while (d < windowed.size()) {
      const auto spike = [&](std::size_t i) {
        return windowed[i] >= opt.min_count &&
               windowed[i] / blocks >= opt.min_fraction &&
               windowed[i] >= opt.spike_factor * baseline;
      };
      if (!spike(d)) {
        ++d;
        continue;
      }
      DiscoveredEvent ev;
      ev.cell = cell;
      ev.cell_blocks = series.change_sensitive_blocks;
      ev.start = agg.start() +
                 static_cast<util::SimTime>(d) * util::kSecondsPerDay;
      std::size_t last = d;
      for (std::size_t i = d; i < windowed.size() && i <= last + 1; ++i) {
        if (!spike(i)) continue;
        last = i;
        if (static_cast<int>(windowed[i]) > ev.peak_blocks) {
          ev.peak_blocks = static_cast<int>(windowed[i]);
          ev.peak_fraction = windowed[i] / blocks;
        }
      }
      ev.end = agg.start() + static_cast<util::SimTime>(last + w) *
                                 util::kSecondsPerDay;
      out.push_back(ev);
      d = last + 1;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DiscoveredEvent& a, const DiscoveredEvent& b) {
              return a.peak_fraction > b.peak_fraction;
            });
  return out;
}

}  // namespace diurnal::core
