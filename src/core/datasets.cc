#include "core/datasets.h"

#include <cstdio>
#include <stdexcept>

namespace diurnal::core {

using util::Date;

probe::ProbeWindow DatasetSpec::window() const {
  const util::SimTime t0 = util::time_of(start);
  return probe::ProbeWindow{
      t0, t0 + static_cast<util::SimTime>(duration_weeks) * 7 *
                   util::kSecondsPerDay};
}

std::vector<probe::ObserverSpec> DatasetSpec::observers() const {
  return probe::sites_from_string(sites);
}

namespace {

std::string archive_name(const Date& start, char site, bool survey) {
  if (survey) {
    return "internet_address_survey_reprobing_it89" + std::string(1, site) +
           "-20200219";
  }
  // Quarterly adaptive archives: a38 = 2019q4, a39 = 2020q1, ...
  const int quarter = (start.year - 2019) * 4 + (start.month - 1) / 3;
  const int a = 35 + quarter;  // a38 at 2019q4 (quarter index 3)
  char buf[80];
  std::snprintf(buf, sizeof(buf), "internet_outage_adaptive_a%d%c-%04d%02d%02d",
                a, site, start.year, start.month, start.day);
  return buf;
}

DatasetSpec make(const std::string& abbr, Date start, int weeks,
                 std::string sites, bool survey = false) {
  DatasetSpec d;
  d.abbr = abbr;
  d.start = start;
  d.duration_weeks = weeks;
  d.sites = std::move(sites);
  d.survey = survey;
  d.full_name = archive_name(start, d.sites.size() == 1 ? d.sites[0] : '*',
                             survey);
  return d;
}

}  // namespace

const std::vector<DatasetSpec>& table6_datasets() {
  static const std::vector<DatasetSpec> all = [] {
    std::vector<DatasetSpec> v;
    auto quarterly = [&](int year, int month, const char* abbr_prefix,
                         const std::string& site_codes) {
      for (const char s : site_codes) {
        v.push_back(make(std::string(abbr_prefix) + "-" + s,
                         Date{year, month, 1}, 12, std::string(1, s)));
      }
    };
    quarterly(2019, 10, "2019q4", "w");
    quarterly(2020, 1, "2020q1", "ejnw");
    quarterly(2020, 4, "2020q2", "ejnw");
    quarterly(2023, 1, "2023q1", "cegnw");
    quarterly(2023, 4, "2023q2", "cegnw");
    v.push_back(make("2020it89-w", Date{2020, 2, 19}, 2, "w", true));
    return v;
  }();
  return all;
}

DatasetSpec dataset(const std::string& abbr) {
  const auto dash = abbr.rfind('-');
  if (dash == std::string::npos || dash + 1 >= abbr.size()) {
    throw std::invalid_argument("dataset: malformed abbreviation '" + abbr + "'");
  }
  const std::string period = abbr.substr(0, dash);
  const std::string sites = abbr.substr(dash + 1);

  if (period == "2020it89") {
    return make(abbr, Date{2020, 2, 19}, 2, sites, true);
  }
  int year = 0;
  char kind = 0;
  int num = 0;
  if (std::sscanf(period.c_str(), "%4d%c%d", &year, &kind, &num) != 3) {
    throw std::invalid_argument("dataset: malformed period '" + period + "'");
  }
  if (kind == 'q' && num >= 1 && num <= 4) {
    return make(abbr, Date{year, (num - 1) * 3 + 1, 1}, 12, sites);
  }
  if (kind == 'h' && num == 1) {
    return make(abbr, Date{year, 1, 1}, 24, sites);
  }
  if (kind == 'm' && num == 1) {
    return make(abbr, Date{year, 1, 1}, 4, sites);
  }
  if (kind == 'w' && num >= 1 && num <= 52) {
    // Week n of the year (n=1 starts January 1): a short window for
    // smoke tests and fault-scenario sweeps, where a full quarter would
    // dominate the run.  Classification works (the swing test needs one
    // week); change detection needs >= 2 periods, so pair consecutive
    // weeks or disable detection on these.
    const Date start = util::civil_from_days(
        util::days_from_civil(Date{year, 1, 1}) + (num - 1) * 7);
    return make(abbr, start, 1, sites);
  }
  throw std::invalid_argument("dataset: unknown period '" + period + "'");
}

}  // namespace diurnal::core
