// Sharded fleet execution: the paper-scale drive (5.2M /24 blocks)
// with a bounded resident set.
//
// A full run_fleet() materializes the whole world, every block's
// reconstruction series, and all recon state at once — fine at 2k
// blocks, hopeless at paper scale.  The shard scheduler instead
// partitions the block universe into contiguous shards and, per shard:
//
//   materialize (sim::WorldSlice, from the world seed)
//     -> probe -> faults -> repair -> merge -> recon -> analysis
//        (one span-based StreamingFleet over the slice)
//     -> fold outcomes/degradation into the global result,
//        merge the shard's gridcell/continent aggregation,
//        optionally copy series rows (retention is opt-in)
//     -> retire (slice + shard SeriesStore freed)
//
// At most `max_resident` shards are alive at once, so peak memory is
// O(resident shards * shard footprint + per-block verdicts), not
// O(world * series).  Every per-block decision is a pure function of
// the block's salted seed and the fleet config — blocks never interact
// — so the partition is invisible in the output: the merged result is
// bitwise-identical (same fleet digest) to an unsharded run at every
// shard size, thread count, and fault plan.  tests/test_shard.cc and
// bench_shard gate that contract; DESIGN.md section 10 documents it.
#pragma once

#include <cstddef>

#include "core/aggregate.h"
#include "core/pipeline.h"
#include "sim/world_slice.h"

namespace diurnal::core {

struct ShardConfig {
  /// Blocks per shard; 0 = one shard spanning the whole universe.
  std::size_t shard_size = 4096;

  /// Maximum shards resident (materialized but not yet retired) at
  /// once.  Also caps shard-level workers: each worker holds at most
  /// one resident shard.
  std::size_t max_resident = 4;

  /// Keep every block's reconstructed series in the merged result
  /// (FleetResult::series).  Off by default: series are the dominant
  /// per-block cost (stride doubles per block), and the funnel, changes
  /// and aggregation do not need them after a shard retires.
  bool retain_series = false;
};

/// Residency accounting for one sharded run.
struct ShardStats {
  std::size_t shards = 0;
  std::size_t shard_size = 0;
  std::size_t blocks = 0;         ///< universe size
  std::size_t workers = 0;        ///< concurrent shard workers
  std::size_t intra_threads = 0;  ///< threads inside each shard run
  /// Most shards alive at any instant (must stay <= max_resident).
  std::size_t peak_resident = 0;
  /// Peak accounted bytes across resident shards: world slices plus
  /// shard-local series stores (the structures sharding exists to
  /// bound; excludes the global verdict arrays and worker scratch).
  std::size_t peak_resident_bytes = 0;
  /// Global series bytes kept because retain_series was set (0 = all
  /// series memory was reclaimed at shard retirement).
  std::size_t series_bytes_retained = 0;
};

struct ShardedFleetResult {
  FleetResult fleet;          ///< outcomes/degradation over all blocks
  ChangeAggregator aggregate; ///< gridcell/continent series, merged
  ShardStats stats;
};

/// Runs the full pipeline over `world_config`'s universe in shards.
/// The output contract: fleet_digest(result.fleet) equals the digest of
/// run_fleet() over the materialized world with the same FleetConfig,
/// and `aggregate` equals aggregate_changes() on that result.
ShardedFleetResult run_sharded_fleet(const sim::WorldConfig& world_config,
                                     const FleetConfig& config,
                                     const ShardConfig& shards = {});

/// Same, over a pre-built generator (shares special-block setup between
/// phases of a bench).
ShardedFleetResult run_sharded_fleet(const sim::BlockGenerator& generator,
                                     const FleetConfig& config,
                                     const ShardConfig& shards = {});

}  // namespace diurnal::core
