// Sharded fleet execution: the paper-scale drive (5.2M /24 blocks)
// with a bounded resident set.
//
// A full run_fleet() materializes the whole world, every block's
// reconstruction series, and all recon state at once — fine at 2k
// blocks, hopeless at paper scale.  The shard scheduler instead
// partitions the block universe into contiguous shards and, per shard:
//
//   materialize (sim::WorldSlice, from the world seed)
//     -> probe -> faults -> repair -> merge -> recon -> analysis
//        (one span-based StreamingFleet over the slice)
//     -> fold outcomes/degradation into the global result,
//        merge the shard's gridcell/continent aggregation,
//        optionally copy series rows (retention is opt-in)
//     -> retire (slice + shard SeriesStore freed)
//
// At most `max_resident` shards are alive at once, so peak memory is
// O(resident shards * shard footprint + per-block verdicts), not
// O(world * series).  Every per-block decision is a pure function of
// the block's salted seed and the fleet config — blocks never interact
// — so the partition is invisible in the output: the merged result is
// bitwise-identical (same fleet digest) to an unsharded run at every
// shard size, thread count, and fault plan.  tests/test_shard.cc and
// bench_shard gate that contract; DESIGN.md section 10 documents it.
#pragma once

#include <cstddef>
#include <string>

#include "core/aggregate.h"
#include "core/pipeline.h"
#include "sim/world_slice.h"

namespace diurnal::core {

struct ShardConfig {
  /// Blocks per shard; 0 = one shard spanning the whole universe.
  std::size_t shard_size = 4096;

  /// Maximum shards resident (materialized but not yet retired) at
  /// once.  Also caps shard-level workers: each worker holds at most
  /// one resident shard.
  std::size_t max_resident = 4;

  /// Keep every block's reconstructed series in the merged result
  /// (FleetResult::series).  Off by default: series are the dominant
  /// per-block cost (stride doubles per block), and the funnel, changes
  /// and aggregation do not need them after a shard retires.
  bool retain_series = false;

  /// Directory for shard checkpoint files (core/checkpoint.h); empty
  /// disables checkpointing.  Each completed shard's outputs are written
  /// atomically as `shard-<k>.ckpt` plus a `manifest.ckpt` of completed
  /// ids, keyed by a fingerprint of the world/fleet configuration.
  std::string checkpoint_dir;

  /// Resume: before computing anything, load every manifest-listed
  /// shard from checkpoint_dir and fold it into the result; only the
  /// remaining shards run.  A missing/corrupt/mismatched checkpoint is
  /// never fatal — that shard is simply recomputed (and re-recorded).
  bool resume = false;

  /// Rewrite the manifest every N completed shards (1 = after each; the
  /// final manifest always flushes).  Larger values trade crash-resume
  /// granularity for fewer small writes on big worlds.
  std::size_t checkpoint_every = 1;

  /// Stop after computing this many shards this run (0 = no cap).
  /// Already-resumed shards do not count.  This is the deterministic
  /// kill-mid-run harness: run with a cap, then resume without one and
  /// the merged result must be bitwise-identical to an uninterrupted
  /// run (tests/test_checkpoint.cc).
  std::size_t max_shards = 0;
};

/// Residency accounting for one sharded run.
struct ShardStats {
  std::size_t shards = 0;
  std::size_t shard_size = 0;
  std::size_t blocks = 0;         ///< universe size
  std::size_t workers = 0;        ///< concurrent shard workers
  std::size_t intra_threads = 0;  ///< threads inside each shard run
  /// Most shards alive at any instant (must stay <= max_resident).
  std::size_t peak_resident = 0;
  /// Peak accounted bytes across resident shards: world slices plus
  /// shard-local series stores (the structures sharding exists to
  /// bound; excludes the global verdict arrays and worker scratch).
  std::size_t peak_resident_bytes = 0;
  /// Global series bytes kept because retain_series was set (0 = all
  /// series memory was reclaimed at shard retirement).
  std::size_t series_bytes_retained = 0;
  /// Shards folded in from checkpoint files instead of being computed.
  std::size_t resumed_shards = 0;
  /// Shards computed (and, with a checkpoint_dir, recorded) this run.
  std::size_t completed_shards = 0;
};

struct ShardedFleetResult {
  FleetResult fleet;          ///< outcomes/degradation over all blocks
  ChangeAggregator aggregate; ///< gridcell/continent series, merged
  ShardStats stats;
};

/// Runs the full pipeline over `world_config`'s universe in shards.
/// The output contract: fleet_digest(result.fleet) equals the digest of
/// run_fleet() over the materialized world with the same FleetConfig,
/// and `aggregate` equals aggregate_changes() on that result.
ShardedFleetResult run_sharded_fleet(const sim::WorldConfig& world_config,
                                     const FleetConfig& config,
                                     const ShardConfig& shards = {});

/// Same, over a pre-built generator (shares special-block setup between
/// phases of a bench).
ShardedFleetResult run_sharded_fleet(const sim::BlockGenerator& generator,
                                     const FleetConfig& config,
                                     const ShardConfig& shards = {});

}  // namespace diurnal::core
