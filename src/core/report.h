// Result export (paper section 2.9: the authors publish their detection
// data and interactive visualizations).  Writes fleet results as CSV:
// the classification funnel, per-block outcomes with detected changes,
// and per-gridcell daily down/up series, suitable for external plotting
// or diffing between runs.
#pragma once

#include <string>

#include "core/aggregate.h"
#include "core/pipeline.h"

namespace diurnal::core {

/// Writes `<prefix>funnel.csv`: one row per funnel stage.
void write_funnel_csv(const std::string& path, const FunnelCounts& funnel);

/// Writes one row per block: id, responsive/diurnal/wide/change-
/// sensitive flags, and the number of (counted) down/up changes.
void write_blocks_csv(const std::string& path, const sim::World& world,
                      const FleetResult& fleet);

/// Writes one row per detected change of every change-sensitive block:
/// block, direction, start/alarm/end dates, amplitudes, filter flags.
void write_changes_csv(const std::string& path, const FleetResult& fleet);

/// Writes per-gridcell daily series: cell, date, down, up, blocks.
void write_cells_csv(const std::string& path, const ChangeAggregator& agg);

/// Convenience: writes all four files under `prefix` (e.g. "out/run1-").
struct ReportPaths {
  std::string funnel;
  std::string blocks;
  std::string changes;
  std::string cells;
};
ReportPaths write_report(const std::string& prefix, const sim::World& world,
                         const FleetResult& fleet, const ChangeAggregator& agg);

}  // namespace diurnal::core
