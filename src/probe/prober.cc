#include "probe/prober.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/rng.h"

namespace diurnal::probe {

using util::SimTime;

int quarter_index(SimTime t) noexcept {
  const util::Date d = util::date_of(t);
  return (d.year - 2019) * 4 + (d.month - 1) / 3;
}

SimTime next_quarter_start(SimTime t) noexcept {
  const util::Date d = util::date_of(t);
  int qmonth = ((d.month - 1) / 3) * 3 + 1 + 3;
  int year = d.year;
  if (qmonth > 12) {
    qmonth -= 12;
    ++year;
  }
  return util::time_of(year, qmonth, 1);
}

int additional_probes_per_round(int eb_count) noexcept {
  // |E(b)| addresses in 6 hours of 11-minute rounds; at most one probe
  // per 88 seconds (8 per round).
  const double per_round = static_cast<double>(eb_count) /
                           (6.0 * 60.0 / 11.0);
  return std::clamp(static_cast<int>(std::ceil(per_round)), 1, 8);
}

namespace {

// Per-quarter pseudorandom target permutation, shared by all observers.
// The shuffle seed doubles as the scratch cache key: every observer of a
// fleet asks for the same (block, quarter) permutation back-to-back, so
// all but the first request skip the Fisher-Yates pass.
void build_order(const sim::BlockProfile& block, std::uint64_t order_seed,
                 int quarter, ProbeScratch& scratch) {
  const std::uint64_t key = util::derive_seed(
      order_seed, block.id.id(), static_cast<std::uint64_t>(quarter));
  std::vector<std::uint8_t>& order = scratch.order;
  const int n = block.eb_count;
  // The size check guards against two blocks sharing an id (and hence a
  // key) with different target counts — scratch outlives any one block.
  if (scratch.order_key == key &&
      order.size() == 2 * static_cast<std::size_t>(n)) {
    return;
  }
  scratch.order_key = key;
  // The permutation is stored twice back to back so round loops can read
  // ord[cursor + j] for any cursor < n and j < n without a per-probe
  // wrap test; the cursor wraps once per round instead.
  order.resize(2 * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  util::Xoshiro256 rng(key);
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
  std::copy_n(order.begin(), n, order.begin() + n);
}

// Deterministic per-probe uniform in [0,1).
inline double probe_uniform(std::uint64_t seed, std::uint32_t block,
                            std::uint64_t t, std::uint32_t addr,
                            std::uint32_t salt) noexcept {
  const std::uint64_t h = util::derive_seed(
      seed, (static_cast<std::uint64_t>(block) << 9) | addr, t, salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// One 8-byte store per observation instead of three field stores.  The
// layout assumptions are asserted; on a big-endian target this would
// need the fallback aggregate store, but the repo only targets
// little-endian platforms.
inline void store_observation(Observation* p, std::uint32_t rel_time,
                              std::uint8_t addr, bool up) noexcept {
  static_assert(sizeof(Observation) == 8);
  static_assert(offsetof(Observation, rel_time) == 0);
  static_assert(offsetof(Observation, addr) == 4);
  static_assert(offsetof(Observation, up) == 5);
  static_assert(std::endian::native == std::endian::little);
  const std::uint64_t bits = static_cast<std::uint64_t>(rel_time) |
                             (static_cast<std::uint64_t>(addr) << 32) |
                             (static_cast<std::uint64_t>(up) << 40);
  __builtin_memcpy(p, &bits, sizeof(bits));
}

}  // namespace

ProbeScratch& ProbeScratch::local() {
  thread_local ProbeScratch scratch;
  return scratch;
}

void round_prober_begin(const sim::BlockProfile& block,
                        const ObserverSpec& observer, ProbeWindow window,
                        const ProberConfig& config, RoundProberState& state) {
  state = RoundProberState{};
  const int eb = block.eb_count;
  if (eb <= 0 || window.end <= window.start) {
    state.done = true;
    return;
  }
  state.next_round = window.start + observer.phase;
  if (state.next_round >= window.end) {
    state.done = true;
    return;
  }
  // Each observer starts independently: its cursor begins at a
  // deterministic offset in the shared order.
  state.cursor =
      util::derive_seed(config.order_seed, block.id.id(),
                        static_cast<std::uint64_t>(observer.code)) %
      static_cast<std::size_t>(eb);
}

void round_prober_resume(const sim::BlockProfile& block,
                         const ObserverSpec& observer, const LossModel& loss,
                         ProbeWindow window, const ProberConfig& config,
                         ProbeScratch& scratch, RoundProberState& state,
                         util::SimTime until, ObservationVec& out) {
  if (state.done) return;
  const int eb = block.eb_count;
  const SimTime limit = std::min(until, window.end);
  if (state.next_round >= limit) {
    if (until >= window.end) state.done = true;
    return;
  }

  std::vector<std::uint8_t>& order = scratch.order;
  int quarter = quarter_index(state.next_round);
  build_order(block, config.order_seed, quarter, scratch);
  SimTime quarter_end = next_quarter_start(state.next_round);

  std::size_t cursor = state.cursor;

  // Everything that is constant over the window is hoisted out of the
  // round loop: the observer salt and fault stream, whether this path is
  // congested (so un-congested paths pay a flat loss rate with no
  // per-probe lookup), and the activity cursor bound to this block.
  const std::uint32_t block_id = block.id.id();
  const std::uint32_t obs_salt = static_cast<std::uint32_t>(observer.code);
  const std::uint64_t fault_seed = config.loss_seed ^ 0xFA17ULL;
  // Fault-window bounds as locals (healthy observers collapse to an
  // always-false first compare): the observation stores below are
  // may-alias writes, so reading them through `observer` would reload
  // both members on every probe.
  const bool can_fault = observer.fault_end > observer.fault_start;
  const SimTime fault_lo =
      can_fault ? observer.fault_start : std::numeric_limits<SimTime>::max();
  const SimTime fault_hi = can_fault ? observer.fault_end : 0;
  const bool congested = loss.path_congested(observer, block);
  const double flat_loss = loss.config().base_loss;
  sim::ActivityCursor& activity = scratch.cursor;
  activity.bind(block);

  // The per-probe loss draw is derive_seed(seed, (block<<9)|addr, t, salt)
  // = mix64(mix64(mix64(seed ^ a) ^ t) ^ salt); stage one depends only on
  // the address, so it runs once per address instead of once per probe.
  std::vector<std::uint64_t>& loss_h1 = scratch.loss_h1;
  loss_h1.resize(static_cast<std::size_t>(eb));
  const std::uint64_t a_base = static_cast<std::uint64_t>(block_id) << 9;
  for (int a = 0; a < eb; ++a) {
    loss_h1[static_cast<std::size_t>(a)] = util::mix64(
        config.loss_seed ^ (a_base | static_cast<std::uint64_t>(a)));
  }
  // On an un-congested path the loss rate is the flat base rate, so the
  // acceptance test reduces to one integer compare:
  //   (double)(h>>11) * 2^-53 < p  <=>  (h>>11) < ceil(p * 2^53)
  // (both scalings by 2^53 are exact, so the boundary is preserved).
  const std::uint64_t flat_thr =
      flat_loss > 0.0
          ? static_cast<std::uint64_t>(std::ceil(flat_loss * 0x1.0p53))
          : 0;
  // Congested paths vary only with the destination-local hour, so the 24
  // acceptance thresholds are tabulated per pass (indexed by UTC hour,
  // with the timezone folded in) and the probe loop never calls back
  // into the loss model.
  std::array<std::uint64_t, 24> cong_thr{};
  if (congested) {
    for (int hour_utc = 0; hour_utc < 24; ++hour_utc) {
      const int local =
          ((hour_utc + block.tz_offset_hours) % 24 + 24) % 24;
      cong_thr[static_cast<std::size_t>(hour_utc)] =
          static_cast<std::uint64_t>(
              std::ceil(loss.congested_loss_at_hour(local) * 0x1.0p53));
    }
  }

  // One probe: activity, loss draw, fault flip.  Shared by the
  // kind-specialized round loops below so each loop body stays small;
  // recording is left to the caller so the fixed-budget loop can write
  // through a bare pointer (a push_back in the loop is a
  // potentially-allocating call, which forces the cursor's cached state
  // back to memory on every probe).  Quarter re-shuffles rewrite `order`
  // in place (its size is eb for the whole pass), so the raw pointer
  // stays valid.
  const std::uint8_t* const ord = order.data();
  const std::uint64_t* const lh1 = loss_h1.data();
  const auto n_targets = static_cast<std::size_t>(eb);
  const SimTime rel_base = window.start;
  // Register-resident activity snapshot: for the dominant block states
  // the per-probe activity lookup is a load and a shift off `fv.row`,
  // with no cursor-member reloads (the observation stores below are
  // may-alias writes, so the compiler cannot keep those members in
  // registers on its own).  Re-snapshots at window boundaries only.
  sim::ActivityCursor::FastView fv{nullptr, 0,
                                   std::numeric_limits<SimTime>::min(),
                                   std::numeric_limits<SimTime>::min()};
  auto probe_up = [&](SimTime probe_time,
                      std::uint8_t addr) __attribute__((always_inline)) -> bool {
    if (probe_time >= fv.until) [[unlikely]] {
      fv = activity.fast_view(probe_time);
    }
    bool up = fv.row != nullptr
                  ? ((fv.row[addr] >> fv.hour) & 1u) != 0
                  : activity.active(addr, probe_time);
    if (up) {
      const std::uint64_t h = util::mix64(
          util::mix64(lh1[addr] ^ static_cast<std::uint64_t>(probe_time)) ^
          obs_salt);
      if (!congested) {
        if ((h >> 11) < flat_thr) up = false;  // probe or reply lost
      } else {
        std::int64_t sec = probe_time % util::kSecondsPerDay;
        if (sec < 0) sec += util::kSecondsPerDay;
        if ((h >> 11) < cong_thr[static_cast<std::size_t>(sec / 3600)]) {
          up = false;
        }
      }
    }
    if (probe_time >= fault_lo && probe_time < fault_hi &&
        probe_uniform(fault_seed, block_id,
                      static_cast<std::uint64_t>(probe_time), addr,
                      obs_salt) < config.fault_flip_prob) [[unlikely]] {
      up = !up;  // hardware fault corrupts the result
    }
    return up;
  };
  auto quarter_tick = [&](SimTime t) {
    if (t >= quarter_end) {
      quarter = quarter_index(t);
      build_order(block, config.order_seed, quarter, scratch);
      quarter_end = next_quarter_start(t);
    }
  };

  if (config.kind == ProberKind::kTrinocular) {
    // Trinocular's adaptive rate (sections 2.2/3.1): while the block is
    // believed up, a round sends only a couple of probes (a non-reply
    // from one address of a partly-used block is weak evidence, so
    // probing stops at the first positive); only when positives stop
    // arriving for several rounds does the prober escalate toward its
    // 16-probe budget to decide whether the block went down.  This is
    // what makes full scans of large blocks take hours (the 256-round
    // worst case of section 3.1).
    const int confirm_budget = std::min(eb, config.max_probes_per_round);
    int rounds_since_positive = state.rounds_since_positive;
    // The output size is adaptive, but bounded by confirm_budget probes
    // per round, so sizing the buffer to the exact worst case up front
    // removes every capacity check from the round loop (a push_back per
    // probe is a potentially-allocating call, which spills the cursor's
    // cached state on every probe).  The worst case is modest — at most
    // 16 observations of 8 bytes per 11-minute round — and the storage
    // is scratch reused across the fleet.  The true size is set once at
    // the end.
    const std::size_t old_size = out.size();
    const auto n_rounds = static_cast<std::size_t>(
        (limit - 1 - state.next_round) / util::kRoundSeconds + 1);
    out.resize(old_size + n_rounds * static_cast<std::size_t>(confirm_budget));
    Observation* const base = out.data() + old_size;
    Observation* w = base;
    // The probe order is fixed within a calendar quarter, so the round
    // loop runs in per-quarter chunks with the re-shuffle check hoisted
    // to the chunk boundary instead of tested every round.
    SimTime t = state.next_round;
    while (t < limit) {
      quarter_tick(t);
      const SimTime chunk_end = std::min(limit, quarter_end);
      while (t < chunk_end) {
        if (rounds_since_positive == 0 && eb >= 2) [[likely]] {
          // Confidently-up rounds (budget 2), the steady state for most
          // responsive blocks.  When the cursor exposes a whole-block
          // mask row, everything loop-invariant over the row's validity
          // window is hoisted once — row pointer, hour shift, the loss
          // threshold (the UTC hour is constant inside a local-hour
          // window, so flat and congested paths collapse to one integer
          // compare), and whether the observer's fault window overlaps —
          // and the rounds run with no per-probe cursor or window
          // checks.  The round itself stays branchy: the second probe
          // only goes out after a first non-reply, because replies are
          // regime-correlated (day vs night) and predict well, so
          // speculating the second probe costs more than the occasional
          // mispredict it would hide.
          if (t >= fv.until) [[unlikely]] fv = activity.fast_view(t);
          if (fv.row != nullptr && t + 2 < fv.until) [[likely]] {
            // The row and the block state it encodes hold until
            // fv.stable_until (at most the next local midnight), so the
            // fast loop spans the whole stable window and advances the
            // hour shift privately at hour boundaries; the cursor
            // re-syncs itself from scratch at the next fast_view call.
            const SimTime day_end = std::min(chunk_end, fv.stable_until - 2);
            // Order-permuted row for this (day row, probe order): one
            // sequential u32 per probe replaces the dependent
            // order[cursor] -> row[addr] load chain, and the address
            // rides along in the top byte.  Built once per block-day and
            // reused across the fleet's observer passes (they share both
            // the row and the order).
            constexpr std::size_t kProwSlots = 256;
            const std::size_t stride = 2 * n_targets;
            if (scratch.prow_stride != stride) {
              scratch.prow_stride = stride;
              scratch.prow.resize(kProwSlots * stride);
              scratch.prow_rkey.assign(kProwSlots, ~std::uint64_t{0});
              scratch.prow_okey.assign(kProwSlots, ~std::uint64_t{0});
            }
            const std::size_t slot = (fv.row_key >> 32) & (kProwSlots - 1);
            std::uint32_t* const prow = scratch.prow.data() + slot * stride;
            if (scratch.prow_rkey[slot] != fv.row_key ||
                scratch.prow_okey[slot] != scratch.order_key) {
              scratch.prow_rkey[slot] = fv.row_key;
              scratch.prow_okey[slot] = scratch.order_key;
              for (std::size_t i = 0; i < stride; ++i) {
                const std::uint32_t a = ord[i];
                prow[i] = fv.row[a] | (a << 24);
              }
            }
            int hour = fv.hour;
            SimTime hour_end = fv.until;
            std::int64_t sec0 = t % util::kSecondsPerDay;
            if (sec0 < 0) sec0 += util::kSecondsPerDay;
            std::size_t uhour = static_cast<std::size_t>(sec0 / 3600);
            std::uint64_t thr = congested ? cong_thr[uhour] : flat_thr;
            const bool chunk_faulty = fault_lo < day_end + 2 && fault_hi > t;
            auto fast_probe = [&](SimTime probe_time, std::uint32_t entry,
                                  int h, std::uint64_t th) __attribute__((
                always_inline)) -> bool {
              const std::uint32_t addr = entry >> 24;
              bool up = ((entry >> h) & 1u) != 0;
              if (up) {
                const std::uint64_t hash = util::mix64(
                    util::mix64(lh1[addr] ^
                                static_cast<std::uint64_t>(probe_time)) ^
                    obs_salt);
                if ((hash >> 11) < th) up = false;  // probe or reply lost
              }
              if (chunk_faulty) [[unlikely]] {
                if (probe_time >= fault_lo && probe_time < fault_hi &&
                    probe_uniform(fault_seed, block_id,
                                  static_cast<std::uint64_t>(probe_time), addr,
                                  obs_salt) < config.fault_flip_prob) {
                  up = !up;  // hardware fault corrupts the result
                }
              }
              return up;
            };
            bool went_negative = false;
            while (true) {
              // Rounds whose probes stay inside the current hour.
              const SimTime hend = std::min(day_end, hour_end - 2);
              while (t < hend) {
                const std::uint32_t e0 = prow[cursor];
                const bool up0 = fast_probe(t, e0, hour, thr);
                store_observation(w++, static_cast<std::uint32_t>(t - rel_base),
                                  static_cast<std::uint8_t>(e0 >> 24), up0);
                if (up0) [[likely]] {
                  if (++cursor == n_targets) cursor = 0;
                  t += util::kRoundSeconds;
                  continue;
                }
                const std::uint32_t e1 = prow[cursor + 1];
                const bool up1 = fast_probe(t + 2, e1, hour, thr);
                store_observation(w++,
                                  static_cast<std::uint32_t>(t + 2 - rel_base),
                                  static_cast<std::uint8_t>(e1 >> 24), up1);
                cursor += 2;
                if (cursor >= n_targets) cursor -= n_targets;
                t += util::kRoundSeconds;
                if (!up1) {
                  went_negative = true;
                  break;
                }
              }
              if (went_negative || t >= day_end) break;
              if (t >= hour_end) {
                // Hour tick: only the shift and the congestion threshold
                // move (hour_end stays absolute-hour aligned — it is only
                // stable-clamped when day_end already cut the loop short).
                ++hour;
                hour_end += 3600;
                if (congested) {
                  uhour = uhour + 1 == 24 ? 0 : uhour + 1;
                  thr = cong_thr[uhour];
                }
                continue;
              }
              // Straddling round: the first probe is in this hour but a
              // second would cross the boundary (t in [hour_end-2,
              // hour_end), at most one round per hour).
              const std::uint32_t e0 = prow[cursor];
              const bool up0 = fast_probe(t, e0, hour, thr);
              store_observation(w++, static_cast<std::uint32_t>(t - rel_base),
                                static_cast<std::uint8_t>(e0 >> 24), up0);
              if (up0) {
                if (++cursor == n_targets) cursor = 0;
              } else {
                const std::size_t uh1 = uhour + 1 == 24 ? 0 : uhour + 1;
                const std::uint64_t th1 = congested ? cong_thr[uh1] : flat_thr;
                const std::uint32_t e1 = prow[cursor + 1];
                const bool up1 = fast_probe(t + 2, e1, hour + 1, th1);
                store_observation(w++,
                                  static_cast<std::uint32_t>(t + 2 - rel_base),
                                  static_cast<std::uint8_t>(e1 >> 24), up1);
                cursor += 2;
                if (cursor >= n_targets) cursor -= n_targets;
                if (!up1) went_negative = true;
              }
              t += util::kRoundSeconds;
              if (went_negative) break;
            }
            if (went_negative) rounds_since_positive = 1;
            continue;
          }
          // Window tail (a probe would cross the row's validity edge) or
          // a block state with no whole-block mask row: one steady round
          // through the general probe path.
          const std::uint8_t addr0 = ord[cursor];
          const bool up0 = probe_up(t, addr0);
          store_observation(w++, static_cast<std::uint32_t>(t - rel_base),
                            addr0, up0);
          if (up0) [[likely]] {
            if (++cursor == n_targets) cursor = 0;
            t += util::kRoundSeconds;
            continue;
          }
          const std::uint8_t addr1 = ord[cursor + 1];
          const bool up1 = probe_up(t + 2, addr1);
          store_observation(w++, static_cast<std::uint32_t>(t + 2 - rel_base),
                            addr1, up1);
          rounds_since_positive = up1 ? 0 : 1;
          cursor += 2;
          if (cursor >= n_targets) cursor -= n_targets;
          t += util::kRoundSeconds;
          continue;
        }
        const int belief_budget = rounds_since_positive == 0
                                      ? 2  // block confidently up (eb == 1)
                                      : rounds_since_positive <= 3
                                            ? 4  // getting suspicious
                                            : confirm_budget;  // confirm outage
        const int budget = belief_budget < eb ? belief_budget : eb;
        bool round_positive = false;
        int j = 0;
        for (; j < budget; ++j) {
          const std::uint8_t addr = ord[cursor + static_cast<std::size_t>(j)];
          const SimTime probe_time = t + 2 * j;  // probes pace through the round
          const bool up = probe_up(probe_time, addr);
          store_observation(w++,
                            static_cast<std::uint32_t>(probe_time - rel_base),
                            addr, up);
          if (up) {
            round_positive = true;
            ++j;
            break;
          }
        }
        cursor += static_cast<std::size_t>(j);
        if (cursor >= n_targets) cursor -= n_targets;
        rounds_since_positive = round_positive ? 0 : rounds_since_positive + 1;
        t += util::kRoundSeconds;
      }
    }
    out.resize(old_size + static_cast<std::size_t>(w - base));
    state.rounds_since_positive = rounds_since_positive;
    state.next_round = t;
  } else {
    // Survey and additional-observations probers: fixed budget, never
    // stopping on a positive reply.  Every round fires exactly
    // fixed_budget probes, so the output size is known up front; the
    // pre-sized buffer is filled through a bare pointer, keeping the
    // inner loop free of any out-of-line call.
    int fixed_budget = eb;
    if (config.kind == ProberKind::kAdditional) {
      fixed_budget = std::min(eb, additional_probes_per_round(eb));
    }
    const std::size_t old_size = out.size();
    const auto n_rounds = static_cast<std::size_t>(
        (limit - 1 - state.next_round) / util::kRoundSeconds + 1);
    out.resize(old_size + n_rounds * static_cast<std::size_t>(fixed_budget));
    Observation* w = out.data() + old_size;
    SimTime t = state.next_round;
    for (; t < limit; t += util::kRoundSeconds) {
      quarter_tick(t);
      for (int j = 0; j < fixed_budget; ++j) {
        const std::uint8_t addr = ord[cursor + static_cast<std::size_t>(j)];
        const SimTime probe_time = t + 2 * j;
        store_observation(w++, static_cast<std::uint32_t>(probe_time - rel_base),
                          addr, probe_up(probe_time, addr));
      }
      cursor += static_cast<std::size_t>(fixed_budget);
      if (cursor >= n_targets) cursor -= n_targets;
    }
    state.next_round = t;
  }
  state.cursor = cursor;
  if (until >= window.end) state.done = true;
}

void probe_block_into(const sim::BlockProfile& block,
                      const ObserverSpec& observer, const LossModel& loss,
                      ProbeWindow window, const ProberConfig& config,
                      ProbeScratch& scratch, ObservationVec& out) {
  out.clear();
  RoundProberState state;
  round_prober_begin(block, observer, window, config, state);
  round_prober_resume(block, observer, loss, window, config, scratch, state,
                      window.end, out);
}

ObservationVec probe_block(const sim::BlockProfile& block,
                           const ObserverSpec& observer, const LossModel& loss,
                           ProbeWindow window, const ProberConfig& config) {
  ObservationVec out;
  probe_block_into(block, observer, loss, window, config,
                   ProbeScratch::local(), out);
  return out;
}

void merge_observations_into(const std::vector<ObservationVec>& streams,
                             ObservationVec& out) {
  out.clear();
  // K-way merge with a linear min-scan: stream counts are tiny (one per
  // observer), so scanning the heads beats both a heap and the previous
  // pairwise-merge reduction, and it needs no intermediate vectors.
  struct Head {
    const Observation* it;
    const Observation* end;
  };
  Head stack_heads[16];
  std::vector<Head> heap_heads;
  Head* heads = stack_heads;
  if (streams.size() > std::size(stack_heads)) {
    heap_heads.resize(streams.size());
    heads = heap_heads.data();
  }

  std::size_t k = 0;
  std::size_t total = 0;
  for (const auto& s : streams) {
    if (s.empty()) continue;
    // Heads stay in stream order so a tie picks the lowest stream index.
    heads[k++] = Head{s.data(), s.data() + s.size()};
    total += s.size();
  }
  out.reserve(total);

  while (k > 1) {
    std::size_t best = 0;
    std::uint32_t best_time = heads[0].it->rel_time;
    for (std::size_t i = 1; i < k; ++i) {
      if (heads[i].it->rel_time < best_time) {
        best = i;
        best_time = heads[i].it->rel_time;
      }
    }
    out.push_back(*heads[best].it);
    if (++heads[best].it == heads[best].end) {
      for (std::size_t i = best; i + 1 < k; ++i) heads[i] = heads[i + 1];
      --k;
    }
  }
  if (k == 1) out.insert(out.end(), heads[0].it, heads[0].end);
}

ObservationVec merge_observations(std::vector<ObservationVec> streams) {
  ObservationVec out;
  merge_observations_into(streams, out);
  return out;
}

}  // namespace diurnal::probe
