#include "probe/prober.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/rng.h"

namespace diurnal::probe {

using util::SimTime;

int quarter_index(SimTime t) noexcept {
  const util::Date d = util::date_of(t);
  return (d.year - 2019) * 4 + (d.month - 1) / 3;
}

SimTime next_quarter_start(SimTime t) noexcept {
  const util::Date d = util::date_of(t);
  int qmonth = ((d.month - 1) / 3) * 3 + 1 + 3;
  int year = d.year;
  if (qmonth > 12) {
    qmonth -= 12;
    ++year;
  }
  return util::time_of(year, qmonth, 1);
}

int additional_probes_per_round(int eb_count) noexcept {
  // |E(b)| addresses in 6 hours of 11-minute rounds; at most one probe
  // per 88 seconds (8 per round).
  const double per_round = static_cast<double>(eb_count) /
                           (6.0 * 60.0 / 11.0);
  return std::clamp(static_cast<int>(std::ceil(per_round)), 1, 8);
}

namespace {

// Per-quarter pseudorandom target permutation, shared by all observers.
void build_order(const sim::BlockProfile& block, std::uint64_t order_seed,
                 int quarter, std::vector<std::uint8_t>& order) {
  const int n = block.eb_count;
  order.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  util::Xoshiro256 rng(util::derive_seed(order_seed, block.id.id(),
                                         static_cast<std::uint64_t>(quarter)));
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<int>(rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
  }
}

// Deterministic per-probe uniform in [0,1).
inline double probe_uniform(std::uint64_t seed, std::uint32_t block,
                            std::uint64_t t, std::uint32_t addr,
                            std::uint32_t salt) noexcept {
  const std::uint64_t h = util::derive_seed(
      seed, (static_cast<std::uint64_t>(block) << 9) | addr, t, salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

ObservationVec probe_block(const sim::BlockProfile& block,
                           const ObserverSpec& observer, const LossModel& loss,
                           ProbeWindow window, const ProberConfig& config) {
  ObservationVec out;
  const int eb = block.eb_count;
  if (eb <= 0 || window.end <= window.start) return out;

  // Pre-size: survey probes all addresses every round; trinocular
  // averages a handful.
  const auto rounds = static_cast<std::size_t>(
      (window.end - window.start) / util::kRoundSeconds + 1);
  switch (config.kind) {
    case ProberKind::kSurvey:
      out.reserve(rounds * static_cast<std::size_t>(eb));
      break;
    case ProberKind::kAdditional:
      out.reserve(rounds * static_cast<std::size_t>(
                               additional_probes_per_round(eb)));
      break;
    case ProberKind::kTrinocular:
      out.reserve(rounds * 3);
      break;
  }

  std::vector<std::uint8_t> order;
  int quarter = quarter_index(window.start);
  build_order(block, config.order_seed, quarter, order);
  SimTime quarter_end = next_quarter_start(window.start);

  // Each observer starts independently: its cursor begins at a
  // deterministic offset in the shared order.
  std::size_t cursor =
      util::derive_seed(config.order_seed, block.id.id(),
                        static_cast<std::uint64_t>(observer.code)) %
      static_cast<std::size_t>(eb);

  const std::uint32_t obs_salt = static_cast<std::uint32_t>(observer.code);

  // Trinocular's adaptive rate (sections 2.2/3.1): while the block is
  // believed up, a round sends only a couple of probes (a non-reply from
  // one address of a partly-used block is weak evidence, so probing
  // stops); only when positives stop arriving for several rounds does
  // the prober escalate toward its 16-probe budget to decide whether the
  // block went down.  This is what makes full scans of large blocks take
  // hours (the 256-round worst case of section 3.1).
  int rounds_since_positive = 0;

  for (SimTime t = window.start + observer.phase; t < window.end;
       t += util::kRoundSeconds) {
    if (t >= quarter_end) {
      quarter = quarter_index(t);
      build_order(block, config.order_seed, quarter, order);
      quarter_end = next_quarter_start(t);
    }
    int budget = 0;
    switch (config.kind) {
      case ProberKind::kSurvey:
        budget = eb;
        break;
      case ProberKind::kAdditional:
        budget = std::min(eb, additional_probes_per_round(eb));
        break;
      case ProberKind::kTrinocular: {
        int belief_budget;
        if (rounds_since_positive == 0) {
          belief_budget = 2;  // block confidently up
        } else if (rounds_since_positive <= 3) {
          belief_budget = 4;  // getting suspicious
        } else {
          belief_budget = config.max_probes_per_round;  // confirm outage
        }
        budget = std::min(eb, belief_budget);
        break;
      }
    }
    bool round_positive = false;
    for (int j = 0; j < budget; ++j) {
      const std::uint8_t addr = order[cursor];
      cursor = (cursor + 1) % static_cast<std::size_t>(eb);
      const SimTime probe_time = t + 2 * j;  // probes pace through the round

      bool up = sim::address_active(block, addr, probe_time);
      if (up) {
        const double p = loss.loss_rate(observer, block, probe_time);
        if (p > 0.0 &&
            probe_uniform(config.loss_seed, block.id.id(),
                          static_cast<std::uint64_t>(probe_time), addr,
                          obs_salt) < p) {
          up = false;  // probe or reply lost
        }
      }
      if (observer.faulty_at(probe_time) &&
          probe_uniform(config.loss_seed ^ 0xFA17ULL, block.id.id(),
                        static_cast<std::uint64_t>(probe_time), addr,
                        obs_salt) < config.fault_flip_prob) {
        up = !up;  // hardware fault corrupts the result
      }

      out.push_back(Observation{
          static_cast<std::uint32_t>(probe_time - window.start), addr, up});
      round_positive |= up;
      if (config.kind == ProberKind::kTrinocular && up) break;
    }
    if (config.kind == ProberKind::kTrinocular) {
      rounds_since_positive = round_positive ? 0 : rounds_since_positive + 1;
    }
  }
  return out;
}

ObservationVec merge_observations(std::vector<ObservationVec> streams) {
  // Drop empties, then pairwise-merge (few streams, large vectors).
  std::erase_if(streams, [](const ObservationVec& v) { return v.empty(); });
  if (streams.empty()) return {};
  while (streams.size() > 1) {
    std::vector<ObservationVec> next;
    next.reserve((streams.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < streams.size(); i += 2) {
      ObservationVec merged;
      merged.resize(streams[i].size() + streams[i + 1].size());
      std::merge(streams[i].begin(), streams[i].end(), streams[i + 1].begin(),
                 streams[i + 1].end(), merged.begin(),
                 [](const Observation& a, const Observation& b) {
                   return a.rel_time < b.rel_time;
                 });
      next.push_back(std::move(merged));
    }
    if (streams.size() % 2 == 1) next.push_back(std::move(streams.back()));
    streams = std::move(next);
  }
  return std::move(streams.front());
}

}  // namespace diurnal::probe
