#include "probe/additional_selection.h"

#include <array>
#include <stdexcept>

namespace diurnal::probe {

namespace {

constexpr std::size_t kFeatureDim = 2;  ///< |E(b)| and availability

std::array<double, kFeatureDim> features_of(int eb_count, double availability) {
  return {static_cast<double>(eb_count), availability};
}

}  // namespace

void AdditionalProbingSelector::fit(
    const std::vector<BlockScanSample>& samples,
    const AdditionalSelectionOptions& opt) {
  if (samples.empty()) {
    throw std::invalid_argument("AdditionalProbingSelector::fit: no samples");
  }
  opt_ = opt;
  std::vector<double> x;  // flat row-major, kFeatureDim per sample
  std::vector<int> y;
  x.reserve(samples.size() * kFeatureDim);
  y.reserve(samples.size());
  for (const auto& s : samples) {
    const auto f = features_of(s.eb_count, s.availability);
    x.insert(x.end(), f.begin(), f.end());
    y.push_back(s.observed_fbs_hours > opt.fbs_goal_hours ? 1 : 0);
  }
  model_.fit(analysis::FeatureMatrix{x, kFeatureDim}, y, opt.fit);
}

bool AdditionalProbingSelector::should_probe(int eb_count,
                                             double availability) const {
  if (!fitted()) {
    throw std::logic_error("AdditionalProbingSelector: not fitted");
  }
  if (eb_count < opt_.min_eb || availability < opt_.min_availability) {
    return false;  // always near the origin of Figure 5
  }
  return model_.predict(features_of(eb_count, availability));
}

analysis::BinaryMetrics AdditionalProbingSelector::evaluate(
    const std::vector<BlockScanSample>& samples) const {
  analysis::BinaryMetrics m;
  for (const auto& s : samples) {
    const bool pred = should_probe(s.eb_count, s.availability);
    const bool truth = s.observed_fbs_hours > opt_.fbs_goal_hours;
    if (pred && truth) ++m.tp;
    else if (pred && !truth) ++m.fp;
    else if (!pred && truth) ++m.fn;
    else ++m.tn;
  }
  return m;
}

}  // namespace diurnal::probe
