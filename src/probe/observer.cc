#include "probe/observer.h"

#include <stdexcept>

namespace diurnal::probe {

const std::vector<ObserverSpec>& trinocular_sites() {
  static const std::vector<ObserverSpec> sites = [] {
    std::vector<ObserverSpec> v;
    const util::SimTime fault_start = util::time_of(2020, 1, 1);
    const util::SimTime fault_end = util::time_of(2020, 7, 1);
    v.push_back({'c', "Fort Collins, Colorado", 95, fault_start, fault_end});
    v.push_back({'e', "ISI East, Washington DC", 213, 0, 0});
    v.push_back({'g', "Athens, Greece", 331, fault_start, fault_end});
    v.push_back({'j', "Keio University, Tokyo", 449, 0, 0});
    v.push_back({'n', "Utrecht, Netherlands", 41, 0, 0});
    v.push_back({'w', "ISI West, Los Angeles", 562, 0, 0});
    return v;
  }();
  return sites;
}

const ObserverSpec& site(char code) {
  for (const auto& s : trinocular_sites()) {
    if (s.code == code) return s;
  }
  if (code == 'x') {
    static const ObserverSpec extra = additional_observer();
    return extra;
  }
  throw std::out_of_range(std::string("unknown observer site: ") + code);
}

std::vector<ObserverSpec> sites_from_string(const std::string& codes) {
  std::vector<ObserverSpec> out;
  out.reserve(codes.size());
  for (const char c : codes) out.push_back(site(c));
  return out;
}

ObserverSpec additional_observer() {
  return ObserverSpec{'x', "additional observations (section 2.8)", 137, 0, 0};
}

}  // namespace diurnal::probe
