// Probing engines (paper sections 2.2, 2.8).
//
//  * TrinocularProber: 11-minute rounds, targets in a pseudorandom order
//    fixed per quarter, 1..16 probes per round stopping at the first
//    positive reply (this adaptive stop is why full, always-responsive
//    blocks refresh slowly — section 3.1's 256-round worst case).
//  * Survey prober: every target every round (the it89w-style ground
//    truth of section 3.2).
//  * Additional-observations prober: |E(b)|/32.7 probes per round, max 8,
//    not stopping on positive replies, guaranteeing a 6-hour full-block
//    scan when combined with the fleet (section 2.8).
#pragma once

#include <cstdint>
#include <vector>

#include "probe/loss_model.h"
#include "probe/observer.h"
#include "sim/activity_cursor.h"
#include "sim/block_profile.h"
#include "util/default_init_allocator.h"

namespace diurnal::probe {

/// One probe result for a single target address.  Deliberately without
/// member initializers: observation buffers are grown to a worst-case
/// size and filled through a bare pointer, so resize must not spend
/// memory bandwidth zero-filling storage that is about to be overwritten
/// (see ObservationVec's allocator).
struct Observation {
  std::uint32_t rel_time;  ///< seconds since the window start
  std::uint8_t addr;       ///< target index within E(b)
  bool up;                 ///< positive reply received
};

/// resize() on this vector default-initializes (leaves elements
/// indeterminate) instead of zero-filling; producers write every element
/// they expose.
using ObservationVec =
    std::vector<Observation, util::DefaultInitAllocator<Observation>>;

enum class ProberKind : std::uint8_t {
  kTrinocular,
  kSurvey,
  kAdditional,
};

/// Probing window [start, end).
struct ProbeWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct ProberConfig {
  ProberKind kind = ProberKind::kTrinocular;
  int max_probes_per_round = 16;
  /// Seed of the per-quarter pseudorandom probe order (shared by all
  /// observers, as in the real system).
  std::uint64_t order_seed = 0x08DE8ULL;
  /// Seed for per-probe loss draws (distinct per observer code).
  std::uint64_t loss_seed = 77;
  /// Probability that a probe result is corrupted inside an observer's
  /// hardware-fault window.
  double fault_flip_prob = 0.35;
};

/// Reusable per-thread buffers for the probe -> merge hot path.  A
/// fleet run probes hundreds of thousands of (block, observer) pairs;
/// reusing one scratch per worker removes every per-pair allocation.
/// Not thread-safe: use one instance per thread.
struct ProbeScratch {
  /// Per-quarter probe-order permutation buffer (probe_block_into).
  /// The permutation is shared by every observer (same seed, as in the
  /// real system), so it is keyed and reused across the fleet's
  /// back-to-back observer passes over one block instead of re-shuffled
  /// per pass.
  std::vector<std::uint8_t> order;
  std::uint64_t order_key = ~std::uint64_t{0};  ///< derive_seed(seed, block, quarter)
  /// Day table of order-permuted activity rows: entry i of a slot's row
  /// is `hour_mask(order[i]) | order[i] << 24`, so the steady-state
  /// probe loop walks one sequential array instead of chasing
  /// order[cursor] into the activity row.  Slots are direct-mapped by
  /// local day and keyed by (activity row key, order key); like the
  /// cursor's own day table, rows survive the fleet's back-to-back
  /// observer passes over one block.
  std::vector<std::uint32_t> prow;
  std::vector<std::uint64_t> prow_rkey;
  std::vector<std::uint64_t> prow_okey;
  std::size_t prow_stride = 0;
  /// Monotone-time activity cache, rebound per (block, window) pass.
  sim::ActivityCursor cursor;
  /// First loss-hash stage per address (depends only on block and addr,
  /// so it is hoisted out of the probe loop).
  std::vector<std::uint64_t> loss_h1;
  /// Per-observer observation streams (callers that collect-then-merge).
  std::vector<ObservationVec> streams;
  /// Merge output buffer (merge_observations_into).
  ObservationVec merged;

  /// Per-thread fallback instance used by the convenience wrappers.
  static ProbeScratch& local();
};

/// Cross-round prober state: everything one observer carries from round
/// to round.  Probing is causal — each round's probes are a pure
/// function of (round time, cursor, belief) — so a window can be probed
/// in arbitrary round-aligned slices and yield the byte-identical
/// observation sequence a single full-window pass produces.  This is the
/// round-iterator API under the streaming fleet engine: batch probing is
/// begin() plus one resume() to the window end.
struct RoundProberState {
  util::SimTime next_round = 0;  ///< start time of the next unprobed round
  std::size_t cursor = 0;        ///< position in the shared probe order
  int rounds_since_positive = 0; ///< trinocular belief state
  bool done = false;             ///< no rounds remain in the window
};

/// Initializes `state` for probing `block` from `observer` over
/// `window` (deterministic initial cursor, first round at the
/// observer's phase offset).  Marks the state done when the block has
/// no targets or no round starts inside the window.
void round_prober_begin(const sim::BlockProfile& block,
                        const ObserverSpec& observer, ProbeWindow window,
                        const ProberConfig& config, RoundProberState& state);

/// Probes every round starting before min(until, window.end), appending
/// the observations to `out` in time order and advancing `state`.  A
/// round started before the bound emits all of its probes, even ones
/// paced past the bound (exactly as a full-window pass would).  Calling
/// with until >= window.end exhausts the window and marks the state
/// done.
void round_prober_resume(const sim::BlockProfile& block,
                         const ObserverSpec& observer, const LossModel& loss,
                         ProbeWindow window, const ProberConfig& config,
                         ProbeScratch& scratch, RoundProberState& state,
                         util::SimTime until, ObservationVec& out);

/// Probes one block from one observer over a window, appending nothing
/// and replacing `out` with the time-ordered observations (empty for
/// blocks with no targets).  `scratch` supplies reused buffers.
/// Implemented as round_prober_begin + one full-window resume.
void probe_block_into(const sim::BlockProfile& block,
                      const ObserverSpec& observer, const LossModel& loss,
                      ProbeWindow window, const ProberConfig& config,
                      ProbeScratch& scratch, ObservationVec& out);

/// Convenience wrapper over probe_block_into using thread-local scratch.
ObservationVec probe_block(const sim::BlockProfile& block,
                           const ObserverSpec& observer, const LossModel& loss,
                           ProbeWindow window, const ProberConfig& config = {});

/// K-way-merges per-observer streams into `out` (replaced, not appended).
/// Total order: (rel_time, source-stream index) — ties keep the probe
/// from the lowest-index stream first, so the merged stream is a stable,
/// reproducible function of its inputs regardless of stream count.
void merge_observations_into(const std::vector<ObservationVec>& streams,
                             ObservationVec& out);

/// Convenience wrapper over merge_observations_into.
ObservationVec merge_observations(std::vector<ObservationVec> streams);

/// Number of probes per round the additional-observations prober sends
/// for a given target-list size (section 3.2.3: |E(b)|/(6*60/11), capped
/// at 8 = one probe per 88 seconds).
int additional_probes_per_round(int eb_count) noexcept;

/// Calendar quarter index of a simulation time (2019q4 = 0, 2020q1 = 1,
/// ...); the probe order reshuffles at each quarter boundary.
int quarter_index(util::SimTime t) noexcept;

/// First instant of the quarter after t.
util::SimTime next_quarter_start(util::SimTime t) noexcept;

}  // namespace diurnal::probe
