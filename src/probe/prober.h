// Probing engines (paper sections 2.2, 2.8).
//
//  * TrinocularProber: 11-minute rounds, targets in a pseudorandom order
//    fixed per quarter, 1..16 probes per round stopping at the first
//    positive reply (this adaptive stop is why full, always-responsive
//    blocks refresh slowly — section 3.1's 256-round worst case).
//  * Survey prober: every target every round (the it89w-style ground
//    truth of section 3.2).
//  * Additional-observations prober: |E(b)|/32.7 probes per round, max 8,
//    not stopping on positive replies, guaranteeing a 6-hour full-block
//    scan when combined with the fleet (section 2.8).
#pragma once

#include <cstdint>
#include <vector>

#include "probe/loss_model.h"
#include "probe/observer.h"
#include "sim/block_profile.h"

namespace diurnal::probe {

/// One probe result for a single target address.
struct Observation {
  std::uint32_t rel_time = 0;  ///< seconds since the window start
  std::uint8_t addr = 0;       ///< target index within E(b)
  bool up = false;             ///< positive reply received
};

using ObservationVec = std::vector<Observation>;

enum class ProberKind : std::uint8_t {
  kTrinocular,
  kSurvey,
  kAdditional,
};

/// Probing window [start, end).
struct ProbeWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct ProberConfig {
  ProberKind kind = ProberKind::kTrinocular;
  int max_probes_per_round = 16;
  /// Seed of the per-quarter pseudorandom probe order (shared by all
  /// observers, as in the real system).
  std::uint64_t order_seed = 0x08DE8ULL;
  /// Seed for per-probe loss draws (distinct per observer code).
  std::uint64_t loss_seed = 77;
  /// Probability that a probe result is corrupted inside an observer's
  /// hardware-fault window.
  double fault_flip_prob = 0.35;
};

/// Probes one block from one observer over a window.  Returns the
/// time-ordered observations (empty for blocks with no targets).
ObservationVec probe_block(const sim::BlockProfile& block,
                           const ObserverSpec& observer, const LossModel& loss,
                           ProbeWindow window, const ProberConfig& config = {});

/// Merges per-observer streams into one stream ordered by time.
ObservationVec merge_observations(std::vector<ObservationVec> streams);

/// Number of probes per round the additional-observations prober sends
/// for a given target-list size (section 3.2.3: |E(b)|/(6*60/11), capped
/// at 8 = one probe per 88 seconds).
int additional_probes_per_round(int eb_count) noexcept;

/// Calendar quarter index of a simulation time (2019q4 = 0, 2020q1 = 1,
/// ...); the probe order reshuffles at each quarter boundary.
int quarter_index(util::SimTime t) noexcept;

/// First instant of the quarter after t.
util::SimTime next_quarter_start(util::SimTime t) noexcept;

}  // namespace diurnal::probe
