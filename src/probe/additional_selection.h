// Selection of under-probed blocks for additional observations (paper
// section 3.2.3): a logistic-regression model over |E(b)| and the
// availability A predicts which blocks cannot be fully scanned within
// six hours by the regular fleet; those blocks get the dedicated
// additional-observations prober (section 2.8).
//
// The paper fits the model on experimentally observed full-block-scan
// times of a 5k random sample, discards blocks with |E(b)| < 32 or
// A < 0.05 (always near the origin), reports a 0.5% false-negative
// rate, and selects 1.8M of 5.2M responsive blocks.
#pragma once

#include <vector>

#include "analysis/logistic.h"
#include "net/ipv4.h"
#include "util/date.h"

namespace diurnal::probe {

struct AdditionalSelectionOptions {
  double fbs_goal_hours = 6.0;  ///< the section-2.8 full-scan target
  int min_eb = 32;              ///< discard tiny blocks
  double min_availability = 0.05;  ///< discard idle blocks
  analysis::LogisticOptions fit{};
};

/// One training/selection observation for a block.
struct BlockScanSample {
  net::BlockId id{};
  int eb_count = 0;
  double availability = 0.0;      ///< long-term response rate of E(b)
  double observed_fbs_hours = 0.0;  ///< measured full-block-scan time
};

/// The fitted selector.
class AdditionalProbingSelector {
 public:
  /// Fits the FBS-time model from measured samples.  Throws
  /// std::invalid_argument when `samples` is empty.
  void fit(const std::vector<BlockScanSample>& samples,
           const AdditionalSelectionOptions& opt = {});

  /// True when the block should receive additional probing: predicted
  /// FBS above the goal, and not excluded as tiny/idle.
  bool should_probe(int eb_count, double availability) const;

  /// Model quality against labeled samples (label: FBS > goal).
  analysis::BinaryMetrics evaluate(
      const std::vector<BlockScanSample>& samples) const;

  const analysis::LogisticModel& model() const noexcept { return model_; }
  bool fitted() const noexcept { return model_.fitted(); }

 private:
  analysis::LogisticModel model_;
  AdditionalSelectionOptions opt_{};
};

}  // namespace diurnal::probe
