// Path loss between an observer and a destination block.
//
// Most paths see only a small background loss rate.  The paper found one
// observer (w, sometimes c) probing roughly a quarter of Chinese
// destinations across a link with *diurnal congestive loss* of up to
// ~14% (section 3.3) — the failure mode 1-loss repair exists to fix,
// because diurnal loss masquerades as diurnal address usage.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "probe/observer.h"
#include "sim/block_profile.h"

namespace diurnal::probe {

struct LossModelConfig {
  double base_loss = 0.004;  ///< background random loss on healthy paths
  /// Fraction of Chinese/Moroccan destinations the congested observer
  /// reaches through the lossy link.
  double congested_destination_fraction = 0.25;
  double congested_peak_loss = 0.14;  ///< loss at the busiest hour
  char congested_observer = 'w';
  std::uint64_t seed = 0x10553ULL;
  bool enable_congestion = true;
};

/// Deterministic per-(observer, block, time) loss-rate model.
class LossModel {
 public:
  explicit LossModel(LossModelConfig config = {}) noexcept;

  /// Probability that a probe (or its reply) is lost.
  double loss_rate(const ObserverSpec& obs, const sim::BlockProfile& block,
                   util::SimTime t) const noexcept;

  /// True when this observer reaches this block over the congested link.
  bool path_congested(const ObserverSpec& obs,
                      const sim::BlockProfile& block) const noexcept;

  const LossModelConfig& config() const noexcept { return config_; }

 private:
  LossModelConfig config_;
};

}  // namespace diurnal::probe
