// Path loss between an observer and a destination block.
//
// Most paths see only a small background loss rate.  The paper found one
// observer (w, sometimes c) probing roughly a quarter of Chinese
// destinations across a link with *diurnal congestive loss* of up to
// ~14% (section 3.3) — the failure mode 1-loss repair exists to fix,
// because diurnal loss masquerades as diurnal address usage.
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "probe/observer.h"
#include "sim/block_profile.h"

namespace diurnal::probe {

struct LossModelConfig {
  double base_loss = 0.004;  ///< background random loss on healthy paths
  /// Fraction of Chinese/Moroccan destinations the congested observer
  /// reaches through the lossy link.
  double congested_destination_fraction = 0.25;
  double congested_peak_loss = 0.14;  ///< loss at the busiest hour
  char congested_observer = 'w';
  std::uint64_t seed = 0x10553ULL;
  bool enable_congestion = true;
};

/// Deterministic per-(observer, block, time) loss-rate model.
class LossModel {
 public:
  explicit LossModel(LossModelConfig config = {}) noexcept;

  /// Probability that a probe (or its reply) is lost.
  double loss_rate(const ObserverSpec& obs, const sim::BlockProfile& block,
                   util::SimTime t) const noexcept;

  /// True when this observer reaches this block over the congested link.
  bool path_congested(const ObserverSpec& obs,
                      const sim::BlockProfile& block) const noexcept;

  /// loss_rate() with the (time-independent) path_congested bit already
  /// resolved; probe loops hoist that lookup out of their round loop.
  double loss_rate_on_path(bool congested, std::int16_t tz_offset_hours,
                           util::SimTime t) const noexcept;

  /// Loss rate on a congested path at a destination-local hour (the
  /// diurnal congestion curve of section 3.3).  The rate depends on time
  /// only through the local hour, so probe loops can tabulate all 24
  /// values once per pass instead of evaluating the curve per probe.
  double congested_loss_at_hour(int local_hour) const noexcept {
    double busy = 0.15;
    if (local_hour >= 19) busy = 1.0;
    else if (local_hour >= 15) busy = 0.5;
    else if (local_hour >= 9) busy = 0.3;
    return config_.base_loss + config_.congested_peak_loss * busy;
  }

  const LossModelConfig& config() const noexcept { return config_; }

 private:
  LossModelConfig config_;
};

}  // namespace diurnal::probe
