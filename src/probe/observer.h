// Observer sites (paper section 2.2): six geographically distributed
// vantage points probing the same targets in the same order, started
// independently and therefore out of phase.  Sites c and g developed
// hardware problems in 2020 and are discarded by the observer-health
// check (section 2.7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/date.h"

namespace diurnal::probe {

/// One probing site.
struct ObserverSpec {
  char code = 'w';       ///< paper site code (c/e/g/j/n/w), 'x' = additional
  std::string location;  ///< human-readable site location
  util::SimTime phase = 0;  ///< start offset within the 11-minute round

  /// Hardware fault window (both 0 when healthy): inside it, this
  /// observer's results are corrupted (random flips) as happened to
  /// sites c and g in 2020.
  util::SimTime fault_start = 0;
  util::SimTime fault_end = 0;

  bool faulty_at(util::SimTime t) const noexcept {
    return fault_end > fault_start && t >= fault_start && t < fault_end;
  }
};

/// The six Trinocular sites with the paper's locations; phases are
/// deterministic and distinct.  Sites c and g carry their 2020 fault
/// windows.
const std::vector<ObserverSpec>& trinocular_sites();

/// Looks up a site by code letter; throws std::out_of_range if unknown.
const ObserverSpec& site(char code);

/// Parses a site-string like "ejnw" into observer specs.
std::vector<ObserverSpec> sites_from_string(const std::string& codes);

/// The dedicated additional-observations site (section 2.8).
ObserverSpec additional_observer();

}  // namespace diurnal::probe
