#include "probe/loss_model.h"

#include "geo/countries.h"
#include "util/rng.h"

namespace diurnal::probe {

LossModel::LossModel(LossModelConfig config) noexcept : config_(config) {}

bool LossModel::path_congested(const ObserverSpec& obs,
                               const sim::BlockProfile& block) const noexcept {
  if (!config_.enable_congestion) return false;
  if (obs.code != config_.congested_observer) return false;
  const auto& code = geo::countries()[block.country].code;
  if (code != "CN" && code != "MA") return false;
  const std::uint64_t h =
      util::derive_seed(config_.seed, block.id.id(),
                        static_cast<std::uint64_t>(obs.code));
  return static_cast<double>(h >> 11) * 0x1.0p-53 <
         config_.congested_destination_fraction;
}

double LossModel::loss_rate_on_path(bool congested,
                                    std::int16_t tz_offset_hours,
                                    util::SimTime t) const noexcept {
  if (!congested) return config_.base_loss;
  // Congestion follows the destination's local busy hours.
  const util::SimTime local =
      t + static_cast<util::SimTime>(tz_offset_hours) * 3600;
  std::int64_t sec = local % util::kSecondsPerDay;
  if (sec < 0) sec += util::kSecondsPerDay;
  return congested_loss_at_hour(static_cast<int>(sec / 3600));
}

double LossModel::loss_rate(const ObserverSpec& obs,
                            const sim::BlockProfile& block,
                            util::SimTime t) const noexcept {
  return loss_rate_on_path(path_congested(obs, block), block.tz_offset_hours,
                           t);
}

}  // namespace diurnal::probe
