// Bounded blocking FIFO — the backpressure primitive of the query
// plane (DESIGN.md section 13).  Producers enqueue work (epoch ticks on
// the serve ingest feed); when the consumer falls behind, push() blocks
// instead of letting the queue grow without bound, so memory stays flat
// and the feed rate degrades to the ingest rate.
//
// The serve pipeline uses it MPSC (any number of feeders, one ingest
// loop), but the implementation is safe for any number of producers and
// consumers.  close() wakes everyone: blocked producers return false,
// and consumers drain the remaining items before pop() returns nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace diurnal::util {

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity would deadlock a lone producer; clamp to one.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues, blocking while the queue is full.  Returns false (and
  /// drops the value) once the queue is closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    if (q_.size() >= capacity_ && !closed_) {
      ++push_waits_;
      not_full_.wait(lock, [&] { return q_.size() < capacity_ || closed_; });
    }
    if (closed_) return false;
    q_.push_back(std::move(value));
    if (q_.size() > peak_size_) peak_size_ = q_.size();
    ++pushed_;
    not_empty_.notify_one();
    return true;
  }

  /// Enqueues only if there is room right now; never blocks.
  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || q_.size() >= capacity_) return false;
    q_.push_back(std::move(value));
    if (q_.size() > peak_size_) peak_size_ = q_.size();
    ++pushed_;
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues, blocking while the queue is empty.  Returns nullopt only
  /// when the queue is closed AND fully drained — items enqueued before
  /// close() are always delivered.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    std::optional<T> v(std::move(q_.front()));
    q_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// Closes the queue.  Idempotent; wakes all blocked producers and
  /// consumers.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Total values accepted (not counting pushes refused after close).
  std::uint64_t pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushed_;
  }

  /// Times a producer blocked on a full queue — the backpressure signal
  /// surfaced in ServeStats.
  std::uint64_t push_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_waits_;
  }

  /// High-water mark of the queue depth; never exceeds capacity().
  std::size_t peak_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_size_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> q_;
  bool closed_ = false;
  std::uint64_t pushed_ = 0;
  std::uint64_t push_waits_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace diurnal::util
