// Aligned text tables for bench output (paper tables are reproduced as
// plain-text rows so they can be diffed between runs).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace diurnal::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Builds monospace tables like:
///
///   dataset        responsive   diurnal
///   -------------  ----------   -------
///   2020q1-w          5173026    399299
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Sets per-column alignment (default: first column left, rest right).
  void set_alignment(std::vector<Align> align);

  void add_row(std::vector<std::string> cells);

  /// Renders the full table, including a separator under the header.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Formats a double with the given number of decimals.
std::string fmt(double v, int decimals = 2);

/// Formats an integer with thousands separators ("5,173,026").
std::string fmt_count(std::int64_t v);

/// Formats a ratio as a percentage string ("93.0%").
std::string fmt_pct(double ratio, int decimals = 1);

/// Undefined-rate form: "n/a" for nullopt (zero-denominator rates).
std::string fmt_pct(std::optional<double> ratio, int decimals = 1);

}  // namespace diurnal::util
