// Minimal CSV writer: benches optionally dump series for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace diurnal::util {

/// Writes rows of string cells as RFC-4180-ish CSV (quotes cells that
/// contain commas, quotes or newlines).
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Flushes and closes; also called by the destructor.
  void close();

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  std::ofstream out_;
};

/// Escapes one CSV cell.
std::string csv_escape(const std::string& cell);

}  // namespace diurnal::util
