// RCU-style publication point for immutable epoch snapshots
// (DESIGN.md section 13).  One writer publishes a fresh snapshot per
// epoch; any number of readers pin the current one by copying the
// shared_ptr.  The refcount keeps a pinned epoch alive however far the
// writer advances, so a reader's view is bitwise-frozen for as long as
// it holds the pointer — there is no other synchronization between the
// query path and the ingest loop.
//
// The swap itself is a short mutex-guarded pointer exchange rather than
// std::atomic<shared_ptr>: the critical section is two refcount ops, it
// is portable, and it is trivially clean under ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace diurnal::util {

template <typename T>
class EpochRegistry {
 public:
  /// The latest published snapshot; null before the first publish.
  /// Copying the shared_ptr pins the epoch for the caller's lifetime.
  std::shared_ptr<const T> current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Number of publishes so far.
  std::uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  /// Swaps in a new immutable snapshot and wakes waiters.  The previous
  /// snapshot stays alive while any reader still pins it.
  void publish(std::shared_ptr<const T> next) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      current_ = std::move(next);
      ++version_;
    }
    changed_.notify_all();
  }

  /// Marks the registry closed (no further publishes expected) and
  /// wakes waiters, so wait_for_version() cannot hang on a version that
  /// will never arrive.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    changed_.notify_all();
  }

  /// Blocks until at least `version` publishes have happened, or the
  /// registry is closed.  Returns the snapshot current at wake-up —
  /// callers must check version()/epoch when they need exactly k.
  std::shared_ptr<const T> wait_for_version(std::uint64_t version) const {
    std::unique_lock<std::mutex> lock(mu_);
    changed_.wait(lock, [&] { return version_ >= version || closed_; });
    return current_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable changed_;
  std::shared_ptr<const T> current_;
  std::uint64_t version_ = 0;
  bool closed_ = false;
};

}  // namespace diurnal::util
