// Deterministic pseudo-random generation for the simulation substrate.
//
// The whole reproduction is seed-deterministic: every world, prober and
// loss model derives its randomness from named streams of a single master
// seed, so any experiment can be replayed bit-exactly.
#pragma once

#include <cstdint>
#include <string_view>

namespace diurnal::util {

/// splitmix64 step; used for seeding and cheap stateless hashing.
/// Inline: these run several times per simulated probe, so the activity
/// oracle and prober hot loops must not pay a call per hash.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (one splitmix64 round).
inline std::uint64_t mix64(std::uint64_t x) noexcept { return splitmix64(x); }

/// Combines a seed with a label to derive an independent stream seed.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) noexcept;

/// Combines a seed with up to three integer coordinates (block, address,
/// day, ...) into an independent stream seed.
inline std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b = 0,
                                 std::uint64_t c = 0) noexcept {
  std::uint64_t h = seed;
  h = mix64(h ^ a);
  h = mix64(h ^ b);
  h = mix64(h ^ c);
  return h;
}

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies (most of) UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept;

  /// Standard normal via Box-Muller (polar form cached).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given mean (>0).
  double exponential(double mean) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small,
  /// normal approximation for large means).
  int poisson(double mean) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace diurnal::util
