// Process-memory introspection for the capacity benches and the shard
// scheduler's residency accounting.
//
// Peak RSS (VmHWM) is the honest "did the bounded-memory contract
// hold?" number: it is charged by the kernel, so it catches allocator
// slack, page-table overhead, and thread stacks that allocation
// counters miss.  Linux exposes it in /proc/self/status and lets a
// process reset its own high-water mark through /proc/self/clear_refs,
// which is what lets one bench measure several phases independently.
// On non-Linux platforms everything degrades to zeros and callers must
// treat the numbers as unavailable rather than "zero bytes used".
#pragma once

#include <cstddef>

namespace diurnal::util {

struct MemoryUsage {
  std::size_t rss_kb = 0;       ///< VmRSS: resident set right now
  std::size_t peak_rss_kb = 0;  ///< VmHWM: high-water mark since reset
  bool valid = false;           ///< false when /proc is unavailable
};

/// Reads VmRSS/VmHWM from /proc/self/status.
MemoryUsage read_memory_usage() noexcept;

/// Resets the peak-RSS high-water mark to the current RSS (writes "5"
/// to /proc/self/clear_refs).  Returns false when unsupported; callers
/// then get process-lifetime peaks instead of per-phase ones.
///
/// The write syscall itself is checked (buffered stdio can report
/// success and only fail at flush, which containers' restricted
/// /proc mounts provoke), and the result is verified against
/// /proc/self/status: a "successful" write after which VmHWM still
/// exceeds VmRSS by more than a small slack did not actually reset,
/// so it reports false.  Benches record this as
/// "peak_reset_supported" — a false means their per-phase peaks are
/// process-lifetime peaks, not that the phases fit in them.
bool reset_peak_rss() noexcept;

/// One verified probe of reset_peak_rss(), cached for the process:
/// whether per-phase peak-RSS measurement works in this environment.
bool peak_reset_supported() noexcept;

}  // namespace diurnal::util
