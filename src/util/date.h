// Civil-date arithmetic for the simulation timeline.
//
// All experiments in the paper are anchored to real calendar dates
// (2019-10-01 through 2023-06-30).  We model simulation time as seconds
// since the epoch 2019-10-01 00:00 UTC and convert exactly to and from
// proleptic-Gregorian civil dates using Howard Hinnant's algorithms.
#pragma once

#include <cstdint>
#include <string>

namespace diurnal::util {

/// A civil (proleptic Gregorian) calendar date.
struct Date {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend bool operator==(const Date&, const Date&) = default;
};

/// Days since 1970-01-01 for a civil date (valid over all int years).
std::int64_t days_from_civil(const Date& d) noexcept;

/// Inverse of days_from_civil.
Date civil_from_days(std::int64_t z) noexcept;

/// Day of week for a civil date: 0 = Sunday .. 6 = Saturday.
int weekday(const Date& d) noexcept;

/// True for Saturday or Sunday.
bool is_weekend(const Date& d) noexcept;

/// Formats as "YYYY-MM-DD".
std::string to_string(const Date& d);

/// Parses "YYYY-MM-DD"; throws std::invalid_argument on malformed input.
Date parse_date(const std::string& s);

// ---------------------------------------------------------------------------
// Simulation timeline.
// ---------------------------------------------------------------------------

/// Seconds since the simulation epoch, 2019-10-01 00:00:00 UTC.
using SimTime = std::int64_t;

inline constexpr std::int64_t kSecondsPerDay = 86'400;
inline constexpr std::int64_t kSecondsPerHour = 3'600;

/// Trinocular probing-round length (11 minutes), paper section 2.2.
inline constexpr std::int64_t kRoundSeconds = 660;

/// Rounds per (UTC) day: 86400 / 660 is not integral; the fleet uses
/// round indices and converts through seconds, so no drift accumulates.
inline constexpr double kRoundsPerDay =
    static_cast<double>(kSecondsPerDay) / static_cast<double>(kRoundSeconds);

/// The simulation epoch as a civil date.
inline constexpr Date kEpochDate{2019, 10, 1};

/// Days since 1970-01-01 of the simulation epoch.
std::int64_t epoch_days() noexcept;

/// SimTime (seconds) of midnight UTC on the given civil date.
SimTime time_of(const Date& d) noexcept;

/// Convenience: SimTime of midnight UTC on year-month-day.
SimTime time_of(int year, int month, int day) noexcept;

/// Civil date containing a SimTime (UTC).
Date date_of(SimTime t) noexcept;

/// Whole days since the simulation epoch (floor).
std::int64_t day_index(SimTime t) noexcept;

/// Hour of day 0..23 (UTC).
int hour_of_day(SimTime t) noexcept;

/// Day of week of a SimTime: 0 = Sunday .. 6 = Saturday.
int weekday_of(SimTime t) noexcept;

/// Formats a SimTime as "YYYY-MM-DD HH:MM".
std::string to_string_time(SimTime t);

}  // namespace diurnal::util
