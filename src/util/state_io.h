// Framed binary state serialization: the checkpoint/restore substrate
// every pipeline layer shares (DESIGN.md section 11).
//
// A state image is a header plus a sequence of framed sections:
//
//   header   "DIURNCKP" | endian sentinel u32 | format version u32 |
//            flags u32 (bit 0: varint integer packing)
//   section  tag u32 | payload length u64 | payload CRC32 u32 | payload
//
// The header fields are fixed-width native-endian; the sentinel detects
// a cross-endian image (we reject instead of byte-swapping — every
// supported target is little-endian, and a wrong-endian file must never
// be silently misread).  Each section's CRC covers its payload, so a
// flipped byte anywhere surfaces as StateErrorKind::kBadCrc before any
// value is trusted.  Readers consume a section completely or fail: a
// version that writes more fields than the reader understands is a
// format break and bumps kStateFormatVersion (see the compat policy in
// DESIGN.md).
//
// All failures throw StateError — never UB, never a partial overwrite
// of caller state that has already validated.  Callers that can
// recompute (the shard scheduler, the CLI resume path) catch it and
// fall back; callers that cannot (tests) let it propagate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace diurnal::util {

/// Current image format version.  Bump on any layout change; readers
/// reject images whose version differs (checkpoints are cheap to
/// regenerate, so there is no cross-version migration path).
inline constexpr std::uint32_t kStateFormatVersion = 1;

enum class StateErrorKind : std::uint8_t {
  kIo,          ///< file missing/unreadable/unwritable
  kBadMagic,    ///< not a state image
  kBadEndian,   ///< written on an incompatible-endian machine
  kBadVersion,  ///< format version mismatch
  kTruncated,   ///< image ends before the data it promises
  kBadCrc,      ///< section payload fails its checksum
  kBadSection,  ///< wrong tag, or payload not fully consumed
  kBadValue,    ///< decoded value violates an invariant
};

const char* to_string(StateErrorKind kind) noexcept;

/// The one failure type of the state layer.  kind() routes recovery:
/// kIo on a manifest usually means "no checkpoint yet"; everything else
/// means "discard and recompute".
class StateError : public std::runtime_error {
 public:
  StateError(StateErrorKind kind, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind) {}
  StateErrorKind kind() const noexcept { return kind_; }

 private:
  StateErrorKind kind_;
};

/// Four-character section tag, e.g. state_tag("FLET").
constexpr std::uint32_t state_tag(const char (&s)[5]) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24);
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Serializes values into an in-memory image.  Integer packing: with
/// varint enabled (the default) u32/u64 are LEB128 and i64 is
/// zigzag-LEB128; disabled, they are fixed-width.  f64 is always the
/// raw 8-byte bit pattern — checkpoints must round-trip bitwise, so
/// floating-point values are never re-encoded — except through
/// f64_span's integral fast path, which is exact by construction.
class StateWriter {
 public:
  explicit StateWriter(bool varint = true);

  /// Opens a framed section; every value lands in it.  Sections do not
  /// nest.
  void begin_section(std::uint32_t tag);
  /// Closes the open section, patching its length and CRC.
  void end_section();

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(std::string_view s);

  /// A double array with a transparent packing decision: when every
  /// value is an exactly representable non-negative integer below 2^52
  /// (active-address counts always are), the values travel as varints;
  /// otherwise as raw doubles.  Both round-trip bitwise.
  void f64_span(std::span<const double> v);

  /// The finished image.  No section may be open.
  const std::vector<std::uint8_t>& bytes() const;
  std::vector<std::uint8_t> take();
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void raw32(std::uint32_t v);
  void raw64(std::uint64_t v);
  void var64(std::uint64_t v);

  std::vector<std::uint8_t> buf_;
  std::size_t payload_start_ = 0;  ///< open section's payload offset
  bool section_open_ = false;
  bool varint_ = true;
};

/// Deserializes an image produced by StateWriter.  The constructor
/// validates magic, endianness, and version; begin_section() validates
/// the tag and payload CRC before any value is read; end_section()
/// requires the payload to be fully consumed.  Every decode error is a
/// StateError — a corrupt image can never produce silent garbage.
class StateReader {
 public:
  /// Borrows `image` for the reader's lifetime.
  explicit StateReader(std::span<const std::uint8_t> image);

  std::uint32_t version() const noexcept { return version_; }

  void begin_section(std::uint32_t expected_tag);
  void end_section();
  /// True when the image has another section to read.
  bool has_section() const noexcept { return pos_ < image_.size(); }
  /// The tag of the next section, without opening it.
  std::uint32_t next_tag() const;
  /// Validates the next section's framing and payload checksum without
  /// decoding it, then steps past it — the forward-compatibility path
  /// for sections this consumer does not understand.
  void skip_section();

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();
  void f64_span(std::vector<double>& out);
  /// Reads a span serialized by f64_span into caller storage; the
  /// stored count must equal out.size().
  void f64_span_into(std::span<double> out);

 private:
  [[noreturn]] void fail(StateErrorKind kind, const char* what) const;
  void need(std::size_t n) const;
  std::uint32_t raw32();
  std::uint64_t raw64();
  std::uint64_t var64();

  std::span<const std::uint8_t> image_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  bool section_open_ = false;
  bool varint_ = true;
  std::uint32_t version_ = 0;
};

/// Writes an image to `path` atomically: the bytes land in a staging
/// file with a per-process unique suffix and are renamed over the
/// destination, so a reader (or a crash, or a concurrent writer of the
/// same path) sees either the old complete file or a new complete
/// file, never a torn one.  Throws StateError(kIo) on failure.
void write_state_file(const std::string& path,
                      std::span<const std::uint8_t> bytes);

/// Reads a whole file.  Throws StateError(kIo) when missing/unreadable.
std::vector<std::uint8_t> read_state_file(const std::string& path);

}  // namespace diurnal::util
