#include "util/state_io.h"

#include <unistd.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace diurnal::util {

namespace {

constexpr std::array<char, 8> kMagic = {'D', 'I', 'U', 'R', 'N', 'C', 'K', 'P'};
constexpr std::uint32_t kEndianSentinel = 0x01020304u;
constexpr std::uint32_t kFlagVarint = 1u << 0;

/// Per-array tags of f64_span's packing decision.
constexpr std::uint8_t kF64Raw = 0;
constexpr std::uint8_t kF64Varint = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[i] = c;
  }
  return t;
}

}  // namespace

const char* to_string(StateErrorKind kind) noexcept {
  switch (kind) {
    case StateErrorKind::kIo:
      return "io";
    case StateErrorKind::kBadMagic:
      return "bad-magic";
    case StateErrorKind::kBadEndian:
      return "bad-endian";
    case StateErrorKind::kBadVersion:
      return "bad-version";
    case StateErrorKind::kTruncated:
      return "truncated";
    case StateErrorKind::kBadCrc:
      return "bad-crc";
    case StateErrorKind::kBadSection:
      return "bad-section";
    case StateErrorKind::kBadValue:
      return "bad-value";
  }
  return "unknown";
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

StateWriter::StateWriter(bool varint) : varint_(varint) {
  buf_.reserve(64);
  for (const char c : kMagic) buf_.push_back(static_cast<std::uint8_t>(c));
  raw32(kEndianSentinel);
  raw32(kStateFormatVersion);
  raw32(varint_ ? kFlagVarint : 0u);
}

void StateWriter::raw32(std::uint32_t v) {
  std::uint8_t b[4];
  std::memcpy(b, &v, 4);
  buf_.insert(buf_.end(), b, b + 4);
}

void StateWriter::raw64(std::uint64_t v) {
  std::uint8_t b[8];
  std::memcpy(b, &v, 8);
  buf_.insert(buf_.end(), b, b + 8);
}

void StateWriter::var64(std::uint64_t v) {
  while (v >= 0x80u) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void StateWriter::begin_section(std::uint32_t tag) {
  if (section_open_) {
    throw StateError(StateErrorKind::kBadSection,
                     "begin_section with a section already open");
  }
  // Frame fields are fixed-width so end_section() can patch in place.
  raw32(tag);
  raw64(0);  // payload length, patched
  raw32(0);  // payload crc, patched
  payload_start_ = buf_.size();
  section_open_ = true;
}

void StateWriter::end_section() {
  if (!section_open_) {
    throw StateError(StateErrorKind::kBadSection,
                     "end_section without an open section");
  }
  const std::uint64_t len = buf_.size() - payload_start_;
  const std::uint32_t crc = crc32(
      std::span<const std::uint8_t>(buf_.data() + payload_start_, len));
  std::memcpy(buf_.data() + payload_start_ - 12, &len, 8);
  std::memcpy(buf_.data() + payload_start_ - 4, &crc, 4);
  section_open_ = false;
}

void StateWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void StateWriter::u32(std::uint32_t v) {
  if (varint_) {
    var64(v);
  } else {
    raw32(v);
  }
}

void StateWriter::u64(std::uint64_t v) {
  if (varint_) {
    var64(v);
  } else {
    raw64(v);
  }
}

void StateWriter::i64(std::int64_t v) {
  // Zigzag: small magnitudes of either sign stay short.
  const std::uint64_t z = (static_cast<std::uint64_t>(v) << 1) ^
                          static_cast<std::uint64_t>(v >> 63);
  u64(z);
}

void StateWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  raw64(bits);
}

void StateWriter::boolean(bool v) { u8(v ? 1 : 0); }

void StateWriter::str(std::string_view s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void StateWriter::f64_span(std::span<const double> v) {
  u64(v.size());
  bool integral = varint_;
  if (integral) {
    constexpr double kMax = 4503599627370496.0;  // 2^52
    for (const double x : v) {
      if (!(x >= 0.0 && x < kMax) || std::nearbyint(x) != x ||
          std::signbit(x)) {
        integral = false;
        break;
      }
    }
  }
  u8(integral ? kF64Varint : kF64Raw);
  if (integral) {
    for (const double x : v) var64(static_cast<std::uint64_t>(x));
  } else {
    for (const double x : v) f64(x);
  }
}

const std::vector<std::uint8_t>& StateWriter::bytes() const {
  if (section_open_) {
    throw StateError(StateErrorKind::kBadSection,
                     "bytes() with a section still open");
  }
  return buf_;
}

std::vector<std::uint8_t> StateWriter::take() {
  if (section_open_) {
    throw StateError(StateErrorKind::kBadSection,
                     "take() with a section still open");
  }
  return std::move(buf_);
}

StateReader::StateReader(std::span<const std::uint8_t> image)
    : image_(image) {
  if (image_.size() < kMagic.size() + 12) {
    fail(StateErrorKind::kTruncated, "image shorter than the header");
  }
  if (std::memcmp(image_.data(), kMagic.data(), kMagic.size()) != 0) {
    fail(StateErrorKind::kBadMagic, "not a state image");
  }
  pos_ = kMagic.size();
  if (raw32() != kEndianSentinel) {
    fail(StateErrorKind::kBadEndian, "image endianness does not match host");
  }
  version_ = raw32();
  if (version_ != kStateFormatVersion) {
    fail(StateErrorKind::kBadVersion, "unsupported state format version");
  }
  const std::uint32_t flags = raw32();
  if ((flags & ~kFlagVarint) != 0) {
    // A flag bit this reader does not understand changes decoding rules
    // in ways it cannot honour; accepting it would be silent garbage.
    fail(StateErrorKind::kBadValue, "unknown header flag bits");
  }
  varint_ = (flags & kFlagVarint) != 0;
}

void StateReader::fail(StateErrorKind kind, const char* what) const {
  throw StateError(kind, std::string("state image: ") + what);
}

void StateReader::need(std::size_t n) const {
  const std::size_t limit = section_open_ ? section_end_ : image_.size();
  if (n > limit - pos_ || pos_ > limit) {
    fail(StateErrorKind::kTruncated, "read past the end of the data");
  }
}

std::uint32_t StateReader::raw32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, image_.data() + pos_, 4);
  pos_ += 4;
  return v;
}

std::uint64_t StateReader::raw64() {
  need(8);
  std::uint64_t v;
  std::memcpy(&v, image_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

std::uint64_t StateReader::var64() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t b = image_[pos_++];
    if (shift == 63 && b > 1) {
      fail(StateErrorKind::kBadValue, "varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
    shift += 7;
    if (shift > 63) {
      fail(StateErrorKind::kBadValue, "varint overflows 64 bits");
    }
  }
}

void StateReader::begin_section(std::uint32_t expected_tag) {
  if (section_open_) {
    fail(StateErrorKind::kBadSection, "begin_section inside a section");
  }
  const std::uint32_t tag = raw32();
  if (tag != expected_tag) {
    fail(StateErrorKind::kBadSection, "unexpected section tag");
  }
  const std::uint64_t len = raw64();
  const std::uint32_t crc = raw32();
  if (len > image_.size() - pos_) {
    fail(StateErrorKind::kTruncated, "section payload exceeds the image");
  }
  const auto payload = image_.subspan(pos_, static_cast<std::size_t>(len));
  if (crc32(payload) != crc) {
    fail(StateErrorKind::kBadCrc, "section payload fails its checksum");
  }
  section_end_ = pos_ + static_cast<std::size_t>(len);
  section_open_ = true;
}

std::uint32_t StateReader::next_tag() const {
  if (section_open_) {
    fail(StateErrorKind::kBadSection, "next_tag inside a section");
  }
  need(4);
  std::uint32_t tag;
  std::memcpy(&tag, image_.data() + pos_, 4);
  return tag;
}

void StateReader::skip_section() {
  begin_section(next_tag());  // framing + CRC validation
  pos_ = section_end_;
  section_open_ = false;
}

void StateReader::end_section() {
  if (!section_open_) {
    fail(StateErrorKind::kBadSection, "end_section without an open section");
  }
  if (pos_ != section_end_) {
    fail(StateErrorKind::kBadSection, "section payload not fully consumed");
  }
  section_open_ = false;
}

std::uint8_t StateReader::u8() {
  need(1);
  return image_[pos_++];
}

std::uint32_t StateReader::u32() {
  if (!varint_) return raw32();
  const std::uint64_t v = var64();
  if (v > 0xFFFFFFFFull) {
    fail(StateErrorKind::kBadValue, "u32 value out of range");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint64_t StateReader::u64() { return varint_ ? var64() : raw64(); }

std::int64_t StateReader::i64() {
  const std::uint64_t z = u64();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double StateReader::f64() {
  const std::uint64_t bits = raw64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

bool StateReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail(StateErrorKind::kBadValue, "boolean byte not 0/1");
  return v != 0;
}

std::string StateReader::str() {
  const std::uint64_t n = u64();
  need(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(image_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void StateReader::f64_span(std::vector<double>& out) {
  const std::uint64_t n = u64();
  const std::uint8_t mode = u8();
  out.clear();
  // Bound the reservation by what the payload could actually hold, so a
  // corrupt count cannot trigger a huge allocation before the reads
  // themselves fail.
  const std::size_t limit = (section_open_ ? section_end_ : image_.size());
  out.reserve(std::min<std::size_t>(static_cast<std::size_t>(n),
                                    limit - pos_ + 1));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (mode == kF64Varint) {
      out.push_back(static_cast<double>(var64()));
    } else if (mode == kF64Raw) {
      out.push_back(f64());
    } else {
      fail(StateErrorKind::kBadValue, "unknown f64 span packing mode");
    }
  }
}

void StateReader::f64_span_into(std::span<double> out) {
  const std::uint64_t n = u64();
  if (n != out.size()) {
    fail(StateErrorKind::kBadValue, "f64 span length mismatch");
  }
  const std::uint8_t mode = u8();
  for (auto& slot : out) {
    if (mode == kF64Varint) {
      slot = static_cast<double>(var64());
    } else if (mode == kF64Raw) {
      slot = f64();
    } else {
      fail(StateErrorKind::kBadValue, "unknown f64 span packing mode");
    }
  }
}

void write_state_file(const std::string& path,
                      std::span<const std::uint8_t> bytes) {
  // The temp name must be unique per writer: two processes (or threads)
  // flushing the same manifest concurrently — e.g. a capped run's final
  // flush racing a freshly launched --resume — must each stage a private
  // file and rename a complete image into place, never truncate or
  // rename each other's half-written staging file.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw StateError(StateErrorKind::kIo, "cannot open for write: " + tmp);
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw StateError(StateErrorKind::kIo, "short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw StateError(StateErrorKind::kIo, "cannot rename into place: " + path);
  }
}

std::vector<std::uint8_t> read_state_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw StateError(StateErrorKind::kIo, "cannot open for read: " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof(chunk), f);
    bytes.insert(bytes.end(), chunk, chunk + got);
    if (got < sizeof(chunk)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    throw StateError(StateErrorKind::kIo, "read error: " + path);
  }
  return bytes;
}

}  // namespace diurnal::util
