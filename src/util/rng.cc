#include "util/rng.h"

#include <cmath>

namespace diurnal::util {

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) noexcept {
  std::uint64_t h = seed ^ 0xA0761D6478BD642FULL;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h = mix64(h);
  }
  return h;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded sampling; bias negligible for
  // simulation purposes and acceptable at our n << 2^64.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>((*this)()) * n) >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo + 1)));
}

bool Xoshiro256::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xoshiro256::normal() noexcept {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  have_cached_normal_ = true;
  return u * f;
}

double Xoshiro256::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Xoshiro256::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

int Xoshiro256::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 30.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = uniform();
  int n = 0;
  while (prod > limit) {
    prod *= uniform();
    ++n;
  }
  return n;
}

}  // namespace diurnal::util
