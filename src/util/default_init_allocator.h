// Allocator adaptor that default-initializes elements created without
// arguments, instead of value-initializing them.  For trivially-copyable
// scratch elements this turns vector::resize(n) into a pure size change
// (no memset of storage the caller is about to overwrite), which matters
// in the probe hot path where per-pass output buffers are grown to a
// worst-case size and then filled through a bare pointer.
//
// Elements are indeterminate after such a resize; callers must write
// before reading, and must trim the vector to the written length.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace diurnal::util {

template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using Traits = std::allocator_traits<A>;

 public:
  using value_type = T;

  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename Traits::template rebind_alloc<U>>;
  };

  using A::A;

  template <typename U>
  void construct(U* p) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(p)) U;  // default-init: trivial types untouched
  }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    Traits::construct(static_cast<A&>(*this), p, std::forward<Args>(args)...);
  }
};

}  // namespace diurnal::util
