#include "util/mem.h"

#include <cstdio>
#include <cstring>

#ifdef __linux__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace diurnal::util {

MemoryUsage read_memory_usage() noexcept {
  MemoryUsage m;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return m;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      m.rss_kb = static_cast<std::size_t>(kb);
      m.valid = true;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      m.peak_rss_kb = static_cast<std::size_t>(kb);
      m.valid = true;
    }
  }
  std::fclose(f);
  return m;
}

bool reset_peak_rss() noexcept {
#ifdef __linux__
  // Unbuffered write so the syscall's own result is what we check:
  // sandboxed /proc mounts commonly accept open() and fail the write
  // (or worse, swallow it), which buffered stdio only surfaces at
  // fclose — or not at all.
  const int fd = ::open("/proc/self/clear_refs", O_WRONLY);
  if (fd < 0) return false;
  const ssize_t wrote = ::write(fd, "5\n", 2);
  const bool closed = ::close(fd) == 0;
  if (wrote != 2 || !closed) return false;
  // Verify the reset took: clear_refs mode 5 snaps VmHWM down to the
  // current VmRSS, so a high-water mark still far above the resident
  // set means the kernel ignored the write.  The slack absorbs the
  // pages this function itself may have touched.
  const MemoryUsage m = read_memory_usage();
  if (!m.valid) return false;
  constexpr std::size_t kSlackKb = 4096;
  return m.peak_rss_kb <= m.rss_kb + kSlackKb;
#else
  return false;
#endif
}

bool peak_reset_supported() noexcept {
  static const bool supported = reset_peak_rss();
  return supported;
}

}  // namespace diurnal::util
