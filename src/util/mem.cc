#include "util/mem.h"

#include <cstdio>
#include <cstring>

namespace diurnal::util {

MemoryUsage read_memory_usage() noexcept {
  MemoryUsage m;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return m;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      m.rss_kb = static_cast<std::size_t>(kb);
      m.valid = true;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      m.peak_rss_kb = static_cast<std::size_t>(kb);
      m.valid = true;
    }
  }
  std::fclose(f);
  return m;
}

bool reset_peak_rss() noexcept {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5\n", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

}  // namespace diurnal::util
