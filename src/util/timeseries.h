// Regularly sampled time series anchored to the simulation timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/date.h"

namespace diurnal::util {

/// Per-UTC-day summary of a series (used by the swing classifier).
struct DayStats {
  std::int64_t day = 0;  ///< day index since the simulation epoch
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  int samples = 0;

  double swing() const noexcept { return max - min; }
};

/// A fixed-interval time series: value[i] is the sample covering
/// [start + i*step, start + (i+1)*step).
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(SimTime start, std::int64_t step_seconds, std::vector<double> values);

  /// An empty series with `n` zero samples.
  static TimeSeries zeros(SimTime start, std::int64_t step_seconds, std::size_t n);

  SimTime start() const noexcept { return start_; }
  std::int64_t step() const noexcept { return step_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double operator[](std::size_t i) const noexcept { return values_[i]; }
  double& operator[](std::size_t i) noexcept { return values_[i]; }

  const std::vector<double>& values() const noexcept { return values_; }
  std::vector<double>& values() noexcept { return values_; }
  std::span<const double> span() const noexcept { return values_; }

  /// Timestamp of sample i (start of its interval).
  SimTime time_at(std::size_t i) const noexcept {
    return start_ + static_cast<std::int64_t>(i) * step_;
  }

  /// Timestamp one past the last sample.
  SimTime end_time() const noexcept { return time_at(size()); }

  /// Index of the sample containing time t, clamped to [0, size()-1].
  std::size_t index_at(SimTime t) const noexcept;

  /// Sub-series covering [t0, t1); clamps to the available range.
  TimeSeries slice(SimTime t0, SimTime t1) const;

  /// Downsample by integer factor using the mean of each group
  /// (trailing partial group averaged over its actual samples).
  TimeSeries downsample_mean(std::size_t factor) const;

  /// Per-UTC-day min/max/mean; days with no samples are omitted.
  std::vector<DayStats> daily_stats() const;

  double mean() const noexcept;
  double stddev() const noexcept;  ///< population standard deviation
  double min() const noexcept;
  double max() const noexcept;

  /// Returns a z-score-normalized copy ((x - mean)/stddev); if the
  /// series is constant, returns all zeros.
  TimeSeries zscore() const;

 private:
  SimTime start_ = 0;
  std::int64_t step_ = kRoundSeconds;
  std::vector<double> values_;
};

}  // namespace diurnal::util
