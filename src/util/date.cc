#include "util/date.h"

#include <cstdio>
#include <stdexcept>

namespace diurnal::util {

// Hinnant, "chrono-Compatible Low-Level Date Algorithms".
std::int64_t days_from_civil(const Date& d) noexcept {
  int y = d.year;
  const unsigned m = static_cast<unsigned>(d.month);
  const unsigned dd = static_cast<unsigned>(d.day);
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + dd - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date civil_from_days(std::int64_t z) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned dd = doy - (153 * mp + 2) / 5 + 1;              // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  return Date{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
              static_cast<int>(dd)};
}

int weekday(const Date& d) noexcept {
  const std::int64_t z = days_from_civil(d);
  return static_cast<int>(z >= -4 ? (z + 4) % 7 : (z + 5) % 7 + 6);
}

bool is_weekend(const Date& d) noexcept {
  const int wd = weekday(d);
  return wd == 0 || wd == 6;
}

std::string to_string(const Date& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

Date parse_date(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 || m > 12 ||
      d < 1 || d > 31) {
    throw std::invalid_argument("parse_date: malformed date '" + s + "'");
  }
  return Date{y, m, d};
}

std::int64_t epoch_days() noexcept { return days_from_civil(kEpochDate); }

SimTime time_of(const Date& d) noexcept {
  return (days_from_civil(d) - epoch_days()) * kSecondsPerDay;
}

SimTime time_of(int year, int month, int day) noexcept {
  return time_of(Date{year, month, day});
}

Date date_of(SimTime t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --days;  // floor toward -inf
  return civil_from_days(epoch_days() + days);
}

std::int64_t day_index(SimTime t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --days;
  return days;
}

int hour_of_day(SimTime t) noexcept {
  std::int64_t sec = t % kSecondsPerDay;
  if (sec < 0) sec += kSecondsPerDay;
  return static_cast<int>(sec / kSecondsPerHour);
}

int weekday_of(SimTime t) noexcept { return weekday(date_of(t)); }

std::string to_string_time(SimTime t) {
  const Date d = date_of(t);
  std::int64_t sec = t % kSecondsPerDay;
  if (sec < 0) sec += kSecondsPerDay;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d", d.year, d.month,
                d.day, static_cast<int>(sec / 3600),
                static_cast<int>((sec % 3600) / 60));
  return buf;
}

}  // namespace diurnal::util
