#include "util/table.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace diurnal::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  align_.assign(headers_.size(), Align::kRight);
  if (!align_.empty()) align_[0] = Align::kLeft;
}

void TextTable::set_alignment(std::vector<Align> align) {
  align_ = std::move(align);
  align_.resize(headers_.size(), Align::kRight);
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto emit_cell = [&](std::string& out, const std::string& cell,
                       std::size_t c) {
    const std::size_t pad = width[c] - cell.size();
    if (align_[c] == Align::kRight) out.append(pad, ' ');
    out += cell;
    if (align_[c] == Align::kLeft) out.append(pad, ' ');
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    emit_cell(out, headers_[c], c);
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += "  ";
    out.append(width[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      emit_cell(out, row[c], c);
    }
    out += '\n';
  }
  return out;
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_count(std::int64_t v) {
  const bool neg = v < 0;
  std::uint64_t u = neg ? static_cast<std::uint64_t>(-(v + 1)) + 1
                        : static_cast<std::uint64_t>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

std::string fmt_pct(double ratio, int decimals) {
  return fmt(ratio * 100.0, decimals) + "%";
}

std::string fmt_pct(std::optional<double> ratio, int decimals) {
  return ratio ? fmt_pct(*ratio, decimals) : "n/a";
}

}  // namespace diurnal::util
