#include "util/timeseries.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace diurnal::util {

TimeSeries::TimeSeries(SimTime start, std::int64_t step_seconds,
                       std::vector<double> values)
    : start_(start), step_(step_seconds), values_(std::move(values)) {
  if (step_ <= 0) throw std::invalid_argument("TimeSeries: step must be > 0");
}

TimeSeries TimeSeries::zeros(SimTime start, std::int64_t step_seconds,
                             std::size_t n) {
  return TimeSeries(start, step_seconds, std::vector<double>(n, 0.0));
}

std::size_t TimeSeries::index_at(SimTime t) const noexcept {
  if (values_.empty() || t <= start_) return 0;
  const std::int64_t i = (t - start_) / step_;
  return std::min<std::size_t>(static_cast<std::size_t>(i), values_.size() - 1);
}

TimeSeries TimeSeries::slice(SimTime t0, SimTime t1) const {
  if (values_.empty() || t1 <= t0) return TimeSeries(t0, step_, {});
  std::int64_t i0 = (t0 - start_) / step_;
  if (t0 < start_) i0 = 0;
  std::int64_t i1 = (t1 - start_ + step_ - 1) / step_;
  i0 = std::clamp<std::int64_t>(i0, 0, static_cast<std::int64_t>(values_.size()));
  i1 = std::clamp<std::int64_t>(i1, i0, static_cast<std::int64_t>(values_.size()));
  return TimeSeries(time_at(static_cast<std::size_t>(i0)), step_,
                    std::vector<double>(values_.begin() + i0, values_.begin() + i1));
}

TimeSeries TimeSeries::downsample_mean(std::size_t factor) const {
  if (factor == 0) throw std::invalid_argument("downsample_mean: factor 0");
  if (factor == 1) return *this;
  std::vector<double> out;
  out.reserve((values_.size() + factor - 1) / factor);
  for (std::size_t i = 0; i < values_.size(); i += factor) {
    const std::size_t end = std::min(i + factor, values_.size());
    double sum = 0.0;
    for (std::size_t j = i; j < end; ++j) sum += values_[j];
    out.push_back(sum / static_cast<double>(end - i));
  }
  return TimeSeries(start_, step_ * static_cast<std::int64_t>(factor),
                    std::move(out));
}

std::vector<DayStats> TimeSeries::daily_stats() const {
  std::vector<DayStats> out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const std::int64_t day = day_index(time_at(i));
    if (out.empty() || out.back().day != day) {
      out.push_back(DayStats{day, values_[i], values_[i], 0.0, 0});
    }
    DayStats& d = out.back();
    d.min = std::min(d.min, values_[i]);
    d.max = std::max(d.max, values_[i]);
    d.mean += values_[i];
    ++d.samples;
  }
  for (auto& d : out) {
    if (d.samples > 0) d.mean /= d.samples;
  }
  return out;
}

double TimeSeries::mean() const noexcept {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::stddev() const noexcept {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (const double v : values_) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values_.size()));
}

double TimeSeries::min() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::max() const noexcept {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

TimeSeries TimeSeries::zscore() const {
  const double m = mean();
  const double sd = stddev();
  std::vector<double> out(values_.size());
  // Guard against numerically constant series: dividing floating-point
  // dust by a ~1e-13 deviation manufactures spurious z-scores large
  // enough to trip CUSUM, so treat them as exactly constant.
  if (sd <= 1e-9 * std::max(1.0, std::abs(m))) {
    return TimeSeries(start_, step_, std::move(out));
  }
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out[i] = (values_[i] - m) / sd;
  }
  return TimeSeries(start_, step_, std::move(out));
}

}  // namespace diurnal::util
