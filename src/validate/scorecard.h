// Precision/recall/latency accounting over matched planted truth.
//
// A Scorecard aggregates per-block match results across a fleet run:
// per event class (WFH onset, holiday dip, curfew, home shift,
// occupancy) it tallies planted truth, matches, and misses plus
// detection latency; fleet-wide it tracks false positives (split into
// outage artifacts vs unexplained), the outage-pair-discard funnel, and
// degraded-mode exclusions.  Rates are derived through
// core::safe_ratio, so zero-denominator cases surface as nullopt
// instead of NaN.  Equality is integer-exact — the batch≡streaming and
// thread-count metamorphic gates compare whole cards.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "core/pipeline.h"
#include "sim/world.h"
#include "validate/matcher.h"

namespace diurnal::validate {

/// Tally for one event class.
struct ClassTally {
  int truth = 0;    ///< planted instances eligible for matching
  int matched = 0;  ///< true positives
  int missed = 0;   ///< false negatives
  std::int64_t abs_latency_sum = 0;  ///< seconds, over matched instances

  std::optional<double> recall() const noexcept {
    return core::safe_ratio(matched, truth);
  }
  std::optional<double> mean_abs_latency_days() const noexcept {
    const auto r = core::safe_ratio(abs_latency_sum, matched);
    if (!r) return std::nullopt;
    return *r / static_cast<double>(util::kSecondsPerDay);
  }

  friend bool operator==(const ClassTally&, const ClassTally&) = default;
};

struct Scorecard {
  std::array<ClassTally, kNumTruthClasses> classes{};

  int blocks_scored = 0;    ///< change-sensitive blocks matched
  int false_positive = 0;   ///< confirmed changes matching no truth
  /// Subset of false_positive sitting within the match window of a
  /// planted whole-block outage or renumbering: the pair filter leaked.
  int fp_outage_artifact = 0;
  /// Planted outage/renumbering instants inside the window on scored
  /// blocks — what the pair filter was supposed to neutralize.
  int outage_pairs_planted = 0;
  int outage_discards = 0;        ///< detections filtered as outage pairs
  int low_evidence_excluded = 0;  ///< confirmed changes skipped (degraded)
  /// Confirmed changes alarming before the earliest instant any eligible
  /// truth could match (window.start + min_truth_lead - match_window):
  /// cold-start artifacts, tallied instead of counted as false
  /// positives but still pinned by the golden baseline.
  int warmup_excluded = 0;
  /// Planted truth on diurnal-category blocks the classifier did not
  /// pass to detection — recall lost to classification, kept visible.
  int truth_outside_detection = 0;

  ClassTally& of(TruthClass c) { return classes[static_cast<std::size_t>(c)]; }
  const ClassTally& of(TruthClass c) const {
    return classes[static_cast<std::size_t>(c)];
  }

  int truth_total() const noexcept;
  int true_positive() const noexcept;
  int false_negative() const noexcept;

  std::optional<double> precision() const noexcept {
    return core::safe_ratio(true_positive(), true_positive() + false_positive);
  }
  std::optional<double> recall() const noexcept {
    return core::safe_ratio(true_positive(), truth_total());
  }
  /// Harmonic mean of precision and recall; nullopt when either is
  /// undefined or their sum is zero.
  std::optional<double> f1() const noexcept;
  std::optional<double> mean_abs_latency_days() const noexcept;

  friend bool operator==(const Scorecard&, const Scorecard&) = default;
};

/// One diagnostic record for the tool's --explain mode: anything on a
/// scored block that did not pair up cleanly with the planted truth.
struct ExplainEntry {
  enum class What : std::uint8_t {
    kFalsePositive,  ///< confirmed change matching no truth
    kMissedTruth,    ///< planted truth no detection matched
    kDiscarded,      ///< change the outage-pair filter removed
    kLowEvidence,    ///< confirmed change excluded as untrusted
    kWarmup,         ///< confirmed change inside the cold-start window
  };
  net::BlockId id{};
  sim::BlockCategory category = sim::BlockCategory::kUnused;
  What what = What::kFalsePositive;
  util::SimTime at = 0;  ///< alarm (for changes) or planted instant (truth)
  analysis::ChangeDirection direction = analysis::ChangeDirection::kDown;
  double amplitude_addresses = 0.0;        ///< 0 for truth entries
  TruthClass cls = TruthClass::kWfhOnset;  ///< truth entries only
  bool near_artifact = false;  ///< within the window of a planted outage
};

std::string_view to_string(ExplainEntry::What w) noexcept;

/// Scores one block's outcome into the card.  Change-sensitive blocks
/// are matched; diurnal blocks the classifier rejected only contribute
/// truth_outside_detection.  `explain`, when non-null, collects one
/// entry per miss, false positive, discard, and exclusion.
void score_block(const sim::BlockProfile& block,
                 const core::BlockOutcome& outcome, probe::ProbeWindow window,
                 const MatchOptions& opt, Scorecard& card,
                 std::vector<ExplainEntry>* explain = nullptr);

/// Scores a whole fleet result against the world's planted truth.
Scorecard score_fleet(const sim::World& world, const core::FleetResult& fleet,
                      probe::ProbeWindow window, const MatchOptions& opt = {},
                      std::vector<ExplainEntry>* explain = nullptr);

}  // namespace diurnal::validate
