// Golden accuracy baselines (VALIDATE_baseline.json).
//
// The checked-in baseline pins, per scenario, the fleet digest and the
// full scorecard — match counts exactly, derived rates under an
// epsilon.  Counts are exact because every scenario is seeded and the
// pipeline is bit-deterministic: a count moving by one IS a behavior
// change and must be reviewed (then re-recorded with
// diurnal_validate --update-baseline).  Rates are epsilon-compared so
// the file's decimal rendering never causes a spurious failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "validate/scorecard.h"

namespace diurnal::validate {

/// One scenario's recorded golden results.
struct ScenarioRecord {
  std::string digest;  ///< 16-digit hex fleet digest
  Scorecard score;
  // Rates as recorded in the file (recomputed values are epsilon-gated
  // against these).
  std::optional<double> precision;
  std::optional<double> recall;
  std::optional<double> f1;
  std::optional<double> mean_abs_latency_days;
};

/// Builds a record from a fresh scorecard + digest (rates derived).
ScenarioRecord make_record(const Scorecard& score, std::uint64_t digest);

struct Baseline {
  std::int64_t match_window_days = 4;
  /// Insertion-ordered, matching catalog order.
  std::vector<std::pair<std::string, ScenarioRecord>> scenarios;

  const ScenarioRecord* find(std::string_view name) const;
};

/// Serializes a baseline document (stable field order, so regenerated
/// files diff cleanly).
std::string to_json(const Baseline& b);

/// Parses a baseline document produced by to_json.  Throws
/// std::runtime_error on malformed input or missing fields.
Baseline parse_baseline(const std::string& text);

/// One field-level deviation from the baseline.
struct Mismatch {
  std::string scenario;
  std::string field;
  std::string expected;
  std::string actual;
};

/// Compares current results against the baseline: scenario sets must
/// agree, integer counts and digests exactly, rates within
/// rate_epsilon (nullopt must stay nullopt).  `only` restricts the
/// check to one scenario name (empty = all).
std::vector<Mismatch> compare_to_baseline(const Baseline& baseline,
                                          const Baseline& current,
                                          double rate_epsilon = 1e-9,
                                          std::string_view only = {});

}  // namespace diurnal::validate
