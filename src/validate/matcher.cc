#include "validate/matcher.h"

#include <algorithm>
#include <cstdlib>

namespace diurnal::validate {

using analysis::ChangeDirection;
using util::SimTime;

std::string_view to_string(TruthClass c) noexcept {
  switch (c) {
    case TruthClass::kWfhOnset: return "wfh_onset";
    case TruthClass::kHolidayDip: return "holiday_dip";
    case TruthClass::kCurfew: return "curfew";
    case TruthClass::kHomeShift: return "home_shift";
    case TruthClass::kOccupancy: return "occupancy";
  }
  return "?";
}

namespace {

bool occupied_at(const sim::BlockProfile& b, SimTime t) {
  if (b.occupied_from >= 0 && t < b.occupied_from) return false;
  if (b.occupied_until >= 0 && t >= b.occupied_until) return false;
  if (b.vacate_at >= 0 && t >= b.vacate_at) return false;
  if (b.cgnat_at >= 0 && t >= b.cgnat_at) return false;
  return true;
}

}  // namespace

std::vector<TruthInstance> planted_truth(const sim::BlockProfile& block,
                                         probe::ProbeWindow window,
                                         const MatchOptions& opt) {
  std::vector<TruthInstance> out;
  const auto eligible = [&](SimTime t) {
    return t >= window.start + opt.min_truth_lead &&
           t <= window.end - opt.match_window;
  };

  for (const auto& sup : block.suppressions) {
    const bool home_wfh = sup.kind == sim::EventKind::kWorkFromHome &&
                          block.category == sim::BlockCategory::kHomeDynamic;
    TruthClass cls;
    switch (sup.kind) {
      case sim::EventKind::kWorkFromHome:
        cls = home_wfh ? TruthClass::kHomeShift : TruthClass::kWfhOnset;
        break;
      case sim::EventKind::kHoliday:
        cls = TruthClass::kHolidayDip;
        break;
      case sim::EventKind::kCurfewUnrest:
        cls = TruthClass::kCurfew;
        break;
      default:
        continue;
    }
    const ChangeDirection onset_dir =
        home_wfh ? ChangeDirection::kUp : ChangeDirection::kDown;
    // A suppression is observable truth only if people still used the
    // block when it started (same rule as core::validate_sample).
    if (eligible(sup.start) && occupied_at(block, sup.start)) {
      out.push_back({sup.start, onset_dir, cls});
    }
    if (opt.match_recovery &&
        sup.end - sup.start >= opt.recovery_min_duration &&
        eligible(sup.end) && occupied_at(block, sup.end)) {
      const ChangeDirection recovery_dir = home_wfh ? ChangeDirection::kDown
                                                    : ChangeDirection::kUp;
      out.push_back({sup.end, recovery_dir, cls});
    }
  }

  if (block.vacate_at >= 0 && eligible(block.vacate_at)) {
    out.push_back(
        {block.vacate_at, ChangeDirection::kDown, TruthClass::kOccupancy});
  }
  if (block.occupied_until >= 0 && eligible(block.occupied_until) &&
      occupied_at(block, block.occupied_until - 1)) {
    out.push_back({block.occupied_until, ChangeDirection::kDown,
                   TruthClass::kOccupancy});
  }
  if (block.occupied_from >= 0 && eligible(block.occupied_from)) {
    out.push_back(
        {block.occupied_from, ChangeDirection::kUp, TruthClass::kOccupancy});
  }
  // CGNAT absorption ends the publicly visible population for good —
  // the same downward occupancy-loss signature as a vacate, so it
  // shares the occupancy truth class (and its scorecard tally).
  if (block.cgnat_at >= 0 && eligible(block.cgnat_at) &&
      occupied_at(block, block.cgnat_at - 1)) {
    out.push_back(
        {block.cgnat_at, ChangeDirection::kDown, TruthClass::kOccupancy});
  }

  std::sort(out.begin(), out.end(),
            [](const TruthInstance& a, const TruthInstance& b) {
              if (a.at != b.at) return a.at < b.at;
              return static_cast<int>(a.cls) < static_cast<int>(b.cls);
            });
  return out;
}

MatchResult match_block(std::span<const TruthInstance> truth,
                        std::span<const core::DetectedChange> changes,
                        const MatchOptions& opt, SimTime warmup_until) {
  MatchResult r;

  // Confirmed, trusted detections are match candidates; everything else
  // is tallied and set aside.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < changes.size(); ++i) {
    const auto& ch = changes[i];
    if (ch.filtered_as_outage) {
      ++r.outage_discards;
      continue;
    }
    if (!ch.counted()) continue;
    if (ch.low_evidence && !opt.trust_low_evidence) {
      ++r.low_evidence_excluded;
      continue;
    }
    if (ch.alarm < warmup_until) {
      ++r.warmup_excluded;
      continue;
    }
    candidates.push_back(i);
  }

  std::vector<bool> taken(candidates.size(), false);
  for (std::size_t ti = 0; ti < truth.size(); ++ti) {
    const auto& t = truth[ti];
    std::size_t best = candidates.size();
    std::int64_t best_abs = opt.match_window + 1;
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (taken[ci]) continue;
      const auto& ch = changes[candidates[ci]];
      if (ch.direction != t.direction) continue;
      const std::int64_t abs_off = std::llabs(ch.alarm - t.at);
      if (abs_off > opt.match_window) continue;
      // Nearest wins; ties break to the earlier alarm (candidates are
      // scanned in detection order, so strict < keeps the first).
      if (abs_off < best_abs) {
        best_abs = abs_off;
        best = ci;
      }
    }
    if (best < candidates.size()) {
      taken[best] = true;
      r.matched.push_back(
          {ti, candidates[best], changes[candidates[best]].alarm - t.at});
    } else {
      r.unmatched_truth.push_back(ti);
    }
  }
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    if (!taken[ci]) r.unmatched_changes.push_back(candidates[ci]);
  }
  return r;
}

}  // namespace diurnal::validate
