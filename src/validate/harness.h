// Scenario execution: one catalog entry -> full pipeline -> scorecard.
//
// Both fleet drives are supported so accuracy can gate the streaming
// engine too: the batch drive wraps core::run_fleet, the streaming
// drive chops the window into one-day epochs through
// core::StreamingFleet and finalizes.  The two must produce identical
// scorecards AND identical fleet digests for every scenario — that is
// the harness's own metamorphic gate, enforced by diurnal_validate and
// tests/test_validate.cc.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "validate/scenario.h"
#include "validate/scorecard.h"

namespace diurnal::validate {

enum class Drive { kBatch, kStreaming };

std::string_view to_string(Drive d) noexcept;

/// What one scenario run produced.
struct ScenarioRun {
  Scorecard score;
  std::uint64_t digest = 0;  ///< core::fleet_digest of the result
  core::FunnelCounts funnel{};
};

/// Runs a scenario end-to-end on a prebuilt world (must match
/// s.world).  threads 0 = hardware concurrency.  `explain`, when
/// non-null, collects per-block diagnostics (see ExplainEntry).
ScenarioRun run_scenario(const Scenario& s, const sim::World& world,
                         Drive drive, int threads = 0,
                         std::vector<ExplainEntry>* explain = nullptr);

/// Convenience: builds the world from s.world, then runs.
ScenarioRun run_scenario(const Scenario& s, Drive drive, int threads = 0);

/// Violations of the scenario's own expectations (zero-truth /
/// zero-confirmed controls, precision/recall floors).  Empty = pass.
std::vector<std::string> check_expectations(const Scenario& s,
                                            const ScenarioRun& run);

/// Fault-metamorphic invariants of a faulted variant against its clean
/// counterpart run: faults may only remove blocks from the scored set
/// (never add truth), must not push precision below the scenario's
/// floor, and — when faults_monotone_recall is set — may only lower
/// recall, never raise it.
std::vector<std::string> check_fault_invariants(const Scenario& faulted,
                                                const ScenarioRun& run,
                                                const ScenarioRun& clean_run);

}  // namespace diurnal::validate
