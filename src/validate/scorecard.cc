#include "validate/scorecard.h"

#include <cstdlib>

namespace diurnal::validate {

using util::SimTime;

int Scorecard::truth_total() const noexcept {
  int n = 0;
  for (const auto& c : classes) n += c.truth;
  return n;
}

int Scorecard::true_positive() const noexcept {
  int n = 0;
  for (const auto& c : classes) n += c.matched;
  return n;
}

int Scorecard::false_negative() const noexcept {
  int n = 0;
  for (const auto& c : classes) n += c.missed;
  return n;
}

std::optional<double> Scorecard::f1() const noexcept {
  const auto p = precision();
  const auto r = recall();
  if (!p || !r) return std::nullopt;
  if (*p + *r == 0.0) return std::nullopt;
  return 2.0 * *p * *r / (*p + *r);
}

std::optional<double> Scorecard::mean_abs_latency_days() const noexcept {
  std::int64_t sum = 0;
  int n = 0;
  for (const auto& c : classes) {
    sum += c.abs_latency_sum;
    n += c.matched;
  }
  const auto r = core::safe_ratio(sum, n);
  if (!r) return std::nullopt;
  return *r / static_cast<double>(util::kSecondsPerDay);
}

namespace {

/// True when t sits within the match window of a planted outage
/// interval's edge or a renumbering instant — the excursions the pair
/// filter exists to discard.
bool near_planted_artifact(const sim::BlockProfile& block, SimTime t,
                           std::int64_t window) {
  if (block.renumber_at >= 0 && std::llabs(t - block.renumber_at) <= window) {
    return true;
  }
  for (const auto& o : block.outages) {
    if (t >= o.start - window && t <= o.end + window) return true;
  }
  return false;
}

}  // namespace

std::string_view to_string(ExplainEntry::What w) noexcept {
  switch (w) {
    case ExplainEntry::What::kFalsePositive: return "false-positive";
    case ExplainEntry::What::kMissedTruth: return "missed-truth";
    case ExplainEntry::What::kDiscarded: return "discarded";
    case ExplainEntry::What::kLowEvidence: return "low-evidence";
    case ExplainEntry::What::kWarmup: return "warmup";
  }
  return "?";
}

void score_block(const sim::BlockProfile& block,
                 const core::BlockOutcome& outcome, probe::ProbeWindow window,
                 const MatchOptions& opt, Scorecard& card,
                 std::vector<ExplainEntry>* explain) {
  const bool diurnal_block = sim::is_diurnal_category(block.category) ||
                             block.category == sim::BlockCategory::kMixed;
  if (!outcome.cls.change_sensitive) {
    // Detection never ran here; planted truth is recall lost upstream.
    if (diurnal_block) {
      card.truth_outside_detection +=
          static_cast<int>(planted_truth(block, window, opt).size());
    }
    return;
  }

  ++card.blocks_scored;
  const auto truth = planted_truth(block, window, opt);
  // Alarms before this instant cannot match any eligible truth (truth
  // starts at window.start + min_truth_lead); they measure the
  // detector's cold start, not its steady-state precision.
  const SimTime warmup_until =
      window.start + opt.min_truth_lead - opt.match_window;
  const auto m = match_block(truth, outcome.changes, opt, warmup_until);

  card.outage_discards += m.outage_discards;
  card.low_evidence_excluded += m.low_evidence_excluded;
  card.warmup_excluded += m.warmup_excluded;
  for (const auto& pair : m.matched) {
    auto& tally = card.of(truth[pair.truth].cls);
    ++tally.truth;
    ++tally.matched;
    tally.abs_latency_sum += std::llabs(pair.offset);
  }
  for (const std::size_t ti : m.unmatched_truth) {
    auto& tally = card.of(truth[ti].cls);
    ++tally.truth;
    ++tally.missed;
    if (explain != nullptr) {
      explain->push_back({block.id, block.category,
                          ExplainEntry::What::kMissedTruth, truth[ti].at,
                          truth[ti].direction, 0.0, truth[ti].cls, false});
    }
  }
  for (const std::size_t ci : m.unmatched_changes) {
    ++card.false_positive;
    const auto& ch = outcome.changes[ci];
    const bool near =
        near_planted_artifact(block, ch.alarm, opt.match_window);
    if (near) ++card.fp_outage_artifact;
    if (explain != nullptr) {
      explain->push_back({block.id, block.category,
                          ExplainEntry::What::kFalsePositive, ch.alarm,
                          ch.direction, ch.amplitude_addresses,
                          TruthClass::kWfhOnset, near});
    }
  }
  if (explain != nullptr) {
    for (const auto& ch : outcome.changes) {
      if (ch.filtered_as_outage) {
        explain->push_back({block.id, block.category,
                            ExplainEntry::What::kDiscarded, ch.alarm,
                            ch.direction, ch.amplitude_addresses,
                            TruthClass::kWfhOnset,
                            near_planted_artifact(block, ch.alarm,
                                                  opt.match_window)});
      } else if (ch.counted() && ch.low_evidence && !opt.trust_low_evidence) {
        explain->push_back({block.id, block.category,
                            ExplainEntry::What::kLowEvidence, ch.alarm,
                            ch.direction, ch.amplitude_addresses,
                            TruthClass::kWfhOnset, false});
      } else if (ch.counted() && ch.alarm < warmup_until) {
        explain->push_back({block.id, block.category,
                            ExplainEntry::What::kWarmup, ch.alarm,
                            ch.direction, ch.amplitude_addresses,
                            TruthClass::kWfhOnset, false});
      }
    }
  }

  if (block.renumber_at >= window.start && block.renumber_at < window.end) {
    ++card.outage_pairs_planted;
  }
  for (const auto& o : block.outages) {
    if (o.start >= window.start && o.start < window.end) {
      ++card.outage_pairs_planted;
    }
  }
}

Scorecard score_fleet(const sim::World& world, const core::FleetResult& fleet,
                      probe::ProbeWindow window, const MatchOptions& opt,
                      std::vector<ExplainEntry>* explain) {
  Scorecard card;
  const auto& blocks = world.blocks();
  for (std::size_t i = 0; i < fleet.outcomes.size() && i < blocks.size();
       ++i) {
    score_block(blocks[i], fleet.outcomes[i], window, opt, card, explain);
  }
  return card;
}

}  // namespace diurnal::validate
