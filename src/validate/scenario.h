// The planted-truth scenario catalog.
//
// Each Scenario is a complete, seeded end-to-end experiment: a world
// whose event calendar is planted by the scenario itself (so the ground
// truth is known exactly), the dataset window to probe, an optional
// observer-fault scenario, and the accuracy expectations the harness
// gates on.  The catalog spans the event classes the paper validates —
// a WFH step, a week-long holiday dip, a geo-scoped curfew — plus the
// negatives (clean/quiet worlds that must stay silent), the
// outage-pair-discard stressor, faulted variants of the WFH step, and
// the golden-digest world that anchors accuracy runs to the perf gate.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/world.h"
#include "validate/matcher.h"

namespace diurnal::validate {

struct Scenario {
  std::string name;
  std::string title;  ///< one-line description for --list and docs

  sim::WorldConfig world;               ///< includes the planted calendar
  std::string dataset = "2020m1-ejnw";  ///< analysis-window abbreviation
  std::string fault_scenario = "none";  ///< fault::scenario() name
  MatchOptions match{};

  /// Probe with the section 2.8 additional-observations site (6-hour
  /// full-block refresh).  Without it, adaptive probing alone produces
  /// two measurement artifacts that register as false activity changes:
  /// a days-long discovery ramp from the all-unknown initial state (a
  /// spurious up-trend) and a slow coverage decay as the observers'
  /// stop-on-first-positive cursors cluster behind active addresses (a
  /// spurious down-trend).  Accuracy scenarios therefore probe the way
  /// the paper's activity datasets do; golden_mix turns this off to
  /// stay bit-identical with the perf-gate digest.
  bool additional_observations = true;

  /// Enable the detector's raw-volume corroboration cross-check (the
  /// DST/timezone filter, DetectorOptions::phase_shift_filter).  Off by
  /// default so pre-existing scenarios keep their exact scorecards; DST
  /// scenarios turn it on, since a clock shift perturbs the globally
  /// fitted STL trend without moving any real activity volume.
  bool phase_shift_filter = false;

  // Expectations the harness enforces on every run (0 disables a floor).
  bool expect_zero_truth = false;      ///< negative control: nothing planted
  bool expect_zero_confirmed = false;  ///< and nothing may be detected
  double precision_floor = 0.0;        ///< undefined precision passes
  double recall_floor = 0.0;
  /// Minimum planted-truth instants that must land on blocks the
  /// classifier rejected (truth_outside_detection).  Masking scenarios
  /// use this to prove the planted effect is real but structurally
  /// invisible: a CGNAT fade strips a block's diurnality mid-window, so
  /// the section 3.2.2 per-segment strictness gate sheds it from the
  /// change-sensitive set before detection ever sees it.
  int truth_outside_floor = 0;
  /// Clean counterpart for faulted variants: recall must not exceed the
  /// counterpart's (faults can only lose evidence, never invent onsets).
  std::string clean_counterpart;
  /// Enforce that recall bound.  It only holds for evidence-destroying
  /// faults (dropout, bursts, truncate): skew-class faults *relocate*
  /// evidence in time, which can push an alarm across the edge of the
  /// quantized +-4-day window in either direction — occasionally turning
  /// a clean-run miss into a faulted-run match.  Scenarios whose fault
  /// mix includes skew (meltdown) turn this off and rely on the
  /// precision floor alone.
  bool faults_monotone_recall = true;
};

/// The full catalog, in run order (clean scenarios precede the faulted
/// variants that reference them).
const std::vector<Scenario>& catalog();

/// Lookup by name; nullptr if unknown.
const Scenario* find_scenario(std::string_view name);

}  // namespace diurnal::validate
