#include "validate/baseline.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace diurnal::validate {

ScenarioRecord make_record(const Scorecard& score, std::uint64_t digest) {
  ScenarioRecord r;
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  r.digest = buf;
  r.score = score;
  r.precision = score.precision();
  r.recall = score.recall();
  r.f1 = score.f1();
  r.mean_abs_latency_days = score.mean_abs_latency_days();
  return r;
}

const ScenarioRecord* Baseline::find(std::string_view name) const {
  for (const auto& [n, rec] : scenarios) {
    if (n == name) return &rec;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

namespace {

std::string num(std::optional<double> v) {
  if (!v) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", *v);
  return buf;
}

void emit_class(std::string& out, const char* indent, TruthClass c,
                const ClassTally& t, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s\"%s\": {\"truth\": %d, \"matched\": %d, \"missed\": %d, "
                "\"abs_latency_seconds\": %lld, "
                "\"mean_abs_latency_days\": %s}%s\n",
                indent, std::string(to_string(c)).c_str(), t.truth, t.matched,
                t.missed, static_cast<long long>(t.abs_latency_sum),
                num(t.mean_abs_latency_days()).c_str(), last ? "" : ",");
  out += buf;
}

}  // namespace

std::string to_json(const Baseline& b) {
  std::string out = "{\n";
  out += "  \"schema\": \"diurnal-validate-v1\",\n";
  out += "  \"match_window_days\": " + std::to_string(b.match_window_days) +
         ",\n";
  out += "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < b.scenarios.size(); ++i) {
    const auto& [name, r] = b.scenarios[i];
    const auto& s = r.score;
    char buf[640];
    out += "    \"" + name + "\": {\n";
    out += "      \"digest\": \"" + r.digest + "\",\n";
    std::snprintf(
        buf, sizeof buf,
        "      \"blocks_scored\": %d,\n"
        "      \"truth\": %d, \"true_positive\": %d, "
        "\"false_negative\": %d, \"false_positive\": %d,\n"
        "      \"fp_outage_artifact\": %d,\n"
        "      \"outage_pairs_planted\": %d, \"outage_discards\": %d,\n"
        "      \"low_evidence_excluded\": %d, "
        "\"truth_outside_detection\": %d,\n"
        "      \"warmup_excluded\": %d,\n",
        s.blocks_scored, s.truth_total(), s.true_positive(),
        s.false_negative(), s.false_positive, s.fp_outage_artifact,
        s.outage_pairs_planted, s.outage_discards, s.low_evidence_excluded,
        s.truth_outside_detection, s.warmup_excluded);
    out += buf;
    out += "      \"precision\": " + num(r.precision) + ",\n";
    out += "      \"recall\": " + num(r.recall) + ",\n";
    out += "      \"f1\": " + num(r.f1) + ",\n";
    out += "      \"mean_abs_latency_days\": " +
           num(r.mean_abs_latency_days) + ",\n";
    out += "      \"classes\": {\n";
    for (std::size_t c = 0; c < kNumTruthClasses; ++c) {
      emit_class(out, "        ", static_cast<TruthClass>(c), s.classes[c],
                 c + 1 == kNumTruthClasses);
    }
    out += "      }\n";
    out += i + 1 == b.scenarios.size() ? "    }\n" : "    },\n";
  }
  out += "  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser: the minimal JSON subset to_json emits (objects, strings,
// numbers, booleans, null).  No external dependency, no arrays.
// ---------------------------------------------------------------------------

namespace {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kObject } kind = kNull;
  bool b = false;
  double number = 0.0;
  std::string str;
  std::vector<std::pair<std::string, Value>> members;

  const Value* get(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    const Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("baseline JSON: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') fail("escapes unsupported");
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  Value value() {
    const char c = peek();
    Value v;
    if (c == '{') {
      v.kind = Value::kObject;
      ++pos_;
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        std::string key = string();
        expect(':');
        v.members.emplace_back(std::move(key), value());
        const char d = peek();
        if (d == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '"') {
      v.kind = Value::kString;
      v.str = string();
      return v;
    }
    skip_ws();
    if (consume_literal("null")) return v;
    if (consume_literal("true")) {
      v.kind = Value::kBool;
      v.b = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = Value::kBool;
      return v;
    }
    // Number.
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("unexpected character");
    v.kind = Value::kNumber;
    v.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int require_int(const Value& obj, std::string_view key) {
  const Value* v = obj.get(key);
  if (v == nullptr || v->kind != Value::kNumber) {
    throw std::runtime_error("baseline JSON: missing numeric field '" +
                             std::string(key) + "'");
  }
  return static_cast<int>(v->number);
}

std::optional<double> optional_rate(const Value& obj, std::string_view key) {
  const Value* v = obj.get(key);
  if (v == nullptr || v->kind == Value::kNull) return std::nullopt;
  if (v->kind != Value::kNumber) {
    throw std::runtime_error("baseline JSON: field '" + std::string(key) +
                             "' is not a number");
  }
  return v->number;
}

}  // namespace

Baseline parse_baseline(const std::string& text) {
  const Value root = Parser(text).parse();
  if (root.kind != Value::kObject) {
    throw std::runtime_error("baseline JSON: root is not an object");
  }
  const Value* schema = root.get("schema");
  if (schema == nullptr || schema->str != "diurnal-validate-v1") {
    throw std::runtime_error("baseline JSON: unknown schema");
  }

  Baseline b;
  b.match_window_days = require_int(root, "match_window_days");
  const Value* scenarios = root.get("scenarios");
  if (scenarios == nullptr || scenarios->kind != Value::kObject) {
    throw std::runtime_error("baseline JSON: missing scenarios object");
  }
  for (const auto& [name, sv] : scenarios->members) {
    if (sv.kind != Value::kObject) {
      throw std::runtime_error("baseline JSON: scenario '" + name +
                               "' is not an object");
    }
    ScenarioRecord r;
    const Value* digest = sv.get("digest");
    if (digest == nullptr || digest->kind != Value::kString) {
      throw std::runtime_error("baseline JSON: scenario '" + name +
                               "' missing digest");
    }
    r.digest = digest->str;
    auto& s = r.score;
    s.blocks_scored = require_int(sv, "blocks_scored");
    s.false_positive = require_int(sv, "false_positive");
    s.fp_outage_artifact = require_int(sv, "fp_outage_artifact");
    s.outage_pairs_planted = require_int(sv, "outage_pairs_planted");
    s.outage_discards = require_int(sv, "outage_discards");
    s.low_evidence_excluded = require_int(sv, "low_evidence_excluded");
    s.truth_outside_detection = require_int(sv, "truth_outside_detection");
    s.warmup_excluded = require_int(sv, "warmup_excluded");
    r.precision = optional_rate(sv, "precision");
    r.recall = optional_rate(sv, "recall");
    r.f1 = optional_rate(sv, "f1");
    r.mean_abs_latency_days = optional_rate(sv, "mean_abs_latency_days");

    const Value* classes = sv.get("classes");
    if (classes == nullptr || classes->kind != Value::kObject) {
      throw std::runtime_error("baseline JSON: scenario '" + name +
                               "' missing classes");
    }
    for (std::size_t c = 0; c < kNumTruthClasses; ++c) {
      const auto cls = static_cast<TruthClass>(c);
      const Value* cv = classes->get(to_string(cls));
      if (cv == nullptr || cv->kind != Value::kObject) {
        throw std::runtime_error("baseline JSON: scenario '" + name +
                                 "' missing class '" +
                                 std::string(to_string(cls)) + "'");
      }
      auto& t = s.classes[c];
      t.truth = require_int(*cv, "truth");
      t.matched = require_int(*cv, "matched");
      t.missed = require_int(*cv, "missed");
      t.abs_latency_sum = require_int(*cv, "abs_latency_seconds");
    }
    b.scenarios.emplace_back(name, std::move(r));
  }
  return b;
}

// ---------------------------------------------------------------------------
// Comparator.
// ---------------------------------------------------------------------------

namespace {

void check_int(std::vector<Mismatch>& out, const std::string& scenario,
               const std::string& field, std::int64_t expected,
               std::int64_t actual) {
  if (expected != actual) {
    out.push_back({scenario, field, std::to_string(expected),
                   std::to_string(actual)});
  }
}

void check_rate(std::vector<Mismatch>& out, const std::string& scenario,
                const std::string& field, std::optional<double> expected,
                std::optional<double> actual, double eps) {
  const bool differs =
      expected.has_value() != actual.has_value() ||
      (expected && std::fabs(*expected - *actual) > eps);
  if (differs) {
    out.push_back({scenario, field, expected ? num(expected) : "null",
                   actual ? num(actual) : "null"});
  }
}

}  // namespace

std::vector<Mismatch> compare_to_baseline(const Baseline& baseline,
                                          const Baseline& current,
                                          double rate_epsilon,
                                          std::string_view only) {
  std::vector<Mismatch> out;
  for (const auto& [name, want] : baseline.scenarios) {
    if (!only.empty() && name != only) continue;
    const ScenarioRecord* got = current.find(name);
    if (got == nullptr) {
      out.push_back({name, "scenario", "present", "missing from run"});
      continue;
    }
    if (want.digest != got->digest) {
      out.push_back({name, "digest", want.digest, got->digest});
    }
    const auto& w = want.score;
    const auto& g = got->score;
    check_int(out, name, "blocks_scored", w.blocks_scored, g.blocks_scored);
    check_int(out, name, "false_positive", w.false_positive, g.false_positive);
    check_int(out, name, "fp_outage_artifact", w.fp_outage_artifact,
              g.fp_outage_artifact);
    check_int(out, name, "outage_pairs_planted", w.outage_pairs_planted,
              g.outage_pairs_planted);
    check_int(out, name, "outage_discards", w.outage_discards,
              g.outage_discards);
    check_int(out, name, "low_evidence_excluded", w.low_evidence_excluded,
              g.low_evidence_excluded);
    check_int(out, name, "truth_outside_detection", w.truth_outside_detection,
              g.truth_outside_detection);
    check_int(out, name, "warmup_excluded", w.warmup_excluded,
              g.warmup_excluded);
    for (std::size_t c = 0; c < kNumTruthClasses; ++c) {
      const std::string prefix =
          std::string(to_string(static_cast<TruthClass>(c))) + ".";
      check_int(out, name, prefix + "truth", w.classes[c].truth,
                g.classes[c].truth);
      check_int(out, name, prefix + "matched", w.classes[c].matched,
                g.classes[c].matched);
      check_int(out, name, prefix + "missed", w.classes[c].missed,
                g.classes[c].missed);
      check_int(out, name, prefix + "abs_latency_seconds",
                w.classes[c].abs_latency_sum, g.classes[c].abs_latency_sum);
    }
    check_rate(out, name, "precision", want.precision, got->precision,
               rate_epsilon);
    check_rate(out, name, "recall", want.recall, got->recall, rate_epsilon);
    check_rate(out, name, "f1", want.f1, got->f1, rate_epsilon);
    check_rate(out, name, "mean_abs_latency_days", want.mean_abs_latency_days,
               got->mean_abs_latency_days, rate_epsilon);
  }
  if (only.empty()) {
    for (const auto& [name, rec] : current.scenarios) {
      if (baseline.find(name) == nullptr) {
        out.push_back({name, "scenario", "absent from baseline",
                       "present in run (update the baseline)"});
      }
    }
  }
  return out;
}

}  // namespace diurnal::validate
