// Truth matching for the accuracy-validation harness.
//
// The paper's validation (sections 3.6, 3.7, Table 5) scores detected
// CUSUM changes against documented event dates: a detection counts when
// it lands within +-4 days of the ground truth.  Here the ground truth
// is exact — the scenario worlds plant their event calendars — so the
// harness enumerates every planted change instant per block and matches
// detections to them greedily, one-to-one, direction-aware.  Everything
// downstream (scorecards, golden baselines, CI gates) rests on this
// matching rule staying fixed.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/detect.h"
#include "probe/prober.h"
#include "sim/block_profile.h"
#include "util/date.h"

namespace diurnal::validate {

/// Event classes scored separately (each gets its own recall/latency
/// column in the scorecard).
enum class TruthClass : std::uint8_t {
  kWfhOnset,    ///< WFH order empties an office/university/mixed block
  kHolidayDip,  ///< bounded holiday dip (and its recovery)
  kCurfew,      ///< curfew/unrest stay-home period (geo-scoped)
  kHomeShift,   ///< WFH *raises* daytime presence on home-dynamic blocks
  kOccupancy,   ///< occupancy churn: block vacated or newly populated
};

inline constexpr std::size_t kNumTruthClasses = 5;

std::string_view to_string(TruthClass c) noexcept;

struct MatchOptions {
  /// The paper's +-4-day rule.  Inclusive: an offset of exactly four
  /// days still matches.
  std::int64_t match_window = 4 * util::kSecondsPerDay;
  /// Truth earlier than this lead from the window start is not scored:
  /// STL/CUSUM need a seasonal baseline before an onset can register,
  /// so a day-two event would count as a miss without measuring the
  /// detector.
  std::int64_t min_truth_lead = 7 * util::kSecondsPerDay;
  /// Score detections annotated low_evidence (mirrors
  /// core::ValidationConfig::trust_low_evidence; off so faults cannot
  /// buy precision from coverage gaps).
  bool trust_low_evidence = false;
  /// Enumerate the recovery (opposite-direction) instant at the end of
  /// bounded dips that outlive the outage-pair filter, so the up-change
  /// a holiday's end produces is truth, not a false positive.
  bool match_recovery = true;
  /// Dips shorter than this recover inside the outage-pair filter's
  /// reach; their recovery is not scored as separate truth.
  std::int64_t recovery_min_duration = 3 * util::kSecondsPerDay;
};

/// One planted change instant a detector should find.
struct TruthInstance {
  util::SimTime at = 0;
  analysis::ChangeDirection direction = analysis::ChangeDirection::kDown;
  TruthClass cls = TruthClass::kWfhOnset;
};

/// Enumerates the planted truth of one block inside the probing window,
/// sorted by time: suppression onsets (down, or up for home blocks under
/// WFH), recoveries of long dips, vacate instants, and occupancy-window
/// boundaries.  Instants outside [start + min_truth_lead,
/// end - match_window] are omitted, as are suppressions starting while
/// the block was unoccupied.  Whole-block outages and renumbering are
/// NOT truth — the pipeline must discard those as paired excursions.
std::vector<TruthInstance> planted_truth(const sim::BlockProfile& block,
                                         probe::ProbeWindow window,
                                         const MatchOptions& opt = {});

/// Greedy one-to-one matching of detections to truth.
struct MatchResult {
  struct Pair {
    std::size_t truth = 0;       ///< index into the truth span
    std::size_t change = 0;      ///< index into the changes span
    std::int64_t offset = 0;     ///< alarm - truth time (signed seconds)
  };
  std::vector<Pair> matched;                  ///< one entry per true positive
  std::vector<std::size_t> unmatched_truth;   ///< false negatives
  std::vector<std::size_t> unmatched_changes; ///< confirmed but unexplained
  int low_evidence_excluded = 0;  ///< confirmed changes skipped as untrusted
  int outage_discards = 0;        ///< changes the pair filter discarded
  /// Confirmed changes alarming before the warm-up cutoff (see
  /// match_block): cold-start artifacts, set aside rather than scored.
  int warmup_excluded = 0;
};

/// Matches confirmed (counted, trusted) detections against planted
/// truth.  Truth instances are visited in time order; each takes the
/// nearest unmatched same-direction detection within +-match_window
/// (ties: earlier alarm).  A detection matches at most one truth and
/// vice versa, so a single alarm can never satisfy two planted events.
///
/// `warmup_until` (0 = disabled) is the cold-start cutoff: truth is only
/// eligible from window.start + min_truth_lead, so an alarm before
/// (that - match_window) can never match any truth and measures the
/// detector's cold start (no seasonal baseline yet) rather than its
/// steady-state precision.  Such alarms are tallied as warmup_excluded
/// instead of false positives — and pinned in the golden baseline, so a
/// regression in cold-start behaviour still fails the gate.
MatchResult match_block(std::span<const TruthInstance> truth,
                        std::span<const core::DetectedChange> changes,
                        const MatchOptions& opt = {},
                        util::SimTime warmup_until = 0);

}  // namespace diurnal::validate
