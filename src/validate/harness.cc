#include "validate/harness.h"

#include <algorithm>
#include <cstdio>

#include "core/digest.h"
#include "core/streaming.h"
#include "fault/fault_plan.h"

namespace diurnal::validate {

std::string_view to_string(Drive d) noexcept {
  return d == Drive::kBatch ? "batch" : "streaming";
}

namespace {

core::FleetConfig fleet_config(const Scenario& s, int threads) {
  core::FleetConfig fc;
  fc.dataset = core::dataset(s.dataset);
  fc.additional_observations = s.additional_observations;
  fc.detector.phase_shift_filter = s.phase_shift_filter;
  fc.threads = threads;
  if (s.fault_scenario != "none" && !s.fault_scenario.empty()) {
    fc.faults = fault::scenario(s.fault_scenario, fc.dataset.window());
  }
  return fc;
}

std::string pct(std::optional<double> v) {
  if (!v) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", *v * 100.0);
  return buf;
}

}  // namespace

ScenarioRun run_scenario(const Scenario& s, const sim::World& world,
                         Drive drive, int threads,
                         std::vector<ExplainEntry>* explain) {
  const auto fc = fleet_config(s, threads);
  core::FleetResult fleet;
  if (drive == Drive::kBatch) {
    fleet = core::run_fleet(world, fc);
  } else {
    core::StreamingFleet engine(world, fc);
    const std::int64_t epoch = util::kSecondsPerDay;
    for (util::SimTime t = engine.window_start() + epoch;; t += epoch) {
      const auto bounded = std::min(t, engine.window_end());
      engine.advance_to(bounded);
      if (bounded == engine.window_end()) break;
    }
    fleet = engine.finalize();
  }

  ScenarioRun run;
  run.digest = core::fleet_digest(fleet);
  run.funnel = fleet.funnel;
  run.score = score_fleet(world, fleet, fc.dataset.window(), s.match, explain);
  return run;
}

ScenarioRun run_scenario(const Scenario& s, Drive drive, int threads) {
  const sim::World world(s.world);
  return run_scenario(s, world, drive, threads);
}

std::vector<std::string> check_expectations(const Scenario& s,
                                            const ScenarioRun& run) {
  std::vector<std::string> out;
  const auto& c = run.score;
  if (s.expect_zero_truth && c.truth_total() + c.truth_outside_detection > 0) {
    out.push_back(s.name + ": expected zero planted truth, found " +
                  std::to_string(c.truth_total() + c.truth_outside_detection));
  }
  if (s.expect_zero_confirmed &&
      c.true_positive() + c.false_positive + c.low_evidence_excluded > 0) {
    out.push_back(s.name + ": negative control detected " +
                  std::to_string(c.true_positive() + c.false_positive) +
                  " confirmed change(s) (+" +
                  std::to_string(c.low_evidence_excluded) + " low-evidence)");
  }
  if (s.precision_floor > 0.0) {
    const auto p = c.precision();
    if (p && *p < s.precision_floor) {
      out.push_back(s.name + ": precision " + pct(p) + " below floor " +
                    pct(s.precision_floor));
    }
  }
  if (s.recall_floor > 0.0) {
    const auto r = c.recall();
    if (!r || *r < s.recall_floor) {
      out.push_back(s.name + ": recall " + pct(r) + " below floor " +
                    pct(s.recall_floor));
    }
  }
  if (s.truth_outside_floor > 0 &&
      c.truth_outside_detection < s.truth_outside_floor) {
    out.push_back(s.name + ": only " +
                  std::to_string(c.truth_outside_detection) +
                  " truth instant(s) outside detection, floor " +
                  std::to_string(s.truth_outside_floor));
  }
  return out;
}

std::vector<std::string> check_fault_invariants(const Scenario& faulted,
                                                const ScenarioRun& run,
                                                const ScenarioRun& clean_run) {
  std::vector<std::string> out;
  // Observer faults can only degrade blocks out of the scored set, never
  // add to it: the worlds are seeded identically, so more scored truth
  // under faults means the harness scored blocks it should not have.
  if (run.score.truth_total() > clean_run.score.truth_total()) {
    out.push_back(faulted.name + ": faulted run scored " +
                  std::to_string(run.score.truth_total()) +
                  " truth instance(s), clean counterpart only " +
                  std::to_string(clean_run.score.truth_total()) +
                  " (faults cannot add scored blocks)");
  }
  const auto rf = run.score.recall();
  const auto rc = clean_run.score.recall();
  if (faulted.faults_monotone_recall && rf && rc && *rf > *rc) {
    out.push_back(faulted.name + ": faulted recall " + pct(rf) +
                  " exceeds clean counterpart's " + pct(rc) +
                  " (faults cannot create evidence)");
  }
  if (faulted.precision_floor > 0.0) {
    const auto p = run.score.precision();
    if (p && *p < faulted.precision_floor) {
      out.push_back(faulted.name + ": faulted precision " + pct(p) +
                    " below floor " + pct(faulted.precision_floor));
    }
  }
  return out;
}

}  // namespace diurnal::validate
