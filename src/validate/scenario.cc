#include "validate/scenario.h"

#include "geo/gridcell.h"
#include "util/date.h"

namespace diurnal::validate {

namespace {

using util::Date;
using util::time_of;

// All synthetic scenarios probe 2020m1 (Jan 1 .. Jan 29): long enough
// for two STL periods of baseline before a mid-January event, short
// enough that the whole catalog runs in CI time.  Events are planted
// inside [start + 7d, end - 4d] so they are eligible truth.
constexpr char kDataset[] = "2020m1-ejnw";

/// A world whose ONLY activity changes are the planted calendar events:
/// no occupancy churn, no outages, no renumbering, no special-case
/// blocks, and a boosted diurnal share so a few hundred blocks yield a
/// statistically useful population of change-sensitive ones.
sim::WorldConfig quiet_world(std::uint64_t seed, int blocks,
                             const char* only_country) {
  sim::WorldConfig w;
  w.seed = seed;
  w.num_blocks = blocks;
  w.include_special_blocks = false;
  if (only_country != nullptr) w.only_country = only_country;
  w.diurnal_scale = 0.30;
  w.occupancy_churn = 0.0;
  w.stable_population = true;
  w.outage_rate_per_90d = 0.0;
  w.renumber_probability = 0.0;
  w.quiet_calendar = true;  // scenarios plant calendars explicitly
  return w;
}

sim::Event wfh(const char* cc, Date start, double adoption) {
  sim::Event e;
  e.kind = sim::EventKind::kWorkFromHome;
  e.name = std::string("planted-wfh-") + cc;
  e.scope.country_code = cc;
  e.start = time_of(start);
  e.end = time_of(2020, 7, 1);  // persists past the analysis window
  e.adoption = adoption;
  e.residual_attendance = 0.10;
  return e;
}

sim::Event holiday(const char* cc, Date start, Date end, double adoption) {
  sim::Event e;
  e.kind = sim::EventKind::kHoliday;
  e.name = std::string("planted-holiday-") + cc;
  e.scope.country_code = cc;
  e.start = time_of(start);
  e.end = time_of(end);
  e.adoption = adoption;
  e.residual_attendance = 0.08;
  return e;
}

sim::Event curfew(const char* cc, geo::GridCell cell, Date start, Date end,
                  double adoption) {
  sim::Event e;
  e.kind = sim::EventKind::kCurfewUnrest;
  e.name = std::string("planted-curfew-") + cc;
  e.scope.country_code = cc;
  e.scope.cell = cell;
  e.start = time_of(start);
  e.end = time_of(end);
  e.adoption = adoption;
  e.residual_attendance = 0.15;
  return e;
}

std::vector<Scenario> build_catalog() {
  std::vector<Scenario> v;

  {
    Scenario s;
    s.name = "clean_diurnal";
    s.title = "healthy diurnal world, no events planted: must stay silent";
    s.world = quiet_world(101, 400, "US");
    s.dataset = kDataset;
    s.expect_zero_truth = true;
    s.expect_zero_confirmed = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_step";
    s.title = "nationwide WFH step on 2020-01-15 (office/university drop)";
    s.world = quiet_world(102, 500, "US");
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.precision_floor = 0.8;
    s.recall_floor = 0.4;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "holiday_dip";
    s.title = "week-long holiday Jan 12-19 (dip and recovery both truth)";
    s.world = quiet_world(103, 500, "CN");
    s.world.calendar.push_back(
        holiday("CN", Date{2020, 1, 12}, Date{2020, 1, 19}, 0.9));
    s.dataset = kDataset;
    s.precision_floor = 0.8;
    // Recall here is bounded by the raw-outage cross-check: a deep
    // week-long dip flickers above the blackout threshold, producing
    // short bounded low-runs that straddle the down/up excursion pair,
    // so the section 2.6 filter discards many genuine dip+recovery
    // detections (98 of them in the baseline run).  The paper has the
    // same tension — its outage filter trades holiday recall for outage
    // precision — so the floor reflects the pipeline as specified, not a
    // harness defect.
    s.recall_floor = 0.35;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "curfew_geo";
    s.title = "curfew scoped to the Delhi gridcell: truth only in-cell";
    s.world = quiet_world(104, 600, "IN");
    s.world.calendar.push_back(curfew("IN", geo::GridCell::of(28.6, 77.2),
                                      Date{2020, 1, 12}, Date{2020, 1, 19},
                                      0.6));
    s.dataset = kDataset;
    // Dense single-city worlds detect plenty of sub-threshold activity
    // shifts in the out-of-cell population (measured ~72% precision /
    // 66% recall); the floors bound regression, not the paper's
    // country-scale figures.
    s.precision_floor = 0.65;
    s.recall_floor = 0.5;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "paired_outage";
    s.title = "outage/renumbering storm, no events: pair filter must absorb";
    s.world = quiet_world(105, 400, "US");
    // Compress the horizon around the analysis window so the planted
    // outages and renumberings actually land inside it (by default they
    // are drawn across nine months and mostly miss the four probed
    // weeks), and renumber nearly every block: this is the scenario that
    // exercises the section 2.6 pair-discard path.
    s.world.horizon_start = time_of(2020, 1, 1);
    s.world.horizon_end = time_of(2020, 2, 15);
    s.world.outage_rate_per_90d = 12.0;
    s.world.renumber_probability = 0.9;
    s.dataset = kDataset;
    s.expect_zero_truth = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_dropout";
    s.title = "the WFH step probed by a fleet losing one observer";
    s.world = quiet_world(102, 500, "US");  // identical to wfh_step
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.fault_scenario = "dropout";
    s.precision_floor = 0.7;
    s.clean_counterpart = "wfh_step";
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_bursts";
    s.title = "the WFH step probed through bursty loss (evidence destroyed)";
    s.world = quiet_world(102, 500, "US");  // identical to wfh_step
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.fault_scenario = "bursts";
    s.precision_floor = 0.7;
    s.clean_counterpart = "wfh_step";
    // Bursty loss degrades whole blocks out of the scored set, so the
    // recall *ratio* is computed over a different denominator than the
    // clean run's and is not comparable; the scored-truth bound still
    // applies (see check_fault_invariants).
    s.faults_monotone_recall = false;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_meltdown";
    s.title = "the WFH step under every fault class at once";
    s.world = quiet_world(102, 500, "US");  // identical to wfh_step
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.fault_scenario = "meltdown";
    s.precision_floor = 0.7;
    s.clean_counterpart = "wfh_step";
    // Meltdown includes skew faults, which relocate rather than destroy
    // evidence; the recall bound does not hold (see Scenario).
    s.faults_monotone_recall = false;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "quiet_calendar";
    s.title = "default world mix, quiet calendar: the negative control";
    s.world = quiet_world(107, 600, nullptr);
    // Keep the default world's measurement noise — outages and
    // renumbering still happen — but plant no human-activity events, so
    // any confirmed change is threshold drift by construction.
    s.world.diurnal_scale = 0.055;
    s.world.outage_rate_per_90d = 0.06;
    s.world.renumber_probability = 0.015;
    s.dataset = kDataset;
    s.expect_zero_truth = true;
    s.expect_zero_confirmed = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "dst_transition";
    s.title = "US DST spring-forward inside the window: must stay silent";
    s.world = quiet_world(151, 300, "US");
    sim::CountryLayerOverride dst;
    dst.code = "US";
    dst.dst = geo::DstPolicy::kNorthern;
    s.world.country_layers.push_back(std::move(dst));
    s.phase_shift_filter = true;
    // A full quarter so the 2020-03-08 spring-forward (and the hour it
    // shifts every local schedule by) sits mid-window with settled
    // baselines on both sides.  A one-hour phase shift must not read as
    // an activity change.
    s.dataset = "2020q1-ejnw";
    s.expect_zero_truth = true;
    s.expect_zero_confirmed = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_ramp";
    s.title = "WFH adoption ramped over ten days instead of a step";
    s.world = quiet_world(109, 500, "US");
    sim::Event e = wfh("US", Date{2020, 1, 12}, 0.65);
    // Spread per-block onsets uniformly over Jan 12-22 (all inside the
    // eligible-truth span) instead of the step's +-2-day jitter: the
    // gradual version of wfh_step, scored against per-block onsets.
    e.ramp_days = 10;
    s.world.calendar.push_back(std::move(e));
    s.dataset = kDataset;
    s.precision_floor = 0.8;
    s.recall_floor = 0.4;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "overlap_geo";
    s.title = "curfew and holiday overlapping in the Delhi gridcell";
    s.world = quiet_world(110, 600, "IN");
    s.world.calendar.push_back(curfew("IN", geo::GridCell::of(28.6, 77.2),
                                      Date{2020, 1, 10}, Date{2020, 1, 17},
                                      0.6));
    s.world.calendar.push_back(
        holiday("IN", Date{2020, 1, 14}, Date{2020, 1, 21}, 0.8));
    s.dataset = kDataset;
    // In-cell blocks that adopt both events carry four truth instants
    // within eleven days; the second onset moves residual attendance
    // from 0.15 to 0.08 (nearly invisible) and the first recovery is
    // masked by the still-active holiday, so recall is structurally
    // bounded well below the single-event scenarios.
    s.precision_floor = 0.6;
    s.recall_floor = 0.25;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "cgnat_fade";
    s.title = "CGNAT growth absorbs blocks: diurnality fades to gateways";
    s.world = quiet_world(111, 600, "US");
    sim::CountryLayerOverride cg;
    cg.code = "US";
    cg.cgnat_trend_per_year = 1.0;  // migrations spread over the horizon
    s.world.country_layers.push_back(std::move(cg));
    // Probe the full quarter over the default nine-month horizon.  A
    // mid-window CGNAT absorption strips the block's diurnality, so the
    // section 3.2.2 per-segment strictness gate (DiurnalOptions::
    // segment_days) sheds it from the change-sensitive set before the
    // detector ever sees it: the conversions are real but structurally
    // invisible.  The scenario therefore asserts the masking itself —
    // a healthy crop of planted conversions routed to
    // truth_outside_detection, and zero confirmed detections anywhere
    // (a fade must not surface as a spurious activity change on the
    // blocks that survive classification).
    s.dataset = "2020q1-ejnw";
    s.expect_zero_confirmed = true;
    s.truth_outside_floor = 10;  // measured: 16 masked conversions
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "multiyear_seasonal";
    s.title = "second January of a multi-year world: annual holiday recurs";
    s.world = quiet_world(112, 400, "US");
    s.world.horizon_start = time_of(2020, 1, 1);
    s.world.horizon_end = time_of(2021, 7, 1);
    sim::CountryLayerOverride hol;
    hol.code = "US";
    geo::AnnualHoliday h;
    h.name = "planted-annual";
    h.month = 1;
    h.day = 12;
    h.duration_days = 7;
    h.adoption = 0.9;
    h.residual_attendance = 0.08;
    hol.holidays.push_back(std::move(h));
    s.world.country_layers.push_back(std::move(hol));
    // Probe the SECOND year's instance: the 2020 recurrence is history
    // by the analysis window, so detection rests on the annual-holiday
    // materialization being correct across year boundaries.
    s.dataset = "2021m1-ejnw";
    // Like holiday_dip, the recovery edge of a week-long dip pairs up
    // with its own onset under the outage-discard heuristic, so a
    // third of the matched pairs are discarded before scoring; the
    // floors account for that structural recall ceiling.
    s.precision_floor = 0.7;
    s.recall_floor = 0.2;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "golden_mix";
    s.title = "the golden-digest world (real calendar): perf/accuracy anchor";
    s.world = sim::WorldConfig{};  // the bench_fleet reference world
    s.world.seed = 1;
    s.world.num_blocks = 2000;
    s.dataset = kDataset;
    // Default pipeline config, so the digest matches the perf gate's.
    s.additional_observations = false;
    v.push_back(std::move(s));
  }
  return v;
}

}  // namespace

const std::vector<Scenario>& catalog() {
  static const std::vector<Scenario> v = build_catalog();
  return v;
}

const Scenario* find_scenario(std::string_view name) {
  for (const auto& s : catalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace diurnal::validate
