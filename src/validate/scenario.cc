#include "validate/scenario.h"

#include "geo/gridcell.h"
#include "util/date.h"

namespace diurnal::validate {

namespace {

using util::Date;
using util::time_of;

// All synthetic scenarios probe 2020m1 (Jan 1 .. Jan 29): long enough
// for two STL periods of baseline before a mid-January event, short
// enough that the whole catalog runs in CI time.  Events are planted
// inside [start + 7d, end - 4d] so they are eligible truth.
constexpr char kDataset[] = "2020m1-ejnw";

/// A world whose ONLY activity changes are the planted calendar events:
/// no occupancy churn, no outages, no renumbering, no special-case
/// blocks, and a boosted diurnal share so a few hundred blocks yield a
/// statistically useful population of change-sensitive ones.
sim::WorldConfig quiet_world(std::uint64_t seed, int blocks,
                             const char* only_country) {
  sim::WorldConfig w;
  w.seed = seed;
  w.num_blocks = blocks;
  w.include_special_blocks = false;
  if (only_country != nullptr) w.only_country = only_country;
  w.diurnal_scale = 0.30;
  w.occupancy_churn = 0.0;
  w.stable_population = true;
  w.outage_rate_per_90d = 0.0;
  w.renumber_probability = 0.0;
  w.quiet_calendar = true;  // scenarios plant calendars explicitly
  return w;
}

sim::Event wfh(const char* cc, Date start, double adoption) {
  sim::Event e;
  e.kind = sim::EventKind::kWorkFromHome;
  e.name = std::string("planted-wfh-") + cc;
  e.scope.country_code = cc;
  e.start = time_of(start);
  e.end = time_of(2020, 7, 1);  // persists past the analysis window
  e.adoption = adoption;
  e.residual_attendance = 0.10;
  return e;
}

sim::Event holiday(const char* cc, Date start, Date end, double adoption) {
  sim::Event e;
  e.kind = sim::EventKind::kHoliday;
  e.name = std::string("planted-holiday-") + cc;
  e.scope.country_code = cc;
  e.start = time_of(start);
  e.end = time_of(end);
  e.adoption = adoption;
  e.residual_attendance = 0.08;
  return e;
}

sim::Event curfew(const char* cc, geo::GridCell cell, Date start, Date end,
                  double adoption) {
  sim::Event e;
  e.kind = sim::EventKind::kCurfewUnrest;
  e.name = std::string("planted-curfew-") + cc;
  e.scope.country_code = cc;
  e.scope.cell = cell;
  e.start = time_of(start);
  e.end = time_of(end);
  e.adoption = adoption;
  e.residual_attendance = 0.15;
  return e;
}

std::vector<Scenario> build_catalog() {
  std::vector<Scenario> v;

  {
    Scenario s;
    s.name = "clean_diurnal";
    s.title = "healthy diurnal world, no events planted: must stay silent";
    s.world = quiet_world(101, 400, "US");
    s.dataset = kDataset;
    s.expect_zero_truth = true;
    s.expect_zero_confirmed = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_step";
    s.title = "nationwide WFH step on 2020-01-15 (office/university drop)";
    s.world = quiet_world(102, 500, "US");
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.precision_floor = 0.8;
    s.recall_floor = 0.4;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "holiday_dip";
    s.title = "week-long holiday Jan 12-19 (dip and recovery both truth)";
    s.world = quiet_world(103, 500, "CN");
    s.world.calendar.push_back(
        holiday("CN", Date{2020, 1, 12}, Date{2020, 1, 19}, 0.9));
    s.dataset = kDataset;
    s.precision_floor = 0.8;
    // Recall here is bounded by the raw-outage cross-check: a deep
    // week-long dip flickers above the blackout threshold, producing
    // short bounded low-runs that straddle the down/up excursion pair,
    // so the section 2.6 filter discards many genuine dip+recovery
    // detections (98 of them in the baseline run).  The paper has the
    // same tension — its outage filter trades holiday recall for outage
    // precision — so the floor reflects the pipeline as specified, not a
    // harness defect.
    s.recall_floor = 0.35;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "curfew_geo";
    s.title = "curfew scoped to the Delhi gridcell: truth only in-cell";
    s.world = quiet_world(104, 600, "IN");
    s.world.calendar.push_back(curfew("IN", geo::GridCell::of(28.6, 77.2),
                                      Date{2020, 1, 12}, Date{2020, 1, 19},
                                      0.6));
    s.dataset = kDataset;
    // Dense single-city worlds detect plenty of sub-threshold activity
    // shifts in the out-of-cell population (measured ~72% precision /
    // 66% recall); the floors bound regression, not the paper's
    // country-scale figures.
    s.precision_floor = 0.65;
    s.recall_floor = 0.5;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "paired_outage";
    s.title = "outage/renumbering storm, no events: pair filter must absorb";
    s.world = quiet_world(105, 400, "US");
    // Compress the horizon around the analysis window so the planted
    // outages and renumberings actually land inside it (by default they
    // are drawn across nine months and mostly miss the four probed
    // weeks), and renumber nearly every block: this is the scenario that
    // exercises the section 2.6 pair-discard path.
    s.world.horizon_start = time_of(2020, 1, 1);
    s.world.horizon_end = time_of(2020, 2, 15);
    s.world.outage_rate_per_90d = 12.0;
    s.world.renumber_probability = 0.9;
    s.dataset = kDataset;
    s.expect_zero_truth = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_dropout";
    s.title = "the WFH step probed by a fleet losing one observer";
    s.world = quiet_world(102, 500, "US");  // identical to wfh_step
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.fault_scenario = "dropout";
    s.precision_floor = 0.7;
    s.clean_counterpart = "wfh_step";
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_bursts";
    s.title = "the WFH step probed through bursty loss (evidence destroyed)";
    s.world = quiet_world(102, 500, "US");  // identical to wfh_step
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.fault_scenario = "bursts";
    s.precision_floor = 0.7;
    s.clean_counterpart = "wfh_step";
    // Bursty loss degrades whole blocks out of the scored set, so the
    // recall *ratio* is computed over a different denominator than the
    // clean run's and is not comparable; the scored-truth bound still
    // applies (see check_fault_invariants).
    s.faults_monotone_recall = false;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "wfh_meltdown";
    s.title = "the WFH step under every fault class at once";
    s.world = quiet_world(102, 500, "US");  // identical to wfh_step
    s.world.calendar.push_back(wfh("US", Date{2020, 1, 15}, 0.65));
    s.dataset = kDataset;
    s.fault_scenario = "meltdown";
    s.precision_floor = 0.7;
    s.clean_counterpart = "wfh_step";
    // Meltdown includes skew faults, which relocate rather than destroy
    // evidence; the recall bound does not hold (see Scenario).
    s.faults_monotone_recall = false;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "quiet_calendar";
    s.title = "default world mix, quiet calendar: the negative control";
    s.world = quiet_world(107, 600, nullptr);
    // Keep the default world's measurement noise — outages and
    // renumbering still happen — but plant no human-activity events, so
    // any confirmed change is threshold drift by construction.
    s.world.diurnal_scale = 0.055;
    s.world.outage_rate_per_90d = 0.06;
    s.world.renumber_probability = 0.015;
    s.dataset = kDataset;
    s.expect_zero_truth = true;
    s.expect_zero_confirmed = true;
    v.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "golden_mix";
    s.title = "the golden-digest world (real calendar): perf/accuracy anchor";
    s.world = sim::WorldConfig{};  // the bench_fleet reference world
    s.world.seed = 1;
    s.world.num_blocks = 2000;
    s.dataset = kDataset;
    // Default pipeline config, so the digest matches the perf gate's.
    s.additional_observations = false;
    v.push_back(std::move(s));
  }
  return v;
}

}  // namespace

const std::vector<Scenario>& catalog() {
  static const std::vector<Scenario> v = build_catalog();
  return v;
}

const Scenario* find_scenario(std::string_view name) {
  for (const auto& s : catalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace diurnal::validate
