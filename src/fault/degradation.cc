#include "fault/degradation.h"

namespace diurnal::fault {

BlockDegradation summarize_block(
    const std::vector<ObserverStreamInfo>& streams, int configured_observers,
    probe::ProbeWindow window, double evidence_fraction,
    double max_gap_seconds, double evidence_floor,
    util::SimTime partial_slack) {
  BlockDegradation d;
  d.configured_observers = configured_observers;
  d.evidence_fraction = evidence_fraction;
  d.max_gap_hours = max_gap_seconds / 3600.0;
  d.low_confidence = evidence_fraction < evidence_floor;

  const std::int64_t span = window.end - window.start;
  for (const auto& s : streams) {
    d.dropped_observations += s.faults.dropped;
    d.corrupted_observations += s.faults.corrupted;
    if (s.observations == 0) continue;
    ++d.live_observers;
    // A healthy observer's stream spans the whole window (first probe
    // within its round phase of the start, last within a round of the
    // end); a stream that opens late or closes early by more than the
    // slack lost real coverage.
    const bool late = static_cast<std::int64_t>(s.first_rel) > partial_slack;
    const bool early =
        span - static_cast<std::int64_t>(s.last_rel) > partial_slack;
    if (late || early) ++d.partial_observers;
  }
  return d;
}

void DegradationReport::absorb_rows(const DegradationReport& shard,
                                    std::size_t offset) {
  for (std::size_t i = 0; i < shard.blocks.size(); ++i) {
    blocks[offset + i] = shard.blocks[i];
  }
}

void DegradationReport::finalize() {
  probed_blocks = 0;
  degraded_blocks = 0;
  low_confidence_blocks = 0;
  blocks_missing_observers = 0;
  double evidence_sum = 0.0;
  for (const auto& b : blocks) {
    if (b.configured_observers == 0) continue;  // never probed
    ++probed_blocks;
    evidence_sum += b.evidence_fraction;
    if (b.degraded()) ++degraded_blocks;
    if (b.low_confidence) ++low_confidence_blocks;
    if (b.live_observers < b.configured_observers) ++blocks_missing_observers;
  }
  mean_evidence_fraction =
      probed_blocks == 0 ? 1.0
                         : evidence_sum / static_cast<double>(probed_blocks);
}

}  // namespace diurnal::fault
