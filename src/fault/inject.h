// Applies a FaultPlan to one observer's recorded probe stream.
//
// Injection runs after the prober and before 1-loss repair: faults
// happen on the wire and at the observer, repair is an analysis-side
// decision.  Dark windows delete observations (a dead observer records
// nothing), burst loss flips positive replies to non-replies, truncation
// drops the tail of a round, and clock skew/drift rewrites timestamps —
// all as pure functions of (plan seed, observer, time), so a stream's
// degraded form is reproducible regardless of which worker probes it.
#pragma once

#include <cstddef>

#include "fault/fault_plan.h"
#include "probe/prober.h"

namespace diurnal::fault {

/// What injection did to one stream.
struct StreamFaultStats {
  std::size_t input = 0;      ///< observations before injection
  std::size_t dropped = 0;    ///< deleted (dark windows, truncation, skew)
  std::size_t corrupted = 0;  ///< positive replies flipped by burst loss
  std::size_t retimed = 0;    ///< timestamps rewritten by skew/drift

  bool touched() const noexcept {
    return dropped > 0 || corrupted > 0 || retimed > 0;
  }
};

/// True when `observer` is dark at time t under the plan's outage specs.
bool observer_dark_at(const FaultPlan& plan, char observer, util::SimTime t);

/// True when the indexed burst spec's deterministic schedule is active
/// at t (exposed for tests and the degradation report).
bool burst_active(std::uint64_t seed, std::size_t spec_index,
                  const BurstLossSpec& spec, util::SimTime t);

/// Sum of the plan's clock skew/drift specs matching one observer.
/// Retiming is monotone (for any sane drift), so the transform of a
/// lower time bound is a lower bound on transformed times — the
/// streaming merge uses this to compute per-stream watermarks.
struct SkewResolution {
  std::int64_t skew_seconds = 0;
  double drift_ppm = 0.0;

  bool retimes() const noexcept {
    return skew_seconds != 0 || drift_ppm != 0.0;
  }
  /// The retimed relative timestamp (may fall outside the window; the
  /// injector drops those).
  std::int64_t transform(std::int64_t rel) const noexcept {
    return rel + skew_seconds +
           static_cast<std::int64_t>(drift_ppm * 1e-6 *
                                     static_cast<double>(rel));
  }
};
SkewResolution resolve_skew(const FaultPlan& plan, char observer);

/// Cross-chunk injection state: truncation drops the tail of a round,
/// so a round split across two chunks must remember whether it fired
/// and whether its first observation was already kept.  Everything else
/// the injector does is a stateless function of (plan seed, observer,
/// time) and needs no carry.
struct FaultCarry {
  std::int64_t trunc_round = -1;
  bool trunc_fired = false;
  bool trunc_kept_first = false;
};

/// Applies the plan to one observer's time-ordered stream in place.
/// A plan with no spec matching `observer` is a no-op; the stream stays
/// time-ordered (skew/drift is a monotone transform and survivors keep
/// their relative order).
StreamFaultStats apply_faults(const FaultPlan& plan, char observer,
                              probe::ProbeWindow window,
                              probe::ObservationVec& stream);

/// Chunked variant for the streaming pipeline: processes only
/// stream[from..) in place (survivors compacted into that tail),
/// carrying truncation state across calls.  Feeding one full stream
/// through successive chunks at any round-aligned-or-not boundaries
/// yields the same survivors as one apply_faults pass; per-chunk stats
/// are additive.
StreamFaultStats apply_faults_chunk(const FaultPlan& plan, char observer,
                                    probe::ProbeWindow window,
                                    probe::ObservationVec& stream,
                                    std::size_t from, FaultCarry& carry);

}  // namespace diurnal::fault
