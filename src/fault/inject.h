// Applies a FaultPlan to one observer's recorded probe stream.
//
// Injection runs after the prober and before 1-loss repair: faults
// happen on the wire and at the observer, repair is an analysis-side
// decision.  Dark windows delete observations (a dead observer records
// nothing), burst loss flips positive replies to non-replies, truncation
// drops the tail of a round, and clock skew/drift rewrites timestamps —
// all as pure functions of (plan seed, observer, time), so a stream's
// degraded form is reproducible regardless of which worker probes it.
#pragma once

#include <cstddef>

#include "fault/fault_plan.h"
#include "probe/prober.h"

namespace diurnal::fault {

/// What injection did to one stream.
struct StreamFaultStats {
  std::size_t input = 0;      ///< observations before injection
  std::size_t dropped = 0;    ///< deleted (dark windows, truncation, skew)
  std::size_t corrupted = 0;  ///< positive replies flipped by burst loss
  std::size_t retimed = 0;    ///< timestamps rewritten by skew/drift

  bool touched() const noexcept {
    return dropped > 0 || corrupted > 0 || retimed > 0;
  }
};

/// True when `observer` is dark at time t under the plan's outage specs.
bool observer_dark_at(const FaultPlan& plan, char observer, util::SimTime t);

/// True when the indexed burst spec's deterministic schedule is active
/// at t (exposed for tests and the degradation report).
bool burst_active(std::uint64_t seed, std::size_t spec_index,
                  const BurstLossSpec& spec, util::SimTime t);

/// Applies the plan to one observer's time-ordered stream in place.
/// A plan with no spec matching `observer` is a no-op; the stream stays
/// time-ordered (skew/drift is a monotone transform and survivors keep
/// their relative order).
StreamFaultStats apply_faults(const FaultPlan& plan, char observer,
                              probe::ProbeWindow window,
                              probe::ObservationVec& stream);

}  // namespace diurnal::fault
