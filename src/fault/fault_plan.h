// Deterministic observer fault plans (the degraded-mode layer).
//
// The paper's pipeline assumes six healthy observers: section 2.7 merges
// unsynchronized streams and section 3.3 repairs congestive loss, but a
// real multi-vantage fleet degrades constantly — observers go dark,
// reboot on maintenance schedules, flap, drift their clocks, cut rounds
// short, and share paths that drop probes in correlated bursts.  A
// FaultPlan describes those failures declaratively; the probe stage
// applies it to each observer's recorded stream (see fault/inject.h), so
// downstream stages see exactly what a degraded fleet would have
// delivered.  Every draw is a stateless hash of (plan seed, spec,
// observer, time), so injection is bit-reproducible and independent of
// the fleet's thread schedule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "probe/prober.h"
#include "util/date.h"

namespace diurnal::fault {

/// Matches every observer when used as a spec's observer code.
inline constexpr char kAllObservers = '*';

enum class OutageKind : std::uint8_t {
  kHardDown,         ///< observer dark for the whole [start, end) window
  kFlapping,         ///< irregular up/down slots inside [start, end)
  kScheduledReboot,  ///< periodic short outages inside [start, end)
};

/// One observer-outage window.  While dark, the observer records
/// nothing: its observations inside the dark intervals vanish.
struct OutageSpec {
  char observer = kAllObservers;
  OutageKind kind = OutageKind::kHardDown;
  util::SimTime start = 0;
  util::SimTime end = 0;

  /// Flapping: the window is cut into `flap_period` slots and each slot
  /// is independently down with probability `flap_down_fraction`
  /// (seeded, so the flap pattern is irregular but reproducible).
  util::SimTime flap_period = 2 * util::kSecondsPerHour;
  double flap_down_fraction = 0.5;

  /// Scheduled reboot: down for `reboot_duration` at the top of every
  /// `reboot_interval` after `start`.
  util::SimTime reboot_interval = util::kSecondsPerDay;
  util::SimTime reboot_duration = 30 * 60;
};

/// Constant clock skew plus linear drift on one observer's timestamps.
/// Recorded times become t + skew + drift_ppm * 1e-6 * t (t relative to
/// the probing-window start); observations pushed outside the window are
/// lost.  The transform is monotone for drift_ppm > -1e6, so streams
/// stay time-ordered.
struct ClockSkewSpec {
  char observer = kAllObservers;
  std::int64_t skew_seconds = 0;
  double drift_ppm = 0.0;
};

/// Correlated burst loss on an observer's path, layered on top of
/// probe::LossModelConfig's per-probe loss.  Each `mean_interval` of the
/// timeline holds one seeded burst of roughly `mean_duration` during
/// which positive replies are lost with probability `rate` — loss
/// concentrated in time, the signature of path congestion and router
/// drops, and exactly what 1-loss repair cannot fully fix.
struct BurstLossSpec {
  char observer = kAllObservers;
  double rate = 0.8;
  util::SimTime mean_interval = 8 * util::kSecondsPerHour;
  util::SimTime mean_duration = 15 * 60;
  /// Active window; start == end means the whole run.
  util::SimTime start = 0;
  util::SimTime end = 0;
};

/// Truncated rounds: with probability `prob` a probing round is cut
/// short after its first probe (the probing process died mid-round, as
/// happens on reboots and overload).
struct TruncationSpec {
  char observer = kAllObservers;
  double prob = 0.0;
  /// Active window; start == end means the whole run.
  util::SimTime start = 0;
  util::SimTime end = 0;
};

/// A complete fault scenario for a fleet run.  An empty plan (the
/// default) is the healthy fleet: injection is a no-op and the pipeline
/// output is bit-identical to a run without the fault layer.
struct FaultPlan {
  std::uint64_t seed = 0xFA117ULL;
  std::vector<OutageSpec> outages;
  std::vector<ClockSkewSpec> skews;
  std::vector<BurstLossSpec> bursts;
  std::vector<TruncationSpec> truncations;

  bool empty() const noexcept {
    return outages.empty() && skews.empty() && bursts.empty() &&
           truncations.empty();
  }

  /// Convenience: one observer hard down over [start, end).
  static FaultPlan single_observer_dropout(char observer, util::SimTime start,
                                           util::SimTime end);
};

/// Names accepted by scenario(), in sweep order ("none" first).
const std::vector<std::string>& scenario_names();

/// Builds a named fault scenario sized to a probing window:
///   none      healthy fleet (empty plan)
///   dropout   observer e hard down for the middle ~40% of the window
///   flapping  observer j flapping in 2-hour slots over the full window
///   reboots   every observer reboots daily for 30 minutes
///   skew      observer n starts +90s skewed and drifts +200 ppm
///   bursts    correlated 15-minute loss bursts on every observer
///   truncate  observer w loses the tail of 30% of its rounds
///   meltdown  all of the above at once
/// Throws std::invalid_argument for unknown names.
FaultPlan scenario(const std::string& name, probe::ProbeWindow window);

}  // namespace diurnal::fault
