#include "fault/fault_plan.h"

#include <stdexcept>

namespace diurnal::fault {

using util::SimTime;

FaultPlan FaultPlan::single_observer_dropout(char observer, SimTime start,
                                             SimTime end) {
  FaultPlan plan;
  plan.outages.push_back(
      OutageSpec{observer, OutageKind::kHardDown, start, end});
  return plan;
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "none",     "dropout", "flapping", "reboots",
      "skew",     "bursts",  "truncate", "meltdown",
  };
  return names;
}

namespace {

void add_dropout(FaultPlan& plan, probe::ProbeWindow w) {
  const SimTime span = w.end - w.start;
  plan.outages.push_back(OutageSpec{'e', OutageKind::kHardDown,
                                    w.start + span * 3 / 10,
                                    w.start + span * 7 / 10});
}

void add_flapping(FaultPlan& plan, probe::ProbeWindow w) {
  OutageSpec flap{'j', OutageKind::kFlapping, w.start, w.end};
  flap.flap_period = 2 * util::kSecondsPerHour;
  flap.flap_down_fraction = 0.45;
  plan.outages.push_back(flap);
}

void add_reboots(FaultPlan& plan, probe::ProbeWindow w) {
  OutageSpec reboot{kAllObservers, OutageKind::kScheduledReboot, w.start,
                    w.end};
  reboot.reboot_interval = util::kSecondsPerDay;
  reboot.reboot_duration = 30 * 60;
  plan.outages.push_back(reboot);
}

void add_skew(FaultPlan& plan) {
  plan.skews.push_back(ClockSkewSpec{'n', 90, 200.0});
}

void add_bursts(FaultPlan& plan) {
  plan.bursts.push_back(BurstLossSpec{});  // every observer, whole run
}

void add_truncate(FaultPlan& plan) {
  plan.truncations.push_back(TruncationSpec{'w', 0.30, 0, 0});
}

}  // namespace

FaultPlan scenario(const std::string& name, probe::ProbeWindow window) {
  FaultPlan plan;
  if (name == "none") return plan;
  if (name == "dropout") {
    add_dropout(plan, window);
  } else if (name == "flapping") {
    add_flapping(plan, window);
  } else if (name == "reboots") {
    add_reboots(plan, window);
  } else if (name == "skew") {
    add_skew(plan);
  } else if (name == "bursts") {
    add_bursts(plan);
  } else if (name == "truncate") {
    add_truncate(plan);
  } else if (name == "meltdown") {
    add_dropout(plan, window);
    add_flapping(plan, window);
    add_reboots(plan, window);
    add_skew(plan);
    add_bursts(plan);
    add_truncate(plan);
  } else {
    throw std::invalid_argument("fault::scenario: unknown scenario '" + name +
                                "'");
  }
  return plan;
}

}  // namespace diurnal::fault
