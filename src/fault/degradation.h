// Degraded-mode accounting: how much should each answer be trusted?
//
// When observers fail, the pipeline still produces classifications and
// detections — the question becomes which of them rest on enough
// evidence.  The probe stage records what each observer actually
// delivered per block (ObserverStreamInfo), reconstruction measures
// effective coverage (hours since the last refresh, per paper section
// 2.8), and this module folds both into a per-block BlockDegradation and
// a fleet-level DegradationReport that rides alongside the funnel.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/inject.h"
#include "probe/prober.h"
#include "util/date.h"

namespace diurnal::fault {

/// What one observer actually delivered for one block.
struct ObserverStreamInfo {
  char code = '?';
  std::size_t observations = 0;  ///< after fault injection
  std::uint32_t first_rel = 0;   ///< valid when observations > 0
  std::uint32_t last_rel = 0;
  StreamFaultStats faults{};
};

/// Per-block degradation summary (aligned with FleetResult::outcomes).
struct BlockDegradation {
  int configured_observers = 0;  ///< 0 for never-probed blocks
  int live_observers = 0;        ///< delivered at least one observation
  /// Live observers whose stream started more than `partial_slack` after
  /// the window opened or ended more than `partial_slack` before it
  /// closed (late starters, early enders, mid-quarter vanishers).
  int partial_observers = 0;
  std::size_t dropped_observations = 0;
  std::size_t corrupted_observations = 0;
  /// Fraction of the reconstruction's samples with an observation inside
  /// the staleness horizon (recon::ReconOptions::stale_horizon).
  double evidence_fraction = 1.0;
  double max_gap_hours = 0.0;  ///< longest span with no observation at all
  bool low_confidence = false;  ///< evidence_fraction below the floor

  bool degraded() const noexcept {
    return live_observers < configured_observers || partial_observers > 0 ||
           dropped_observations > 0 || corrupted_observations > 0 ||
           low_confidence;
  }
};

/// Fleet-level rollup.
struct DegradationReport {
  std::vector<BlockDegradation> blocks;  ///< aligned with world.blocks()
  std::int64_t probed_blocks = 0;        ///< blocks with configured observers
  std::int64_t degraded_blocks = 0;
  std::int64_t low_confidence_blocks = 0;
  std::int64_t blocks_missing_observers = 0;
  double mean_evidence_fraction = 1.0;  ///< over probed blocks

  /// Recomputes the tallies from `blocks` (never-probed slots excluded).
  void finalize();

  /// Copies a shard run's per-block rows into this report at `offset`
  /// (the shard's first global block index).  Rows only — call
  /// finalize() once every shard has been absorbed.
  void absorb_rows(const DegradationReport& shard, std::size_t offset);
};

/// Folds what the observers delivered and what reconstruction covered
/// into one block's degradation row.
BlockDegradation summarize_block(
    const std::vector<ObserverStreamInfo>& streams, int configured_observers,
    probe::ProbeWindow window, double evidence_fraction,
    double max_gap_seconds, double evidence_floor,
    util::SimTime partial_slack = 2 * util::kSecondsPerDay);

}  // namespace diurnal::fault
