#include "fault/inject.h"

#include <cmath>

#include "util/rng.h"

namespace diurnal::fault {

using util::SimTime;

namespace {

// Deterministic uniform in [0,1) from a derived seed.
inline double hash_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                           std::uint64_t c = 0) noexcept {
  return static_cast<double>(util::derive_seed(seed, a, b, c) >> 11) *
         0x1.0p-53;
}

inline bool in_window(SimTime t, SimTime start, SimTime end) noexcept {
  return start == end || (t >= start && t < end);
}

bool outage_dark_at(std::uint64_t seed, std::size_t spec_index,
                    const OutageSpec& o, char observer, SimTime t) {
  if (o.observer != kAllObservers && o.observer != observer) return false;
  if (t < o.start || t >= o.end) return false;
  switch (o.kind) {
    case OutageKind::kHardDown:
      return true;
    case OutageKind::kFlapping: {
      if (o.flap_period <= 0) return true;
      const auto slot = static_cast<std::uint64_t>((t - o.start) / o.flap_period);
      return hash_uniform(seed ^ 0xF1A9ULL, spec_index,
                          static_cast<std::uint64_t>(observer), slot) <
             o.flap_down_fraction;
    }
    case OutageKind::kScheduledReboot:
      if (o.reboot_interval <= 0) return true;
      return (t - o.start) % o.reboot_interval < o.reboot_duration;
  }
  return false;
}

}  // namespace

bool observer_dark_at(const FaultPlan& plan, char observer, SimTime t) {
  for (std::size_t i = 0; i < plan.outages.size(); ++i) {
    if (outage_dark_at(plan.seed, i, plan.outages[i], observer, t)) return true;
  }
  return false;
}

bool burst_active(std::uint64_t seed, std::size_t spec_index,
                  const BurstLossSpec& spec, SimTime t) {
  if (!in_window(t, spec.start, spec.end)) return false;
  if (spec.mean_interval <= 0) return false;
  // One seeded burst per interval of the timeline: its duration is
  // mean_duration * [0.5, 1.5) and its start offset is uniform over the
  // interval's slack, so bursts land irregularly but reproducibly.
  const auto k = static_cast<std::uint64_t>(t / spec.mean_interval);
  const std::uint64_t h = util::derive_seed(seed ^ 0xB0B5ULL, spec_index, k);
  const double u_off = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double u_dur =
      static_cast<double>(util::mix64(h) >> 11) * 0x1.0p-53;
  const auto duration = static_cast<SimTime>(
      static_cast<double>(spec.mean_duration) * (0.5 + u_dur));
  const SimTime slack = spec.mean_interval - duration;
  if (slack <= 0) return true;
  const auto offset =
      static_cast<SimTime>(u_off * static_cast<double>(slack));
  const SimTime into = t % spec.mean_interval;
  return into >= offset && into < offset + duration;
}

SkewResolution resolve_skew(const FaultPlan& plan, char observer) {
  SkewResolution r;
  for (const auto& s : plan.skews) {
    if (s.observer != kAllObservers && s.observer != observer) continue;
    r.skew_seconds += s.skew_seconds;
    r.drift_ppm += s.drift_ppm;
  }
  return r;
}

StreamFaultStats apply_faults(const FaultPlan& plan, char observer,
                              probe::ProbeWindow window,
                              probe::ObservationVec& stream) {
  FaultCarry carry;
  return apply_faults_chunk(plan, observer, window, stream, 0, carry);
}

StreamFaultStats apply_faults_chunk(const FaultPlan& plan, char observer,
                                    probe::ProbeWindow window,
                                    probe::ObservationVec& stream,
                                    std::size_t from, FaultCarry& carry) {
  StreamFaultStats st;
  st.input = stream.size() - from;
  if (plan.empty() || st.input == 0) return st;

  // Resolve per-observer state once per chunk.
  bool any_outage = false;
  for (const auto& o : plan.outages) {
    any_outage |= o.observer == kAllObservers || o.observer == observer;
  }
  const SkewResolution skew_res = resolve_skew(plan, observer);
  const std::int64_t skew = skew_res.skew_seconds;
  const double drift_ppm = skew_res.drift_ppm;
  const bool retime = skew_res.retimes();
  double trunc_prob = 0.0;

  const std::int64_t span = window.end - window.start;
  const auto obs_salt = static_cast<std::uint64_t>(observer);

  probe::Observation* w = stream.data() + from;
  std::int64_t trunc_round = carry.trunc_round;
  bool trunc_fired = carry.trunc_fired;
  bool trunc_kept_first = carry.trunc_kept_first;
  for (auto it = stream.begin() + static_cast<std::ptrdiff_t>(from);
       it != stream.end(); ++it) {
    const probe::Observation& obs = *it;
    const SimTime t = window.start + static_cast<SimTime>(obs.rel_time);

    if (any_outage && observer_dark_at(plan, observer, t)) {
      ++st.dropped;
      continue;
    }

    if (!plan.truncations.empty()) {
      const std::int64_t round = t / util::kRoundSeconds;
      if (round != trunc_round) {
        trunc_round = round;
        trunc_kept_first = false;
        trunc_prob = 0.0;
        for (const auto& tr : plan.truncations) {
          if (tr.observer != kAllObservers && tr.observer != observer) continue;
          if (!in_window(t, tr.start, tr.end)) continue;
          trunc_prob = std::max(trunc_prob, tr.prob);
        }
        trunc_fired =
            trunc_prob > 0.0 &&
            hash_uniform(plan.seed ^ 0x79C7ULL, obs_salt,
                         static_cast<std::uint64_t>(round)) < trunc_prob;
      }
      if (trunc_fired) {
        if (trunc_kept_first) {
          ++st.dropped;
          continue;
        }
        trunc_kept_first = true;
      }
    }

    probe::Observation out = obs;
    if (out.up) {
      for (std::size_t i = 0; i < plan.bursts.size(); ++i) {
        const auto& b = plan.bursts[i];
        if (b.observer != kAllObservers && b.observer != observer) continue;
        if (!burst_active(plan.seed, i, b, t)) continue;
        if (hash_uniform(plan.seed ^ 0x10D7ULL, obs_salt,
                         static_cast<std::uint64_t>(t), obs.addr) < b.rate) {
          out.up = false;
          ++st.corrupted;
          break;
        }
      }
    }

    if (retime) {
      const auto rel = static_cast<std::int64_t>(obs.rel_time) + skew +
                       static_cast<std::int64_t>(
                           drift_ppm * 1e-6 *
                           static_cast<double>(obs.rel_time));
      if (rel < 0 || rel >= span) {
        ++st.dropped;
        continue;
      }
      out.rel_time = static_cast<std::uint32_t>(rel);
      ++st.retimed;
    }
    *w++ = out;
  }
  stream.resize(static_cast<std::size_t>(w - stream.data()));
  carry.trunc_round = trunc_round;
  carry.trunc_fired = trunc_fired;
  carry.trunc_kept_first = trunc_kept_first;
  return st;
}

}  // namespace diurnal::fault
