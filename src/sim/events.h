// Ground-truth event calendar for the synthetic world.
//
// The paper validates detections against documented human-activity
// changes: Covid-19 work-from-home orders (section 3.6), national
// holidays like China's Spring Festival (section 4.2), and curfews and
// unrest such as the Delhi riots (section 4.3).  We encode those events
// with their real dates; the world generator translates them into
// behaviour changes, and the validation benches score detections
// against this calendar.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/gridcell.h"
#include "util/date.h"

namespace diurnal::sim {

enum class EventKind {
  kWorkFromHome,  ///< long-lived shift: office/university activity collapses
  kHoliday,       ///< bounded dip in workday attendance
  kCurfewUnrest,  ///< regional stay-home period (riots, curfews, shutdowns)
};

std::string_view to_string(EventKind k) noexcept;

/// Geographic scope of an event: a whole country or a single gridcell.
struct EventScope {
  std::optional<std::string> country_code;  ///< ISO code, or nullopt
  std::optional<geo::GridCell> cell;        ///< specific gridcell, or nullopt

  bool matches(std::string_view block_country, geo::GridCell block_cell) const;
};

/// One dated ground-truth event.
struct Event {
  EventKind kind = EventKind::kHoliday;
  std::string name;
  EventScope scope;
  util::SimTime start = 0;
  util::SimTime end = 0;  ///< exclusive; for WFH this is the analysis horizon
  /// Fraction of in-scope diurnal blocks whose users actually change
  /// behaviour (the paper's detections cover a subset of blocks even for
  /// nationwide orders).
  double adoption = 0.6;
  /// Residual workday attendance during the event (0.05 = nearly empty
  /// offices).
  double residual_attendance = 0.10;

  /// Gradual-onset window in days.  0 (default) keeps the legacy step
  /// onset with the documented few-day adoption jitter; > 0 spreads
  /// adopting blocks' start dates uniformly over [start, start + ramp)
  /// — the WFH-ramp scenarios where a region phases into lockdown over
  /// a week-plus instead of on one order date.
  int ramp_days = 0;

  util::Date start_date() const { return util::date_of(start); }
};

/// The full 2019-10-01 .. 2023-06-30 calendar used by default worlds:
/// per-country Covid-19 WFH dates (from geo::countries()), Spring
/// Festival 2020 and 2023, US holidays (MLK, Presidents' Day), the Delhi
/// unrest window, and the UAE curfew.
std::vector<Event> default_calendar();

/// Events whose scope matches a block and whose window intersects
/// [t0, t1).
std::vector<const Event*> events_for(const std::vector<Event>& calendar,
                                     std::string_view country,
                                     geo::GridCell cell, util::SimTime t0,
                                     util::SimTime t1);

}  // namespace diurnal::sim
