// Monotone-time cached view of the address-activity oracle.
//
// `sim::address_active` is stateless: every call re-derives the local
// clock, rescans the suppression/outage interval lists, and runs 3-5
// SplitMix64 hash chains.  Probers, however, ask strictly monotonically
// increasing times, so almost all of that work is redundant: the local
// clock only changes at hour boundaries, the active suppression/outage
// set only changes at interval boundaries, and a device's dormancy,
// schedule hours, and daily presence draw are fixed for a whole
// (address, local-day) pair.
//
// ActivityCursor memoizes all of that behind a two-level cache:
//
//  * Block level: a "fast window" [ -, fast_until_ ) inside which the
//    local hour, active suppressions/outages, slot indices, and the
//    block's structural state (vacated, renumber phase, occupancy) are
//    all constant.  Sorted interval/edge lists advance with cursors.
//  * Address level: per local day, a row of 24-bit masks (one per
//    address) holding the address's answer for every hour of that day
//    given the suppression state, derived in one sequential sweep when
//    the cursor first enters the day and kept in a direct-mapped day
//    table keyed by a canonical 64-bit row key.  The per-probe fast
//    path is a dense 4-byte load plus a shift, and re-sweeps of the
//    same window (every later observer of the fleet) hit cached rows
//    without re-deriving a single hash.  Slot-session addresses
//    (intermittent blocks, churny server-farm leases) join the day rows
//    too: 6h/8h slot boundaries are whole-hour aligned, so one day is at
//    most five slot draws OR-ed into an hour mask (negative days, where
//    truncating slot division misaligns, fall back to cached per-slot
//    booleans).
//
// Results are bit-identical to address_active — every hash and every
// floating-point expression is shared through sim/schedule.h or
// replicated operation-for-operation, and the equivalence is enforced
// by randomized property tests.  The only contract is that after
// bind(), query times must be non-decreasing.
//
// Typical use (one cursor per worker thread, rebound per block pass):
//
//   ActivityCursor cursor;
//   cursor.bind(block);
//   for (t in increasing probe times) cursor.active(addr, t);
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/block_profile.h"
#include "sim/schedule.h"

namespace diurnal::sim {

class ActivityCursor {
 public:
  ActivityCursor() = default;

  /// Binds the cursor to a block and resets the time-window state.  The
  /// time monotonicity requirement restarts: the next active() call may
  /// use any time.  The block must outlive the binding and must not be
  /// mutated between binds: rebinding the same (unchanged) profile keeps
  /// the per-address caches, which is what makes probing one block from
  /// many observers back-to-back cheap — every observer re-asks the same
  /// (address, day) and (address, slot) questions.
  void bind(const BlockProfile& block);

  /// Equivalent to address_active(block, addr, t), provided t is
  /// non-decreasing across calls since bind().
  bool active(int addr, util::SimTime t) noexcept;

  /// Register-resident snapshot of the hot path for callers that probe
  /// in a tight loop.  When `row` is non-null, every address of the
  /// block takes the hour-mask path for times in [-, until), and
  /// `(row[addr] >> hour) & 1` equals active(addr, t) — the caller keeps
  /// row/hour in registers instead of re-loading cursor members per
  /// probe (the observation stores in the probe loop are may-alias
  /// writes, so the compiler cannot hoist those loads itself).  When
  /// `row` is null (slot sessions, renumber mirror, outages, dead
  /// blocks), fall back to active() per probe; `until` still bounds the
  /// window so the caller re-snapshots at the same boundaries either
  /// way.
  struct FastView {
    const std::uint32_t* row;
    int hour;
    util::SimTime until;
    /// End of the stable window: `row` (and the block state it encodes)
    /// is valid until here — at most the next local midnight — while
    /// `hour` is only valid until `until`.  Callers that span multiple
    /// hours may advance the hour shift themselves (local-hour
    /// boundaries are absolute-hour aligned) up to this bound.
    util::SimTime stable_until;
    /// Identity of `row`'s content (day in bits 32+, plus the
    /// suppression/vacate/occupancy state): two snapshots with equal
    /// keys see identical rows, so callers may key derived caches on
    /// it.  Only meaningful when `row` is non-null.
    std::uint64_t row_key;
  };

  /// Advances the window to t (same contract as active()) and returns
  /// the snapshot for it.
  FastView fast_view(util::SimTime t) noexcept;

  /// The currently bound block (nullptr before the first bind()).
  const BlockProfile* block() const noexcept { return block_; }

 private:
  static constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::min();
  static constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

  /// 64 consecutive slot-session draws for one address, covering slots
  /// [word*64, word*64 + 64).  Slot draws are pure functions of
  /// (h1, slot), so cached words survive observer passes that re-sweep
  /// the window from the start — the dominant probe pattern, where each
  /// of the fleet's observers re-asks the same (address, slot) question.
  struct SlotCache {
    std::int64_t word = kNever;  ///< slot >> 6 this entry covers
    std::uint64_t valid = 0;     ///< bit (slot & 63): draw cached
    std::uint64_t up = 0;        ///< bit (slot & 63): cached answer
  };

  struct AddrState {
    /// Cached first derive_seed round of every (seed, addr, ...) hash
    /// chain for this address (schedule::addr_stage); set by bind() and
    /// re-derived when a renumbering flips the seed.
    std::uint64_t h1 = 0;
    /// Epoch-keyed device schedule: valid for local days
    /// [epoch_from, epoch_from + schedule::kEpochDays).  32 bits keeps
    /// the whole struct small (local day indices are tiny).
    std::int32_t epoch_from = std::numeric_limits<std::int32_t>::min();
    /// Server-farm address kind: -1 unknown, 0 mask path, 1 churny slot.
    std::int8_t kind = -1;
    /// Stale-E(b) draw: -1 unknown, else 0/1 (per seed phase).
    std::int8_t stale = -1;
    bool dormant = false;
    std::uint8_t open_hour = 0;   // workday arrival / home evening start
    std::uint8_t close_hour = 0;  // workday departure
  };
  static_assert(sizeof(AddrState) == 24);

  /// Advances the time window to t (hot, inline below); the cold
  /// refresh paths live in the .cc.
  void advance(util::SimTime t) noexcept;

  void reset_addr_states() noexcept;
  void refresh_window(util::SimTime t) noexcept;
  void refresh_suppression(util::SimTime t) noexcept;
  void refresh_outage(util::SimTime t) noexcept;
  void refresh_epoch(AddrState& s, int addr, bool home) noexcept;
  std::uint32_t compute_mask(AddrState& s, int addr) noexcept;
  std::uint32_t server_mask(const AddrState& s,
                            std::uint64_t restart_thr) noexcept;
  std::uint32_t workday_mask(AddrState& s, int addr) noexcept;
  std::uint32_t home_mask(AddrState& s, int addr) noexcept;

  // Warm paths, inlined into active(): a slot-session fill is one staged
  // hash, and trinocular's rotating target cursor revisits a slotted
  // address only every few hours, so these run for a sizable share of
  // probes.
  bool is_stale(AddrState& s) noexcept {
    if (s.stale < 0) {
      s.stale = static_cast<double>(schedule::stale_hash(s.h1) >> 11) *
                            0x1.0p-53 >
                        current_fraction_
                    ? 1
                    : 0;
    }
    return s.stale != 0;
  }
  /// Server-farm address kind memo (0 = stable mask path, 1 = churny
  /// slot sessions); shared by active() and compute_mask so both paths
  /// resolve the draw identically.
  int farm_kind(AddrState& s) noexcept {
    if (s.kind < 0) {
      s.kind = (check_stale_ && is_stale(s))
                   ? 0  // stale: never answers; mask path yields 0
                   : (schedule::hash_chance(schedule::farm_kind_hash(s.h1),
                                            0.55)
                          ? 1
                          : 0);
    }
    return s.kind;
  }
  void fill_slot(AddrState& s, SlotCache& sc, std::int64_t slot,
                 std::uint64_t bit) noexcept {
    sc.valid |= bit;
    if (check_stale_ && is_stale(s)) return;  // stale targets never answer
    const std::uint64_t h = farm_ ? schedule::churny_hash(s.h1, slot)
                                  : schedule::intermittent_hash(s.h1, slot);
    if ((h >> 11) < thr_slot_) sc.up |= bit;
  }

  const BlockProfile* block_ = nullptr;

  // Flattened block facts (avoids chasing the profile pointer per probe).
  int eb_ = 0;
  int always_on_ = 0;
  int vacate_keep_ = 0;
  BlockCategory category_ = BlockCategory::kUnused;
  bool dead_ = true;          // unused/firewalled: never answers
  bool check_stale_ = false;  // current_fraction < 1
  bool slotted_ = false;      // intermittent or server-farm: slot sessions
  bool farm_ = false;
  bool uses_suppression_ = false;  // mixed/office/university/home
  util::SimTime vacate_at_ = -1;
  util::SimTime renumber_at_ = -1;
  util::SimTime renumber_appear_ = -1;  // renumber_at + gap
  util::SimTime occupied_from_ = -1;
  util::SimTime occupied_until_ = -1;
  util::SimTime cgnat_at_ = -1;
  /// UTC offset in force for the current window (equals the base offset
  /// for blocks without DST shifts); refresh_window re-resolves it when
  /// the block has tz_shifts.
  util::SimTime tz_seconds_ = 0;
  util::SimTime tz_base_seconds_ = 0;  ///< standard-time offset (bind compare)
  std::int16_t tz_hours_ = 0;  ///< tz_seconds_ / 3600, folded into row keys
  bool has_tz_shifts_ = false;
  std::uint64_t tz_sig_ = 0;  ///< bind-time digest of tz_shifts (keep_addrs)
  std::uint64_t seed_ = 0;  // current-phase seed (flips at renumbering)
  bool renumbered_ = false;
  double base_attendance_ = 0.0;
  double current_fraction_ = 1.0;

  // Precomputed hash_chance acceptance thresholds
  // (schedule::chance_threshold).  The slot/server probabilities are
  // fixed per block, so bind() derives them once.
  std::uint64_t thr_slot_ = 0;         ///< churny 0.75 / intermittent 0.45
  std::uint64_t thr_server_on_ = 0;    ///< always-on restart draw (0.01)
  std::uint64_t thr_server_farm_ = 0;  ///< stable-farm restart draw (0.04)

  // Slot-session day expansion: the 6h/8h slots overlapping the current
  // local day and the hours each covers.  Slot boundaries are whole-hour
  // aligned, so a slotted address's activity over one day collapses to
  // an hour mask over at most five slot draws — which lets day rows
  // cover slot-session addresses too and keeps whole blocks on the
  // mask fast path.  Only derived for nonnegative days (the slot index
  // uses truncating division, which is per-hour constant only there);
  // slot_rows_ok_ gates both the expansion and fast_view's row.
  bool slot_rows_ok_ = false;
  int n_segs_ = 0;
  std::int64_t seg_slot_[5] = {};
  std::uint32_t seg_mask_[5] = {};

  // ---- Fast-window state: constant for t in [-, fast_until_). ----
  util::SimTime fast_until_ = kNever;
  /// Day, suppression/outage state, and structural state are constant up
  /// to here; window refreshes below it only re-derive the hour and slot
  /// indices (the cheap "hour tick").
  util::SimTime stable_until_ = kNever;
  bool plain_ = false;  ///< false: take the stateless oracle (rare states)
  bool flip_ = false;   ///< post-renumber population: mirror the address
  /// Addresses >= this take the slot-session path.  Folds the whole gate
  /// (slotted block, not vacated, humans present, addr past the
  /// always-on prefix) into one compare; INT_MAX when slot sessions are
  /// off for the current window.
  int slot_gate_lo_ = std::numeric_limits<int>::max();
  /// addr range guard for the probe path: 0 for dead blocks (unused /
  /// firewalled never answer), else eb_.
  int addr_limit_ = 0;
  /// (tz offset in bits 56+, day in bits 32+, sup generation, structural
  /// bits).  The offset fold matters for DST blocks: a transition inside
  /// one local day changes the absolute slot indices baked into
  /// slot-expanded rows, so the key must change with the offset.
  std::uint64_t row_key_ = 0;
  std::int64_t clock_day_ = 0;
  int clock_hour_ = 0;
  bool clock_workday_ = false;
  bool vacated_ = false;
  bool humans_absent_ = false;  ///< outside the occupancy window
  std::int64_t slot6_ = 0;      ///< intermittent slot index at current t
  std::int64_t slot8_ = 0;      ///< churny slot index at current t
  // Absolute-hour phase within the 6h/8h slots; lets the inline hour
  // tick advance the slot indices without dividing.  Valid for t >= 0
  // (negative times always take the full refresh).
  std::int32_t h6_ = 0;
  std::int32_t h8_ = 0;

  // Presence-draw thresholds for the current day row: the attendance
  // scales fold the day's suppression state and weekday bit, so the
  // per-address mask fills are left with one staged hash and one integer
  // compare.  Recomputed alongside row_key_.
  std::uint64_t thr_presence_ = 0;      ///< workday/weekend presence draw
  std::uint64_t thr_home_evening_ = 0;  ///< home evening presence draw
  std::uint64_t thr_home_wfh_ = 0;      ///< home WFH daytime presence draw

  // Active-suppression memo, valid for t in [-, sup_valid_until_).
  util::SimTime sup_valid_until_ = kNever;
  double sup_residual_ = 1.0;
  bool sup_wfh_ = false;
  bool sup_any_ = false;
  std::uint32_t sup_gen_ = 0;  // bumped on change; keys cached masks

  // Whole-block-outage memo, valid for t in [-, outage_valid_until_).
  util::SimTime outage_valid_until_ = kNever;
  bool outage_active_ = false;
  std::size_t outage_begin_ = 0;  // outages before this index have ended

  std::vector<AddrState> addrs_;
  /// Slot-session draws, 4 direct-mapped words per address at
  /// [addr * 4 + ((slot >> 6) & 3)]; four words span 64 days of 6-hour
  /// slots (85 of 8-hour ones), longer than any dataset window, so
  /// re-sweeps of one window never evict each other.  Kept out of
  /// AddrState so the (much more common) hour-mask blocks keep a dense
  /// stride: a survey pass touches every AddrState each round, and the
  /// per-round working set should stay inside L1.
  std::vector<SlotCache> slot_caches_;

  /// Hour-mask day table: kDaySlots direct-mapped rows of eb_ masks at
  /// [(day & (kDaySlots-1)) * eb_], validated by day_keys_ holding the
  /// row key (which embeds the day, so wrap-around collisions on
  /// windows longer than kDaySlots days just refill).  Rows are filled
  /// whole when refresh_window enters a new day row and survive rebinds
  /// to the same profile, so the fleet's later observer passes re-read
  /// every (address, day) answer without re-deriving a single hash —
  /// and the per-probe path is one dense 4-byte load plus a shift, with
  /// no per-address key check at all.
  static constexpr std::size_t kDaySlots = 256;
  std::vector<std::uint32_t> day_masks_;
  std::vector<std::uint64_t> day_keys_;
  /// Current day row (day_masks_ + slot * eb_); set by refresh_window
  /// whenever plain_ is true and the block can answer, i.e. before any
  /// mask read.
  const std::uint32_t* row_masks_ = nullptr;
};

// ---------------------------------------------------------------------------
// Hot path.  Kept in the header so probe loops inline it.  In the steady
// state this is: one boundary compare, two range checks, one row-key
// compare, one shift.
// ---------------------------------------------------------------------------

inline void ActivityCursor::advance(util::SimTime t) noexcept {
  if (t >= fast_until_) [[unlikely]] {
    // Hour tick: fast_until_ is a (positive) local-hour boundary and t
    // sits in the hour right after it, still inside the stable window —
    // only the hour and slot phase counters move.  Everything else
    // (including negative times, where truncating slot division and
    // floor hour boundaries disagree) takes the full refresh.
    if (t < stable_until_ && fast_until_ > 0 && t - fast_until_ < 3600) {
      ++clock_hour_;
      if (++h6_ == 6) {
        h6_ = 0;
        ++slot6_;
      }
      if (++h8_ == 8) {
        h8_ = 0;
        ++slot8_;
      }
      fast_until_ += 3600;
      if (fast_until_ > stable_until_) fast_until_ = stable_until_;
    } else {
      refresh_window(t);
    }
  }
}

inline ActivityCursor::FastView ActivityCursor::fast_view(
    util::SimTime t) noexcept {
  advance(t);
  // The whole block takes the mask path when the window is plain (no
  // outage/renumber gap), un-mirrored, alive, and any live slot-session
  // addresses were expanded into the day row (slot_rows_ok_; always true
  // for nonnegative days).  slot_gate_lo_ folds slotted/vacated/
  // occupancy into one value, so >= eb_ means no slot sessions at all.
  const bool whole_block_masks = plain_ && !flip_ && addr_limit_ == eb_ &&
                                 eb_ > 0 &&
                                 (slot_gate_lo_ >= eb_ || slot_rows_ok_);
  return FastView{whole_block_masks ? row_masks_ : nullptr, clock_hour_,
                  fast_until_, stable_until_, row_key_};
}

inline bool ActivityCursor::active(int addr, util::SimTime t) noexcept {
  advance(t);
  if (static_cast<unsigned>(addr) >= static_cast<unsigned>(addr_limit_))
      [[unlikely]] {
    return false;  // out of range, or a dead block that never answers
  }
  if (!plain_) [[unlikely]] {
    return address_active(*block_, addr, t);  // rare block states
  }
  if (flip_) [[unlikely]] addr = eb_ - 1 - addr;  // post-renumber population

  if (addr >= slot_gate_lo_) {
    // Intermittent blocks and churny server-farm leases flip per slot,
    // not per hour; always-on and stable-farm addresses fall through to
    // the hour-mask path below.
    AddrState& s = addrs_[static_cast<std::size_t>(addr)];
    const bool slot_addr = !farm_ || farm_kind(s) == 1;
    if (slot_addr) {
      const std::int64_t slot = farm_ ? slot8_ : slot6_;
      const std::int64_t word = slot >> 6;
      SlotCache& sc = slot_caches_[static_cast<std::size_t>(addr) * 4 +
                                   static_cast<std::size_t>(word & 3)];
      const std::uint64_t bit = std::uint64_t{1} << (slot & 63);
      if (sc.word != word) {
        sc.word = word;
        sc.valid = 0;
        sc.up = 0;
      }
      if (!(sc.valid & bit)) fill_slot(s, sc, slot, bit);
      return (sc.up & bit) != 0;
    }
  }

  // refresh_window filled this day row before any mask read; no
  // per-address key check or AddrState load on the steady-state path.
  return (row_masks_[addr] >> clock_hour_) & 1u;
}

}  // namespace diurnal::sim
