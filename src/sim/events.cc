#include "sim/events.h"

#include "geo/countries.h"

namespace diurnal::sim {

using util::Date;
using util::SimTime;
using util::time_of;

std::string_view to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kWorkFromHome: return "work-from-home";
    case EventKind::kHoliday: return "holiday";
    case EventKind::kCurfewUnrest: return "curfew/unrest";
  }
  return "?";
}

bool EventScope::matches(std::string_view block_country,
                         geo::GridCell block_cell) const {
  if (country_code && *country_code != block_country) return false;
  if (cell && *cell != block_cell) return false;
  return true;
}

std::vector<Event> default_calendar() {
  std::vector<Event> v;

  // Covid-19 work-from-home, one event per country with a documented
  // 2020 date (section 3.6's news-report ground truth).  WFH persists
  // through the 2020h1 analysis horizon.
  const SimTime horizon_2020h1 = time_of(2020, 7, 1);
  for (const auto& c : geo::countries()) {
    if (!c.wfh_2020) continue;
    Event e;
    e.kind = EventKind::kWorkFromHome;
    e.name = "covid-wfh-" + c.code;
    e.scope.country_code = c.code;
    e.start = time_of(*c.wfh_2020);
    e.end = horizon_2020h1;
    e.adoption = 0.45;
    e.residual_attendance = 0.12;
    v.push_back(std::move(e));
  }

  auto holiday = [&](std::string name, const char* country, Date d0, Date d1,
                     double adoption = 0.9, double residual = 0.08) {
    Event e;
    e.kind = EventKind::kHoliday;
    e.name = std::move(name);
    e.scope.country_code = country;
    e.start = time_of(d0);
    e.end = time_of(d1);  // exclusive
    e.adoption = adoption;
    e.residual_attendance = residual;
    v.push_back(std::move(e));
  };

  // Spring Festival: week-long, widely observed (sections 4.2, B.3).
  holiday("spring-festival-2020", "CN", Date{2020, 1, 24}, Date{2020, 2, 3});
  holiday("spring-festival-2023", "CN", Date{2023, 1, 21}, Date{2023, 1, 30});
  holiday("spring-festival-2020-hk", "HK", Date{2020, 1, 25}, Date{2020, 1, 29},
          0.8);
  // US holidays visible in the paper's Figure 1 example block.
  holiday("mlk-day-2020", "US", Date{2020, 1, 20}, Date{2020, 1, 21}, 0.85);
  holiday("presidents-day-2020", "US", Date{2020, 2, 17}, Date{2020, 2, 18},
          0.85);
  holiday("new-year-2020", "CN", Date{2020, 1, 1}, Date{2020, 1, 2}, 0.8);
  holiday("new-year-2020-us", "US", Date{2020, 1, 1}, Date{2020, 1, 2}, 0.8);
  holiday("thanksgiving-2019", "US", Date{2019, 11, 28}, Date{2019, 11, 30},
          0.85);
  holiday("christmas-2019-us", "US", Date{2019, 12, 24}, Date{2019, 12, 27},
          0.85);
  holiday("christmas-2019-de", "DE", Date{2019, 12, 24}, Date{2019, 12, 27},
          0.85);

  // Regional unrest: Delhi riots and stay-home, 2020-02-23..29 (section
  // 4.3): people chose to stay home; partial adoption, single gridcell.
  {
    Event e;
    e.kind = EventKind::kCurfewUnrest;
    e.name = "delhi-unrest-2020";
    e.scope.country_code = "IN";
    e.scope.cell = geo::GridCell::of(28.6, 77.2);  // (28N,76E)
    e.start = time_of(2020, 2, 23);
    e.end = time_of(2020, 3, 1);
    e.adoption = 0.30;
    e.residual_attendance = 0.25;
    v.push_back(std::move(e));
  }
  // UAE overnight curfew + sterilization campaign, 2020-03-26..29
  // (section 3.7); modeled on top of the UAE WFH event.
  {
    Event e;
    e.kind = EventKind::kCurfewUnrest;
    e.name = "uae-curfew-2020";
    e.scope.country_code = "AE";
    e.start = time_of(2020, 3, 26);
    e.end = time_of(2020, 3, 30);
    e.adoption = 0.5;
    e.residual_attendance = 0.10;
    v.push_back(std::move(e));
  }
  return v;
}

std::vector<const Event*> events_for(const std::vector<Event>& calendar,
                                     std::string_view country,
                                     geo::GridCell cell, util::SimTime t0,
                                     util::SimTime t1) {
  std::vector<const Event*> out;
  for (const auto& e : calendar) {
    if (e.start < t1 && e.end > t0 && e.scope.matches(country, cell)) {
      out.push_back(&e);
    }
  }
  return out;
}

}  // namespace diurnal::sim
