#include "sim/activity_cursor.h"

#include <algorithm>

namespace diurnal::sim {

using util::SimTime;

namespace {

constexpr std::uint32_t kAllHours = 0x00FFFFFFu;

// Bits [lo, hi) of a 24-hour mask.
inline std::uint32_t hour_range_mask(int lo, int hi) noexcept {
  return (hi <= lo) ? 0u : ((1u << hi) - (1u << lo)) & kAllHours;
}

// Order-sensitive digest of a block's DST shifts; bind() compares it to
// decide whether per-address caches may survive a rebind (the profile
// object may have been recycled at the same address with different
// shifts).
std::uint64_t tz_shift_signature(const BlockProfile& block) noexcept {
  std::uint64_t sig = 0;
  for (const TzShift& s : block.tz_shifts) {
    sig = util::mix64(sig ^ static_cast<std::uint64_t>(s.at) ^
                      (static_cast<std::uint64_t>(
                           static_cast<std::uint16_t>(s.offset_hours))
                       << 48));
  }
  return sig;
}

}  // namespace

void ActivityCursor::bind(const BlockProfile& block) {
  // Per-address caches hold time-independent facts of (profile, seed
  // phase): they survive a rebind to the same profile unless the
  // previous pass crossed a renumbering and flipped the seed.  The hour
  // masks stay valid because their row keys are canonical: the local
  // day, the suppression boundary count, and the structural bits replay
  // identically for every observer pass over the same window.  The
  // scalar-fact compares guard against a *different* profile living at
  // the recycled address of the previous one (stack-built blocks in
  // tests); profiles must still not be mutated between binds.
  const std::uint64_t tz_sig = tz_shift_signature(block);
  const bool keep_addrs =
      block_ == &block && !renumbered_ && seed_ == block.seed &&
      eb_ == static_cast<int>(block.eb_count) &&
      always_on_ == static_cast<int>(block.always_on) &&
      category_ == block.category &&
      tz_base_seconds_ == static_cast<SimTime>(block.tz_offset_hours) * 3600 &&
      tz_sig_ == tz_sig &&
      base_attendance_ == static_cast<double>(block.base_attendance) &&
      current_fraction_ == static_cast<double>(block.current_fraction) &&
      vacate_at_ == block.vacate_at && renumber_at_ == block.renumber_at &&
      occupied_from_ == block.occupied_from &&
      occupied_until_ == block.occupied_until && cgnat_at_ == block.cgnat_at;
  block_ = &block;
  eb_ = static_cast<int>(block.eb_count);
  always_on_ = static_cast<int>(block.always_on);
  vacate_keep_ = std::min<int>(block.always_on, 2);
  category_ = block.category;
  dead_ = category_ == BlockCategory::kUnused ||
          category_ == BlockCategory::kFirewalled;
  addr_limit_ = dead_ ? 0 : eb_;
  check_stale_ = block.current_fraction < 1.0f;
  slotted_ = category_ == BlockCategory::kIntermittent ||
             category_ == BlockCategory::kServerFarm;
  farm_ = category_ == BlockCategory::kServerFarm;
  uses_suppression_ = category_ == BlockCategory::kMixed ||
                      category_ == BlockCategory::kOffice ||
                      category_ == BlockCategory::kUniversity ||
                      category_ == BlockCategory::kHomeDynamic;
  vacate_at_ = block.vacate_at;
  renumber_at_ = block.renumber_at;
  renumber_appear_ =
      block.renumber_at >= 0 ? block.renumber_at + schedule::kRenumberGap : -1;
  occupied_from_ = block.occupied_from;
  occupied_until_ = block.occupied_until;
  cgnat_at_ = block.cgnat_at;
  tz_base_seconds_ = static_cast<SimTime>(block.tz_offset_hours) * 3600;
  tz_seconds_ = tz_base_seconds_;
  tz_hours_ = block.tz_offset_hours;
  has_tz_shifts_ = !block.tz_shifts.empty();
  tz_sig_ = tz_sig;
  seed_ = block.seed;
  renumbered_ = false;
  base_attendance_ = static_cast<double>(block.base_attendance);
  current_fraction_ = static_cast<double>(block.current_fraction);
  thr_slot_ = schedule::chance_threshold(farm_ ? 0.75 : 0.45);
  thr_server_on_ = schedule::chance_threshold(0.01);
  thr_server_farm_ = schedule::chance_threshold(0.04);

  fast_until_ = kNever;  // first active() call populates everything
  stable_until_ = kNever;
  sup_valid_until_ = kNever;
  sup_residual_ = 1.0;
  sup_wfh_ = false;
  sup_any_ = false;
  sup_gen_ = 0;
  outage_valid_until_ = kNever;
  outage_active_ = false;
  outage_begin_ = 0;

  if (!keep_addrs) reset_addr_states();
}

void ActivityCursor::reset_addr_states() noexcept {
  addrs_.assign(static_cast<std::size_t>(eb_), AddrState{});
  // addr_stage is shared by every per-address hash chain, so deriving it
  // eagerly keeps all later fills at two mix64 rounds instead of three.
  for (int a = 0; a < eb_; ++a) {
    addrs_[static_cast<std::size_t>(a)].h1 = schedule::addr_stage(seed_, a);
  }
  slot_caches_.assign(slotted_ ? static_cast<std::size_t>(eb_) * 4 : 0,
                      SlotCache{});
  // Invalidating day_keys_ is enough to drop every cached mask row; the
  // row storage itself is only ever read behind a matching key, so it is
  // grown (once, to the largest eb seen by this cursor) but never
  // cleared.
  day_keys_.assign(kDaySlots, kNoKey);
  const std::size_t need = kDaySlots * static_cast<std::size_t>(eb_);
  if (day_masks_.size() < need) day_masks_.resize(need);
  row_masks_ = nullptr;
}

void ActivityCursor::refresh_window(SimTime t) noexcept {
  // Resolve the UTC offset in force (DST blocks only; the scan mirrors
  // schedule::tz_offset_seconds).  stable_until_ is bounded by the next
  // transition below, so the offset is constant across the whole window
  // and the inline hour tick never needs to re-resolve it.
  if (has_tz_shifts_) {
    std::int16_t hours = block_->tz_offset_hours;
    for (const TzShift& s : block_->tz_shifts) {
      if (t < s.at) break;
      hours = s.offset_hours;
    }
    tz_hours_ = hours;
    tz_seconds_ = static_cast<SimTime>(hours) * 3600;
  }
  // Local clock (tz offsets are whole hours, so local hour boundaries
  // coincide with absolute ones, as do the 6h/8h slot boundaries).
  const SimTime local = t + tz_seconds_;
  std::int64_t day = local / util::kSecondsPerDay;
  std::int64_t rem = local % util::kSecondsPerDay;
  if (rem < 0) {
    rem += util::kSecondsPerDay;
    --day;
  }
  clock_hour_ = static_cast<int>(rem / 3600);
  slot6_ = schedule::intermittent_slot(t);
  slot8_ = schedule::churny_slot(t);
  if (t >= 0) {
    // Slot phase for the inline hour tick (only reachable for t > 0,
    // where truncating and floor division agree).
    const std::int64_t abs_hour = t / 3600;
    h6_ = static_cast<std::int32_t>(abs_hour % 6);
    h8_ = static_cast<std::int32_t>(abs_hour % 8);
  }
  const SimTime hour_end = t + (3600 - rem % 3600);

  if (t < stable_until_) {
    // Hour tick: still the same local day with the same suppression,
    // outage, and structural state — only the hour and the 6h/8h slot
    // indices moved, so everything keyed by row_key_ stays valid.  This
    // is the common refresh (23 of 24 per simulated day).
    fast_until_ = std::min(hour_end, stable_until_);
    return;
  }

  const int wd =
      static_cast<int>(((day + schedule::kEpochWeekday) % 7 + 7) % 7);
  clock_day_ = day;
  clock_workday_ = wd >= 1 && wd <= 5;

  // The stable window ends at the next local midnight or the next
  // suppression/outage/structural boundary, whichever comes first.
  SimTime stable = (day + 1) * util::kSecondsPerDay - tz_seconds_;

  if (uses_suppression_) {
    if (t >= sup_valid_until_) refresh_suppression(t);
    stable = std::min(stable, sup_valid_until_);
  }
  if (t >= outage_valid_until_) refresh_outage(t);
  stable = std::min(stable, outage_valid_until_);

  // Structural state and its future edges.
  const bool renumber_on = renumber_at_ >= 0;
  const bool in_gap =
      renumber_on && t >= renumber_at_ && t < renumber_appear_;
  const bool flipped = renumber_on && t >= renumber_appear_;
  if (flipped && !renumbered_) {
    // One-time transition (t is monotone): the post-renumber population
    // draws from a different seed, so every per-address memo is stale.
    seed_ = schedule::renumbered_seed(seed_);
    renumbered_ = true;
    reset_addr_states();
  }
  vacated_ = vacate_at_ >= 0 && t >= vacate_at_;
  // The oracle resolves a vacate before the renumber remap, so a vacated
  // block answers for its original low addresses, un-mirrored.
  flip_ = flipped && !vacated_;
  humans_absent_ = (occupied_from_ >= 0 && t < occupied_from_) ||
                   (occupied_until_ >= 0 && t >= occupied_until_) ||
                   (cgnat_at_ >= 0 && t >= cgnat_at_);
  plain_ = !outage_active_ && !in_gap;

  const SimTime edges[] = {vacate_at_,     renumber_at_,    renumber_appear_,
                           occupied_from_, occupied_until_, cgnat_at_};
  for (const SimTime e : edges) {
    if (e > t) stable = std::min(stable, e);
  }
  if (has_tz_shifts_) {
    const SimTime next_shift = schedule::next_tz_shift_after(*block_, t);
    if (next_shift > t) stable = std::min(stable, next_shift);
  }
  stable_until_ = stable;
  fast_until_ = std::min(hour_end, stable);

  row_key_ = (static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(static_cast<std::int8_t>(tz_hours_)))
              << 56) |
             (static_cast<std::uint64_t>(day) << 32) |
             (static_cast<std::uint64_t>(sup_gen_) << 2) |
             (vacated_ ? 2u : 0u) | (humans_absent_ ? 1u : 0u);

  // Presence-draw thresholds for this day row.  The probability
  // expressions mirror the stateless oracle operation-for-operation (see
  // workday_mask/home_mask), only hoisted from per-address fills to one
  // evaluation per day.
  switch (category_) {
    case BlockCategory::kMixed:
    case BlockCategory::kOffice:
    case BlockCategory::kUniversity: {
      double attendance_scale;
      double weekend_attendance;
      if (category_ == BlockCategory::kMixed) {
        attendance_scale = 0.55 * (sup_any_ ? sup_residual_ : 1.0);
        weekend_attendance = 0.10;
      } else if (category_ == BlockCategory::kOffice) {
        attendance_scale = sup_any_ ? sup_residual_ : 1.0;
        weekend_attendance = 0.06;
      } else {  // kUniversity
        attendance_scale = sup_any_ ? sup_residual_ : 1.0;
        weekend_attendance = 0.15;
      }
      const double base = clock_workday_
                              ? base_attendance_ * attendance_scale
                              : weekend_attendance;
      thr_presence_ = schedule::chance_threshold(base);
      break;
    }
    case BlockCategory::kHomeDynamic: {
      const double scale =
          (sup_any_ && !sup_wfh_) ? std::max(sup_residual_, 0.35) : 1.0;
      thr_home_evening_ =
          schedule::chance_threshold(0.85 * scale * base_attendance_);
      thr_home_wfh_ =
          schedule::chance_threshold(0.70 * scale * base_attendance_);
      break;
    }
    default:
      break;
  }
  // Collapse the slot-session gate (slotted && addr >= always_on &&
  // !vacated && !humans_absent) into one compare for the probe path.
  slot_gate_lo_ = (slotted_ && !vacated_ && !humans_absent_)
                      ? always_on_
                      : std::numeric_limits<int>::max();

  // Slot-session day expansion (see compute_mask): slot boundaries are
  // whole-hour aligned, so the day's 6h/8h slot indices collapse to at
  // most five (slot, hour-mask) segments shared by every slotted
  // address.  Guarded to nonnegative day starts — the slot index uses
  // truncating division, which is constant within an hour only there;
  // negative days keep the per-slot path (and fast_view withholds the
  // row).
  slot_rows_ok_ = false;
  if (plain_ && slot_gate_lo_ < addr_limit_) {
    const SimTime day_start = clock_day_ * util::kSecondsPerDay - tz_seconds_;
    if (day_start >= 0) {
      slot_rows_ok_ = true;
      n_segs_ = 0;
      for (int h = 0; h < 24; ++h) {
        const SimTime th = day_start + static_cast<SimTime>(h) * 3600;
        const std::int64_t hslot = farm_ ? schedule::churny_slot(th)
                                         : schedule::intermittent_slot(th);
        if (n_segs_ == 0 || hslot != seg_slot_[n_segs_ - 1]) {
          seg_slot_[n_segs_] = hslot;
          seg_mask_[n_segs_] = 0;
          ++n_segs_;
        }
        seg_mask_[n_segs_ - 1] |= 1u << h;
      }
    }
  }

  // Day-row fill: probers touch most addresses every local day, so the
  // whole row of hour masks is derived here in one sequential sweep —
  // the per-address hash chains are independent, so they pipeline —
  // and the per-probe path is left with a dense load and a shift.
  // compute_mask is a pure function of (address, row), so deriving a
  // row early is observationally identical to deriving each answer on
  // first use.  Rows are keyed in the day table and survive rebinds to
  // the same profile: the fleet's later observer passes re-sweep the
  // same days and hit every row without re-deriving a single hash.
  if (plain_ && addr_limit_ > 0) {
    const std::size_t slot =
        static_cast<std::uint64_t>(clock_day_) & (kDaySlots - 1);
    std::uint32_t* const row =
        day_masks_.data() + slot * static_cast<std::size_t>(eb_);
    if (day_keys_[slot] != row_key_) {
      day_keys_[slot] = row_key_;
      AddrState* const as = addrs_.data();
      for (int a = 0; a < eb_; ++a) row[a] = compute_mask(as[a], a);
    }
    row_masks_ = row;
  }
}

void ActivityCursor::refresh_suppression(SimTime t) noexcept {
  SimTime next = std::numeric_limits<SimTime>::max();
  double residual = 1.0;
  bool wfh = false;
  bool any = false;
  std::uint32_t gen = 0;
  for (const auto& sup : block_->suppressions) {
    // The generation is the number of interval boundaries at or before
    // t.  It is canonical — a pure function of t, not of which earlier
    // states this cursor happened to observe — so masks cached under a
    // generation stay correct across sparse query patterns and across
    // rebind passes by other observers.
    gen += (t >= sup.start ? 1u : 0u) + (t >= sup.end ? 1u : 0u);
    if (t >= sup.start && t < sup.end) {
      any = true;
      residual = std::min(residual, sup.residual_attendance);
      if (sup.kind == EventKind::kWorkFromHome) wfh = true;
      next = std::min(next, sup.end);
    } else if (t < sup.start) {
      next = std::min(next, sup.start);
    }
  }
  sup_gen_ = gen;
  sup_any_ = any;
  sup_residual_ = residual;
  sup_wfh_ = wfh;
  sup_valid_until_ = next;
}

void ActivityCursor::refresh_outage(SimTime t) noexcept {
  // Skipping the already-ended prefix is safe in any interval order; the
  // remainder is scanned in full, so overlaps and nesting just work.
  const auto& outages = block_->outages;
  while (outage_begin_ < outages.size() && outages[outage_begin_].end <= t) {
    ++outage_begin_;
  }
  SimTime next = std::numeric_limits<SimTime>::max();
  bool active = false;
  for (std::size_t i = outage_begin_; i < outages.size(); ++i) {
    const auto& o = outages[i];
    if (t >= o.start && t < o.end) {
      active = true;
      next = std::min(next, o.end);
    } else if (t < o.start) {
      next = std::min(next, o.start);
    }
  }
  outage_active_ = active;
  outage_valid_until_ = next;
}

void ActivityCursor::refresh_epoch(AddrState& s, int addr,
                                   bool home) noexcept {
  const std::uint64_t stagger = schedule::epoch_stagger(s.h1);
  std::int64_t epoch = schedule::epoch_of_day(clock_day_, stagger);
  const std::int64_t stag_mod =
      static_cast<std::int64_t>(stagger % schedule::kEpochDays);
  s.epoch_from =
      static_cast<std::int32_t>(epoch * schedule::kEpochDays - stag_mod);
  if (block_->stable_population) {
    // Frozen population: the oracle pins every device to epoch 0 and
    // never marks it dormant (see device_epoch); epoch_from still
    // tracks the 21-day refresh window so the cache invalidates the
    // same way either way.
    epoch = 0;
    s.dormant = false;
  } else {
    s.dormant = schedule::epoch_dormant(s.h1, epoch);
  }
  if (s.dormant) return;
  if (home) {
    s.open_hour = static_cast<std::uint8_t>(
        schedule::evening_start_hour(seed_, epoch, addr));
    s.close_hour = 24;
  } else {
    const auto hours = schedule::work_hours(seed_, epoch, addr);
    s.open_hour = static_cast<std::uint8_t>(hours.arrival);
    s.close_hour = static_cast<std::uint8_t>(hours.departure);
  }
}

std::uint32_t ActivityCursor::server_mask(const AddrState& s,
                                          std::uint64_t restart_thr) noexcept {
  const std::uint64_t day_h = schedule::server_day_hash(s.h1, clock_day_);
  if ((day_h >> 11) >= restart_thr) return kAllHours;
  const int restart_hour = static_cast<int>((day_h >> 32) % 24);
  return kAllHours & ~(1u << restart_hour);
}

std::uint32_t ActivityCursor::workday_mask(AddrState& s, int addr) noexcept {
  if (clock_day_ < s.epoch_from ||
      clock_day_ >= s.epoch_from + schedule::kEpochDays) {
    refresh_epoch(s, addr, /*home=*/false);
  }
  if (s.dormant) return 0;
  // The attendance probability (oracle-exact, including the
  // suppression-residual scale) is folded into thr_presence_ by
  // refresh_window; only the per-address day draw remains here.
  const std::uint64_t day_h =
      schedule::workday_presence_hash(s.h1, clock_day_);
  if ((day_h >> 11) >= thr_presence_) return 0;
  return hour_range_mask(s.open_hour, s.close_hour);
}

std::uint32_t ActivityCursor::home_mask(AddrState& s, int addr) noexcept {
  if (clock_day_ < s.epoch_from ||
      clock_day_ >= s.epoch_from + schedule::kEpochDays) {
    refresh_epoch(s, addr, /*home=*/true);
  }
  if (s.dormant) return 0;
  const int evening_start = s.open_hour;
  const bool weekend = !clock_workday_;
  // Window with presence 0.85: evening hours, all day from 9 on weekends.
  const std::uint32_t evening = weekend ? hour_range_mask(9, 24)
                                        : hour_range_mask(evening_start, 24);
  // Window with presence 0.70: WFH keeps people home on weekday daytimes.
  const std::uint32_t wfh_daytime =
      (!weekend && sup_wfh_) ? hour_range_mask(9, evening_start) : 0;
  // Presence probabilities (with the suppression-residual scale) live in
  // the thr_home_* members, refreshed with the day row.
  const std::uint64_t day_h = schedule::home_presence_hash(s.h1, clock_day_);
  std::uint32_t mask = 0;
  if ((day_h >> 11) < thr_home_evening_) mask |= evening;
  if (wfh_daytime != 0 && (day_h >> 11) < thr_home_wfh_) mask |= wfh_daytime;
  return mask;
}

std::uint32_t ActivityCursor::compute_mask(AddrState& s, int addr) noexcept {
  std::uint32_t mask = 0;
  if (vacated_) {
    // Vacated (e.g. VPN moved): only a couple of infrastructure hosts
    // stay, and the oracle resolves this before every other draw.
    mask = addr < vacate_keep_ ? kAllHours : 0;
  } else if (addr < always_on_) {
    mask = server_mask(s, thr_server_on_);
  } else if (humans_absent_) {
    mask = 0;  // outside the occupancy window only infrastructure answers
  } else if (check_stale_ && is_stale(s)) {
    mask = 0;
  } else if (addr >= slot_gate_lo_ && (!farm_ || farm_kind(s) == 1)) {
    // Slot-session address: OR the day's slot draws (the same (h1, slot)
    // hashes fill_slot would make, one per segment instead of one per
    // probe) into an hour mask.  Without the segment table (negative
    // days) the entry stays 0 and is never read: active() keeps the
    // per-slot path for these addresses and fast_view withholds the row.
    if (slot_rows_ok_) {
      for (int k = 0; k < n_segs_; ++k) {
        const std::uint64_t h =
            farm_ ? schedule::churny_hash(s.h1, seg_slot_[k])
                  : schedule::intermittent_hash(s.h1, seg_slot_[k]);
        if ((h >> 11) < thr_slot_) mask |= seg_mask_[k];
      }
    }
  } else {
    switch (category_) {
      case BlockCategory::kServerFarm:
        // stable kind (churny takes slots)
        mask = server_mask(s, thr_server_farm_);
        break;
      case BlockCategory::kMixed:
      case BlockCategory::kOffice:
      case BlockCategory::kUniversity:
        mask = workday_mask(s, addr);
        break;
      case BlockCategory::kHomeDynamic:
        mask = home_mask(s, addr);
        break;
      default:  // NAT gateways and (unreachable here) slot categories
        mask = 0;
        break;
    }
  }
  return mask;
}

}  // namespace diurnal::sim
