// Per-country layer resolution for the world generator (DESIGN §12).
//
// geo::countries() carries each country's default layer stack
// (demographics → adoption → network ops → time rules → drift);
// sim::WorldConfig::country_layers carries optional overrides.  The
// CountryLayerTable resolves the stack once per generator — registry
// defaults, then the "" (all-countries) override, then the per-code
// override, field-wise last-wins — into the flat per-country values
// every block draw reads.  The bitwise-equivalence contract: with no
// overrides the resolved values are exactly the registry scalars (all
// multipliers 1.0, CGNAT 0, DST off, no holidays, zero drift), so a
// default-registry world reproduces the pre-layer RNG draw sequence
// bit-for-bit.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "geo/countries.h"
#include "sim/block_profile.h"
#include "sim/events.h"
#include "util/date.h"
#include "util/rng.h"

namespace diurnal::sim {

/// Layer overrides for one country ("" code = applies to every country;
/// per-code overrides stack on top).  Unset fields keep the registry
/// value; holidays append to the registry list.
struct CountryLayerOverride {
  std::string code;  ///< two-letter code, or "" for all countries

  // Adoption layer.
  std::optional<double> diurnal_visible_fraction;
  std::optional<double> cgnat_fraction;

  // Network-ops layer.
  std::optional<double> renumber_multiplier;
  std::optional<double> outage_multiplier;

  // Time-rules layer.
  std::optional<geo::DstPolicy> dst;
  std::vector<geo::AnnualHoliday> holidays;

  // Drift layer.
  std::optional<double> adoption_trend_per_year;
  std::optional<double> cgnat_trend_per_year;
};

/// One country's layers resolved against a world's horizon and base
/// rates: everything make_generated() needs, precomputed.
struct ResolvedCountry {
  const geo::CountryProfile* profile = nullptr;

  // Demographics (pick weight is unmodified registry weight).
  double pick_weight = 1.0;

  // Adoption + drift: diurnal-visible fraction with the adoption trend
  // applied at the horizon midpoint, and the CGNAT fraction at horizon
  // start/end (the CGNAT trend spreads block migrations across the
  // horizon).  cgnat_end >= cgnat_start, both clamped to [0, 1].
  double diurnal_visible = 0.2;
  double cgnat_start = 0.0;
  double cgnat_end = 0.0;

  // Network ops: world base rates scaled by the country multipliers.
  double outage_rate_per_90d = 0.06;
  double renumber_probability = 0.015;

  // Time rules.
  int utc_offset_hours = 0;
  geo::DstPolicy dst = geo::DstPolicy::kNone;
  std::vector<TzShift> tz_shifts;  ///< materialized DST transitions
  std::vector<geo::AnnualHoliday> holidays;

  // Drift (kept for introspection / --explain-country).
  double adoption_trend_per_year = 0.0;
  double cgnat_trend_per_year = 0.0;
};

/// Resolves every registry country against a world's overrides and
/// horizon.  Also owns the weighted country-sampling table (previously
/// the anonymous CountryPicker): the cumulative sums are built from the
/// same weights in the same order, so the pick draw is unchanged.
class CountryLayerTable {
 public:
  CountryLayerTable() = default;
  CountryLayerTable(const std::vector<CountryLayerOverride>& overrides,
                    double base_outage_rate_per_90d,
                    double base_renumber_probability,
                    util::SimTime horizon_start, util::SimTime horizon_end);

  std::size_t size() const noexcept { return resolved_.size(); }
  const ResolvedCountry& resolved(std::size_t index) const {
    return resolved_[index];
  }

  /// Weighted country draw; consumes exactly one rng.uniform(0, total)
  /// like the pre-layer CountryPicker.
  std::size_t pick(util::Xoshiro256& rng) const;

  /// Holiday events materialized from every country's resolved annual
  /// holidays, one kHoliday event per holiday per horizon year that
  /// intersects the horizon (named "<holiday>-<year>").  Empty for the
  /// default registry.
  std::vector<Event> holiday_events() const;

 private:
  std::vector<ResolvedCountry> resolved_;
  std::vector<double> cumulative_;
  double total_weight_ = 0.0;
  util::SimTime horizon_start_ = 0;
  util::SimTime horizon_end_ = 0;
};

/// Materializes a DST policy's transitions over [horizon_start,
/// horizon_end): kNorthern follows the US rule (spring forward the
/// second Sunday of March at 02:00 standard, fall back the first Sunday
/// of November at 02:00 daylight); kSouthern the mirrored schedule (DST
/// first Sunday of October through the first Sunday of April).  If DST
/// is already in force at horizon_start a shift at horizon_start is
/// prepended, so offsets resolve correctly from the first instant.
std::vector<TzShift> materialize_dst(geo::DstPolicy policy,
                                     int base_offset_hours,
                                     util::SimTime horizon_start,
                                     util::SimTime horizon_end);

}  // namespace diurnal::sim
