// Seed-addressable lazy world materialization.
//
// A World holds every BlockProfile of its universe resident; at the
// paper's 5.2M-block scale that is gigabytes before a single probe is
// simulated.  Because each block is generated from an independent
// salted seed (derive_seed(world seed, block id, salt)), any block can
// be materialized alone, bitwise-identical to its row in a fully
// generated World.  BlockGenerator is that per-block generator — World
// itself is now a thin loop over it — and WorldSlice materializes one
// contiguous index range at a time so a shard scheduler can keep only
// its resident shards' populations in memory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sim/block_profile.h"
#include "sim/country_layers.h"
#include "sim/world.h"

namespace diurnal::sim {

/// Generates any block of a world configuration on demand.  Index space
/// is identical to World::blocks(): the named case-study blocks first
/// (when include_special_blocks), then the `num_blocks` sequential
/// synthetic blocks.  Immutable and thread-safe after construction —
/// concurrent make() calls from shard workers need no locking.
class BlockGenerator {
 public:
  /// Resolves the config exactly as World's constructor does (default
  /// calendar substitution, then layer-derived holiday events), resolves
  /// the per-country layer stack, and pre-builds the few special blocks.
  explicit BlockGenerator(WorldConfig config);

  /// The resolved configuration (calendar filled in).
  const WorldConfig& config() const noexcept { return config_; }

  /// Total universe size: special blocks plus generated blocks.
  std::size_t total_blocks() const noexcept {
    return specials_.size() + static_cast<std::size_t>(config_.num_blocks);
  }
  std::size_t special_blocks() const noexcept { return specials_.size(); }

  /// Materializes global block index `index` (< total_blocks()),
  /// bitwise equal to World(config).blocks()[index].
  BlockProfile make(std::size_t index) const;

  /// The resolved per-country layer stack this generator draws from.
  const CountryLayerTable& layers() const noexcept { return layers_; }

  // Named case-study block ids (valid when include_special_blocks).
  net::BlockId usc_office_block() const noexcept { return usc_office_; }
  net::BlockId usc_vpn_block() const noexcept { return usc_vpn_; }
  net::BlockId uae_case_block() const noexcept { return uae_case_; }
  net::BlockId renumber_case_block() const noexcept { return renumber_case_; }

 private:
  void add_special_blocks();
  BlockProfile make_generated(int i) const;
  void resolve_events(BlockProfile& b, util::Xoshiro256& rng) const;

  WorldConfig config_;
  CountryLayerTable layers_;
  std::vector<BlockProfile> specials_;
  net::BlockId usc_office_{};
  net::BlockId usc_vpn_{};
  net::BlockId uae_case_{};
  net::BlockId renumber_case_{};
};

/// One resident contiguous range of a world's block population.  Reuses
/// its storage across materialize() calls; release() drops it entirely
/// when the shard retires.
class WorldSlice {
 public:
  /// Materializes blocks [begin, end) of `gen`'s universe.
  void materialize(const BlockGenerator& gen, std::size_t begin,
                   std::size_t end);

  std::span<const BlockProfile> blocks() const noexcept { return blocks_; }
  /// Global index of blocks().front().
  std::size_t begin_index() const noexcept { return begin_; }
  bool empty() const noexcept { return blocks_.empty(); }

  /// Approximate resident footprint: block storage plus the per-block
  /// suppression/outage vectors (the residency accounting the shard
  /// scheduler budgets against).
  std::size_t memory_bytes() const noexcept;

  /// Frees the storage (shard retirement).
  void release() noexcept {
    blocks_.clear();
    blocks_.shrink_to_fit();
  }

 private:
  std::vector<BlockProfile> blocks_;
  std::size_t begin_ = 0;
};

}  // namespace diurnal::sim
