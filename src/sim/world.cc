#include "sim/world.h"

#include "sim/world_slice.h"

namespace diurnal::sim {

using util::SimTime;

// World is the fully materialized universe: one BlockGenerator pass
// over every index.  All generation logic lives in world_slice.cc so a
// shard scheduler materializing lazy slices is bitwise-identical to
// this loop by construction (tests/test_shard.cc pins it).
World::World(WorldConfig config) : config_(std::move(config)) { generate(); }

const BlockProfile* World::find(net::BlockId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &blocks_[it->second];
}

void World::generate() {
  const BlockGenerator gen(config_);
  config_ = gen.config();  // default calendar resolved
  usc_office_ = gen.usc_office_block();
  usc_vpn_ = gen.usc_vpn_block();
  uae_case_ = gen.uae_case_block();
  renumber_case_ = gen.renumber_case_block();

  const std::size_t total = gen.total_blocks();
  blocks_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) blocks_.push_back(gen.make(i));

  index_.reserve(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    index_[blocks_[i].id] = i;
    const auto& b = blocks_[i];
    geodb_.add(b.id, geo::GeoRecord{b.lat, b.lon, b.country});
  }
}

util::TimeSeries World::truth_series(const BlockProfile& block, SimTime t0,
                                     SimTime t1, std::int64_t step) const {
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>((t1 - t0) / step + 1));
  for (SimTime t = t0; t < t1; t += step) {
    values.push_back(static_cast<double>(active_count(block, t)));
  }
  return util::TimeSeries(t0, step, std::move(values));
}

std::unordered_map<BlockCategory, int> World::category_counts() const {
  std::unordered_map<BlockCategory, int> out;
  for (const auto& b : blocks_) ++out[b.category];
  return out;
}

}  // namespace diurnal::sim
