#include "sim/world_slice.h"

#include <algorithm>
#include <cmath>

#include "geo/countries.h"

namespace diurnal::sim {

using geo::countries;
using util::SimTime;
using util::Xoshiro256;

namespace {

std::size_t pick_city(const geo::CountryProfile& c, Xoshiro256& rng) {
  const auto& cities = c.demographics.cities;
  double total = 0.0;
  for (const auto& city : cities) total += city.weight;
  double r = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < cities.size(); ++i) {
    r -= cities[i].weight;
    if (r <= 0.0) return i;
  }
  return cities.size() - 1;
}

/// First synthetic block id; generated block i is kSyntheticBase + i.
const std::uint32_t kSyntheticBase = net::BlockId::parse("1.0.0.0/24").id();

}  // namespace

BlockGenerator::BlockGenerator(WorldConfig config)
    : config_(std::move(config)) {
  if (config_.calendar.empty() && !config_.quiet_calendar) {
    config_.calendar = default_calendar();
  }
  layers_ =
      CountryLayerTable(config_.country_layers, config_.outage_rate_per_90d,
                        config_.renumber_probability, config_.horizon_start,
                        config_.horizon_end);
  // Layer-derived recurring holidays join the calendar (even in
  // quiet-calendar worlds: they are opt-in through country_layers).
  // Idempotent by name so re-building a generator from an already
  // resolved config (World::config(), checkpoint resume) does not
  // duplicate them.
  for (auto& e : layers_.holiday_events()) {
    const bool present =
        std::any_of(config_.calendar.begin(), config_.calendar.end(),
                    [&](const Event& have) { return have.name == e.name; });
    if (!present) config_.calendar.push_back(std::move(e));
  }
  if (config_.include_special_blocks) add_special_blocks();
}

BlockProfile BlockGenerator::make(std::size_t index) const {
  if (index < specials_.size()) return specials_[index];
  return make_generated(static_cast<int>(index - specials_.size()));
}

BlockProfile BlockGenerator::make_generated(int i) const {
  const net::BlockId id(kSyntheticBase + static_cast<std::uint32_t>(i));
  const std::uint64_t block_seed =
      util::derive_seed(config_.seed, id.id(), 0x810CBull);
  Xoshiro256 rng(block_seed);

  BlockProfile b;
  b.id = id;
  b.seed = util::mix64(block_seed);
  b.stable_population = config_.stable_population;

  const std::size_t ci = config_.only_country
                             ? geo::country_index(*config_.only_country)
                             : layers_.pick(rng);
  const ResolvedCountry& rc = layers_.resolved(ci);
  const auto& country = *rc.profile;
  b.country = static_cast<std::uint16_t>(ci);
  b.tz_offset_hours = static_cast<std::int16_t>(rc.utc_offset_hours);
  b.tz_shifts = rc.tz_shifts;
  const auto& city = country.demographics.cities[pick_city(country, rng)];
  b.lat = static_cast<float>(
      std::clamp(city.lat + rng.normal(0.0, 0.35), -89.0, 89.0));
  b.lon = static_cast<float>(city.lon + rng.normal(0.0, 0.35));

  if (!rng.chance(config_.responsive_fraction)) {
    b.category = rng.chance(0.7) ? BlockCategory::kUnused
                                 : BlockCategory::kFirewalled;
    b.eb_count = 0;
    return b;
  }

  const double p_diurnal =
      std::min(0.9, config_.diurnal_scale * rc.diurnal_visible / 0.30);
  if (rng.chance(p_diurnal)) {
    const double r = rng.uniform();
    if (r < 0.45) {
      b.category = BlockCategory::kOffice;
      b.eb_count = static_cast<std::uint16_t>(16 + rng.below(145));
      b.always_on = static_cast<std::uint16_t>(1 + rng.below(3));
    } else if (r < 0.55) {
      b.category = BlockCategory::kUniversity;
      b.eb_count = static_cast<std::uint16_t>(64 + rng.below(193));
      b.always_on = static_cast<std::uint16_t>(2 + rng.below(5));
    } else {
      b.category = BlockCategory::kHomeDynamic;
      b.eb_count = static_cast<std::uint16_t>(24 + rng.below(177));
      b.always_on = static_cast<std::uint16_t>(rng.below(3));
    }
    b.base_attendance = static_cast<float>(rng.uniform(0.85, 0.97));
    b.current_fraction = static_cast<float>(rng.uniform(0.15, 0.6));
  } else {
    const double r = rng.uniform();
    if (r < 0.36) {
      b.category = BlockCategory::kNatGateway;
      b.eb_count = static_cast<std::uint16_t>(1 + rng.below(8));
      b.always_on = b.eb_count;
    } else if (r < 0.58) {
      b.category = BlockCategory::kServerFarm;
      b.eb_count = static_cast<std::uint16_t>(16 + rng.below(241));
      b.always_on = 0;
    } else if (r < 0.94) {
      b.category = BlockCategory::kIntermittent;
      b.eb_count = static_cast<std::uint16_t>(8 + rng.below(89));
      b.always_on = 0;
      b.current_fraction = static_cast<float>(rng.uniform(0.3, 0.9));
    } else {
      b.category = BlockCategory::kMixed;
      b.eb_count = static_cast<std::uint16_t>(16 + rng.below(113));
      b.always_on = static_cast<std::uint16_t>(
          std::max<std::uint64_t>(1, rng.below(b.eb_count / 2 + 1)));
      b.base_attendance = static_cast<float>(rng.uniform(0.8, 0.95));
      b.current_fraction = static_cast<float>(rng.uniform(0.02, 0.15));
    }
  }

  resolve_events(b, rng);

  // Occupancy windows for human-populated categories: some facilities
  // open or close (or ISPs renumber users away) during the horizon.
  if (is_diurnal_category(b.category) ||
      b.category == BlockCategory::kMixed) {
    const auto span =
        static_cast<double>(config_.horizon_end - config_.horizon_start);
    if (rng.chance(config_.occupancy_churn)) {
      b.occupied_from = config_.horizon_start +
                        static_cast<SimTime>(rng.uniform(0.1, 0.9) * span);
    }
    if (rng.chance(config_.occupancy_churn)) {
      b.occupied_until = config_.horizon_start +
                         static_cast<SimTime>(rng.uniform(0.1, 0.9) * span);
    }
    if (b.occupied_from >= 0 && b.occupied_until >= 0 &&
        b.occupied_until < b.occupied_from + 30 * util::kSecondsPerDay) {
      b.occupied_until = -1;  // keep at least a month of occupancy
    }
  }

  // Whole-block outages (short; the outage filter in section 2.6 must
  // discard the paired down/up changes they cause).
  const double horizon_days =
      static_cast<double>(config_.horizon_end - config_.horizon_start) /
      util::kSecondsPerDay;
  const int outages =
      rng.poisson(rc.outage_rate_per_90d * horizon_days / 90.0);
  for (int k = 0; k < outages; ++k) {
    const SimTime start = config_.horizon_start +
                          static_cast<SimTime>(rng.uniform() *
                                               static_cast<double>(
                                                   config_.horizon_end -
                                                   config_.horizon_start));
    const double dur = std::clamp(rng.exponential(2.0 * util::kSecondsPerHour),
                                  600.0, 12.0 * util::kSecondsPerHour);
    b.outages.push_back(
        OutageInterval{start, start + static_cast<SimTime>(dur)});
  }
  std::sort(b.outages.begin(), b.outages.end(),
            [](const OutageInterval& x, const OutageInterval& y) {
              return x.start < y.start;
            });

  // Occasional ISP renumbering (paired down/up, section 2.6).
  if (rng.chance(rc.renumber_probability)) {
    b.renumber_at = config_.horizon_start +
                    static_cast<SimTime>(
                        rng.uniform(0.1, 0.9) *
                        static_cast<double>(config_.horizon_end -
                                            config_.horizon_start));
  }

  // CGNAT absorption (adoption layer + drift): a carrier moves the
  // block's subscribers behind carrier-grade NAT some time in
  // [cgnat_start, cgnat_end] of the population.  Drawn from a stateless
  // hash of the block seed — no sequential rng draw is consumed, so the
  // default (cgnat_end == 0) world's draw order is untouched.
  if ((is_diurnal_category(b.category) ||
       b.category == BlockCategory::kMixed) &&
      rc.cgnat_end > 0.0) {
    const double u =
        static_cast<double>(util::derive_seed(block_seed, 0xC6A7ull) >> 11) *
        0x1.0p-53;
    if (u < rc.cgnat_start) {
      b.cgnat_at = config_.horizon_start;  // absorbed before the horizon
    } else if (u < rc.cgnat_end) {
      const double frac =
          (u - rc.cgnat_start) / (rc.cgnat_end - rc.cgnat_start);
      b.cgnat_at =
          config_.horizon_start +
          static_cast<SimTime>(
              frac * static_cast<double>(config_.horizon_end -
                                         config_.horizon_start));
    }
  }
  return b;
}

void BlockGenerator::resolve_events(BlockProfile& b,
                                    Xoshiro256& rng) const {
  const auto& country = countries()[b.country];
  const auto matches = events_for(config_.calendar, country.code, b.cell(),
                                  config_.horizon_start, config_.horizon_end);
  for (const Event* e : matches) {
    // Only blocks with human work schedules react.
    if (!is_diurnal_category(b.category) &&
        b.category != BlockCategory::kMixed) {
      continue;
    }
    if (!rng.chance(e->adoption)) continue;
    Suppression s;
    s.kind = e->kind;
    s.start = e->start;
    s.end = e->end;
    s.residual_attendance = e->residual_attendance;
    if (e->ramp_days > 0) {
      // Gradual onset: adopting blocks phase in uniformly across the
      // ramp window instead of stepping together on the order date.
      s.start += static_cast<SimTime>(
          rng.uniform() *
          static_cast<double>(e->ramp_days * util::kSecondsPerDay));
    } else if (e->kind == EventKind::kWorkFromHome) {
      // Organizations adopted WFH within a few days of the order.
      s.start += rng.range(-2, 3) * util::kSecondsPerDay;
    }
    b.suppressions.push_back(s);
  }
  std::sort(b.suppressions.begin(), b.suppressions.end(),
            [](const Suppression& x, const Suppression& y) {
              return x.start < y.start;
            });
}

void BlockGenerator::add_special_blocks() {
  const auto us = static_cast<std::uint16_t>(geo::country_index("US"));
  const auto ae = static_cast<std::uint16_t>(geo::country_index("AE"));
  const auto cn = static_cast<std::uint16_t>(geo::country_index("CN"));

  // The paper's running example (Figure 1): a USC office block where WFH
  // verifiably began on 2020-03-15.
  {
    BlockProfile b;
    b.id = net::BlockId::parse("128.9.144.0/24");
    b.category = BlockCategory::kOffice;
    b.country = us;
    b.tz_offset_hours = -8;
    b.lat = 34.02f;
    b.lon = -118.28f;
    b.eb_count = 88;
    b.always_on = 3;
    b.seed = util::derive_seed(config_.seed, "usc-office");
    b.base_attendance = 0.92f;
    b.current_fraction = 0.18f;
    b.suppressions.push_back(Suppression{util::time_of(2020, 3, 15),
                                         config_.horizon_end, 0.08,
                                         EventKind::kWorkFromHome});
    b.suppressions.push_back(Suppression{util::time_of(2020, 1, 20),
                                         util::time_of(2020, 1, 21), 0.1,
                                         EventKind::kHoliday});
    b.suppressions.push_back(Suppression{util::time_of(2020, 2, 17),
                                         util::time_of(2020, 2, 18), 0.1,
                                         EventKind::kHoliday});
    usc_office_ = b.id;
    specials_.push_back(std::move(b));
  }
  // The USC VPN block (Appendix B.2): steady heavy use, then the VPN
  // migrates to a different block right as WFH begins.
  {
    BlockProfile b;
    b.id = net::BlockId::parse("128.125.52.0/24");
    b.category = BlockCategory::kOffice;
    b.country = us;
    b.tz_offset_hours = -8;
    b.lat = 34.02f;
    b.lon = -118.29f;
    b.eb_count = 250;
    b.always_on = 2;
    b.seed = util::derive_seed(config_.seed, "usc-vpn");
    b.base_attendance = 0.95f;
    b.current_fraction = 0.80f;
    b.vacate_at = util::time_of(2020, 3, 15);
    usc_vpn_ = b.id;
    specials_.push_back(std::move(b));
  }
  // A UAE block diurnal all seven days (Figure 11a) whose diurnal
  // activity disappears with the lockdown.
  {
    BlockProfile b;
    b.id = net::BlockId::parse("94.200.16.0/24");
    b.category = BlockCategory::kUniversity;
    b.country = ae;
    b.tz_offset_hours = 4;
    b.lat = 24.45f;
    b.lon = 54.40f;
    b.eb_count = 24;
    b.always_on = 1;
    b.seed = util::derive_seed(config_.seed, "uae-case");
    b.base_attendance = 0.95f;
    b.current_fraction = 0.85f;
    b.suppressions.push_back(Suppression{util::time_of(2020, 3, 24),
                                         config_.horizon_end, 0.08,
                                         EventKind::kWorkFromHome});
    uae_case_ = b.id;
    specials_.push_back(std::move(b));
  }
  // A renumbered block (Figure 11b): a large mid-February down/up pair
  // unrelated to Covid.
  {
    BlockProfile b;
    b.id = net::BlockId::parse("222.18.96.0/24");
    b.category = BlockCategory::kMixed;
    b.country = cn;
    b.tz_offset_hours = 8;
    b.lat = 39.9f;
    b.lon = 116.4f;
    b.eb_count = 128;
    b.always_on = 60;
    b.seed = util::derive_seed(config_.seed, "renumber-case");
    b.current_fraction = 0.60f;
    b.renumber_at = util::time_of(2020, 2, 15);
    renumber_case_ = b.id;
    specials_.push_back(std::move(b));
  }
}

void WorldSlice::materialize(const BlockGenerator& gen, std::size_t begin,
                             std::size_t end) {
  begin_ = begin;
  blocks_.clear();
  blocks_.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) blocks_.push_back(gen.make(i));
}

std::size_t WorldSlice::memory_bytes() const noexcept {
  std::size_t bytes = blocks_.capacity() * sizeof(BlockProfile);
  for (const auto& b : blocks_) {
    bytes += b.suppressions.capacity() * sizeof(Suppression);
    bytes += b.outages.capacity() * sizeof(OutageInterval);
    bytes += b.tz_shifts.capacity() * sizeof(TzShift);
  }
  return bytes;
}

}  // namespace diurnal::sim
